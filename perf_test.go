// Allocation budgets and concurrency stress for the zero-allocation
// invocation hot path (see DESIGN.md "Performance").
package cool_test

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	cool "cool"
	"cool/internal/bufpool"
	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/orb"
	"cool/internal/transport"
)

// inlineEcho echoes its argument; the reply writer aliases the request
// frame (valid until the writer has run, per the Invocation contract).
type inlineEcho struct{}

func (inlineEcho) RepoID() string { return "IDL:perf/Echo:1.0" }

func (inlineEcho) Invoke(inv *cool.Invocation) (cool.ReplyWriter, error) {
	msg, err := inv.Args.ReadOctetSeq()
	if err != nil {
		return nil, giop.MarshalException()
	}
	return func(enc *cdr.Encoder) { enc.WriteOctetSeq(msg) }, nil
}

// echoEnv wires two ORBs over a shared in-process transport with an
// inline-dispatch echo servant on the server side.
func echoEnv(t testing.TB) (client *cool.ORB, obj *cool.Object) {
	t.Helper()
	inner := transport.NewInprocManager()
	server := orb.New(orb.WithName("perf-server"), orb.WithTransport(inner))
	client = orb.New(orb.WithName("perf-client"), orb.WithTransport(inner))
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })
	if _, err := server.ListenOn("inproc", "perf-echo"); err != nil {
		t.Fatal(err)
	}
	ref, err := server.RegisterServant(inlineEcho{}, cool.WithInlineDispatch())
	if err != nil {
		t.Fatal(err)
	}
	return client, client.Resolve(ref)
}

// TestWarmEchoAllocBudget pins the whole-process allocation count of a warm
// two-way echo over inproc: pooled frames in both directions, pooled
// messages and headers, reused reply slots, and inline server dispatch must
// keep client + server combined at ≤ 2 allocations per invocation
// (testing.AllocsPerRun counts mallocs globally, so the budget covers both
// sides).
func TestWarmEchoAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget measured without -race")
	}
	if bufpool.DebugEnabled {
		t.Skip("pooldebug bookkeeping allocates; budget measured without -tags pooldebug")
	}
	_, obj := echoEnv(t)
	payload := bytes.Repeat([]byte{0x5a}, 64)
	args := func(enc *cdr.Encoder) { enc.WriteOctetSeq(payload) }
	got := make([]byte, 0, 64)
	out := func(dec *cdr.Decoder) error {
		p, err := dec.ReadOctetSeq()
		got = append(got[:0], p...)
		return err
	}
	invoke := func() {
		if err := obj.Invoke("echo", args, out); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ { // warm pools, intern table, metric handles
		invoke()
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("echo mismatch: got %d bytes", len(got))
	}
	allocs := testing.AllocsPerRun(500, invoke)
	if allocs > 2 {
		t.Errorf("warm echo allocated %.2f objects/op, budget is 2", allocs)
	}
}

// TestCombinerGatherAllocBudget pins the allocation count of the batched
// send path when several callers share one connection's write combiner.
// Persistent worker goroutines (spawned once, outside the measured region)
// are released in lockstep so their frames gather into shared vectored
// writes; the combiner itself must add nothing per frame — batches drain
// into the recycled spare queue array, so the whole round stays within the
// per-invocation warm-echo budget times the caller count.
func TestCombinerGatherAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget measured without -race")
	}
	if bufpool.DebugEnabled {
		t.Skip("pooldebug bookkeeping allocates; budget measured without -tags pooldebug")
	}
	_, obj := echoEnv(t)
	const callers = 4
	payload := bytes.Repeat([]byte{0xa5}, 64)
	work := make(chan struct{}, callers)
	done := make(chan error, callers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			args := func(enc *cdr.Encoder) { enc.WriteOctetSeq(payload) }
			out := func(dec *cdr.Decoder) error {
				_, err := dec.ReadOctetSeq()
				return err
			}
			for {
				select {
				case <-stop:
					return
				case <-work:
					done <- obj.Invoke("echo", args, out)
				}
			}
		}()
	}
	t.Cleanup(func() { close(stop); wg.Wait() })
	round := func() {
		for i := 0; i < callers; i++ {
			work <- struct{}{}
		}
		for i := 0; i < callers; i++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 64; i++ { // warm pools, reply-slot freelist, pending map
		round()
	}
	allocs := testing.AllocsPerRun(200, round)
	if allocs > 2*callers {
		t.Errorf("gathered round of %d invokes allocated %.2f objects, budget is %d",
			callers, allocs, 2*callers)
	}
}

// TestDeferredConcurrencyStress hammers one multiplexed connection with
// concurrent InvokeDeferred/Poll/Cancel/Wait from many goroutines,
// including Wait racing Cancel on the same Pending. Run under -race it
// checks the goroutine-free future implementation for data races and for
// reply-slot mix-ups (every completed echo must carry its own payload).
func TestDeferredConcurrencyStress(t *testing.T) {
	_, obj := echoEnv(t)
	const goroutines = 16
	const iters = 80
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(g)}, 32)
			args := func(enc *cdr.Encoder) { enc.WriteOctetSeq(payload) }
			out := func(dec *cdr.Decoder) error {
				p, err := dec.ReadOctetSeq()
				if err != nil {
					return err
				}
				if !bytes.Equal(p, payload) {
					return errors.New("cross-wired reply payload")
				}
				return nil
			}
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0: // plain synchronous invoke interleaved
					if err := obj.Invoke("echo", args, out); err != nil {
						t.Error(err)
						return
					}
				case 1: // defer + wait
					p, err := obj.InvokeDeferred("echo", args)
					if err != nil {
						t.Error(err)
						return
					}
					if err := p.Wait(out); err != nil {
						t.Error(err)
						return
					}
				case 2: // defer + poll-spin + wait
					p, err := obj.InvokeDeferred("echo", args)
					if err != nil {
						t.Error(err)
						return
					}
					for !p.Poll() {
						runtime.Gosched()
					}
					if err := p.Wait(out); err != nil {
						t.Error(err)
						return
					}
				case 3: // wait racing cancel
					p, err := obj.InvokeDeferred("echo", args)
					if err != nil {
						t.Error(err)
						return
					}
					done := make(chan error, 1)
					go func() { done <- p.Wait(out) }()
					cerr := p.Cancel()
					if cerr != nil && !errors.Is(cerr, transport.ErrClosed) {
						t.Error(cerr)
						return
					}
					// Either the reply won (nil) or the cancel did.
					if werr := <-done; werr != nil && !errors.Is(werr, orb.ErrCanceled) {
						t.Error(werr)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// gatedEcho parks inside Invoke until released, so a test can order the
// reply's arrival relative to a client-side Cancel. Registered with inline
// dispatch it also parks the server connection's read loop, which queues
// the CancelRequest behind the in-flight request — deterministically
// producing a reply that reaches the client after Cancel unregistered the
// request id.
type gatedEcho struct {
	entered chan struct{}
	release chan struct{}
}

func (gatedEcho) RepoID() string { return "IDL:perf/GatedEcho:1.0" }

func (g gatedEcho) Invoke(*cool.Invocation) (cool.ReplyWriter, error) {
	g.entered <- struct{}{}
	<-g.release
	return func(enc *cdr.Encoder) { enc.WriteULong(99) }, nil
}

// TestCancelRacesLateReply pins the Pending.Cancel/Wait contract against a
// reply that lands after cancellation: Wait must settle with ErrCanceled,
// and the late reply must be counted as an orphan and recycled (the
// pooldebug run of this test verifies the recycle — a dropped orphan shows
// up in the buffer ledger, a double release panics).
func TestCancelRacesLateReply(t *testing.T) {
	inner := transport.NewInprocManager()
	server := orb.New(orb.WithName("late-server"), orb.WithTransport(inner))
	client := orb.New(orb.WithName("late-client"), orb.WithTransport(inner))
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })
	if _, err := server.ListenOn("inproc", "late-echo"); err != nil {
		t.Fatal(err)
	}
	g := gatedEcho{entered: make(chan struct{}), release: make(chan struct{})}
	ref, err := server.RegisterServant(g, cool.WithInlineDispatch())
	if err != nil {
		t.Fatal(err)
	}
	obj := client.Resolve(ref)

	orphans := func() uint64 {
		return cool.Metrics(client).Snapshot().Counter("orb.client.orphan_replies")
	}

	const rounds = 8
	for i := 0; i < rounds; i++ {
		p, err := obj.InvokeDeferred("echo", nil)
		if err != nil {
			t.Fatal(err)
		}
		<-g.entered // the servant is parked; no reply has been written yet

		waitErr := make(chan error, 1)
		go func() { waitErr <- p.Wait(nil) }()

		if err := p.Cancel(); err != nil {
			t.Fatal(err)
		}
		if werr := <-waitErr; !errors.Is(werr, orb.ErrCanceled) {
			t.Fatalf("Wait racing Cancel = %v, want ErrCanceled", werr)
		}
		if p.Poll() != true {
			t.Fatal("Poll after Cancel reported in-flight")
		}

		// Unpark the servant: the reply is written now, after the request
		// id was unregistered, and must be orphaned on the client.
		g.release <- struct{}{}
	}

	deadline := time.Now().Add(5 * time.Second)
	for orphans() < rounds {
		if time.Now().After(deadline) {
			t.Fatalf("orphan replies = %d, want %d", orphans(), rounds)
		}
		time.Sleep(time.Millisecond)
	}
}

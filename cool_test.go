package cool_test

import (
	"errors"
	"strings"
	"testing"

	cool "cool"
	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/transport"
)

// facadeServant is a trivial servant used by the facade tests.
type facadeServant struct{}

func (facadeServant) RepoID() string { return "IDL:facade/Test:1.0" }

func (facadeServant) Invoke(inv *cool.Invocation) (cool.ReplyWriter, error) {
	switch inv.Operation {
	case "ping":
		return func(enc *cdr.Encoder) { enc.WriteString("pong") }, nil
	default:
		return nil, giop.BadOperation()
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	inner := transport.NewInprocManager()
	server := cool.NewORB(cool.WithName("facade-server"), cool.WithTransport(inner))
	client := cool.NewORB(cool.WithName("facade-client"), cool.WithTransport(inner))
	defer client.Shutdown()
	defer server.Shutdown()
	cool.EnableDaCaPo(server, cool.DaCaPoConfig{Inner: inner})
	cool.EnableDaCaPo(client, cool.DaCaPoConfig{Inner: inner})

	if _, err := server.ListenOn("dacapo", ""); err != nil {
		t.Fatal(err)
	}
	ref, err := server.RegisterServant(facadeServant{})
	if err != nil {
		t.Fatal(err)
	}

	// Round trip through the stringified reference.
	obj, err := client.ResolveString(cool.RefString(ref))
	if err != nil {
		t.Fatal(err)
	}
	var out string
	err = obj.Invoke("ping", nil, func(dec *cdr.Decoder) error {
		var err error
		out, err = dec.ReadString()
		return err
	})
	if err != nil || out != "pong" {
		t.Fatalf("ping = %q, %v", out, err)
	}
}

func TestQoSHelpers(t *testing.T) {
	set := cool.QoS(
		cool.MinThroughput(5000, 1000),
		cool.MaxLatency(2000, 10_000),
		cool.MaxJitter(500, 1000),
		cool.Encrypted(),
	)
	if len(set) != 4 {
		t.Fatalf("set = %v", set)
	}
	if p, ok := set.Get(cool.Throughput); !ok || p.Request != 5000 || p.Min != 1000 {
		t.Fatalf("throughput = %+v", p)
	}
	if p, ok := set.Get(cool.Latency); !ok || p.Max != 10_000 {
		t.Fatalf("latency = %+v", p)
	}
	if p, ok := set.Get(cool.Confidentiality); !ok || p.Min != 1 {
		t.Fatalf("confidentiality = %+v", p)
	}
	rel := cool.Reliable()
	if len(rel) != 2 {
		t.Fatalf("Reliable = %v", rel)
	}
}

func TestQoSPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate dimension")
		}
	}()
	cool.QoS(cool.MinThroughput(1, 0), cool.MinThroughput(2, 0))
}

func TestParseRefErrors(t *testing.T) {
	if _, err := cool.ParseRef("garbage"); err == nil {
		t.Fatal("expected parse error")
	}
	ref := cool.Ref{TypeID: "IDL:x/Y:1.0"}
	if s := cool.RefString(ref); !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("RefString = %q", s)
	}
}

func TestNamingThroughFacade(t *testing.T) {
	inner := transport.NewInprocManager()
	server := cool.NewORB(cool.WithName("ns"), cool.WithTransport(inner))
	client := cool.NewORB(cool.WithName("app"), cool.WithTransport(inner))
	defer client.Shutdown()
	defer server.Shutdown()
	if _, err := server.ListenOn("inproc", ""); err != nil {
		t.Fatal(err)
	}
	nsRef, err := server.RegisterServant(cool.NewNamingServant())
	if err != nil {
		t.Fatal(err)
	}
	ns := cool.NewNamingClient(client.Resolve(nsRef))
	want := cool.Ref{TypeID: "IDL:facade/Test:1.0"}
	if err := ns.Bind("svc/test", want); err != nil {
		t.Fatal(err)
	}
	got, err := ns.Resolve("svc/test")
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != want.TypeID {
		t.Fatalf("resolved %+v", got)
	}
	if _, err := ns.Resolve("absent"); err == nil {
		t.Fatal("expected NotFound")
	} else if !errors.Is(err, err) { // sanity: err is usable with errors
		t.Fatal("unreachable")
	}
}

// TestCOOLProtocolEndToEnd exercises the generic message protocol layer's
// second protocol: the proprietary COOL framing, selected per endpoint and
// carried in the IOR profile.
func TestCOOLProtocolEndToEnd(t *testing.T) {
	inner := transport.NewInprocManager()
	server := cool.NewORB(cool.WithName("cp-server"), cool.WithTransport(inner))
	client := cool.NewORB(cool.WithName("cp-client"), cool.WithTransport(inner))
	defer client.Shutdown()
	defer server.Shutdown()
	cool.EnableDaCaPo(server, cool.DaCaPoConfig{Inner: inner})
	cool.EnableDaCaPo(client, cool.DaCaPoConfig{Inner: inner})

	// One endpoint speaks the COOL protocol over the QoS transport.
	if _, err := server.ListenOnProtocol("dacapo", "", "cool"); err != nil {
		t.Fatal(err)
	}
	ref, err := server.RegisterServant(facadeServant{}, cool.WithCapability(cool.Capability{
		cool.Throughput: {Best: 100_000, Supported: true},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Profiles[0].Protocol != "cool" {
		t.Fatalf("profile protocol = %q", ref.Profiles[0].Protocol)
	}

	// Round-trip through the stringified reference preserves the protocol.
	obj, err := client.ResolveString(cool.RefString(ref))
	if err != nil {
		t.Fatal(err)
	}
	ping := func() string {
		var out string
		if err := obj.Invoke("ping", nil, func(dec *cdr.Decoder) error {
			var err error
			out, err = dec.ReadString()
			return err
		}); err != nil {
			t.Fatalf("ping: %v", err)
		}
		return out
	}
	if got := ping(); got != "pong" {
		t.Fatalf("plain cool-protocol ping = %q", got)
	}

	// QoS invocations work over the COOL protocol too (its QoS-extended
	// framing plays the role of GIOP 9.9).
	if err := obj.SetQoSParameter(cool.QoS(cool.MinThroughput(5000, 1000))); err != nil {
		t.Fatal(err)
	}
	if got := ping(); got != "pong" {
		t.Fatalf("qos cool-protocol ping = %q", got)
	}
	if granted := obj.GrantedQoS(); granted.Value(cool.Throughput, 0) != 5000 {
		t.Fatalf("granted = %v", granted)
	}

	// Unknown protocols are rejected cleanly.
	if _, err := server.ListenOnProtocol("inproc", "", "telepathy"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

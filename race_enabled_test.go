//go:build race

package cool_test

// raceEnabled skips allocation-budget assertions: the race detector's
// instrumentation allocates on its own.
const raceEnabled = true

package cool_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	cool "cool"
	"cool/examples/mediaserver/mediagen"
	"cool/internal/cdr"
	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/leakcheck"
	"cool/internal/naming"
	"cool/internal/netsim"
	"cool/internal/orb"
	"cool/internal/qos"
)

// mediaImpl is the integration-test media server.
type mediaImpl struct {
	frames uint32
}

func (m *mediaImpl) Describe(index uint32) (mediagen.FrameInfo, error) {
	if index >= m.frames {
		return mediagen.FrameInfo{}, &mediagen.OutOfRange{Requested: index, Limit: m.frames}
	}
	return mediagen.FrameInfo{Index: index, Width: 320, Height: 240, Q: mediagen.QualityLOW, SizeBytes: 1024}, nil
}

func (m *mediaImpl) GetFrame(index uint32, q mediagen.Quality) ([]byte, error) {
	if index >= m.frames {
		return nil, &mediagen.OutOfRange{Requested: index, Limit: m.frames}
	}
	return bytes.Repeat([]byte{byte(index)}, 2048), nil
}

func (m *mediaImpl) Catalog(first, count uint32) (mediagen.FrameInfoList, error) {
	var list mediagen.FrameInfoList
	for i := first; i < first+count && i < m.frames; i++ {
		fi, _ := m.Describe(i)
		list = append(list, fi)
	}
	return list, nil
}

func (m *mediaImpl) FrameCount() (int32, error) { return int32(m.frames), nil }
func (m *mediaImpl) Seek(index uint32) (uint32, error) {
	return index % m.frames, nil
}
func (m *mediaImpl) Hint(uint32) {}

// TestFullSystemOverSimulatedWAN wires every subsystem together: two ORBs
// whose Da CaPo transports run over a simulated 10 Mbit/s WAN with real
// propagation delay and jitter; the naming service bootstraps the
// reference; chic-generated stubs carry QoS-negotiated invocations.
func TestFullSystemOverSimulatedWAN(t *testing.T) {
	leakcheck.Check(t)
	wan := netsim.Params{
		BandwidthKbps: 10_000,
		PropDelay:     3 * time.Millisecond,
		Jitter:        500 * time.Microsecond,
		QueueLen:      128,
	}
	inner := netsim.NewManager(wan)
	lib := modules.NewLibrary()
	linkCap := wan.Capability()

	server := cool.NewORB(cool.WithName("wan-server"),
		cool.WithTransport(inner),
		cool.WithTransport(dacapo.NewManager(inner, lib, dacapo.NewResourceManager(10_000, 0), linkCap)))
	client := cool.NewORB(cool.WithName("wan-client"),
		cool.WithTransport(inner),
		cool.WithTransport(dacapo.NewManager(inner, lib, dacapo.NewResourceManager(0, 0), linkCap)))
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })

	if _, err := server.ListenOn("netsim", "wan-plain"); err != nil {
		t.Fatal(err)
	}
	if _, err := server.ListenOn("dacapo", "wan-qos"); err != nil {
		t.Fatal(err)
	}

	// Naming service + media server on the same ORB.
	nsRef, err := server.RegisterServant(naming.NewServant())
	if err != nil {
		t.Fatal(err)
	}
	mediaRef, err := server.RegisterServant(
		mediagen.NewMediaServerSkeleton(&mediaImpl{frames: 16}),
		cool.WithCapability(qos.Unconstrained()),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap through the naming service like a real deployment.
	ns := naming.NewClient(client.Resolve(nsRef))
	if err := ns.Bind("media/main", mediaRef); err != nil {
		t.Fatal(err)
	}
	resolved, err := ns.Resolve("media/main")
	if err != nil {
		t.Fatal(err)
	}
	stub := mediagen.NewMediaServerStub(client.Resolve(resolved))

	// Plain GIOP over the WAN.
	n, err := stub.FrameCount()
	if err != nil || n != 16 {
		t.Fatalf("count = %d, %v", n, err)
	}

	// QoS-negotiated binding: 2 Mbit/s floor over the 10 Mbit/s link.
	if err := stub.SetQoSParameter(cool.QoS(cool.MinThroughput(5000, 2000))); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	frame, err := stub.GetFrame(3, mediagen.QualityMEDIUM)
	if err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if len(frame) != 2048 || frame[0] != 3 {
		t.Fatalf("frame = %d bytes", len(frame))
	}
	// The WAN's 2×3 ms propagation delay must be visible end to end.
	if rtt < 6*time.Millisecond {
		t.Fatalf("rtt %v below the physical propagation delay", rtt)
	}

	// Demand beyond the server's 10 Mbit/s admission budget: refused.
	if err := stub.SetQoSParameter(cool.QoS(cool.MinThroughput(50_000, 20_000))); err != nil {
		t.Fatal(err)
	}
	if _, err := stub.GetFrame(1, mediagen.QualityLOW); err == nil {
		t.Fatal("over-budget QoS should be refused")
	}

	// Typed exception across the WAN.
	if err := stub.SetQoSParameter(nil); err != nil {
		t.Fatal(err)
	}
	_, err = stub.Describe(999)
	var oor *mediagen.OutOfRange
	if !errors.As(err, &oor) || oor.Limit != 16 {
		t.Fatalf("err = %v", err)
	}

	// Concurrent clients sharing the negotiated connection.
	if err := stub.SetQoSParameter(cool.QoS(cool.MinThroughput(4000, 1000))); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				fi, err := stub.Describe(uint32(w))
				if err != nil {
					errs <- err
					return
				}
				if fi.Index != uint32(w) {
					errs <- errors.New("wrong frame")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFullSystemReliableOverLossyWAN drives the ORB + Da CaPo + ARQ path
// over a *lossy* link. Configuration signalling needs a reliable channel
// (as in the paper, where signalling rides the existing transports), so
// the handshake runs first over a clean link and the loss only affects
// data: we emulate that by configuring loss low enough for the 2-message
// handshake and verifying the window ARQ keeps invocations intact.
func TestFullSystemReliableOverLossyWAN(t *testing.T) {
	leakcheck.Check(t)
	wan := netsim.Params{
		BandwidthKbps: 20_000,
		PropDelay:     time.Millisecond,
		LossRate:      0.02,
		Seed:          99,
		QueueLen:      128,
	}
	inner := netsim.NewManager(wan)
	lib := modules.NewLibrary()
	linkCap := wan.Capability()

	server := orb.New(orb.WithName("lossy-server"),
		orb.WithTransport(inner),
		orb.WithTransport(dacapo.NewManager(inner, lib, dacapo.NewResourceManager(0, 0), linkCap)))
	client := orb.New(orb.WithName("lossy-client"),
		orb.WithTransport(inner),
		orb.WithTransport(dacapo.NewManager(inner, lib, dacapo.NewResourceManager(0, 0), linkCap)))
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })

	if _, err := server.ListenOn("dacapo", "lossy"); err != nil {
		t.Fatal(err)
	}
	ref, err := server.RegisterServant(
		mediagen.NewMediaServerSkeleton(&mediaImpl{frames: 8}),
		orb.WithCapability(qos.Unconstrained()),
	)
	if err != nil {
		t.Fatal(err)
	}
	stub := mediagen.NewMediaServerStub(client.Resolve(ref))

	// Full reliability demanded: the configuration manager adds the
	// window ARQ + CRC-32 stack over the lossy link.
	req := cool.QoS(cool.Reliable()...)
	// Retry the handshake a few times: the signalling itself crosses the
	// lossy link (2% per message).
	var lastErr error
	for attempt := 0; attempt < 8; attempt++ {
		if err := stub.SetQoSParameter(nil); err != nil {
			t.Fatal(err)
		}
		if err := stub.SetQoSParameter(req); err != nil {
			t.Fatal(err)
		}
		if _, lastErr = stub.FrameCount(); lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		t.Fatalf("handshake never succeeded: %v", lastErr)
	}

	// 40 invocations over the 2%-lossy link: ARQ must recover every one.
	for i := 0; i < 40; i++ {
		frame, err := stub.GetFrame(uint32(i%8), mediagen.QualityLOW)
		if err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
		if len(frame) != 2048 || frame[0] != byte(i%8) {
			t.Fatalf("invocation %d corrupted", i)
		}
	}
}

// TestNetsimTransportDirect runs plain GIOP over the netsim transport to
// pin the scheme into the ORB-visible registry contract.
func TestNetsimTransportDirect(t *testing.T) {
	leakcheck.Check(t)
	inner := netsim.NewManager(netsim.Loopback())
	server := orb.New(orb.WithTransport(inner))
	client := orb.New(orb.WithTransport(inner))
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })
	if _, err := server.ListenOn("netsim", ""); err != nil {
		t.Fatal(err)
	}
	ref, err := server.RegisterServant(facadeServant{})
	if err != nil {
		t.Fatal(err)
	}
	obj := client.Resolve(ref)
	var msg string
	if err := obj.Invoke("ping", nil, func(dec *cdr.Decoder) error {
		var err error
		msg, err = dec.ReadString()
		return err
	}); err != nil || msg != "pong" {
		t.Fatalf("ping = %q, %v", msg, err)
	}
}

// Package cool is a from-scratch Go reproduction of the QoS-enabled COOL
// Object Request Broker described in:
//
//	Tom Kristensen, Thomas Plagemann: "Enabling Flexible QoS Support in
//	the Object Request Broker COOL", ICDCS 2000 (the MULTE project).
//
// It provides a CORBA-style ORB (GIOP message layer over a generic
// transport layer, object adapter, IDL compiler) extended with the paper's
// three QoS mechanisms — per-invocation QoS specification via
// SetQoSParameter, bilateral client/server negotiation in an extended GIOP,
// and unilateral negotiation between the message layer and a QoS-capable
// transport — plus a full reimplementation of the Da CaPo flexible protocol
// system used as that transport.
//
// This package is the facade: it re-exports the user-facing types of the
// internal packages and adds convenience constructors. Typical use:
//
//	o := cool.NewORB()
//	addr, _ := o.ListenOn("tcp", "127.0.0.1:0")
//	ref, _ := o.RegisterServant(myServant)
//	fmt.Println(cool.RefString(ref)) // hand to clients
//
//	client := cool.NewORB()
//	obj, _ := client.ResolveString(iorString)
//	obj.SetQoSParameter(cool.QoS(cool.MinThroughput(5000, 1000)))
//	err := obj.Invoke("op", encodeArgs, decodeReply)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory.
package cool

import (
	"cool/internal/coolproto"
	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/ior"
	"cool/internal/naming"
	"cool/internal/netsim"
	"cool/internal/orb"
	"cool/internal/qos"
	"cool/internal/transport"
)

// Core ORB types.
type (
	// ORB is a COOL Object Request Broker instance.
	ORB = orb.ORB
	// Object is a client proxy with the paper's SetQoSParameter method.
	Object = orb.Object
	// Servant is an object implementation (what skeletons wrap).
	Servant = orb.Servant
	// Invocation is one decoded request delivered to a servant.
	Invocation = orb.Invocation
	// ReplyWriter encodes a servant's results.
	ReplyWriter = orb.ReplyWriter
	// UserError raises an IDL-declared exception from a servant.
	UserError = orb.UserError
	// Pending is an in-flight deferred invocation (defer/poll/cancel).
	Pending = orb.Pending

	// Ref is an object reference; RefString gives its stringified form.
	Ref = ior.Ref

	// QoSParameter mirrors the paper's QoSParameter struct.
	QoSParameter = qos.Parameter
	// QoSSet is an ordered set of QoS parameters.
	QoSSet = qos.Set
	// Capability describes what a provider can deliver per dimension.
	Capability = qos.Capability
)

// QoS dimensions (see qos.ParamType for units).
const (
	Throughput      = qos.Throughput
	Latency         = qos.Latency
	Jitter          = qos.Jitter
	Reliability     = qos.Reliability
	Ordering        = qos.Ordering
	Confidentiality = qos.Confidentiality
	Priority        = qos.Priority

	// NoLimit leaves a parameter's upper bound open.
	NoLimit = qos.NoLimit
)

// NewORB creates an ORB with the tcp and inproc transports registered and
// both message protocols of the generic message layer available: GIOP (the
// default) and the proprietary COOL protocol ("cool"), selectable per
// endpoint via ListenOnProtocol. Options: WithName, WithTransport,
// WithPrincipal, WithMessageProtocol, WithDrainTimeout.
func NewORB(opts ...orb.Option) *ORB {
	all := make([]orb.Option, 0, len(opts)+1)
	all = append(all, orb.WithMessageProtocol(coolproto.Codec{}))
	all = append(all, opts...)
	return orb.New(all...)
}

// Re-exported ORB options.
var (
	WithName           = orb.WithName
	WithTransport      = orb.WithTransport
	WithPrincipal      = orb.WithPrincipal
	WithDrainTimeout   = orb.WithDrainTimeout
	WithCapability     = orb.WithCapability
	WithKey            = orb.WithKey
	WithInlineDispatch = orb.WithInlineDispatch
	WithMaxInFlight    = orb.WithMaxInFlight
	WithConnStripes    = orb.WithConnStripes
	// WithSlowCallThreshold is re-exported in stats.go next to the other
	// observability surface.
)

// RefString returns the stringified ("IOR:…") form of a reference.
func RefString(r Ref) string { return ior.Marshal(r) }

// ParseRef parses a stringified reference.
func ParseRef(s string) (Ref, error) { return ior.Unmarshal(s) }

// QoS builds a validated QoS set from parameters; it panics on invalid
// combinations, which are programming errors in the caller. Use TryQoS
// when the parameters come from configuration or user input.
func QoS(params ...QoSParameter) QoSSet {
	s, err := qos.NewSet(params...)
	if err != nil {
		panic("cool: invalid QoS set: " + err.Error())
	}
	return s
}

// TryQoS builds a validated QoS set from parameters, returning the
// validation error instead of panicking.
func TryQoS(params ...QoSParameter) (QoSSet, error) {
	return qos.NewSet(params...)
}

// MinThroughput requests `want` kbit/s and accepts down to `atLeast`.
func MinThroughput(want, atLeast uint32) QoSParameter {
	return QoSParameter{Type: Throughput, Request: want, Max: NoLimit, Min: int32(atLeast)}
}

// MaxLatency requests a one-way delay bound of `want` µs, accepting up to
// `atMost`.
func MaxLatency(want, atMost uint32) QoSParameter {
	return QoSParameter{Type: Latency, Request: want, Max: int32(atMost), Min: 0}
}

// MaxJitter requests a delay-variation bound of `want` µs, accepting up to
// `atMost`.
func MaxJitter(want, atMost uint32) QoSParameter {
	return QoSParameter{Type: Jitter, Request: want, Max: int32(atMost), Min: 0}
}

// Reliable demands fully reliable, ordered delivery.
func Reliable() []QoSParameter {
	return []QoSParameter{
		{Type: Reliability, Request: 0, Max: 0, Min: 0},
		{Type: Ordering, Request: 1, Max: 1, Min: 1},
	}
}

// Encrypted demands payload confidentiality.
func Encrypted() QoSParameter {
	return QoSParameter{Type: Confidentiality, Request: 1, Max: 1, Min: 1}
}

// DaCaPoConfig configures EnableDaCaPo.
type DaCaPoConfig struct {
	// Inner is the T service Da CaPo runs over; nil selects a fresh
	// in-process transport (useful for single-host demos and tests).
	Inner transport.Manager
	// BudgetKbps is the endpoint's bandwidth budget for admission control;
	// 0 means unlimited.
	BudgetKbps uint32
	// MaxConns caps concurrent QoS connections; 0 means unlimited.
	MaxConns int
	// Link describes the raw network the inner transport traverses; nil
	// selects the paper's 155 Mbit/s ATM-like profile.
	Link Capability
}

// EnableDaCaPo registers the Da CaPo transport (scheme "dacapo") with the
// ORB, making QoS bindings possible, and returns the manager.
func EnableDaCaPo(o *ORB, cfg DaCaPoConfig) *dacapo.Manager {
	inner := cfg.Inner
	if inner == nil {
		inner = transport.NewInprocManager()
	}
	link := cfg.Link
	if link == nil {
		link = netsim.LAN().Capability()
	}
	m := dacapo.NewManager(
		inner,
		modules.NewLibrary(),
		dacapo.NewResourceManager(cfg.BudgetKbps, cfg.MaxConns),
		link,
	)
	m.Instrument(o.Metrics(), o.Tracer())
	o.Transports().Register(m)
	return m
}

// Naming service access.
type (
	// NamingServant is the naming service implementation.
	NamingServant = naming.Servant
	// NamingClient is the typed naming service stub.
	NamingClient = naming.Client
)

// NewNamingServant returns an empty naming context to register with an ORB.
func NewNamingServant() *NamingServant { return naming.NewServant() }

// NewNamingClient wraps a resolved naming service object.
func NewNamingClient(obj *Object) *NamingClient { return naming.NewClient(obj) }

package cool_test

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"cool"
	"cool/internal/cdr"
	"cool/internal/giop"
)

// laggyEcho answers echo after a deliberate delay so slow-call detection has
// something to catch.
type laggyEcho struct{ delay time.Duration }

func (laggyEcho) RepoID() string { return "IDL:test/LaggyEcho:1.0" }

func (s laggyEcho) Invoke(inv *cool.Invocation) (cool.ReplyWriter, error) {
	switch inv.Operation {
	case "echo":
		msg, err := inv.Args.ReadOctetSeq()
		if err != nil {
			return nil, giop.MarshalException()
		}
		time.Sleep(s.delay)
		out := append([]byte(nil), msg...)
		return func(enc *cdr.Encoder) { enc.WriteOctetSeq(out) }, nil
	default:
		return nil, giop.BadOperation()
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body)
}

// TestOpsEndpointEndToEnd drives traced invocations against a server with a
// slow-call threshold, then checks the whole live-observability loop: the
// /metrics exposition carries per-op percentiles with a bucket exemplar,
// /trace resolves that exemplar to the server-side span, /trace/slow lists
// the slow dispatches, and both sides' SlowLogs captured records.
func TestOpsEndpointEndToEnd(t *testing.T) {
	const threshold = 100 * time.Microsecond
	server := cool.NewORB(cool.WithName("ops-server"), cool.WithSlowCallThreshold(threshold))
	defer server.Shutdown()
	if _, err := server.ListenOn("tcp", "127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	ref, err := server.RegisterServant(laggyEcho{delay: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	ops, err := cool.ServeOps("127.0.0.1:0", server)
	if err != nil {
		t.Fatalf("ServeOps: %v", err)
	}
	defer ops.Close()

	client := cool.NewORB(cool.WithName("ops-client"), cool.WithSlowCallThreshold(threshold))
	defer client.Shutdown()
	cool.TraceLog(client) // tracing on: trace context propagates, exemplars record

	obj, err := client.ResolveString(cool.RefString(ref))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	const calls = 4
	for i := 0; i < calls; i++ {
		err := obj.Invoke("echo",
			func(enc *cdr.Encoder) { enc.WriteOctetSeq([]byte("x")) },
			func(dec *cdr.Decoder) error { _, err := dec.ReadOctetSeq(); return err })
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	base := "http://" + ops.Addr()

	// /metrics: per-op dispatch percentiles plus a bucket exemplar, and the
	// runtime gauges sampled at scrape time.
	metrics := httpGet(t, base+"/metrics")
	for _, want := range []string{
		"orb.server.requests{op=echo} 4",
		"orb.server.dispatch_us{op=echo} count=4",
		"p99=",
		"orb.server.slow_calls 4",
		"runtime.goroutines",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// Pull the dispatch histogram's exemplar out of the exposition and
	// resolve it through /trace — the curl-level version of "p99 spike →
	// which call was that?".
	histLine := ""
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "orb.server.dispatch_us{op=echo}") {
			histLine = line
		}
	}
	m := regexp.MustCompile(`#([0-9a-f]{16})`).FindStringSubmatch(histLine)
	if m == nil {
		t.Fatalf("dispatch histogram line carries no exemplar: %q", histLine)
	}
	traceDump := httpGet(t, base+"/trace?trace="+m[1])
	if !strings.Contains(traceDump, "server:echo") {
		t.Errorf("exemplar %s did not resolve to a server span:\n%s", m[1], traceDump)
	}

	// /trace/slow: the dispatches (2ms against a 100µs bound) are listed
	// with trace IDs and the configured bound.
	slowDump := httpGet(t, base+"/trace/slow")
	if !strings.Contains(slowDump, "server echo") || !strings.Contains(slowDump, "bound=100µs") {
		t.Errorf("/trace/slow missing slow dispatches:\n%s", slowDump)
	}

	// Both sides' slow logs captured structured records; the client one
	// names the peer endpoint.
	if got := cool.SlowCalls(server).Total(); got != calls {
		t.Errorf("server slow calls = %d, want %d", got, calls)
	}
	clientCalls := cool.SlowCalls(client).Calls()
	if len(clientCalls) != calls {
		t.Fatalf("client slow calls = %d, want %d", len(clientCalls), calls)
	}
	c := clientCalls[0]
	if c.Side != "client" || c.Op != "echo" || !strings.HasPrefix(c.Peer, "tcp://") {
		t.Errorf("client slow record wrong: %+v", c)
	}
	if c.Dur <= c.Bound || c.Bound != threshold {
		t.Errorf("client slow record dur=%v bound=%v, want dur > bound = %v", c.Dur, c.Bound, threshold)
	}
	if c.Trace.IsZero() {
		t.Error("client slow record has no trace ID")
	}
}

// TestStatsDeltaOverWire exercises the structured snapshot path coolstat
// -watch uses: two snapshot_bin fetches around a burst of calls, diffed
// with Delta, must show exactly that burst as rates and percentiles.
func TestStatsDeltaOverWire(t *testing.T) {
	server := cool.NewORB(cool.WithName("delta-server"))
	defer server.Shutdown()
	if _, err := server.ListenOn("tcp", "127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	ref, err := server.RegisterServant(obsEcho{})
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	statsRef, err := server.RegisterServant(cool.NewStatsServant(server))
	if err != nil {
		t.Fatalf("register stats: %v", err)
	}

	client := cool.NewORB(cool.WithName("delta-client"))
	defer client.Shutdown()
	obj, err := client.ResolveString(cool.RefString(ref))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	statsObj, err := client.ResolveString(cool.RefString(statsRef))
	if err != nil {
		t.Fatalf("resolve stats: %v", err)
	}
	stats := cool.NewStatsClient(statsObj)

	echo := func(n int) {
		for i := 0; i < n; i++ {
			err := obj.Invoke("echo",
				func(enc *cdr.Encoder) { enc.WriteOctetSeq([]byte("d")) },
				func(dec *cdr.Decoder) error { _, err := dec.ReadOctetSeq(); return err })
			if err != nil {
				t.Fatalf("invoke: %v", err)
			}
		}
	}

	echo(3)
	prev, err := stats.SnapshotData()
	if err != nil {
		t.Fatalf("snapshot_bin: %v", err)
	}
	if got := prev.Counter("orb.server.requests{op=echo}"); got != 3 {
		t.Errorf("first snapshot echo requests = %d, want 3", got)
	}
	echo(5)
	time.Sleep(2 * time.Millisecond) // ensure a measurable interval
	cur, err := stats.SnapshotData()
	if err != nil {
		t.Fatalf("snapshot_bin: %v", err)
	}

	d := cur.Delta(prev)
	if d.Interval <= 0 {
		t.Fatalf("delta interval = %v, want > 0", d.Interval)
	}
	if got := d.Counter("orb.server.requests{op=echo}"); got != 5 {
		t.Errorf("delta echo requests = %d, want 5", got)
	}
	if rate := d.Rate("orb.server.requests{op=echo}"); rate <= 0 {
		t.Errorf("delta rate = %f, want > 0", rate)
	}
	h, ok := d.Histogram("orb.server.dispatch_us{op=echo}")
	if !ok {
		t.Fatal("dispatch histogram missing from delta")
	}
	if h.Count != 5 {
		t.Errorf("delta dispatch count = %d, want 5", h.Count)
	}
	// Slow fetch works over the wire too (empty: nothing was slow).
	if slow, err := stats.Slow(); err != nil {
		t.Errorf("slow: %v", err)
	} else if slow != "" {
		t.Errorf("slow log should be empty, got:\n%s", slow)
	}
}

// The pooldebug suite driver: runs the whole test suite once more with the
// pooldebug runtime verifier compiled in (buffer poisoning, double-release
// panics, leak ledgers). The build tag below keeps the driver out of the
// child run — the suite must not recurse into itself.

//go:build !pooldebug

package cool_test

import (
	"os/exec"
	"testing"
)

// TestPoolDebugSuite re-runs `go test ./...` under -tags pooldebug. Any
// pooling-contract violation anywhere in the tree fails this test with the
// verifier's panic (double release, with both stacks) or a leak report.
func TestPoolDebugSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("pooldebug suite re-runs all tests; skipped in -short")
	}
	cmd := exec.Command("go", "test", "-count=1", "-tags", "pooldebug", "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go test -tags pooldebug ./... failed: %v\n%s", err, out)
	}
}

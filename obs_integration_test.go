package cool_test

import (
	"strings"
	"testing"

	"cool"
	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/obs"
	"cool/internal/qos"
	"cool/internal/transport"
)

type obsEcho struct{}

func (obsEcho) RepoID() string { return "IDL:test/ObsEcho:1.0" }

func (obsEcho) Invoke(inv *cool.Invocation) (cool.ReplyWriter, error) {
	switch inv.Operation {
	case "echo":
		msg, err := inv.Args.ReadOctetSeq()
		if err != nil {
			return nil, giop.MarshalException()
		}
		out := append([]byte(nil), msg...)
		return func(enc *cdr.Encoder) { enc.WriteOctetSeq(out) }, nil
	default:
		return nil, giop.BadOperation()
	}
}

// TestObservabilityEndToEnd is the acceptance check for the observability
// layer: client→server invocations over real TCP sockets with Da CaPo
// enabled must produce (a) the same trace ID in both processes' span logs,
// joined parent→child via the GIOP trace service context, (b) non-zero
// latency histogram buckets on both sides, (c) GIOP message counters that
// match the number of requests/replies, and (d) a Da CaPo admission event.
func TestObservabilityEndToEnd(t *testing.T) {
	server := cool.NewORB(cool.WithName("obs-server"))
	defer server.Shutdown()
	cool.EnableDaCaPo(server, cool.DaCaPoConfig{Inner: transport.NewTCPManager()})
	serverLog := cool.TraceLog(server)
	if _, err := server.ListenOn("dacapo", "127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	ref, err := server.RegisterServant(obsEcho{}, cool.WithCapability(qos.Unconstrained()))
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	client := cool.NewORB(cool.WithName("obs-client"))
	defer client.Shutdown()
	cool.EnableDaCaPo(client, cool.DaCaPoConfig{Inner: transport.NewTCPManager()})
	clientLog := cool.TraceLog(client)

	obj, err := client.ResolveString(cool.RefString(ref))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	req, err := cool.TryQoS(cool.MinThroughput(5_000, 1_000))
	if err != nil {
		t.Fatalf("TryQoS: %v", err)
	}
	if err := obj.SetQoSParameter(req); err != nil {
		t.Fatalf("SetQoSParameter: %v", err)
	}

	const calls = 8
	payload := []byte("observable payload")
	for i := 0; i < calls; i++ {
		err := obj.Invoke("echo",
			func(enc *cdr.Encoder) { enc.WriteOctetSeq(payload) },
			func(dec *cdr.Decoder) error {
				got, err := dec.ReadOctetSeq()
				if err != nil {
					return err
				}
				if string(got) != string(payload) {
					t.Errorf("echo mismatch: %q", got)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	// (a) Cross-process trace propagation: every client span must reappear
	// as a server span with the same trace ID, parented on the client span.
	clientSpans := map[obs.TraceID]obs.Event{}
	for _, ev := range clientLog.Events() {
		if ev.Kind == "span" && ev.Name == "client:echo" {
			clientSpans[ev.Trace] = ev
		}
	}
	if len(clientSpans) != calls {
		t.Fatalf("client spans: got %d traces, want %d", len(clientSpans), calls)
	}
	joined := 0
	for _, ev := range serverLog.Events() {
		if ev.Kind != "span" || ev.Name != "server:echo" {
			continue
		}
		cs, ok := clientSpans[ev.Trace]
		if !ok {
			t.Errorf("server span trace %s not found on the client side", ev.Trace)
			continue
		}
		if ev.Parent != cs.Span {
			t.Errorf("server span parent %016x, want client span %016x", ev.Parent, cs.Span)
		}
		if ev.Outcome != "ok" {
			t.Errorf("server span outcome %q, want ok", ev.Outcome)
		}
		joined++
	}
	if joined != calls {
		t.Errorf("joined server spans: got %d, want %d", joined, calls)
	}

	cs := cool.Metrics(client).Snapshot()
	ss := cool.Metrics(server).Snapshot()

	// (b) Non-zero latency histograms on both sides.
	for _, probe := range []struct {
		side string
		s    cool.MetricsSnapshot
		name string
	}{
		{"client", cs, "orb.client.latency_us{op=echo}"},
		{"server", ss, "orb.server.dispatch_us{op=echo}"},
	} {
		h, ok := probe.s.Histogram(probe.name)
		if !ok {
			t.Fatalf("%s: histogram %s missing", probe.side, probe.name)
		}
		if h.Count != calls {
			t.Errorf("%s: %s count = %d, want %d", probe.side, probe.name, h.Count, calls)
		}
		nonZero := 0
		for _, b := range h.Buckets {
			if b > 0 {
				nonZero++
			}
		}
		if nonZero == 0 {
			t.Errorf("%s: %s has no non-zero buckets", probe.side, probe.name)
		}
	}

	// (c) GIOP message counters match the requests/replies exchanged.
	for _, probe := range []struct {
		side string
		s    cool.MetricsSnapshot
		name string
		want uint64
	}{
		{"client", cs, "orb.client.calls{op=echo}", calls},
		{"client", cs, "giop.out.msgs{type=Request}", calls},
		{"client", cs, "giop.in.msgs{type=Reply}", calls},
		{"server", ss, "orb.server.requests{op=echo}", calls},
		{"server", ss, "giop.in.msgs{type=Request}", calls},
		{"server", ss, "giop.out.msgs{type=Reply}", calls},
		{"client", cs, "orb.client.qos{result=ack}", 1},
	} {
		if got := probe.s.Counter(probe.name); got != probe.want {
			t.Errorf("%s: %s = %d, want %d", probe.side, probe.name, got, probe.want)
		}
	}

	// (d) The server observed the Da CaPo admission decision.
	admissions := 0
	for _, ev := range serverLog.Events() {
		if ev.Kind == "dacapo.admission" {
			if ev.Outcome != "accept" {
				t.Errorf("admission outcome %q, want accept", ev.Outcome)
			}
			admissions++
		}
	}
	if admissions == 0 {
		t.Error("no dacapo.admission event on the server side")
	}
	if got := ss.Counter("dacapo.admission.accepted"); got == 0 {
		t.Error("dacapo.admission.accepted counter is zero")
	}

	// The text exposition renders both the counters and the histograms.
	text := cs.Text()
	for _, want := range []string{"orb.client.calls{op=echo} 8", "orb.client.latency_us{op=echo} count=8"} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, text)
		}
	}

	// (e) Cross-process exemplars: the client latency histogram's tail
	// exemplar — the trace behind the worst observed latency, the one a p99
	// investigation would chase — must resolve to a server-side span
	// carrying the same trace ID.
	ch, _ := cs.Histogram("orb.client.latency_us{op=echo}")
	tail := ch.TailExemplar()
	if tail.IsZero() {
		t.Fatal("client latency histogram recorded no tail exemplar")
	}
	if _, ok := clientSpans[tail]; !ok {
		t.Errorf("tail exemplar %s is not a client-side trace", tail)
	}
	resolved := false
	for _, ev := range serverLog.Events() {
		if ev.Kind == "span" && ev.Name == "server:echo" && ev.Trace == tail {
			resolved = true
			break
		}
	}
	if !resolved {
		t.Errorf("tail exemplar %s does not resolve to a server-side span", tail)
	}
	// Every occupied bucket carries an exemplar (all calls were traced),
	// and the exposition renders them as #<trace-id> suffixes.
	for i, b := range ch.Buckets {
		if b > 0 && ch.Exemplars[i] == 0 {
			t.Errorf("occupied bucket %d has no exemplar", i)
		}
	}
	if !strings.Contains(text, "#"+tail.String()) {
		t.Errorf("snapshot text missing exemplar #%s:\n%s", tail, text)
	}
}

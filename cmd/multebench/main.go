// Multebench regenerates the paper's evaluation tables and figures plus the
// ablations listed in DESIGN.md §4.
//
// Usage:
//
//	multebench                         # run everything
//	multebench -experiment fig9        # one experiment: fig9 | giop |
//	                                   # negotiation | transport | config |
//	                                   # marshal | obs | load | pipeline
//	multebench -experiment load \
//	  -load-conc 10000 -load-rate 0    # E11: high-concurrency echo load,
//	                                   # closed loop (-load-rate 0) or
//	                                   # open loop (arrivals/second);
//	                                   # -load-json for machine output
//	multebench -experiment pipeline    # E10: high-RTT request pipelining
//	multebench -experiment reconfig    # E12: mid-stream module-graph
//	                                   # renegotiation under load (no
//	                                   # loss, no duplication)
//	multebench -quick                  # smaller sample counts
//	multebench -stats                  # metrics snapshot + recent trace
//	                                   # events after each run
//	multebench -json                   # machine-readable output of the
//	                                   # perf-regression set (transport,
//	                                   # marshal, giop) — the format
//	                                   # recorded in BENCH_PR*.json
//
// Output is plain text tables, one per experiment, in the same arrangement
// as the paper (Figure 9: configurations × packet sizes, throughput in
// Mbit/s).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"cool/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "multebench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("multebench", flag.ContinueOnError)
	exp := fs.String("experiment", "all", "experiment to run: fig9|giop|negotiation|transport|config|marshal|obs|load|pipeline|reconfig|all")
	quick := fs.Bool("quick", false, "smaller sample counts (noisier, faster)")
	stats := fs.Bool("stats", false, "print a metrics snapshot and recent trace events after each run")
	jsonOut := fs.Bool("json", false, "emit the perf-regression set (transport, marshal, giop) as JSON")
	loadConc := fs.Int("load-conc", 1000, "load: concurrent callers (closed loop) / outstanding cap (open loop)")
	loadPayload := fs.Int("load-payload", 256, "load: echo payload octets")
	loadDur := fs.Duration("load-duration", 2*time.Second, "load: measurement window")
	loadRate := fs.Int("load-rate", 0, "load: open-loop arrivals per second (0 = closed loop)")
	loadStripes := fs.Int("load-stripes", 0, "load: connection stripes per endpoint (0 = ORB default)")
	loadMaxInFlight := fs.Int("load-maxinflight", 0, "load: per-connection in-flight cap (0 = ORB default)")
	loadJSON := fs.Bool("load-json", false, "load/pipeline: emit the result as JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *stats {
		experiments.StatsHook = func(label, report string) {
			fmt.Printf("\n── stats [%s] ──\n%s", label, report)
		}
		defer func() { experiments.StatsHook = nil }()
	}

	n := 400
	payload := 1024
	if *quick {
		n = 50
	}

	if *jsonOut {
		return runJSON(n, payload, *quick)
	}

	loadOpts := experiments.LoadOptions{
		Conc:        *loadConc,
		Payload:     *loadPayload,
		Duration:    *loadDur,
		RatePerSec:  *loadRate,
		Stripes:     *loadStripes,
		MaxInFlight: *loadMaxInFlight,
	}
	runs := map[string]func() error{
		"fig9":        func() error { return runFig9(*quick) },
		"giop":        func() error { return runGIOP(n, payload) },
		"negotiation": func() error { return runNegotiation(n/4, payload) },
		"transport":   func() error { return runTransport(n, payload) },
		"config":      func() error { return runConfig() },
		"marshal":     func() error { return runMarshal() },
		"obs":         func() error { return runObs(n / 8) },
		"load":        func() error { return runLoad(loadOpts, *loadJSON) },
		"pipeline":    func() error { return runPipeline(*quick, *loadJSON) },
		"reconfig":    func() error { return runReconfig(*quick) },
	}
	if *exp != "all" {
		fn, ok := runs[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		return fn()
	}
	for _, name := range []string{"fig9", "giop", "negotiation", "transport", "config", "marshal", "obs", "load", "pipeline", "reconfig"} {
		if err := runs[name](); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n══ %s ══\n\n", title)
}

// jsonRT is RTStats in nanoseconds for machine consumption.
type jsonRT struct {
	Samples int   `json:"samples"`
	MeanNs  int64 `json:"mean_ns"`
	P50Ns   int64 `json:"p50_ns"`
	P95Ns   int64 `json:"p95_ns"`
	P99Ns   int64 `json:"p99_ns"`
}

func toJSONRT(s experiments.RTStats) jsonRT {
	return jsonRT{Samples: s.N, MeanNs: s.Mean.Nanoseconds(),
		P50Ns: s.P50.Nanoseconds(), P95Ns: s.P95.Nanoseconds(), P99Ns: s.P99.Nanoseconds()}
}

// jsonReport is the machine-readable result of the perf-regression set.
// BENCH_PR*.json files record snapshots of this data (plus the matching
// `go test -bench` numbers) across PRs.
type jsonReport struct {
	Timestamp string `json:"timestamp"`
	Quick     bool   `json:"quick"`
	Transport []struct {
		Transport string `json:"transport"`
		RT        jsonRT `json:"rt"`
	} `json:"transport"`
	Marshal []struct {
		Version   string  `json:"version"`
		QoSParams int     `json:"qos_params"`
		WireBytes int     `json:"wire_bytes"`
		EncodeNs  float64 `json:"encode_ns"`
		DecodeNs  float64 `json:"decode_ns"`
	} `json:"marshal"`
	GIOP struct {
		Plain jsonRT `json:"giop_1_0"`
		QoS   jsonRT `json:"giop_9_9"`
	} `json:"giop"`
}

// runJSON measures the perf-regression experiments and prints one JSON
// document to stdout.
func runJSON(n, payload int, quick bool) error {
	var rep jsonReport
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)
	rep.Quick = quick

	points, err := experiments.RunTransportComparison(n, payload)
	if err != nil {
		return err
	}
	for _, p := range points {
		rep.Transport = append(rep.Transport, struct {
			Transport string `json:"transport"`
			RT        jsonRT `json:"rt"`
		}{p.Transport, toJSONRT(p.Stats)})
	}

	iters := 20000
	if quick {
		iters = 2000
	}
	rows, err := experiments.RunMarshalComparison(iters)
	if err != nil {
		return err
	}
	for _, r := range rows {
		rep.Marshal = append(rep.Marshal, struct {
			Version   string  `json:"version"`
			QoSParams int     `json:"qos_params"`
			WireBytes int     `json:"wire_bytes"`
			EncodeNs  float64 `json:"encode_ns"`
			DecodeNs  float64 `json:"decode_ns"`
		}{r.Version, r.QoSParams, r.WireBytes, r.EncodeNs, r.DecodeNs})
	}

	cmp, err := experiments.RunGIOPComparison(n, payload)
	if err != nil {
		return err
	}
	rep.GIOP.Plain = toJSONRT(cmp.Plain)
	rep.GIOP.QoS = toJSONRT(cmp.QoS)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func runFig9(quick bool) error {
	header("E1 / Figure 9 — Da CaPo throughput (Mbit/s) per packet size and protocol configuration")
	fmt.Println("   (simulated 155 Mbit/s link; paper shape: bigger packets → higher throughput,")
	fmt.Println("    0→40 dummy modules ≈ flat, IRQ collapses under stop-and-wait flow control)")
	fmt.Println()
	opts := experiments.DefaultFig9Options()
	if quick {
		opts = experiments.QuickFig9Options()
	}
	start := time.Now()
	points, err := experiments.RunFig9(opts)
	if err != nil {
		return err
	}
	// Pivot: rows = configs, columns = packet sizes.
	sizes := experiments.Fig9PacketSizes()
	byConfig := map[string]map[int]float64{}
	var order []string
	for _, p := range points {
		if byConfig[p.Config] == nil {
			byConfig[p.Config] = map[int]float64{}
			order = append(order, p.Config)
		}
		byConfig[p.Config][p.PacketSize] = p.Mbps
	}
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "config\\pkt")
	for _, s := range sizes {
		fmt.Fprintf(w, "\t%s", experiments.FormatSize(s))
	}
	fmt.Fprintln(w, "\t")
	for _, cfg := range order {
		fmt.Fprint(w, cfg)
		for _, s := range sizes {
			fmt.Fprintf(w, "\t%.1f", byConfig[cfg][s])
		}
		fmt.Fprintln(w, "\t")
	}
	w.Flush()
	fmt.Printf("\n   (measured in %v)\n", time.Since(start).Round(time.Second))
	return nil
}

func runGIOP(n, payload int) error {
	header("E2 — response time: original GIOP 1.0 vs QoS-extended GIOP 9.9")
	cmp, err := experiments.RunGIOPComparison(n, payload)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "version\tsamples\tmean\tp50\tp95\tp99\t")
	fmt.Fprintf(w, "GIOP 1.0 (no QoS)\t%d\t%v\t%v\t%v\t%v\t\n", cmp.Plain.N, cmp.Plain.Mean, cmp.Plain.P50, cmp.Plain.P95, cmp.Plain.P99)
	fmt.Fprintf(w, "GIOP 9.9 (qos_params)\t%d\t%v\t%v\t%v\t%v\t\n", cmp.QoS.N, cmp.QoS.Mean, cmp.QoS.P50, cmp.QoS.P95, cmp.QoS.P99)
	w.Flush()
	delta := float64(cmp.QoS.P50-cmp.Plain.P50) / float64(cmp.Plain.P50) * 100
	fmt.Printf("\n   p50 delta: %+.1f%% (paper: \"no differences in response time\")\n", delta)
	return nil
}

func runNegotiation(n, payload int) error {
	header("E3 — negotiation scenarios of Figure 3")
	points, err := experiments.RunNegotiationScenarios(n, payload)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "scenario\tsamples\tmean\tp50\tp95\tp99\t")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t\n", p.Scenario, p.Stats.N, p.Stats.Mean, p.Stats.P50, p.Stats.P95, p.Stats.P99)
	}
	w.Flush()
	return nil
}

func runTransport(n, payload int) error {
	header("E4 — invocation latency per transport (1 KiB echo)")
	points, err := experiments.RunTransportComparison(n, payload)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "transport\tsamples\tmean\tp50\tp95\tp99\t")
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t\n", p.Transport, p.Stats.N, p.Stats.Mean, p.Stats.P50, p.Stats.P95, p.Stats.P99)
	}
	w.Flush()
	return nil
}

func runConfig() error {
	header("E5 — QoS → protocol configuration mapping (3% lossy link)")
	rows, err := experiments.RunConfigTable()
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', 0)
	fmt.Fprintln(w, "requirements\tconfigured protocol\tdelivered loss\t")
	for _, r := range rows {
		loss := "n/a"
		if r.Measured {
			loss = fmt.Sprintf("%.1f%%", r.DeliveredLossPct)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t\n", r.Requirements, r.Spec, loss)
	}
	w.Flush()
	return nil
}

func runObs(n int) error {
	header("E7 — observability: cross-process tracing and metrics (Da CaPo over TCP)")
	if n < 4 {
		n = 4
	}
	demo, err := experiments.RunObsDemo(n)
	if err != nil {
		return err
	}
	fmt.Print(demo.Report)
	return nil
}

func runLoad(opts experiments.LoadOptions, asJSON bool) error {
	if !asJSON {
		mode := "closed loop"
		if opts.RatePerSec > 0 {
			mode = fmt.Sprintf("open loop, %d arrivals/s", opts.RatePerSec)
		}
		header(fmt.Sprintf("E11 — connection multiplexing at scale (%d callers, %s)", opts.Conc, mode))
	}
	res, err := experiments.RunLoad(opts)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "mode\tconc\tstripes\treqs\terrs\tdropped\treq/s\tp50\tp95\tp99\tflush mean/p99\tflow p99\t")
	fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.0f\t%dµs\t%dµs\t%dµs\t%.1f/%d\t%dµs\t\n",
		res.Mode, res.Conc, res.Stripes, res.Requests, res.Errors, res.Dropped, res.Throughput,
		res.P50us, res.P95us, res.P99us, res.FlushBatchMean, res.FlushBatchP99, res.FlowWaitP99us)
	w.Flush()
	return nil
}

func runPipeline(quick, asJSON bool) error {
	rtt, conc, invocations := 20*time.Millisecond, 32, 640
	if quick {
		rtt, conc, invocations = 5*time.Millisecond, 16, 320
	}
	if !asJSON {
		header(fmt.Sprintf("E10 — request pipelining on one connection (simulated %v RTT)", rtt))
	}
	res, err := experiments.RunPipelineExperiment(rtt, conc, invocations)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "rtt\tcallers\tinvocations\tsequential req/s\tpipelined req/s\tspeedup\tflush p99\t")
	fmt.Fprintf(w, "%dms\t%d\t%d\t%.1f\t%.1f\t%.1f×\t%d\t\n",
		res.RTTms, res.Conc, res.Invocations, res.SequentialRPS, res.PipelinedRPS, res.Speedup, res.FlushBatchP99)
	w.Flush()
	fmt.Printf("\n   (one striped connection; concurrent callers overlap RTTs and share writev batches)\n")
	return nil
}

func runReconfig(quick bool) error {
	opts := experiments.DefaultReconfigOptions()
	if quick {
		opts = experiments.QuickReconfigOptions()
	}
	header(fmt.Sprintf("E12 — mid-stream reconfiguration under load (%d msgs × %d B, %d splices)",
		opts.Messages, opts.MsgSize, opts.Splices))
	res, err := experiments.RunReconfig(opts)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "msgs\tsplices\tMbit/s\tlost\tdup\tinitiator s/c/a\tresponder s/c/a\t")
	fmt.Fprintf(w, "%d\t%d\t%.1f\t%d\t%d\t%d/%d/%d\t%d/%d/%d\t\n",
		res.Messages, res.Splices, res.Mbps, res.Lost, res.Duplicated,
		res.Initiator[0], res.Initiator[1], res.Initiator[2],
		res.Responder[0], res.Responder[1], res.Responder[2])
	w.Flush()
	fmt.Printf("\n   (cipher+crc32 ↔ rle+crc16 alternated mid-flood; strict sequence check: any\n" +
		"    loss, duplication or reorder across a splice fails the run; measured in " +
		res.Elapsed.Round(time.Millisecond).String() + ")\n")
	return nil
}

func runMarshal() error {
	header("E6 — Request wire size and codec cost of the qos_params extension")
	rows, err := experiments.RunMarshalComparison(20000)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 8, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "version\tqos params\twire bytes\tencode ns\tdecode ns\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.0f\t%.0f\t\n", r.Version, r.QoSParams, r.WireBytes, r.EncodeNs, r.DecodeNs)
	}
	w.Flush()
	return nil
}

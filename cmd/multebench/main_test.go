package main

import (
	"os"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// Only the cheap experiments; fig9 and the latency sweeps run in the
	// experiments package's own tests.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	for _, exp := range []string{"marshal"} {
		if err := run([]string{"-quick", "-experiment", exp}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "warp"}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag should fail")
	}
}

// Namesrv runs a standalone COOL naming service over TCP: clients resolve
// its object reference from the printed IOR (or a file) and use it to
// publish and look up other objects by name.
//
// Usage:
//
//	namesrv [-listen 127.0.0.1:4810] [-ior-file /tmp/ns.ior]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	cool "cool"
	"cool/internal/naming"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "namesrv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("namesrv", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:4810", "TCP address to serve on")
	iorFile := fs.String("ior-file", "", "write the stringified object reference to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o := cool.NewORB(cool.WithName("namesrv"))
	defer o.Shutdown()
	addr, err := o.ListenOn("tcp", *listen)
	if err != nil {
		return err
	}
	ref, err := o.RegisterServant(naming.NewServant())
	if err != nil {
		return err
	}
	iorStr := cool.RefString(ref)
	fmt.Println("naming service on", addr)
	fmt.Println(iorStr)
	if *iorFile != "" {
		if err := os.WriteFile(*iorFile, []byte(iorStr+"\n"), 0o644); err != nil {
			return err
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}

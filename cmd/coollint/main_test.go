package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture is a module-relative package that always produces diagnostics
// for its namesake analyzer.
const fixture = "internal/analysis/testdata/src/obsconst"

// cleanPkg is a module-relative package with no findings.
const cleanPkg = "internal/bufpool"

func runCmd(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCodeClean(t *testing.T) {
	code, stdout, stderr := runCmd(t, cleanPkg)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run printed diagnostics:\n%s", stdout)
	}
}

func TestExitCodeFindings(t *testing.T) {
	code, stdout, stderr := runCmd(t, fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "obsconst") {
		t.Fatalf("diagnostics missing analyzer name:\n%s", stdout)
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Fatalf("summary missing from stderr:\n%s", stderr)
	}
}

func TestExitCodeLoadError(t *testing.T) {
	code, _, stderr := runCmd(t, "no/such/dir")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, stderr)
	}
}

func TestExitCodeUnknownAnalyzer(t *testing.T) {
	// All unknown names are collected into one error, alongside the valid
	// name list.
	code, _, stderr := runCmd(t, "-only", "nosuch,lockorder,alsobad", cleanPkg)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Fatalf("stderr missing unknown-analyzer message:\n%s", stderr)
	}
	for _, want := range []string{"nosuch", "alsobad", "valid:"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestOnlyEmptySelection(t *testing.T) {
	code, _, stderr := runCmd(t, "-only", ", ,", cleanPkg)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "selected no analyzers") {
		t.Fatalf("stderr missing empty-selection message:\n%s", stderr)
	}
}

func TestListNamesAllAnalyzers(t *testing.T) {
	code, stdout, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"poolpair", "lockhold", "framealias", "obsconst", "wiretaint", "bindstate", "goroleak", "ctxflow", "lockorder", "atomicfield", "chanliveness", "hotalloc"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout)
		}
	}
}

func TestListOutputLocked(t *testing.T) {
	// -list is part of the CLI surface scripts grep: one line per analyzer,
	// name column then the one-line Doc, in registration order. Adding or
	// renaming an analyzer must update this table deliberately.
	want := []struct{ name, doc string }{
		{"poolpair", "pooled objects are released exactly once on every path"},
		{"lockhold", "no blocking channel operation, Wait, or blocking call while a mutex is held"},
		{"framealias", "no storing frame-aliasing slices beyond the pooled message lifetime"},
		{"obsconst", "metric and span names must not be built with function calls"},
		{"wiretaint", "wire-derived sizes must be bounds-checked before allocation or loop use"},
		{"bindstate", "explicit-binding lifecycle: no use after ORB shutdown, QoS errors checked, Pendings consumed"},
		{"goroleak", "every go statement needs a join/stop edge or a //coollint:detached declaration"},
		{"ctxflow", "context threading: ctx holders use ...Ctx invocation variants, exported blocking APIs offer one"},
		{"lockorder", "lock acquisition order is consistent module-wide (no deadlock cycles)"},
		{"atomicfield", "fields accessed via sync/atomic have no unguarded plain reads or writes"},
		{"chanliveness", "module-internal channel sends have live receivers; no double close"},
		{"hotalloc", "no unsanctioned heap allocation is reachable from a //coollint:hotpath root"},
	}
	var exp strings.Builder
	for _, w := range want {
		exp.WriteString(fmt.Sprintf("%-12s %s\n", w.name, w.doc))
	}
	code, stdout, _ := runCmd(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if stdout != exp.String() {
		t.Fatalf("-list output drifted:\n--- want ---\n%s--- got ---\n%s", exp.String(), stdout)
	}
}

func TestOnlyRestrictsAnalyzers(t *testing.T) {
	// The obsconst fixture trips obsconst but not goroleak: restricting to
	// goroleak must come back clean.
	code, stdout, stderr := runCmd(t, "-only", "goroleak", fixture)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if code, _, _ := runCmd(t, "-only", "obsconst", fixture); code != 1 {
		t.Fatalf("-only obsconst exit = %d, want 1", code)
	}
}

func TestOnlyCommaSeparatedList(t *testing.T) {
	// A multi-analyzer selection (with a stray trailing comma) runs every
	// named analyzer: the obsconst fixture still trips obsconst, and the
	// concurrency suite rides along clean.
	code, stdout, _ := runCmd(t, "-only", "lockorder,atomicfield,chanliveness,", fixture)
	if code != 0 {
		t.Fatalf("concurrency-only exit = %d, want 0\nstdout:\n%s", code, stdout)
	}
	code, stdout, _ = runCmd(t, "-only", "goroleak,obsconst", fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "obsconst") {
		t.Fatalf("diagnostics missing obsconst findings:\n%s", stdout)
	}
}

func TestJSONOutput(t *testing.T) {
	code, stdout, _ := runCmd(t, "-json", fixture)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var recs []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &recs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout)
	}
	if len(recs) == 0 {
		t.Fatal("JSON output is empty")
	}
	for _, r := range recs {
		if r.Analyzer != "obsconst" {
			t.Errorf("unexpected analyzer %q", r.Analyzer)
		}
		if filepath.IsAbs(r.File) || !strings.HasPrefix(r.File, "internal/analysis/testdata/") {
			t.Errorf("file not module-relative: %q", r.File)
		}
		if r.Line <= 0 || r.Col <= 0 {
			t.Errorf("missing position: %+v", r)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline.txt")

	code, _, stderr := runCmd(t, "-write-baseline", base, fixture)
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0\nstderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "obsconst") {
		t.Fatalf("baseline missing findings:\n%s", data)
	}

	// Every finding is in the baseline: the compare run passes.
	code, stdout, _ := runCmd(t, "-baseline", base, fixture)
	if code != 0 {
		t.Fatalf("-baseline exit = %d, want 0\nstdout:\n%s", code, stdout)
	}

	// An empty baseline tolerates nothing: everything is new again.
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCmd(t, "-baseline", empty, fixture); code != 1 {
		t.Fatalf("empty-baseline exit = %d, want 1", code)
	}

	// A stale baseline (findings fixed) is reported but does not fail.
	code, _, stderr = runCmd(t, "-baseline", base, cleanPkg)
	if code != 0 {
		t.Fatalf("stale-baseline exit = %d, want 0", code)
	}
	if !strings.Contains(stderr, "no longer fire") {
		t.Fatalf("stale baseline not reported:\n%s", stderr)
	}
}

func TestSuppressionStats(t *testing.T) {
	// The framealias fixture carries //coollint:allow sites; -stats must
	// surface them. Findings still exist, so the exit code stays 1.
	code, stdout, _ := runCmd(t, "-stats", "-only", "framealias", "internal/analysis/testdata/src/framealias")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "suppressions:") {
		t.Fatalf("missing suppression summary:\n%s", stdout)
	}
	if !strings.Contains(stdout, "framealias") || strings.Contains(stdout, "suppressions: none") {
		t.Fatalf("suppression summary should count framealias sites:\n%s", stdout)
	}
	if !strings.Contains(stdout, "timings: 1 analyzer(s)") {
		t.Fatalf("-stats missing per-analyzer wall time:\n%s", stdout)
	}
}

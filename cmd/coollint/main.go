// Command coollint runs the COOL static-analysis suite: custom analyzers
// that enforce the pooling/ownership contracts of the zero-allocation
// invocation path (see internal/analysis and DESIGN.md).
//
// Usage:
//
//	coollint [-list] [-only name,name] [patterns...]
//
// Patterns follow the loader's subset of go tool syntax: "./..." (default)
// for the whole module, "dir/..." for a subtree, or a module-relative
// directory. Diagnostics print as file:line:col: analyzer: message; the
// exit status is 1 when any diagnostic is reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cool/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("coollint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var picked []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				picked = append(picked, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(stderr, "coollint: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = picked
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "coollint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "coollint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "coollint: %v\n", err)
		return 2
	}

	diags := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "coollint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

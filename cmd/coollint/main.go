// Command coollint runs the COOL static-analysis suite: custom analyzers
// that enforce the pooling/ownership, wire-bounds, and binding-lifecycle
// contracts of the invocation path (see internal/analysis and DESIGN.md).
//
// Usage:
//
//	coollint [-list] [-only name,name] [-json] [-stats]
//	         [-baseline file] [-write-baseline file] [patterns...]
//
// Patterns follow the loader's subset of go tool syntax: "./..." (default)
// for the whole module, "dir/..." for a subtree, or a module-relative
// directory. Diagnostics print as file:line:col: analyzer: message (or as
// a JSON array with -json); the exit status is 1 when any diagnostic is
// reported, 2 on load errors.
//
// A baseline snapshot freezes the current findings: -write-baseline
// records them, and -baseline tolerates exactly the recorded findings,
// failing only on new ones. -stats appends a summary of findings silenced
// by //coollint:allow annotations and per-analyzer wall time.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flag"

	"cool/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("coollint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	stats := fs.Bool("stats", false, "print a summary of suppressed findings")
	baseline := fs.String("baseline", "", "compare findings against a baseline snapshot; only new findings fail")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to a baseline snapshot and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		seen := make(map[string]bool)
		var unknown []string
		for _, n := range strings.Split(*only, ",") {
			n = strings.TrimSpace(n)
			if n == "" || seen[n] {
				continue
			}
			seen[n] = true
			if a, ok := byName[n]; ok {
				picked = append(picked, a)
			} else {
				unknown = append(unknown, n)
			}
		}
		if len(unknown) > 0 {
			valid := make([]string, len(analyzers))
			for i, a := range analyzers {
				valid[i] = a.Name
			}
			fmt.Fprintf(stderr, "coollint: unknown analyzer(s): %s (valid: %s)\n",
				strings.Join(unknown, ", "), strings.Join(valid, ", "))
			return 2
		}
		if len(picked) == 0 {
			fmt.Fprintln(stderr, "coollint: -only selected no analyzers")
			return 2
		}
		analyzers = picked
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "coollint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "coollint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "coollint: %v\n", err)
		return 2
	}

	diags, suppressed, timings := analysis.RunAnalyzersTimed(pkgs, analyzers)

	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, loader.ModuleRoot, diags); err != nil {
			fmt.Fprintf(stderr, "coollint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "coollint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baseline != "" {
		kept, stale, err := filterBaseline(*baseline, loader.ModuleRoot, diags)
		if err != nil {
			fmt.Fprintf(stderr, "coollint: %v\n", err)
			return 2
		}
		if stale > 0 {
			fmt.Fprintf(stderr, "coollint: %d baseline entrie(s) no longer fire; refresh with -write-baseline\n", stale)
		}
		diags = kept
	}

	if *asJSON {
		if err := emitJSON(stdout, loader.ModuleRoot, diags); err != nil {
			fmt.Fprintf(stderr, "coollint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}

	if *stats {
		printSuppressionStats(stdout, suppressed)
		printTimingStats(stdout, timings)
	}

	if len(diags) > 0 {
		fmt.Fprintf(stderr, "coollint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// baselineKey renders one finding in the stable, module-relative form the
// baseline file stores.
func baselineKey(root string, d analysis.Diagnostic) string {
	return fmt.Sprintf("%s:%d: %s: %s", relPath(root, d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
}

// relPath maps an absolute filename to a module-root-relative slash path,
// keeping baselines and JSON output portable across checkouts.
func relPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// writeBaselineFile snapshots the findings, one per line, sorted.
func writeBaselineFile(path, root string, diags []analysis.Diagnostic) error {
	lines := make([]string, len(diags))
	for i, d := range diags {
		lines[i] = baselineKey(root, d)
	}
	sort.Strings(lines)
	out := strings.Join(lines, "\n")
	if out != "" {
		out += "\n"
	}
	return os.WriteFile(path, []byte(out), 0o644)
}

// filterBaseline drops findings recorded in the baseline (as a multiset)
// and reports how many baseline entries no longer fire.
func filterBaseline(path, root string, diags []analysis.Diagnostic) (kept []analysis.Diagnostic, stale int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	known := make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			known[line]++
		}
	}
	for _, d := range diags {
		key := baselineKey(root, d)
		if known[key] > 0 {
			known[key]--
			continue
		}
		kept = append(kept, d)
	}
	for _, n := range known {
		stale += n
	}
	return kept, stale, nil
}

// emitJSON renders diagnostics as a JSON array of position/message
// records with module-relative paths.
func emitJSON(w io.Writer, root string, diags []analysis.Diagnostic) error {
	type rec struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]rec, len(diags))
	for i, d := range diags {
		out[i] = rec{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printTimingStats lists cumulative per-analyzer wall time in run order,
// so a slow analyzer shows up in CI logs before it becomes a problem.
func printTimingStats(w io.Writer, timings []analysis.AnalyzerTiming) {
	var total time.Duration
	for _, t := range timings {
		total += t.Elapsed
	}
	fmt.Fprintf(w, "timings: %d analyzer(s), %s total\n", len(timings), total.Round(time.Microsecond))
	for _, t := range timings {
		fmt.Fprintf(w, "  %-12s %s\n", t.Name, t.Elapsed.Round(time.Microsecond))
	}
}

// printSuppressionStats summarizes //coollint:allow usage per analyzer so
// suppression debt stays visible.
func printSuppressionStats(w io.Writer, suppressed []analysis.Diagnostic) {
	if len(suppressed) == 0 {
		fmt.Fprintln(w, "suppressions: none")
		return
	}
	perAnalyzer := make(map[string]int)
	for _, d := range suppressed {
		perAnalyzer[d.Analyzer]++
	}
	names := make([]string, 0, len(perAnalyzer))
	for n := range perAnalyzer {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "suppressions: %d finding(s) silenced by //coollint:allow\n", len(suppressed))
	for _, n := range names {
		fmt.Fprintf(w, "  %-12s %d\n", n, perAnalyzer[n])
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesFile(t *testing.T) {
	dir := t.TempDir()
	idlPath := filepath.Join(dir, "svc.idl")
	outPath := filepath.Join(dir, "gen", "svc.gen.go")
	src := `
module t {
  interface Svc { long add(in long a, in long b); };
};`
	if err := os.WriteFile(idlPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-pkg", "svcgen", "-out", outPath, idlPath}); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"package svcgen", "SvcStub", "SetQoSParameter"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "ok.idl")
	os.WriteFile(good, []byte(`interface I { void f(); };`), 0o644)
	bad := filepath.Join(dir, "bad.idl")
	os.WriteFile(bad, []byte(`interface {`), 0o644)

	tests := []struct {
		name string
		args []string
	}{
		{"no input", []string{"-pkg", "p"}},
		{"two inputs", []string{"-pkg", "p", good, good}},
		{"missing pkg", []string{good}},
		{"missing file", []string{"-pkg", "p", filepath.Join(dir, "absent.idl")}},
		{"syntax error", []string{"-pkg", "p", bad}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("run(%v) should fail", tt.args)
			}
		})
	}
}

func TestRunStdout(t *testing.T) {
	dir := t.TempDir()
	idlPath := filepath.Join(dir, "s.idl")
	os.WriteFile(idlPath, []byte(`interface S { void f(); };`), 0o644)
	// No -out: writes to stdout; just assert it does not error.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := run([]string{"-pkg", "p", idlPath}); err != nil {
		t.Fatal(err)
	}
}

// Chic is the IDL compiler of the COOL reproduction: it reads an IDL
// subset (see package cool/internal/idl) and generates Go stubs and
// skeletons, including the paper's QoS extension — every generated stub
// carries a SetQoSParameter method (§4.1).
//
// Usage:
//
//	chic -pkg mediagen -out mediagen/media.gen.go media.idl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cool/internal/idl"
	"cool/internal/idl/gen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chic:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chic", flag.ContinueOnError)
	pkg := fs.String("pkg", "", "Go package name for the generated file (required)")
	out := fs.String("out", "", "output file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("exactly one input .idl file required")
	}
	if *pkg == "" {
		return fmt.Errorf("-pkg is required")
	}
	input := fs.Arg(0)
	src, err := os.ReadFile(input)
	if err != nil {
		return err
	}
	spec, err := idl.Parse(string(src))
	if err != nil {
		return err
	}
	code, err := gen.Generate(spec, gen.Options{
		Package: *pkg,
		Source:  filepath.Base(input),
	})
	if err != nil {
		return err
	}
	if *out == "" {
		_, err = os.Stdout.Write(code)
		return err
	}
	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		return err
	}
	return os.WriteFile(*out, code, 0o644)
}

// Coolstat fetches the observability state of a running COOL process.
//
// A process that wants to be inspectable registers the built-in stats
// servant and publishes its reference:
//
//	ref, _ := o.RegisterServant(cool.NewStatsServant(o))
//	fmt.Println(cool.RefString(ref))
//
// Coolstat then resolves that reference through a fresh client ORB and
// prints the remote metrics snapshot (and, with -trace, the remote trace
// log):
//
//	coolstat IOR:0000…            # metrics snapshot
//	coolstat -trace IOR:0000…     # snapshot + recent trace events
//	coolstat -ior-file ref.txt    # read the reference from a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cool"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coolstat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("coolstat", flag.ContinueOnError)
	iorFile := fs.String("ior-file", "", "file holding the stats servant reference (IOR:…)")
	trace := fs.Bool("trace", false, "also fetch the remote trace log")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ref := strings.TrimSpace(strings.Join(fs.Args(), ""))
	if *iorFile != "" {
		data, err := os.ReadFile(*iorFile)
		if err != nil {
			return err
		}
		ref = strings.TrimSpace(string(data))
	}
	if ref == "" {
		return fmt.Errorf("usage: coolstat [-trace] [-ior-file FILE | IOR:…]")
	}

	o := cool.NewORB(cool.WithName("coolstat"))
	defer o.Shutdown()
	obj, err := o.ResolveString(ref)
	if err != nil {
		return fmt.Errorf("bad reference: %w", err)
	}
	stats := cool.NewStatsClient(obj)

	snap, err := stats.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	fmt.Fprint(w, snap)

	if *trace {
		events, err := stats.Trace()
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintln(w, "--- trace ---")
		if events == "" {
			fmt.Fprintln(w, "(no trace log installed on the remote ORB)")
		} else {
			fmt.Fprint(w, events)
		}
	}
	return nil
}

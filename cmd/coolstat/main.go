// Coolstat fetches the observability state of a running COOL process.
//
// A process that wants to be inspectable registers the built-in stats
// servant and publishes its reference:
//
//	ref, _ := o.RegisterServant(cool.NewStatsServant(o))
//	fmt.Println(cool.RefString(ref))
//
// Coolstat then resolves that reference through a fresh client ORB and
// prints the remote metrics snapshot (and, with -trace, the remote trace
// log):
//
//	coolstat IOR:0000…            # metrics snapshot
//	coolstat -trace IOR:0000…     # snapshot + recent trace events
//	coolstat -slow IOR:0000…      # snapshot + slow-call log
//	coolstat -ior-file ref.txt    # read the reference from a file
//	coolstat -watch 1s IOR:0000…  # live delta view: rates and percentiles
//
// Watch mode polls the structured snapshot, diffs consecutive snapshots
// with Delta, and renders per-interval counter rates and histogram
// p50/p95/p99 — a live view of whether QoS Latency bounds hold.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cool"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coolstat:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("coolstat", flag.ContinueOnError)
	iorFile := fs.String("ior-file", "", "file holding the stats servant reference (IOR:…)")
	trace := fs.Bool("trace", false, "also fetch the remote trace log")
	slow := fs.Bool("slow", false, "also fetch the remote slow-call log")
	watch := fs.Duration("watch", 0, "poll interval for live delta view (0 = one-shot)")
	rounds := fs.Int("watch-rounds", 0, "stop watch mode after N rounds (0 = forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ref := strings.TrimSpace(strings.Join(fs.Args(), ""))
	if *iorFile != "" {
		data, err := os.ReadFile(*iorFile)
		if err != nil {
			return err
		}
		ref = strings.TrimSpace(string(data))
	}
	if ref == "" {
		return fmt.Errorf("usage: coolstat [-trace] [-slow] [-watch 1s] [-ior-file FILE | IOR:…]")
	}

	o := cool.NewORB(cool.WithName("coolstat"))
	defer o.Shutdown()
	obj, err := o.ResolveString(ref)
	if err != nil {
		return fmt.Errorf("bad reference: %w", err)
	}
	stats := cool.NewStatsClient(obj)

	if *watch > 0 {
		return watchLoop(w, stats, *watch, *rounds)
	}

	snap, err := stats.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	fmt.Fprint(w, snap)

	if *trace {
		events, err := stats.Trace()
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintln(w, "--- trace ---")
		if events == "" {
			fmt.Fprintln(w, "(no trace log installed on the remote ORB)")
		} else {
			fmt.Fprint(w, events)
		}
	}
	if *slow {
		calls, err := stats.Slow()
		if err != nil {
			return fmt.Errorf("slow: %w", err)
		}
		fmt.Fprintln(w, "--- slow calls ---")
		if calls == "" {
			fmt.Fprintln(w, "(no slow calls recorded)")
		} else {
			fmt.Fprint(w, calls)
		}
	}
	return nil
}

// watchLoop polls structured snapshots and renders the delta between
// consecutive polls: per-second counter rates and per-interval histogram
// percentiles. rounds == 0 loops until the remote disappears.
func watchLoop(w io.Writer, stats *cool.StatsClient, interval time.Duration, rounds int) error {
	prev, err := stats.SnapshotData()
	if err != nil {
		return fmt.Errorf("snapshot_bin: %w", err)
	}
	for n := 0; rounds == 0 || n < rounds; n++ {
		time.Sleep(interval)
		cur, err := stats.SnapshotData()
		if err != nil {
			return fmt.Errorf("snapshot_bin: %w", err)
		}
		printDelta(w, cur.Delta(prev))
		prev = cur
	}
	return nil
}

// printDelta renders one watch round: active counters as rates, active
// histograms as rate + percentiles (+ tail exemplar when recorded).
func printDelta(w io.Writer, d cool.MetricsSnapshot) {
	fmt.Fprintf(w, "--- %s (interval %v) ---\n", d.Time.Format("15:04:05"), d.Interval.Round(time.Millisecond))
	quiet := true
	for _, c := range d.Counters {
		if c.Value == 0 {
			continue
		}
		quiet = false
		fmt.Fprintf(w, "%s %d rate=%.1f/s\n", c.Name, c.Value, d.Rate(c.Name))
	}
	for _, h := range d.Histograms {
		if h.Count == 0 {
			continue
		}
		quiet = false
		fmt.Fprintf(w, "%s count=%d p50=%d p95=%d p99=%d", h.Name, h.Count,
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		if ex := h.TailExemplar(); !ex.IsZero() {
			fmt.Fprintf(w, " tail#%s", ex)
		}
		fmt.Fprintln(w)
	}
	if quiet {
		fmt.Fprintln(w, "(idle)")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cool"
	"cool/internal/cdr"
)

type pinger struct{}

func (pinger) RepoID() string { return "IDL:test/Pinger:1.0" }
func (pinger) Invoke(inv *cool.Invocation) (cool.ReplyWriter, error) {
	return func(enc *cdr.Encoder) { enc.WriteString("pong") }, nil
}

// TestRun starts a server ORB with the stats servant, performs one traced
// invocation against it, then runs coolstat against the published reference
// and checks the remote snapshot and trace log come through.
func TestRun(t *testing.T) {
	server := cool.NewORB(cool.WithName("server"))
	defer server.Shutdown()
	cool.TraceLog(server)
	if _, err := server.ListenOn("tcp", "127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	pingRef, err := server.RegisterServant(pinger{})
	if err != nil {
		t.Fatalf("register pinger: %v", err)
	}
	statsRef, err := server.RegisterServant(cool.NewStatsServant(server))
	if err != nil {
		t.Fatalf("register stats: %v", err)
	}

	// Generate some server-side metrics and trace events first.
	client := cool.NewORB(cool.WithName("client"))
	defer client.Shutdown()
	obj, err := client.ResolveString(cool.RefString(pingRef))
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	if err := obj.Invoke("ping", nil, nil); err != nil {
		t.Fatalf("ping: %v", err)
	}

	iorFile := filepath.Join(t.TempDir(), "stats.ior")
	if err := os.WriteFile(iorFile, []byte(cool.RefString(statsRef)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run(&out, []string{"-trace", "-ior-file", iorFile}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"orb.server.requests{op=ping} 1",
		"giop.in.msgs{type=Request}",
		"--- trace ---",
		"server:ping",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q\n%s", want, got)
		}
	}

	// -slow: the remote slow-call log section renders (empty here).
	out.Reset()
	if err := run(&out, []string{"-slow", "-ior-file", iorFile}); err != nil {
		t.Fatalf("run -slow: %v", err)
	}
	if got := out.String(); !strings.Contains(got, "--- slow calls ---") {
		t.Errorf("-slow output missing section:\n%s", got)
	}

	// -watch: one round of the live delta view; calls issued between the two
	// polls must appear as non-zero rates and percentiles.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := obj.Invoke("ping", nil, nil); err != nil {
				t.Errorf("watch ping: %v", err)
				return
			}
		}
	}()
	out.Reset()
	if err := run(&out, []string{"-watch", "20ms", "-watch-rounds", "3", "-ior-file", iorFile}); err != nil {
		t.Fatalf("run -watch: %v", err)
	}
	<-done
	got = out.String()
	for _, want := range []string{
		"orb.server.requests{op=ping}",
		"rate=",
		"p99=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("-watch output missing %q\n%s", want, got)
		}
	}

	if err := run(&out, []string{}); err == nil {
		t.Error("run with no reference should fail")
	}
	if err := run(&out, []string{"IOR:nonsense"}); err == nil {
		t.Error("run with a bad reference should fail")
	}
}

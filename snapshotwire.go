package cool

import (
	"fmt"
	"time"

	"cool/internal/cdr"
	"cool/internal/obs"
)

// Wire form of a metrics snapshot, used by the StatsServant "snapshot_bin"
// operation so coolstat -watch can compute deltas and percentiles
// client-side instead of scraping text. The encoding is a versioned CDR
// struct: counters and gauges as (name, value) pairs, histograms with
// bounds, buckets, exemplars, count and sum.
const snapshotWireVersion = 1

// encodeSnapshot renders s in its CDR wire form.
func encodeSnapshot(enc *cdr.Encoder, s obs.Snapshot) {
	enc.WriteOctet(snapshotWireVersion)
	enc.WriteLongLong(s.Time.UnixNano())
	enc.WriteULong(uint32(len(s.Counters)))
	for _, c := range s.Counters {
		enc.WriteString(c.Name)
		enc.WriteULongLong(c.Value)
	}
	enc.WriteULong(uint32(len(s.Gauges)))
	for _, g := range s.Gauges {
		enc.WriteString(g.Name)
		enc.WriteLongLong(g.Value)
	}
	enc.WriteULong(uint32(len(s.Histograms)))
	for _, h := range s.Histograms {
		enc.WriteString(h.Name)
		enc.WriteULong(uint32(len(h.Bounds)))
		for _, b := range h.Bounds {
			enc.WriteULongLong(b)
		}
		enc.WriteULong(uint32(len(h.Buckets)))
		for _, b := range h.Buckets {
			enc.WriteULongLong(b)
		}
		// Exemplars parallel the buckets; absent (older peer) encodes as 0.
		for i := range h.Buckets {
			var ex uint64
			if i < len(h.Exemplars) {
				ex = h.Exemplars[i]
			}
			enc.WriteULongLong(ex)
		}
		enc.WriteULongLong(h.Count)
		enc.WriteULongLong(h.Sum)
	}
}

// maxSnapshotSeq bounds decoded sequence lengths against corrupt or
// malicious length prefixes.
const maxSnapshotSeq = 1 << 20

// decodeSnapshot parses the CDR wire form produced by encodeSnapshot.
func decodeSnapshot(dec *cdr.Decoder) (obs.Snapshot, error) {
	var s obs.Snapshot
	v, err := dec.ReadOctet()
	if err != nil {
		return s, err
	}
	if v != snapshotWireVersion {
		return s, fmt.Errorf("cool: unsupported snapshot wire version %d", v)
	}
	nanos, err := dec.ReadLongLong()
	if err != nil {
		return s, err
	}
	s.Time = time.Unix(0, nanos)
	n, err := readSeqLen(dec)
	if err != nil {
		return s, err
	}
	for i := 0; i < n; i++ {
		var c obs.CounterPoint
		if c.Name, err = dec.ReadString(); err != nil {
			return s, err
		}
		if c.Value, err = dec.ReadULongLong(); err != nil {
			return s, err
		}
		s.Counters = append(s.Counters, c)
	}
	if n, err = readSeqLen(dec); err != nil {
		return s, err
	}
	for i := 0; i < n; i++ {
		var g obs.GaugePoint
		if g.Name, err = dec.ReadString(); err != nil {
			return s, err
		}
		if g.Value, err = dec.ReadLongLong(); err != nil {
			return s, err
		}
		s.Gauges = append(s.Gauges, g)
	}
	if n, err = readSeqLen(dec); err != nil {
		return s, err
	}
	for i := 0; i < n; i++ {
		var h obs.HistogramPoint
		if h.Name, err = dec.ReadString(); err != nil {
			return s, err
		}
		if h.Bounds, err = readULongLongSeq(dec); err != nil {
			return s, err
		}
		nb, err := readSeqLen(dec)
		if err != nil {
			return s, err
		}
		h.Buckets = make([]uint64, nb)
		for j := range h.Buckets {
			if h.Buckets[j], err = dec.ReadULongLong(); err != nil {
				return s, err
			}
		}
		h.Exemplars = make([]uint64, nb)
		for j := range h.Exemplars {
			if h.Exemplars[j], err = dec.ReadULongLong(); err != nil {
				return s, err
			}
		}
		if h.Count, err = dec.ReadULongLong(); err != nil {
			return s, err
		}
		if h.Sum, err = dec.ReadULongLong(); err != nil {
			return s, err
		}
		s.Histograms = append(s.Histograms, h)
	}
	return s, nil
}

func readSeqLen(dec *cdr.Decoder) (int, error) {
	n, err := dec.ReadULong()
	if err != nil {
		return 0, err
	}
	if n > maxSnapshotSeq {
		return 0, fmt.Errorf("cool: snapshot sequence length %d exceeds limit", n)
	}
	return int(n), nil
}

func readULongLongSeq(dec *cdr.Decoder) ([]uint64, error) {
	n, err := readSeqLen(dec)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = dec.ReadULongLong(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

package cool_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	cool "cool"
	"cool/examples/mediaserver/mediagen"
	"cool/internal/cdr"
	"cool/internal/leakcheck"
	"cool/internal/orb"
	"cool/internal/transport"
)

// stallingMedia is a media server whose GetFrame stalls until released,
// standing in for an overloaded servant.
type stallingMedia struct {
	mediaImpl
	stall time.Duration
}

func (m *stallingMedia) GetFrame(index uint32, q mediagen.Quality) ([]byte, error) {
	time.Sleep(m.stall)
	return m.mediaImpl.GetFrame(index, q)
}

// TestStubContextDeadline drives the generated ...Ctx stub surface end to
// end: a context deadline shorter than the servant's stall aborts the
// invocation within tolerance, the expiry is visible in the coolstat
// counters, and the binding (with its pooled resources) survives for the
// next call.
func TestStubContextDeadline(t *testing.T) {
	leakcheck.Check(t)
	inner := transport.NewInprocManager()
	server := cool.NewORB(cool.WithName("dl-server"), cool.WithTransport(inner))
	client := cool.NewORB(cool.WithName("dl-client"), cool.WithTransport(inner))
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })
	if _, err := server.ListenOn("inproc", ""); err != nil {
		t.Fatal(err)
	}
	ref, err := server.RegisterServant(
		mediagen.NewMediaServerSkeleton(&stallingMedia{mediaImpl{frames: 4}, 200 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	stub := mediagen.NewMediaServerStub(client.Resolve(ref))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = stub.GetFrameCtx(ctx, 1, mediagen.QualityLOW)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("GetFrameCtx = %v, want errors.Is(context.DeadlineExceeded)", err)
	}
	if elapsed > 150*time.Millisecond {
		t.Fatalf("deadline fired after %v, want near the 20ms budget", elapsed)
	}

	text := client.Metrics().Snapshot().Text()
	if !strings.Contains(text, "orb.client.deadline_exceeded 1") {
		t.Errorf("snapshot missing deadline_exceeded row:\n%s", text)
	}

	// The late reply is dropped and its pooled slot recycled; the same
	// stub keeps working once the servant has caught up.
	time.Sleep(250 * time.Millisecond)
	if n, err := stub.FrameCount(); err != nil || n != 4 {
		t.Fatalf("FrameCount after timeout = %d, %v", n, err)
	}
}

// TestProxyRecoversAcrossTCPRestart is the acceptance run for automatic
// rebind over a real transport: the TCP endpoint dies mid-session and
// comes back on the same port; the same facade proxy succeeds without a
// new Bind, and the recovery shows up in the redial counter.
func TestProxyRecoversAcrossTCPRestart(t *testing.T) {
	leakcheck.Check(t)
	server := cool.NewORB(cool.WithName("tcp-1"))
	addr, err := server.ListenOn("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.RegisterServant(
		mediagen.NewMediaServerSkeleton(&mediaImpl{frames: 8}), orb.WithKey("media")); err != nil {
		t.Fatal(err)
	}
	ref := server.RefFor(mediagen.MediaServerRepoID, []byte("media"))

	client := cool.NewORB(cool.WithName("tcp-client"))
	t.Cleanup(client.Shutdown)
	stub := mediagen.NewMediaServerStub(client.Resolve(ref))
	if n, err := stub.FrameCount(); err != nil || n != 8 {
		t.Fatalf("FrameCount = %d, %v", n, err)
	}

	// Kill the endpoint; give the close announcement time to reach the
	// client's read loop so the next call takes the redial path.
	server.Shutdown()
	time.Sleep(50 * time.Millisecond)

	restarted := make(chan *cool.ORB, 1)
	go func() {
		time.Sleep(120 * time.Millisecond)
		s2 := cool.NewORB(cool.WithName("tcp-2"))
		if _, err := s2.ListenOn("tcp", addr); err != nil {
			t.Errorf("relisten on %s: %v", addr, err)
		}
		if _, err := s2.RegisterServant(
			mediagen.NewMediaServerSkeleton(&mediaImpl{frames: 8}), orb.WithKey("media")); err != nil {
			t.Errorf("re-register: %v", err)
		}
		restarted <- s2
	}()

	// One call on the unchanged proxy: the connection manager retries the
	// dial with backoff until the restarted listener answers.
	if n, err := stub.FrameCount(); err != nil || n != 8 {
		t.Fatalf("FrameCount after restart = %d, %v", n, err)
	}
	s2 := <-restarted
	t.Cleanup(s2.Shutdown)

	text := client.Metrics().Snapshot().Text()
	if !strings.Contains(text, "orb.client.redials") || client.Metrics().Snapshot().Counter("orb.client.redials") == 0 {
		t.Errorf("redial not counted:\n%s", text)
	}
}

// slowEcho answers "echo" after a short think time, long enough for a
// Shutdown to land while the request is in flight.
type slowEcho struct{ think time.Duration }

func (s *slowEcho) RepoID() string { return "IDL:test/SlowEcho:1.0" }

func (s *slowEcho) Invoke(inv *cool.Invocation) (cool.ReplyWriter, error) {
	msg, err := inv.Args.ReadString()
	if err != nil {
		return nil, err
	}
	select {
	case <-time.After(s.think):
	case <-inv.Ctx.Done():
		return nil, inv.Ctx.Err()
	}
	return func(enc *cdr.Encoder) { enc.WriteString(msg) }, nil
}

// TestGracefulDrainDeliversInflightReply: Shutdown racing an in-flight
// request drains it — the client still receives its reply — and the drain
// is visible in the coolstat gauges and counters.
func TestGracefulDrainDeliversInflightReply(t *testing.T) {
	leakcheck.Check(t)
	inner := transport.NewInprocManager()
	server := cool.NewORB(
		cool.WithName("drain-server"),
		cool.WithTransport(inner),
		cool.WithDrainTimeout(2*time.Second),
	)
	client := cool.NewORB(cool.WithName("drain-client"), cool.WithTransport(inner))
	t.Cleanup(client.Shutdown)
	if _, err := server.ListenOn("inproc", ""); err != nil {
		t.Fatal(err)
	}
	ref, err := server.RegisterServant(&slowEcho{think: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	obj := client.Resolve(ref)

	var got string
	res := make(chan error, 1)
	go func() {
		res <- obj.Invoke("echo",
			func(enc *cdr.Encoder) { enc.WriteString("survives drain") },
			func(dec *cdr.Decoder) error {
				var err error
				got, err = dec.ReadString()
				return err
			})
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the servant
	server.Shutdown()                 // drains before tearing connections down

	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("in-flight invocation lost to shutdown: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("invocation never completed")
	}
	if got != "survives drain" {
		t.Fatalf("reply = %q", got)
	}

	text := server.Metrics().Snapshot().Text()
	for _, row := range []string{"orb.server.drain_us", "orb.server.drain_completed 1", "orb.server.drain_aborted 0"} {
		if !strings.Contains(text, row) {
			t.Errorf("snapshot missing %q:\n%s", row, text)
		}
	}
}

package cool

import (
	"net"
	"net/http"

	"cool/internal/obs"
)

// OpsServer is a running ops HTTP endpoint; Close releases its listener.
type OpsServer struct {
	addr     string
	listener net.Listener
	server   *http.Server
}

// Addr returns the address the endpoint is listening on (useful with a
// ":0" request).
func (s *OpsServer) Addr() string { return s.addr }

// Close stops serving and releases the listener.
func (s *OpsServer) Close() error { return s.server.Close() }

// ServeOps starts the ORB's ops HTTP endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") and returns the running server. The endpoint is
// dependency-free (stdlib net/http) and read-only:
//
//	/metrics      metrics snapshot in text exposition format, including
//	              sampled runtime gauges (goroutines, heap, GC pause) and
//	              histogram bucket exemplars (#<trace-id>)
//	/trace        the TraceLog ring dump; ?trace=<16-hex-id> filters to one
//	              trace, resolving a histogram exemplar to its spans
//	/trace/slow   the slow-call log
//	/debug/pprof  CPU/heap/goroutine profiles on demand
//
// ServeOps installs a TraceLog on the ORB (via TraceLog) so /trace and
// exemplar lookups work out of the box. The server runs until Close.
func ServeOps(addr string, o *ORB) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h := obs.Ops{
		Registry: Metrics(o),
		Trace:    TraceLog(o),
		Slow:     o.SlowCalls(),
	}
	srv := &http.Server{Handler: h.Handler()}
	go srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return &OpsServer{addr: ln.Addr().String(), listener: ln, server: srv}, nil
}

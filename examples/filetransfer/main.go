// Filetransfer: the paper's Da CaPo test application (§6: "Da CaPo is
// ported in a straight forward manner and tested on Chorus with a simple
// file transfer application and a throughput test application").
//
// The program transfers a synthetic file across a lossy simulated WAN link
// twice: once over a bare protocol stack, where loss corrupts the
// transfer, and once over the configuration the QoS mapping selects for
// "fully reliable, ordered" requirements (sliding-window ARQ + CRC-32 +
// fragmentation), where the file arrives intact. Per-module monitoring
// counters from the Da CaPo runtime are printed at the end.
//
// Run with:
//
//	go run ./examples/filetransfer
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"log"
	"time"

	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/netsim"
	"cool/internal/qos"
)

const (
	fileSize  = 256 << 10 // 256 KiB
	chunkSize = 4 << 10   // application writes 4 KiB chunks
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func makeFile() []byte {
	file := make([]byte, fileSize)
	for i := range file {
		file[i] = byte(i*31 + i/255)
	}
	return file
}

func run() error {
	file := makeFile()
	fmt.Printf("transferring %d KiB across a 10 Mbit/s WAN with 2%% loss\n\n", fileSize>>10)

	// Attempt 1: bare stack — only fragmentation to fit the link MTU, no
	// error detection or retransmission.
	bare := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "fragment", Args: dacapo.Args{"mtu": "1300"}},
	}}
	got, _, err := transfer(file, bare, 0.02)
	if err != nil {
		fmt.Println("bare stack: transfer aborted:", err)
	} else if !bytes.Equal(got, file) {
		fmt.Printf("bare stack: file corrupted — received %d of %d chunks\n\n",
			len(got)/chunkSize, fileSize/chunkSize)
	} else {
		fmt.Println("bare stack: file survived (lucky run)")
	}

	// Attempt 2: let the configuration manager pick the protocol for
	// "fully reliable and ordered" requirements on this link.
	req, err := qos.NewSet(
		qos.Parameter{Type: qos.Reliability, Request: 0, Max: 0, Min: 0},
		qos.Parameter{Type: qos.Ordering, Request: 1, Max: 1, Min: 1},
	)
	if err != nil {
		return err
	}
	link := netsim.Params{LossRate: 0.02, BandwidthKbps: 10_000}
	spec, granted, err := dacapo.Configure(req, link.Capability())
	if err != nil {
		return err
	}
	// The link enforces an MTU, so the configuration gains fragmentation;
	// the fragment size leaves headroom for the ARQ and CRC headers added
	// below it. Tighten the retransmission timer for this short demo.
	spec.Modules = append([]dacapo.ModuleSpec{
		{Name: "fragment", Args: dacapo.Args{"mtu": "1300"}},
	}, spec.Modules...)
	for i := range spec.Modules {
		if spec.Modules[i].Name == "window" {
			spec.Modules[i].Args["rto"] = "30ms"
		}
	}
	fmt.Printf("configured protocol: %v\n", spec)
	fmt.Printf("granted QoS:         %v\n", granted)

	start := time.Now()
	got, stats, err := transfer(file, spec, 0.02)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if !bytes.Equal(got, file) {
		return fmt.Errorf("configured stack delivered a corrupt file")
	}
	digest := sha256.Sum256(got)
	fmt.Printf("reliable transfer OK: sha256 %x… in %v (%.1f kbit/s effective)\n\n",
		digest[:8], elapsed.Round(time.Millisecond),
		float64(fileSize*8)/elapsed.Seconds()/1000)

	fmt.Println("sender module monitoring (management component):")
	fmt.Printf("  %-10s %12s %12s %10s\n", "module", "down pkts", "up pkts", "drops")
	for _, st := range stats {
		fmt.Printf("  %-10s %12d %12d %10d\n", st.Name, st.DownPackets, st.UpPackets, st.Drops)
	}
	return nil
}

// transfer ships file over a fresh lossy link through the given protocol
// configuration and returns the received bytes (possibly short when the
// stack is unreliable) plus the sender-side module stats.
func transfer(file []byte, spec dacapo.Spec, loss float64) ([]byte, []dacapo.ModuleStats, error) {
	link := netsim.NewLink(netsim.Params{
		LossRate:      loss,
		BandwidthKbps: 10_000,
		PropDelay:     2 * time.Millisecond,
		MTU:           1400,
		Seed:          7,
		QueueLen:      256,
	})
	defer link.Close()
	a, b := link.Endpoints()

	reg := modules.NewLibrary()
	sender, err := dacapo.NewRuntime(spec, reg, a)
	if err != nil {
		return nil, nil, err
	}
	receiver, err := dacapo.NewRuntime(spec, reg, b)
	if err != nil {
		return nil, nil, err
	}
	if err := sender.Start(); err != nil {
		return nil, nil, err
	}
	if err := receiver.Start(); err != nil {
		return nil, nil, err
	}
	defer sender.Close()
	defer receiver.Close()

	chunks := len(file) / chunkSize
	go func() {
		for i := 0; i < chunks; i++ {
			if err := sender.Send(file[i*chunkSize : (i+1)*chunkSize]); err != nil {
				return
			}
		}
	}()

	var got []byte
	deadline := time.After(30 * time.Second)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for len(got) < len(file) {
			chunk, err := receiver.Recv()
			if err != nil {
				return
			}
			got = append(got, chunk...)
		}
	}()
	select {
	case <-done:
	case <-time.After(watchLoss(spec)):
		// An unreliable stack may never complete; give up and report what
		// arrived.
	case <-deadline:
	}
	stats := sender.Stats()
	return got, stats, nil
}

// watchLoss bounds how long to wait: generous for reliable stacks, short
// for the bare stack that is expected to lose chunks.
func watchLoss(spec dacapo.Spec) time.Duration {
	for _, m := range spec.Modules {
		if m.Name == "window" || m.Name == "irq" {
			return 25 * time.Second
		}
	}
	return 2 * time.Second
}

// Quickstart: a minimal COOL application in one process.
//
// It starts a server ORB with a hand-written servant, resolves it from a
// client ORB over TCP (standard GIOP 1.0), then sets QoS requirements on
// the proxy and invokes again over the Da CaPo transport (QoS-extended
// GIOP 9.9), printing what was negotiated.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	cool "cool"
	"cool/internal/cdr"
	"cool/internal/qos"
	"cool/internal/transport"
)

// greeter is the object implementation: one operation, `greet(name)`.
type greeter struct{}

func (greeter) RepoID() string { return "IDL:quickstart/Greeter:1.0" }

func (greeter) Invoke(inv *cool.Invocation) (cool.ReplyWriter, error) {
	if inv.Operation != "greet" {
		return nil, fmt.Errorf("unknown operation %q", inv.Operation)
	}
	name, err := inv.Args.ReadString()
	if err != nil {
		return nil, err
	}
	reply := "Hello, " + name + "!"
	if tp := inv.QoS.Value(cool.Throughput, 0); tp > 0 {
		reply += fmt.Sprintf(" (served at %d kbit/s)", tp)
	}
	return func(enc *cdr.Encoder) { enc.WriteString(reply) }, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One in-process "network" shared by both ORBs, so the demo is fully
	// self-contained; swap in real TCP addresses for two machines.
	inner := transport.NewInprocManager()

	server := cool.NewORB(cool.WithName("quickstart-server"), cool.WithTransport(inner))
	defer server.Shutdown()
	cool.EnableDaCaPo(server, cool.DaCaPoConfig{Inner: inner, BudgetKbps: 100_000})

	client := cool.NewORB(cool.WithName("quickstart-client"), cool.WithTransport(inner))
	defer client.Shutdown()
	cool.EnableDaCaPo(client, cool.DaCaPoConfig{Inner: inner})

	// Serve the greeter on plain TCP and on Da CaPo.
	tcpAddr, err := server.ListenOn("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	if _, err := server.ListenOn("dacapo", ""); err != nil {
		return err
	}
	ref, err := server.RegisterServant(greeter{}, cool.WithCapability(qos.Unconstrained()))
	if err != nil {
		return err
	}
	iorStr := cool.RefString(ref)
	fmt.Println("server listening on tcp", tcpAddr)
	fmt.Println("object reference:", iorStr[:40]+"…")

	// Client side: resolve from the stringified reference, like a real
	// CORBA client would.
	obj, err := client.ResolveString(iorStr)
	if err != nil {
		return err
	}

	greet := func(name string) (string, error) {
		var out string
		err := obj.Invoke("greet",
			func(enc *cdr.Encoder) { enc.WriteString(name) },
			func(dec *cdr.Decoder) error {
				var err error
				out, err = dec.ReadString()
				return err
			})
		return out, err
	}

	// 1. Standard GIOP 1.0: never call SetQoSParameter.
	out, err := greet("world")
	if err != nil {
		return err
	}
	fmt.Println("[GIOP 1.0]", out)

	// 2. The paper's extension: state QoS requirements, then invoke. The
	// ORB selects the Da CaPo profile, negotiates, and switches to the
	// QoS-extended GIOP 9.9 on the wire. TryQoS validates the set without
	// panicking — the right form when requirements aren't hard-coded.
	req, err := cool.TryQoS(
		cool.MinThroughput(8000, 1000),
		cool.MaxLatency(5000, 50_000),
	)
	if err != nil {
		return err
	}
	if err := obj.SetQoSParameter(req); err != nil {
		return err
	}
	out, err = greet("QoS world")
	if err != nil {
		return err
	}
	fmt.Println("[GIOP 9.9]", out)
	fmt.Println("granted by transport:", strings.TrimSpace(obj.GrantedQoS().String()))
	return nil
}

// Negotiation: walks through every QoS negotiation scenario of the paper.
//
//   - Figure 3(ii): the server can satisfy the requested QoS and answers
//     with an ordinary GIOP Reply.
//   - Figure 3(i): the object implementation cannot satisfy the QoS and
//     NACKs with the standard CORBA exception mechanism (NO_RESOURCES).
//   - §4.3: the unilateral negotiation between the message layer and the
//     transport fails — Da CaPo cannot reserve resources, the client sees
//     an exception before any Request is sent.
//   - §4.1: per-binding versus per-method QoS — one setQoSParameter call
//     covers many invocations; changing it renegotiates the transport
//     connection.
//   - Invocation modes of the transport channel interface (§5.2): call,
//     send (oneway), defer/poll, notify (async) and cancel.
//
// Run with:
//
//	go run ./examples/negotiation
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	cool "cool"
	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/qos"
	"cool/internal/transport"
)

// sensor simulates a telemetry object with a limited service capability.
type sensor struct{}

func (sensor) RepoID() string { return "IDL:negotiation/Sensor:1.0" }

func (sensor) Invoke(inv *cool.Invocation) (cool.ReplyWriter, error) {
	switch inv.Operation {
	case "read":
		return func(enc *cdr.Encoder) {
			enc.WriteDouble(21.5)
			enc.WriteString(inv.QoS.String())
		}, nil
	case "calibrate":
		time.Sleep(20 * time.Millisecond)
		return nil, nil
	case "log":
		return nil, nil
	default:
		return nil, giop.BadOperation()
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inner := transport.NewInprocManager()
	server := cool.NewORB(cool.WithName("sensor-host"), cool.WithTransport(inner))
	defer server.Shutdown()
	cool.EnableDaCaPo(server, cool.DaCaPoConfig{Inner: inner, BudgetKbps: 50_000})
	client := cool.NewORB(cool.WithName("console"), cool.WithTransport(inner))
	defer client.Shutdown()
	cool.EnableDaCaPo(client, cool.DaCaPoConfig{Inner: inner})

	if _, err := server.ListenOn("dacapo", ""); err != nil {
		return err
	}
	// The sensor object can serve at most 20 Mbit/s (bilateral bound).
	ref, err := server.RegisterServant(sensor{}, cool.WithCapability(qos.Capability{
		cool.Throughput: {Best: 20_000, Supported: true},
		cool.Latency:    {Best: 500, Supported: true},
	}))
	if err != nil {
		return err
	}
	obj := client.Resolve(ref)

	// setQoS validates with TryQoS (no panic on bad combinations — the
	// form to use when requirements come from config or user input) and
	// applies the set to the binding.
	setQoS := func(params ...cool.QoSParameter) error {
		req, err := cool.TryQoS(params...)
		if err != nil {
			return fmt.Errorf("invalid QoS request: %w", err)
		}
		return obj.SetQoSParameter(req)
	}

	read := func() (float64, string, error) {
		var v float64
		var served string
		err := obj.Invoke("read", nil, func(dec *cdr.Decoder) error {
			var err error
			if v, err = dec.ReadDouble(); err != nil {
				return err
			}
			served, err = dec.ReadString()
			return err
		})
		return v, served, err
	}

	fmt.Println("── scenario 1: Figure 3(ii) — request granted ──")
	if err := setQoS(cool.MinThroughput(10_000, 1_000)); err != nil {
		return err
	}
	v, served, err := read()
	if err != nil {
		return err
	}
	fmt.Printf("   read %.1f°C, served at QoS %s\n", v, served)

	fmt.Println("── scenario 2: Figure 3(i) — object implementation NACKs ──")
	// 40 Mbit/s floor exceeds the sensor's 20 Mbit/s capability; the
	// transport can carry it, so the refusal comes from the server as a
	// NO_RESOURCES system exception in a Reply.
	if err := setQoS(cool.MinThroughput(45_000, 40_000)); err != nil {
		return err
	}
	if _, _, err = read(); err != nil {
		var se *giop.SystemException
		if errors.As(err, &se) && se.IsNACK() {
			fmt.Println("   NACK received:", se)
		} else {
			return fmt.Errorf("expected NACK, got %w", err)
		}
	}

	fmt.Println("── scenario 3: §4.3 — transport cannot reserve resources ──")
	// A floor beyond the 155 Mbit/s link: Da CaPo's unilateral negotiation
	// fails during binding, before any Request is sent.
	if err := setQoS(cool.MinThroughput(500_000, 400_000)); err != nil {
		return err
	}
	if _, _, err = read(); err != nil {
		fmt.Println("   binding failed:", err)
	}

	fmt.Println("── scenario 4: §4.1 — per-binding vs per-method QoS ──")
	// The NACKed binding of scenario 2 is torn down and its transport
	// reservation released asynchronously (the server observes the close);
	// give the release a moment before reserving again.
	time.Sleep(100 * time.Millisecond)
	if err := setQoS(cool.MinThroughput(5_000, 1_000)); err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if _, _, err := read(); err != nil {
			return err
		}
	}
	fmt.Println("   3 invocations on one negotiated binding (per-binding QoS)")
	for i, kbps := range []uint32{2_000, 8_000, 16_000} {
		if err := setQoS(cool.MinThroughput(kbps, 1_000)); err != nil {
			return err
		}
		if _, _, err := read(); err != nil {
			return err
		}
		fmt.Printf("   invocation %d renegotiated to %v (per-method QoS)\n", i+1, obj.GrantedQoS())
	}

	fmt.Println("── scenario 5: §5.2 — invocation modes call/send/defer/notify/cancel ──")
	// send: oneway.
	if err := obj.InvokeOneway("log", func(enc *cdr.Encoder) { enc.WriteString("fire and forget") }); err != nil {
		return err
	}
	fmt.Println("   send  : oneway log() dispatched")
	// defer + poll.
	p, err := obj.InvokeDeferred("read", nil)
	if err != nil {
		return err
	}
	for !p.Poll() {
		time.Sleep(time.Millisecond)
	}
	if err := p.Wait(nil); err != nil {
		return err
	}
	fmt.Println("   defer : reply polled and collected")
	// notify: async callback.
	done := make(chan struct{})
	err = obj.InvokeAsync("read", nil, func(out *cdr.Decoder, err error) {
		if err == nil {
			v, _ := out.ReadDouble()
			fmt.Printf("   notify: callback got %.1f°C\n", v)
		}
		close(done)
	})
	if err != nil {
		return err
	}
	<-done
	// cancel: abandon a slow call.
	p, err = obj.InvokeDeferred("calibrate", nil)
	if err != nil {
		return err
	}
	if err := p.Cancel(); err != nil {
		return err
	}
	fmt.Println("   cancel: calibrate() abandoned, reply suppressed")
	return nil
}

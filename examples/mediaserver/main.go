// Mediaserver: the distributed-multimedia scenario the paper's
// introduction motivates, built on chic-generated stubs and skeletons
// (see media.idl and mediagen/).
//
// A media server exports frames at three quality levels. The client uses
// the generated stub's SetQoSParameter — the paper's extension — to
// negotiate a binding per quality level: low quality flows over best-effort
// GIOP, high quality demands reliable delivery and bandwidth from the
// Da CaPo transport. A demand beyond the server's admission budget is
// NACKed and the client falls back, exactly the adaptive behaviour QoS
// ranges in the QoSParameter struct enable.
//
// Run with:
//
//	go run ./examples/mediaserver
//
//go:generate go run ../../cmd/chic -pkg mediagen -out mediagen/media.gen.go media.idl
package main

import (
	"errors"
	"fmt"
	"log"

	cool "cool"
	"cool/examples/mediaserver/mediagen"
	"cool/internal/qos"
	"cool/internal/transport"
)

// mediaImpl implements the generated demo.MediaServer interface with
// synthetic frames.
type mediaImpl struct {
	frames uint32
}

var _ mediagen.MediaServer = (*mediaImpl)(nil)

func (m *mediaImpl) Describe(index uint32) (mediagen.FrameInfo, error) {
	if index >= m.frames {
		return mediagen.FrameInfo{}, &mediagen.OutOfRange{Requested: index, Limit: m.frames}
	}
	return mediagen.FrameInfo{
		Index: index, Width: 1280, Height: 720,
		Q: mediagen.QualityHIGH, SizeBytes: frameSize(mediagen.QualityHIGH),
	}, nil
}

func frameSize(q mediagen.Quality) uint32 {
	switch q {
	case mediagen.QualityLOW:
		return 4 << 10
	case mediagen.QualityMEDIUM:
		return 32 << 10
	default:
		return 128 << 10
	}
}

func (m *mediaImpl) GetFrame(index uint32, q mediagen.Quality) ([]byte, error) {
	if index >= m.frames {
		return nil, &mediagen.OutOfRange{Requested: index, Limit: m.frames}
	}
	frame := make([]byte, frameSize(q))
	for i := range frame {
		frame[i] = byte(index + uint32(i))
	}
	return frame, nil
}

func (m *mediaImpl) Catalog(first, count uint32) (mediagen.FrameInfoList, error) {
	if first+count > m.frames {
		return nil, &mediagen.OutOfRange{Requested: first + count, Limit: m.frames}
	}
	list := make(mediagen.FrameInfoList, 0, count)
	for i := first; i < first+count; i++ {
		fi, err := m.Describe(i)
		if err != nil {
			return nil, err
		}
		list = append(list, fi)
	}
	return list, nil
}

func (m *mediaImpl) FrameCount() (int32, error) { return int32(m.frames), nil }

func (m *mediaImpl) Seek(index uint32) (uint32, error) {
	if index >= m.frames {
		return 0, &mediagen.OutOfRange{Requested: index, Limit: m.frames}
	}
	return index, nil
}

func (m *mediaImpl) Hint(uint32) {}

// qosFor maps a quality level to the client's QoS requirements: the
// request states the ideal, Min states the floor the client still accepts.
func qosFor(q mediagen.Quality) cool.QoSSet {
	switch q {
	case mediagen.QualityLOW:
		return nil // best effort, standard GIOP
	case mediagen.QualityMEDIUM:
		return cool.QoS(cool.MinThroughput(10_000, 2_000))
	default:
		return cool.QoS(append(cool.Reliable(), cool.MinThroughput(60_000, 20_000))...)
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inner := transport.NewInprocManager()

	server := cool.NewORB(cool.WithName("media-server"), cool.WithTransport(inner))
	defer server.Shutdown()
	// The server admits at most 100 Mbit/s of QoS traffic in total.
	cool.EnableDaCaPo(server, cool.DaCaPoConfig{Inner: inner, BudgetKbps: 100_000})

	client := cool.NewORB(cool.WithName("media-client"), cool.WithTransport(inner))
	defer client.Shutdown()
	cool.EnableDaCaPo(client, cool.DaCaPoConfig{Inner: inner})

	if _, err := server.ListenOn("inproc", "media"); err != nil {
		return err
	}
	if _, err := server.ListenOn("dacapo", "media-qos"); err != nil {
		return err
	}

	// The object implementation itself can sustain 80 Mbit/s.
	ref, err := server.RegisterServant(
		mediagen.NewMediaServerSkeleton(&mediaImpl{frames: 64}),
		cool.WithCapability(qos.Capability{
			cool.Throughput:  {Best: 80_000, Supported: true},
			cool.Reliability: {Best: 0, Supported: true},
			cool.Ordering:    {Best: 1, Supported: true},
		}),
	)
	if err != nil {
		return err
	}
	stub := mediagen.NewMediaServerStub(client.Resolve(ref))

	n, err := stub.FrameCount()
	if err != nil {
		return err
	}
	fmt.Printf("media server exports %d frames\n", n)

	for _, q := range []mediagen.Quality{mediagen.QualityLOW, mediagen.QualityMEDIUM, mediagen.QualityHIGH} {
		if err := stub.SetQoSParameter(qosFor(q)); err != nil {
			return err
		}
		frame, err := stub.GetFrame(7, q)
		if err != nil {
			return fmt.Errorf("get frame at %v: %w", q, err)
		}
		granted := stub.Object().GrantedQoS()
		mode := "GIOP 1.0 best effort"
		if len(granted) > 0 {
			mode = "GIOP 9.9, granted " + granted.String()
		}
		fmt.Printf("  %-6s: %6d bytes  [%s]\n", q, len(frame), mode)
	}

	// Demand beyond the object implementation's 80 Mbit/s: the bilateral
	// negotiation NACKs; the client adapts by lowering its floor.
	fmt.Println("requesting 200 Mbit/s (beyond the server's capability)…")
	if err := stub.SetQoSParameter(cool.QoS(cool.MinThroughput(200_000, 150_000))); err != nil {
		return err
	}
	if _, err := stub.GetFrame(7, mediagen.QualityHIGH); err != nil {
		fmt.Println("  server NACKed:", err)
	}
	fmt.Println("retrying with an acceptable floor of 20 Mbit/s…")
	if err := stub.SetQoSParameter(cool.QoS(cool.MinThroughput(200_000, 20_000))); err != nil {
		return err
	}
	if _, err := stub.GetFrame(7, mediagen.QualityHIGH); err != nil {
		return err
	}
	fmt.Println("  degraded gracefully to", stub.Object().GrantedQoS())

	// Exception mapping end to end.
	if _, err := stub.Describe(9999); err != nil {
		var oor *mediagen.OutOfRange
		if errors.As(err, &oor) {
			fmt.Printf("typed exception works: requested %d, limit %d\n", oor.Requested, oor.Limit)
		}
	}
	return nil
}

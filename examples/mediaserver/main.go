// Mediaserver: the distributed-multimedia scenario the paper's
// introduction motivates, built on chic-generated stubs and skeletons
// (see media.idl and mediagen/).
//
// A media server exports frames at three quality levels. The client uses
// the generated stub's SetQoSParameter — the paper's extension — to
// negotiate a binding per quality level: low quality flows over best-effort
// GIOP, high quality demands reliable delivery and bandwidth from the
// Da CaPo transport. A demand beyond the server's admission budget is
// NACKed and the client falls back, exactly the adaptive behaviour QoS
// ranges in the QoSParameter struct enable.
//
// Run with:
//
//	go run ./examples/mediaserver
//	go run ./examples/mediaserver -ops 127.0.0.1:6060 -loop
//
// With -ops the server exposes the live observability plane over HTTP
// (curl the printed address: /metrics, /trace, /trace/slow, /debug/pprof)
// and -loop keeps issuing frame requests so the metrics move.
//
//go:generate go run ../../cmd/chic -pkg mediagen -out mediagen/media.gen.go media.idl
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"time"

	cool "cool"
	"cool/examples/mediaserver/mediagen"
	"cool/internal/qos"
	"cool/internal/transport"
)

// mediaImpl implements the generated demo.MediaServer interface with
// synthetic frames.
type mediaImpl struct {
	frames uint32
}

var _ mediagen.MediaServer = (*mediaImpl)(nil)

func (m *mediaImpl) Describe(index uint32) (mediagen.FrameInfo, error) {
	if index >= m.frames {
		return mediagen.FrameInfo{}, &mediagen.OutOfRange{Requested: index, Limit: m.frames}
	}
	return mediagen.FrameInfo{
		Index: index, Width: 1280, Height: 720,
		Q: mediagen.QualityHIGH, SizeBytes: frameSize(mediagen.QualityHIGH),
	}, nil
}

func frameSize(q mediagen.Quality) uint32 {
	switch q {
	case mediagen.QualityLOW:
		return 4 << 10
	case mediagen.QualityMEDIUM:
		return 32 << 10
	default:
		return 128 << 10
	}
}

func (m *mediaImpl) GetFrame(index uint32, q mediagen.Quality) ([]byte, error) {
	if index >= m.frames {
		return nil, &mediagen.OutOfRange{Requested: index, Limit: m.frames}
	}
	frame := make([]byte, frameSize(q))
	for i := range frame {
		frame[i] = byte(index + uint32(i))
	}
	return frame, nil
}

func (m *mediaImpl) Catalog(first, count uint32) (mediagen.FrameInfoList, error) {
	if first+count > m.frames {
		return nil, &mediagen.OutOfRange{Requested: first + count, Limit: m.frames}
	}
	list := make(mediagen.FrameInfoList, 0, count)
	for i := first; i < first+count; i++ {
		fi, err := m.Describe(i)
		if err != nil {
			return nil, err
		}
		list = append(list, fi)
	}
	return list, nil
}

func (m *mediaImpl) FrameCount() (int32, error) { return int32(m.frames), nil }

func (m *mediaImpl) Seek(index uint32) (uint32, error) {
	if index >= m.frames {
		return 0, &mediagen.OutOfRange{Requested: index, Limit: m.frames}
	}
	return index, nil
}

func (m *mediaImpl) Hint(uint32) {}

// qosFor maps a quality level to the client's QoS requirements: the
// request states the ideal, Min states the floor the client still accepts.
func qosFor(q mediagen.Quality) cool.QoSSet {
	switch q {
	case mediagen.QualityLOW:
		return nil // best effort, standard GIOP
	case mediagen.QualityMEDIUM:
		return cool.QoS(cool.MinThroughput(10_000, 2_000))
	default:
		return cool.QoS(append(cool.Reliable(), cool.MinThroughput(60_000, 20_000))...)
	}
}

func main() {
	opsAddr := flag.String("ops", "", "serve the ops HTTP endpoint (/metrics, /trace, /debug/pprof) on this address")
	loop := flag.Bool("loop", false, "keep issuing frame requests after the demo so live metrics move")
	flag.Parse()
	if err := run(*opsAddr, *loop); err != nil {
		log.Fatal(err)
	}
}

func run(opsAddr string, loop bool) error {
	inner := transport.NewInprocManager()

	server := cool.NewORB(cool.WithName("media-server"), cool.WithTransport(inner),
		// Any dispatch slower than 50ms lands in the slow-call log even
		// without a QoS Latency bound on the binding.
		cool.WithSlowCallThreshold(50*time.Millisecond))
	defer server.Shutdown()
	// The server admits at most 100 Mbit/s of QoS traffic in total.
	cool.EnableDaCaPo(server, cool.DaCaPoConfig{Inner: inner, BudgetKbps: 100_000})

	client := cool.NewORB(cool.WithName("media-client"), cool.WithTransport(inner))
	defer client.Shutdown()
	cool.EnableDaCaPo(client, cool.DaCaPoConfig{Inner: inner})

	if opsAddr != "" {
		// The server's view: per-op dispatch latency with exemplars, the
		// trace ring, and pprof. The client ORB keeps tracing enabled too so
		// its trace context propagates and exemplar lookups resolve.
		ops, err := cool.ServeOps(opsAddr, server)
		if err != nil {
			return err
		}
		defer ops.Close()
		cool.TraceLog(client)
		fmt.Printf("ops endpoint: http://%s/metrics\n", ops.Addr())
	}

	if _, err := server.ListenOn("inproc", "media"); err != nil {
		return err
	}
	if _, err := server.ListenOn("dacapo", "media-qos"); err != nil {
		return err
	}

	// The object implementation itself can sustain 80 Mbit/s.
	ref, err := server.RegisterServant(
		mediagen.NewMediaServerSkeleton(&mediaImpl{frames: 64}),
		cool.WithCapability(qos.Capability{
			cool.Throughput:  {Best: 80_000, Supported: true},
			cool.Reliability: {Best: 0, Supported: true},
			cool.Ordering:    {Best: 1, Supported: true},
		}),
	)
	if err != nil {
		return err
	}
	stub := mediagen.NewMediaServerStub(client.Resolve(ref))

	n, err := stub.FrameCount()
	if err != nil {
		return err
	}
	fmt.Printf("media server exports %d frames\n", n)

	for _, q := range []mediagen.Quality{mediagen.QualityLOW, mediagen.QualityMEDIUM, mediagen.QualityHIGH} {
		if err := stub.SetQoSParameter(qosFor(q)); err != nil {
			return err
		}
		frame, err := stub.GetFrame(7, q)
		if err != nil {
			return fmt.Errorf("get frame at %v: %w", q, err)
		}
		granted := stub.Object().GrantedQoS()
		mode := "GIOP 1.0 best effort"
		if len(granted) > 0 {
			mode = "GIOP 9.9, granted " + granted.String()
		}
		fmt.Printf("  %-6s: %6d bytes  [%s]\n", q, len(frame), mode)
	}

	// Demand beyond the object implementation's 80 Mbit/s: the bilateral
	// negotiation NACKs; the client adapts by lowering its floor.
	fmt.Println("requesting 200 Mbit/s (beyond the server's capability)…")
	if err := stub.SetQoSParameter(cool.QoS(cool.MinThroughput(200_000, 150_000))); err != nil {
		return err
	}
	if _, err := stub.GetFrame(7, mediagen.QualityHIGH); err != nil {
		fmt.Println("  server NACKed:", err)
	}
	fmt.Println("retrying with an acceptable floor of 20 Mbit/s…")
	if err := stub.SetQoSParameter(cool.QoS(cool.MinThroughput(200_000, 20_000))); err != nil {
		return err
	}
	if _, err := stub.GetFrame(7, mediagen.QualityHIGH); err != nil {
		return err
	}
	fmt.Println("  degraded gracefully to", stub.Object().GrantedQoS())

	// Exception mapping end to end.
	if _, err := stub.Describe(9999); err != nil {
		var oor *mediagen.OutOfRange
		if errors.As(err, &oor) {
			fmt.Printf("typed exception works: requested %d, limit %d\n", oor.Requested, oor.Limit)
		}
	}

	if loop {
		fmt.Println("looping frame requests (ctrl-c to stop)…")
		for i := uint32(0); ; i++ {
			q := []mediagen.Quality{mediagen.QualityLOW, mediagen.QualityMEDIUM, mediagen.QualityHIGH}[i%3]
			if err := stub.SetQoSParameter(qosFor(q)); err != nil {
				return err
			}
			if _, err := stub.GetFrame(i%64, q); err != nil {
				return err
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}

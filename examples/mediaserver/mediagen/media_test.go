package mediagen_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	cool "cool"
	"cool/examples/mediaserver/mediagen"
	"cool/internal/cdr"
	"cool/internal/qos"
	"cool/internal/transport"
)

// impl is a test implementation of the generated demo.MediaServer
// interface.
type impl struct {
	frames int
	hints  chan uint32
}

var _ mediagen.MediaServer = (*impl)(nil)

func (m *impl) Describe(index uint32) (mediagen.FrameInfo, error) {
	if index >= uint32(m.frames) {
		return mediagen.FrameInfo{}, &mediagen.OutOfRange{Requested: index, Limit: uint32(m.frames)}
	}
	return mediagen.FrameInfo{
		Index: index, Width: 640, Height: 480,
		Q: mediagen.QualityMEDIUM, SizeBytes: 640 * 480,
	}, nil
}

func (m *impl) GetFrame(index uint32, q mediagen.Quality) ([]byte, error) {
	if index >= uint32(m.frames) {
		return nil, &mediagen.OutOfRange{Requested: index, Limit: uint32(m.frames)}
	}
	size := 16 << uint(q)
	return bytes.Repeat([]byte{byte(index)}, size), nil
}

func (m *impl) Catalog(first, count uint32) (mediagen.FrameInfoList, error) {
	if first+count > uint32(m.frames) {
		return nil, &mediagen.OutOfRange{Requested: first + count, Limit: uint32(m.frames)}
	}
	var out mediagen.FrameInfoList
	for i := first; i < first+count; i++ {
		fi, _ := m.Describe(i)
		out = append(out, fi)
	}
	return out, nil
}

func (m *impl) FrameCount() (int32, error) { return int32(m.frames), nil }

func (m *impl) Seek(index uint32) (uint32, error) {
	if index >= uint32(m.frames) {
		return 0, &mediagen.OutOfRange{Requested: index, Limit: uint32(m.frames)}
	}
	return index, nil
}

func (m *impl) Hint(nextIndex uint32) {
	select {
	case m.hints <- nextIndex:
	default:
	}
}

func newStub(t *testing.T) (*mediagen.MediaServerStub, *impl) {
	t.Helper()
	inner := transport.NewInprocManager()
	server := cool.NewORB(cool.WithName("media-server"), cool.WithTransport(inner))
	client := cool.NewORB(cool.WithName("media-client"), cool.WithTransport(inner))
	cool.EnableDaCaPo(server, cool.DaCaPoConfig{Inner: inner})
	cool.EnableDaCaPo(client, cool.DaCaPoConfig{Inner: inner})
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })
	for _, scheme := range []string{"inproc", "dacapo"} {
		if _, err := server.ListenOn(scheme, ""); err != nil {
			t.Fatal(err)
		}
	}
	m := &impl{frames: 32, hints: make(chan uint32, 8)}
	ref, err := server.RegisterServant(
		mediagen.NewMediaServerSkeleton(m),
		cool.WithCapability(qos.Unconstrained()),
	)
	if err != nil {
		t.Fatal(err)
	}
	return mediagen.NewMediaServerStub(client.Resolve(ref)), m
}

func TestGeneratedStubRoundTrip(t *testing.T) {
	stub, _ := newStub(t)

	fi, err := stub.Describe(3)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Index != 3 || fi.Width != 640 || fi.Q != mediagen.QualityMEDIUM {
		t.Fatalf("fi = %+v", fi)
	}

	n, err := stub.FrameCount()
	if err != nil || n != 32 {
		t.Fatalf("count = %d, %v", n, err)
	}

	frame, err := stub.GetFrame(5, mediagen.QualityHIGH)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 16<<2 || frame[0] != 5 {
		t.Fatalf("frame = %d bytes, first %d", len(frame), frame[0])
	}

	list, err := stub.Catalog(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 4 || list[0].Index != 2 || list[3].Index != 5 {
		t.Fatalf("catalog = %+v", list)
	}

	landed, err := stub.Seek(7)
	if err != nil || landed != 7 {
		t.Fatalf("seek = %d, %v", landed, err)
	}
}

func TestGeneratedExceptionMapping(t *testing.T) {
	stub, _ := newStub(t)
	_, err := stub.Describe(999)
	if err == nil {
		t.Fatal("expected OutOfRange")
	}
	var oor *mediagen.OutOfRange
	if !errors.As(err, &oor) {
		t.Fatalf("err = %T %v", err, err)
	}
	if oor.Requested != 999 || oor.Limit != 32 {
		t.Fatalf("exception = %+v", oor)
	}
}

func TestGeneratedOneway(t *testing.T) {
	stub, m := newStub(t)
	if err := stub.Hint(11); err != nil {
		t.Fatal(err)
	}
	if got := <-m.hints; got != 11 {
		t.Fatalf("hint = %d", got)
	}
}

func TestGeneratedStubWithQoS(t *testing.T) {
	stub, _ := newStub(t)
	// The paper's headline API: setQoSParameter on the generated stub.
	err := stub.SetQoSParameter(cool.QoS(
		append(cool.Reliable(), cool.MinThroughput(5000, 1000))...,
	))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := stub.GetFrame(1, mediagen.QualityLOW)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != 16 {
		t.Fatalf("frame = %d bytes", len(frame))
	}
	granted := stub.Object().GrantedQoS()
	if granted.Value(cool.Throughput, 0) != 5000 {
		t.Fatalf("granted = %v", granted)
	}
}

func TestGeneratedEnumBounds(t *testing.T) {
	if mediagen.QualityHIGH.String() != "HIGH" {
		t.Fatal("enum String broken")
	}
	if mediagen.Quality(9).String() != "Quality(9)" {
		t.Fatal("unknown enumerant String broken")
	}
}

func TestConcurrentGeneratedCalls(t *testing.T) {
	stub, _ := newStub(t)
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func(w int) {
			for i := 0; i < 10; i++ {
				fi, err := stub.Describe(uint32(w % 32))
				if err != nil {
					done <- fmt.Errorf("w%d: %w", w, err)
					return
				}
				if fi.Index != uint32(w%32) {
					done <- fmt.Errorf("w%d: wrong frame %d", w, fi.Index)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDecodeFrameInfoListHostileLength(t *testing.T) {
	// A forged sequence count larger than the remaining payload must be
	// rejected before make() sizes a slice off it.
	enc := cdr.NewEncoder(cdr.BigEndian)
	enc.WriteULong(0xFFFFFFFF)
	dec := cdr.NewDecoder(enc.Bytes(), cdr.BigEndian)
	if _, err := mediagen.DecodeFrameInfoList(dec); err == nil ||
		!strings.Contains(err.Error(), "sequence length exceeds message") {
		t.Fatalf("hostile length not rejected: %v", err)
	}
}

// Benchmarks regenerating the paper's evaluation (one per table/figure;
// see DESIGN.md §4 and EXPERIMENTS.md):
//
//	BenchmarkFig9              — E1: Da CaPo throughput per packet size ×
//	                             protocol configuration (MB/s column).
//	BenchmarkGIOPInvocation    — E2: GIOP 1.0 vs QoS-extended 9.9 response
//	                             time (ns/op).
//	BenchmarkNegotiation       — E3: Figure 3 negotiation scenarios.
//	BenchmarkTransport         — E4: invocation latency per transport.
//	BenchmarkRequestMarshal    — E6: qos_params marshalling cost.
//
// Run with: go test -bench=. -benchmem .
package cool_test

import (
	"errors"
	"fmt"
	"testing"

	"cool/internal/cdr"
	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/experiments"
	"cool/internal/giop"
	"cool/internal/netsim"
	"cool/internal/orb"
	"cool/internal/qos"
)

// BenchmarkFig9 reproduces Figure 9: goodput through Da CaPo protocol
// stacks over the simulated 155 Mbit/s link. Compare the MB/s column
// across configurations and packet sizes.
func BenchmarkFig9(b *testing.B) {
	sizes := []int{1 << 10, 16 << 10, 64 << 10}
	for _, cfg := range experiments.Fig9Configs() {
		for _, size := range sizes {
			b.Run(fmt.Sprintf("%s/pkt=%s", cfg.Name, experiments.FormatSize(size)), func(b *testing.B) {
				link := netsim.NewLink(experiments.Fig9Link())
				defer link.Close()
				ea, eb := link.Endpoints()
				reg := modules.NewLibrary()
				sender, err := dacapo.NewRuntime(cfg.Spec, reg, ea)
				if err != nil {
					b.Fatal(err)
				}
				receiver, err := dacapo.NewRuntime(cfg.Spec, reg, eb)
				if err != nil {
					b.Fatal(err)
				}
				if err := sender.Start(); err != nil {
					b.Fatal(err)
				}
				if err := receiver.Start(); err != nil {
					b.Fatal(err)
				}
				defer sender.Close()
				defer receiver.Close()

				payload := make([]byte, size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				errc := make(chan error, 1)
				go func() {
					for i := 0; i < b.N; i++ {
						if err := sender.Send(payload); err != nil {
							errc <- err
							return
						}
					}
					errc <- nil
				}()
				for i := 0; i < b.N; i++ {
					if _, err := receiver.Recv(); err != nil {
						b.Fatal(err)
					}
				}
				if err := <-errc; err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkGIOPInvocation reproduces E2: remote echo invocations with the
// original GIOP 1.0 and the QoS-extended GIOP 9.9 over the same Da CaPo
// transport. The paper reports no measurable difference.
func BenchmarkGIOPInvocation(b *testing.B) {
	payload := make([]byte, 1024)
	run := func(b *testing.B, set qos.Set) {
		env, err := experiments.NewEnv("dacapo")
		if err != nil {
			b.Fatal(err)
		}
		defer env.Close()
		obj := env.Object()
		if set != nil {
			if err := obj.SetQoSParameter(set); err != nil {
				b.Fatal(err)
			}
		}
		if err := experiments.Echo(obj, payload); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := experiments.Echo(obj, payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("GIOP1.0", func(b *testing.B) { run(b, nil) })
	b.Run("GIOP9.9-qos", func(b *testing.B) {
		set, err := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: 10_000, Max: qos.NoLimit, Min: 0})
		if err != nil {
			b.Fatal(err)
		}
		run(b, set)
	})
}

// BenchmarkNegotiation reproduces E3: the cost of the Figure 3 scenarios.
func BenchmarkNegotiation(b *testing.B) {
	payload := make([]byte, 256)

	b.Run("granted-warm", func(b *testing.B) {
		env, err := experiments.NewEnv("dacapo")
		if err != nil {
			b.Fatal(err)
		}
		defer env.Close()
		obj := env.Object()
		set, _ := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: 500, Max: qos.NoLimit, Min: 100})
		if err := obj.SetQoSParameter(set); err != nil {
			b.Fatal(err)
		}
		if err := experiments.Echo(obj, payload); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := experiments.Echo(obj, payload); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("renegotiate-fresh", func(b *testing.B) {
		env, err := experiments.NewEnv("dacapo")
		if err != nil {
			b.Fatal(err)
		}
		defer env.Close()
		obj := env.Object()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			set, _ := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: uint32(1000 + i), Max: qos.NoLimit, Min: 100})
			if err := obj.SetQoSParameter(set); err != nil {
				b.Fatal(err)
			}
			if err := experiments.Echo(obj, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransport reproduces E4: 1 KiB echo latency per transport plus
// the colocated shortcut.
func BenchmarkTransport(b *testing.B) {
	payload := make([]byte, 1024)
	for _, scheme := range []string{"tcp", "inproc", "dacapo"} {
		b.Run(scheme, func(b *testing.B) {
			env, err := experiments.NewEnv(scheme)
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			obj := env.Object()
			if err := experiments.Echo(obj, payload); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := experiments.Echo(obj, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("colocated", func(b *testing.B) {
		env, err := experiments.NewEnv("inproc")
		if err != nil {
			b.Fatal(err)
		}
		defer env.Close()
		obj := env.LocalObject()
		if err := experiments.Echo(obj, payload); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := experiments.Echo(obj, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRequestMarshal reproduces E6: encode+decode cost of Request
// messages with and without the qos_params extension.
func BenchmarkRequestMarshal(b *testing.B) {
	mkQoS := func(n int) qos.Set {
		var s qos.Set
		for i := 0; i < n; i++ {
			s = append(s, qos.Parameter{Type: qos.Throughput, Request: uint32(i + 1), Max: qos.NoLimit})
		}
		return s
	}
	variants := []struct {
		name    string
		version giop.Version
		nqos    int
	}{
		{"GIOP1.0", giop.V1_0, 0},
		{"GIOP9.9-0params", giop.VQoS, 0},
		{"GIOP9.9-2params", giop.VQoS, 2},
		{"GIOP9.9-4params", giop.VQoS, 4},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			hdr := &giop.RequestHeader{
				RequestID:        1,
				ResponseExpected: true,
				ObjectKey:        []byte("object-key-0001"),
				Operation:        "getFrame",
				QoS:              mkQoS(v.nqos),
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				frame, err := giop.MarshalRequest(v.version, cdr.BigEndian, hdr, nil)
				if err != nil {
					b.Fatal(err)
				}
				m, err := giop.UnmarshalPooled(frame)
				if err != nil {
					b.Fatal(err)
				}
				giop.ReleaseMessage(m) // recycles the message and the frame
			}
		})
	}
}

// BenchmarkNACK measures the full abort path: bind, negotiate, NACK, tear
// down (part of E3).
func BenchmarkNACK(b *testing.B) {
	inner, err := experiments.NewEnv("dacapo")
	if err != nil {
		b.Fatal(err)
	}
	defer inner.Close()
	// Servant with a 1 Mbit/s ceiling.
	inner.Server.Adapter().Deactivate([]byte("obj-1"))
	ref, err := inner.Server.RegisterServant(nackServant{},
		orb.WithCapability(qos.Capability{qos.Throughput: {Best: 1000, Supported: true}}))
	if err != nil {
		b.Fatal(err)
	}
	obj := inner.Client.Resolve(ref)
	set, _ := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: 50_000, Max: qos.NoLimit, Min: 10_000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := obj.SetQoSParameter(set); err != nil {
			b.Fatal(err)
		}
		err := experiments.Echo(obj, nil)
		var se *giop.SystemException
		if !errors.As(err, &se) || !se.IsNACK() {
			b.Fatalf("expected NACK, got %v", err)
		}
	}
}

type nackServant struct{}

func (nackServant) RepoID() string { return "IDL:experiments/Echo:1.0" }

func (nackServant) Invoke(inv *orb.Invocation) (orb.ReplyWriter, error) {
	msg, err := inv.Args.ReadOctetSeq()
	if err != nil {
		return nil, giop.MarshalException()
	}
	out := append([]byte(nil), msg...)
	return func(enc *cdr.Encoder) { enc.WriteOctetSeq(out) }, nil
}

// BenchmarkObsOverhead measures the cost of the observability layer on the
// invocation path: metrics are always on (atomic counters + histogram
// observe per call), so the baseline/observer pair isolates the extra cost
// of span events flowing to an installed observer (ring-buffer TraceLog).
// The acceptance bar is <= 5% overhead for the observer variant.
func BenchmarkObsOverhead(b *testing.B) {
	payload := make([]byte, 1024)
	run := func(b *testing.B, withObserver bool) {
		env, err := experiments.NewEnv("inproc")
		if err != nil {
			b.Fatal(err)
		}
		defer env.Close()
		if withObserver {
			env.EnableTracing()
		}
		obj := env.Object()
		if err := experiments.Echo(obj, payload); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(payload)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := experiments.Echo(obj, payload); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("metrics-only", func(b *testing.B) { run(b, false) })
	b.Run("metrics+observer", func(b *testing.B) { run(b, true) })
}

// BenchmarkModuleHop isolates the per-module cost behind Figure 9's
// "0→40 dummy modules ≈ free" claim: one small message through stacks of
// increasing depth over an undelayed loopback, so the difference per row
// is purely module-interface and queue-hop overhead.
func BenchmarkModuleHop(b *testing.B) {
	for _, n := range []int{0, 1, 10, 40} {
		b.Run(fmt.Sprintf("dummies=%d", n), func(b *testing.B) {
			var spec dacapo.Spec
			for i := 0; i < n; i++ {
				spec.Modules = append(spec.Modules, dacapo.ModuleSpec{Name: "dummy"})
			}
			link := netsim.NewLink(netsim.Loopback())
			defer link.Close()
			ea, eb := link.Endpoints()
			reg := modules.NewLibrary()
			sender, err := dacapo.NewRuntime(spec, reg, ea)
			if err != nil {
				b.Fatal(err)
			}
			receiver, err := dacapo.NewRuntime(spec, reg, eb)
			if err != nil {
				b.Fatal(err)
			}
			if err := sender.Start(); err != nil {
				b.Fatal(err)
			}
			if err := receiver.Start(); err != nil {
				b.Fatal(err)
			}
			defer sender.Close()
			defer receiver.Close()
			msg := make([]byte, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sender.Send(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := receiver.Recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

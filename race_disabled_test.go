//go:build !race

package cool_test

const raceEnabled = false

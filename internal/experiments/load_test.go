package experiments

import (
	"testing"
	"time"
)

// TestRunLoadClosedLoop smokes the closed-loop harness at small scale: a
// short window must complete without errors and report sane percentiles
// from the production histograms.
func TestRunLoadClosedLoop(t *testing.T) {
	res, err := RunLoad(LoadOptions{
		Transport: "tcp",
		Conc:      32,
		Payload:   64,
		Duration:  200 * time.Millisecond,
		Warmup:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" {
		t.Fatalf("mode = %q, want closed", res.Mode)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Requests == 0 || res.Throughput <= 0 {
		t.Fatalf("no traffic measured: %+v", res)
	}
	if res.P50us <= 0 || res.P99us < res.P50us {
		t.Fatalf("percentiles out of order: p50=%d p99=%d", res.P50us, res.P99us)
	}
}

// TestRunLoadOpenLoop smokes the paced-arrival mode: the rate target keeps
// the request count near rate*duration and percentiles come from the same
// obs path.
func TestRunLoadOpenLoop(t *testing.T) {
	res, err := RunLoad(LoadOptions{
		Transport:  "tcp",
		Conc:       64,
		Payload:    64,
		Duration:   300 * time.Millisecond,
		Warmup:     50 * time.Millisecond,
		RatePerSec: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" {
		t.Fatalf("mode = %q, want open", res.Mode)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	// 2000/s over 300ms ≈ 600 arrivals; allow generous scheduling slack in
	// both directions but catch a broken pacer (0 or unbounded).
	if res.Requests+res.Dropped < 200 {
		t.Fatalf("pacer barely fired: %+v", res)
	}
	if res.Requests > 2000 {
		t.Fatalf("pacer overshot a 600-arrival budget: %+v", res)
	}
}

// TestRunLoadStripesAndCap exercises the striping and flow-control options
// end to end: more than one stripe, a binding in-flight cap, zero errors.
func TestRunLoadStripesAndCap(t *testing.T) {
	res, err := RunLoad(LoadOptions{
		Transport:   "tcp",
		Conc:        32,
		Payload:     64,
		Duration:    200 * time.Millisecond,
		Warmup:      50 * time.Millisecond,
		Stripes:     2,
		MaxInFlight: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Stripes != 2 {
		t.Fatalf("stripes = %d, want 2", res.Stripes)
	}
	if res.Requests == 0 {
		t.Fatal("no traffic")
	}
}

// TestPipelineHidesLatency is experiment E10: over a simulated high-RTT
// link, pipelined concurrent invocations on one multiplexed connection
// must beat call-by-call sequential use by a wide margin, because queued
// frames share flights instead of paying one RTT each.
func TestPipelineHidesLatency(t *testing.T) {
	res, err := RunPipelineExperiment(4*time.Millisecond, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.SequentialRPS <= 0 || res.PipelinedRPS <= 0 {
		t.Fatalf("degenerate rates: %+v", res)
	}
	// 8-way pipelining over a 4ms RTT should approach 8x; require 2x so
	// the assertion stays robust on loaded CI machines.
	if res.Speedup < 2 {
		t.Fatalf("pipelining speedup = %.2f, want >= 2 (seq %.0f rps, pipe %.0f rps)",
			res.Speedup, res.SequentialRPS, res.PipelinedRPS)
	}
}

package experiments

// E11 — connection multiplexing at scale. The harness drives the echo
// servant with thousands of concurrent goroutine clients in two modes:
//
//   - closed loop: Conc callers each issue the next request as soon as
//     the previous reply lands. Throughput is offered-load-coupled, the
//     classic benchmark shape.
//   - open loop: arrivals are paced at RatePerSec independently of
//     completions (up to an outstanding cap that keeps an overloaded
//     target from accumulating unbounded goroutines). Latency percentiles
//     from an open-loop run include queueing delay and are the honest
//     tail numbers.
//
// Percentiles are not sampled by the harness: they are read from the
// client ORB's own orb.client.latency_us histogram via a snapshot delta,
// so the measurement path is the production observability path.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cool/internal/netsim"
	"cool/internal/orb"
	"cool/internal/qos"
)

// LoadOptions configures one load-harness run.
type LoadOptions struct {
	// Transport is the listening scheme ("tcp", "inproc"); default tcp.
	Transport string
	// Conc is the number of concurrent closed-loop callers (each a
	// goroutine with its own proxy). In open-loop mode it caps the
	// outstanding invocations instead.
	Conc int
	// Payload is the echo payload size in octets.
	Payload int
	// Duration is the measurement window (after warmup).
	Duration time.Duration
	// Warmup is run before the window to let bindings and pools settle;
	// defaults to min(Duration/4, 2s).
	Warmup time.Duration
	// RatePerSec switches to open-loop mode: arrivals are generated at
	// this rate regardless of completions. 0 selects closed loop.
	RatePerSec int
	// Stripes is handed to orb.WithConnStripes (0 = default of 1).
	Stripes int
	// MaxInFlight is handed to orb.WithMaxInFlight (0 = ORB default).
	MaxInFlight int
}

// LoadResult is one load-harness measurement.
type LoadResult struct {
	Mode       string  `json:"mode"` // "closed" | "open"
	Transport  string  `json:"transport"`
	Conc       int     `json:"conc"`
	Payload    int     `json:"payload_b"`
	Stripes    int     `json:"stripes"`
	DurationMS int64   `json:"duration_ms"`
	Requests   uint64  `json:"requests"`
	Errors     uint64  `json:"errors"`
	Dropped    uint64  `json:"dropped"` // open loop: arrivals over the outstanding cap
	Throughput float64 `json:"rps"`

	// Latency percentiles (µs) from orb.client.latency_us{op=echo}.
	P50us uint64 `json:"p50_us"`
	P95us uint64 `json:"p95_us"`
	P99us uint64 `json:"p99_us"`

	// Flush coalescing evidence: mean and p99 frames-per-writev on the
	// client connections, and the p99 flow-control admission wait.
	FlushBatchMean float64 `json:"flush_batch_mean"`
	FlushBatchP99  uint64  `json:"flush_batch_p99"`
	FlowWaitP99us  uint64  `json:"flow_wait_p99_us"`
}

func (o *LoadOptions) withDefaults() LoadOptions {
	opts := *o
	if opts.Transport == "" {
		opts.Transport = "tcp"
	}
	if opts.Conc <= 0 {
		opts.Conc = 1
	}
	if opts.Payload < 0 {
		opts.Payload = 0
	}
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Second
	}
	if opts.Warmup <= 0 {
		opts.Warmup = opts.Duration / 4
		if opts.Warmup > 2*time.Second {
			opts.Warmup = 2 * time.Second
		}
	}
	return opts
}

// RunLoad runs the load harness once and reports the measurement.
func RunLoad(o LoadOptions) (LoadResult, error) {
	opts := o.withDefaults()

	serverOpts := []orb.Option{orb.WithName("load-server")}
	clientOpts := []orb.Option{orb.WithName("load-client")}
	if opts.Stripes > 0 {
		clientOpts = append(clientOpts, orb.WithConnStripes(opts.Stripes))
	}
	if opts.MaxInFlight > 0 {
		clientOpts = append(clientOpts, orb.WithMaxInFlight(opts.MaxInFlight))
	}
	server := orb.New(serverOpts...)
	defer server.Shutdown()
	if _, err := server.ListenOn(opts.Transport, ""); err != nil {
		return LoadResult{}, err
	}
	// Default (concurrent) dispatch, not WithInlineDispatch: the load
	// harness wants the server replying from many goroutines so the
	// client side sees bursty completions — the shape that exercises
	// write coalescing and flow control.
	ref, err := server.RegisterServant(echoServant{},
		orb.WithCapability(qos.Unconstrained()))
	if err != nil {
		return LoadResult{}, err
	}
	client := orb.New(clientOpts...)
	defer client.Shutdown()

	// One proxy per caller: bindings are per-proxy, so callers do not
	// serialize on a shared proxy mutex and the connection cache (with
	// its striping) is what distributes the load.
	nproxies := opts.Conc
	proxies := make([]*orb.Object, nproxies)
	for i := range proxies {
		proxies[i] = client.Resolve(ref)
	}
	payload := make([]byte, opts.Payload)

	var requests, errors, dropped atomic.Uint64
	run := func(stop <-chan struct{}) {
		if opts.RatePerSec > 0 {
			runOpenLoop(proxies, payload, opts.RatePerSec, stop, &requests, &errors, &dropped)
		} else {
			runClosedLoop(proxies, payload, stop, &requests, &errors)
		}
	}

	// Warmup round: establish every binding once, then run the loop
	// briefly so pools and flush paths reach steady state.
	for _, p := range proxies {
		if err := Echo(p, payload); err != nil {
			return LoadResult{}, fmt.Errorf("experiments: load warmup: %w", err)
		}
	}
	warm := make(chan struct{})
	var warmWG sync.WaitGroup
	warmWG.Add(1)
	go func() { defer warmWG.Done(); run(warm) }()
	time.Sleep(opts.Warmup)
	close(warm)
	warmWG.Wait()

	// Measurement window, bracketed by metric snapshots.
	requests.Store(0)
	errors.Store(0)
	dropped.Store(0)
	before := client.Metrics().Snapshot()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); run(stop) }()
	start := time.Now()
	time.Sleep(opts.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	delta := client.Metrics().Snapshot().Delta(before)

	res := LoadResult{
		Mode:       "closed",
		Transport:  opts.Transport,
		Conc:       opts.Conc,
		Payload:    opts.Payload,
		Stripes:    max(opts.Stripes, 1),
		DurationMS: elapsed.Milliseconds(),
		Requests:   requests.Load(),
		Errors:     errors.Load(),
		Dropped:    dropped.Load(),
		Throughput: float64(requests.Load()) / elapsed.Seconds(),
	}
	if opts.RatePerSec > 0 {
		res.Mode = "open"
	}
	if h, ok := delta.Histogram("orb.client.latency_us{op=echo}"); ok {
		res.P50us = h.Quantile(0.50)
		res.P95us = h.Quantile(0.95)
		res.P99us = h.Quantile(0.99)
	}
	if h, ok := delta.Histogram("orb.client.flush_batch"); ok && h.Count > 0 {
		res.FlushBatchMean = float64(h.Sum) / float64(h.Count)
		res.FlushBatchP99 = h.Quantile(0.99)
	}
	if h, ok := delta.Histogram("orb.client.flow_control_wait_us"); ok {
		res.FlowWaitP99us = h.Quantile(0.99)
	}
	return res, nil
}

// runClosedLoop drives one goroutine per proxy, each re-invoking as soon
// as its previous call returns, until stop closes.
func runClosedLoop(proxies []*orb.Object, payload []byte, stop <-chan struct{}, requests, errors *atomic.Uint64) {
	var wg sync.WaitGroup
	for _, p := range proxies {
		wg.Add(1)
		go func(obj *orb.Object) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := Echo(obj, payload); err != nil {
					errors.Add(1)
				} else {
					requests.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
}

// runOpenLoop paces arrivals at rate/s. Each arrival claims an
// outstanding slot (bounded by len(proxies)) and invokes on its own
// goroutine; arrivals that find every slot busy are counted as dropped
// rather than queued, so the arrival process stays independent of
// service times.
func runOpenLoop(proxies []*orb.Object, payload []byte, rate int, stop <-chan struct{}, requests, errors, dropped *atomic.Uint64) {
	type slotted struct{ obj *orb.Object }
	slots := make(chan slotted, len(proxies))
	for _, p := range proxies {
		slots <- slotted{obj: p}
	}
	var wg sync.WaitGroup
	defer wg.Wait()

	// Coarse pacing: a 1ms tick releases the arrivals accumulated since
	// the previous tick, which keeps timer pressure independent of the
	// rate while preserving the average.
	const tick = time.Millisecond
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	start := time.Now()
	var issued uint64
	for {
		select {
		case <-stop:
			return
		case now := <-ticker.C:
			due := uint64(float64(rate) * now.Sub(start).Seconds())
			for ; issued < due; issued++ {
				select {
				case s := <-slots:
					wg.Add(1)
					go func(s slotted) {
						defer wg.Done()
						if err := Echo(s.obj, payload); err != nil {
							errors.Add(1)
						} else {
							requests.Add(1)
						}
						slots <- s
					}(s)
				default:
					dropped.Add(1)
				}
			}
		}
	}
}

// PipelineResult is the E10 measurement: sequential vs pipelined
// invocation throughput over a high-RTT simulated link.
type PipelineResult struct {
	RTTms          int64   `json:"rtt_ms"`
	Conc           int     `json:"conc"`
	Invocations    int     `json:"invocations"`
	SequentialRPS  float64 `json:"sequential_rps"`
	PipelinedRPS   float64 `json:"pipelined_rps"`
	Speedup        float64 `json:"speedup"`
	FlushBatchP99  uint64  `json:"flush_batch_p99"`
	SequentialSecs float64 `json:"sequential_s"`
	PipelinedSecs  float64 `json:"pipelined_s"`
}

// RunPipelineExperiment (E10) measures request pipelining on one
// connection over a netsim link with the given round-trip time: a single
// closed-loop caller pays a full RTT per invocation, while conc
// concurrent callers sharing the connection overlap their RTTs — the
// flush-coalescing writer batches their frames into shared writevs, so
// throughput approaches conc× sequential until the link saturates.
func RunPipelineExperiment(rtt time.Duration, conc, invocations int) (PipelineResult, error) {
	if conc < 1 {
		conc = 1
	}
	if invocations < conc {
		invocations = conc
	}
	params := netsim.Loopback()
	params.PropDelay = rtt / 2
	params.QueueLen = 4096
	sim := netsim.NewManager(params)

	server := orb.New(orb.WithName("pipe-server"), orb.WithTransport(sim))
	defer server.Shutdown()
	if _, err := server.ListenOn("netsim", "pipe-ep"); err != nil {
		return PipelineResult{}, err
	}
	ref, err := server.RegisterServant(echoServant{},
		orb.WithCapability(qos.Unconstrained()), orb.WithInlineDispatch())
	if err != nil {
		return PipelineResult{}, err
	}
	client := orb.New(orb.WithName("pipe-client"), orb.WithTransport(sim))
	defer client.Shutdown()

	payload := []byte("ping")
	seq := client.Resolve(ref)
	if err := Echo(seq, payload); err != nil {
		return PipelineResult{}, err
	}

	// Sequential baseline: one caller, invocations/conc calls (same
	// per-caller count as the pipelined run, so both sides spend the
	// same number of RTTs per goroutine).
	perCaller := invocations / conc
	seqStart := time.Now()
	for i := 0; i < perCaller; i++ {
		if err := Echo(seq, payload); err != nil {
			return PipelineResult{}, err
		}
	}
	seqElapsed := time.Since(seqStart)

	// Pipelined: conc callers, each its own proxy, sharing the single
	// cached connection (stripes default to 1).
	before := client.Metrics().Snapshot()
	proxies := make([]*orb.Object, conc)
	for i := range proxies {
		proxies[i] = client.Resolve(ref)
	}
	var wg sync.WaitGroup
	var firstErr atomic.Value
	pipeStart := time.Now()
	for _, p := range proxies {
		wg.Add(1)
		go func(obj *orb.Object) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				if err := Echo(obj, payload); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	pipeElapsed := time.Since(pipeStart)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return PipelineResult{}, err
	}
	delta := client.Metrics().Snapshot().Delta(before)

	res := PipelineResult{
		RTTms:          rtt.Milliseconds(),
		Conc:           conc,
		Invocations:    perCaller * conc,
		SequentialRPS:  float64(perCaller) / seqElapsed.Seconds(),
		PipelinedRPS:   float64(perCaller*conc) / pipeElapsed.Seconds(),
		SequentialSecs: seqElapsed.Seconds(),
		PipelinedSecs:  pipeElapsed.Seconds(),
	}
	if res.SequentialRPS > 0 {
		res.Speedup = res.PipelinedRPS / res.SequentialRPS
	}
	if h, ok := delta.Histogram("orb.client.flush_batch"); ok {
		res.FlushBatchP99 = h.Quantile(0.99)
	}
	return res, nil
}

//go:build !race

package experiments

// raceEnabled reports that the race detector is active.
const raceEnabled = false

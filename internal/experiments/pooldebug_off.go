//go:build !pooldebug

package experiments

// pooldebugEnabled reports that the pooldebug runtime verifier is active.
const pooldebugEnabled = false

package experiments

import "testing"

// TestRunReconfigNoLossNoDup: the E1b harness itself enforces the claim —
// strict per-message sequence verification across every splice and exact
// completed-splice counters on both ends — so a clean return is the
// assertion.
func TestRunReconfigNoLossNoDup(t *testing.T) {
	opts := QuickReconfigOptions()
	res, err := RunReconfig(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost != 0 || res.Duplicated != 0 {
		t.Fatalf("lost=%d dup=%d", res.Lost, res.Duplicated)
	}
	if res.Initiator[1] != uint64(opts.Splices) || res.Responder[1] != uint64(opts.Splices) {
		t.Fatalf("completed splices initiator=%d responder=%d, want %d",
			res.Initiator[1], res.Responder[1], opts.Splices)
	}
	if res.Mbps <= 0 {
		t.Fatalf("throughput %f", res.Mbps)
	}
}

func TestRunReconfigRejectsTinyMessages(t *testing.T) {
	if _, err := RunReconfig(ReconfigOptions{MsgSize: 4, Messages: 8, Splices: 1}); err == nil {
		t.Fatal("message size below the sequence header should fail")
	}
}

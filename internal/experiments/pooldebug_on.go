//go:build pooldebug

package experiments

// pooldebugEnabled reports that the pooldebug runtime verifier is active;
// like the race detector, its per-acquisition ledgers and stack captures
// skew latencies enough to invert timing-shape comparisons.
const pooldebugEnabled = true

package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/netsim"
	"cool/internal/transport"
)

// ReconfigOptions scales the E12 mid-stream reconfiguration experiment.
type ReconfigOptions struct {
	// MsgSize is the payload size in octets (≥ 8: the sequence number).
	MsgSize int
	// Messages is the total flood volume.
	Messages int
	// Splices is how many times the module graph is renegotiated while the
	// flood is running.
	Splices int
}

// DefaultReconfigOptions returns the defaults used by cmd/multebench.
func DefaultReconfigOptions() ReconfigOptions {
	return ReconfigOptions{MsgSize: 4 << 10, Messages: 4096, Splices: 8}
}

// QuickReconfigOptions returns a fast variant for tests.
func QuickReconfigOptions() ReconfigOptions {
	return ReconfigOptions{MsgSize: 1 << 10, Messages: 512, Splices: 3}
}

// ReconfigResult reports the mid-stream reconfiguration run. Lost and
// Duplicated are always zero on success — any sequence violation fails the
// run — and are carried explicitly so the table states the claim.
type ReconfigResult struct {
	Messages int
	MsgSize  int
	Splices  int
	Mbps     float64
	Elapsed  time.Duration
	// Initiator / responder reconfiguration counters (started, completed,
	// aborted).
	Initiator [3]uint64
	Responder [3]uint64
	Lost      int
	Duplicated int
}

// reconfigSpecs are the two module graphs the experiment alternates
// between: an inline cipher+CRC32 stack and an inline RLE+CRC16 stack.
func reconfigSpecs() (a, b dacapo.Spec) {
	a = dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "xorcipher"}, {Name: "crc32"}}}
	b = dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "rle"}, {Name: "crc16"}}}
	return a, b
}

// RunReconfig runs E12: a sender floods sequence-numbered packets over a
// lossless simulated LAN while the module graph is renegotiated
// Splices times mid-stream. The receiver verifies that every sequence
// number arrives exactly once, in order, across all generation switches;
// any loss, duplication or reordering fails the run.
func RunReconfig(opts ReconfigOptions) (ReconfigResult, error) {
	if opts.MsgSize < 8 {
		return ReconfigResult{}, fmt.Errorf("experiments: reconfig message size %d < 8", opts.MsgSize)
	}
	link := Fig9Link() // lossless 155 Mbit/s LAN, FIFO per direction
	l := netsim.NewLink(link)
	defer l.Close()
	ea, eb := l.Endpoints()

	specA, specB := reconfigSpecs()
	lib := modules.NewLibrary()
	ra, err := dacapo.NewRuntime(specA, lib, ea)
	if err != nil {
		return ReconfigResult{}, err
	}
	rb, err := dacapo.NewRuntime(specA, lib, eb)
	if err != nil {
		return ReconfigResult{}, err
	}
	if err := ra.Start(); err != nil {
		return ReconfigResult{}, err
	}
	if err := rb.Start(); err != nil {
		return ReconfigResult{}, err
	}
	defer ra.Close()
	defer rb.Close()

	n := opts.Messages
	payload := make([]byte, opts.MsgSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	sendDone := make(chan error, 1)
	recvDone := make(chan error, 1)
	start := time.Now()
	go func() {
		for i := 0; i < n; i++ {
			binary.BigEndian.PutUint64(payload[:8], uint64(i))
			if err := ra.Send(payload); err != nil {
				sendDone <- fmt.Errorf("send %d: %w", i, err)
				return
			}
		}
		sendDone <- nil
	}()
	go func() {
		for i := 0; i < n; i++ {
			msg, err := rb.Recv()
			if err != nil {
				recvDone <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if len(msg) != opts.MsgSize {
				recvDone <- fmt.Errorf("message %d: %d octets, want %d", i, len(msg), opts.MsgSize)
				return
			}
			if got := binary.BigEndian.Uint64(msg[:8]); got != uint64(i) {
				recvDone <- fmt.Errorf("sequence violation: got %d, want %d (lost or duplicated across splice)", got, i)
				return
			}
			transport.PutBuffer(msg)
		}
		recvDone <- nil
		// Keep the responder's receive path alive: control frames trailing
		// the flood (a late COMMIT mirror) are handled inside Recv.
		for {
			if _, err := rb.Recv(); err != nil {
				return
			}
		}
	}()

	// Splice the module graph while the flood runs, alternating between
	// the two stacks. Each Reconfigure blocks until the initiator side has
	// committed; the responder finishes asynchronously on its next Recv.
	next := specB
	other := specA
	for k := 0; k < opts.Splices; k++ {
		if _, err := ra.Reconfigure(next, nil); err != nil {
			return ReconfigResult{}, fmt.Errorf("splice %d: %w", k, err)
		}
		next, other = other, next
	}

	if err := <-sendDone; err != nil {
		return ReconfigResult{}, err
	}
	if err := <-recvDone; err != nil {
		return ReconfigResult{}, err
	}
	elapsed := time.Since(start)

	// The responder completes each splice after mailing its COMMIT mirror;
	// wait for its counters to converge before reading them.
	deadline := time.Now().Add(2 * time.Second)
	var rs, rc, rx uint64
	for {
		rs, rc, rx = rb.ReconfigCounts()
		if rc >= uint64(opts.Splices) || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	is, ic, ix := ra.ReconfigCounts()
	if ic != uint64(opts.Splices) || ix != 0 {
		return ReconfigResult{}, fmt.Errorf("initiator counters started=%d completed=%d aborted=%d, want %d completed", is, ic, ix, opts.Splices)
	}
	if rc != uint64(opts.Splices) || rx != 0 {
		return ReconfigResult{}, fmt.Errorf("responder counters started=%d completed=%d aborted=%d, want %d completed", rs, rc, rx, opts.Splices)
	}

	bits := float64(n) * float64(opts.MsgSize) * 8
	return ReconfigResult{
		Messages:  n,
		MsgSize:   opts.MsgSize,
		Splices:   opts.Splices,
		Mbps:      bits / elapsed.Seconds() / 1e6,
		Elapsed:   elapsed,
		Initiator: [3]uint64{is, ic, ix},
		Responder: [3]uint64{rs, rc, rx},
	}, nil
}

// Package experiments implements the measurement harnesses that regenerate
// the paper's evaluation (§6) and the ablations DESIGN.md calls out:
//
//   - E1 / Figure 9: Da CaPo throughput for different packet sizes and
//     protocol configurations (dummy-module chains vs the IRQ
//     idle-repeat-request flow control).
//   - E2: response time of remote invocations with the original GIOP 1.0
//     versus the QoS-extended GIOP 9.9.
//   - E3: cost of the negotiation scenarios of Figure 3 (granted, NACK,
//     per-binding vs per-method renegotiation).
//   - E4: invocation latency across the transports (tcp, inproc, dacapo)
//     and the colocated shortcut.
//   - E5: the configuration manager's QoS→protocol mapping, with delivered
//     reliability measured on a lossy link.
//   - E6: wire-size and marshalling cost of the qos_params extension.
//
// cmd/multebench prints the tables; the root bench_test.go exposes the same
// harnesses as testing.B benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cool/internal/cdr"
	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/giop"
	"cool/internal/netsim"
	"cool/internal/obs"
	"cool/internal/orb"
	"cool/internal/qos"
	"cool/internal/transport"
)

// NamedSpec labels a protocol configuration under test.
type NamedSpec struct {
	Name string
	Spec dacapo.Spec
}

// Fig9Configs returns the protocol configurations of Figure 9: chains of
// 0/10/20/40 dummy modules, and the IRQ (idle-repeat-request) module.
func Fig9Configs() []NamedSpec {
	dummies := func(n int) dacapo.Spec {
		var s dacapo.Spec
		for i := 0; i < n; i++ {
			s.Modules = append(s.Modules, dacapo.ModuleSpec{Name: "dummy"})
		}
		return s
	}
	return []NamedSpec{
		{Name: "0 dummy", Spec: dummies(0)},
		{Name: "10 dummy", Spec: dummies(10)},
		{Name: "20 dummy", Spec: dummies(20)},
		{Name: "40 dummy", Spec: dummies(40)},
		{Name: "irq", Spec: dacapo.Spec{Modules: []dacapo.ModuleSpec{
			{Name: "irq", Args: dacapo.Args{"rto": "200ms"}},
		}}},
	}
}

// Fig9PacketSizes returns the packet-size sweep (octets).
func Fig9PacketSizes() []int {
	return []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
}

// Fig9Link returns the simulated network of the experiment: the paper's
// 155 Mbit/s ATM-class link with LAN propagation delay.
func Fig9Link() netsim.Params {
	p := netsim.LAN()
	p.QueueLen = 128
	return p
}

// MeasureStackThroughput runs the paper's throughput test application: a
// measuring A-module sends msgCount dummy packets of msgSize octets from a
// pre-allocated buffer through the protocol configuration; the receiving
// side counts them. It returns the end-to-end goodput in Mbit/s.
func MeasureStackThroughput(spec dacapo.Spec, link netsim.Params, msgSize, msgCount int) (float64, error) {
	l := netsim.NewLink(link)
	defer l.Close()
	a, b := l.Endpoints()

	reg := modules.NewLibrary()
	sender, err := dacapo.NewRuntime(spec, reg, a)
	if err != nil {
		return 0, err
	}
	receiver, err := dacapo.NewRuntime(spec, reg, b)
	if err != nil {
		return 0, err
	}
	if err := sender.Start(); err != nil {
		return 0, err
	}
	if err := receiver.Start(); err != nil {
		return 0, err
	}
	defer sender.Close()
	defer receiver.Close()

	payload := make([]byte, msgSize) // the pre-allocated send buffer
	for i := range payload {
		payload[i] = byte(i)
	}

	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		for i := 0; i < msgCount; i++ {
			if err := sender.Send(payload); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	received := 0
	for received < msgCount {
		msg, err := receiver.Recv()
		if err != nil {
			return 0, fmt.Errorf("experiments: receive after %d/%d: %w", received, msgCount, err)
		}
		if len(msg) != msgSize {
			return 0, fmt.Errorf("experiments: message size %d, want %d", len(msg), msgSize)
		}
		transport.PutBuffer(msg) // frames are arena-owned; recycle at line rate
		received++
	}
	elapsed := time.Since(start)
	if err := <-errc; err != nil {
		return 0, err
	}
	bits := float64(msgCount) * float64(msgSize) * 8
	return bits / elapsed.Seconds() / 1e6, nil
}

// Fig9Point is one cell of the Figure 9 matrix.
type Fig9Point struct {
	Config     string
	PacketSize int
	Mbps       float64
}

// Fig9Options scales the experiment.
type Fig9Options struct {
	// TargetBytes is the approximate volume per cell; larger is steadier.
	TargetBytes int
	// MinCount/MaxCount clamp the per-cell message count.
	MinCount, MaxCount int
}

// DefaultFig9Options returns the defaults used by cmd/multebench.
func DefaultFig9Options() Fig9Options {
	return Fig9Options{TargetBytes: 12 << 20, MinCount: 24, MaxCount: 4096}
}

// QuickFig9Options returns a fast, noisier variant for tests.
func QuickFig9Options() Fig9Options {
	return Fig9Options{TargetBytes: 1 << 20, MinCount: 8, MaxCount: 256}
}

// RunFig9 measures the full Figure 9 matrix.
func RunFig9(opts Fig9Options) ([]Fig9Point, error) {
	var out []Fig9Point
	link := Fig9Link()
	for _, cfg := range Fig9Configs() {
		for _, size := range Fig9PacketSizes() {
			count := opts.TargetBytes / size
			if cfg.Name == "irq" {
				// Stop-and-wait is ~1 packet per RTT: bound the volume so
				// the cell finishes in reasonable time.
				count = min(count, 2048*1024/size+16)
			}
			count = max(opts.MinCount, min(count, opts.MaxCount))
			mbps, err := MeasureStackThroughput(cfg.Spec, link, size, count)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 %s/%d: %w", cfg.Name, size, err)
			}
			out = append(out, Fig9Point{Config: cfg.Name, PacketSize: size, Mbps: mbps})
		}
	}
	return out, nil
}

// RTStats summarises round-trip samples.
type RTStats struct {
	N                   int
	Mean, P50, P95, P99 time.Duration
	Min, Max            time.Duration
}

func summarize(samples []time.Duration) RTStats {
	if len(samples) == 0 {
		return RTStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return RTStats{
		N:    len(samples),
		Mean: sum / time.Duration(len(samples)),
		P50:  samples[len(samples)/2],
		P95:  samples[len(samples)*95/100],
		P99:  samples[len(samples)*99/100],
		Min:  samples[0],
		Max:  samples[len(samples)-1],
	}
}

// StatsHook, when non-nil, receives each Env's observability report as the
// Env closes (cmd/multebench -stats wires it to stdout). Setting it also
// makes NewEnv install trace recorders on both ORBs, so the report carries
// recent events in addition to metric snapshots.
var StatsHook func(label, report string)

// Env is a reusable two-ORB environment over one in-process network with a
// Da CaPo transport at both ends.
type Env struct {
	Server, Client *orb.ORB
	servant        *echoServant
	ref            func() *orb.Object
	obj            *orb.Object
	label          string

	// ClientLog/ServerLog record observability events when tracing is
	// enabled (nil otherwise).
	ClientLog, ServerLog *obs.TraceLog
}

// echoServant answers "echo" with its argument.
type echoServant struct{}

func (echoServant) RepoID() string { return "IDL:experiments/Echo:1.0" }

func (echoServant) Invoke(inv *orb.Invocation) (orb.ReplyWriter, error) {
	switch inv.Operation {
	case "echo":
		msg, err := inv.Args.ReadOctetSeq()
		if err != nil {
			return nil, giop.MarshalException()
		}
		// msg aliases the request frame, which stays valid until the reply
		// writer has run — no copy needed.
		return func(enc *cdr.Encoder) { enc.WriteOctetSeq(msg) }, nil
	default:
		return nil, giop.BadOperation()
	}
}

// NewEnv builds the environment listening on the given schemes, with the
// Da CaPo transports running over an in-process network.
func NewEnv(schemes ...string) (*Env, error) {
	return NewEnvInner(transport.NewInprocManager(), schemes...)
}

// NewEnvInner is NewEnv with an explicit T service under the Da CaPo
// transports (e.g. transport.NewTCPManager() for real sockets).
func NewEnvInner(inner transport.Manager, schemes ...string) (*Env, error) {
	lib := modules.NewLibrary()
	link := netsim.LAN().Capability()
	server := orb.New(
		orb.WithName("exp-server"),
		orb.WithTransport(inner),
	)
	client := orb.New(
		orb.WithName("exp-client"),
		orb.WithTransport(inner),
	)
	for _, o := range []*orb.ORB{server, client} {
		m := dacapo.NewManager(inner, lib, dacapo.NewResourceManager(0, 0), link)
		m.Instrument(o.Metrics(), o.Tracer())
		o.Transports().Register(m)
	}
	e := &Env{Server: server, Client: client, label: strings.Join(schemes, "+")}
	if StatsHook != nil {
		e.EnableTracing()
	}
	for _, s := range schemes {
		if _, err := server.ListenOn(s, ""); err != nil {
			client.Shutdown()
			server.Shutdown()
			return nil, err
		}
	}
	ref, err := server.RegisterServant(echoServant{},
		orb.WithCapability(qos.Unconstrained()), orb.WithInlineDispatch())
	if err != nil {
		client.Shutdown()
		server.Shutdown()
		return nil, err
	}
	e.obj = client.Resolve(ref)
	return e, nil
}

// EnableTracing installs trace recorders on both ORBs (idempotent).
func (e *Env) EnableTracing() {
	if e.ClientLog == nil {
		e.ClientLog = obs.NewTraceLog(0)
		e.Client.SetObserver(e.ClientLog)
	}
	if e.ServerLog == nil {
		e.ServerLog = obs.NewTraceLog(0)
		e.Server.SetObserver(e.ServerLog)
	}
}

// Close shuts both ORBs down and delivers the observability report to
// StatsHook when one is set.
func (e *Env) Close() {
	e.Client.Shutdown()
	e.Server.Shutdown()
	if StatsHook != nil {
		StatsHook(e.label, e.Report())
	}
}

// Report renders both ORBs' metric snapshots plus (when tracing is
// enabled) the most recent observability events of each side.
func (e *Env) Report() string {
	var b strings.Builder
	b.WriteString("--- client metrics ---\n")
	b.WriteString(e.Client.Metrics().Snapshot().Text())
	b.WriteString("--- server metrics ---\n")
	b.WriteString(e.Server.Metrics().Snapshot().Text())
	writeTail := func(title string, log *obs.TraceLog) {
		if log == nil {
			return
		}
		events := log.Events()
		const tail = 12
		if len(events) > tail {
			fmt.Fprintf(&b, "--- %s (last %d of %d) ---\n", title, tail, len(events))
			events = events[len(events)-tail:]
		} else {
			fmt.Fprintf(&b, "--- %s ---\n", title)
		}
		for _, ev := range events {
			b.WriteString(ev.String())
			b.WriteByte('\n')
		}
	}
	writeTail("client events", e.ClientLog)
	writeTail("server events", e.ServerLog)
	return b.String()
}

// Object returns the client proxy for the echo servant.
func (e *Env) Object() *orb.Object { return e.obj }

// LocalObject returns a proxy resolved inside the server ORB (colocated).
func (e *Env) LocalObject() *orb.Object {
	return e.Server.Resolve(e.Server.RefFor("IDL:experiments/Echo:1.0", []byte("obj-1")))
}

// Echo performs one echo invocation with the given payload.
func Echo(obj *orb.Object, payload []byte) error {
	return obj.Invoke("echo",
		func(enc *cdr.Encoder) { enc.WriteOctetSeq(payload) },
		func(dec *cdr.Decoder) error {
			_, err := dec.ReadOctetSeq()
			return err
		})
}

// MeasureInvocationRT samples n echo round trips on obj.
func MeasureInvocationRT(obj *orb.Object, payload []byte, n int) (RTStats, error) {
	// Warm up the binding so connection setup is excluded, as in the
	// paper's steady-state response-time measurement.
	if err := Echo(obj, payload); err != nil {
		return RTStats{}, err
	}
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := Echo(obj, payload); err != nil {
			return RTStats{}, err
		}
		samples = append(samples, time.Since(start))
	}
	return summarize(samples), nil
}

// GIOPComparison is the E2 result: plain vs QoS-extended GIOP.
type GIOPComparison struct {
	Plain RTStats // GIOP 1.0, no setQoSParameter
	QoS   RTStats // GIOP 9.9, qos_params in every Request
}

// RunGIOPComparison measures E2 over the Da CaPo transport, which both
// versions can share (the QoS set for the extended run is modest so the
// protocol configuration stays comparable).
func RunGIOPComparison(n, payload int) (GIOPComparison, error) {
	env, err := NewEnv("dacapo")
	if err != nil {
		return GIOPComparison{}, err
	}
	defer env.Close()
	buf := make([]byte, payload)

	obj := env.Object()
	plain, err := MeasureInvocationRT(obj, buf, n)
	if err != nil {
		return GIOPComparison{}, err
	}

	req, err := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: 10_000, Max: qos.NoLimit, Min: 0})
	if err != nil {
		return GIOPComparison{}, err
	}
	if err := obj.SetQoSParameter(req); err != nil {
		return GIOPComparison{}, err
	}
	qosStats, err := MeasureInvocationRT(obj, buf, n)
	if err != nil {
		return GIOPComparison{}, err
	}
	return GIOPComparison{Plain: plain, QoS: qosStats}, nil
}

// TransportPoint is one row of the E4 comparison.
type TransportPoint struct {
	Transport string
	Stats     RTStats
}

// RunTransportComparison measures echo RTT over each transport and the
// colocated shortcut.
func RunTransportComparison(n, payload int) ([]TransportPoint, error) {
	buf := make([]byte, payload)
	var out []TransportPoint
	for _, scheme := range []string{"tcp", "inproc", "dacapo"} {
		env, err := NewEnv(scheme)
		if err != nil {
			return nil, err
		}
		st, err := MeasureInvocationRT(env.Object(), buf, n)
		env.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: transport %s: %w", scheme, err)
		}
		out = append(out, TransportPoint{Transport: scheme, Stats: st})
	}
	// Colocated: proxy and servant in the same ORB.
	env, err := NewEnv("inproc")
	if err != nil {
		return nil, err
	}
	st, err := MeasureInvocationRT(env.LocalObject(), buf, n)
	env.Close()
	if err != nil {
		return nil, fmt.Errorf("experiments: colocated: %w", err)
	}
	out = append(out, TransportPoint{Transport: "colocated", Stats: st})
	return out, nil
}

package experiments

import (
	"fmt"
	"time"

	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/qos"
)

// MarshalRow is one row of the E6 table: the wire cost of the qos_params
// extension.
type MarshalRow struct {
	Version   string
	QoSParams int
	WireBytes int
	EncodeNs  float64
	DecodeNs  float64
}

// RunMarshalComparison measures Request frame sizes and codec time for
// GIOP 1.0 and for GIOP 9.9 with 0..4 QoS parameters.
func RunMarshalComparison(iters int) ([]MarshalRow, error) {
	mkQoS := func(n int) qos.Set {
		var s qos.Set
		types := []qos.ParamType{qos.Throughput, qos.Latency, qos.Jitter, qos.Reliability}
		for i := 0; i < n; i++ {
			s = append(s, qos.Parameter{
				Type: types[i%len(types)], Request: uint32(1000 * (i + 1)), Max: qos.NoLimit,
			})
		}
		return s
	}
	mkHeader := func(set qos.Set) *giop.RequestHeader {
		return &giop.RequestHeader{
			RequestID:        42,
			ResponseExpected: true,
			ObjectKey:        []byte("object-key-0001"),
			Operation:        "getFrame",
			QoS:              set,
			Principal:        []byte("client"),
		}
	}

	type variant struct {
		name    string
		version giop.Version
		nqos    int
	}
	variants := []variant{
		{"GIOP 1.0", giop.V1_0, 0},
		{"GIOP 9.9", giop.VQoS, 0},
		{"GIOP 9.9", giop.VQoS, 1},
		{"GIOP 9.9", giop.VQoS, 2},
		{"GIOP 9.9", giop.VQoS, 4},
	}
	var out []MarshalRow
	for _, v := range variants {
		hdr := mkHeader(mkQoS(v.nqos))
		frame, err := giop.MarshalRequest(v.version, cdr.BigEndian, hdr, func(enc *cdr.Encoder) {
			enc.WriteULong(7)
		})
		if err != nil {
			return nil, err
		}

		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := giop.MarshalRequest(v.version, cdr.BigEndian, hdr, func(enc *cdr.Encoder) {
				enc.WriteULong(7)
			}); err != nil {
				return nil, err
			}
		}
		encodeNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

		start = time.Now()
		for i := 0; i < iters; i++ {
			if _, err := giop.Unmarshal(frame); err != nil {
				return nil, err
			}
		}
		decodeNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

		out = append(out, MarshalRow{
			Version:   v.name,
			QoSParams: v.nqos,
			WireBytes: len(frame),
			EncodeNs:  encodeNs,
			DecodeNs:  decodeNs,
		})
	}
	return out, nil
}

// FormatSize renders an octet count compactly (e.g. "16K").
func FormatSize(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dK", n>>10)
	}
	return fmt.Sprintf("%d", n)
}

package experiments

import (
	"errors"
	"fmt"
	"time"

	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/giop"
	"cool/internal/netsim"
	"cool/internal/orb"
	"cool/internal/qos"
)

// NegotiationPoint is one row of the E3 table.
type NegotiationPoint struct {
	Scenario string
	Stats    RTStats
}

// RunNegotiationScenarios measures E3: the cost of the Figure 3 paths.
//
//   - "granted (warm)": invocation on an already-negotiated binding.
//   - "NACK": an invocation the object implementation refuses; the cost of
//     learning the QoS is unavailable (includes connection setup because a
//     NACK tears the binding down).
//   - "per-binding": amortised cost when one setQoSParameter covers the
//     whole run.
//   - "per-method": alternating QoS before every invocation, paying a
//     transport reconfiguration each time (§4.1).
func RunNegotiationScenarios(n, payload int) ([]NegotiationPoint, error) {
	buf := make([]byte, payload)
	var out []NegotiationPoint

	// Servant capability for NACK: max 1 Mbit/s.
	capEnv, err := newCapEnv(qos.Capability{qos.Throughput: {Best: 1000, Supported: true}})
	if err != nil {
		return nil, err
	}
	defer capEnv.Close()

	granted, err := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: 500, Max: qos.NoLimit, Min: 100})
	if err != nil {
		return nil, err
	}
	obj := capEnv.Object()
	if err := obj.SetQoSParameter(granted); err != nil {
		return nil, err
	}
	st, err := MeasureInvocationRT(obj, buf, n)
	if err != nil {
		return nil, fmt.Errorf("experiments: granted: %w", err)
	}
	out = append(out, NegotiationPoint{Scenario: "granted (warm)", Stats: st})

	// NACK path: floor above the servant capability. Every attempt pays
	// binding + negotiation + NACK.
	nack, err := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: 50_000, Max: qos.NoLimit, Min: 10_000})
	if err != nil {
		return nil, err
	}
	samples := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		if err := obj.SetQoSParameter(nack); err != nil {
			return nil, err
		}
		start := time.Now()
		err := Echo(obj, buf)
		var se *giop.SystemException
		if !errors.As(err, &se) || !se.IsNACK() {
			return nil, fmt.Errorf("experiments: expected NACK, got %v", err)
		}
		samples = append(samples, time.Since(start))
		// Let the aborted reservation drain before the next attempt.
		time.Sleep(time.Millisecond)
	}
	out = append(out, NegotiationPoint{Scenario: "NACK (cold)", Stats: summarize(samples)})

	// Per-binding vs per-method on a fresh environment.
	env, err := NewEnv("dacapo")
	if err != nil {
		return nil, err
	}
	defer env.Close()
	obj = env.Object()

	perBinding, err := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: 4000, Max: qos.NoLimit, Min: 100})
	if err != nil {
		return nil, err
	}
	if err := obj.SetQoSParameter(perBinding); err != nil {
		return nil, err
	}
	st, err = MeasureInvocationRT(obj, buf, n)
	if err != nil {
		return nil, fmt.Errorf("experiments: per-binding: %w", err)
	}
	out = append(out, NegotiationPoint{Scenario: "per-binding QoS", Stats: st})

	// Per-method, cache-friendly: alternate between two QoS sets. The ORB
	// caches one connection per (endpoint, QoS), so after the first two
	// invocations the renegotiation is a cache hit — the connection-cache
	// ablation.
	alt := make([]qos.Set, 2)
	for i := range alt {
		s, err := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: uint32(2000 + i*1000), Max: qos.NoLimit, Min: 100})
		if err != nil {
			return nil, err
		}
		alt[i] = s
	}
	samples = samples[:0]
	for i := 0; i < n; i++ {
		if err := obj.SetQoSParameter(alt[i%2]); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := Echo(obj, buf); err != nil {
			return nil, fmt.Errorf("experiments: per-method cached: %w", err)
		}
		samples = append(samples, time.Since(start))
	}
	out = append(out, NegotiationPoint{Scenario: "per-method QoS (cached)", Stats: summarize(samples)})

	// Per-method, fresh: a different QoS on every invocation forces a real
	// transport reconfiguration each time — connection establishment plus
	// Da CaPo configuration signalling (§4.1's renegotiation cost).
	samples = samples[:0]
	for i := 0; i < n; i++ {
		fresh, err := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: uint32(1000 + i), Max: qos.NoLimit, Min: 100})
		if err != nil {
			return nil, err
		}
		if err := obj.SetQoSParameter(fresh); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := Echo(obj, buf); err != nil {
			return nil, fmt.Errorf("experiments: per-method fresh: %w", err)
		}
		samples = append(samples, time.Since(start))
	}
	out = append(out, NegotiationPoint{Scenario: "per-method QoS (fresh)", Stats: summarize(samples)})
	return out, nil
}

// newCapEnv builds an Env whose servant advertises the given capability.
func newCapEnv(capability qos.Capability) (*Env, error) {
	env, err := NewEnv("dacapo")
	if err != nil {
		return nil, err
	}
	// Re-register a capability-limited echo servant.
	env.Server.Adapter().Deactivate([]byte("obj-1"))
	ref, err := env.Server.RegisterServant(echoServant{}, orb.WithCapability(capability))
	if err != nil {
		env.Close()
		return nil, err
	}
	env.obj = env.Client.Resolve(ref)
	return env, nil
}

// ConfigRow is one row of the E5 table: requirements in, protocol out.
type ConfigRow struct {
	Requirements string
	Spec         string
	Granted      string
	// DeliveredLossPct is the measured residual loss of 200 messages over
	// a 3%-lossy link through the configured stack (NaN when not
	// measured).
	DeliveredLossPct float64
	Measured         bool
}

// RunConfigTable exercises the configuration manager across representative
// requirement sets and measures delivered reliability on a lossy link.
func RunConfigTable() ([]ConfigRow, error) {
	link := netsim.Params{LossRate: 0.03, BandwidthKbps: 50_000, Seed: 11, QueueLen: 256}
	cases := []struct {
		name string
		req  qos.Set
	}{
		{"best effort", nil},
		{"reliable+ordered", mustSet(
			qos.Parameter{Type: qos.Reliability, Request: 0, Max: 0, Min: 0},
			qos.Parameter{Type: qos.Ordering, Request: 1, Max: 1, Min: 1},
		)},
		{"confidential", mustSet(
			qos.Parameter{Type: qos.Confidentiality, Request: 1, Max: 1, Min: 1},
		)},
		{"smooth 8 Mbit/s", mustSet(
			qos.Parameter{Type: qos.Throughput, Request: 8000, Max: qos.NoLimit, Min: 1000},
			qos.Parameter{Type: qos.Jitter, Request: 5000, Max: 20_000, Min: 0},
		)},
		{"loss-tolerant stream", mustSet(
			qos.Parameter{Type: qos.Throughput, Request: 20_000, Max: qos.NoLimit, Min: 5000},
			qos.Parameter{Type: qos.Reliability, Request: 50_000, Max: 100_000, Min: 0},
		)},
	}
	var out []ConfigRow
	for _, c := range cases {
		spec, granted, err := dacapo.Configure(c.req, link.Capability())
		if err != nil {
			return nil, fmt.Errorf("experiments: configure %s: %w", c.name, err)
		}
		row := ConfigRow{
			Requirements: c.name,
			Spec:         spec.String(),
			Granted:      granted.String(),
		}
		// Measure delivered loss through the configured stack.
		if lossPct, err := measureLoss(spec, link, 200); err == nil {
			row.DeliveredLossPct = lossPct
			row.Measured = true
		}
		out = append(out, row)
	}
	return out, nil
}

func mustSet(params ...qos.Parameter) qos.Set {
	s, err := qos.NewSet(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// measureLoss sends n small messages through the stack over the lossy link
// and reports the percentage that never arrived.
func measureLoss(spec dacapo.Spec, link netsim.Params, n int) (float64, error) {
	// Tighten ARQ timers for experiment speed.
	spec = cloneSpec(spec)
	for i := range spec.Modules {
		if spec.Modules[i].Name == "window" || spec.Modules[i].Name == "irq" {
			if spec.Modules[i].Args == nil {
				spec.Modules[i].Args = dacapo.Args{}
			}
			spec.Modules[i].Args["rto"] = "20ms"
		}
	}
	l := netsim.NewLink(link)
	defer l.Close()
	a, b := l.Endpoints()
	reg := modules.NewLibrary()
	sender, err := dacapo.NewRuntime(spec, reg, a)
	if err != nil {
		return 0, err
	}
	receiver, err := dacapo.NewRuntime(spec, reg, b)
	if err != nil {
		return 0, err
	}
	if err := sender.Start(); err != nil {
		return 0, err
	}
	if err := receiver.Start(); err != nil {
		return 0, err
	}
	defer sender.Close()
	defer receiver.Close()

	go func() {
		for i := 0; i < n; i++ {
			if err := sender.Send([]byte{byte(i), byte(i >> 8)}); err != nil {
				return
			}
		}
	}()
	received := 0
	deadline := time.After(15 * time.Second)
	idle := time.NewTimer(time.Second)
	defer idle.Stop()
	results := make(chan struct{}, n)
	go func() {
		for {
			if _, err := receiver.Recv(); err != nil {
				return
			}
			results <- struct{}{}
		}
	}()
recvLoop:
	for received < n {
		idle.Reset(time.Second)
		select {
		case <-results:
			received++
		case <-idle.C:
			break recvLoop // unreliable stack: losses are final
		case <-deadline:
			break recvLoop
		}
	}
	return float64(n-received) / float64(n) * 100, nil
}

func cloneSpec(s dacapo.Spec) dacapo.Spec {
	out := dacapo.Spec{Modules: make([]dacapo.ModuleSpec, len(s.Modules))}
	for i, m := range s.Modules {
		args := make(dacapo.Args, len(m.Args))
		for k, v := range m.Args {
			args[k] = v
		}
		out.Modules[i] = dacapo.ModuleSpec{Name: m.Name, Args: args}
	}
	return out
}

package experiments

import (
	"testing"
	"time"

	"cool/internal/dacapo"
	"cool/internal/netsim"
	"cool/internal/qos"
)

func TestFig9ConfigsWellFormed(t *testing.T) {
	cfgs := Fig9Configs()
	if len(cfgs) != 5 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	if len(cfgs[3].Spec.Modules) != 40 {
		t.Fatalf("40-dummy config has %d modules", len(cfgs[3].Spec.Modules))
	}
	if cfgs[4].Spec.Modules[0].Name != "irq" {
		t.Fatalf("last config = %v", cfgs[4].Spec)
	}
}

// TestFig9Shape verifies the qualitative claims of Figure 9 on a reduced
// matrix: throughput grows with packet size; the dummy-chain overhead is
// small; the IRQ configuration is clearly slower than the module-free one.
func TestFig9Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are unreliable under the race detector")
	}
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	link := Fig9Link()
	cfgs := Fig9Configs()

	measure := func(name string, idx, size, count int) float64 {
		t.Helper()
		mbps, err := MeasureStackThroughput(cfgs[idx].Spec, link, size, count)
		if err != nil {
			t.Fatalf("%s/%d: %v", name, size, err)
		}
		return mbps
	}

	// Throughput grows with packet size (0-dummy config).
	small := measure("0 dummy", 0, 1<<10, 300)
	large := measure("0 dummy", 0, 32<<10, 300)
	if large <= small {
		t.Errorf("throughput should grow with packet size: 1K=%.1f, 32K=%.1f", small, large)
	}

	// 40 dummy modules cost little at large packets ("the cost of the
	// flexibility is negligible"): within a factor 2 of the empty stack.
	chain := measure("40 dummy", 3, 32<<10, 300)
	if chain < large/2 {
		t.Errorf("40-dummy throughput %.1f below half of empty-stack %.1f", chain, large)
	}

	// IRQ is well below the pipeline-friendly configurations at small
	// packets (the stop-and-wait collapse).
	irq := measure("irq", 4, 1<<10, 60)
	if irq > small/2 {
		t.Errorf("irq %.1f Mbps not clearly below empty stack %.1f Mbps", irq, small)
	}
}

// TestGIOPComparisonShape verifies E2's claim: the QoS extension does not
// change response time materially (allow generous noise in CI).
func TestGIOPComparisonShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are unreliable under the race detector")
	}
	if testing.Short() {
		t.Skip("latency measurement")
	}
	cmp, err := RunGIOPComparison(150, 512)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Plain.N != 150 || cmp.QoS.N != 150 {
		t.Fatalf("sample counts: %d / %d", cmp.Plain.N, cmp.QoS.N)
	}
	// Same order of magnitude: p50 within 3x either way.
	if cmp.QoS.P50 > cmp.Plain.P50*3 || cmp.Plain.P50 > cmp.QoS.P50*3 {
		t.Errorf("p50 diverges: plain %v vs qos %v", cmp.Plain.P50, cmp.QoS.P50)
	}
}

func TestNegotiationScenarioShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are unreliable under the race detector")
	}
	if testing.Short() {
		t.Skip("latency measurement")
	}
	points, err := RunNegotiationScenarios(10, 256)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RTStats{}
	for _, p := range points {
		byName[p.Scenario] = p.Stats
	}
	warm, ok1 := byName["granted (warm)"]
	fresh, ok2 := byName["per-method QoS (fresh)"]
	if !ok1 || !ok2 {
		t.Fatalf("scenarios = %v", points)
	}
	// A fresh renegotiation includes connection setup; it must cost more
	// than a warm invocation.
	if fresh.P50 <= warm.P50 {
		t.Errorf("fresh renegotiation p50 %v not above warm p50 %v", fresh.P50, warm.P50)
	}
}

func TestTransportComparisonShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are unreliable under the race detector")
	}
	if pooldebugEnabled {
		t.Skip("timing shapes are unreliable under the pooldebug verifier")
	}
	if testing.Short() {
		t.Skip("latency measurement")
	}
	points, err := RunTransportComparison(80, 512)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RTStats{}
	for _, p := range points {
		byName[p.Transport] = p.Stats
	}
	for _, name := range []string{"tcp", "inproc", "dacapo", "colocated"} {
		if byName[name].N == 0 {
			t.Fatalf("missing transport %s", name)
		}
	}
	// The colocation shortcut must beat real TCP.
	if byName["colocated"].P50 >= byName["tcp"].P50 {
		t.Errorf("colocated p50 %v not below tcp p50 %v", byName["colocated"].P50, byName["tcp"].P50)
	}
}

func TestConfigTableShape(t *testing.T) {
	if raceEnabled {
		t.Skip("timing shapes are unreliable under the race detector")
	}
	if testing.Short() {
		t.Skip("loss measurement")
	}
	rows, err := RunConfigTable()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ConfigRow{}
	for _, r := range rows {
		byName[r.Requirements] = r
	}
	rel := byName["reliable+ordered"]
	if rel.Spec == "" || rel.DeliveredLossPct != 0 || !rel.Measured {
		t.Errorf("reliable config delivered loss %.1f%% (%+v)", rel.DeliveredLossPct, rel)
	}
	be := byName["best effort"]
	if be.Measured && be.DeliveredLossPct == 0 {
		t.Logf("note: best-effort run saw no loss (possible with 200 samples)")
	}
}

func TestMarshalComparisonShape(t *testing.T) {
	rows, err := RunMarshalComparison(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Empty qos_params costs exactly 4 octets on the wire.
	if rows[1].WireBytes != rows[0].WireBytes+4 {
		t.Errorf("GIOP 9.9 empty delta = %d, want 4", rows[1].WireBytes-rows[0].WireBytes)
	}
	// Each parameter costs exactly 16 octets.
	if rows[2].WireBytes != rows[1].WireBytes+16 {
		t.Errorf("per-parameter delta = %d, want 16", rows[2].WireBytes-rows[1].WireBytes)
	}
}

func TestMeasureStackThroughput(t *testing.T) {
	// A tiny measurement over the unconstrained loopback must succeed and
	// return a positive rate.
	spec := Fig9Configs()[1].Spec // 10 dummy modules
	mbps, err := MeasureStackThroughput(spec, netsim.Loopback(), 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if mbps <= 0 {
		t.Fatalf("mbps = %f", mbps)
	}
	// An unknown module must fail cleanly, not hang.
	bad := spec
	bad.Modules = append([]dacapo.ModuleSpec{{Name: "warp-drive"}}, bad.Modules...)
	if _, err := MeasureStackThroughput(bad, netsim.Loopback(), 128, 4); err == nil {
		t.Fatal("unknown module should fail")
	}
}

func TestEnvHelpers(t *testing.T) {
	env, err := NewEnv("inproc")
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if err := Echo(env.Object(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	st, err := MeasureInvocationRT(env.Object(), []byte("x"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 5 || st.Mean <= 0 || st.P99 < st.P50 || st.Max < st.Min {
		t.Fatalf("stats = %+v", st)
	}
	local := env.LocalObject()
	colocated, err := local.Colocated()
	if err != nil || !colocated {
		t.Fatalf("LocalObject colocated = %v, %v", colocated, err)
	}
}

func TestFormatSize(t *testing.T) {
	if FormatSize(16<<10) != "16K" {
		t.Error("16K format")
	}
	if FormatSize(100) != "100" {
		t.Error("small format")
	}
	if FormatSize(1500) != "1500" {
		t.Error("non-multiple format")
	}
}

func TestSummarize(t *testing.T) {
	if s := summarize(nil); s.N != 0 {
		t.Fatal("empty summary")
	}
	s := summarize([]time.Duration{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || s.P50 != 2 || s.Mean != 2 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestCapEnvAppliesCapability(t *testing.T) {
	env, err := newCapEnv(qos.Capability{qos.Throughput: {Best: 100, Supported: true}})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	set, err := qos.NewSet(qos.Parameter{Type: qos.Throughput, Request: 5000, Max: qos.NoLimit, Min: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Object().SetQoSParameter(set); err != nil {
		t.Fatal(err)
	}
	if err := Echo(env.Object(), nil); err == nil {
		t.Fatal("expected NACK through capability-limited servant")
	}
}

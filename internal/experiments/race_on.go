//go:build race

package experiments

// raceEnabled reports that the race detector is active; timing-shape
// assertions are skipped because instrumentation skews latencies by an
// order of magnitude.
const raceEnabled = true

package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cool/internal/obs"
	"cool/internal/qos"
	"cool/internal/transport"
)

// ObsDemo is the result of RunObsDemo: proof that the observability layer
// joins client and server views of the same invocations.
type ObsDemo struct {
	// Invocations is the number of echo calls performed.
	Invocations int
	// SharedTraces counts trace IDs that appear in BOTH the client's and
	// the server's span log (cross-process propagation via the GIOP trace
	// service context).
	SharedTraces int
	// Admissions counts Da CaPo admission-decision events observed.
	Admissions int
	// Report is the rendered demonstration (shared trace sample, metric
	// highlights, admission events).
	Report string
}

// RunObsDemo drives n QoS echo invocations over real TCP sockets with
// Da CaPo enabled and cross-checks the observability layer end to end:
// shared trace IDs on both sides, non-zero latency histogram buckets,
// message counters matching the invocation count, and admission events.
func RunObsDemo(n int) (ObsDemo, error) {
	env, err := NewEnvInner(transport.NewTCPManager(), "dacapo")
	if err != nil {
		return ObsDemo{}, err
	}
	defer env.Close()
	env.EnableTracing()

	obj := env.Object()
	req, err := qos.NewSet(
		qos.Parameter{Type: qos.Throughput, Request: 10_000, Max: qos.NoLimit, Min: 0},
		qos.Parameter{Type: qos.Reliability, Request: 0, Max: 0, Min: 0},
	)
	if err != nil {
		return ObsDemo{}, err
	}
	if err := obj.SetQoSParameter(req); err != nil {
		return ObsDemo{}, err
	}
	payload := make([]byte, 512)
	for i := 0; i < n; i++ {
		if err := Echo(obj, payload); err != nil {
			return ObsDemo{}, fmt.Errorf("experiments: obs demo echo %d: %w", i, err)
		}
	}

	demo := ObsDemo{Invocations: n}
	spanTraces := func(events []obs.Event, name string) map[obs.TraceID]bool {
		out := make(map[obs.TraceID]bool)
		for _, ev := range events {
			if ev.Kind == "span" && ev.Name == name {
				out[ev.Trace] = true
			}
		}
		return out
	}
	clientEvents := env.ClientLog.Events()
	serverEvents := env.ServerLog.Events()
	clientTraces := spanTraces(clientEvents, "client:echo")
	serverTraces := spanTraces(serverEvents, "server:echo")
	var shared []obs.TraceID
	for t := range clientTraces {
		if serverTraces[t] {
			shared = append(shared, t)
		}
	}
	sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] })
	demo.SharedTraces = len(shared)

	var b strings.Builder
	fmt.Fprintf(&b, "invocations: %d (dacapo over tcp, QoS %v)\n", n, req)
	fmt.Fprintf(&b, "trace IDs shared by client and server logs: %d\n", demo.SharedTraces)
	if len(shared) > 0 {
		sample := shared[0]
		fmt.Fprintf(&b, "\nsample trace %s:\n", sample)
		for _, ev := range clientEvents {
			if ev.Trace == sample && ev.Kind == "span" {
				fmt.Fprintf(&b, "  client  %s\n", ev)
			}
		}
		for _, ev := range serverEvents {
			if ev.Trace == sample && ev.Kind == "span" {
				fmt.Fprintf(&b, "  server  %s\n", ev)
			}
		}
	}

	b.WriteString("\nadmission events (server):\n")
	for _, ev := range serverEvents {
		if ev.Kind == "dacapo.admission" {
			demo.Admissions++
			fmt.Fprintf(&b, "  %s\n", ev)
		}
	}

	pick := func(s obs.Snapshot, names ...string) {
		for _, name := range names {
			for _, c := range s.Counters {
				if strings.HasPrefix(c.Name, name) {
					fmt.Fprintf(&b, "  %s %d\n", c.Name, c.Value)
				}
			}
			for _, g := range s.Gauges {
				if strings.HasPrefix(g.Name, name) {
					fmt.Fprintf(&b, "  %s %d gauge\n", g.Name, g.Value)
				}
			}
			for _, h := range s.Histograms {
				if strings.HasPrefix(h.Name, name) && h.Count > 0 {
					fmt.Fprintf(&b, "  %s count=%d p50=%dµs p95=%dµs p99=%dµs",
						h.Name, h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
					if ex := h.TailExemplar(); !ex.IsZero() {
						fmt.Fprintf(&b, " tail#%s", ex)
					}
					b.WriteByte('\n')
				}
			}
		}
	}
	cs := env.Client.Metrics().Snapshot()
	ss := env.Server.Metrics().Snapshot()
	b.WriteString("\nclient metric highlights:\n")
	pick(cs, "orb.client.calls{op=echo}", "orb.client.latency_us{op=echo}",
		"orb.client.qos", "giop.out.msgs{type=Request}", "giop.in.msgs{type=Reply}",
		"transport.conns.opened", "dacapo.")
	b.WriteString("\nserver metric highlights:\n")
	pick(ss, "orb.server.requests{op=echo}", "orb.server.dispatch_us{op=echo}",
		"orb.server.qos", "giop.in.msgs{type=Request}", "giop.out.msgs{type=Reply}",
		"transport.conns.opened", "dacapo.")
	demo.Report = b.String()
	return demo, nil
}

package ior

import (
	"bytes"
	"encoding/hex"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cool/internal/cdr"
	"cool/internal/qos"
)

func sampleRef() Ref {
	return Ref{
		TypeID: "IDL:demo/MediaServer:1.0",
		Profiles: []Profile{
			{
				Transport: "dacapo",
				Address:   "127.0.0.1:4001",
				ObjectKey: []byte("media-1"),
				Capability: qos.Capability{
					qos.Throughput: {Best: 100000, Supported: true},
					qos.Latency:    {Best: 200, Supported: true},
				},
			},
			{
				Transport: "tcp",
				Address:   "127.0.0.1:4000",
				ObjectKey: []byte("media-1"),
			},
		},
	}
}

func TestStringifiedRoundTrip(t *testing.T) {
	r := sampleRef()
	s := Marshal(r)
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified = %q", s)
	}
	got, err := Unmarshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != r.TypeID || len(got.Profiles) != 2 {
		t.Fatalf("got %+v", got)
	}
	p := got.Profiles[0]
	if p.Transport != "dacapo" || p.Address != "127.0.0.1:4001" || !bytes.Equal(p.ObjectKey, []byte("media-1")) {
		t.Fatalf("profile = %+v", p)
	}
	if l := p.Capability[qos.Throughput]; l.Best != 100000 || !l.Supported {
		t.Fatalf("capability = %+v", p.Capability)
	}
	if got.Profiles[1].Capability != nil {
		t.Fatalf("tcp capability should be nil, got %v", got.Profiles[1].Capability)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	r := sampleRef()
	if Marshal(r) != Marshal(r) {
		t.Fatal("stringified form must be stable")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal("NOTANIOR"); !errors.Is(err, ErrBadPrefix) {
		t.Errorf("prefix err = %v", err)
	}
	if _, err := Unmarshal("IOR:zz"); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("hex err = %v", err)
	}
	if _, err := Unmarshal("IOR:"); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := Unmarshal("IOR:00"); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("truncated err = %v", err)
	}
}

func TestIsNilAndProfileFor(t *testing.T) {
	var empty Ref
	if !empty.IsNil() {
		t.Error("empty ref should be nil")
	}
	r := sampleRef()
	if r.IsNil() {
		t.Error("sample ref should not be nil")
	}
	if _, ok := r.ProfileFor("tcp"); !ok {
		t.Error("tcp profile missing")
	}
	if _, ok := r.ProfileFor("quic"); ok {
		t.Error("quic profile should be absent")
	}
}

func TestSelectByQoS(t *testing.T) {
	r := sampleRef()

	// No QoS: first profile wins.
	p, ok := r.Select(nil)
	if !ok || p.Transport != "dacapo" {
		t.Fatalf("Select(nil) = %+v, %v", p, ok)
	}

	// Throughput within dacapo's capability: dacapo profile.
	req := qos.Set{{Type: qos.Throughput, Request: 50000, Max: qos.NoLimit, Min: 10000}}
	p, ok = r.Select(req)
	if !ok || p.Transport != "dacapo" {
		t.Fatalf("Select(throughput) = %+v, %v", p, ok)
	}

	// Demand beyond every profile: no match.
	req = qos.Set{{Type: qos.Throughput, Request: 10_000_000, Max: qos.NoLimit, Min: 1_000_000}}
	if _, ok = r.Select(req); ok {
		t.Fatal("Select should fail for unsatisfiable request")
	}

	// Nil ref never selects.
	var empty Ref
	if _, ok = empty.Select(nil); ok {
		t.Fatal("nil ref must not select")
	}
}

func TestStringForms(t *testing.T) {
	r := sampleRef()
	if s := r.String(); !strings.Contains(s, "dacapo://127.0.0.1:4001") {
		t.Errorf("String() = %q", s)
	}
	var empty Ref
	if empty.String() != "IOR:(nil)" {
		t.Errorf("nil String() = %q", empty.String())
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary refs (NUL-free strings).
func TestQuickRoundTrip(t *testing.T) {
	clean := func(s string) string {
		return strings.ReplaceAll(s, "\x00", "")
	}
	f := func(typeID, transport, addr string, key []byte, best uint32, sup bool) bool {
		r := Ref{
			TypeID: clean(typeID),
			Profiles: []Profile{{
				Transport:  clean(transport),
				Address:    clean(addr),
				ObjectKey:  key,
				Capability: qos.Capability{qos.Throughput: {Best: best, Supported: sup}},
			}},
		}
		got, err := Unmarshal(Marshal(r))
		if err != nil {
			return false
		}
		p, q := got.Profiles[0], r.Profiles[0]
		return got.TypeID == r.TypeID && p.Transport == q.Transport &&
			p.Address == q.Address && bytes.Equal(p.ObjectKey, q.ObjectKey) &&
			p.Capability[qos.Throughput] == q.Capability[qos.Throughput]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Unmarshal never panics on arbitrary strings.
func TestQuickUnmarshalNeverPanics(t *testing.T) {
	f := func(s string) bool {
		Unmarshal(s)
		Unmarshal("IOR:" + s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHostileCountsRejected(t *testing.T) {
	// Forged encapsulations claiming absurd sequence counts must be
	// rejected by the pre-allocation guards, not by running the decode
	// loop until it falls off the end of the buffer.
	t.Run("profile count", func(t *testing.T) {
		body := cdr.EncodeEncapsulation(cdr.BigEndian, func(enc *cdr.Encoder) {
			enc.WriteString("IDL:demo/X:1.0")
			enc.WriteULong(0xFFFFFFFF)
		})
		_, err := Unmarshal("IOR:" + hex.EncodeToString(body))
		if !errors.Is(err, ErrBadEncoding) || !strings.Contains(err.Error(), "profile count") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("capability count", func(t *testing.T) {
		body := cdr.EncodeEncapsulation(cdr.BigEndian, func(enc *cdr.Encoder) {
			enc.WriteString("IDL:demo/X:1.0")
			enc.WriteULong(1) // one profile
			enc.WriteString("tcp")
			enc.WriteString("")
			enc.WriteString("127.0.0.1:1")
			enc.WriteOctetSeq([]byte("k"))
			enc.WriteULong(0x7FFFFFFF)
		})
		_, err := Unmarshal("IOR:" + hex.EncodeToString(body))
		if !errors.Is(err, ErrBadEncoding) || !strings.Contains(err.Error(), "capability count") {
			t.Fatalf("err = %v", err)
		}
	})
}

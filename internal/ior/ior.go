// Package ior implements interoperable object references for the COOL
// reproduction: the data a client needs to reach an object implementation.
//
// A Ref carries the interface type id and one profile per transport the
// server exports (tcp, inproc, dacapo). Each profile also advertises the
// QoS capability of its transport so the client-side ORB can pick a profile
// that has a chance of satisfying the requested QoS before it even dials
// (the ORB still performs the real negotiation end-to-end).
//
// References have a stringified form modelled on CORBA's IOR: the literal
// prefix "IOR:" followed by the hex encoding of a CDR encapsulation. The
// stringified form is what the naming service stores and what examples
// print and paste.
package ior

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"cool/internal/cdr"
	"cool/internal/qos"
)

// Parsing errors.
var (
	ErrBadPrefix   = errors.New("ior: missing IOR: prefix")
	ErrBadEncoding = errors.New("ior: malformed reference")
)

// Profile describes one way to reach the object.
type Profile struct {
	// Transport is the transport scheme registered with the generic
	// transport layer: "tcp", "inproc" or "dacapo".
	Transport string
	// Protocol is the message protocol spoken on this endpoint: "" or
	// "giop" for standard GIOP, "cool" for the proprietary COOL protocol.
	Protocol string
	// Address is transport-specific (host:port for tcp, a registry name
	// for inproc).
	Address string
	// ObjectKey identifies the servant within the server ORB's object
	// adapter.
	ObjectKey []byte
	// Capability advertises the QoS the transport can support, so clients
	// can rank profiles. Empty means "no QoS support" (plain GIOP only).
	Capability qos.Capability
}

func (p Profile) String() string {
	return fmt.Sprintf("%s://%s/%x", p.Transport, p.Address, p.ObjectKey)
}

// Ref is an object reference.
type Ref struct {
	// TypeID is the repository id of the most derived interface,
	// e.g. "IDL:demo/MediaServer:1.0".
	TypeID   string
	Profiles []Profile
}

// IsNil reports whether the reference contains no profile.
func (r Ref) IsNil() bool { return len(r.Profiles) == 0 }

// ProfileFor returns the first profile using the given transport scheme.
func (r Ref) ProfileFor(transport string) (Profile, bool) {
	for _, p := range r.Profiles {
		if p.Transport == transport {
			return p, true
		}
	}
	return Profile{}, false
}

// Select returns the profile to use for a binding with the requested QoS:
// the first profile whose advertised capability can grant the request. With
// an empty request it returns the first profile (standard GIOP binding).
// ok is false when no profile can satisfy the request.
func (r Ref) Select(request qos.Set) (Profile, bool) {
	if r.IsNil() {
		return Profile{}, false
	}
	if len(request) == 0 {
		return r.Profiles[0], true
	}
	for _, p := range r.Profiles {
		if _, err := qos.Negotiate(request, p.Capability); err == nil {
			return p, true
		}
	}
	return Profile{}, false
}

func (r Ref) String() string {
	if r.IsNil() {
		return "IOR:(nil)"
	}
	parts := make([]string, len(r.Profiles))
	for i, p := range r.Profiles {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s[%s]", r.TypeID, strings.Join(parts, " "))
}

// Encode writes the reference into a CDR stream.
func (r Ref) Encode(enc *cdr.Encoder) {
	enc.WriteString(r.TypeID)
	enc.WriteULong(uint32(len(r.Profiles)))
	for _, p := range r.Profiles {
		enc.WriteString(p.Transport)
		enc.WriteString(p.Protocol)
		enc.WriteString(p.Address)
		enc.WriteOctetSeq(p.ObjectKey)
		enc.WriteULong(uint32(len(p.Capability)))
		for _, e := range sortedCaps(p.Capability) {
			enc.WriteULong(uint32(e.t))
			enc.WriteULong(e.l.Best)
			enc.WriteBoolean(e.l.Supported)
		}
	}
}

type capEntry struct {
	t qos.ParamType
	l qos.Limit
}

// sortedCaps returns capability entries in deterministic order so encoded
// references are byte-stable.
func sortedCaps(c qos.Capability) []capEntry {
	out := make([]capEntry, 0, len(c))
	for t, l := range c {
		out = append(out, capEntry{t, l})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].t < out[j-1].t; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Decode reads a reference from a CDR stream.
//
//coollint:coldpath IOR decode happens at bind or forward, not per call
func Decode(dec *cdr.Decoder) (Ref, error) {
	var r Ref
	var err error
	if r.TypeID, err = dec.ReadString(); err != nil {
		return r, fmt.Errorf("%w: type id: %v", ErrBadEncoding, err)
	}
	n, err := dec.ReadULong()
	if err != nil {
		return r, fmt.Errorf("%w: profile count: %v", ErrBadEncoding, err)
	}
	if int64(n)*13 > int64(dec.Remaining()) {
		return r, fmt.Errorf("%w: profile count %d too large", ErrBadEncoding, n)
	}
	for i := uint32(0); i < n; i++ {
		var p Profile
		if p.Transport, err = dec.ReadString(); err != nil {
			return r, fmt.Errorf("%w: transport: %v", ErrBadEncoding, err)
		}
		if p.Protocol, err = dec.ReadString(); err != nil {
			return r, fmt.Errorf("%w: protocol: %v", ErrBadEncoding, err)
		}
		if p.Address, err = dec.ReadString(); err != nil {
			return r, fmt.Errorf("%w: address: %v", ErrBadEncoding, err)
		}
		if p.ObjectKey, err = dec.ReadOctetSeq(); err != nil {
			return r, fmt.Errorf("%w: object key: %v", ErrBadEncoding, err)
		}
		var nc uint32
		if nc, err = dec.ReadULong(); err != nil {
			return r, fmt.Errorf("%w: capability count: %v", ErrBadEncoding, err)
		}
		if int64(nc)*9 > int64(dec.Remaining()) {
			return r, fmt.Errorf("%w: capability count %d too large", ErrBadEncoding, nc)
		}
		if nc > 0 {
			p.Capability = make(qos.Capability, nc)
		}
		for j := uint32(0); j < nc; j++ {
			var t, best uint32
			var sup bool
			if t, err = dec.ReadULong(); err != nil {
				return r, fmt.Errorf("%w: capability type: %v", ErrBadEncoding, err)
			}
			if best, err = dec.ReadULong(); err != nil {
				return r, fmt.Errorf("%w: capability best: %v", ErrBadEncoding, err)
			}
			if sup, err = dec.ReadBoolean(); err != nil {
				return r, fmt.Errorf("%w: capability flag: %v", ErrBadEncoding, err)
			}
			p.Capability[qos.ParamType(t)] = qos.Limit{Best: best, Supported: sup}
		}
		r.Profiles = append(r.Profiles, p)
	}
	return r, nil
}

// Marshal returns the stringified reference ("IOR:" + hex encapsulation).
func Marshal(r Ref) string {
	body := cdr.EncodeEncapsulation(cdr.BigEndian, r.Encode)
	return "IOR:" + hex.EncodeToString(body)
}

// Unmarshal parses a stringified reference.
func Unmarshal(s string) (Ref, error) {
	rest, ok := strings.CutPrefix(s, "IOR:")
	if !ok {
		return Ref{}, ErrBadPrefix
	}
	body, err := hex.DecodeString(strings.TrimSpace(rest))
	if err != nil {
		return Ref{}, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	dec, err := cdr.DecodeEncapsulation(body)
	if err != nil {
		return Ref{}, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	return Decode(dec)
}

package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorderTB captures the cleanup and failure that Check registers so the
// failing path can be exercised without failing this test.
type recorderTB struct {
	testing.TB
	cleanups []func()
	failure  string
}

func (r *recorderTB) Helper()           {}
func (r *recorderTB) Cleanup(fn func()) { r.cleanups = append(r.cleanups, fn) }
func (r *recorderTB) Errorf(format string, args ...any) {
	r.failure = format
}

func (r *recorderTB) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestCheckPassesWhenGoroutinesExit(t *testing.T) {
	rec := &recorderTB{TB: t}
	Check(rec)
	done := make(chan struct{})
	stop := make(chan struct{})
	go func() { <-stop; close(done) }()
	close(stop)
	<-done
	rec.runCleanups()
	if rec.failure != "" {
		t.Fatalf("Check failed a clean test: %s", rec.failure)
	}
}

func TestCheckReportsLingeringGoroutine(t *testing.T) {
	old := grace
	grace = 200 * time.Millisecond
	defer func() { grace = old }()
	rec := &recorderTB{TB: t}
	Check(rec)
	stop := make(chan struct{})
	exited := make(chan struct{})
	go func() { <-stop; close(exited) }()
	rec.runCleanups()
	close(stop)
	<-exited
	if !strings.Contains(rec.failure, "goroutines still running") {
		t.Fatalf("Check did not flag the lingering goroutine (failure=%q)", rec.failure)
	}
	// Give the runtime a beat so the helper goroutine is gone before the
	// real test's own accounting (if any) runs.
	time.Sleep(10 * time.Millisecond)
}

// Package leakcheck asserts that tests leave no goroutines behind. ORB
// Shutdown must reap every read loop, listener accept loop, and Da CaPo
// worker it started; a goroutine that outlives Shutdown holds pooled
// buffers and connection state alive and eventually corrupts reuse.
//
// Usage: call Check(t) before starting ORBs (and before registering the
// Cleanup that shuts them down — cleanups run last-in-first-out, so the
// leak assertion then runs after Shutdown has finished).
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// grace is how long the post-test assertion waits for goroutines that are
// mid-teardown (a read loop observing a closed channel, a netsim queue
// draining) to exit before declaring them leaked. Generous because the
// full suite runs itself a second time under -tags pooldebug, and that
// child process competes for the same cores. A variable so the package's
// own failure-path test does not have to wait it out.
var grace = 15 * time.Second

// Check snapshots the running goroutine count and registers a cleanup
// that fails the test if the count has not returned to the baseline once
// all other cleanups (including ORB Shutdown) have run.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		var after int
		deadline := time.Now().Add(grace)
		for {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines still running after shutdown, %d at test start\n%s",
			after, before, buf)
	})
}

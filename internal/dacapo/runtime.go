package dacapo

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"cool/internal/transport"
)

// queueDepth is the capacity of each inter-module message queue. Bounded
// queues give backpressure from the transport up to the application.
const queueDepth = 64

// Runtime executes a module graph between an application endpoint (Send /
// Recv) and a transport channel: the Da CaPo runtime environment of
// Figure 5. One goroutine per module plus a transport reader and writer.
type Runtime struct {
	spec    Spec
	modules []Module
	ctxs    []*Context
	// downQ[i] feeds module i with packets moving toward T; downQ[n]
	// feeds the transport writer. upQ[i] feeds module i with packets
	// moving toward A.
	downQ  []chan *Packet
	upQ    []chan *Packet
	events []chan any
	recvQ  chan *Packet

	tch  transport.Channel
	pool *Pool

	stop      chan struct{}
	stopOnce  sync.Once
	wg        sync.WaitGroup
	started   atomic.Bool
	firstErr  atomic.Pointer[error]
	statsLock sync.Mutex
}

// NewRuntime builds (but does not start) a runtime for spec over the given
// transport channel.
func NewRuntime(spec Spec, reg *Registry, tch transport.Channel) (*Runtime, error) {
	modules, err := spec.build(reg)
	if err != nil {
		return nil, err
	}
	n := len(modules)
	r := &Runtime{
		spec:    spec,
		modules: modules,
		tch:     tch,
		pool:    &Pool{},
		recvQ:   make(chan *Packet, queueDepth),
		stop:    make(chan struct{}),
	}
	r.ctxs = make([]*Context, n)
	r.downQ = make([]chan *Packet, n+1)
	r.upQ = make([]chan *Packet, n)
	r.events = make([]chan any, n)
	for i := 0; i < n; i++ {
		r.ctxs[i] = &Context{rt: r, idx: i}
		r.downQ[i] = make(chan *Packet, queueDepth)
		r.upQ[i] = make(chan *Packet, queueDepth)
		r.events[i] = make(chan any, queueDepth)
	}
	r.downQ[n] = make(chan *Packet, queueDepth)
	return r, nil
}

// Spec returns the protocol configuration the runtime executes.
func (r *Runtime) Spec() Spec { return r.spec }

// Start launches the module goroutines and the transport pump.
func (r *Runtime) Start() error {
	if r.started.Swap(true) {
		return errors.New("dacapo: runtime already started")
	}
	// Run Start hooks on the module goroutines for the no-locking
	// guarantee; a hook failure aborts the whole runtime.
	for i, m := range r.modules {
		r.wg.Add(1)
		go r.runModule(i, m)
	}
	r.wg.Add(2)
	go r.runWriter()
	go r.runReader()
	return nil
}

func (r *Runtime) runModule(i int, m Module) {
	defer r.wg.Done()
	ctx := r.ctxs[i]
	if err := m.Start(ctx); err != nil {
		r.fail(fmt.Errorf("dacapo: start %s: %w", m.Name(), err))
		return
	}
	defer func() {
		if err := m.Stop(ctx); err != nil {
			r.recordErr(fmt.Errorf("dacapo: stop %s: %w", m.Name(), err))
		}
	}()
	for {
		// A module that has exhausted its send window pauses intake from
		// above (flow control); a nil channel is never selected.
		dq := r.downQ[i]
		if ctx.downPaused {
			dq = nil
		}
		select {
		case p := <-dq:
			r.dispatch(ctx, m, func() error { return m.HandleDown(ctx, p) })
		case p := <-r.upQ[i]:
			r.dispatch(ctx, m, func() error { return m.HandleUp(ctx, p) })
		case ev := <-r.events[i]:
			r.dispatch(ctx, m, func() error { return m.HandleEvent(ctx, ev) })
		case <-r.stop:
			return
		}
	}
}

func (r *Runtime) dispatch(ctx *Context, m Module, fn func() error) {
	if err := fn(); err != nil && !errors.Is(err, ErrStopped) {
		r.fail(fmt.Errorf("dacapo: module %s: %w", m.Name(), err))
	}
}

// runWriter drains the bottom queue into the transport.
func (r *Runtime) runWriter() {
	defer r.wg.Done()
	out := r.downQ[len(r.modules)]
	for {
		select {
		case p := <-out:
			err := r.tch.WriteMessage(p.Bytes())
			r.pool.Put(p)
			if err != nil {
				r.fail(fmt.Errorf("dacapo: transport write: %w", err))
				return
			}
		case <-r.stop:
			return
		}
	}
}

// runReader pumps inbound transport messages into the bottom module.
func (r *Runtime) runReader() {
	defer r.wg.Done()
	for {
		msg, err := r.tch.ReadMessage()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
				r.shutdown(io.EOF)
			} else {
				r.fail(fmt.Errorf("dacapo: transport read: %w", err))
			}
			return
		}
		p := r.pool.Get(msg)
		if err := r.injectUp(p); err != nil {
			return
		}
	}
}

func (r *Runtime) injectUp(p *Packet) error {
	n := len(r.modules)
	var q chan *Packet
	if n == 0 {
		q = r.recvQ
	} else {
		q = r.upQ[n-1]
	}
	select {
	case q <- p:
		return nil
	case <-r.stop:
		return ErrStopped
	}
}

func (r *Runtime) emitDown(idx int, p *Packet) error {
	select {
	case r.downQ[idx+1] <- p:
		return nil
	case <-r.stop:
		return ErrStopped
	}
}

func (r *Runtime) emitUp(idx int, p *Packet) error {
	var q chan *Packet
	if idx == 0 {
		q = r.recvQ
	} else {
		q = r.upQ[idx-1]
	}
	select {
	case q <- p:
		return nil
	case <-r.stop:
		return ErrStopped
	}
}

func (r *Runtime) postEvent(idx int, ev any) {
	select {
	case r.events[idx] <- ev:
	case <-r.stop:
	}
}

// Send injects application data at the top of the stack (the A interface).
func (r *Runtime) Send(data []byte) error {
	p := r.pool.Get(data)
	select {
	case r.downQ[0] <- p:
		return nil
	case <-r.stop:
		r.pool.Put(p)
		return r.closeErr()
	}
}

// Recv returns the next application payload delivered by the stack. After
// shutdown it drains pending packets, then returns io.EOF (peer closed) or
// the runtime's first error.
func (r *Runtime) Recv() ([]byte, error) {
	select {
	case p := <-r.recvQ:
		return r.take(p), nil
	case <-r.stop:
		select {
		case p := <-r.recvQ:
			return r.take(p), nil
		default:
			return nil, r.closeErr()
		}
	}
}

func (r *Runtime) take(p *Packet) []byte {
	out := make([]byte, p.Len())
	copy(out, p.Bytes())
	r.pool.Put(p)
	return out
}

func (r *Runtime) recordErr(err error) {
	e := err
	r.firstErr.CompareAndSwap(nil, &e)
}

func (r *Runtime) fail(err error) {
	r.recordErr(err)
	r.shutdownLocked()
}

func (r *Runtime) shutdown(err error) {
	r.recordErr(err)
	r.shutdownLocked()
}

func (r *Runtime) shutdownLocked() {
	r.stopOnce.Do(func() {
		close(r.stop)
		r.tch.Close()
	})
}

func (r *Runtime) closeErr() error {
	if e := r.firstErr.Load(); e != nil {
		return *e
	}
	return ErrStopped
}

// Close stops the runtime, closes the transport channel and waits for all
// module goroutines to exit.
func (r *Runtime) Close() error {
	r.shutdown(ErrStopped)
	r.wg.Wait()
	return nil
}

// Err returns the first fatal error observed by the runtime, if any.
func (r *Runtime) Err() error {
	if e := r.firstErr.Load(); e != nil && !errors.Is(*e, ErrStopped) && !errors.Is(*e, io.EOF) {
		return *e
	}
	return nil
}

// ModuleStats is a monitoring snapshot for one module (the management
// component's monitoring duty).
type ModuleStats struct {
	Name        string
	DownPackets uint64
	DownBytes   uint64
	UpPackets   uint64
	UpBytes     uint64
	Drops       uint64
}

// Stats snapshots per-module counters, ordered from A side to T side.
func (r *Runtime) Stats() []ModuleStats {
	r.statsLock.Lock()
	defer r.statsLock.Unlock()
	out := make([]ModuleStats, len(r.modules))
	for i, m := range r.modules {
		c := r.ctxs[i]
		out[i] = ModuleStats{
			Name:        m.Name(),
			DownPackets: atomic.LoadUint64(&c.downPkts),
			DownBytes:   atomic.LoadUint64(&c.downBytes),
			UpPackets:   atomic.LoadUint64(&c.upPkts),
			UpBytes:     atomic.LoadUint64(&c.upBytes),
			Drops:       atomic.LoadUint64(&c.drops),
		}
	}
	return out
}

package dacapo

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"cool/internal/bufpool"
	"cool/internal/qos"
	"cool/internal/transport"
)

// queueDepth is the capacity (in batches) of each segment-boundary queue.
// Bounded queues give backpressure from the transport up to the
// application.
const queueDepth = 64

// stage is one module's slot in a generation of the module graph.
type stage struct {
	mod      Module
	ctx      *Context
	blocking bool
	started  bool

	// Pump wiring, blocking stages only. Queues carry pooled batches so a
	// burst crosses the segment boundary in one hand-off.
	downQ  chan *[]*Packet
	upQ    chan *[]*Packet
	events chan any
	ex     *executor
}

// executor describes one goroutine (or lock-holder) that runs a contiguous
// inline segment of the graph: the sender (under sendMu), the receiver
// (under readMu, or the reader goroutine in threaded mode), or a blocking
// module's pump. While an executor processes a batch it gathers its
// emissions — boundary hand-offs and wire frames — and flushes them as
// batches when the run completes. All fields are owned by the executing
// goroutine.
type executor struct {
	gather bool

	// wire gathers frames bound for the transport (downSink == nil).
	wire []*Packet
	// outDown gathers packets bound for the next blocking stage below.
	outDown  []*Packet
	downSink *stage
	// outUp gathers packets bound for the next blocking stage above.
	outUp  []*Packet
	upSink *stage
	// outRecv gathers packets bound for the application (upSink == nil,
	// threaded mode).
	outRecv []*Packet
}

// batchPool recycles the boundary batch slices.
var batchPool = sync.Pool{New: func() any { return new([]*Packet) }}

func getBatch() *[]*Packet {
	bp := batchPool.Get().(*[]*Packet)
	*bp = (*bp)[:0]
	return bp
}

func putBatch(bp *[]*Packet) { batchPool.Put(bp) }

// Runtime executes a module graph between an application endpoint (Send /
// Recv) and a transport channel: the Da CaPo runtime environment of
// Figure 5. The graph is split into run-to-completion inline segments at
// blocking-module boundaries. A fully inline graph runs with zero
// internal goroutines: Send executes the whole down chain on the caller,
// Recv reads the transport and executes the whole up chain on the caller.
// Each blocking module gets a pump goroutine owning both its directions
// plus its events; a transport reader goroutine feeds the bottom segment.
type Runtime struct {
	reg *Registry
	tch transport.Channel
	bch transport.BatchChannel // non-nil when tch supports vectored writes

	threaded bool  // at least one blocking module
	pumps    []int // indices of blocking stages

	// down and up are the stage lists seen by each direction. They are
	// the same slice until a mid-stream reconfiguration splices in a new
	// generation direction by direction (down under sendMu, up under
	// readMu).
	sendMu sync.Mutex
	readMu sync.Mutex
	down   []*stage
	up     []*stage
	downGen, upGen uint32

	sendEx *executor
	readEx *executor

	// scratch holds packets delivered to the application by the inline up
	// chain, pending pickup by the Recv caller (readMu).
	scratch     []*Packet
	scratchHead int

	// wireFrames is the vectored-write scratch of the unique wire
	// executor.
	wireFrames [][]byte

	recvQ chan *Packet // threaded mode application delivery
	ctrlQ chan []byte  // threaded mode: reader hands control replies to the wire-owning pump

	stop      chan struct{}
	stopOnce  sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup
	started   atomic.Bool
	firstErr  atomic.Pointer[error]

	statsLock   sync.Mutex
	spec        Spec
	statsStages []*stage
	retired     []ModuleStats

	// Mid-stream reconfiguration state (reconfig.go).
	rcMu        sync.Mutex
	rcPolicy    AcceptPolicy
	rcGen       uint32
	rcInit      *reconfigState
	rcResp      *reconfigState
	rcTimeout   time.Duration
	rcOnSplice  []func(Spec, qos.Set)
	rcStarted   atomic.Uint64
	rcCompleted atomic.Uint64
	rcAborted   atomic.Uint64

	// wireHist, when instrumented, observes vectored wire-flush sizes.
	wireHist batchObserver
}

// NewRuntime builds (but does not start) a runtime for spec over the given
// transport channel.
func NewRuntime(spec Spec, reg *Registry, tch transport.Channel) (*Runtime, error) {
	modules, err := spec.build(reg)
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		reg:       reg,
		tch:       tch,
		spec:      spec,
		stop:      make(chan struct{}),
		rcTimeout: defaultReconfigTimeout,
	}
	r.bch, _ = transport.AsBatchChannel(tch)
	r.sendEx = &executor{}
	r.readEx = &executor{}
	stages := r.buildStages(modules)
	r.down, r.up = stages, stages
	r.statsStages = stages
	for i, s := range stages {
		if s.blocking {
			r.threaded = true
			r.pumps = append(r.pumps, i)
		}
	}
	if r.threaded {
		r.recvQ = make(chan *Packet, queueDepth)
		r.ctrlQ = make(chan []byte, 4)
	}
	return r, nil
}

// buildStages wires a generation of stages and their executors.
func (r *Runtime) buildStages(modules []Module) []*stage {
	stages := make([]*stage, len(modules))
	for i, m := range modules {
		_, blocking := m.(Blocker)
		s := &stage{mod: m, blocking: blocking}
		s.ctx = &Context{rt: r, idx: i, threaded: blocking}
		if blocking {
			s.downQ = make(chan *[]*Packet, queueDepth)
			s.upQ = make(chan *[]*Packet, queueDepth)
			s.events = make(chan any, queueDepth)
			s.ex = &executor{}
		}
		stages[i] = s
	}
	for _, s := range stages {
		s.ctx.stages = stages
	}
	// Down direction: the sender executor runs stages until the first
	// blocking boundary; each pump runs its own stage and the inline run
	// below it.
	cur := r.sendEx
	cur.downSink = nil
	for _, s := range stages {
		if s.blocking {
			cur.downSink = s
			cur = s.ex
			cur.downSink = nil
		}
		s.ctx.downEx = cur
	}
	// Up direction, mirrored from the transport side.
	cur = r.readEx
	cur.upSink = nil
	for i := len(stages) - 1; i >= 0; i-- {
		s := stages[i]
		if s.blocking {
			cur.upSink = s
			cur = s.ex
			cur.upSink = nil
		}
		s.ctx.upEx = cur
	}
	return stages
}

// Spec returns the protocol configuration the runtime currently executes.
func (r *Runtime) Spec() Spec {
	r.statsLock.Lock()
	defer r.statsLock.Unlock()
	return r.spec
}

// Segments reports the number of inline segments and threaded (pump)
// stages the graph was split into.
func (r *Runtime) Segments() (inline, threaded int) {
	threaded = len(r.pumps)
	run := false
	for _, s := range r.down { // segment shape is fixed per mode
		if s.blocking {
			run = false
			continue
		}
		if !run {
			inline++
			run = true
		}
	}
	if inline == 0 && threaded == 0 {
		inline = 1 // the empty stack is one passthrough segment
	}
	return inline, threaded
}

// Start runs the module Start hooks and launches the pump goroutines (if
// any). A failing hook poisons the runtime and surfaces synchronously.
func (r *Runtime) Start() error {
	if r.started.Swap(true) {
		return errors.New("dacapo: runtime already started")
	}
	for _, s := range r.down {
		if err := s.mod.Start(s.ctx); err != nil {
			err = fmt.Errorf("dacapo: start %s: %w", s.mod.Name(), err)
			r.recordErr(err)
			r.Close()
			return err
		}
		s.started = true
	}
	if r.threaded {
		for _, i := range r.pumps {
			r.wg.Add(1)
			go r.runPump(r.down[i])
		}
		r.wg.Add(1)
		go r.runReader()
	}
	return nil
}

func (r *Runtime) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// moduleName resolves a context back to its module name (diagnostics).
func (r *Runtime) moduleName(c *Context) string {
	if c.idx >= 0 && c.idx < len(c.stages) {
		return c.stages[c.idx].mod.Name()
	}
	return "?"
}

// downFrom runs the down direction from stage i: inline stages execute on
// the current goroutine, a blocking stage takes a batch hand-off, and the
// transport terminates the chain.
//
//coollint:hotpath inline down-direction dispatch spine
func (r *Runtime) downFrom(stages []*stage, i int, p *Packet, ex *executor) error {
	if i >= len(stages) {
		return r.wireOut(p, ex)
	}
	s := stages[i]
	if s.blocking {
		if ex != nil && ex.gather {
			ex.outDown = append(ex.outDown, p)
			return nil
		}
		return r.enqueueOne(s.downQ, p)
	}
	return s.mod.HandleDown(s.ctx, p)
}

// upFrom runs the up direction from stage i toward the application.
//
//coollint:hotpath inline up-direction dispatch spine
func (r *Runtime) upFrom(stages []*stage, i int, p *Packet, ex *executor) error {
	if i < 0 {
		return r.deliverApp(p, ex)
	}
	s := stages[i]
	if s.blocking {
		if ex != nil && ex.gather {
			ex.outUp = append(ex.outUp, p)
			return nil
		}
		return r.enqueueOne(s.upQ, p)
	}
	return s.mod.HandleUp(s.ctx, p)
}

// deliverApp hands a fully ascended packet to the application: the Recv
// caller's scratch in inline mode, the receive queue in threaded mode.
//
//coollint:hotpath application delivery
func (r *Runtime) deliverApp(p *Packet, ex *executor) error {
	if !r.threaded {
		r.scratch = append(r.scratch, p)
		return nil
	}
	if ex != nil && ex.gather {
		ex.outRecv = append(ex.outRecv, p)
		return nil
	}
	return r.deliverRecv(p)
}

func (r *Runtime) deliverRecv(p *Packet) error {
	select {
	case r.recvQ <- p:
		return nil
	case <-r.stop:
		putPacket(p)
		return ErrStopped
	}
}

// enqueueOne hands a single packet across a segment boundary.
//
//coollint:hotpath segment-boundary hand-off
func (r *Runtime) enqueueOne(q chan *[]*Packet, p *Packet) error {
	bp := getBatch()
	*bp = append(*bp, p)
	select {
	case q <- bp:
		return nil
	case <-r.stop:
		putPacket(p)
		(*bp)[0] = nil
		*bp = (*bp)[:0]
		putBatch(bp)
		return ErrStopped
	}
}

// enqueueBatch hands a gathered run of packets across a segment boundary
// in one channel operation.
func (r *Runtime) enqueueBatch(q chan *[]*Packet, pkts []*Packet) error {
	bp := getBatch()
	*bp = append(*bp, pkts...)
	select {
	case q <- bp:
		return nil
	case <-r.stop:
		for i, p := range *bp {
			putPacket(p)
			(*bp)[i] = nil
		}
		*bp = (*bp)[:0]
		putBatch(bp)
		return ErrStopped
	}
}

// wireOut terminates the down chain at the transport. Data frames that
// collide with the control-frame magic are escape-wrapped (reconfig.go).
//
//coollint:hotpath wire egress
func (r *Runtime) wireOut(p *Packet, ex *executor) error {
	if hasCtrlMagic(p.Bytes()) {
		escapeWrap(p)
	}
	if ex != nil && ex.gather {
		ex.wire = append(ex.wire, p)
		return nil
	}
	if h := r.wireHist.Load(); h != nil {
		h.Observe(1) // ungathered write: a flush of one
	}
	err := r.tch.WriteMessage(p.Bytes())
	putPacket(p)
	if err != nil {
		return fmt.Errorf("dacapo: transport write: %w", err)
	}
	return nil
}

// flushExec flushes an executor's gathered emissions as batches: one
// hand-off per boundary, one vectored write for the wire.
//
//coollint:hotpath batch flush at segment boundaries
func (r *Runtime) flushExec(ex *executor) error {
	var err error
	if len(ex.outDown) > 0 {
		err = r.enqueueBatch(ex.downSink.downQ, ex.outDown)
		clearPackets(&ex.outDown)
	}
	if len(ex.outUp) > 0 {
		if e := r.enqueueBatch(ex.upSink.upQ, ex.outUp); err == nil {
			err = e
		}
		clearPackets(&ex.outUp)
	}
	if len(ex.outRecv) > 0 {
		for i, p := range ex.outRecv {
			ex.outRecv[i] = nil
			if e := r.deliverRecv(p); err == nil {
				err = e
			}
		}
		ex.outRecv = ex.outRecv[:0]
	}
	if len(ex.wire) > 0 {
		if e := r.flushWire(ex); err == nil {
			err = e
		}
	}
	return err
}

// clearPackets resets a gather buffer without releasing the packets (they
// were handed off, or released by the hand-off's failure path).
func clearPackets(b *[]*Packet) {
	for i := range *b {
		(*b)[i] = nil
	}
	*b = (*b)[:0]
}

// releaseExec releases gathered packets that were never flushed (abort
// paths).
func (r *Runtime) releaseExec(ex *executor) {
	for _, b := range [][]*Packet{ex.outDown, ex.outUp, ex.outRecv, ex.wire} {
		for _, p := range b {
			putPacket(p)
		}
	}
	ex.outDown, ex.outUp, ex.outRecv, ex.wire = ex.outDown[:0], ex.outUp[:0], ex.outRecv[:0], ex.wire[:0]
}

// flushWire writes the executor's gathered wire frames, vectored when the
// transport supports it.
//
//coollint:hotpath vectored wire flush
func (r *Runtime) flushWire(ex *executor) error {
	pkts := ex.wire
	if h := r.wireHist.Load(); h != nil {
		h.Observe(uint64(len(pkts)))
	}
	var err error
	if r.bch != nil && len(pkts) > 1 {
		frames := r.wireFrames[:0]
		for _, p := range pkts {
			frames = append(frames, p.Bytes()) //coollint:allocok growth lands in the reused r.wireFrames backing, amortized across flushes
		}
		err = r.bch.WriteMessages(frames)
		for i := range frames {
			frames[i] = nil // drop aliases before the buffers are recycled
		}
		r.wireFrames = frames[:0]
	} else {
		for _, p := range pkts {
			if err == nil {
				err = r.tch.WriteMessage(p.Bytes())
			}
		}
	}
	for i, p := range pkts {
		putPacket(p)
		ex.wire[i] = nil
	}
	ex.wire = ex.wire[:0]
	if err != nil {
		return fmt.Errorf("dacapo: transport write: %w", err)
	}
	return nil
}

// Send injects application data at the top of the stack (the A interface).
// In inline mode the payload is borrowed: the whole down chain, wire write
// included, completes before Send returns. In threaded mode the payload is
// copied and handed to the first segment.
//
//coollint:hotpath application send entry; runs the down chain inline
func (r *Runtime) Send(data []byte) error {
	r.sendMu.Lock()
	err := r.sendLocked(data) //coollint:allow lockhold -- backpressure by design: a full blocking-segment queue stalls senders; the pump drains it without ever taking sendMu
	r.sendMu.Unlock()
	return err
}

func (r *Runtime) sendLocked(data []byte) error {
	if r.stopped() {
		return r.closeErr()
	}
	var p *Packet
	if r.threaded {
		p = getPacket(data)
	} else {
		p = wrapBorrowed(data)
	}
	return r.finishSend(r.downFrom(r.down, 0, p, r.sendEx))
}

func (r *Runtime) finishSend(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrStopped) {
		return r.closeErr()
	}
	r.fail(err)
	return err
}

// SendBatch sends every frame through the stack under one lock
// acquisition; the resulting wire frames leave in a single vectored write
// (inline mode) or cross into the first segment as one batch (threaded
// mode). Frames are borrowed for the duration of the call.
//
//coollint:hotpath batched application send entry
func (r *Runtime) SendBatch(frames [][]byte) error {
	r.sendMu.Lock()
	if r.stopped() {
		r.sendMu.Unlock()
		return r.closeErr()
	}
	ex := r.sendEx
	ex.gather = true
	var err error
	for _, f := range frames {
		var p *Packet
		if r.threaded {
			p = getPacket(f)
		} else {
			p = wrapBorrowed(f)
		}
		if err = r.downFrom(r.down, 0, p, ex); err != nil { //coollint:allow lockhold -- backpressure by design: the pump drains the boundary queue without taking sendMu
			break
		}
	}
	if err != nil {
		r.releaseExec(ex)
	} else {
		err = r.flushExec(ex) //coollint:allow lockhold -- backpressure by design: the pump drains the boundary queue without taking sendMu
	}
	ex.gather = false
	err = r.finishSend(err)
	r.sendMu.Unlock()
	return err
}

// Recv returns the next application payload delivered by the stack. In
// inline mode the caller is the receive executor: it reads the transport
// and runs the up chain run-to-completion. After shutdown it drains
// pending packets, then returns io.EOF (peer closed) or the runtime's
// first error.
//
//coollint:hotpath application receive entry; runs the up chain inline
func (r *Runtime) Recv() ([]byte, error) {
	if r.threaded {
		select {
		case p := <-r.recvQ:
			return r.detach(p), nil
		case <-r.stop:
			select {
			case p := <-r.recvQ:
				return r.detach(p), nil
			default:
				return nil, r.closeErr()
			}
		}
	}
	r.readMu.Lock()
	for {
		if p := r.takeScratch(); p != nil {
			out := r.detach(p)
			r.readMu.Unlock()
			return out, nil
		}
		if err := r.recvStepLocked(); err != nil { //coollint:allow lockhold -- ctrl completion sends land in a cap-1 buffered slot with a single waiter; never blocks
			r.readMu.Unlock()
			return nil, r.closeErr()
		}
	}
}

// takeScratch pops the next application-bound packet (readMu held).
func (r *Runtime) takeScratch() *Packet {
	if r.scratchHead >= len(r.scratch) {
		return nil
	}
	p := r.scratch[r.scratchHead]
	r.scratch[r.scratchHead] = nil
	r.scratchHead++
	if r.scratchHead == len(r.scratch) {
		r.scratch = r.scratch[:0]
		r.scratchHead = 0
	}
	return p
}

// recvStepLocked reads one transport frame under readMu and runs it up
// the stack (control frames dispatch to the reconfiguration handler).
// Errors are already recorded when it returns non-nil; the caller
// surfaces closeErr.
//
//coollint:hotpath inline receive step
func (r *Runtime) recvStepLocked() error {
	msg, err := r.tch.ReadMessage()
	if err != nil {
		r.readFailed(err)
		return err
	}
	off := 0
	if kind, ok := ctrlKind(msg); ok {
		if kind != ctrlEscape {
			r.handleCtrl(kind, msg)
			transport.PutBuffer(msg)
			return nil
		}
		off = ctrlHdrLen
	}
	p := wrapMessage(msg, off)
	if herr := r.upFrom(r.up, len(r.up)-1, p, r.readEx); herr != nil && !errors.Is(herr, ErrStopped) {
		r.fail(herr)
		return herr
	}
	return nil
}

// readFailed maps a transport read error: peer close is a graceful EOF,
// anything else poisons the runtime.
func (r *Runtime) readFailed(err error) {
	if errors.Is(err, io.EOF) || errors.Is(err, transport.ErrClosed) {
		r.shutdown(io.EOF)
	} else {
		r.fail(fmt.Errorf("dacapo: transport read: %w", err))
	}
}

// detach hands a packet's payload to the application. A payload that
// still starts at its buffer's base (nothing was stripped) transfers the
// arena buffer itself — zero copy; otherwise the payload is copied into a
// fresh arena buffer so the original's base pointer stays intact for the
// pool ledger. Either way the caller recycles via transport.PutBuffer.
//
//coollint:hotpath receive hand-off to the application
func (r *Runtime) detach(p *Packet) []byte {
	if p.owned && p.off == 0 {
		out := p.buf[:p.end]
		p.owned = false
		putPacket(p)
		return out
	}
	n := p.Len()
	b := bufpool.Get(n)
	out := b[:n]
	copy(out, p.Bytes())
	putPacket(p)
	return out
}

// runReader pumps inbound transport messages into the bottom inline
// segment (threaded mode only).
//
//coollint:hotpath threaded-mode transport reader; runs the bottom inline segment
func (r *Runtime) runReader() {
	defer r.wg.Done()
	up := r.up // threaded graphs are never respliced
	for {
		msg, err := r.tch.ReadMessage()
		if err != nil {
			r.readFailed(err)
			return
		}
		off := 0
		if kind, ok := ctrlKind(msg); ok {
			if kind != ctrlEscape {
				r.ctrlThreaded(kind, msg)
				transport.PutBuffer(msg)
				continue
			}
			off = ctrlHdrLen
		}
		p := wrapMessage(msg, off)
		if herr := r.upFrom(up, len(up)-1, p, r.readEx); herr != nil {
			if !errors.Is(herr, ErrStopped) {
				r.fail(herr)
			}
			return
		}
	}
}

// runPump is a blocking module's goroutine: it owns both directions and
// the event queue of its stage and runs the inline segment below (down)
// and above (up) run-to-completion, gathering cross-boundary emissions
// per batch.
//
//coollint:hotpath module pump; run-to-completion over its inline segments
func (r *Runtime) runPump(s *stage) {
	defer r.wg.Done()
	ctx := s.ctx
	ex := s.ex
	var pending []*Packet // accepted but undelivered while paused
	head := 0
	var ctrlQ chan []byte
	if ex.downSink == nil && r.pumps[len(r.pumps)-1] == ctx.idx {
		// The bottom-most pump owns the wire; it also writes control
		// replies on the reader's behalf.
		ctrlQ = r.ctrlQ
	}
	//coollint:allocok one closure per pump lifetime, not per packet
	bail := func(err error) bool {
		if err == nil {
			return false
		}
		if !errors.Is(err, ErrStopped) {
			r.fail(err)
		}
		return true
	}
	//coollint:allocok one closure per pump lifetime, not per packet
	exit := func() {
		for _, p := range pending[head:] {
			putPacket(p)
		}
		r.releaseExec(ex)
	}
	for {
		if !ctx.downPaused && head < len(pending) {
			p := pending[head]
			pending[head] = nil
			head++
			if head == len(pending) {
				pending = pending[:0]
				head = 0
			}
			ex.gather = true
			err := s.mod.HandleDown(ctx, p)
			if err == nil {
				err = r.flushExec(ex)
			}
			ex.gather = false
			if bail(err) {
				exit()
				return
			}
			continue
		}
		dq := s.downQ
		if ctx.downPaused {
			dq = nil
		}
		select {
		case bp := <-dq:
			batch := *bp
			ctx.observeBatch(len(batch))
			ex.gather = true
			var err error
			for i, p := range batch {
				batch[i] = nil
				switch {
				case err != nil:
					putPacket(p)
				case ctx.downPaused:
					pending = append(pending, p) //coollint:allocok paused-intake spill buffer; bounded by queueDepth batches
				default:
					err = s.mod.HandleDown(ctx, p)
				}
			}
			*bp = batch[:0]
			putBatch(bp)
			if err == nil {
				err = r.flushExec(ex)
			}
			ex.gather = false
			if bail(err) {
				exit()
				return
			}
		case bp := <-s.upQ:
			batch := *bp
			ctx.observeBatch(len(batch))
			ex.gather = true
			var err error
			for i, p := range batch {
				batch[i] = nil
				if err != nil {
					putPacket(p)
					continue
				}
				err = s.mod.HandleUp(ctx, p)
			}
			*bp = batch[:0]
			putBatch(bp)
			if err == nil {
				err = r.flushExec(ex)
			}
			ex.gather = false
			if bail(err) {
				exit()
				return
			}
		case ev := <-s.events:
			ex.gather = true
			err := s.mod.HandleEvent(ctx, ev)
			if err != nil {
				err = fmt.Errorf("dacapo: module %s: %w", s.mod.Name(), err)
			} else {
				err = r.flushExec(ex)
			}
			ex.gather = false
			if bail(err) {
				exit()
				return
			}
		case f := <-ctrlQ:
			if err := r.tch.WriteMessage(f); err != nil {
				r.fail(fmt.Errorf("dacapo: transport write: %w", err))
				exit()
				return
			}
		case <-r.stop:
			exit()
			return
		}
	}
}

func (r *Runtime) postEvent(c *Context, ev any) {
	s := c.stages[c.idx]
	select {
	case s.events <- ev:
	case <-r.stop:
	}
}

func (r *Runtime) recordErr(err error) {
	e := err
	r.firstErr.CompareAndSwap(nil, &e)
}

func (r *Runtime) fail(err error) {
	r.recordErr(err)
	r.shutdownLocked()
}

func (r *Runtime) shutdown(err error) {
	r.recordErr(err)
	r.shutdownLocked()
}

func (r *Runtime) shutdownLocked() {
	r.stopOnce.Do(func() {
		close(r.stop)
		r.tch.Close()
	})
}

func (r *Runtime) closeErr() error {
	if e := r.firstErr.Load(); e != nil {
		return *e
	}
	return ErrStopped
}

// Close stops the runtime, closes the transport channel, waits for the
// pump goroutines to exit, drains every queue and runs the module Stop
// hooks.
func (r *Runtime) Close() error {
	r.shutdown(ErrStopped)
	r.wg.Wait()
	r.closeOnce.Do(r.teardown)
	return nil
}

// teardown quiesces the executors, releases every packet still inside the
// runtime and runs the Stop hooks of all live module generations.
func (r *Runtime) teardown() {
	// Lock order readMu -> sendMu, matching the control-frame reply path.
	r.readMu.Lock()
	defer r.readMu.Unlock()
	r.sendMu.Lock()
	defer r.sendMu.Unlock()

	for _, p := range r.scratch[r.scratchHead:] {
		putPacket(p)
	}
	r.scratch = r.scratch[:0]
	r.scratchHead = 0
	r.releaseExec(r.sendEx)
	r.releaseExec(r.readEx)

	stopSeen := make(map[*stage]bool)
	stopGen := func(stages []*stage) {
		for _, s := range stages {
			if stopSeen[s] || !s.started {
				continue
			}
			stopSeen[s] = true
			if s.blocking {
				drainBatchQ(s.downQ)
				drainBatchQ(s.upQ)
			}
			if err := s.mod.Stop(s.ctx); err != nil {
				r.recordErr(fmt.Errorf("dacapo: stop %s: %w", s.mod.Name(), err))
			}
		}
	}
	stopGen(r.down)
	stopGen(r.up)
	r.reconfigTeardown(stopGen)
	if r.threaded {
		drainRecvQ(r.recvQ)
	}
}

func drainRecvQ(q chan *Packet) {
	for {
		select {
		case p := <-q:
			putPacket(p)
		default:
			return
		}
	}
}

// observeBatch records a pump-batch size against the module's histogram.
func (c *Context) observeBatch(n int) {
	if h := c.batchHist.Load(); h != nil {
		h.Observe(uint64(n))
	}
}

func drainBatchQ(q chan *[]*Packet) {
	for {
		select {
		case bp := <-q:
			for i, p := range *bp {
				putPacket(p)
				(*bp)[i] = nil
			}
			*bp = (*bp)[:0]
			putBatch(bp)
		default:
			return
		}
	}
}

// Err returns the first fatal error observed by the runtime, if any.
func (r *Runtime) Err() error {
	if e := r.firstErr.Load(); e != nil && !errors.Is(*e, ErrStopped) && !errors.Is(*e, io.EOF) {
		return *e
	}
	return nil
}

// ModuleStats is a monitoring snapshot for one module (the management
// component's monitoring duty).
type ModuleStats struct {
	Name        string
	DownPackets uint64
	DownBytes   uint64
	UpPackets   uint64
	UpBytes     uint64
	Drops       uint64
}

// Stats snapshots per-module counters, ordered from A side to T side.
// Counters of module generations retired by a mid-stream reconfiguration
// are retained, so totals stay monotonic across splices.
func (r *Runtime) Stats() []ModuleStats {
	r.statsLock.Lock()
	defer r.statsLock.Unlock()
	out := make([]ModuleStats, 0, len(r.retired)+len(r.statsStages))
	out = append(out, r.retired...)
	for _, s := range r.statsStages {
		out = append(out, snapshotStats(s))
	}
	return out
}

func snapshotStats(s *stage) ModuleStats {
	c := s.ctx
	return ModuleStats{
		Name:        s.mod.Name(),
		DownPackets: atomic.LoadUint64(&c.downPkts),
		DownBytes:   atomic.LoadUint64(&c.downBytes),
		UpPackets:   atomic.LoadUint64(&c.upPkts),
		UpBytes:     atomic.LoadUint64(&c.upBytes),
		Drops:       atomic.LoadUint64(&c.drops),
	}
}

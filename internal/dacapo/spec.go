package dacapo

import (
	"fmt"
	"sort"
	"strings"

	"cool/internal/cdr"
)

// ModuleSpec names one mechanism and its arguments inside a protocol
// configuration.
type ModuleSpec struct {
	Name string
	Args Args
}

func (m ModuleSpec) String() string {
	if len(m.Args) == 0 {
		return m.Name
	}
	keys := make([]string, 0, len(m.Args))
	for k := range m.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m.Args[k]
	}
	return m.Name + "(" + strings.Join(parts, ",") + ")"
}

// Spec is a protocol configuration: the serialisable description of a
// module graph, listed from the A side down to the T side. Both peers must
// instantiate the same spec (with mirrored roles) for the protocol to work;
// the connection manager ships the spec during connection setup.
type Spec struct {
	Modules []ModuleSpec
}

func (s Spec) String() string {
	if len(s.Modules) == 0 {
		return "A|T (empty stack)"
	}
	parts := make([]string, len(s.Modules))
	for i, m := range s.Modules {
		parts[i] = m.String()
	}
	return "A|" + strings.Join(parts, "|") + "|T"
}

// Validate checks that every mechanism exists in the registry and can be
// instantiated with its arguments.
func (s Spec) Validate(reg *Registry) error {
	for i, m := range s.Modules {
		if !reg.Has(m.Name) {
			return fmt.Errorf("dacapo: spec module %d: unknown mechanism %q", i, m.Name)
		}
		if _, err := reg.Build(m.Name, m.Args); err != nil {
			return fmt.Errorf("dacapo: spec module %d (%s): %w", i, m.Name, err)
		}
	}
	return nil
}

// build instantiates all modules of the spec.
func (s Spec) build(reg *Registry) ([]Module, error) {
	mods := make([]Module, len(s.Modules))
	for i, m := range s.Modules {
		mod, err := reg.Build(m.Name, m.Args)
		if err != nil {
			return nil, err
		}
		mods[i] = mod
	}
	return mods, nil
}

// Encode writes the spec into a CDR stream (used by connection signalling).
func (s Spec) Encode(enc *cdr.Encoder) {
	enc.WriteULong(uint32(len(s.Modules)))
	for _, m := range s.Modules {
		enc.WriteString(m.Name)
		keys := make([]string, 0, len(m.Args))
		for k := range m.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		enc.WriteULong(uint32(len(keys)))
		for _, k := range keys {
			enc.WriteString(k)
			enc.WriteString(m.Args[k])
		}
	}
}

// DecodeSpec reads a spec from a CDR stream.
func DecodeSpec(dec *cdr.Decoder) (Spec, error) {
	var s Spec
	n, err := dec.ReadULong()
	if err != nil {
		return s, fmt.Errorf("dacapo: spec module count: %w", err)
	}
	if int64(n)*5 > int64(dec.Remaining()) {
		return s, fmt.Errorf("dacapo: spec module count %d too large", n)
	}
	for i := uint32(0); i < n; i++ {
		var m ModuleSpec
		if m.Name, err = dec.ReadString(); err != nil {
			return s, fmt.Errorf("dacapo: spec module name: %w", err)
		}
		var na uint32
		if na, err = dec.ReadULong(); err != nil {
			return s, fmt.Errorf("dacapo: spec arg count: %w", err)
		}
		if int64(na)*10 > int64(dec.Remaining()) {
			return s, fmt.Errorf("dacapo: spec arg count %d too large", na)
		}
		if na > 0 {
			m.Args = make(Args, na)
		}
		for j := uint32(0); j < na; j++ {
			k, err := dec.ReadString()
			if err != nil {
				return s, fmt.Errorf("dacapo: spec arg key: %w", err)
			}
			v, err := dec.ReadString()
			if err != nil {
				return s, fmt.Errorf("dacapo: spec arg value: %w", err)
			}
			m.Args[k] = v
		}
		s.Modules = append(s.Modules, m)
	}
	return s, nil
}

// Equal reports whether two specs describe the same configuration.
func (s Spec) Equal(o Spec) bool {
	if len(s.Modules) != len(o.Modules) {
		return false
	}
	for i := range s.Modules {
		a, b := s.Modules[i], o.Modules[i]
		if a.Name != b.Name || len(a.Args) != len(b.Args) {
			return false
		}
		for k, v := range a.Args {
			if b.Args[k] != v {
				return false
			}
		}
	}
	return true
}

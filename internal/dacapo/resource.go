package dacapo

import (
	"fmt"
	"sync"

	"cool/internal/qos"
)

// ResourceManager performs admission control for a Da CaPo endpoint: it
// owns a bandwidth budget and a connection limit and reserves a share per
// accepted connection. When a reservation cannot be made, the requesting
// client is informed "with an exception that it cannot support the
// requested QoS" (§4.3) — the unilateral negotiation failure.
type ResourceManager struct {
	mu sync.Mutex
	// budget
	totalKbps uint32
	maxConns  int
	// allocated
	usedKbps uint32
	conns    int
}

// NewResourceManager returns a manager with the given bandwidth budget
// (kbit/s; 0 means unlimited) and connection limit (0 means unlimited).
func NewResourceManager(totalKbps uint32, maxConns int) *ResourceManager {
	return &ResourceManager{totalKbps: totalKbps, maxConns: maxConns}
}

// Reservation is an admitted share of the budget; Release returns it.
type Reservation struct {
	rm       *ResourceManager
	kbps     uint32
	released bool
	mu       sync.Mutex
}

// Kbps returns the reserved bandwidth.
func (r *Reservation) Kbps() uint32 { return r.kbps }

// Release returns the reservation to the budget. It is idempotent.
func (r *Reservation) Release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released {
		return
	}
	r.released = true
	r.rm.mu.Lock()
	r.rm.usedKbps -= r.kbps
	r.rm.conns--
	r.rm.mu.Unlock()
}

// Reserve admits a connection with the throughput demanded by the granted
// QoS set (its Throughput request value; 0 when absent). It fails with a
// *qos.NegotiationError carrying the best remaining offer when the budget
// is exhausted.
func (rm *ResourceManager) Reserve(granted qos.Set) (*Reservation, error) {
	kbps := granted.Value(qos.Throughput, 0)
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.maxConns > 0 && rm.conns >= rm.maxConns {
		return nil, fmt.Errorf("dacapo: connection limit %d reached", rm.maxConns)
	}
	if rm.totalKbps > 0 {
		remaining := rm.totalKbps - rm.usedKbps
		if kbps > remaining {
			p, _ := granted.Get(qos.Throughput)
			return nil, &qos.NegotiationError{Failed: []qos.FailedParam{{
				Param: p, Offer: remaining,
			}}}
		}
	}
	rm.usedKbps += kbps
	rm.conns++
	return &Reservation{rm: rm, kbps: kbps}, nil
}

// Available reports the unreserved bandwidth (kbit/s); the second result is
// false when the budget is unlimited.
func (rm *ResourceManager) Available() (uint32, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.totalKbps == 0 {
		return 0, false
	}
	return rm.totalKbps - rm.usedKbps, true
}

// Connections reports the number of live reservations.
func (rm *ResourceManager) Connections() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.conns
}

package modules

import (
	"encoding/binary"
	"hash/crc32"

	"cool/internal/dacapo"
)

// Error-detection mechanisms: each appends its check value to the packet on
// the way down and verifies + strips it on the way up, dropping corrupted
// packets (an ARQ module above then recovers them). The three mechanisms
// realise the same protocol function at different strengths — the paper's
// example of "parity bit, CRC16, CRC32" (§5.1).

// parity appends a single XOR-parity octet.
type parity struct {
	dacapo.BaseModule
}

func newParity(dacapo.Args) (dacapo.Module, error) { return &parity{}, nil }

func (m *parity) Name() string { return "parity" }

func xorSum(b []byte) byte {
	var s byte
	for _, c := range b {
		s ^= c
	}
	return s
}

func (m *parity) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	p.Append([]byte{xorSum(p.Bytes())})
	return ctx.EmitDown(p)
}

func (m *parity) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	n := p.Len()
	if n < 1 {
		ctx.Drop(p)
		return nil
	}
	data := p.Bytes()
	if xorSum(data[:n-1]) != data[n-1] {
		ctx.Drop(p)
		return nil
	}
	if err := p.TrimBack(1); err != nil {
		return err
	}
	return ctx.EmitUp(p)
}

// crc16 appends a CRC-16/CCITT check value (poly 0x1021, init 0xFFFF).
type crc16 struct {
	dacapo.BaseModule
}

func newCRC16(dacapo.Args) (dacapo.Module, error) { return &crc16{}, nil }

func (m *crc16) Name() string { return "crc16" }

var crc16Table = makeCRC16Table()

func makeCRC16Table() *[256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return &t
}

func crc16Sum(b []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, c := range b {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^c]
	}
	return crc
}

func (m *crc16) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	var sum [2]byte
	binary.BigEndian.PutUint16(sum[:], crc16Sum(p.Bytes()))
	p.Append(sum[:])
	return ctx.EmitDown(p)
}

func (m *crc16) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	n := p.Len()
	if n < 2 {
		ctx.Drop(p)
		return nil
	}
	data := p.Bytes()
	want := binary.BigEndian.Uint16(data[n-2:])
	if crc16Sum(data[:n-2]) != want {
		ctx.Drop(p)
		return nil
	}
	if err := p.TrimBack(2); err != nil {
		return err
	}
	return ctx.EmitUp(p)
}

// crc32m appends a CRC-32/IEEE check value.
type crc32m struct {
	dacapo.BaseModule
}

func newCRC32(dacapo.Args) (dacapo.Module, error) { return &crc32m{}, nil }

func (m *crc32m) Name() string { return "crc32" }

func (m *crc32m) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(p.Bytes()))
	p.Append(sum[:])
	return ctx.EmitDown(p)
}

func (m *crc32m) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	n := p.Len()
	if n < 4 {
		ctx.Drop(p)
		return nil
	}
	data := p.Bytes()
	want := binary.BigEndian.Uint32(data[n-4:])
	if crc32.ChecksumIEEE(data[:n-4]) != want {
		ctx.Drop(p)
		return nil
	}
	if err := p.TrimBack(4); err != nil {
		return err
	}
	return ctx.EmitUp(p)
}

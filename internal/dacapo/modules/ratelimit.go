package modules

import (
	"fmt"
	"time"

	"cool/internal/dacapo"
)

// rateLimit realises traffic shaping with a token bucket: down-direction
// packets are released at the configured rate, smoothing bursts (the
// configuration manager's answer to jitter bounds). Up-direction traffic
// passes through untouched.
type rateLimit struct {
	dacapo.BaseModule

	bytesPerSec float64
	burst       float64

	tokens  float64
	last    time.Time
	waiting *dacapo.Packet
}

type rlTick struct{}

func newRateLimit(args dacapo.Args) (dacapo.Module, error) {
	kbps, err := args.Int("kbps", 0)
	if err != nil {
		return nil, err
	}
	if kbps <= 0 {
		return nil, fmt.Errorf("modules: ratelimit requires kbps > 0, got %d", kbps)
	}
	burst, err := args.Int("burst", 64<<10)
	if err != nil {
		return nil, err
	}
	return &rateLimit{
		bytesPerSec: float64(kbps) * 125, // kbit/s -> bytes/s
		burst:       float64(burst),
	}, nil
}

func (m *rateLimit) Name() string { return "ratelimit" }

// Blocking marks ratelimit for threaded scheduling: it holds packets past
// handler return and wakes on refill timers.
func (m *rateLimit) Blocking() {}

func (m *rateLimit) Stop(ctx *dacapo.Context) error {
	if m.waiting != nil {
		ctx.Pool().Put(m.waiting)
		m.waiting = nil
	}
	return nil
}

func (m *rateLimit) Start(*dacapo.Context) error {
	m.tokens = m.burst
	m.last = time.Now()
	return nil
}

func (m *rateLimit) refill(need float64) {
	now := time.Now()
	m.tokens += now.Sub(m.last).Seconds() * m.bytesPerSec
	m.last = now
	// The cap grows to the largest packet so oversized packets eventually
	// pass instead of starving forever.
	cap := m.burst
	if need > cap {
		cap = need
	}
	if m.tokens > cap {
		m.tokens = cap
	}
}

func (m *rateLimit) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	need := float64(p.Len())
	m.refill(need)
	if m.tokens >= need {
		m.tokens -= need
		return ctx.EmitDown(p)
	}
	// Not enough budget: hold the packet, stop intake, wake up when the
	// bucket has refilled.
	m.waiting = p
	ctx.PauseDown()
	m.scheduleWake(ctx, need)
	return nil
}

func (m *rateLimit) HandleEvent(ctx *dacapo.Context, ev any) error {
	if _, ok := ev.(rlTick); !ok || m.waiting == nil {
		return nil
	}
	need := float64(m.waiting.Len())
	m.refill(need)
	if m.tokens < need {
		m.scheduleWake(ctx, need)
		return nil
	}
	m.tokens -= need
	p := m.waiting
	m.waiting = nil
	ctx.ResumeDown()
	return ctx.EmitDown(p)
}

func (m *rateLimit) scheduleWake(ctx *dacapo.Context, need float64) {
	deficit := need - m.tokens
	wait := time.Duration(deficit / m.bytesPerSec * float64(time.Second))
	if wait < 100*time.Microsecond {
		wait = 100 * time.Microsecond
	}
	ctx.After(wait, rlTick{})
}

func (m *rateLimit) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	return ctx.EmitUp(p)
}

package modules

import (
	"encoding/binary"

	"cool/internal/dacapo"
)

// seqNum prepends a 64-bit sequence number on the way down; on the way up
// it suppresses duplicates and counts gaps. It realises the sequencing
// protocol function (duplicate filtering and loss visibility) without
// retransmission.
type seqNum struct {
	dacapo.BaseModule

	next     uint64 // next outbound sequence number
	expected uint64 // next inbound sequence number
	gaps     uint64 // observed missing packets
}

func newSeqNum(dacapo.Args) (dacapo.Module, error) { return &seqNum{}, nil }

func (m *seqNum) Name() string { return "seqnum" }

const seqHdrLen = 8

func (m *seqNum) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	hdr := p.Prepend(seqHdrLen)
	binary.BigEndian.PutUint64(hdr, m.next)
	m.next++
	return ctx.EmitDown(p)
}

func (m *seqNum) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	if p.Len() < seqHdrLen {
		ctx.Drop(p)
		return nil
	}
	seq := binary.BigEndian.Uint64(p.Bytes())
	if err := p.StripFront(seqHdrLen); err != nil {
		return err
	}
	switch {
	case seq < m.expected: // duplicate or reordered: suppress
		ctx.Drop(p)
		return nil
	case seq > m.expected: // gap: account for the missing packets
		m.gaps += seq - m.expected
	}
	m.expected = seq + 1
	return ctx.EmitUp(p)
}

// xorCipher realises the en-/decryption protocol function with a toy
// repeating-key XOR stream: enough to demonstrate that a confidentiality
// module slots into the graph and that both directions invert each other.
// It is NOT cryptographically secure and is documented as a stand-in.
type xorCipher struct {
	dacapo.BaseModule

	key []byte
}

func newXORCipher(args dacapo.Args) (dacapo.Module, error) {
	key := []byte(args["key"])
	if len(key) == 0 {
		key = []byte("dacapo-default-key")
	}
	return &xorCipher{key: key}, nil
}

func (m *xorCipher) Name() string { return "xorcipher" }

func (m *xorCipher) apply(p *dacapo.Packet) {
	data := p.WritableBytes()
	for i := range data {
		data[i] ^= m.key[i%len(m.key)]
	}
}

func (m *xorCipher) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	m.apply(p)
	return ctx.EmitDown(p)
}

func (m *xorCipher) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	m.apply(p)
	return ctx.EmitUp(p)
}

package modules

import (
	"encoding/binary"
	"fmt"

	"cool/internal/dacapo"
)

// fragment realises segmentation/reassembly: packets larger than the MTU
// are split into numbered fragments on the way down and reassembled on the
// way up. Required when the T service enforces an MTU (netsim links).
//
// Fragment header: [group id:4][index:2][count:2], big-endian.
type fragment struct {
	dacapo.BaseModule

	mtu     int
	nextID  uint32
	pending map[uint32]*fragGroup
	// order keeps insertion order for bounded eviction.
	order []uint32
}

type fragGroup struct {
	// parts retains the fragment packets until the group completes; they
	// are released on reassembly, eviction, or Stop.
	parts []*dacapo.Packet
	got   int
}

const (
	fragHdrLen       = 8
	maxPendingGroups = 1024
	maxFragCount     = 1 << 14
)

func newFragment(args dacapo.Args) (dacapo.Module, error) {
	mtu, err := args.Int("mtu", 1400)
	if err != nil {
		return nil, err
	}
	if mtu <= fragHdrLen {
		return nil, fmt.Errorf("modules: fragment mtu %d must exceed header size %d", mtu, fragHdrLen)
	}
	return &fragment{mtu: mtu, pending: make(map[uint32]*fragGroup)}, nil
}

func (m *fragment) Name() string { return "fragment" }

func (m *fragment) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	chunk := m.mtu - fragHdrLen
	data := p.Bytes()
	count := (len(data) + chunk - 1) / chunk
	if count == 0 {
		count = 1 // empty payload still travels as one fragment
	}
	if count > maxFragCount {
		return fmt.Errorf("modules: payload of %d octets needs %d fragments (max %d)", len(data), count, maxFragCount)
	}
	id := m.nextID
	m.nextID++
	for idx := 0; idx < count; idx++ {
		lo := idx * chunk
		hi := min(lo+chunk, len(data))
		fp := ctx.Pool().Get(data[lo:hi])
		hdr := fp.Prepend(fragHdrLen)
		binary.BigEndian.PutUint32(hdr[0:4], id)
		binary.BigEndian.PutUint16(hdr[4:6], uint16(idx))
		binary.BigEndian.PutUint16(hdr[6:8], uint16(count))
		if err := ctx.EmitDown(fp); err != nil {
			return err
		}
	}
	ctx.Pool().Put(p)
	return nil
}

func (m *fragment) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	if p.Len() < fragHdrLen {
		ctx.Drop(p)
		return nil
	}
	hdr := p.Bytes()[:fragHdrLen]
	id := binary.BigEndian.Uint32(hdr[0:4])
	idx := int(binary.BigEndian.Uint16(hdr[4:6]))
	count := int(binary.BigEndian.Uint16(hdr[6:8]))
	if count == 0 || count > maxFragCount || idx >= count {
		ctx.Drop(p)
		return nil
	}
	if err := p.StripFront(fragHdrLen); err != nil {
		return err
	}

	// Single-fragment fast path.
	if count == 1 {
		return ctx.EmitUp(p)
	}

	g, ok := m.pending[id]
	if !ok {
		g = &fragGroup{parts: make([]*dacapo.Packet, count)}
		m.pending[id] = g
		m.order = append(m.order, id)
		m.evict(ctx)
	}
	if len(g.parts) != count || g.parts[idx] != nil {
		ctx.Drop(p) // inconsistent or duplicate fragment
		return nil
	}
	g.parts[idx] = p
	g.got++
	if g.got < count {
		return nil
	}
	// Complete: reassemble in order, one copy per fragment into a pooled
	// packet sized for the whole payload.
	delete(m.pending, id)
	total := 0
	for _, part := range g.parts {
		total += part.Len()
	}
	whole := ctx.Pool().GetSized(total)
	for i, part := range g.parts {
		whole.Append(part.Bytes())
		ctx.Pool().Put(part)
		g.parts[i] = nil
	}
	return ctx.EmitUp(whole)
}

// evict bounds the reassembly table: when over capacity the oldest
// incomplete group is discarded (its fragments were lost anyway).
func (m *fragment) evict(ctx *dacapo.Context) {
	for len(m.pending) > maxPendingGroups && len(m.order) > 0 {
		victim := m.order[0]
		m.order = m.order[1:]
		if g, ok := m.pending[victim]; ok {
			releaseParts(ctx, g)
			delete(m.pending, victim)
		}
	}
}

// Stop releases fragments of groups that never completed.
func (m *fragment) Stop(ctx *dacapo.Context) error {
	for id, g := range m.pending {
		releaseParts(ctx, g)
		delete(m.pending, id)
	}
	return nil
}

func releaseParts(ctx *dacapo.Context, g *fragGroup) {
	for i, part := range g.parts {
		if part != nil {
			ctx.Pool().Put(part)
			g.parts[i] = nil
		}
	}
}

package modules

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPackBitsKnownVectors(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"single", []byte{42}},
		{"run", bytes.Repeat([]byte{7}, 100)},
		{"literal", []byte{1, 2, 3, 4, 5}},
		{"mixed", append(bytes.Repeat([]byte{0}, 50), []byte{1, 2, 3}...)},
		{"long run", bytes.Repeat([]byte{9}, 1000)},
		{"long literal", func() []byte {
			b := make([]byte, 1000)
			for i := range b {
				b[i] = byte(i * 7)
			}
			return b
		}()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc := packBits(tt.in)
			dec, err := unpackBits(enc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(dec, tt.in) {
				t.Fatalf("round trip failed: %d -> %d -> %d octets", len(tt.in), len(enc), len(dec))
			}
		})
	}
}

func TestPackBitsCompressesRuns(t *testing.T) {
	in := bytes.Repeat([]byte{0xFF}, 4096)
	enc := packBits(in)
	if len(enc) >= len(in)/10 {
		t.Fatalf("run of 4096 compressed to %d octets only", len(enc))
	}
}

func TestPackBitsBoundedExpansion(t *testing.T) {
	in := make([]byte, 4096)
	for i := range in {
		in[i] = byte(i*31 + i/7) // no runs
	}
	enc := packBits(in)
	if len(enc) > len(in)+len(in)/128+1 {
		t.Fatalf("expansion %d -> %d exceeds PackBits bound", len(in), len(enc))
	}
}

func TestUnpackBitsCorruptInput(t *testing.T) {
	// Literal header claiming more octets than present.
	if _, err := unpackBits([]byte{10, 1, 2}); err == nil {
		t.Fatal("truncated literal accepted")
	}
	// Run header with no value octet.
	if _, err := unpackBits([]byte{200}); err == nil {
		t.Fatal("truncated run accepted")
	}
}

// Property: packBits/unpackBits is the identity for arbitrary data.
func TestQuickPackBitsRoundTrip(t *testing.T) {
	f := func(in []byte) bool {
		dec, err := unpackBits(packBits(in))
		return err == nil && bytes.Equal(dec, in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: unpackBits never panics on garbage.
func TestQuickUnpackBitsNeverPanics(t *testing.T) {
	f := func(in []byte) bool {
		unpackBits(in)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
	if got := crc16Sum([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("crc16 = %#04x, want 0x29B1", got)
	}
}

// Package modules is the standard Da CaPo module library: one mechanism
// per protocol function, combinable into protocol configurations.
//
// Mechanisms (registry names in parentheses):
//
//   - forwarding       — "dummy" (the paper's dummy module: forwards
//     packets unaltered; used to measure module-interface overhead in
//     Figure 9)
//   - error detection  — "parity", "crc16", "crc32"
//   - sequencing       — "seqnum" (duplicate suppression + gap detection)
//   - flow control/ARQ — "irq" (idle-repeat-request, the stop-and-wait
//     mechanism whose poor throughput Figure 9 shows), "window"
//     (sliding-window go-back-N)
//   - traffic shaping  — "ratelimit" (token bucket)
//   - confidentiality  — "xorcipher" (toy XOR stream; stands in for
//     de-/encryption protocol functions)
//   - compression      — "rle" (PackBits run-length coding)
//   - segmentation     — "fragment" (MTU-bounded fragmentation/reassembly)
//
// Modules add their headers on the way down and strip them on the way up;
// a sender stack and receiver stack built from the same Spec therefore
// cancel out exactly.
package modules

import (
	"cool/internal/dacapo"
)

// Register adds every standard mechanism to reg.
func Register(reg *dacapo.Registry) {
	reg.Register("dummy", newDummy)
	reg.Register("parity", newParity)
	reg.Register("crc16", newCRC16)
	reg.Register("crc32", newCRC32)
	reg.Register("seqnum", newSeqNum)
	reg.Register("xorcipher", newXORCipher)
	reg.Register("rle", newRLE)
	reg.Register("fragment", newFragment)
	reg.Register("irq", newIRQ)
	reg.Register("window", newWindow)
	reg.Register("ratelimit", newRateLimit)
}

// NewLibrary returns a fresh registry preloaded with the standard library.
func NewLibrary() *dacapo.Registry {
	reg := dacapo.NewRegistry()
	Register(reg)
	return reg
}

// dummy forwards packets unchanged in both directions. Chains of dummy
// modules measure the pure cost of module interfaces and packet forwarding.
type dummy struct {
	dacapo.BaseModule
}

func newDummy(dacapo.Args) (dacapo.Module, error) { return &dummy{}, nil }

func (d *dummy) Name() string { return "dummy" }

func (d *dummy) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	return ctx.EmitDown(p)
}

func (d *dummy) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	return ctx.EmitUp(p)
}

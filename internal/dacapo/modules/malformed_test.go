package modules_test

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"cool/internal/dacapo"
)

// forgeOnce returns a hook that rewrites the first wire frame it sees with
// mutate and passes everything else through untouched.
func forgeOnce(mutate func([]byte) []byte) func([]byte) [][]byte {
	var mu sync.Mutex
	done := false
	return func(f []byte) [][]byte {
		mu.Lock()
		defer mu.Unlock()
		if done {
			return [][]byte{f}
		}
		done = true
		return [][]byte{mutate(append([]byte(nil), f...))}
	}
}

// moduleDrops returns the drop counter of the named module in rt.
func moduleDrops(t *testing.T, rt *dacapo.Runtime, name string) uint64 {
	t.Helper()
	for _, s := range rt.Stats() {
		if s.Name == name {
			return s.Drops
		}
	}
	t.Fatalf("module %q not in stack", name)
	return 0
}

// TestFragmentRejectsOversizedCount: a forged fragment header claiming a
// count beyond maxFragCount must be dropped outright, not used to size the
// reassembly buffer — the wire-side analogue of the sender-side limit in
// HandleDown.
func TestFragmentRejectsOversizedCount(t *testing.T) {
	hook := forgeOnce(func(f []byte) []byte {
		if len(f) < 8 {
			t.Errorf("fragment frame shorter than its header: %d octets", len(f))
			return f
		}
		binary.BigEndian.PutUint16(f[6:8], 0xFFFF) // count > maxFragCount
		return f
	})
	a, b := newHookedPair(hook)
	fragSpec := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "fragment", Args: dacapo.Args{"mtu": "256"}},
	}}
	ra, rb := startStacks(t, fragSpec, a, b)

	// The inline receive path is caller-driven: a Recv must be in flight
	// to pull the forged frame through the stack. It blocks past the drop
	// until the healthy follow-up message arrives.
	type recvResult struct {
		msg []byte
		err error
	}
	delivered := make(chan recvResult, 1)
	go func() {
		msg, err := rb.Recv()
		delivered <- recvResult{msg, err}
	}()

	if err := ra.Send([]byte("poisoned")); err != nil {
		t.Fatal(err)
	}
	// The receiver must drop the forged frame rather than stash it into a
	// 64K-part reassembly group.
	deadline := time.Now().Add(2 * time.Second)
	for moduleDrops(t, rb, "fragment") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("forged oversized-count fragment was not dropped")
		}
		time.Sleep(time.Millisecond)
	}

	// The stack must still be healthy for well-formed traffic.
	want := []byte("after the attack")
	if err := ra.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-delivered:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if !bytes.Equal(res.msg, want) {
			t.Fatalf("post-attack message corrupted: %q", res.msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-attack message never delivered")
	}
}

package modules

import (
	"encoding/binary"
	"fmt"
	"time"

	"cool/internal/dacapo"
)

// ARQ mechanisms. Both share a 5-octet header: [type:1][seq:4] with type
// DATA or ACK. Each module instance is full-duplex: it is the sender for
// its endpoint's outbound packets and the receiver for inbound ones, so a
// single stack supports request/reply traffic.

const (
	arqHdrLen = 5
	arqData   = byte(0)
	arqAck    = byte(1)
)

func putArqHdr(dst []byte, typ byte, seq uint32) {
	dst[0] = typ
	binary.BigEndian.PutUint32(dst[1:], seq)
}

// irq is the idle-repeat-request mechanism: stop-and-wait ARQ. Exactly one
// packet is outstanding; the next is accepted only after the ACK arrives.
// Its "ineffective flow control" is what collapses throughput in the
// paper's Figure 9 ("the low throughput for the IRQ C module is caused by
// the ineffective flow control of the idle-repeat-request protocol").
type irq struct {
	dacapo.BaseModule

	rto        time.Duration
	maxRetries int

	// sender state
	sendSeq     uint32
	awaiting    bool
	outstanding *dacapo.Packet
	retries     int
	cancelTimer func()

	// receiver state
	recvSeq uint32
}

type irqTimeout struct{ seq uint32 }

func newIRQ(args dacapo.Args) (dacapo.Module, error) {
	rto, err := args.Duration("rto", 100*time.Millisecond)
	if err != nil {
		return nil, err
	}
	retries, err := args.Int("retries", 20)
	if err != nil {
		return nil, err
	}
	return &irq{rto: rto, maxRetries: retries}, nil
}

func (m *irq) Name() string { return "irq" }

// Blocking marks irq for threaded scheduling: it pauses intake, arms
// retransmission timers, and emits ACKs down from its up path.
func (m *irq) Blocking() {}

func (m *irq) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	putArqHdr(p.Prepend(arqHdrLen), arqData, m.sendSeq)
	m.outstanding = p.Clone()
	m.awaiting = true
	m.retries = 0
	ctx.PauseDown() // stop-and-wait: nothing else until the ACK
	m.cancelTimer = ctx.After(m.rto, irqTimeout{seq: m.sendSeq})
	return ctx.EmitDown(p)
}

func (m *irq) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	if p.Len() < arqHdrLen {
		ctx.Drop(p)
		return nil
	}
	hdr := p.Bytes()[:arqHdrLen]
	typ, seq := hdr[0], binary.BigEndian.Uint32(hdr[1:])
	if err := p.StripFront(arqHdrLen); err != nil {
		return err
	}
	switch typ {
	case arqAck:
		if m.awaiting && seq == m.sendSeq {
			m.stopTimer()
			m.awaiting = false
			ctx.Pool().Put(m.outstanding)
			m.outstanding = nil
			m.sendSeq++
			ctx.ResumeDown()
		}
		ctx.Drop(p)
		return nil
	case arqData:
		switch {
		case seq == m.recvSeq:
			m.recvSeq++
			if err := sendAck(ctx, seq); err != nil {
				return err
			}
			return ctx.EmitUp(p)
		case seq < m.recvSeq:
			// Duplicate: our ACK was lost; re-acknowledge.
			if err := sendAck(ctx, seq); err != nil {
				return err
			}
			ctx.Drop(p)
			return nil
		default:
			// Cannot happen with a stop-and-wait peer; discard.
			ctx.Drop(p)
			return nil
		}
	default:
		ctx.Drop(p)
		return nil
	}
}

func (m *irq) HandleEvent(ctx *dacapo.Context, ev any) error {
	to, ok := ev.(irqTimeout)
	if !ok || !m.awaiting || to.seq != m.sendSeq {
		return nil // stale timer
	}
	m.retries++
	if m.retries > m.maxRetries {
		return fmt.Errorf("modules: irq: packet %d lost after %d retries", m.sendSeq, m.maxRetries)
	}
	if err := ctx.EmitDown(m.outstanding.Clone()); err != nil {
		return err
	}
	m.cancelTimer = ctx.After(backoff(m.rto, m.retries), to)
	return nil
}

func (m *irq) Stop(ctx *dacapo.Context) error {
	m.stopTimer()
	if m.outstanding != nil {
		ctx.Pool().Put(m.outstanding)
		m.outstanding = nil
	}
	return nil
}

func (m *irq) stopTimer() {
	if m.cancelTimer != nil {
		m.cancelTimer()
		m.cancelTimer = nil
	}
}

func sendAck(ctx *dacapo.Context, seq uint32) error {
	ack := ctx.Pool().Get(nil)
	putArqHdr(ack.Prepend(arqHdrLen), arqAck, seq)
	return ctx.EmitDown(ack)
}

// window is the sliding-window go-back-N ARQ mechanism: up to `window`
// packets outstanding, cumulative ACKs, full-window retransmission on
// timeout. It keeps the pipe full where irq idles it.
type window struct {
	dacapo.BaseModule

	rto        time.Duration
	maxRetries int
	size       uint32

	// sender state
	base, next uint32
	buf        map[uint32]*dacapo.Packet
	retries    int
	timerGen   int
	cancel     func()

	// receiver state
	recvNext uint32
}

type winTimeout struct{ gen int }

func newWindow(args dacapo.Args) (dacapo.Module, error) {
	rto, err := args.Duration("rto", 100*time.Millisecond)
	if err != nil {
		return nil, err
	}
	retries, err := args.Int("retries", 20)
	if err != nil {
		return nil, err
	}
	size, err := args.Int("window", 16)
	if err != nil {
		return nil, err
	}
	if size < 1 {
		return nil, fmt.Errorf("modules: window size %d < 1", size)
	}
	return &window{
		rto:        rto,
		maxRetries: retries,
		size:       uint32(size),
		buf:        make(map[uint32]*dacapo.Packet),
	}, nil
}

func (m *window) Name() string { return "window" }

// Blocking marks window for threaded scheduling: it pauses intake when
// the window fills, arms timers, and ACKs down from its up path.
func (m *window) Blocking() {}

func (m *window) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	seq := m.next
	putArqHdr(p.Prepend(arqHdrLen), arqData, seq)
	m.buf[seq] = p.Clone()
	m.next++
	if m.next-m.base >= m.size {
		ctx.PauseDown()
	}
	if m.cancel == nil {
		m.startTimer(ctx)
	}
	return ctx.EmitDown(p)
}

func (m *window) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	if p.Len() < arqHdrLen {
		ctx.Drop(p)
		return nil
	}
	hdr := p.Bytes()[:arqHdrLen]
	typ, seq := hdr[0], binary.BigEndian.Uint32(hdr[1:])
	if err := p.StripFront(arqHdrLen); err != nil {
		return err
	}
	switch typ {
	case arqAck:
		m.handleAck(ctx, seq)
		ctx.Drop(p)
		return nil
	case arqData:
		if seq == m.recvNext {
			m.recvNext++
			if err := sendAck(ctx, seq); err != nil {
				return err
			}
			return ctx.EmitUp(p)
		}
		// Out of order (go-back-N receiver has no buffer): discard and
		// re-acknowledge the last in-order packet so the sender backs up.
		if m.recvNext > 0 {
			if err := sendAck(ctx, m.recvNext-1); err != nil {
				return err
			}
		}
		ctx.Drop(p)
		return nil
	default:
		ctx.Drop(p)
		return nil
	}
}

// handleAck processes a cumulative acknowledgement of every seq <= ack.
func (m *window) handleAck(ctx *dacapo.Context, ack uint32) {
	if ack >= m.next || ack < m.base {
		return // stale or bogus
	}
	for s := m.base; s <= ack; s++ {
		if pkt, ok := m.buf[s]; ok {
			ctx.Pool().Put(pkt)
			delete(m.buf, s)
		}
	}
	m.base = ack + 1
	m.retries = 0
	if m.base == m.next {
		m.stopTimer()
	} else {
		m.startTimer(ctx)
	}
	if m.next-m.base < m.size {
		ctx.ResumeDown()
	}
}

func (m *window) HandleEvent(ctx *dacapo.Context, ev any) error {
	to, ok := ev.(winTimeout)
	if !ok || to.gen != m.timerGen || m.base == m.next {
		return nil // stale timer or nothing outstanding
	}
	m.retries++
	if m.retries > m.maxRetries {
		return fmt.Errorf("modules: window: packet %d lost after %d retries", m.base, m.maxRetries)
	}
	// Go-back-N: retransmit the whole window.
	for s := m.base; s < m.next; s++ {
		if pkt, ok := m.buf[s]; ok {
			if err := ctx.EmitDown(pkt.Clone()); err != nil {
				return err
			}
		}
	}
	m.startTimer(ctx)
	return nil
}

func (m *window) Stop(ctx *dacapo.Context) error {
	m.stopTimer()
	for s, pkt := range m.buf {
		ctx.Pool().Put(pkt)
		delete(m.buf, s)
	}
	return nil
}

func (m *window) startTimer(ctx *dacapo.Context) {
	m.stopTimer()
	m.timerGen++
	m.cancel = ctx.After(backoff(m.rto, m.retries), winTimeout{gen: m.timerGen})
}

// backoff doubles the retransmission timeout per consecutive retry (capped
// at 32x) so a congested path drains instead of being hammered into a
// timeout storm.
func backoff(base time.Duration, retries int) time.Duration {
	shift := retries
	if shift > 5 {
		shift = 5
	}
	return base << uint(shift)
}

func (m *window) stopTimer() {
	if m.cancel != nil {
		m.cancel()
		m.cancel = nil
	}
}

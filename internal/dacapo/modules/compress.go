package modules

import (
	"errors"

	"cool/internal/dacapo"
)

// rle realises the compression protocol function with PackBits run-length
// coding: worst-case expansion is 1/128 of the payload, so arbitrary data
// is safe. Down compresses, up decompresses.
type rle struct {
	dacapo.BaseModule
}

func newRLE(dacapo.Args) (dacapo.Module, error) { return &rle{}, nil }

func (m *rle) Name() string { return "rle" }

var errRLECorrupt = errors.New("modules: corrupt rle stream")

// packBits encodes src. Control byte h: 0..127 = literal run of h+1 octets;
// 129..255 = the next octet repeated 257-h times; 128 unused.
func packBits(src []byte) []byte {
	out := make([]byte, 0, len(src)+len(src)/128+1)
	i := 0
	for i < len(src) {
		// Find run length at i.
		run := 1
		for i+run < len(src) && src[i+run] == src[i] && run < 128 {
			run++
		}
		if run >= 3 {
			out = append(out, byte(257-run), src[i])
			i += run
			continue
		}
		// Literal: collect until the next run of >= 3 or 128 octets.
		start := i
		i += run
		for i < len(src) && i-start < 128 {
			run = 1
			for i+run < len(src) && src[i+run] == src[i] && run < 128 {
				run++
			}
			if run >= 3 {
				break
			}
			i += run
		}
		if i-start > 128 {
			i = start + 128
		}
		out = append(out, byte(i-start-1))
		out = append(out, src[start:i]...)
	}
	return out
}

// unpackBits decodes a packBits stream.
func unpackBits(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)*2)
	i := 0
	for i < len(src) {
		h := src[i]
		i++
		switch {
		case h <= 127:
			n := int(h) + 1
			if i+n > len(src) {
				return nil, errRLECorrupt
			}
			out = append(out, src[i:i+n]...)
			i += n
		case h >= 129:
			if i >= len(src) {
				return nil, errRLECorrupt
			}
			n := 257 - int(h)
			for j := 0; j < n; j++ {
				out = append(out, src[i])
			}
			i++
		default: // 128: no-op
		}
	}
	return out, nil
}

func (m *rle) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	p.SetPayload(packBits(p.Bytes()))
	return ctx.EmitDown(p)
}

func (m *rle) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	dec, err := unpackBits(p.Bytes())
	if err != nil {
		ctx.Drop(p)
		return nil
	}
	p.SetPayload(dec)
	return ctx.EmitUp(p)
}

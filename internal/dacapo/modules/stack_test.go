package modules_test

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/netsim"
	"cool/internal/qos"
	"cool/internal/transport"
)

// hookChannel is an in-memory transport pair whose a->b direction passes
// through a transform hook, letting tests corrupt, drop or duplicate wire
// frames deterministically.
type hookChannel struct {
	send   chan<- []byte
	recv   <-chan []byte
	hook   func([]byte) [][]byte // nil = identity
	closed chan struct{}
	once   *sync.Once
}

func newHookedPair(hook func([]byte) [][]byte) (a, b transport.Channel) {
	a2b := make(chan []byte, 1024)
	b2a := make(chan []byte, 1024)
	closed := make(chan struct{})
	once := &sync.Once{}
	return &hookChannel{send: a2b, recv: b2a, hook: hook, closed: closed, once: once},
		&hookChannel{send: b2a, recv: a2b, hook: nil, closed: closed, once: once}
}

func (c *hookChannel) WriteMessage(p []byte) error {
	frames := [][]byte{append([]byte(nil), p...)}
	if c.hook != nil {
		frames = c.hook(frames[0])
	}
	for _, f := range frames {
		select {
		case c.send <- f:
		case <-c.closed:
			return transport.ErrClosed
		}
	}
	return nil
}

func (c *hookChannel) ReadMessage() ([]byte, error) {
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.closed:
		return nil, transport.ErrClosed
	}
}

func (c *hookChannel) SetQoSParameter(p qos.Set) (qos.Set, error) { return transport.NoQoS(p) }
func (c *hookChannel) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}
func (c *hookChannel) LocalAddr() string  { return "hook:a" }
func (c *hookChannel) RemoteAddr() string { return "hook:b" }

func startStacks(t testing.TB, spec dacapo.Spec, a, b transport.Channel) (*dacapo.Runtime, *dacapo.Runtime) {
	t.Helper()
	reg := modules.NewLibrary()
	ra, err := dacapo.NewRuntime(spec, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dacapo.NewRuntime(spec, reg, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ra.Close(); rb.Close() })
	return ra, rb
}

func spec(names ...string) dacapo.Spec {
	var s dacapo.Spec
	for _, n := range names {
		s.Modules = append(s.Modules, dacapo.ModuleSpec{Name: n})
	}
	return s
}

func sendRecv(t *testing.T, ra, rb *dacapo.Runtime, msgs [][]byte) {
	t.Helper()
	go func() {
		for _, m := range msgs {
			if err := ra.Send(m); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()
	for i, want := range msgs {
		got, err := rb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: got %d octets, want %d (%q vs %q)", i, len(got), len(want), truncate(got), truncate(want))
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 16 {
		return b[:16]
	}
	return b
}

var testMessages = [][]byte{
	[]byte("alpha"),
	{},
	bytes.Repeat([]byte{0x5A}, 3000),
	[]byte{0, 1, 2, 3, 255, 254},
}

// TestStackTransparency: every single-module stack must be transparent
// end-to-end (headers added and stripped exactly).
func TestStackTransparency(t *testing.T) {
	stacks := [][]string{
		{"dummy"},
		{"parity"},
		{"crc16"},
		{"crc32"},
		{"seqnum"},
		{"xorcipher"},
		{"rle"},
		{"fragment"},
		{"irq"},
		{"window"},
		{"seqnum", "crc32"},
		{"xorcipher", "rle", "crc32"},
		{"window", "crc32"},
		{"rle", "fragment", "crc16"},
	}
	for _, names := range stacks {
		t.Run(dacapo.Spec{}.String()+joinNames(names), func(t *testing.T) {
			a, b := newHookedPair(nil)
			ra, rb := startStacks(t, spec(names...), a, b)
			sendRecv(t, ra, rb, testMessages)
		})
	}
}

func joinNames(names []string) string {
	out := ""
	for _, n := range names {
		out += "/" + n
	}
	return out
}

func TestChecksumModulesDropCorruptedFrames(t *testing.T) {
	for _, mech := range []string{"parity", "crc16", "crc32"} {
		t.Run(mech, func(t *testing.T) {
			var count int
			// Corrupt every 2nd frame's first payload octet.
			hook := func(f []byte) [][]byte {
				count++
				if count%2 == 0 && len(f) > 0 {
					f[0] ^= 0xFF
				}
				return [][]byte{f}
			}
			a, b := newHookedPair(hook)
			ra, rb := startStacks(t, spec(mech), a, b)
			go func() {
				for i := 0; i < 10; i++ {
					ra.Send([]byte{byte(i), 100})
				}
			}()
			// Only the odd frames survive.
			var got []byte
			for i := 0; i < 5; i++ {
				m, err := rb.Recv()
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, m[0])
			}
			for i, v := range got {
				if int(v)%2 != 0 {
					t.Fatalf("delivered frame %d has odd index %d (corrupted frame leaked)", i, v)
				}
			}
			stats := rb.Stats()
			if stats[0].Drops == 0 {
				t.Fatal("no drops recorded")
			}
		})
	}
}

func TestSeqNumSuppressesDuplicates(t *testing.T) {
	// Duplicate every frame on the wire.
	hook := func(f []byte) [][]byte {
		dup := append([]byte(nil), f...)
		return [][]byte{f, dup}
	}
	a, b := newHookedPair(hook)
	ra, rb := startStacks(t, spec("seqnum"), a, b)
	go func() {
		for i := 0; i < 20; i++ {
			ra.Send([]byte{byte(i)})
		}
	}()
	for i := 0; i < 20; i++ {
		got, err := rb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) {
			t.Fatalf("got %d, want %d (duplicate leaked)", got[0], i)
		}
	}
}

func TestXORCipherHidesPlaintextOnWire(t *testing.T) {
	secret := []byte("attack at dawn, attack at dawn!!")
	var wire [][]byte
	var mu sync.Mutex
	hook := func(f []byte) [][]byte {
		mu.Lock()
		wire = append(wire, append([]byte(nil), f...))
		mu.Unlock()
		return [][]byte{f}
	}
	a, b := newHookedPair(hook)
	ra, rb := startStacks(t, spec("xorcipher"), a, b)
	if err := ra.Send(secret); err != nil {
		t.Fatal(err)
	}
	got, err := rb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("decryption failed")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, f := range wire {
		if bytes.Contains(f, []byte("attack")) {
			t.Fatal("plaintext visible on the wire")
		}
	}
}

func TestFragmentReassemblesOverMTULink(t *testing.T) {
	link := netsim.NewLink(netsim.Params{MTU: 256})
	t.Cleanup(link.Close)
	a, b := link.Endpoints()
	fragSpec := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "fragment", Args: dacapo.Args{"mtu": "256"}},
	}}
	ra, rb := startStacks(t, fragSpec, a, b)
	big := make([]byte, 100_000)
	for i := range big {
		big[i] = byte(i * 13)
	}
	sendRecv(t, ra, rb, [][]byte{big, {}, []byte("small")})
}

func TestFragmentRejectsTinyMTU(t *testing.T) {
	reg := modules.NewLibrary()
	if _, err := reg.Build("fragment", dacapo.Args{"mtu": "8"}); err == nil {
		t.Fatal("mtu <= header size must be rejected")
	}
}

func TestIRQRecoversFromLoss(t *testing.T) {
	var count int
	// Drop every 3rd frame (data and ACKs alike).
	hook := func(f []byte) [][]byte {
		count++
		if count%3 == 0 {
			return nil
		}
		return [][]byte{f}
	}
	a, b := newHookedPair(hook)
	irqSpec := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "irq", Args: dacapo.Args{"rto": "10ms"}},
	}}
	ra, rb := startStacks(t, irqSpec, a, b)
	msgs := make([][]byte, 30)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i * 3)}
	}
	sendRecv(t, ra, rb, msgs)
}

func TestWindowRecoversFromLossBothDirections(t *testing.T) {
	var mu sync.Mutex
	count := 0
	hook := func(f []byte) [][]byte {
		mu.Lock()
		count++
		drop := count%5 == 0
		mu.Unlock()
		if drop {
			return nil
		}
		return [][]byte{f}
	}
	a, b := newHookedPair(hook)
	winSpec := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "window", Args: dacapo.Args{"window": "8", "rto": "10ms"}},
	}}
	ra, rb := startStacks(t, winSpec, a, b)
	msgs := make([][]byte, 100)
	for i := range msgs {
		msgs[i] = []byte{byte(i), byte(i >> 4)}
	}
	sendRecv(t, ra, rb, msgs)
}

func TestWindowGivesUpAfterMaxRetries(t *testing.T) {
	// Black hole: everything from a to b is dropped.
	hook := func(f []byte) [][]byte { return nil }
	a, b := newHookedPair(hook)
	winSpec := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "window", Args: dacapo.Args{"rto": "5ms", "retries": "3"}},
	}}
	ra, _ := startStacks(t, winSpec, a, b)
	if err := ra.Send([]byte("into the void")); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for ra.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("runtime did not fail after retry exhaustion")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestRateLimitShapesThroughput(t *testing.T) {
	a, b := newHookedPair(nil)
	// 8 Mbit/s = 1 MiB/s (approx); burst 4 KiB.
	rlSpec := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "ratelimit", Args: dacapo.Args{"kbps": "8000", "burst": "4096"}},
	}}
	ra, rb := startStacks(t, rlSpec, a, b)
	const n, size = 100, 4096 // 400 KiB total at 1000 KiB/s ~ 0.4 s
	start := time.Now()
	go func() {
		msg := make([]byte, size)
		for i := 0; i < n; i++ {
			ra.Send(msg)
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := rb.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	ideal := time.Duration(float64(n*size) / (8000.0 * 125) * float64(time.Second))
	if elapsed < ideal/2 {
		t.Fatalf("elapsed %v far below shaped time %v", elapsed, ideal)
	}
	if elapsed > ideal*3 {
		t.Fatalf("elapsed %v far above shaped time %v", elapsed, ideal)
	}
}

func TestRateLimitRequiresRate(t *testing.T) {
	reg := modules.NewLibrary()
	if _, err := reg.Build("ratelimit", nil); err == nil {
		t.Fatal("ratelimit without kbps must fail")
	}
}

func TestLibraryNames(t *testing.T) {
	reg := modules.NewLibrary()
	for _, want := range []string{"dummy", "parity", "crc16", "crc32", "seqnum", "xorcipher", "rle", "fragment", "irq", "window", "ratelimit"} {
		if !reg.Has(want) {
			t.Errorf("library missing %q", want)
		}
	}
	if len(reg.Names()) != 11 {
		t.Errorf("names = %v", reg.Names())
	}
}

// Property: arbitrary payloads survive a representative composite stack.
func TestQuickCompositeStackTransparency(t *testing.T) {
	a, b := newHookedPair(nil)
	composite := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "xorcipher"},
		{Name: "rle"},
		{Name: "seqnum"},
		{Name: "fragment", Args: dacapo.Args{"mtu": "512"}},
		{Name: "crc32"},
	}}
	ra, rb := startStacks(t, composite, a, b)
	f := func(payload []byte) bool {
		if err := ra.Send(payload); err != nil {
			return false
		}
		got, err := rb.Recv()
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package dacapo_test

import (
	"strings"
	"testing"
	"testing/quick"

	"cool/internal/cdr"
	"cool/internal/dacapo"
)

// Property: any spec survives the signalling encoding — the guarantee the
// connection manager relies on when shipping configurations to the peer.
func TestQuickSpecRoundTrip(t *testing.T) {
	clean := func(s string) string { return strings.ReplaceAll(s, "\x00", "") }
	f := func(raw []struct {
		Name string
		K, V string
	}) bool {
		var spec dacapo.Spec
		for _, r := range raw {
			m := dacapo.ModuleSpec{Name: clean(r.Name)}
			if r.K != "" {
				m.Args = dacapo.Args{clean(r.K): clean(r.V)}
			}
			spec.Modules = append(spec.Modules, m)
		}
		enc := cdr.NewEncoder(cdr.BigEndian)
		spec.Encode(enc)
		got, err := dacapo.DecodeSpec(cdr.NewDecoder(enc.Bytes(), cdr.BigEndian))
		return err == nil && got.Equal(spec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: DecodeSpec never panics on garbage.
func TestQuickDecodeSpecNeverPanics(t *testing.T) {
	f := func(data []byte, little bool) bool {
		dacapo.DecodeSpec(cdr.NewDecoder(data, little))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

package dacapo

import (
	"sync"
	"sync/atomic"

	"cool/internal/obs"
	"cool/internal/qos"
)

// batchObserver is an atomically swappable histogram slot: runtimes start
// uninstrumented (nil) and the monitor arms the slot after bring-up and
// after every reconfiguration splice, without racing the executors.
type batchObserver = atomic.Pointer[obs.Histogram]

// batchSizeBuckets are the bounds for the per-stage batch-size
// histograms: powers of two up to the boundary-queue burst ceiling.
func batchSizeBuckets() []uint64 {
	return []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// segCounts remembers a runtime's segment split for gauge bookkeeping.
type segCounts struct {
	inline   int
	threaded int
}

// monitor is a Manager's observability wiring: admission counters and
// events, the active-connection and segment gauges, per-stage batch-size
// histograms, reconfiguration counters, and a snapshot-time collector
// aggregating per-module packet/byte stats over live and closed runtimes.
// A nil *monitor (uninstrumented manager) is valid; every method no-ops on
// it.
type monitor struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	accepted    *obs.Counter
	active      *obs.Gauge
	segInline   *obs.Gauge
	segThreaded *obs.Gauge

	mu     sync.Mutex
	live   map[*Runtime]segCounts
	totals map[string]ModuleStats // closed-runtime stats, keyed by module name
	// closed-runtime reconfiguration totals (started, completed, aborted)
	rcClosed [3]uint64
}

// Instrument connects the manager to an ORB's metric registry and tracer.
// Call it once, before traffic (typically right after NewManager); the
// manager then reports admission decisions, the active-connection gauge,
// selected module stacks, and live per-module counters through them.
func (m *Manager) Instrument(reg *obs.Registry, tracer *obs.Tracer) {
	mon := &monitor{
		reg:         reg,
		tracer:      tracer,
		accepted:    reg.Counter("dacapo.admission.accepted"),
		active:      reg.Gauge("dacapo.conns.active"),
		segInline:   reg.Gauge("dacapo.segments.inline"),
		segThreaded: reg.Gauge("dacapo.segments.threaded"),
		live:        make(map[*Runtime]segCounts),
		totals:      make(map[string]ModuleStats),
	}
	reg.RegisterCollector(mon.collect)
	m.mon = mon
}

// connected records a successful admission (side is "dial" or "accept"):
// the accepted counter, the per-stack counter, the active and segment
// gauges, the live runtime for the module-stat collector, batch-size
// instrumentation, and an admission event.
func (mon *monitor) connected(rt *Runtime, side string) {
	if mon == nil || rt == nil {
		return
	}
	spec := rt.Spec().String()
	mon.accepted.Inc()
	mon.reg.Counter("dacapo.stack.selected{stack=" + spec + "}").Inc()
	mon.active.Inc()
	seg := segCounts{}
	seg.inline, seg.threaded = rt.Segments()
	mon.segInline.Add(int64(seg.inline))
	mon.segThreaded.Add(int64(seg.threaded))
	mon.mu.Lock()
	mon.live[rt] = seg
	mon.mu.Unlock()
	mon.instrumentBatches(rt)
	mon.tracer.Emit(obs.Event{
		Kind:    "dacapo.admission",
		Name:    spec,
		Outcome: "accept",
		Detail:  side,
	})
}

// instrumentBatches arms the runtime's batch-size histogram slots — the
// wire flush and every stage — and re-arms the stage slots across
// reconfiguration splices (new generations start unarmed).
func (mon *monitor) instrumentBatches(rt *Runtime) {
	rt.wireHist.Store(mon.reg.Histogram("dacapo.batch.size{stage=wire}", batchSizeBuckets()))
	mon.armStageHists(rt)
	rt.OnReconfigured(func(Spec, qos.Set) { mon.armStageHists(rt) })
}

func (mon *monitor) armStageHists(rt *Runtime) {
	rt.statsLock.Lock()
	stages := rt.statsStages
	rt.statsLock.Unlock()
	for _, s := range stages {
		// Only blocking stages have boundary queues, and only pumps observe
		// batch intake — inline stages run packets to completion with no
		// batch to measure (the wire flush histogram covers their output).
		// Registering a series for them would just publish a dead zero.
		if !s.blocking {
			continue
		}
		// One registration per stage per generation, not per observation;
		// the name call is hoisted so the registry argument stays a pure
		// concatenation.
		stageName := s.mod.Name()
		h := mon.reg.Histogram("dacapo.batch.size{stage="+stageName+"}", batchSizeBuckets())
		s.ctx.batchHist.Store(h)
	}
}

// rejected records a failed admission under a coarse reason: "qos" (no
// feasible configuration / negotiation failure), "budget" (resource
// manager refused), "spec" (peer proposed an invalid configuration),
// "peer" (responder rejected our proposal), "transport" (underlying
// connection failed).
func (mon *monitor) rejected(reason string, err error) {
	if mon == nil {
		return
	}
	mon.reg.Counter("dacapo.admission.rejected{reason=" + reason + "}").Inc()
	detail := ""
	if err != nil && mon.tracer.Enabled() {
		detail = err.Error()
	}
	mon.tracer.Emit(obs.Event{
		Kind:    "dacapo.admission",
		Name:    reason,
		Outcome: "reject",
		Detail:  detail,
	})
}

// untrack retires a runtime: its final module stats and reconfiguration
// counts fold into the closed totals so collector output stays monotonic
// across connection churn.
func (mon *monitor) untrack(rt *Runtime) {
	if mon == nil || rt == nil {
		return
	}
	mon.mu.Lock()
	seg, ok := mon.live[rt]
	if !ok {
		mon.mu.Unlock()
		return
	}
	delete(mon.live, rt)
	for _, s := range rt.Stats() {
		t := mon.totals[s.Name]
		t.Name = s.Name
		t.DownPackets += s.DownPackets
		t.DownBytes += s.DownBytes
		t.UpPackets += s.UpPackets
		t.UpBytes += s.UpBytes
		t.Drops += s.Drops
		mon.totals[s.Name] = t
	}
	started, completed, aborted := rt.ReconfigCounts()
	mon.rcClosed[0] += started
	mon.rcClosed[1] += completed
	mon.rcClosed[2] += aborted
	mon.mu.Unlock()
	mon.active.Dec()
	mon.segInline.Add(-int64(seg.inline))
	mon.segThreaded.Add(-int64(seg.threaded))
}

// collect emits the per-module packet/byte counters (closed-runtime totals
// plus a live snapshot of every open runtime) and the reconfiguration
// counters.
func (mon *monitor) collect(emit func(name string, value uint64)) {
	mon.mu.Lock()
	agg := make(map[string]ModuleStats, len(mon.totals))
	for name, s := range mon.totals {
		agg[name] = s
	}
	rcStarted, rcCompleted, rcAborted := mon.rcClosed[0], mon.rcClosed[1], mon.rcClosed[2]
	for rt := range mon.live {
		for _, s := range rt.Stats() {
			t := agg[s.Name]
			t.Name = s.Name
			t.DownPackets += s.DownPackets
			t.DownBytes += s.DownBytes
			t.UpPackets += s.UpPackets
			t.UpBytes += s.UpBytes
			t.Drops += s.Drops
			agg[s.Name] = t
		}
		s, c, a := rt.ReconfigCounts()
		rcStarted += s
		rcCompleted += c
		rcAborted += a
	}
	mon.mu.Unlock()
	for name, s := range agg {
		label := "{module=" + name + "}"
		emit("dacapo.module.down_packets"+label, s.DownPackets)
		emit("dacapo.module.down_bytes"+label, s.DownBytes)
		emit("dacapo.module.up_packets"+label, s.UpPackets)
		emit("dacapo.module.up_bytes"+label, s.UpBytes)
		emit("dacapo.module.drops"+label, s.Drops)
	}
	emit("dacapo.reconfig.started", rcStarted)
	emit("dacapo.reconfig.completed", rcCompleted)
	emit("dacapo.reconfig.aborted", rcAborted)
}

package dacapo

import (
	"sync"

	"cool/internal/obs"
)

// monitor is a Manager's observability wiring: admission counters and
// events, the active-connection gauge, the per-connection stack counter,
// and a snapshot-time collector aggregating per-module packet/byte stats
// over live and closed runtimes. A nil *monitor (uninstrumented manager)
// is valid; every method no-ops on it.
type monitor struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	accepted *obs.Counter
	active   *obs.Gauge

	mu     sync.Mutex
	live   map[*Runtime]struct{}
	totals map[string]ModuleStats // closed-runtime stats, keyed by module name
}

// Instrument connects the manager to an ORB's metric registry and tracer.
// Call it once, before traffic (typically right after NewManager); the
// manager then reports admission decisions, the active-connection gauge,
// selected module stacks, and live per-module counters through them.
func (m *Manager) Instrument(reg *obs.Registry, tracer *obs.Tracer) {
	mon := &monitor{
		reg:      reg,
		tracer:   tracer,
		accepted: reg.Counter("dacapo.admission.accepted"),
		active:   reg.Gauge("dacapo.conns.active"),
		live:     make(map[*Runtime]struct{}),
		totals:   make(map[string]ModuleStats),
	}
	reg.RegisterCollector(mon.collect)
	m.mon = mon
}

// connected records a successful admission (side is "dial" or "accept"):
// the accepted counter, the per-stack counter, the active gauge, the live
// runtime for the module-stat collector, and an admission event.
func (mon *monitor) connected(rt *Runtime, side string) {
	if mon == nil || rt == nil {
		return
	}
	spec := rt.Spec().String()
	mon.accepted.Inc()
	mon.reg.Counter("dacapo.stack.selected{stack=" + spec + "}").Inc()
	mon.active.Inc()
	mon.mu.Lock()
	mon.live[rt] = struct{}{}
	mon.mu.Unlock()
	mon.tracer.Emit(obs.Event{
		Kind:    "dacapo.admission",
		Name:    spec,
		Outcome: "accept",
		Detail:  side,
	})
}

// rejected records a failed admission under a coarse reason: "qos" (no
// feasible configuration / negotiation failure), "budget" (resource
// manager refused), "spec" (peer proposed an invalid configuration),
// "peer" (responder rejected our proposal), "transport" (underlying
// connection failed).
func (mon *monitor) rejected(reason string, err error) {
	if mon == nil {
		return
	}
	mon.reg.Counter("dacapo.admission.rejected{reason=" + reason + "}").Inc()
	detail := ""
	if err != nil && mon.tracer.Enabled() {
		detail = err.Error()
	}
	mon.tracer.Emit(obs.Event{
		Kind:    "dacapo.admission",
		Name:    reason,
		Outcome: "reject",
		Detail:  detail,
	})
}

// untrack retires a runtime: its final module stats fold into the closed
// totals so collector output stays monotonic across connection churn.
func (mon *monitor) untrack(rt *Runtime) {
	if mon == nil || rt == nil {
		return
	}
	mon.mu.Lock()
	if _, ok := mon.live[rt]; !ok {
		mon.mu.Unlock()
		return
	}
	delete(mon.live, rt)
	for _, s := range rt.Stats() {
		t := mon.totals[s.Name]
		t.Name = s.Name
		t.DownPackets += s.DownPackets
		t.DownBytes += s.DownBytes
		t.UpPackets += s.UpPackets
		t.UpBytes += s.UpBytes
		t.Drops += s.Drops
		mon.totals[s.Name] = t
	}
	mon.mu.Unlock()
	mon.active.Dec()
}

// collect emits the per-module packet/byte counters: closed-runtime totals
// plus a live snapshot of every open runtime.
func (mon *monitor) collect(emit func(name string, value uint64)) {
	mon.mu.Lock()
	agg := make(map[string]ModuleStats, len(mon.totals))
	for name, s := range mon.totals {
		agg[name] = s
	}
	for rt := range mon.live {
		for _, s := range rt.Stats() {
			t := agg[s.Name]
			t.Name = s.Name
			t.DownPackets += s.DownPackets
			t.DownBytes += s.DownBytes
			t.UpPackets += s.UpPackets
			t.UpBytes += s.UpBytes
			t.Drops += s.Drops
			agg[s.Name] = t
		}
	}
	mon.mu.Unlock()
	for name, s := range agg {
		label := "{module=" + name + "}"
		emit("dacapo.module.down_packets"+label, s.DownPackets)
		emit("dacapo.module.down_bytes"+label, s.DownBytes)
		emit("dacapo.module.up_packets"+label, s.UpPackets)
		emit("dacapo.module.up_bytes"+label, s.UpBytes)
		emit("dacapo.module.drops"+label, s.Drops)
	}
}

package dacapo

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Direction of a packet through the stack.
type Direction int

// Packet directions.
const (
	// Down moves from the application (A) toward the transport (T):
	// modules add their protocol headers.
	Down Direction = iota + 1
	// Up moves from the transport toward the application: modules parse
	// and strip their headers.
	Up
)

func (d Direction) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// Module is one protocol mechanism in a module graph: the unified module
// interface that "allows free and unconstrained combination of modules to
// protocols" (§5.1).
//
// Handlers receive packets and either forward them (ctx.EmitDown/EmitUp),
// absorb them (ACKs, duplicates), or emit additional ones (retransmissions,
// fragments).
//
// Execution contract. By default a module is scheduled *inline*: its
// HandleDown runs run-to-completion on the down-direction executor (the
// sender, or the pump of the nearest blocking module above) and its
// HandleUp on the up-direction executor (the receiver, or the pump of the
// nearest blocking module below). Per direction, handlers never run
// concurrently — but HandleDown and HandleUp of the *same* inline module
// may, so inline modules must keep their down-state and up-state in
// disjoint fields, must not block, and must not use PauseDown/After/Post
// (the runtime panics if they do). An inline module must also never
// EmitDown from its up path. Down-direction packets may wrap borrowed
// caller memory and must never be retained past handler return — in-place
// payload transforms go through Packet.WritableBytes/SetPayload, which
// migrate borrowed memory before writing;
// up-direction packets are pool-owned and may be retained (reassembly)
// as long as Stop releases whatever is still held.
//
// A module that needs any of those — flow-control pauses, timers, posted
// events, down-emission from the up path (ACKs) — declares it by
// implementing Blocker. Blocking modules keep the classic threaded
// scheduling: a dedicated pump goroutine owns both directions plus events,
// so their handlers never run concurrently at all and need no internal
// locking. The runtime splits the module graph into inline segments at
// blocking-module boundaries; packet batches flow across the boundaries.
type Module interface {
	// Name returns the mechanism name this instance was built from.
	Name() string
	// Start runs before any packet is handled (synchronously during
	// Runtime.Start, before any executor is live).
	Start(ctx *Context) error
	// HandleDown processes a packet moving toward the transport.
	HandleDown(ctx *Context, p *Packet) error
	// HandleUp processes a packet moving toward the application.
	HandleUp(ctx *Context, p *Packet) error
	// HandleEvent processes a timer or control event posted via
	// ctx.After or ctx.Post (blocking modules only).
	HandleEvent(ctx *Context, ev any) error
	// Stop runs during shutdown, after all executors have quiesced.
	Stop(ctx *Context) error
}

// Blocker marks a Module that needs threaded scheduling: it pauses intake
// (PauseDown), arms timers (After), posts events (Post), or emits
// down-direction packets from its up path. The runtime gives each such
// module a pump goroutine of its own and splits the surrounding graph
// into inline segments at its boundaries.
type Blocker interface {
	Module
	// Blocking is a marker; implementations do nothing.
	Blocking()
}

// BaseModule provides no-op implementations of the optional Module methods;
// embed it to implement only what a mechanism needs.
type BaseModule struct{}

// Start implements Module.
func (BaseModule) Start(*Context) error { return nil }

// HandleEvent implements Module.
func (BaseModule) HandleEvent(*Context, any) error { return nil }

// Stop implements Module.
func (BaseModule) Stop(*Context) error { return nil }

// ErrStopped is returned by Context emit functions once the runtime is
// shutting down.
var ErrStopped = errors.New("dacapo: runtime stopped")

// Context is a module's interface to the runtime: its position in the
// graph, the continuation to the neighbour modules, and (for blocking
// modules) its timer facility.
type Context struct {
	rt  *Runtime
	idx int
	// stages is the generation of the module graph this context belongs
	// to; a mid-stream reconfiguration splices in a new generation with
	// fresh contexts, so packets in flight finish on the graph they
	// entered.
	stages []*stage
	// threaded reports pump scheduling (Blocker modules).
	threaded bool
	// downEx/upEx are the executors that run this module's handlers in
	// each direction; emissions gather into the executor's batch buffers.
	downEx, upEx *executor

	// downPaused suspends intake of packets from the module above; it is
	// read and written only on the module's pump goroutine.
	downPaused bool

	// batchHist, when instrumented, observes the size of packet batches
	// handed to this module's pump.
	batchHist batchObserver

	// stats are written by the executing goroutine and snapshotted by
	// Runtime.Stats from other goroutines, hence the atomics.
	downPkts, downBytes uint64
	upPkts, upBytes     uint64
	drops               uint64
}

// PauseDown stops the runtime from delivering further down-direction
// packets to this module until ResumeDown. Used by flow-control modules
// whose send window is full. Must be called from a handler of a blocking
// module.
func (c *Context) PauseDown() {
	c.mustBlock("PauseDown")
	c.downPaused = true
}

// ResumeDown re-enables down-direction intake. Must be called from a
// handler.
func (c *Context) ResumeDown() { c.downPaused = false }

func (c *Context) mustBlock(op string) {
	if !c.threaded {
		panic("dacapo: inline module " + c.rt.moduleName(c) + " called Context." + op +
			"; declare Blocking() to get threaded scheduling")
	}
}

// EmitDown hands a packet to the next module toward the transport (or to
// the transport itself from the lowest module). It blocks for backpressure
// and fails with ErrStopped during shutdown.
func (c *Context) EmitDown(p *Packet) error {
	atomic.AddUint64(&c.downPkts, 1)
	atomic.AddUint64(&c.downBytes, uint64(p.Len()))
	return c.rt.downFrom(c.stages, c.idx+1, p, c.downEx)
}

// EmitUp hands a packet to the next module toward the application (or to
// the application's receive queue from the topmost module).
func (c *Context) EmitUp(p *Packet) error {
	atomic.AddUint64(&c.upPkts, 1)
	atomic.AddUint64(&c.upBytes, uint64(p.Len()))
	return c.rt.upFrom(c.stages, c.idx-1, p, c.upEx)
}

// Drop records an absorbed packet (failed checksum, duplicate, ACK).
func (c *Context) Drop(p *Packet) {
	atomic.AddUint64(&c.drops, 1)
	putPacket(p)
}

// After schedules ev for delivery to this module's HandleEvent after d.
// The returned stop function cancels the timer (best effort). Blocking
// modules only.
func (c *Context) After(d time.Duration, ev any) (stop func()) {
	c.mustBlock("After")
	t := time.AfterFunc(d, func() { c.rt.postEvent(c, ev) })
	return func() { t.Stop() }
}

// Post delivers ev to this module's HandleEvent asynchronously. Blocking
// modules only.
func (c *Context) Post(ev any) {
	c.mustBlock("Post")
	c.rt.postEvent(c, ev)
}

// Pool returns the shared packet pool.
func (c *Context) Pool() *Pool { return &sharedPool }

// Factory builds a module instance from its spec arguments.
type Factory func(args Args) (Module, error)

// Args carries the string key/value arguments of a ModuleSpec.
type Args map[string]string

// Int returns the integer argument for key, or def when absent.
func (a Args) Int(key string, def int) (int, error) {
	s, ok := a[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("dacapo: argument %q: %w", key, err)
	}
	return v, nil
}

// Duration returns the duration argument for key, or def when absent.
func (a Args) Duration(key string, def time.Duration) (time.Duration, error) {
	s, ok := a[key]
	if !ok {
		return def, nil
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("dacapo: argument %q: %w", key, err)
	}
	return v, nil
}

// Registry maps mechanism names to factories — the module library the
// configuration manager draws from.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds a mechanism; it panics on duplicates, which indicate a
// programming error during library assembly.
func (r *Registry) Register(name string, f Factory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		panic("dacapo: duplicate module mechanism " + name)
	}
	r.factories[name] = f
}

// Build instantiates a mechanism by name.
func (r *Registry) Build(name string, args Args) (Module, error) {
	r.mu.RLock()
	f, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dacapo: unknown module mechanism %q", name)
	}
	return f(args)
}

// Has reports whether a mechanism is registered.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.factories[name]
	return ok
}

// Names lists registered mechanisms, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

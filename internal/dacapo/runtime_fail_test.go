package dacapo_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
)

// failModule fails in a configurable handler.
type failModule struct {
	dacapo.BaseModule
	failStart bool
	failDown  bool
}

func (m *failModule) Name() string { return "failer" }

func (m *failModule) Start(*dacapo.Context) error {
	if m.failStart {
		return errors.New("start exploded")
	}
	return nil
}

func (m *failModule) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	if m.failDown {
		return errors.New("down exploded")
	}
	return ctx.EmitDown(p)
}

func (m *failModule) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	return ctx.EmitUp(p)
}

// eventModule forwards packets and records events. It uses After/Post, so
// it declares Blocking to get threaded scheduling.
type eventModule struct {
	dacapo.BaseModule
	events chan any
}

func (m *eventModule) Name() string { return "eventer" }

func (m *eventModule) Blocking() {}

func (m *eventModule) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error {
	return ctx.EmitDown(p)
}

func (m *eventModule) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error {
	return ctx.EmitUp(p)
}

func (m *eventModule) Start(ctx *dacapo.Context) error {
	ctx.After(time.Millisecond, "tick")
	ctx.Post("posted")
	return nil
}

func (m *eventModule) HandleEvent(ctx *dacapo.Context, ev any) error {
	select {
	case m.events <- ev:
	default:
	}
	return nil
}

func failRegistry(m dacapo.Module) *dacapo.Registry {
	reg := dacapo.NewRegistry()
	reg.Register(m.(interface{ Name() string }).Name(), func(dacapo.Args) (dacapo.Module, error) {
		return m, nil
	})
	return reg
}

func TestModuleStartFailureKillsRuntime(t *testing.T) {
	a, b := pipePair(t)
	defer b.Close()
	reg := failRegistry(&failModule{failStart: true})
	rt, err := dacapo.NewRuntime(dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "failer"}}}, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	// Start hooks run synchronously before any executor is live, so the
	// failure surfaces immediately and poisons the runtime.
	if err := rt.Start(); err == nil || !strings.Contains(err.Error(), "start exploded") {
		t.Fatalf("Start() = %v, want start failure", err)
	}
	if err := rt.Send([]byte("x")); err == nil {
		t.Fatal("Send succeeded on a runtime whose Start failed")
	}
	if err := rt.Err(); err == nil || !strings.Contains(err.Error(), "start exploded") {
		t.Fatalf("Err() = %v", err)
	}
}

func TestModuleHandlerFailureSurfacesInErr(t *testing.T) {
	a, b := pipePair(t)
	defer b.Close()
	reg := failRegistry(&failModule{failDown: true})
	rt, err := dacapo.NewRuntime(dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "failer"}}}, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.Send([]byte("boom"))
	deadline := time.After(2 * time.Second)
	for rt.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("handler failure not recorded")
		case <-time.After(time.Millisecond):
		}
	}
	if !strings.Contains(rt.Err().Error(), "down exploded") {
		t.Fatalf("Err() = %v", rt.Err())
	}
}

func TestTimerAndPostedEventsReachModule(t *testing.T) {
	a, b := pipePair(t)
	defer b.Close()
	em := &eventModule{events: make(chan any, 4)}
	reg := failRegistry(em)
	rt, err := dacapo.NewRuntime(dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "eventer"}}}, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	got := map[string]bool{}
	deadline := time.After(2 * time.Second)
	for len(got) < 2 {
		select {
		case ev := <-em.events:
			got[ev.(string)] = true
		case <-deadline:
			t.Fatalf("events = %v", got)
		}
	}
	if !got["tick"] || !got["posted"] {
		t.Fatalf("events = %v", got)
	}
}

func TestRuntimeCloseIsIdempotentAndErrNilOnCleanClose(t *testing.T) {
	ra, rb := startPair(t, dummies(2))
	if err := ra.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.Recv(); err != nil {
		t.Fatal(err)
	}
	ra.Close()
	ra.Close()
	if err := ra.Err(); err != nil {
		t.Fatalf("clean close recorded error: %v", err)
	}
}

func TestStatsCountDrops(t *testing.T) {
	// parity module drops corrupted frames; inject one raw corrupt frame.
	a, b := pipePair(t)
	reg := modules.NewLibrary()
	spec := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "parity"}}}
	rt, err := dacapo.NewRuntime(spec, reg, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// The inline receive path is caller-driven: a Recv must be in flight
	// for the corrupt frame to reach the module and be dropped.
	go rt.Recv()
	// Write a frame with a bad parity octet directly.
	if err := a.WriteMessage([]byte{1, 2, 3, 0xEE}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		stats := rt.Stats()
		if stats[0].Drops == 1 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("stats = %+v", stats)
		case <-time.After(time.Millisecond):
		}
	}
}

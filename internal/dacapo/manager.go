package dacapo

import (
	"errors"
	"fmt"
	"sync"

	"cool/internal/qos"
	"cool/internal/transport"
)

// Manager plugs Da CaPo into COOL's generic transport layer as the third
// transport alternative (paper Figure 7, alternative (i)): GIOP-formatted
// messages from the message layer are carried through a dynamically
// configured module stack over an underlying T service.
//
// The T service is any other transport.Manager (tcp, inproc, or a
// netsim-backed one); Da CaPo runs its protocol configuration on top of the
// channels that manager provides.
type Manager struct {
	inner transport.Manager
	reg   *Registry
	rm    *ResourceManager
	// linkCap is the raw capability of the underlying T service used for
	// configuration and admission decisions.
	linkCap qos.Capability
	// mon is the observability wiring (nil until Instrument is called).
	mon *monitor
}

var _ transport.Manager = (*Manager)(nil)

// NewManager wraps the inner transport with Da CaPo. reg is the module
// library, rm the endpoint's resource budget (may be shared between
// listeners and dialers), linkCap the raw capability of the network the
// inner transport traverses.
func NewManager(inner transport.Manager, reg *Registry, rm *ResourceManager, linkCap qos.Capability) *Manager {
	return &Manager{inner: inner, reg: reg, rm: rm, linkCap: linkCap}
}

// Scheme returns "dacapo".
func (m *Manager) Scheme() string { return "dacapo" }

// Capability reports what a configured Da CaPo stack can deliver over this
// manager's link: the link's raw throughput/latency/jitter plus the
// protocol functions the module library can add (reliability, ordering,
// confidentiality).
func (m *Manager) Capability() qos.Capability {
	c := make(qos.Capability, len(m.linkCap)+3)
	for t, l := range m.linkCap {
		c[t] = l
	}
	c[qos.Reliability] = qos.Limit{Best: 0, Supported: true}
	c[qos.Ordering] = qos.Limit{Best: 1, Supported: true}
	c[qos.Confidentiality] = qos.Limit{Best: 1, Supported: true}
	if _, ok := c[qos.Priority]; !ok {
		c[qos.Priority] = qos.Limit{Best: 255, Supported: true}
	}
	return c
}

// Dial connects to a Da CaPo listener. The returned channel starts
// unconfigured: the first SetQoSParameter (or the first write, with an
// empty requirement) performs configuration and peer signalling. A later
// SetQoSParameter with different requirements reconfigures by establishing
// a fresh connection — the paper's "changes in QoS requirements have to be
// reflected in reconfigurations of the transport connection" (§4.1).
func (m *Manager) Dial(addr string) (transport.Channel, error) {
	return &qchannel{mgr: m, addr: addr}, nil
}

// Listen binds a listener on the inner transport; each accepted connection
// performs the responder side of configuration signalling before it is
// returned.
func (m *Manager) Listen(addr string) (transport.Listener, error) {
	inner, err := m.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &qlistener{mgr: m, inner: inner}, nil
}

type qlistener struct {
	mgr   *Manager
	inner transport.Listener
}

func (l *qlistener) Accept() (transport.Channel, error) {
	ch, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	// The channel exists before the handshake so mid-stream
	// reconfiguration callbacks registered during acceptOne can swap its
	// reservation once a splice completes.
	qc := &qchannel{mgr: l.mgr}
	rt, granted, res, err := l.acceptOne(ch, qc)
	if err != nil {
		// A single bad handshake must not kill the accept loop; report it
		// as a channel-level error by retrying is the server loop's call.
		return nil, err
	}
	qc.mu.Lock()
	qc.rt, qc.granted, qc.res = rt, granted, res
	qc.mu.Unlock()
	l.mgr.mon.connected(rt, "accept")
	return qc, nil
}

func (l *qlistener) acceptOne(ch transport.Channel, qc *qchannel) (*Runtime, qos.Set, *Reservation, error) {
	var pendingRes *Reservation
	rejectReason := ""
	policy := func(spec Spec, requested qos.Set) (qos.Set, error) {
		// Unilateral transport-level admission: grant what the link plus
		// the proposed protocol can deliver — degraded to the remaining
		// resource budget when the requester's range allows — then
		// reserve.
		capability := l.mgr.Capability()
		if l.mgr.rm != nil {
			if avail, limited := l.mgr.rm.Available(); limited {
				tl := capability[qos.Throughput]
				if !tl.Supported || tl.Best > avail {
					capability[qos.Throughput] = qos.Limit{Best: avail, Supported: true}
				}
			}
		}
		granted, err := qos.Negotiate(requested, capability)
		if err != nil {
			rejectReason = "qos"
			return nil, err
		}
		if l.mgr.rm != nil {
			res, err := l.mgr.rm.Reserve(granted)
			if err != nil {
				rejectReason = "budget"
				return nil, err
			}
			pendingRes = res
		}
		return granted, nil
	}
	rt, granted, err := Accept(ch, l.mgr.reg, policy)
	if err != nil {
		if pendingRes != nil {
			pendingRes.Release()
		}
		if rejectReason == "" {
			if errors.Is(err, ErrRejected) {
				rejectReason = "spec"
			} else {
				rejectReason = "transport"
			}
		}
		l.mgr.mon.rejected(rejectReason, err)
		return nil, nil, nil, err
	}
	res := pendingRes
	pendingRes = nil
	// Mid-stream reconfigurations run the same admission policy; a
	// completed splice swaps in the reservation that policy made. Policy
	// and callback both run on the reader goroutine, so pendingRes needs
	// no lock. (A proposal that fails after the policy granted leaks its
	// reservation until Close — accepted skew on a rare failure path.)
	rt.OnReconfigured(func(_ Spec, g qos.Set) {
		nres := pendingRes
		pendingRes = nil
		qc.mu.Lock()
		old := qc.res
		qc.res = nres
		qc.granted = g.Clone()
		qc.mu.Unlock()
		if old != nil {
			old.Release()
		}
	})
	return rt, granted, res, nil
}

func (l *qlistener) Addr() string { return l.inner.Addr() }
func (l *qlistener) Close() error { return l.inner.Close() }

// qchannel is a Da CaPo-backed transport.Channel. On the dial side it is
// lazily configured; on the accept side it arrives configured.
type qchannel struct {
	mgr  *Manager
	addr string // dial side only

	mu      sync.Mutex
	rt      *Runtime
	granted qos.Set
	applied qos.Set
	res     *Reservation
	closed  bool
}

// configureLocked (re)establishes the connection for the given
// requirements. The previous runtime, if any, is returned for the caller
// to retire with c.retire AFTER releasing c.mu: Runtime.Close waits for
// the module goroutines to drain, which must not happen under the
// channel lock (coollint: lockhold).
func (c *qchannel) configureLocked(params qos.Set) (retired *Runtime, err error) {
	if c.addr == "" {
		// Accept-side channels cannot redial; reconfiguration happens by
		// the client opening a new connection.
		return nil, fmt.Errorf("dacapo: cannot reconfigure an accepted connection")
	}
	spec, granted, err := Configure(params, c.mgr.linkCap)
	if err != nil {
		c.mgr.mon.rejected("qos", err)
		return nil, err
	}
	var res *Reservation
	if c.mgr.rm != nil {
		res, err = c.mgr.rm.Reserve(granted)
		if err != nil {
			c.mgr.mon.rejected("budget", err)
			return nil, err
		}
	}
	inner, err := c.mgr.inner.Dial(c.addr)
	if err != nil {
		if res != nil {
			res.Release()
		}
		c.mgr.mon.rejected("transport", err)
		return nil, err
	}
	rt, remoteGranted, err := Connect(inner, c.mgr.reg, spec, granted)
	if err != nil {
		if res != nil {
			res.Release()
		}
		c.mgr.mon.rejected("peer", err)
		return nil, err
	}
	// Hand the previous configuration to the caller for teardown.
	retired = c.rt
	if c.res != nil {
		c.res.Release()
	}
	c.rt = rt
	c.granted = remoteGranted
	c.applied = params.Clone()
	c.res = res
	c.mgr.mon.connected(rt, "dial")
	return retired, nil
}

// retire tears down a runtime returned by configureLocked. Must be called
// without c.mu held: Close blocks on the module goroutines.
func (c *qchannel) retire(rt *Runtime) {
	if rt == nil {
		return
	}
	rt.Close()
	c.mgr.mon.untrack(rt)
}

func (c *qchannel) ensureLocked() (retired *Runtime, err error) {
	if c.closed {
		return nil, transport.ErrClosed
	}
	if c.rt == nil {
		return c.configureLocked(nil)
	}
	return nil, nil
}

// SetQoSParameter performs Da CaPo's part of the unilateral negotiation:
// map the requirements to a protocol configuration and resources, or fail.
// On a running connection it first attempts a mid-stream reconfiguration —
// the control-plane splice that renegotiates the module graph without
// tearing the transport down — and falls back to redialling when the
// splice is unsupported (blocking modules), rejected, or the runtime is
// poisoned. It returns the granted set.
func (c *qchannel) SetQoSParameter(params qos.Set) (qos.Set, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if c.rt != nil && c.applied.Equal(params) {
		granted := c.granted.Clone() // unchanged: keep the connection
		c.mu.Unlock()
		return granted, nil
	}
	rt := c.rt
	c.mu.Unlock()
	if rt != nil && c.addr != "" {
		if granted, ok := c.reconfigureInPlace(rt, params); ok {
			return granted, nil
		}
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, transport.ErrClosed
	}
	retired, err := c.configureLocked(params) //coollint:allow lockhold -- the only Close reachable here tears down a freshly dialled runtime on its own failure path; nothing it waits on takes c.mu
	var granted qos.Set
	if err == nil {
		granted = c.granted.Clone()
	}
	c.mu.Unlock()
	c.retire(retired)
	if err != nil {
		return nil, err
	}
	return granted, nil
}

// reconfigureInPlace attempts the control-plane splice on a running
// connection. ok=false means the caller should fall back to redialling:
// unsupported (blocking modules on either side), busy, rejected by the
// peer, or the runtime already poisoned — configureLocked replaces a
// poisoned runtime the same way it replaces an outgrown one.
func (c *qchannel) reconfigureInPlace(rt *Runtime, params qos.Set) (qos.Set, bool) {
	spec, granted, err := Configure(params, c.mgr.linkCap)
	if err != nil {
		return nil, false
	}
	var res *Reservation
	if c.mgr.rm != nil {
		if res, err = c.mgr.rm.Reserve(granted); err != nil {
			return nil, false
		}
	}
	remote, err := rt.Reconfigure(spec, granted)
	if err != nil {
		if res != nil {
			res.Release()
		}
		return nil, false
	}
	c.mu.Lock()
	if c.closed || c.rt != rt {
		c.mu.Unlock()
		if res != nil {
			res.Release()
		}
		return nil, false
	}
	old := c.res
	c.granted = remote
	c.applied = params.Clone()
	c.res = res
	c.mu.Unlock()
	if old != nil {
		old.Release()
	}
	return remote.Clone(), true
}

// Granted returns the QoS granted at the last (re)configuration.
func (c *qchannel) Granted() qos.Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.granted.Clone()
}

// Spec returns the active protocol configuration (empty until configured).
func (c *qchannel) Spec() Spec {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rt == nil {
		return Spec{}
	}
	return c.rt.Spec()
}

func (c *qchannel) runtime() (*Runtime, error) {
	c.mu.Lock()
	retired, err := c.ensureLocked() //coollint:allow lockhold -- the only Close reachable here tears down a freshly dialled runtime on its own failure path; nothing it waits on takes c.mu
	var rt *Runtime
	if err == nil {
		rt = c.rt
	}
	c.mu.Unlock()
	c.retire(retired)
	if err != nil {
		return nil, err
	}
	return rt, nil
}

func (c *qchannel) WriteMessage(p []byte) error {
	rt, err := c.runtime()
	if err != nil {
		return err
	}
	return rt.Send(p)
}

// WriteMessages sends a batch of frames through the stack in one pass
// (transport.BatchChannel); the orb combiner uses this for vectored
// flushes.
func (c *qchannel) WriteMessages(frames [][]byte) error {
	rt, err := c.runtime()
	if err != nil {
		return err
	}
	return rt.SendBatch(frames)
}

func (c *qchannel) ReadMessage() ([]byte, error) {
	rt, err := c.runtime()
	if err != nil {
		return nil, err
	}
	return rt.Recv()
}

func (c *qchannel) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	rt, res := c.rt, c.res
	c.rt, c.res = nil, nil
	c.mu.Unlock()
	// Teardown outside the lock: Runtime.Close waits for the module
	// goroutines to drain (coollint: lockhold).
	c.retire(rt)
	if res != nil {
		res.Release()
	}
	return nil
}

func (c *qchannel) LocalAddr() string { return "dacapo:local" }

func (c *qchannel) RemoteAddr() string {
	if c.addr != "" {
		return "dacapo:" + c.addr
	}
	return "dacapo:accepted"
}

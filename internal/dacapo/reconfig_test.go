package dacapo_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/qos"
)

func specCipherCRC() dacapo.Spec {
	return dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "xorcipher"}, {Name: "crc32"},
	}}
}

func specRLECRC() dacapo.Spec {
	return dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "rle"}, {Name: "crc16"},
	}}
}

// TestReconfigureSpliceUnderLoadNoLossNoDup floods sequence-numbered
// messages through an inline stack while the sender splices in a
// different module graph mid-stream. The receiver must observe every
// sequence number exactly once, in order, across the generation switch.
func TestReconfigureSpliceUnderLoadNoLossNoDup(t *testing.T) {
	ra, rb := startPair(t, specCipherCRC())

	const n = 2000
	recvDone := make(chan error, 1)
	go func() {
		for i := uint32(0); i < n; i++ {
			got, err := rb.Recv()
			if err != nil {
				recvDone <- fmt.Errorf("recv %d: %w", i, err)
				return
			}
			if len(got) != 4 || binary.BigEndian.Uint32(got) != i {
				recvDone <- fmt.Errorf("message %d: got % x", i, got)
				return
			}
		}
		recvDone <- nil
		// Keep the responder's receive path alive: control frames that
		// trail the flood (the COMMIT may arrive after the last data
		// frame) are handled inside Recv.
		for {
			if _, err := rb.Recv(); err != nil {
				return
			}
		}
	}()

	sendDone := make(chan error, 1)
	mid := make(chan struct{})
	go func() {
		var buf [4]byte
		for i := uint32(0); i < n; i++ {
			binary.BigEndian.PutUint32(buf[:], i)
			if err := ra.Send(buf[:]); err != nil {
				sendDone <- fmt.Errorf("send %d: %w", i, err)
				return
			}
			if i == n/2 {
				close(mid)
			}
		}
		sendDone <- nil
	}()

	<-mid
	granted, err := ra.Reconfigure(specRLECRC(), nil)
	if err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	_ = granted

	if err := <-sendDone; err != nil {
		t.Fatal(err)
	}
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}

	if !ra.Spec().Equal(specRLECRC()) {
		t.Fatalf("initiator spec = %v", ra.Spec())
	}
	// The responder finishes its splice on its own receive path just after
	// mailing the mirror commit, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, completed, _ := rb.ReconfigCounts(); completed == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("responder splice never completed")
		}
		time.Sleep(time.Millisecond)
	}
	if !rb.Spec().Equal(specRLECRC()) {
		t.Fatalf("responder spec = %v", rb.Spec())
	}
	for name, rt := range map[string]*dacapo.Runtime{"initiator": ra, "responder": rb} {
		started, completed, aborted := rt.ReconfigCounts()
		if started != 1 || completed != 1 || aborted != 0 {
			t.Errorf("%s counters = %d/%d/%d, want 1/1/0", name, started, completed, aborted)
		}
	}
	// Traffic keeps flowing through the new generation in both directions.
	if err := rb.Send([]byte("post-splice")); err != nil {
		t.Fatal(err)
	}
	got, err := ra.Recv()
	if err != nil || string(got) != "post-splice" {
		t.Fatalf("post-splice recv %q, %v", got, err)
	}
}

// TestReconfigureRejectedByPolicy: a responder policy that refuses the
// proposal NACKs it; the initiator sees ErrReconfigRejected with the
// reason, both ends count the abort, and the connection keeps working on
// the old generation.
func TestReconfigureRejectedByPolicy(t *testing.T) {
	ra, rb := startPair(t, specCipherCRC())
	rb.SetReconfigPolicy(func(spec dacapo.Spec, req qos.Set) (qos.Set, error) {
		return nil, errors.New("budget exhausted")
	})

	// The responder handles the proposal on its receive path.
	delivered := make(chan []byte, 1)
	go func() {
		msg, err := rb.Recv()
		if err == nil {
			delivered <- msg
		}
	}()

	_, err := ra.Reconfigure(specRLECRC(), nil)
	if !errors.Is(err, dacapo.ErrReconfigRejected) {
		t.Fatalf("err = %v, want ErrReconfigRejected", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("budget exhausted")) {
		t.Fatalf("reason not propagated: %v", err)
	}
	if !ra.Spec().Equal(specCipherCRC()) {
		t.Fatalf("spec changed after rejection: %v", ra.Spec())
	}

	// Old generation still carries data.
	if err := ra.Send([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-delivered:
		if string(got) != "still alive" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("connection dead after rejected reconfiguration")
	}

	if _, _, aborted := ra.ReconfigCounts(); aborted != 1 {
		t.Errorf("initiator aborted = %d, want 1", aborted)
	}
	if _, _, aborted := rb.ReconfigCounts(); aborted != 1 {
		t.Errorf("responder aborted = %d, want 1", aborted)
	}
}

// TestReconfigureUnsupportedBlockingTarget: a proposed graph containing a
// blocking module fails fast locally — nothing goes on the wire and the
// connection is untouched.
func TestReconfigureUnsupportedBlockingTarget(t *testing.T) {
	ra, rb := startPair(t, specCipherCRC())
	blocking := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "window"}}}
	if _, err := ra.Reconfigure(blocking, nil); !errors.Is(err, dacapo.ErrReconfigUnsupported) {
		t.Fatalf("err = %v, want ErrReconfigUnsupported", err)
	}
	started, _, _ := ra.ReconfigCounts()
	if started != 0 {
		t.Errorf("local failure counted as started attempt: %d", started)
	}
	// Connection untouched.
	if err := ra.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got, err := rb.Recv(); err != nil || string(got) != "ok" {
		t.Fatalf("recv %q, %v", got, err)
	}
}

// TestReconfigureUnsupportedThreadedRuntime: a runtime that itself runs
// threaded (blocking modules in the current graph) cannot splice at all.
func TestReconfigureUnsupportedThreadedRuntime(t *testing.T) {
	ra, _ := startPair(t, dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "window"}}})
	if _, err := ra.Reconfigure(dacapo.Spec{}, nil); !errors.Is(err, dacapo.ErrReconfigUnsupported) {
		t.Fatalf("err = %v, want ErrReconfigUnsupported", err)
	}
}

// TestReconfigureNackedByThreadedPeer: an inline initiator proposing to a
// peer whose graph is threaded gets a NACK from the peer's reader — the
// threaded side cannot be respliced in place.
func TestReconfigureNackedByThreadedPeer(t *testing.T) {
	reg := modules.NewLibrary()
	a, b := pipePair(t)
	ra, err := dacapo.NewRuntime(dacapo.Spec{}, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dacapo.NewRuntime(dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "irq"}}}, reg, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ra.Close(); rb.Close() })

	_, err = ra.Reconfigure(dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "crc32"}}}, nil)
	if !errors.Is(err, dacapo.ErrReconfigRejected) {
		t.Fatalf("err = %v, want ErrReconfigRejected", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("blocking")) {
		t.Fatalf("reason = %v", err)
	}
	if _, _, aborted := rb.ReconfigCounts(); aborted != 1 {
		t.Errorf("threaded peer aborted = %d, want 1", aborted)
	}
}

// TestReconfigureBusy: a second attempt while one is in flight is refused
// immediately without touching the wire.
func TestReconfigureBusy(t *testing.T) {
	ra, rb := startPair(t, specCipherCRC())
	release := make(chan struct{})
	rb.SetReconfigPolicy(func(spec dacapo.Spec, req qos.Set) (qos.Set, error) {
		<-release // hold the first attempt in flight
		return req, nil
	})
	go func() {
		// Drive the responder's receive path so the policy runs.
		rb.Recv()
	}()

	first := make(chan error, 1)
	go func() {
		_, err := ra.Reconfigure(specRLECRC(), nil)
		first <- err
	}()
	// Wait until the first attempt is registered as in flight.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if started, _, _ := ra.ReconfigCounts(); started == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first attempt never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := ra.Reconfigure(dacapo.Spec{}, nil); !errors.Is(err, dacapo.ErrReconfigBusy) {
		t.Fatalf("err = %v, want ErrReconfigBusy", err)
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("first attempt failed: %v", err)
	}
}

// flakyStart fails Start when told to — the failure-injection module for
// responder-side generation bring-up.
type flakyStart struct {
	dacapo.BaseModule
	fail bool
}

func (m *flakyStart) Name() string { return "flaky" }

func (m *flakyStart) Start(*dacapo.Context) error {
	if m.fail {
		return errors.New("flaky start exploded")
	}
	return nil
}

func (m *flakyStart) HandleDown(ctx *dacapo.Context, p *dacapo.Packet) error { return ctx.EmitDown(p) }
func (m *flakyStart) HandleUp(ctx *dacapo.Context, p *dacapo.Packet) error   { return ctx.EmitUp(p) }

func libraryWith(name string, f dacapo.Factory) *dacapo.Registry {
	reg := modules.NewLibrary()
	reg.Register(name, f)
	return reg
}

// TestReconfigureResponderStartFailureAborts: the responder accepts the
// proposal but its new generation fails to start; the attempt is NACKed
// with the bring-up error, both sides abort, and the old generation keeps
// carrying traffic.
func TestReconfigureResponderStartFailureAborts(t *testing.T) {
	regA := libraryWith("flaky", func(dacapo.Args) (dacapo.Module, error) {
		return &flakyStart{fail: false}, nil
	})
	regB := libraryWith("flaky", func(dacapo.Args) (dacapo.Module, error) {
		return &flakyStart{fail: true}, nil
	})
	a, b := pipePair(t)
	ra, err := dacapo.NewRuntime(dacapo.Spec{}, regA, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dacapo.NewRuntime(dacapo.Spec{}, regB, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ra.Close(); rb.Close() })

	delivered := make(chan []byte, 1)
	go func() {
		msg, err := rb.Recv()
		if err == nil {
			delivered <- msg
		}
	}()

	flaky := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "flaky"}}}
	_, err = ra.Reconfigure(flaky, nil)
	if !errors.Is(err, dacapo.ErrReconfigRejected) {
		t.Fatalf("err = %v, want ErrReconfigRejected", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("flaky start exploded")) {
		t.Fatalf("bring-up error not propagated: %v", err)
	}
	if _, _, aborted := ra.ReconfigCounts(); aborted != 1 {
		t.Errorf("initiator aborted = %d, want 1", aborted)
	}
	if _, _, aborted := rb.ReconfigCounts(); aborted != 1 {
		t.Errorf("responder aborted = %d, want 1", aborted)
	}

	if err := ra.Send([]byte("survivor")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-delivered:
		if string(got) != "survivor" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("connection dead after aborted reconfiguration")
	}
}

// TestReconfigureOnReconfiguredCallback: completion callbacks fire once
// per splice with the new spec, on both roles.
func TestReconfigureOnReconfiguredCallback(t *testing.T) {
	ra, rb := startPair(t, specCipherCRC())
	var aFired, bFired atomic.Uint32
	ra.OnReconfigured(func(spec dacapo.Spec, _ qos.Set) {
		if spec.Equal(specRLECRC()) {
			aFired.Add(1)
		}
	})
	rb.OnReconfigured(func(spec dacapo.Spec, _ qos.Set) {
		if spec.Equal(specRLECRC()) {
			bFired.Add(1)
		}
	})
	go rb.Recv() // drive the responder
	if _, err := ra.Reconfigure(specRLECRC(), nil); err != nil {
		t.Fatal(err)
	}
	// The responder's callback runs on its receive path; give it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for bFired.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if aFired.Load() != 1 || bFired.Load() != 1 {
		t.Fatalf("callbacks fired %d/%d, want 1/1", aFired.Load(), bFired.Load())
	}
}

// TestEscapedDataFrameTransparency: a payload that begins with the
// control magic must survive the stack unchanged (escape framing).
func TestEscapedDataFrameTransparency(t *testing.T) {
	ra, rb := startPair(t, dacapo.Spec{})
	payload := []byte{0xDA, 0xCA, 0x90, 0x0D, 0x5C, 0xF1, 0x9B, 0xE7, 0x01, 0x42}
	if err := ra.Send(payload); err != nil {
		t.Fatal(err)
	}
	got, err := rb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("magic-prefixed payload corrupted: % x", got)
	}
}

package dacapo_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"cool/internal/cdr"
	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/netsim"
	"cool/internal/qos"
	"cool/internal/transport"
)

// pipePair returns two connected inproc channels.
func pipePair(t testing.TB) (transport.Channel, transport.Channel) {
	t.Helper()
	mgr := transport.NewInprocManager()
	l, err := mgr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		ch  transport.Channel
		err error
	}
	rc := make(chan res, 1)
	go func() {
		ch, err := l.Accept()
		rc <- res{ch, err}
	}()
	a, err := mgr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := <-rc
	if r.err != nil {
		t.Fatal(r.err)
	}
	return a, r.ch
}

// startPair builds started runtimes with the same spec at both ends.
func startPair(t testing.TB, spec dacapo.Spec) (*dacapo.Runtime, *dacapo.Runtime) {
	t.Helper()
	reg := modules.NewLibrary()
	a, b := pipePair(t)
	ra, err := dacapo.NewRuntime(spec, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dacapo.NewRuntime(spec, reg, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ra.Close(); rb.Close() })
	return ra, rb
}

func dummies(n int) dacapo.Spec {
	var s dacapo.Spec
	for i := 0; i < n; i++ {
		s.Modules = append(s.Modules, dacapo.ModuleSpec{Name: "dummy"})
	}
	return s
}

func TestRuntimeEmptyStack(t *testing.T) {
	ra, rb := startPair(t, dacapo.Spec{})
	msg := []byte("through an empty stack")
	if err := ra.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := rb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestRuntimeDummyChains(t *testing.T) {
	for _, n := range []int{1, 5, 40} {
		t.Run(fmt.Sprintf("%d dummies", n), func(t *testing.T) {
			ra, rb := startPair(t, dummies(n))
			for i := 0; i < 20; i++ {
				msg := bytes.Repeat([]byte{byte(i)}, 512)
				if err := ra.Send(msg); err != nil {
					t.Fatal(err)
				}
				got, err := rb.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("round %d corrupted", i)
				}
			}
			// Every module saw every packet exactly once, unchanged.
			for i, st := range ra.Stats() {
				if st.DownPackets != 20 {
					t.Errorf("module %d: down packets = %d", i, st.DownPackets)
				}
			}
			for i, st := range rb.Stats() {
				if st.UpPackets != 20 {
					t.Errorf("module %d: up packets = %d", i, st.UpPackets)
				}
			}
		})
	}
}

func TestRuntimeBidirectional(t *testing.T) {
	ra, rb := startPair(t, dummies(3))
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := ra.Send([]byte{byte(i)}); err != nil {
				t.Errorf("a send: %v", err)
				return
			}
			if _, err := ra.Recv(); err != nil {
				t.Errorf("a recv: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := rb.Recv(); err != nil {
				t.Errorf("b recv: %v", err)
				return
			}
			if err := rb.Send([]byte{byte(i)}); err != nil {
				t.Errorf("b send: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestRuntimeRecvAfterPeerClose(t *testing.T) {
	ra, rb := startPair(t, dummies(1))
	if err := ra.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	got, err := rb.Recv()
	if err != nil || string(got) != "last words" {
		t.Fatalf("recv: %q, %v", got, err)
	}
	ra.Close()
	if _, err := rb.Recv(); !errors.Is(err, io.EOF) && !errors.Is(err, dacapo.ErrStopped) {
		t.Fatalf("err = %v, want EOF/stopped", err)
	}
}

func TestRuntimeDoubleStartRejected(t *testing.T) {
	reg := modules.NewLibrary()
	a, b := pipePair(t)
	defer b.Close()
	rt, err := dacapo.NewRuntime(dacapo.Spec{}, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.Start(); err == nil {
		t.Fatal("second Start must fail")
	}
}

func TestRuntimeUnknownModule(t *testing.T) {
	reg := modules.NewLibrary()
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	spec := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "warp-drive"}}}
	if _, err := dacapo.NewRuntime(spec, reg, a); err == nil {
		t.Fatal("unknown mechanism must fail")
	}
}

func TestSpecEncodeDecodeRoundTrip(t *testing.T) {
	spec := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "window", Args: dacapo.Args{"window": "8", "rto": "50ms"}},
		{Name: "crc32"},
		{Name: "fragment", Args: dacapo.Args{"mtu": "1400"}},
	}}
	enc := cdr.NewEncoder(cdr.BigEndian)
	spec.Encode(enc)
	got, err := dacapo.DecodeSpec(cdr.NewDecoder(enc.Bytes(), cdr.BigEndian))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(spec) {
		t.Fatalf("got %v, want %v", got, spec)
	}
}

func TestSpecValidate(t *testing.T) {
	reg := modules.NewLibrary()
	good := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "crc32"}, {Name: "dummy"}}}
	if err := good.Validate(reg); err != nil {
		t.Fatal(err)
	}
	bad := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "nope"}}}
	if err := bad.Validate(reg); err == nil {
		t.Fatal("unknown mechanism must fail validation")
	}
	badArgs := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "window", Args: dacapo.Args{"window": "x"}}}}
	if err := badArgs.Validate(reg); err == nil {
		t.Fatal("bad args must fail validation")
	}
}

func TestSpecString(t *testing.T) {
	if got := (dacapo.Spec{}).String(); got != "A|T (empty stack)" {
		t.Errorf("empty = %q", got)
	}
	s := dacapo.Spec{Modules: []dacapo.ModuleSpec{
		{Name: "window", Args: dacapo.Args{"window": "8"}},
		{Name: "crc32"},
	}}
	if got := s.String(); got != "A|window(window=8)|crc32|T" {
		t.Errorf("String = %q", got)
	}
}

func TestConnectAcceptHandshake(t *testing.T) {
	reg := modules.NewLibrary()
	a, b := pipePair(t)
	spec := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "crc32"}}}
	req := qos.Set{{Type: qos.Throughput, Request: 1000, Max: qos.NoLimit, Min: 100}}

	type acceptRes struct {
		rt      *dacapo.Runtime
		granted qos.Set
		err     error
	}
	rc := make(chan acceptRes, 1)
	go func() {
		rt, granted, err := dacapo.Accept(b, reg, nil)
		rc <- acceptRes{rt, granted, err}
	}()

	rt, granted, err := dacapo.Connect(a, reg, spec, req)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ar := <-rc
	if ar.err != nil {
		t.Fatal(ar.err)
	}
	defer ar.rt.Close()

	if !granted.Equal(req) || !ar.granted.Equal(req) {
		t.Fatalf("granted %v / %v, want %v", granted, ar.granted, req)
	}
	if !ar.rt.Spec().Equal(spec) {
		t.Fatalf("responder spec %v", ar.rt.Spec())
	}

	// Data flows through the negotiated stacks.
	if err := rt.Send([]byte("negotiated")); err != nil {
		t.Fatal(err)
	}
	got, err := ar.rt.Recv()
	if err != nil || string(got) != "negotiated" {
		t.Fatalf("recv %q, %v", got, err)
	}
}

func TestConnectRejectedByPolicy(t *testing.T) {
	reg := modules.NewLibrary()
	a, b := pipePair(t)
	go func() {
		dacapo.Accept(b, reg, func(spec dacapo.Spec, req qos.Set) (qos.Set, error) {
			return nil, errors.New("budget exhausted")
		})
	}()
	_, _, err := dacapo.Connect(a, reg, dacapo.Spec{}, nil)
	if !errors.Is(err, dacapo.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("budget exhausted")) {
		t.Fatalf("reason not propagated: %v", err)
	}
}

func TestConnectRejectedUnknownModuleAtResponder(t *testing.T) {
	full := modules.NewLibrary()
	bare := dacapo.NewRegistry() // responder has an empty library
	a, b := pipePair(t)
	go func() {
		dacapo.Accept(b, bare, nil)
	}()
	spec := dacapo.Spec{Modules: []dacapo.ModuleSpec{{Name: "crc32"}}}
	_, _, err := dacapo.Connect(a, full, spec, nil)
	if !errors.Is(err, dacapo.ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
}

func TestAcceptRejectsGarbage(t *testing.T) {
	reg := modules.NewLibrary()
	a, b := pipePair(t)
	go a.WriteMessage([]byte("not a signalling message"))
	if _, _, err := dacapo.Accept(b, reg, nil); !errors.Is(err, dacapo.ErrBadSignal) {
		t.Fatalf("err = %v, want ErrBadSignal", err)
	}
}

func TestResourceManagerBudget(t *testing.T) {
	rm := dacapo.NewResourceManager(1000, 2)
	set := func(kbps uint32) qos.Set {
		return qos.Set{{Type: qos.Throughput, Request: kbps, Max: qos.NoLimit, Min: 0}}
	}
	r1, err := rm.Reserve(set(600))
	if err != nil {
		t.Fatal(err)
	}
	if avail, limited := rm.Available(); !limited || avail != 400 {
		t.Fatalf("available = %d, %v", avail, limited)
	}
	// Over budget -> negotiation error with remaining capacity as offer.
	_, err = rm.Reserve(set(500))
	var ne *qos.NegotiationError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want NegotiationError", err)
	}
	if ne.Failed[0].Offer != 400 {
		t.Fatalf("offer = %d, want 400", ne.Failed[0].Offer)
	}
	r2, err := rm.Reserve(set(400))
	if err != nil {
		t.Fatal(err)
	}
	// Connection limit.
	if _, err = rm.Reserve(set(0)); err == nil {
		t.Fatal("connection limit not enforced")
	}
	r1.Release()
	r1.Release() // idempotent
	if got := rm.Connections(); got != 1 {
		t.Fatalf("connections = %d", got)
	}
	if avail, _ := rm.Available(); avail != 600 {
		t.Fatalf("available after release = %d", avail)
	}
	r2.Release()
}

func TestResourceManagerUnlimited(t *testing.T) {
	rm := dacapo.NewResourceManager(0, 0)
	for i := 0; i < 100; i++ {
		if _, err := rm.Reserve(qos.Set{{Type: qos.Throughput, Request: 1 << 20, Max: qos.NoLimit}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, limited := rm.Available(); limited {
		t.Fatal("unlimited budget reported as limited")
	}
}

func TestConfigureMapsQoSToModules(t *testing.T) {
	link := netsim.WAN().Capability() // lossy, unordered? (ordered but lossy)
	hasModule := func(s dacapo.Spec, name string) bool {
		for _, m := range s.Modules {
			if m.Name == name {
				return true
			}
		}
		return false
	}

	t.Run("reliability demands ARQ", func(t *testing.T) {
		req := qos.Set{{Type: qos.Reliability, Request: 0, Max: 0, Min: 0}}
		spec, granted, err := dacapo.Configure(req, link)
		if err != nil {
			t.Fatal(err)
		}
		if !hasModule(spec, "window") || !hasModule(spec, "crc32") {
			t.Fatalf("spec = %v", spec)
		}
		if granted.Value(qos.Reliability, 99) != 0 {
			t.Fatalf("granted = %v", granted)
		}
	})

	t.Run("confidentiality demands cipher", func(t *testing.T) {
		req := qos.Set{{Type: qos.Confidentiality, Request: 1, Max: 1, Min: 1}}
		spec, _, err := dacapo.Configure(req, link)
		if err != nil {
			t.Fatal(err)
		}
		if !hasModule(spec, "xorcipher") {
			t.Fatalf("spec = %v", spec)
		}
	})

	t.Run("jitter with throughput demands shaping", func(t *testing.T) {
		req := qos.Set{
			{Type: qos.Throughput, Request: 5000, Max: qos.NoLimit, Min: 100},
			{Type: qos.Jitter, Request: 3000, Max: 5000, Min: 0},
		}
		spec, _, err := dacapo.Configure(req, link)
		if err != nil {
			t.Fatal(err)
		}
		if !hasModule(spec, "ratelimit") {
			t.Fatalf("spec = %v", spec)
		}
	})

	t.Run("loss-tolerant gets empty stack", func(t *testing.T) {
		req := qos.Set{{Type: qos.Throughput, Request: 1000, Max: qos.NoLimit, Min: 0}}
		spec, _, err := dacapo.Configure(req, link)
		if err != nil {
			t.Fatal(err)
		}
		if len(spec.Modules) != 0 {
			t.Fatalf("spec = %v, want empty", spec)
		}
	})

	t.Run("impossible throughput NACKs", func(t *testing.T) {
		req := qos.Set{{Type: qos.Throughput, Request: 1 << 30, Max: qos.NoLimit, Min: 1 << 29}}
		_, _, err := dacapo.Configure(req, link)
		var ne *qos.NegotiationError
		if !errors.As(err, &ne) {
			t.Fatalf("err = %v, want NegotiationError", err)
		}
	})
}

func TestConfigureWithResources(t *testing.T) {
	link := netsim.LAN().Capability()
	rm := dacapo.NewResourceManager(10_000, 0)
	req := qos.Set{{Type: qos.Throughput, Request: 8000, Max: qos.NoLimit, Min: 1000}}
	_, granted, res, err := dacapo.ConfigureWithResources(req, link, rm)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()
	if granted.Value(qos.Throughput, 0) != 8000 {
		t.Fatalf("granted = %v", granted)
	}
	// Second identical demand exceeds the remaining 2000.
	if _, _, _, err := dacapo.ConfigureWithResources(req, link, rm); err == nil {
		t.Fatal("admission should fail")
	}
	res.Release()
	if _, _, res2, err := dacapo.ConfigureWithResources(req, link, rm); err != nil {
		t.Fatal(err)
	} else {
		res2.Release()
	}
}

func TestEndToEndConfiguredStackOverLossyLink(t *testing.T) {
	// The full §4.3 path: requirements -> configuration -> reliable
	// delivery over a lossy simulated link.
	link := netsim.NewLink(netsim.Params{
		LossRate:  0.05,
		PropDelay: 200 * time.Microsecond,
		Seed:      42,
		QueueLen:  256,
	})
	defer link.Close()
	a, b := link.Endpoints()

	req := qos.Set{
		{Type: qos.Reliability, Request: 0, Max: 0, Min: 0},
		{Type: qos.Ordering, Request: 1, Max: 1, Min: 1},
	}
	spec, granted, err := dacapo.Configure(req, netsim.Params{LossRate: 0.05}.Capability())
	if err != nil {
		t.Fatal(err)
	}
	if granted.Value(qos.Reliability, 99) != 0 {
		t.Fatalf("granted = %v", granted)
	}
	// Shorten the retransmission timeout for test speed.
	for i := range spec.Modules {
		if spec.Modules[i].Name == "window" {
			spec.Modules[i].Args["rto"] = "20ms"
		}
	}

	reg := modules.NewLibrary()
	ra, err := dacapo.NewRuntime(spec, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dacapo.NewRuntime(spec, reg, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}
	defer ra.Close()
	defer rb.Close()

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			msg := []byte{byte(i), byte(i >> 8)}
			if err := ra.Send(msg); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got, err := rb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got[0] != byte(i) || got[1] != byte(i>>8) {
			t.Fatalf("message %d out of order: % x", i, got)
		}
	}
}

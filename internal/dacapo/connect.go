package dacapo

import (
	"errors"
	"fmt"

	"cool/internal/cdr"
	"cool/internal/qos"
	"cool/internal/transport"
)

// Connection signalling: before user data flows, the initiator ships the
// protocol configuration (Spec) and the requested QoS to the responder; the
// responder validates the spec against its module library, applies its
// admission policy and answers with the granted QoS or a rejection. Both
// sides then instantiate matching module stacks over the same channel —
// the connection-management duty of Da CaPo's management component.

const (
	sigMagic    = "DCP1"
	sigConfig   = byte(1)
	sigOK       = byte(2)
	sigReject   = byte(3)
	sigTeardown = byte(4)
)

// Signalling errors.
var (
	// ErrRejected reports that the responder refused the configuration or
	// the QoS (the unilateral negotiation failure surfaced to COOL, §4.3).
	ErrRejected = errors.New("dacapo: connection rejected by peer")
	// ErrBadSignal reports a malformed signalling message.
	ErrBadSignal = errors.New("dacapo: malformed signalling message")
)

// AcceptPolicy decides, on the responder, whether to accept a proposed
// configuration and what QoS to grant. Returning an error rejects the
// connection; the error text travels back to the initiator.
type AcceptPolicy func(spec Spec, requested qos.Set) (granted qos.Set, err error)

// AcceptAll grants exactly the requested QoS for any valid spec.
func AcceptAll(spec Spec, requested qos.Set) (qos.Set, error) {
	return requested, nil
}

func encodeSignal(kind byte, fn func(*cdr.Encoder)) []byte {
	enc := cdr.NewEncoder(cdr.BigEndian)
	enc.WriteOctets([]byte(sigMagic))
	enc.WriteOctet(kind)
	if fn != nil {
		fn(enc)
	}
	return enc.Bytes()
}

func decodeSignal(msg []byte) (byte, *cdr.Decoder, error) {
	if len(msg) < 5 || string(msg[:4]) != sigMagic {
		return 0, nil, ErrBadSignal
	}
	dec := cdr.NewDecoder(msg, cdr.BigEndian)
	dec.ReadOctets(5)
	return msg[4], dec, nil
}

// Connect performs the initiator side of connection setup over tch: it
// proposes spec and requested QoS, waits for the answer and, on success,
// returns a started runtime plus the granted QoS. On rejection the channel
// is closed and the peer's reason is wrapped in ErrRejected.
func Connect(tch transport.Channel, reg *Registry, spec Spec, requested qos.Set) (*Runtime, qos.Set, error) {
	if err := spec.Validate(reg); err != nil {
		return nil, nil, err
	}
	cfg := encodeSignal(sigConfig, func(enc *cdr.Encoder) {
		spec.Encode(enc)
		qos.EncodeSet(enc, requested)
	})
	if err := tch.WriteMessage(cfg); err != nil {
		return nil, nil, fmt.Errorf("dacapo: send config: %w", err)
	}
	answer, err := tch.ReadMessage()
	if err != nil {
		return nil, nil, fmt.Errorf("dacapo: read config answer: %w", err)
	}
	kind, dec, err := decodeSignal(answer)
	if err != nil {
		return nil, nil, err
	}
	switch kind {
	case sigOK:
		granted, err := qos.DecodeSet(dec)
		transport.PutBuffer(answer)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: granted qos: %v", ErrBadSignal, err)
		}
		rt, err := NewRuntime(spec, reg, tch)
		if err != nil {
			return nil, nil, err
		}
		if err := rt.Start(); err != nil {
			return nil, nil, err
		}
		return rt, granted, nil
	case sigReject:
		reason, rerr := dec.ReadString()
		transport.PutBuffer(answer)
		tch.Close()
		if rerr != nil {
			reason = "(no reason)"
		}
		return nil, nil, fmt.Errorf("%w: %s", ErrRejected, reason)
	default:
		transport.PutBuffer(answer)
		tch.Close()
		return nil, nil, fmt.Errorf("%w: unexpected signal %d", ErrBadSignal, kind)
	}
}

// Accept performs the responder side of connection setup on an inbound
// channel: it reads the proposed configuration, validates it against the
// local module library, consults policy, and either instantiates the stack
// (returning the runtime and the granted QoS) or rejects.
func Accept(tch transport.Channel, reg *Registry, policy AcceptPolicy) (*Runtime, qos.Set, error) {
	if policy == nil {
		policy = AcceptAll
	}
	msg, err := tch.ReadMessage()
	if err != nil {
		return nil, nil, fmt.Errorf("dacapo: read config: %w", err)
	}
	kind, dec, err := decodeSignal(msg)
	if err != nil {
		return nil, nil, err
	}
	if kind != sigConfig {
		tch.Close()
		return nil, nil, fmt.Errorf("%w: expected config, got %d", ErrBadSignal, kind)
	}
	spec, err := DecodeSpec(dec)
	if err != nil {
		transport.PutBuffer(msg)
		return nil, nil, fmt.Errorf("%w: spec: %v", ErrBadSignal, err)
	}
	requested, err := qos.DecodeSet(dec)
	transport.PutBuffer(msg)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: qos: %v", ErrBadSignal, err)
	}

	reject := func(reason string) (*Runtime, qos.Set, error) {
		_ = tch.WriteMessage(encodeSignal(sigReject, func(enc *cdr.Encoder) {
			enc.WriteString(reason)
		}))
		tch.Close()
		return nil, nil, fmt.Errorf("%w: %s", ErrRejected, reason)
	}

	if err := spec.Validate(reg); err != nil {
		return reject(err.Error())
	}
	granted, err := policy(spec, requested)
	if err != nil {
		return reject(err.Error())
	}
	ok := encodeSignal(sigOK, func(enc *cdr.Encoder) {
		qos.EncodeSet(enc, granted)
	})
	if err := tch.WriteMessage(ok); err != nil {
		return nil, nil, fmt.Errorf("dacapo: send accept: %w", err)
	}
	rt, err := NewRuntime(spec, reg, tch)
	if err != nil {
		return nil, nil, err
	}
	// Mid-stream proposals go through the same admission policy as the
	// original bring-up.
	rt.SetReconfigPolicy(policy)
	if err := rt.Start(); err != nil {
		return nil, nil, err
	}
	return rt, granted, nil
}

package dacapo

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"cool/internal/cdr"
	"cool/internal/qos"
)

// Mid-stream reconfiguration: renegotiating a running connection's module
// graph without tearing the connection down — the "dynamic configuration"
// the Da CaPo name promises. The initiator proposes a new Spec over the
// data channel itself; once both sides have built and started the new
// module generation, each direction is spliced at a frame boundary:
//
//	initiator                      responder
//	PROPOSE(gen, spec, qos)  --->  validate, policy, build, start
//	                         <---  ACCEPT(gen, granted)   (or NACK)
//	COMMIT(gen) + swap down  --->  swap up, mirror COMMIT + swap down
//	swap up on mirror COMMIT <---
//
// Because each peer swaps its down direction in the same critical section
// that emits its COMMIT, and swaps its up direction the moment it reads a
// COMMIT, every data frame is processed by the configuration it was sent
// under — the splice drops and duplicates nothing. Packets already inside
// the old generation finish there: contexts pin their own stage slice.
//
// Only fully inline graphs reconfigure in place (a threaded graph NACKs
// the proposal); the management layer falls back to re-dialling for those.
// If both ends propose simultaneously each side is busy with its own
// attempt and NACKs the peer's — both abort, the connection stays up, and
// the callers retry or redial.
//
// Control frames share the wire with data frames via an escape prefix: a
// frame starting with the 8-octet control magic is a control frame; a data
// frame that happens to start with the magic is wrapped in an escape
// header on the way out and unwrapped on the way in, so transparency holds
// for arbitrary payloads.

// ctrlMagic prefixes every control frame. Chosen so no GIOP frame (which
// starts with "GIOP") and essentially no random payload collides.
var ctrlMagic = [8]byte{0xDA, 0xCA, 0x90, 0x0D, 0x5C, 0xF1, 0x9B, 0xE7}

// ctrlHdrLen is the magic plus the kind octet.
const ctrlHdrLen = 9

// Control frame kinds.
const (
	ctrlEscape  = byte(0) // escaped data frame; payload follows the header
	ctrlPropose = byte(1)
	ctrlAccept  = byte(2)
	ctrlNack    = byte(3)
	ctrlCommit  = byte(4)
)

// defaultReconfigTimeout bounds how long an initiator waits for the
// splice to complete before declaring the connection poisoned.
const defaultReconfigTimeout = 5 * time.Second

// Reconfiguration errors.
var (
	// ErrReconfigUnsupported reports a graph that cannot be respliced in
	// place (blocking modules on either side).
	ErrReconfigUnsupported = errors.New("dacapo: stack not reconfigurable in place")
	// ErrReconfigRejected carries the peer's NACK reason.
	ErrReconfigRejected = errors.New("dacapo: reconfiguration rejected by peer")
	// ErrReconfigBusy reports an attempt while another is in flight.
	ErrReconfigBusy = errors.New("dacapo: reconfiguration already in progress")
)

// hasCtrlMagic reports whether a frame starts with the control magic.
//
//coollint:hotpath control-frame detection on every frame crossing the wire
func hasCtrlMagic(b []byte) bool {
	if len(b) < len(ctrlMagic) {
		return false
	}
	for i, c := range ctrlMagic {
		if b[i] != c {
			return false
		}
	}
	return true
}

// ctrlKind classifies an inbound frame: (kind, true) for control frames.
//
//coollint:hotpath inbound frame classification
func ctrlKind(msg []byte) (byte, bool) {
	if len(msg) < ctrlHdrLen || !hasCtrlMagic(msg) {
		return 0, false
	}
	return msg[ctrlHdrLen-1], true
}

// escapeWrap prefixes a colliding data frame with an escape header.
func escapeWrap(p *Packet) {
	hdr := p.Prepend(ctrlHdrLen)
	copy(hdr, ctrlMagic[:])
	hdr[ctrlHdrLen-1] = ctrlEscape
}

func encodeCtrl(kind byte, fn func(*cdr.Encoder)) []byte {
	enc := cdr.NewEncoder(cdr.BigEndian)
	enc.WriteOctets(ctrlMagic[:])
	enc.WriteOctet(kind)
	if fn != nil {
		fn(enc)
	}
	return enc.Bytes()
}

func ctrlDecoder(msg []byte) *cdr.Decoder {
	dec := cdr.NewDecoder(msg, cdr.BigEndian)
	dec.ReadOctets(ctrlHdrLen)
	return dec
}

type reconfigResult struct {
	granted qos.Set
	err     error
}

// reconfigState is one in-flight reconfiguration attempt: the new module
// generation, built and started but not yet spliced.
type reconfigState struct {
	gen     uint32
	spec    Spec
	granted qos.Set
	stages  []*stage
	// downSpliced marks an initiator that committed its down direction
	// and is waiting for the mirror COMMIT to splice up.
	downSpliced bool
	done        chan reconfigResult
}

// SetReconfigPolicy installs the admission policy consulted when the peer
// proposes a new configuration. nil means accept (AcceptAll).
func (r *Runtime) SetReconfigPolicy(p AcceptPolicy) {
	r.rcMu.Lock()
	r.rcPolicy = p
	r.rcMu.Unlock()
}

// OnReconfigured registers a callback invoked after a splice completes
// (either role) with the new spec and the granted QoS. Callbacks run on
// the receive path and must not call back into Recv or Close.
func (r *Runtime) OnReconfigured(fn func(Spec, qos.Set)) {
	r.rcMu.Lock()
	r.rcOnSplice = append(r.rcOnSplice, fn)
	r.rcMu.Unlock()
}

// ReconfigCounts returns the reconfiguration attempt counters.
func (r *Runtime) ReconfigCounts() (started, completed, aborted uint64) {
	return r.rcStarted.Load(), r.rcCompleted.Load(), r.rcAborted.Load()
}

// prepareGeneration builds and starts a new inline module generation for
// spec. On failure every started module is stopped again.
func (r *Runtime) prepareGeneration(spec Spec) ([]*stage, error) {
	modules, err := spec.build(r.reg)
	if err != nil {
		return nil, err
	}
	for _, m := range modules {
		if _, blocking := m.(Blocker); blocking {
			return nil, fmt.Errorf("%w: module %s requires threaded scheduling", ErrReconfigUnsupported, m.Name())
		}
	}
	stages := r.buildStages(modules)
	for i, s := range stages {
		if err := s.mod.Start(s.ctx); err != nil {
			stopStages(stages[:i])
			return nil, fmt.Errorf("dacapo: start %s: %w", s.mod.Name(), err)
		}
		s.started = true
	}
	return stages, nil
}

func stopStages(stages []*stage) {
	for _, s := range stages {
		if s.started {
			_ = s.mod.Stop(s.ctx)
		}
	}
}

// Reconfigure renegotiates the module graph of a running connection in
// place: it proposes spec and requested QoS to the peer and, on
// acceptance, splices the new graph into both directions without dropping
// or duplicating a single packet. The caller must keep a receiver active
// (Recv processes the control handshake). A timeout poisons the runtime —
// the connection state is then unknown and the caller re-dials.
func (r *Runtime) Reconfigure(spec Spec, requested qos.Set) (qos.Set, error) {
	if r.threaded {
		return nil, fmt.Errorf("%w: stack has blocking modules", ErrReconfigUnsupported)
	}
	if r.stopped() {
		return nil, r.closeErr()
	}
	if err := spec.Validate(r.reg); err != nil {
		return nil, err
	}
	r.rcMu.Lock()
	if r.rcInit != nil || r.rcResp != nil {
		r.rcMu.Unlock()
		return nil, ErrReconfigBusy
	}
	stages, err := r.prepareGeneration(spec)
	if err != nil {
		r.rcMu.Unlock()
		return nil, err
	}
	r.rcGen++
	st := &reconfigState{
		gen:    r.rcGen,
		spec:   spec,
		stages: stages,
		done:   make(chan reconfigResult, 1),
	}
	r.rcInit = st
	r.rcMu.Unlock()
	r.rcStarted.Add(1)

	frame := encodeCtrl(ctrlPropose, func(enc *cdr.Encoder) {
		enc.WriteULong(st.gen)
		spec.Encode(enc)
		qos.EncodeSet(enc, requested)
	})
	r.sendMu.Lock()
	err = r.tch.WriteMessage(frame)
	r.sendMu.Unlock()
	if err != nil {
		r.rcMu.Lock()
		if r.rcInit == st {
			r.rcInit = nil
		}
		r.rcMu.Unlock()
		stopStages(st.stages)
		r.rcAborted.Add(1)
		err = fmt.Errorf("dacapo: send reconfig proposal: %w", err)
		r.fail(err)
		return nil, err
	}

	return r.driveHandshake(st)
}

// driveHandshake waits for an initiated reconfiguration to settle.
// Control frames arrive on the receive path, so when no receiver is
// active the initiator runs the receive steps itself (data frames it
// picks up land in scratch for the next Recv); when a receiver holds
// readMu, it polls the done slot while that receiver makes progress. A
// watchdog poisons the runtime if the peer stalls — the splice state
// would be unknowable.
func (r *Runtime) driveHandshake(st *reconfigState) (qos.Set, error) {
	var settled atomic.Bool
	watchdog := time.AfterFunc(r.rcTimeout, func() {
		if settled.Load() {
			return
		}
		r.fail(fmt.Errorf("dacapo: reconfiguration timed out after %v", r.rcTimeout))
	})
	defer func() {
		settled.Store(true)
		watchdog.Stop()
	}()
	finish := func(res reconfigResult) (qos.Set, error) {
		if res.err != nil {
			return nil, res.err
		}
		return res.granted, nil
	}
	var tick *time.Ticker
	defer func() {
		if tick != nil {
			tick.Stop()
		}
	}()
	for {
		select {
		case res := <-st.done:
			return finish(res)
		case <-r.stop:
			return nil, r.closeErr()
		default:
		}
		if r.readMu.TryLock() {
			err := r.recvStepLocked()
			r.readMu.Unlock()
			if err != nil {
				// The failing step may have been the one that settled us.
				select {
				case res := <-st.done:
					return finish(res)
				default:
				}
				return nil, r.closeErr()
			}
			continue
		}
		if tick == nil {
			tick = time.NewTicker(2 * time.Millisecond)
		}
		select {
		case res := <-st.done:
			return finish(res)
		case <-r.stop:
			return nil, r.closeErr()
		case <-tick.C:
		}
	}
}

// handleCtrl dispatches a control frame on the inline receive path
// (called under readMu). Reconfigurations are rare relative to data
// traffic, so the whole dispatch is off the allocation-audit spine.
//
//coollint:coldpath control-plane dispatch; runs once per reconfiguration
func (r *Runtime) handleCtrl(kind byte, msg []byte) {
	dec := ctrlDecoder(msg)
	switch kind {
	case ctrlPropose:
		r.ctrlOnPropose(dec)
	case ctrlAccept:
		r.ctrlOnAccept(dec)
	case ctrlNack:
		r.ctrlOnNack(dec)
	case ctrlCommit:
		r.ctrlOnCommit(dec)
	default:
		r.fail(fmt.Errorf("dacapo: unknown control frame kind %d", kind))
	}
}

// sendCtrl writes a control frame under the send lock.
func (r *Runtime) sendCtrl(frame []byte) error {
	r.sendMu.Lock()
	err := r.tch.WriteMessage(frame)
	r.sendMu.Unlock()
	if err != nil {
		err = fmt.Errorf("dacapo: send control frame: %w", err)
		r.fail(err)
	}
	return err
}

func (r *Runtime) ctrlOnPropose(dec *cdr.Decoder) {
	gen, err := dec.ReadULong()
	if err != nil {
		r.fail(fmt.Errorf("%w: reconfig gen: %v", ErrBadSignal, err))
		return
	}
	spec, err := DecodeSpec(dec)
	if err != nil {
		r.fail(fmt.Errorf("%w: reconfig spec: %v", ErrBadSignal, err))
		return
	}
	requested, err := qos.DecodeSet(dec)
	if err != nil {
		r.fail(fmt.Errorf("%w: reconfig qos: %v", ErrBadSignal, err))
		return
	}
	r.rcStarted.Add(1)
	nack := func(reason string) {
		r.rcAborted.Add(1)
		_ = r.sendCtrl(encodeCtrl(ctrlNack, func(enc *cdr.Encoder) {
			enc.WriteULong(gen)
			enc.WriteString(reason)
		}))
	}
	if err := spec.Validate(r.reg); err != nil {
		nack(err.Error())
		return
	}
	r.rcMu.Lock()
	if r.rcInit != nil || r.rcResp != nil {
		r.rcMu.Unlock()
		nack("peer busy with another reconfiguration")
		return
	}
	policy := r.rcPolicy
	if policy == nil {
		policy = AcceptAll
	}
	granted, perr := policy(spec, requested)
	if perr != nil {
		r.rcMu.Unlock()
		nack(perr.Error())
		return
	}
	stages, serr := r.prepareGeneration(spec)
	if serr != nil {
		r.rcMu.Unlock()
		nack(serr.Error())
		return
	}
	r.rcResp = &reconfigState{gen: gen, spec: spec, granted: granted, stages: stages}
	r.rcMu.Unlock()
	if r.sendCtrl(encodeCtrl(ctrlAccept, func(enc *cdr.Encoder) {
		enc.WriteULong(gen)
		qos.EncodeSet(enc, granted)
	})) != nil {
		return // runtime already poisoned by sendCtrl
	}
}

func (r *Runtime) ctrlOnAccept(dec *cdr.Decoder) {
	gen, err := dec.ReadULong()
	if err != nil {
		r.fail(fmt.Errorf("%w: reconfig gen: %v", ErrBadSignal, err))
		return
	}
	granted, err := qos.DecodeSet(dec)
	if err != nil {
		r.fail(fmt.Errorf("%w: reconfig granted qos: %v", ErrBadSignal, err))
		return
	}
	r.rcMu.Lock()
	st := r.rcInit
	if st == nil || st.gen != gen || st.downSpliced {
		r.rcMu.Unlock()
		return // stale or duplicate ACCEPT
	}
	st.granted = granted
	st.downSpliced = true
	r.rcMu.Unlock()
	// Commit and splice the down direction in one critical section: every
	// frame sent before the COMMIT came from the old graph, every frame
	// after it from the new one.
	frame := encodeCtrl(ctrlCommit, func(enc *cdr.Encoder) { enc.WriteULong(gen) })
	r.sendMu.Lock()
	werr := r.tch.WriteMessage(frame)
	if werr == nil {
		r.down = st.stages
		r.downGen = gen
	}
	r.sendMu.Unlock()
	if werr != nil {
		r.fail(fmt.Errorf("dacapo: send reconfig commit: %w", werr))
	}
}

func (r *Runtime) ctrlOnNack(dec *cdr.Decoder) {
	gen, err := dec.ReadULong()
	if err != nil {
		r.fail(fmt.Errorf("%w: reconfig gen: %v", ErrBadSignal, err))
		return
	}
	reason, err := dec.ReadString()
	if err != nil {
		reason = "(no reason)"
	}
	r.rcMu.Lock()
	st := r.rcInit
	if st == nil || st.gen != gen || st.downSpliced {
		r.rcMu.Unlock()
		return
	}
	r.rcInit = nil
	r.rcMu.Unlock()
	r.rcAborted.Add(1)
	stopStages(st.stages)
	st.done <- reconfigResult{err: fmt.Errorf("%w: %s", ErrReconfigRejected, reason)}
}

func (r *Runtime) ctrlOnCommit(dec *cdr.Decoder) {
	gen, err := dec.ReadULong()
	if err != nil {
		r.fail(fmt.Errorf("%w: reconfig gen: %v", ErrBadSignal, err))
		return
	}
	r.rcMu.Lock()
	if st := r.rcResp; st != nil && st.gen == gen {
		r.rcResp = nil
		r.rcMu.Unlock()
		r.spliceResponder(st, gen)
		return
	}
	if st := r.rcInit; st != nil && st.gen == gen && st.downSpliced {
		r.rcInit = nil
		r.rcMu.Unlock()
		r.spliceInitiatorUp(st, gen)
		return
	}
	r.rcMu.Unlock()
}

// spliceResponder handles the initiator's COMMIT on the responder: the up
// direction splices immediately (the frame after the COMMIT was produced
// by the peer's new graph), the down direction splices together with the
// mirror COMMIT.
func (r *Runtime) spliceResponder(st *reconfigState, gen uint32) {
	old := r.up
	r.up = st.stages
	r.upGen = gen
	frame := encodeCtrl(ctrlCommit, func(enc *cdr.Encoder) { enc.WriteULong(gen) })
	r.sendMu.Lock()
	werr := r.tch.WriteMessage(frame)
	r.down = st.stages
	r.downGen = gen
	r.sendMu.Unlock()
	r.finishSplice(st, old)
	if werr != nil {
		r.fail(fmt.Errorf("dacapo: send reconfig commit: %w", werr))
	}
}

// spliceInitiatorUp handles the mirror COMMIT on the initiator: the down
// direction was spliced when our COMMIT left; now the up direction joins
// it and the handshake completes.
func (r *Runtime) spliceInitiatorUp(st *reconfigState, gen uint32) {
	old := r.up
	r.up = st.stages
	r.upGen = gen
	r.finishSplice(st, old)
	st.done <- reconfigResult{granted: st.granted}
}

// finishSplice retires the old generation: its counters fold into the
// monotonic totals, its modules stop, and the splice callbacks fire.
func (r *Runtime) finishSplice(st *reconfigState, old []*stage) {
	r.statsLock.Lock()
	for _, s := range old {
		r.retired = append(r.retired, snapshotStats(s))
	}
	r.statsStages = st.stages
	r.spec = st.spec
	r.statsLock.Unlock()
	stopStages(old)
	r.rcCompleted.Add(1)
	r.rcMu.Lock()
	cbs := make([]func(Spec, qos.Set), len(r.rcOnSplice))
	copy(cbs, r.rcOnSplice)
	r.rcMu.Unlock()
	for _, fn := range cbs {
		fn(st.spec, st.granted)
	}
}

// ctrlThreaded is the reader-goroutine control handler for threaded
// graphs: proposals are refused (the graph cannot be respliced in place);
// the NACK is written by the wire-owning pump to keep a single writer.
//
//coollint:coldpath control-plane dispatch; runs once per reconfiguration
func (r *Runtime) ctrlThreaded(kind byte, msg []byte) {
	if kind != ctrlPropose {
		return // stale ACCEPT/NACK/COMMIT after a failed attempt: drop
	}
	dec := ctrlDecoder(msg)
	gen, err := dec.ReadULong()
	if err != nil {
		return
	}
	r.rcStarted.Add(1)
	r.rcAborted.Add(1)
	frame := encodeCtrl(ctrlNack, func(enc *cdr.Encoder) {
		enc.WriteULong(gen)
		enc.WriteString("peer stack has blocking modules")
	})
	select {
	case r.ctrlQ <- frame:
	case <-r.stop:
	}
}

// reconfigTeardown releases reconfiguration state at Close: generations
// that were built but never spliced stop here and count as aborted.
func (r *Runtime) reconfigTeardown(stopGen func([]*stage)) {
	r.rcMu.Lock()
	init, resp := r.rcInit, r.rcResp
	r.rcInit, r.rcResp = nil, nil
	r.rcMu.Unlock()
	if init != nil {
		r.rcAborted.Add(1)
		stopGen(init.stages)
	}
	if resp != nil {
		r.rcAborted.Add(1)
		stopGen(resp.stages)
	}
}

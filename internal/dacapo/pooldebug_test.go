//go:build pooldebug

package dacapo

import (
	"strings"
	"testing"

	"cool/internal/bufpool"
	"cool/internal/transport"
)

// TestPacketLeakIsReported: an unreleased pooled packet shows up in the
// pooldebug leak ledger pointing at its acquisition, and disappears once
// released.
func TestPacketLeakIsReported(t *testing.T) {
	bufpool.DebugReset()

	p := getPacket([]byte("held hostage"))

	leaks := bufpool.Leaks()
	if len(leaks) == 0 {
		t.Fatal("pooldebug reported no leaks despite an unreleased packet")
	}
	joined := strings.Join(leaks, "\n")
	if !strings.Contains(joined, "leaked buffer") || !strings.Contains(joined, "getPacketSized") {
		t.Fatalf("leak report does not point at the packet acquisition:\n%s", joined)
	}

	putPacket(p)
	if rest := bufpool.Leaks(); len(rest) != 0 {
		t.Fatalf("leaks remain after putPacket:\n%s", strings.Join(rest, "\n"))
	}
}

// TestPacketDoubleReleaseIsDoubleFree: the packet's backing buffer belongs
// to the arena after putPacket; a second release of the same storage trips
// the verifier.
func TestPacketDoubleReleaseIsDoubleFree(t *testing.T) {
	bufpool.DebugReset()
	p := getPacketSized(8)
	buf := p.buf
	putPacket(p)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("second release of the packet buffer did not panic")
		}
	}()
	bufpool.Put(buf)
}

// TestHeaderMovesKeepLedgerBase: Prepend/StripFront move only the payload
// window, never the buffer base, so the release after a full header
// round-trip still matches the ledger entry.
func TestHeaderMovesKeepLedgerBase(t *testing.T) {
	bufpool.DebugReset()
	p := getPacket([]byte("payload"))
	hdr := p.Prepend(16)
	for i := range hdr {
		hdr[i] = byte(i)
	}
	if err := p.StripFront(16); err != nil {
		t.Fatal(err)
	}
	putPacket(p)
	if rest := bufpool.Leaks(); len(rest) != 0 {
		t.Fatalf("ledger mismatch after header round-trip:\n%s", strings.Join(rest, "\n"))
	}
}

// flipModule inverts every payload octet in place (WritableBytes, so a
// borrowed send buffer migrates into the arena first).
type flipModule struct{ BaseModule }

func (m *flipModule) Name() string { return "flip" }

func (m *flipModule) HandleDown(ctx *Context, p *Packet) error {
	data := p.WritableBytes()
	for i := range data {
		data[i] ^= 0xFF
	}
	return ctx.EmitDown(p)
}

func (m *flipModule) HandleUp(ctx *Context, p *Packet) error {
	data := p.WritableBytes()
	for i := range data {
		data[i] ^= 0xFF
	}
	return ctx.EmitUp(p)
}

// tagModule prepends and strips a one-octet marker.
type tagModule struct{ BaseModule }

func (m *tagModule) Name() string { return "tag" }

func (m *tagModule) HandleDown(ctx *Context, p *Packet) error {
	p.Prepend(1)[0] = 0x7A
	return ctx.EmitDown(p)
}

func (m *tagModule) HandleUp(ctx *Context, p *Packet) error {
	if p.Len() < 1 || p.Bytes()[0] != 0x7A {
		ctx.Drop(p)
		return nil
	}
	if err := p.StripFront(1); err != nil {
		return err
	}
	return ctx.EmitUp(p)
}

// TestSpliceLeaksNothing runs traffic through an inline pair, splices in a
// new module generation mid-stream, and closes both ends: the arena ledger
// must come back empty — retired generations, scratch, control frames and
// boundary state all accounted for.
func TestSpliceLeaksNothing(t *testing.T) {
	bufpool.DebugReset()

	mgr := transport.NewInprocManager()
	l, err := mgr.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	acc := make(chan transport.Channel, 1)
	go func() {
		ch, err := l.Accept()
		if err == nil {
			acc <- ch
		}
	}()
	a, err := mgr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	b := <-acc

	reg := NewRegistry()
	reg.Register("flip", func(Args) (Module, error) { return &flipModule{}, nil })
	reg.Register("tag", func(Args) (Module, error) { return &tagModule{}, nil })
	specA := Spec{Modules: []ModuleSpec{{Name: "flip"}, {Name: "tag"}}}
	specB := Spec{Modules: []ModuleSpec{{Name: "tag"}}}
	ra, err := NewRuntime(specA, reg, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRuntime(specA, reg, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := ra.Start(); err != nil {
		t.Fatal(err)
	}
	if err := rb.Start(); err != nil {
		t.Fatal(err)
	}

	roundTrip := func(payload string) {
		t.Helper()
		if err := ra.Send([]byte(payload)); err != nil {
			t.Fatal(err)
		}
		got, err := rb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != payload {
			t.Fatalf("got %q, want %q", got, payload)
		}
		transport.PutBuffer(got)
	}

	roundTrip("before the splice")

	done := make(chan error, 1)
	go func() {
		_, err := ra.Reconfigure(specB, nil)
		done <- err
	}()
	// Drive the responder until the splice lands there.
	go func() {
		for {
			msg, err := rb.Recv()
			if err != nil {
				return
			}
			transport.PutBuffer(msg)
		}
	}()
	if err := <-done; err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}

	if err := ra.Send([]byte("after the splice")); err != nil {
		t.Fatal(err)
	}

	ra.Close()
	rb.Close()
	a.Close()
	b.Close()

	if leaks := bufpool.Leaks(); len(leaks) != 0 {
		t.Fatalf("arena leaks after splice + close:\n%s", strings.Join(leaks, "\n"))
	}
}

// Package dacapo reimplements the Da CaPo (Dynamic Configuration of
// Protocols) flexible protocol system integrated into COOL's transport
// layer by the paper (§5).
//
// Da CaPo splits communication into three layers: T (transport
// infrastructure, here a transport.Channel or a netsim link), C (end-to-end
// protocol functionality) and A (the application). Layer C is decomposed
// into protocol *functions* — error detection, acknowledgement, flow
// control, encryption, … — each realised by exchangeable *modules*
// (mechanisms). Modules are combined into a module graph (a stack in this
// reproduction, matching the measured configurations); the runtime splits
// the graph into run-to-completion inline segments at blocking-module
// boundaries, so most packets traverse the whole stack on a single
// goroutine with batches amortising the remaining hand-offs (see
// runtime.go).
//
// The management component configures the module graph from the
// application's QoS requirements (Config), performs admission control
// (ResourceManager), signals the configuration to the peer so both ends
// instantiate matching stacks (Connect/Accept), renegotiates a running
// connection's module graph in place (Reconfigure), and monitors the
// running protocol (Runtime.Stats).
package dacapo

import (
	"errors"
	"fmt"
	"sync"

	"cool/internal/bufpool"
)

// defaultHeadroom is the spare space kept in front of every packet payload
// so modules can prepend their protocol headers without copying the
// payload — the pointer-passing shared-memory discipline of Figure 6.
const defaultHeadroom = 64

// ErrHeadroom reports a Prepend that exceeded the packet's headroom and
// could not be satisfied in place.
var ErrHeadroom = errors.New("dacapo: insufficient packet headroom")

// Packet is the unit passed between modules. The payload lives inside a
// backing buffer with headroom at the front, so protocol headers are
// prepended in place on the way down and stripped in place on the way up.
//
// Backing buffers come from the shared bufpool arena: headers only move
// p.off, never re-slice p.buf, so the buffer's base pointer survives the
// whole traversal and bufpool's pooldebug ledger (poison, double-release,
// leak tracking) covers Da CaPo packets exactly like GIOP frames.
type Packet struct {
	buf []byte
	off int
	end int
	// owned reports that buf belongs to the arena (release it via
	// bufpool.Put). Borrowed packets wrap caller memory for the duration
	// of a synchronous inline pass and must never be recycled.
	owned bool
}

// hdrPool recycles Packet headers themselves; buffers cycle separately
// through bufpool so header reuse never pins payload memory.
var hdrPool = sync.Pool{New: func() any { return new(Packet) }}

// getPacketSized returns a pooled packet with headroom and capacity for at
// least size payload octets; the payload starts empty.
func getPacketSized(size int) *Packet {
	p := hdrPool.Get().(*Packet)
	p.buf = bufpool.Get(defaultHeadroom + size) //coollint:owner packet owns the buffer; putPacket returns it to the arena
	p.buf = p.buf[:cap(p.buf)]
	p.off = defaultHeadroom
	p.end = defaultHeadroom
	p.owned = true
	return p
}

// getPacket returns a pooled packet with the payload copied in.
func getPacket(payload []byte) *Packet {
	p := getPacketSized(len(payload))
	p.end = p.off + copy(p.buf[p.off:], payload)
	return p
}

// wrapMessage adopts an arena-owned frame (a transport read buffer) as a
// packet without copying; off marks where the payload starts. Releasing
// the packet returns the frame to the arena.
func wrapMessage(msg []byte, off int) *Packet {
	p := hdrPool.Get().(*Packet)
	p.buf = msg
	p.off = off
	p.end = len(msg)
	p.owned = true
	return p
}

// wrapBorrowed wraps caller-owned bytes for a synchronous inline pass.
// The buffer is used in place (zero copy) and never joins the arena; a
// module that needs headroom or growth migrates the payload into an
// arena buffer transparently.
func wrapBorrowed(data []byte) *Packet {
	p := hdrPool.Get().(*Packet)
	p.buf = data
	p.off = 0
	p.end = len(data)
	p.owned = false
	return p
}

// putPacket releases a packet: the buffer returns to the arena (when
// owned) and the header to the header pool.
func putPacket(p *Packet) {
	if p == nil {
		return
	}
	if p.owned && p.buf != nil {
		bufpool.Put(p.buf)
	}
	p.buf = nil
	p.off, p.end = 0, 0
	p.owned = false
	hdrPool.Put(p)
}

// NewPacket allocates a packet with the given payload copied in and the
// default headroom in front of it. It is make-backed (no arena) so tests
// and one-off users need no release discipline.
func NewPacket(payload []byte) *Packet {
	p := &Packet{
		buf: make([]byte, defaultHeadroom+len(payload)),
		off: defaultHeadroom,
		end: defaultHeadroom + len(payload),
	}
	copy(p.buf[p.off:], payload)
	return p
}

// Bytes returns the current payload (headers included once prepended).
// The slice is read-only for borrowed packets; modules that transform the
// payload in place must use WritableBytes.
func (p *Packet) Bytes() []byte { return p.buf[p.off:p.end] }

// WritableBytes returns the payload for in-place mutation (ciphers,
// scramblers). Borrowed packets wrap caller memory, so the payload first
// migrates into an arena buffer; owned packets mutate in place with no
// copy.
func (p *Packet) WritableBytes() []byte {
	if !p.owned {
		p.migrate(defaultHeadroom, 0)
	}
	return p.buf[p.off:p.end]
}

// Len returns the current payload length.
func (p *Packet) Len() int { return p.end - p.off }

// migrate moves the payload into a fresh arena buffer with headroom octets
// in front and room for tail octets behind, releasing the old buffer when
// it was arena-owned.
func (p *Packet) migrate(headroom, tail int) {
	n := p.Len()
	b := bufpool.Get(headroom + n + tail)
	nbuf := b[:cap(b)]
	copy(nbuf[headroom:], p.Bytes())
	if p.owned {
		bufpool.Put(p.buf)
	}
	p.buf = nbuf
	p.off = headroom
	p.end = headroom + n
	p.owned = true
}

// Prepend makes room for n octets in front of the payload and returns the
// slice covering them. It grows the buffer when headroom is exhausted.
func (p *Packet) Prepend(n int) []byte {
	if n <= p.off {
		p.off -= n
		return p.buf[p.off : p.off+n]
	}
	p.migrate(defaultHeadroom+n, 0)
	p.off -= n
	return p.buf[p.off : p.off+n]
}

// StripFront removes n octets from the front of the payload.
func (p *Packet) StripFront(n int) error {
	if n < 0 || n > p.Len() {
		return fmt.Errorf("dacapo: strip %d of %d payload octets", n, p.Len())
	}
	p.off += n
	return nil
}

// Append adds octets after the payload, growing the buffer as needed.
func (p *Packet) Append(b []byte) {
	if p.end+len(b) > len(p.buf) {
		p.migrate(p.off, len(b)+defaultHeadroom)
	}
	copy(p.buf[p.end:], b)
	p.end += len(b)
}

// TrimBack removes n octets from the end of the payload.
func (p *Packet) TrimBack(n int) error {
	if n < 0 || n > p.Len() {
		return fmt.Errorf("dacapo: trim %d of %d payload octets", n, p.Len())
	}
	p.end -= n
	return nil
}

// SetPayload replaces the payload, reusing the buffer when possible. b may
// alias the current payload (in-place transforms). Borrowed packets always
// migrate: their buffer is caller memory and must not be written.
func (p *Packet) SetPayload(b []byte) {
	if !p.owned || defaultHeadroom+len(b) > len(p.buf) {
		// Copy first: migrating would release a buffer b may alias.
		nb := bufpool.Get(defaultHeadroom + len(b))
		nbuf := nb[:cap(nb)]
		copy(nbuf[defaultHeadroom:], b)
		if p.owned {
			bufpool.Put(p.buf)
		}
		p.buf = nbuf
		p.owned = true
	} else {
		copy(p.buf[defaultHeadroom:], b)
	}
	p.off = defaultHeadroom
	p.end = p.off + len(b)
}

// Clone returns an independent pooled copy of the packet.
func (p *Packet) Clone() *Packet {
	c := getPacketSized(p.Len())
	c.end = c.off + copy(c.buf[c.off:], p.Bytes())
	return c
}

// Pool recycles packets — the shared-memory packet pool of the original
// implementation, now a stateless facade over the process-wide header pool
// and the bufpool arena. The zero value is ready to use and every Pool
// shares the same storage.
type Pool struct{}

// sharedPool is the instance handed to modules via Context.Pool.
var sharedPool Pool

// Get returns a packet with the payload copied in.
//
//coollint:allocator pooled packet acquisition; storage comes from bufpool
func (Pool) Get(payload []byte) *Packet { return getPacket(payload) }

// GetSized returns an empty packet with capacity for at least size payload
// octets, for callers that assemble the payload with Append (reassembly).
//
//coollint:allocator pooled packet acquisition; storage comes from bufpool
func (Pool) GetSized(size int) *Packet { return getPacketSized(size) }

// Put returns a packet to the pool.
//
//coollint:allocator pooled packet release
func (Pool) Put(p *Packet) { putPacket(p) }

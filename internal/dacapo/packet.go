// Package dacapo reimplements the Da CaPo (Dynamic Configuration of
// Protocols) flexible protocol system integrated into COOL's transport
// layer by the paper (§5).
//
// Da CaPo splits communication into three layers: T (transport
// infrastructure, here a transport.Channel or a netsim link), C (end-to-end
// protocol functionality) and A (the application). Layer C is decomposed
// into protocol *functions* — error detection, acknowledgement, flow
// control, encryption, … — each realised by exchangeable *modules*
// (mechanisms). Modules are combined into a module graph (a stack in this
// reproduction, matching the measured configurations); each module runs in
// its own goroutine (the paper's one-thread-per-module design) and
// exchanges packet pointers over message queues (Figure 6), with a data and
// a control queue per module.
//
// The management component configures the module graph from the
// application's QoS requirements (Config), performs admission control
// (ResourceManager), signals the configuration to the peer so both ends
// instantiate matching stacks (Connect/Accept), and monitors the running
// protocol (Runtime.Stats).
package dacapo

import (
	"errors"
	"fmt"
	"sync"
)

// defaultHeadroom is the spare space kept in front of every packet payload
// so modules can prepend their protocol headers without copying the
// payload — the pointer-passing shared-memory discipline of Figure 6.
const defaultHeadroom = 64

// ErrHeadroom reports a Prepend that exceeded the packet's headroom and
// could not be satisfied in place.
var ErrHeadroom = errors.New("dacapo: insufficient packet headroom")

// Packet is the unit passed between modules. The payload lives inside a
// backing buffer with headroom at the front, so protocol headers are
// prepended in place on the way down and stripped in place on the way up.
type Packet struct {
	buf []byte
	off int
	end int
}

// NewPacket allocates a packet with the given payload copied in and the
// default headroom in front of it.
func NewPacket(payload []byte) *Packet {
	p := &Packet{
		buf: make([]byte, defaultHeadroom+len(payload)),
		off: defaultHeadroom,
		end: defaultHeadroom + len(payload),
	}
	copy(p.buf[p.off:], payload)
	return p
}

// newPacketSized allocates an empty packet with headroom and capacity for
// size payload octets.
func newPacketSized(size int) *Packet {
	return &Packet{
		buf: make([]byte, defaultHeadroom+size),
		off: defaultHeadroom,
		end: defaultHeadroom,
	}
}

// Bytes returns the current payload (headers included once prepended).
func (p *Packet) Bytes() []byte { return p.buf[p.off:p.end] }

// Len returns the current payload length.
func (p *Packet) Len() int { return p.end - p.off }

// Prepend makes room for n octets in front of the payload and returns the
// slice covering them. It grows the buffer when headroom is exhausted.
func (p *Packet) Prepend(n int) []byte {
	if n <= p.off {
		p.off -= n
		return p.buf[p.off : p.off+n]
	}
	// Grow: new buffer with fresh headroom.
	nbuf := make([]byte, defaultHeadroom+n+p.Len())
	copy(nbuf[defaultHeadroom+n:], p.Bytes())
	p.end = defaultHeadroom + n + p.Len()
	p.buf = nbuf
	p.off = defaultHeadroom
	return p.buf[p.off : p.off+n]
}

// StripFront removes n octets from the front of the payload.
func (p *Packet) StripFront(n int) error {
	if n < 0 || n > p.Len() {
		return fmt.Errorf("dacapo: strip %d of %d payload octets", n, p.Len())
	}
	p.off += n
	return nil
}

// Append adds octets after the payload, growing the buffer as needed.
func (p *Packet) Append(b []byte) {
	need := p.end + len(b)
	if need > len(p.buf) {
		nbuf := make([]byte, need+defaultHeadroom)
		copy(nbuf, p.buf[:p.end])
		p.buf = nbuf
	}
	copy(p.buf[p.end:], b)
	p.end += len(b)
}

// TrimBack removes n octets from the end of the payload.
func (p *Packet) TrimBack(n int) error {
	if n < 0 || n > p.Len() {
		return fmt.Errorf("dacapo: trim %d of %d payload octets", n, p.Len())
	}
	p.end -= n
	return nil
}

// SetPayload replaces the payload, reusing the buffer when possible.
func (p *Packet) SetPayload(b []byte) {
	p.off = defaultHeadroom
	need := p.off + len(b)
	if need > len(p.buf) {
		p.buf = make([]byte, need)
	}
	copy(p.buf[p.off:], b)
	p.end = p.off + len(b)
}

// Clone returns an independent copy of the packet.
func (p *Packet) Clone() *Packet {
	c := newPacketSized(p.Len())
	c.Append(p.Bytes())
	return c
}

// reset prepares the packet for reuse from the pool.
func (p *Packet) reset() {
	p.off = defaultHeadroom
	p.end = defaultHeadroom
}

// Pool recycles packets — the shared-memory packet pool of the original
// implementation. The zero value is ready to use.
type Pool struct {
	p sync.Pool
}

// Get returns a packet with the payload copied in.
func (pl *Pool) Get(payload []byte) *Packet {
	v := pl.p.Get()
	if v == nil {
		return NewPacket(payload)
	}
	p := v.(*Packet)
	p.SetPayload(payload)
	return p
}

// Put returns a packet to the pool.
func (pl *Pool) Put(p *Packet) {
	if p == nil {
		return
	}
	p.reset()
	pl.p.Put(p)
}

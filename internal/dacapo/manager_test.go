package dacapo_test

import (
	"errors"
	"testing"
	"time"

	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/netsim"
	"cool/internal/obs"
	"cool/internal/qos"
	"cool/internal/transport"
)

// newManagerPair returns a client and a server Da CaPo manager sharing one
// in-process T service but owning separate resource budgets, like two real
// endsystems. serverBudgetKbps of 0 means unlimited.
func newManagerPair(t *testing.T, serverBudgetKbps uint32, link qos.Capability) (client, server *dacapo.Manager) {
	t.Helper()
	inner := transport.NewInprocManager()
	lib := modules.NewLibrary()
	client = dacapo.NewManager(inner, lib, dacapo.NewResourceManager(0, 0), link)
	server = dacapo.NewManager(inner, lib, dacapo.NewResourceManager(serverBudgetKbps, 0), link)
	return client, server
}

// dialAccept establishes a configured pair through the managers.
func dialAccept(t *testing.T, cm, sm *dacapo.Manager, params qos.Set) (client, server transport.Channel, granted qos.Set) {
	t.Helper()
	l, err := sm.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		ch  transport.Channel
		err error
	}
	rc := make(chan res, 1)
	go func() {
		ch, err := l.Accept()
		rc <- res{ch, err}
	}()
	client, err = cm.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	granted, err = client.SetQoSParameter(params)
	if err != nil {
		t.Fatal(err)
	}
	r := <-rc
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.ch.Close() })
	return client, r.ch, granted
}

func TestManagerSchemeAndCapability(t *testing.T) {
	m, _ := newManagerPair(t, 0, netsim.LAN().Capability())
	if m.Scheme() != "dacapo" {
		t.Fatalf("scheme = %q", m.Scheme())
	}
	c := m.Capability()
	if l := c[qos.Reliability]; !l.Supported || l.Best != 0 {
		t.Errorf("reliability = %+v", l)
	}
	if l := c[qos.Confidentiality]; !l.Supported || l.Best != 1 {
		t.Errorf("confidentiality = %+v", l)
	}
	if l := c[qos.Throughput]; l.Best != 155_000 {
		t.Errorf("throughput = %+v", l)
	}
}

func TestManagerPlainConnection(t *testing.T) {
	cm, sm := newManagerPair(t, 0, netsim.LAN().Capability())
	client, server, granted := dialAccept(t, cm, sm, nil)
	if len(granted) != 0 {
		t.Fatalf("granted = %v, want empty", granted)
	}
	if err := client.WriteMessage([]byte("giop frame")); err != nil {
		t.Fatal(err)
	}
	got, err := server.ReadMessage()
	if err != nil || string(got) != "giop frame" {
		t.Fatalf("got %q, %v", got, err)
	}
	// Reply direction.
	if err := server.WriteMessage([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	if got, err = client.ReadMessage(); err != nil || string(got) != "reply" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestManagerQoSConfiguredConnection(t *testing.T) {
	// A lossy WAN link: full reliability requires the ARQ configuration.
	cm, sm := newManagerPair(t, 0, netsim.WAN().Capability())
	req := qos.Set{
		{Type: qos.Reliability, Request: 0, Max: 0, Min: 0},
		{Type: qos.Confidentiality, Request: 1, Max: 1, Min: 1},
	}
	client, server, granted := dialAccept(t, cm, sm, req)
	if granted.Value(qos.Reliability, 99) != 0 || granted.Value(qos.Confidentiality, 0) != 1 {
		t.Fatalf("granted = %v", granted)
	}
	qc := client.(interface{ Spec() dacapo.Spec })
	spec := qc.Spec()
	found := map[string]bool{}
	for _, ms := range spec.Modules {
		found[ms.Name] = true
	}
	if !found["window"] || !found["xorcipher"] || !found["crc32"] {
		t.Fatalf("spec = %v", spec)
	}
	if err := client.WriteMessage([]byte("secure reliable frame")); err != nil {
		t.Fatal(err)
	}
	got, err := server.ReadMessage()
	if err != nil || string(got) != "secure reliable frame" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestManagerAdmissionControl(t *testing.T) {
	cm, sm := newManagerPair(t, 1000, netsim.LAN().Capability())
	// First connection takes 800 kbps of the server's 1000 kbps budget.
	req := qos.Set{{Type: qos.Throughput, Request: 800, Max: qos.NoLimit, Min: 500}}
	dialAccept(t, cm, sm, req)

	// Second identical demand must be refused: only 200 kbps left.
	l, err := sm.Listen("srv2")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	client, err := cm.Dial("srv2")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.SetQoSParameter(req); err == nil {
		t.Fatal("admission should fail on exhausted budget")
	}
}

func TestManagerReconfiguration(t *testing.T) {
	cm, sm := newManagerPair(t, 0, netsim.LAN().Capability())
	l, err := sm.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Serve accepted connections forever (reconfiguration redials).
	go func() {
		for {
			ch, err := l.Accept()
			if err != nil {
				return
			}
			go func(ch transport.Channel) {
				for {
					msg, err := ch.ReadMessage()
					if err != nil {
						return
					}
					if err := ch.WriteMessage(msg); err != nil {
						return
					}
				}
			}(ch)
		}
	}()

	client, err := cm.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// First configuration: plain.
	if _, err := client.SetQoSParameter(nil); err != nil {
		t.Fatal(err)
	}
	if err := client.WriteMessage([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if got, err := client.ReadMessage(); err != nil || string(got) != "one" {
		t.Fatalf("echo 1: %q, %v", got, err)
	}

	// Same QoS again: must not reconnect (idempotent).
	if _, err := client.SetQoSParameter(nil); err != nil {
		t.Fatal(err)
	}

	// Reconfigure to a reliable connection.
	req := qos.Set{{Type: qos.Reliability, Request: 0, Max: 0, Min: 0}}
	granted, err := client.SetQoSParameter(req)
	if err != nil {
		t.Fatal(err)
	}
	if granted.Value(qos.Reliability, 99) != 0 {
		t.Fatalf("granted = %v", granted)
	}
	if err := client.WriteMessage([]byte("two")); err != nil {
		t.Fatal(err)
	}
	if got, err := client.ReadMessage(); err != nil || string(got) != "two" {
		t.Fatalf("echo 2: %q, %v", got, err)
	}
}

// TestManagerInPlaceReconfiguration proves that an inline→inline QoS
// change splices the running connection instead of redialling: the server
// accepts exactly once and echoes on that single channel forever, so a
// redial (which needs a second Accept) would hang the post-change echo.
func TestManagerInPlaceReconfiguration(t *testing.T) {
	cm, sm := newManagerPair(t, 0, netsim.LAN().Capability())
	l, err := sm.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// One Accept, then echo on that channel until it dies. No accept
	// loop: a second connection attempt has nowhere to land.
	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		ch, err := l.Accept()
		if err != nil {
			return
		}
		defer ch.Close()
		for {
			msg, err := ch.ReadMessage()
			if err != nil {
				return
			}
			if err := ch.WriteMessage(msg); err != nil {
				return
			}
		}
	}()

	client, err := cm.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	echo := func(payload string) {
		t.Helper()
		type rd struct {
			msg []byte
			err error
		}
		done := make(chan rd, 1)
		go func() {
			if err := client.WriteMessage([]byte(payload)); err != nil {
				done <- rd{nil, err}
				return
			}
			msg, err := client.ReadMessage()
			done <- rd{msg, err}
		}()
		select {
		case r := <-done:
			if r.err != nil || string(r.msg) != payload {
				t.Fatalf("echo %q: got %q, %v", payload, r.msg, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("echo %q timed out: connection dead or redial attempted", payload)
		}
	}

	// First configuration: an inline cipher stack.
	req := qos.Set{{Type: qos.Confidentiality, Request: 1, Max: 1, Min: 1}}
	if _, err := client.SetQoSParameter(req); err != nil {
		t.Fatal(err)
	}
	echo("ciphered")

	// Drop confidentiality: inline→inline, must splice in place.
	if _, err := client.SetQoSParameter(nil); err != nil {
		t.Fatal(err)
	}
	echo("plain after splice")

	spec := client.(interface{ Spec() dacapo.Spec }).Spec()
	if len(spec.Modules) != 0 {
		t.Fatalf("post-splice spec = %v, want empty stack", spec)
	}

	select {
	case <-serverDone:
		t.Fatal("server channel died: the reconfiguration tore down the connection")
	default:
	}
}

// TestManagerReconfigMetrics: the reconfiguration counters of live
// runtimes surface through the snapshot-time collector under the
// documented names, alongside the segment gauges.
func TestManagerReconfigMetrics(t *testing.T) {
	cm, sm := newManagerPair(t, 0, netsim.LAN().Capability())
	reg := obs.NewRegistry()
	cm.Instrument(reg, obs.NewTracer())

	l, err := sm.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		ch, err := l.Accept()
		if err != nil {
			return
		}
		defer ch.Close()
		for {
			msg, err := ch.ReadMessage()
			if err != nil {
				return
			}
			if err := ch.WriteMessage(msg); err != nil {
				return
			}
		}
	}()

	client, err := cm.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	req := qos.Set{{Type: qos.Confidentiality, Request: 1, Max: 1, Min: 1}}
	if _, err := client.SetQoSParameter(req); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("dacapo.reconfig.started"); got != 0 {
		t.Fatalf("reconfig.started before splice = %d", got)
	}
	if got := snap.Gauge("dacapo.segments.inline"); got < 1 {
		t.Fatalf("segments.inline = %d, want >= 1", got)
	}
	if got := snap.Gauge("dacapo.conns.active"); got != 1 {
		t.Fatalf("conns.active = %d", got)
	}

	// Splice to the empty stack and check the counters moved.
	if _, err := client.SetQoSParameter(nil); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counter("dacapo.reconfig.started"); got != 1 {
		t.Fatalf("reconfig.started = %d, want 1", got)
	}
	if got := snap.Counter("dacapo.reconfig.completed"); got != 1 {
		t.Fatalf("reconfig.completed = %d, want 1", got)
	}
	if got := snap.Counter("dacapo.reconfig.aborted"); got != 0 {
		t.Fatalf("reconfig.aborted = %d, want 0", got)
	}

	// Counters stay monotonic across connection churn: close the channel
	// and the totals fold into the closed-runtime bucket.
	client.Close()
	snap = reg.Snapshot()
	if got := snap.Counter("dacapo.reconfig.completed"); got != 1 {
		t.Fatalf("reconfig.completed after close = %d, want 1", got)
	}
	if got := snap.Gauge("dacapo.conns.active"); got != 0 {
		t.Fatalf("conns.active after close = %d", got)
	}
}

func TestManagerUnsatisfiableQoS(t *testing.T) {
	cm, sm := newManagerPair(t, 0, netsim.LAN().Capability())
	l, err := sm.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	client, err := cm.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Demand more throughput than the 155 Mbit/s link offers.
	req := qos.Set{{Type: qos.Throughput, Request: 1 << 30, Max: qos.NoLimit, Min: 1 << 29}}
	_, err = client.SetQoSParameter(req)
	var ne *qos.NegotiationError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want NegotiationError", err)
	}
}

func TestAcceptedChannelCannotReconfigure(t *testing.T) {
	cm, sm := newManagerPair(t, 0, netsim.LAN().Capability())
	_, server, _ := dialAccept(t, cm, sm, nil)
	req := qos.Set{{Type: qos.Reliability, Request: 0, Max: 0, Min: 0}}
	if _, err := server.SetQoSParameter(req); err == nil {
		t.Fatal("accept-side reconfiguration should fail")
	}
}

package dacapo

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPacketPrependStrip(t *testing.T) {
	p := NewPacket([]byte("payload"))
	hdr := p.Prepend(4)
	copy(hdr, "HDR!")
	if got := string(p.Bytes()); got != "HDR!payload" {
		t.Fatalf("bytes = %q", got)
	}
	if err := p.StripFront(4); err != nil {
		t.Fatal(err)
	}
	if got := string(p.Bytes()); got != "payload" {
		t.Fatalf("after strip = %q", got)
	}
}

func TestPacketPrependBeyondHeadroom(t *testing.T) {
	p := NewPacket([]byte("x"))
	big := p.Prepend(defaultHeadroom + 100)
	for i := range big {
		big[i] = 0xAA
	}
	if p.Len() != defaultHeadroom+100+1 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Bytes()[p.Len()-1] != 'x' {
		t.Fatal("payload lost during headroom growth")
	}
}

func TestPacketAppendTrim(t *testing.T) {
	p := NewPacket([]byte("ab"))
	p.Append([]byte("cd"))
	if got := string(p.Bytes()); got != "abcd" {
		t.Fatalf("bytes = %q", got)
	}
	if err := p.TrimBack(2); err != nil {
		t.Fatal(err)
	}
	if got := string(p.Bytes()); got != "ab" {
		t.Fatalf("after trim = %q", got)
	}
	if err := p.TrimBack(5); err == nil {
		t.Fatal("over-trim should fail")
	}
	if err := p.StripFront(5); err == nil {
		t.Fatal("over-strip should fail")
	}
}

func TestPacketAppendGrows(t *testing.T) {
	p := NewPacket(nil)
	chunk := bytes.Repeat([]byte{7}, 1000)
	for i := 0; i < 5; i++ {
		p.Append(chunk)
	}
	if p.Len() != 5000 {
		t.Fatalf("len = %d", p.Len())
	}
	for _, b := range p.Bytes() {
		if b != 7 {
			t.Fatal("corrupted during growth")
		}
	}
}

func TestPacketClone(t *testing.T) {
	p := NewPacket([]byte("data"))
	c := p.Clone()
	p.Bytes()[0] = 'X'
	if string(c.Bytes()) != "data" {
		t.Fatal("clone shares storage with original")
	}
}

func TestPacketSetPayload(t *testing.T) {
	p := NewPacket([]byte("short"))
	p.SetPayload(bytes.Repeat([]byte{1}, 10_000))
	if p.Len() != 10_000 {
		t.Fatalf("len = %d", p.Len())
	}
	p.SetPayload(nil)
	if p.Len() != 0 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestPoolRecycles(t *testing.T) {
	var pool Pool
	p := pool.Get([]byte("abc"))
	if string(p.Bytes()) != "abc" {
		t.Fatalf("payload = %q", p.Bytes())
	}
	pool.Put(p)
	q := pool.Get([]byte("defg"))
	if string(q.Bytes()) != "defg" {
		t.Fatalf("recycled payload = %q", q.Bytes())
	}
	pool.Put(nil) // must not panic
}

// Property: prepend(n) followed by strip(n) restores the payload for any
// content and any n up to 4096.
func TestQuickPrependStripInverse(t *testing.T) {
	f := func(payload []byte, n uint16) bool {
		k := int(n) % 4096
		p := NewPacket(payload)
		hdr := p.Prepend(k)
		for i := range hdr {
			hdr[i] = byte(i)
		}
		if p.StripFront(k) != nil {
			return false
		}
		return bytes.Equal(p.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: append then trim restores the payload.
func TestQuickAppendTrimInverse(t *testing.T) {
	f := func(payload, tail []byte) bool {
		p := NewPacket(payload)
		p.Append(tail)
		if p.TrimBack(len(tail)) != nil {
			return false
		}
		return bytes.Equal(p.Bytes(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPacketPrependStrip(b *testing.B) {
	p := NewPacket(bytes.Repeat([]byte{1}, 1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hdr := p.Prepend(8)
		hdr[0] = 1
		if err := p.StripFront(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	var pool Pool
	payload := bytes.Repeat([]byte{1}, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := pool.Get(payload)
		pool.Put(p)
	}
}

package dacapo

import (
	"fmt"
	"strconv"

	"cool/internal/qos"
)

// Configuration management: the mapping from application QoS requirements
// to a concrete protocol configuration — "Da CaPo configures in real-time
// layer C protocols that are optimally adapted to application requirements,
// network services, and available resources" (§5.1).
//
// The mapping is rule-based over the protocol functions of the module
// library:
//
//	reliability/ordering  -> sliding-window ARQ ("window") + CRC-32 error
//	                         detection near the wire
//	confidentiality       -> "xorcipher" encryption at the top of the stack
//	jitter                -> "ratelimit" traffic shaping (smooths bursts)
//	throughput            -> admission against the link capability and the
//	                         endpoint's resource budget; no module needed
//
// Names reference mechanisms registered by the standard module library
// (internal/dacapo/modules).

// Module mechanism names used by the configuration manager.
const (
	mechWindow    = "window"
	mechCRC32     = "crc32"
	mechCipher    = "xorcipher"
	mechRateLimit = "ratelimit"
)

// Configure derives the protocol configuration and the grantable QoS for a
// request over a link with the given raw capability. It returns the spec
// (A-side first), the stack's effective capability, and the granted set, or
// a *qos.NegotiationError when even the best configuration cannot satisfy
// the request.
func Configure(request qos.Set, link qos.Capability) (Spec, qos.Set, error) {
	if err := request.Validate(); err != nil {
		return Spec{}, nil, err
	}
	var spec Spec
	// Effective capability starts from the raw link and is upgraded by
	// each protocol function the configuration adds.
	eff := make(qos.Capability, len(link)+4)
	for t, l := range link {
		eff[t] = l
	}

	// Confidentiality: add encryption when the request demands it.
	if p, ok := request.Get(qos.Confidentiality); ok && p.Request > 0 {
		spec.Modules = append(spec.Modules, ModuleSpec{Name: mechCipher})
		eff[qos.Confidentiality] = qos.Limit{Best: 1, Supported: true}
	}

	// Jitter: shape traffic when a jitter bound is requested together with
	// a throughput target; the shaper runs at the requested rate.
	if j, ok := request.Get(qos.Jitter); ok {
		if rate := request.Value(qos.Throughput, 0); rate > 0 {
			spec.Modules = append(spec.Modules, ModuleSpec{
				Name: mechRateLimit,
				Args: Args{"kbps": strconv.FormatUint(uint64(rate), 10)},
			})
			// Shaping bounds queueing-induced variation to the link's own
			// jitter (the shaper cannot remove physical jitter).
			eff[qos.Jitter] = link[qos.Jitter]
			_ = j
		}
	}

	// Reliability and ordering: ARQ when the link's residual loss exceeds
	// the requested tolerance, or when ordered delivery is demanded on a
	// link that does not guarantee it.
	linkLoss := uint32(0)
	if l, ok := link[qos.Reliability]; ok {
		linkLoss = l.Best
	}
	needARQ := false
	if p, ok := request.Get(qos.Reliability); ok && p.Request < linkLoss {
		needARQ = true
	}
	if p, ok := request.Get(qos.Ordering); ok && p.Request > 0 {
		if l, ok := link[qos.Ordering]; !ok || !l.Supported || l.Best == 0 {
			needARQ = true
		}
	}
	if needARQ {
		spec.Modules = append(spec.Modules,
			ModuleSpec{Name: mechWindow, Args: Args{"window": "16"}},
			ModuleSpec{Name: mechCRC32},
		)
		// Retransmission drives residual loss to zero and delivers in
		// order; it costs latency on loss, which the raw link capability
		// already bounds only on the loss-free path. We keep the link's
		// latency figure: the negotiation is about bounds the network can
		// hold on the common path, as in the paper's prototype.
		eff[qos.Reliability] = qos.Limit{Best: 0, Supported: true}
		eff[qos.Ordering] = qos.Limit{Best: 1, Supported: true}
	}

	granted, err := qos.Negotiate(request, eff)
	if err != nil {
		return Spec{}, nil, err
	}
	return spec, granted, nil
}

// ConfigureWithResources runs Configure and then admits the granted QoS
// against the endpoint's resource budget, returning the reservation that
// must be released when the connection ends.
func ConfigureWithResources(request qos.Set, link qos.Capability, rm *ResourceManager) (Spec, qos.Set, *Reservation, error) {
	spec, granted, err := Configure(request, link)
	if err != nil {
		return Spec{}, nil, nil, err
	}
	res, err := rm.Reserve(granted)
	if err != nil {
		return Spec{}, nil, nil, fmt.Errorf("dacapo: admission: %w", err)
	}
	return spec, granted, res, nil
}

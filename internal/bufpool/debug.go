//go:build pooldebug

package bufpool

import (
	"fmt"
	"runtime"
	"sync"
	"unsafe"
)

// DebugEnabled reports whether the pooldebug runtime verifier is compiled
// in (`go test -tags pooldebug`).
const DebugEnabled = true

// poisonByte overwrites released buffers so stale aliases read garbage
// instead of the next frame's bytes.
const poisonByte = 0xDB

type debugEntry struct {
	// buf pins the backing array: while an entry exists its address cannot
	// be reused by a fresh allocation, so pointer keys stay unambiguous.
	buf   []byte
	stack string
}

var (
	debugMu sync.Mutex
	// liveBufs holds buffers handed out by Get and not yet returned.
	liveBufs = map[unsafe.Pointer]debugEntry{}
	// freeBufs holds buffers returned by Put and not yet re-acquired.
	freeBufs = map[unsafe.Pointer]debugEntry{}
)

func debugStack() string {
	var sb [16384]byte
	n := runtime.Stack(sb[:], false)
	return string(sb[:n])
}

// trackGet registers a buffer leaving the arena through Get.
func trackGet(b []byte) {
	key := unsafe.Pointer(unsafe.SliceData(b))
	debugMu.Lock()
	delete(freeBufs, key)
	liveBufs[key] = debugEntry{buf: b[:0:cap(b)], stack: debugStack()}
	debugMu.Unlock()
}

// trackPut checks and registers a buffer re-entering the arena through
// Put, panicking with the competing stacks on a double release, and
// poisons the buffer contents. Runs before the buffer re-enters the
// sync.Pool, so the poison cannot race a legitimate re-acquisition.
func trackPut(b []byte) {
	key := unsafe.Pointer(unsafe.SliceData(b))
	now := debugStack()
	debugMu.Lock()
	if prev, ok := freeBufs[key]; ok {
		debugMu.Unlock()
		panic(fmt.Sprintf("bufpool: double Put of buffer cap=%d\n--- first release:\n%s\n--- second release:\n%s", cap(b), prev.stack, now))
	}
	delete(liveBufs, key)
	freeBufs[key] = debugEntry{buf: b[:0:cap(b)], stack: now}
	debugMu.Unlock()
	p := b[:cap(b)]
	for i := range p {
		p[i] = poisonByte
	}
}

// Leaks formats every buffer currently held outside the arena with its
// acquisition stack. At a quiescent point (after releasing everything) a
// non-empty result means a leaked acquisition.
func Leaks() []string {
	debugMu.Lock()
	defer debugMu.Unlock()
	var out []string
	for _, e := range liveBufs {
		out = append(out, fmt.Sprintf("bufpool: leaked buffer cap=%d acquired at:\n%s", cap(e.buf), e.stack))
	}
	return out
}

// DebugReset forgets all tracking state (test isolation).
func DebugReset() {
	debugMu.Lock()
	liveBufs = map[unsafe.Pointer]debugEntry{}
	freeBufs = map[unsafe.Pointer]debugEntry{}
	debugMu.Unlock()
}

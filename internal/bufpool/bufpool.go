// Package bufpool is the shared frame arena of the ORB: a size-classed
// sync.Pool of byte buffers used for GIOP frames on both the encode path
// (cdr/giop marshal into pooled buffers) and the receive path (transport
// ReadMessage fills pooled buffers).
//
// Ownership contract: Get hands the caller exclusive ownership of a
// zero-length buffer with at least the requested capacity. Put returns a
// buffer to the arena; the caller must not touch it (or any slice aliasing
// it) afterwards. Putting a buffer that did not come from Get is allowed —
// it simply joins the arena — so callers can recycle unconditionally.
package bufpool

import (
	"math/bits"
	"sync"
)

// Size classes are powers of two from minClass to maxClass. Buffers larger
// than maxClass are not pooled: one giant frame must not pin megabytes.
const (
	minClass = 512
	maxClass = 1 << 20
	nClasses = 12 // 512 << 11 == 1 MiB
)

// pools[i] stores *buf headers whose capacity is at least minClass<<i.
// spare recycles the headers themselves so Put never allocates.
var (
	pools [nClasses]sync.Pool
	spare = sync.Pool{New: func() any { return new(buf) }}
)

type buf struct{ b []byte }

// classFor returns the smallest class whose buffers satisfy capacity n,
// or -1 if n exceeds the poolable range.
func classFor(n int) int {
	if n <= minClass {
		return 0
	}
	if n > maxClass {
		return -1
	}
	return bits.Len(uint(n-1)) - 9 // ceil(log2(n)) - log2(minClass)
}

// classOf returns the largest class whose minimum capacity fits within cap
// n, or -1 if n is below the smallest class.
func classOf(n int) int {
	if n < minClass {
		return -1
	}
	c := bits.Len(uint(n)) - 10 // floor(log2(n)) - log2(minClass)
	if c >= nClasses {
		c = nClasses - 1
	}
	return c
}

// Get returns a zero-length buffer with capacity at least n. The buffer is
// exclusively owned by the caller until handed back via Put.
//
//coollint:allocator arena entry point; pool-miss makes are the arena filling itself
func Get(n int) []byte {
	if c := classFor(n); c >= 0 {
		if h, _ := pools[c].Get().(*buf); h != nil {
			b := h.b
			h.b = nil
			spare.Put(h)
			trackGet(b)
			return b[:0]
		}
		b := make([]byte, 0, minClass<<c)
		trackGet(b)
		return b
	}
	return make([]byte, 0, n)
}

// Put returns b's storage to the arena. b may have come from Get or from
// anywhere else; nil and tiny or oversized buffers are simply dropped. The
// caller must not retain any alias of b after Put.
//
//coollint:allocator arena return point
func Put(b []byte) {
	c := classOf(cap(b))
	if c < 0 || cap(b) > maxClass {
		return
	}
	trackPut(b)
	h := spare.Get().(*buf)
	h.b = b[:0:cap(b)]
	pools[c].Put(h)
}

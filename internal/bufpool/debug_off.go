//go:build !pooldebug

package bufpool

// DebugEnabled reports whether the pooldebug runtime verifier is compiled
// in. In normal builds the hooks below are empty and inline to nothing.
const DebugEnabled = false

func trackGet([]byte) {}
func trackPut([]byte) {}

// Leaks always returns nil without the pooldebug tag.
func Leaks() []string { return nil }

// DebugReset is a no-op without the pooldebug tag.
func DebugReset() {}

//go:build pooldebug

package bufpool

import (
	"strings"
	"testing"
)

func TestDoublePutPanics(t *testing.T) {
	DebugReset()
	b := Get(600)
	Put(b)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second Put did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "double Put") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if !strings.Contains(msg, "first release:") || !strings.Contains(msg, "second release:") {
			t.Fatalf("panic lacks the competing stacks:\n%s", msg)
		}
	}()
	Put(b)
}

func TestReleasePoisonsBuffer(t *testing.T) {
	DebugReset()
	b := Get(600)
	b = append(b, 1, 2, 3)
	alias := b[:3]
	Put(b)
	for i, c := range alias {
		if c != poisonByte {
			t.Fatalf("alias[%d] = %#x after Put, want poison %#x", i, c, poisonByte)
		}
	}
	// Drain the poisoned buffer so later tests get it through Get (which
	// re-registers it as live) rather than tripping over stale state.
	_ = Get(600)
}

func TestLeakReportNamesAcquisition(t *testing.T) {
	DebugReset()
	leaked := Get(600)
	_ = leaked
	leaks := Leaks()
	if len(leaks) != 1 {
		t.Fatalf("Leaks() = %d entries, want 1:\n%s", len(leaks), strings.Join(leaks, "\n"))
	}
	if !strings.Contains(leaks[0], "leaked buffer") || !strings.Contains(leaks[0], "bufpool.Get") {
		t.Fatalf("leak report does not name the acquisition:\n%s", leaks[0])
	}
	Put(leaked)
	if rest := Leaks(); len(rest) != 0 {
		t.Fatalf("Leaks() after release = %d entries, want 0", len(rest))
	}
}

//go:build !race

package giop

const raceEnabled = false

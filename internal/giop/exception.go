package giop

import (
	"fmt"
	"strings"

	"cool/internal/cdr"
)

// CompletionStatus tells the client how far the operation got before the
// exception was raised.
type CompletionStatus uint32

// Completion statuses (CORBA 2.0 §4.11).
const (
	CompletedYes CompletionStatus = iota
	CompletedNo
	CompletedMaybe
)

func (s CompletionStatus) String() string {
	switch s {
	case CompletedYes:
		return "COMPLETED_YES"
	case CompletedNo:
		return "COMPLETED_NO"
	case CompletedMaybe:
		return "COMPLETED_MAYBE"
	}
	return fmt.Sprintf("CompletionStatus(%d)", uint32(s))
}

// Repository IDs of the CORBA system exceptions this ORB raises.
// RepoIDNoResources is the paper's NACK: the server (or the transport, via
// the unilateral negotiation) cannot provide the requested QoS.
const (
	RepoIDUnknown        = "IDL:omg.org/CORBA/UNKNOWN:1.0"
	RepoIDBadOperation   = "IDL:omg.org/CORBA/BAD_OPERATION:1.0"
	RepoIDBadParam       = "IDL:omg.org/CORBA/BAD_PARAM:1.0"
	RepoIDNoResources    = "IDL:omg.org/CORBA/NO_RESOURCES:1.0"
	RepoIDCommFailure    = "IDL:omg.org/CORBA/COMM_FAILURE:1.0"
	RepoIDObjectNotExist = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"
	RepoIDNoImplement    = "IDL:omg.org/CORBA/NO_IMPLEMENT:1.0"
	RepoIDMarshal        = "IDL:omg.org/CORBA/MARSHAL:1.0"
	RepoIDTransient      = "IDL:omg.org/CORBA/TRANSIENT:1.0"
	RepoIDInvObjref      = "IDL:omg.org/CORBA/INV_OBJREF:1.0"
	RepoIDTimeout        = "IDL:omg.org/CORBA/TIMEOUT:1.0"
)

// SystemException is a CORBA system exception as carried in a Reply with
// status SYSTEM_EXCEPTION: repository id, minor code, completion status.
type SystemException struct {
	ID        string
	Minor     uint32
	Completed CompletionStatus
}

// Error implements the error interface.
func (e *SystemException) Error() string {
	return fmt.Sprintf("%s (minor %d, %s)", e.Name(), e.Minor, e.Completed)
}

// Name returns the short exception name (e.g. "NO_RESOURCES") extracted
// from the repository id.
func (e *SystemException) Name() string {
	s := e.ID
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return strings.TrimSuffix(s, ":1.0")
}

// IsNACK reports whether the exception is the paper's QoS negative
// acknowledgement.
func (e *SystemException) IsNACK() bool { return e.ID == RepoIDNoResources }

// Encode writes the exception body in CDR form (as the body of a
// SYSTEM_EXCEPTION Reply).
func (e *SystemException) Encode(enc *cdr.Encoder) {
	enc.WriteString(e.ID)
	enc.WriteULong(e.Minor)
	enc.WriteULong(uint32(e.Completed))
}

// DecodeSystemException reads a system exception body.
func DecodeSystemException(dec *cdr.Decoder) (*SystemException, error) {
	var e SystemException
	var err error
	if e.ID, err = dec.ReadString(); err != nil {
		return nil, fmt.Errorf("giop: system exception id: %w", err)
	}
	if e.Minor, err = dec.ReadULong(); err != nil {
		return nil, fmt.Errorf("giop: system exception minor: %w", err)
	}
	var c uint32
	if c, err = dec.ReadULong(); err != nil {
		return nil, fmt.Errorf("giop: system exception completed: %w", err)
	}
	e.Completed = CompletionStatus(c)
	return &e, nil
}

// NoResources builds the QoS NACK exception.
//coollint:coldpath exception constructors build failure replies only
func NoResources(minor uint32) *SystemException {
	return &SystemException{ID: RepoIDNoResources, Minor: minor, Completed: CompletedNo}
}

// BadOperation reports an unknown operation name.
//coollint:coldpath exception constructors build failure replies only
func BadOperation() *SystemException {
	return &SystemException{ID: RepoIDBadOperation, Completed: CompletedNo}
}

// ObjectNotExist reports an unknown object key.
//coollint:coldpath exception constructors build failure replies only
func ObjectNotExist() *SystemException {
	return &SystemException{ID: RepoIDObjectNotExist, Completed: CompletedNo}
}

// CommFailure reports a transport-level failure.
//coollint:coldpath exception constructors build failure replies only
func CommFailure(minor uint32) *SystemException {
	return &SystemException{ID: RepoIDCommFailure, Minor: minor, Completed: CompletedMaybe}
}

// MarshalException reports a CDR encoding/decoding failure.
//coollint:coldpath exception constructors build failure replies only
func MarshalException() *SystemException {
	return &SystemException{ID: RepoIDMarshal, Completed: CompletedNo}
}

// Transient reports a temporary failure the client may retry.
//coollint:coldpath exception constructors build failure replies only
func Transient(minor uint32) *SystemException {
	return &SystemException{ID: RepoIDTransient, Minor: minor, Completed: CompletedNo}
}

// TimeoutException reports an invocation that exceeded its deadline (the
// context's or the one derived from the QoS delay bound). Completion is
// MAYBE: the request may have reached the servant before the bound fired.
//coollint:coldpath exception constructors build failure replies only
func TimeoutException() *SystemException {
	return &SystemException{ID: RepoIDTimeout, Completed: CompletedMaybe}
}

// IsTimeout reports whether the exception is a deadline expiry.
func (e *SystemException) IsTimeout() bool { return e.ID == RepoIDTimeout }

// UnknownException wraps a servant-side failure with no better mapping.
//coollint:coldpath exception constructors build failure replies only
func UnknownException() *SystemException {
	return &SystemException{ID: RepoIDUnknown, Completed: CompletedMaybe}
}

// UserException is an application-defined exception declared in IDL,
// carried in a Reply with status USER_EXCEPTION: repository id followed by
// the exception members.
type UserException struct {
	ID string
	// Data is the CDR-encoded exception members (starting right after the
	// repository id string in the Reply body).
	Data []byte
}

// Error implements the error interface.
func (e *UserException) Error() string { return "user exception " + e.ID }

// Package giop implements the General Inter-ORB Protocol message layer of
// the COOL reproduction: the seven GIOP 1.0 messages (Request, Reply,
// CancelRequest, LocateRequest, LocateReply, CloseConnection, MessageError)
// plus the paper's QoS extension.
//
// The extension follows §4.2 of the paper exactly:
//
//   - The version field of the 12-octet GIOP message header distinguishes
//     standard GIOP (major 1, minor 0) from the QoS extension (major 9,
//     minor 9).
//   - Only the Request message is modified: the RequestHeader gains a
//     qos_params field (sequence<QoSParameter>) between operation and
//     requesting_principal.
//   - A server that cannot provide the requested QoS NACKs via the standard
//     CORBA exception mechanism: a Reply with reply_status SYSTEM_EXCEPTION
//     carrying NO_RESOURCES.
//
// All other messages are byte-identical in both versions, preserving the
// paper's backwards-compatibility goal: a client that never sets QoS speaks
// plain GIOP 1.0.
package giop

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"cool/internal/bufpool"
	"cool/internal/cdr"
	"cool/internal/qos"
)

// Version is the GIOP protocol version in the message header.
type Version struct {
	Major uint8
	Minor uint8
}

// Protocol versions understood by this implementation.
var (
	// V1_0 is standard GIOP 1.0 (CORBA 2.0).
	V1_0 = Version{Major: 1, Minor: 0}
	// VQoS is the paper's QoS-extended GIOP, flagged as version 9.9.
	VQoS = Version{Major: 9, Minor: 9}
)

func (v Version) String() string { return fmt.Sprintf("GIOP %d.%d", v.Major, v.Minor) }

// QoSExtended reports whether the version carries qos_params in Request
// headers.
func (v Version) QoSExtended() bool { return v == VQoS }

// Supported reports whether this implementation can decode the version.
func (v Version) Supported() bool { return v == V1_0 || v == VQoS }

// MsgType enumerates the GIOP message kinds (CORBA 2.0 §12.2.1).
type MsgType uint8

// GIOP message types.
const (
	MsgRequest MsgType = iota
	MsgReply
	MsgCancelRequest
	MsgLocateRequest
	MsgLocateReply
	MsgCloseConnection
	MsgMessageError
)

var msgNames = [...]string{
	"Request", "Reply", "CancelRequest", "LocateRequest",
	"LocateReply", "CloseConnection", "MessageError",
}

func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// HeaderSize is the fixed size of the GIOP message header in octets.
const HeaderSize = 12

var magic = [4]byte{'G', 'I', 'O', 'P'}

// Codec errors.
var (
	ErrBadMagic           = errors.New("giop: bad magic")
	ErrUnsupportedVersion = errors.New("giop: unsupported version")
	ErrBadMessageType     = errors.New("giop: unknown message type")
	ErrTruncated          = errors.New("giop: truncated message")
	ErrTooLarge           = errors.New("giop: message exceeds size limit")
)

// MaxMessageSize bounds accepted message bodies; hostile message_size
// values beyond this are rejected before allocation.
const MaxMessageSize = 64 << 20

// Header is the GIOP message header common to all seven messages.
type Header struct {
	Version Version
	// LittleEndian is the byte_order flag: the sender's native order.
	LittleEndian bool
	Type         MsgType
	// Size is the body length in octets (excluding the header).
	Size uint32
}

// ReplyStatus enumerates the outcome field of a Reply message.
type ReplyStatus uint32

// Reply statuses (CORBA 2.0 §12.4.2).
const (
	ReplyNoException ReplyStatus = iota
	ReplyUserException
	ReplySystemException
	ReplyLocationForward
)

func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	}
	return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
}

// LocateStatus enumerates the outcome field of a LocateReply message.
type LocateStatus uint32

// Locate statuses.
const (
	LocateUnknownObject LocateStatus = iota
	LocateObjectHere
	LocateObjectForward
)

// ServiceContext is one IOP service context entry (id + encapsulated data).
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// RequestHeader is the header of a Request message. In VQoS streams it
// carries the paper's added qos_params field; in V1_0 streams QoS must be
// empty and is not encoded.
type RequestHeader struct {
	ServiceContext   []ServiceContext
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	// QoS is the qos_params field of the extended RequestHeader
	// (paper Figure 2-ii). Only encoded when the message version is VQoS.
	QoS qos.Set
	// QoSFrag, when non-nil, is the pre-encoded wire form of QoS as
	// produced by qos.EncodeSet from a 4-aligned stream position (the
	// encoding contains only 4-byte values, so it is position-independent
	// at any 4-aligned offset). MarshalRequest splices it instead of
	// re-encoding QoS, letting callers cache the bytes per binding.
	QoSFrag []byte
	// Principal is the requesting_principal identity blob.
	Principal []byte
	// traceBuf backs the trace service-context entry built by TraceSC, so
	// pooled headers carry trace context without a per-request slice.
	traceBuf [traceContextLen]byte
}

// ReplyHeader is the header of a Reply message.
type ReplyHeader struct {
	ServiceContext []ServiceContext
	RequestID      uint32
	Status         ReplyStatus
}

// CancelRequestHeader identifies the pending request to abandon.
type CancelRequestHeader struct {
	RequestID uint32
}

// LocateRequestHeader asks whether the peer can serve an object key.
type LocateRequestHeader struct {
	RequestID uint32
	ObjectKey []byte
}

// LocateReplyHeader answers a LocateRequest.
type LocateReplyHeader struct {
	RequestID uint32
	Status    LocateStatus
}

// Message is a decoded GIOP message. Decoded messages alias their frame:
// ObjectKey, Principal, service-context data, and Body all point into the
// received buffer, so a Message is valid only while its frame is.
type Message struct {
	Header Header
	// Exactly one of the following is set, according to Header.Type. For
	// decoded messages they point at storage embedded in the Message
	// itself, so decoding a header costs no extra allocation.
	Request       *RequestHeader
	Reply         *ReplyHeader
	CancelRequest *CancelRequestHeader
	LocateRequest *LocateRequestHeader
	LocateReply   *LocateReplyHeader
	// Body is the CDR-encoded payload following the message header:
	// operation parameters for Request, results or exception for Reply,
	// an IOR for LocateReply forwards. For decoded messages it aliases
	// the frame and is positioned via BodyDecoder.
	Body []byte
	// bodyOffset is the offset of Body within the full message, needed to
	// resume CDR alignment correctly when decoding.
	bodyOffset int
	// frame is the full received frame backing Body (nil for messages
	// whose Body was set directly, e.g. by non-GIOP codecs).
	frame []byte

	// Embedded storage reused across decodes of a pooled Message.
	reqStore    RequestHeader
	replyStore  ReplyHeader
	cancelStore CancelRequestHeader
	locReqStore LocateRequestHeader
	locRepStore LocateReplyHeader
	qosStore    qos.Set
	scStore     []ServiceContext
	bodyDec     cdr.Decoder
	pooled      bool
}

// BodyDecoder returns a CDR decoder positioned at the message body with the
// alignment origin of the full GIOP stream preserved. The decoder is
// embedded in the Message and reads the frame in place (no copy): it is
// reset on every call, so at most one body decode may be in progress per
// message, and it must not be used after the message is released.
func (m *Message) BodyDecoder() *cdr.Decoder {
	if m.frame != nil {
		m.bodyDec.Reset(m.frame, m.Header.LittleEndian, m.bodyOffset)
	} else {
		m.bodyDec.Reset(m.Body, m.Header.LittleEndian, 0)
	}
	return &m.bodyDec
}

var msgPool = sync.Pool{New: func() any { return new(Message) }}

// AcquireMessage returns a pooled Message for use with UnmarshalInto-style
// decoding. Release with ReleaseMessage.
func AcquireMessage() *Message {
	m := msgPool.Get().(*Message)
	m.pooled = true
	trackMsgAcquire(m)
	return m
}

// ReleaseMessage returns a Message obtained from UnmarshalPooled (or
// AcquireMessage) and the frame it decoded to their pools. The message, its
// header fields, its BodyDecoder, and every slice aliasing the frame become
// invalid. Messages produced by plain Unmarshal are ignored, so callers may
// release unconditionally.
func ReleaseMessage(m *Message) {
	if m == nil {
		return
	}
	trackMsgRelease(m)
	if !m.pooled {
		return
	}
	frame := m.frame
	m.Request, m.Reply, m.CancelRequest, m.LocateRequest, m.LocateReply = nil, nil, nil, nil, nil
	m.Body = nil
	m.frame = nil
	m.bodyOffset = 0
	m.bodyDec.Reset(nil, false, 0)
	m.pooled = false
	msgPool.Put(m)
	if frame != nil {
		bufpool.Put(frame)
	}
}

// ReleaseFrame returns a marshalled frame to the shared buffer arena once
// it has been written to a transport. It is safe to call on any frame,
// pooled or not.
func ReleaseFrame(frame []byte) { bufpool.Put(frame) }

// encodeHeaderPlaceholder appends a 12-octet header with a zero size field;
// patchSize fixes the size once the body is known.
func encodeHeaderPlaceholder(enc *cdr.Encoder, v Version, t MsgType) {
	enc.WriteOctets(magic[:])
	enc.WriteOctet(v.Major)
	enc.WriteOctet(v.Minor)
	enc.WriteBoolean(enc.LittleEndian())
	enc.WriteOctet(uint8(t))
	enc.WriteULong(0)
}

func patchSize(frame []byte, littleEndian bool) {
	size := uint32(len(frame) - HeaderSize)
	b := frame[8:12]
	if littleEndian {
		b[0], b[1], b[2], b[3] = byte(size), byte(size>>8), byte(size>>16), byte(size>>24)
	} else {
		b[0], b[1], b[2], b[3] = byte(size>>24), byte(size>>16), byte(size>>8), byte(size)
	}
}

func encodeServiceContexts(enc *cdr.Encoder, scs []ServiceContext) {
	enc.WriteULong(uint32(len(scs)))
	for _, sc := range scs {
		enc.WriteULong(sc.ID)
		enc.WriteOctetSeq(sc.Data)
	}
}

// decodeServiceContexts reads the service-context list, appending to scs
// (usually a truncated scratch slice owned by the Message) so repeated
// decodes reuse its storage. Entry Data aliases the decoder's buffer.
func decodeServiceContexts(dec *cdr.Decoder, scs []ServiceContext) ([]ServiceContext, error) {
	n, err := dec.ReadULong()
	if err != nil {
		return nil, err
	}
	if int64(n)*8 > int64(dec.Remaining()) {
		return nil, fmt.Errorf("giop: service context count %d too large", n)
	}
	for i := uint32(0); i < n; i++ {
		var sc ServiceContext
		if sc.ID, err = dec.ReadULong(); err != nil {
			return nil, err
		}
		if sc.Data, err = dec.ReadOctetSeq(); err != nil {
			return nil, err
		}
		scs = append(scs, sc) //coollint:allocok amortized into the Message-owned scratch (scStore[:0])
	}
	return scs, nil
}

// MarshalRequest encodes a Request message. The version selects the header
// layout: qos_params is emitted only for VQoS; passing QoS parameters with
// V1_0 is an error (standard GIOP cannot carry them).
//
// The returned frame is drawn from the shared buffer arena: once it has
// been written to a transport (which copies or consumes it), hand it back
// via ReleaseFrame so steady-state marshalling allocates nothing.
//
//coollint:hotpath request marshal, one per invocation
func MarshalRequest(v Version, littleEndian bool, hdr *RequestHeader, body func(*cdr.Encoder)) ([]byte, error) {
	if !v.Supported() {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedVersion, v)
	}
	if (len(hdr.QoS) > 0 || len(hdr.QoSFrag) > 0) && !v.QoSExtended() {
		return nil, fmt.Errorf("giop: %v cannot carry qos_params; use VQoS", v)
	}
	enc := cdr.AcquireEncoder(littleEndian)
	encodeHeaderPlaceholder(enc, v, MsgRequest)
	encodeServiceContexts(enc, hdr.ServiceContext)
	enc.WriteULong(hdr.RequestID)
	enc.WriteBoolean(hdr.ResponseExpected)
	enc.WriteOctetSeq(hdr.ObjectKey)
	enc.WriteString(hdr.Operation)
	if v.QoSExtended() {
		if hdr.QoSFrag != nil {
			// qos_params encoded once on the binding: splice the cached
			// bytes at the 4-aligned offset its encoding assumed.
			enc.Align(4)
			enc.WriteOctets(hdr.QoSFrag)
		} else {
			qos.EncodeSet(enc, hdr.QoS)
		}
	}
	enc.WriteOctetSeq(hdr.Principal)
	if body != nil {
		body(enc)
	}
	frame := enc.Detach()
	patchSize(frame, littleEndian)
	return frame, nil
}

// MarshalReply encodes a Reply message. Replies are version-independent;
// the version is echoed so a QoS-aware exchange stays self-describing.
// The returned frame is pooled; see MarshalRequest.
//
//coollint:hotpath reply marshal, one per dispatched request
func MarshalReply(v Version, littleEndian bool, hdr *ReplyHeader, body func(*cdr.Encoder)) ([]byte, error) {
	if !v.Supported() {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedVersion, v)
	}
	enc := cdr.AcquireEncoder(littleEndian)
	encodeHeaderPlaceholder(enc, v, MsgReply)
	encodeServiceContexts(enc, hdr.ServiceContext)
	enc.WriteULong(hdr.RequestID)
	enc.WriteULong(uint32(hdr.Status))
	if body != nil {
		body(enc)
	}
	frame := enc.Detach()
	patchSize(frame, littleEndian)
	return frame, nil
}

// MarshalCancelRequest encodes a CancelRequest message.
func MarshalCancelRequest(v Version, littleEndian bool, requestID uint32) ([]byte, error) {
	if !v.Supported() {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedVersion, v)
	}
	enc := cdr.AcquireEncoder(littleEndian)
	encodeHeaderPlaceholder(enc, v, MsgCancelRequest)
	enc.WriteULong(requestID)
	frame := enc.Detach()
	patchSize(frame, littleEndian)
	return frame, nil
}

// MarshalLocateRequest encodes a LocateRequest message.
func MarshalLocateRequest(v Version, littleEndian bool, requestID uint32, objectKey []byte) ([]byte, error) {
	if !v.Supported() {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedVersion, v)
	}
	enc := cdr.AcquireEncoder(littleEndian)
	encodeHeaderPlaceholder(enc, v, MsgLocateRequest)
	enc.WriteULong(requestID)
	enc.WriteOctetSeq(objectKey)
	frame := enc.Detach()
	patchSize(frame, littleEndian)
	return frame, nil
}

// MarshalLocateReply encodes a LocateReply message. body (an IOR) is only
// present for LocateObjectForward.
func MarshalLocateReply(v Version, littleEndian bool, requestID uint32, status LocateStatus, body func(*cdr.Encoder)) ([]byte, error) {
	if !v.Supported() {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedVersion, v)
	}
	enc := cdr.AcquireEncoder(littleEndian)
	encodeHeaderPlaceholder(enc, v, MsgLocateReply)
	enc.WriteULong(requestID)
	enc.WriteULong(uint32(status))
	if body != nil {
		body(enc)
	}
	frame := enc.Detach()
	patchSize(frame, littleEndian)
	return frame, nil
}

// MarshalCloseConnection encodes a CloseConnection message (no body).
func MarshalCloseConnection(v Version, littleEndian bool) ([]byte, error) {
	return marshalBodyless(v, littleEndian, MsgCloseConnection)
}

// MarshalMessageError encodes a MessageError message (no body).
func MarshalMessageError(v Version, littleEndian bool) ([]byte, error) {
	return marshalBodyless(v, littleEndian, MsgMessageError)
}

func marshalBodyless(v Version, littleEndian bool, t MsgType) ([]byte, error) {
	if !v.Supported() {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedVersion, v)
	}
	enc := cdr.AcquireEncoder(littleEndian)
	encodeHeaderPlaceholder(enc, v, t)
	frame := enc.Detach()
	patchSize(frame, littleEndian)
	return frame, nil
}

// DecodeHeader decodes the 12-octet GIOP header. The remaining Size octets
// form the body.
func DecodeHeader(frame []byte) (Header, error) {
	var h Header
	if len(frame) < HeaderSize {
		return h, fmt.Errorf("%w: %d octets", ErrTruncated, len(frame))
	}
	if [4]byte(frame[:4]) != magic {
		return h, fmt.Errorf("%w: % x", ErrBadMagic, frame[:4])
	}
	h.Version = Version{Major: frame[4], Minor: frame[5]}
	if !h.Version.Supported() {
		return h, fmt.Errorf("%w: %v", ErrUnsupportedVersion, h.Version)
	}
	h.LittleEndian = frame[6] != 0
	h.Type = MsgType(frame[7])
	if h.Type > MsgMessageError {
		return h, fmt.Errorf("%w: %d", ErrBadMessageType, frame[7])
	}
	if h.LittleEndian {
		h.Size = uint32(frame[8]) | uint32(frame[9])<<8 | uint32(frame[10])<<16 | uint32(frame[11])<<24
	} else {
		h.Size = uint32(frame[8])<<24 | uint32(frame[9])<<16 | uint32(frame[10])<<8 | uint32(frame[11])
	}
	if h.Size > MaxMessageSize {
		return h, fmt.Errorf("%w: %d octets", ErrTooLarge, h.Size)
	}
	return h, nil
}

// Unmarshal decodes a complete GIOP message frame (header + body) into a
// freshly allocated Message that the caller may retain indefinitely (it
// still aliases frame; see Message).
func Unmarshal(frame []byte) (*Message, error) {
	m := new(Message)
	if err := decodeInto(m, frame); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalPooled decodes a frame into a pooled Message. On success the
// Message takes ownership of frame: ReleaseMessage returns both to their
// pools, and steady-state decoding allocates nothing (the operation string
// is interned, headers live inside the Message, sequences alias the
// frame). On error the caller keeps ownership of frame.
func UnmarshalPooled(frame []byte) (*Message, error) {
	m := AcquireMessage()
	if err := decodeInto(m, frame); err != nil {
		m.frame = nil
		ReleaseMessage(m)
		return nil, err
	}
	return m, nil
}

// decodeFail wraps a header-field decode error with the message type. A
// package-level function, not a closure inside decodeInto: a closure
// would capture the header and allocate on every decode, including the
// ones that succeed.
func decodeFail(t MsgType, err error) error {
	return fmt.Errorf("giop: decode %v: %w", t, err)
}

// decodeInto is the single warm decode spine: both Unmarshal and
// UnmarshalPooled land here.
//
//coollint:hotpath pooled unmarshal spine
func decodeInto(m *Message, frame []byte) error {
	h, err := DecodeHeader(frame)
	if err != nil {
		return err
	}
	if len(frame) != HeaderSize+int(h.Size) {
		return fmt.Errorf("%w: header says %d body octets, frame has %d",
			ErrTruncated, h.Size, len(frame)-HeaderSize)
	}
	m.Header = h
	dec := &m.bodyDec
	dec.Reset(frame, h.LittleEndian, HeaderSize)

	switch h.Type {
	case MsgRequest:
		m.reqStore = RequestHeader{}
		rh := &m.reqStore
		if rh.ServiceContext, err = decodeServiceContexts(dec, m.scStore[:0]); err != nil {
			return decodeFail(h.Type, err)
		}
		m.scStore = rh.ServiceContext[:0]
		if rh.RequestID, err = dec.ReadULong(); err != nil {
			return decodeFail(h.Type, err)
		}
		if rh.ResponseExpected, err = dec.ReadBoolean(); err != nil {
			return decodeFail(h.Type, err)
		}
		if rh.ObjectKey, err = dec.ReadOctetSeq(); err != nil {
			return decodeFail(h.Type, err)
		}
		var op []byte
		if op, err = dec.ReadStringBytes(); err != nil {
			return decodeFail(h.Type, err)
		}
		rh.Operation = internOp(op)
		if h.Version.QoSExtended() {
			if rh.QoS, err = qos.DecodeSetAppend(dec, m.qosStore[:0]); err != nil {
				return decodeFail(h.Type, err)
			}
			m.qosStore = rh.QoS[:0]
		}
		if rh.Principal, err = dec.ReadOctetSeq(); err != nil {
			return decodeFail(h.Type, err)
		}
		m.Request = rh
	case MsgReply:
		m.replyStore = ReplyHeader{}
		rh := &m.replyStore
		if rh.ServiceContext, err = decodeServiceContexts(dec, m.scStore[:0]); err != nil {
			return decodeFail(h.Type, err)
		}
		m.scStore = rh.ServiceContext[:0]
		if rh.RequestID, err = dec.ReadULong(); err != nil {
			return decodeFail(h.Type, err)
		}
		var st uint32
		if st, err = dec.ReadULong(); err != nil {
			return decodeFail(h.Type, err)
		}
		rh.Status = ReplyStatus(st)
		m.Reply = rh
	case MsgCancelRequest:
		m.cancelStore = CancelRequestHeader{}
		ch := &m.cancelStore
		if ch.RequestID, err = dec.ReadULong(); err != nil {
			return decodeFail(h.Type, err)
		}
		m.CancelRequest = ch
	case MsgLocateRequest:
		m.locReqStore = LocateRequestHeader{}
		lh := &m.locReqStore
		if lh.RequestID, err = dec.ReadULong(); err != nil {
			return decodeFail(h.Type, err)
		}
		if lh.ObjectKey, err = dec.ReadOctetSeq(); err != nil {
			return decodeFail(h.Type, err)
		}
		m.LocateRequest = lh
	case MsgLocateReply:
		m.locRepStore = LocateReplyHeader{}
		lh := &m.locRepStore
		if lh.RequestID, err = dec.ReadULong(); err != nil {
			return decodeFail(h.Type, err)
		}
		var st uint32
		if st, err = dec.ReadULong(); err != nil {
			return decodeFail(h.Type, err)
		}
		lh.Status = LocateStatus(st)
		m.LocateReply = lh
	case MsgCloseConnection, MsgMessageError:
		// No body.
	}
	m.bodyOffset = dec.Pos()
	m.Body = frame[dec.Pos():]
	m.frame = frame
	return nil
}

// WriteFrame writes a complete marshalled frame to w.
func WriteFrame(w io.Writer, frame []byte) error {
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one GIOP message from a byte stream using the
// message_size header field for framing, as IIOP does over TCP.
func ReadFrame(r io.Reader) ([]byte, error) {
	hdr := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	h, err := DecodeHeader(hdr)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, HeaderSize+int(h.Size))
	copy(frame, hdr)
	if _, err := io.ReadFull(r, frame[HeaderSize:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return frame, nil
}

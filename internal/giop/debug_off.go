//go:build !pooldebug

package giop

func trackMsgAcquire(*Message) {}
func trackMsgRelease(*Message) {}

// DebugLeaks always returns nil without the pooldebug tag.
func DebugLeaks() []string { return nil }

// DebugReset is a no-op without the pooldebug tag.
func DebugReset() {}

package giop

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"cool/internal/cdr"
	"cool/internal/qos"
)

func TestHeaderWireFormat(t *testing.T) {
	frame, err := MarshalCancelRequest(V1_0, cdr.BigEndian, 0x01020304)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		'G', 'I', 'O', 'P', // magic
		1, 0, // version 1.0
		0,                      // big-endian
		byte(MsgCancelRequest), // type
		0, 0, 0, 4,             // size
		1, 2, 3, 4, // request id
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("frame = % x\nwant    % x", frame, want)
	}
}

func TestVersionPredicates(t *testing.T) {
	if V1_0.QoSExtended() {
		t.Error("1.0 must not be QoS-extended")
	}
	if !VQoS.QoSExtended() {
		t.Error("9.9 must be QoS-extended")
	}
	if !V1_0.Supported() || !VQoS.Supported() {
		t.Error("both versions must be supported")
	}
	if (Version{2, 0}).Supported() {
		t.Error("GIOP 2.0 is not supported")
	}
	if got := VQoS.String(); got != "GIOP 9.9" {
		t.Errorf("String = %q", got)
	}
}

func requestHeader(withQoS bool) *RequestHeader {
	h := &RequestHeader{
		ServiceContext:   []ServiceContext{{ID: 7, Data: []byte{0, 1, 2}}},
		RequestID:        42,
		ResponseExpected: true,
		ObjectKey:        []byte("object-key-1"),
		Operation:        "getFrame",
		Principal:        []byte("client-a"),
	}
	if withQoS {
		h.QoS = qos.Set{
			{Type: qos.Throughput, Request: 2048, Max: qos.NoLimit, Min: 512},
			{Type: qos.Latency, Request: 5000, Max: 20000, Min: 0},
		}
	}
	return h
}

func TestRequestRoundTripBothVersions(t *testing.T) {
	for _, tt := range []struct {
		name    string
		version Version
		withQoS bool
	}{
		{"GIOP 1.0", V1_0, false},
		{"GIOP 9.9 no qos", VQoS, false},
		{"GIOP 9.9 with qos", VQoS, true},
	} {
		t.Run(tt.name, func(t *testing.T) {
			for _, little := range []bool{false, true} {
				hdr := requestHeader(tt.withQoS)
				frame, err := MarshalRequest(tt.version, little, hdr, func(e *cdr.Encoder) {
					e.WriteULong(99)
					e.WriteString("arg")
				})
				if err != nil {
					t.Fatal(err)
				}
				m, err := Unmarshal(frame)
				if err != nil {
					t.Fatal(err)
				}
				if m.Header.Type != MsgRequest || m.Header.Version != tt.version {
					t.Fatalf("header = %+v", m.Header)
				}
				got := m.Request
				if got == nil {
					t.Fatal("no request header")
				}
				if got.RequestID != 42 || !got.ResponseExpected ||
					string(got.ObjectKey) != "object-key-1" || got.Operation != "getFrame" ||
					string(got.Principal) != "client-a" {
					t.Fatalf("request = %+v", got)
				}
				if len(got.ServiceContext) != 1 || got.ServiceContext[0].ID != 7 {
					t.Fatalf("service contexts = %+v", got.ServiceContext)
				}
				if !got.QoS.Equal(hdr.QoS) {
					t.Fatalf("qos = %v, want %v", got.QoS, hdr.QoS)
				}
				dec := m.BodyDecoder()
				if v, err := dec.ReadULong(); err != nil || v != 99 {
					t.Fatalf("body ulong = %d, %v", v, err)
				}
				if s, err := dec.ReadString(); err != nil || s != "arg" {
					t.Fatalf("body string = %q, %v", s, err)
				}
			}
		})
	}
}

func TestQoSParamsRejectedOnGIOP10(t *testing.T) {
	hdr := requestHeader(true)
	if _, err := MarshalRequest(V1_0, cdr.BigEndian, hdr, nil); err == nil {
		t.Fatal("GIOP 1.0 must refuse qos_params")
	}
}

func TestGIOP10And99RequestsDifferOnlyInQoSField(t *testing.T) {
	// Backwards-compatibility check: a 9.9 Request without QoS is the 1.0
	// encoding plus an empty sequence in the header, nothing else.
	hdr := requestHeader(false)
	f10, err := MarshalRequest(V1_0, cdr.BigEndian, hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	f99, err := MarshalRequest(VQoS, cdr.BigEndian, hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f99) != len(f10)+4 {
		t.Errorf("size delta = %d, want exactly 4 (empty qos_params count)", len(f99)-len(f10))
	}
}

func TestReplyRoundTrip(t *testing.T) {
	hdr := &ReplyHeader{RequestID: 42, Status: ReplyNoException}
	frame, err := MarshalReply(VQoS, cdr.LittleEndian, hdr, func(e *cdr.Encoder) {
		e.WriteDouble(2.5)
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reply == nil || m.Reply.RequestID != 42 || m.Reply.Status != ReplyNoException {
		t.Fatalf("reply = %+v", m.Reply)
	}
	if v, err := m.BodyDecoder().ReadDouble(); err != nil || v != 2.5 {
		t.Fatalf("body = %v, %v", v, err)
	}
}

func TestNACKReplyRoundTrip(t *testing.T) {
	// The paper's negative acknowledgement: SYSTEM_EXCEPTION/NO_RESOURCES.
	nack := NoResources(3)
	frame, err := MarshalReply(VQoS, cdr.BigEndian,
		&ReplyHeader{RequestID: 7, Status: ReplySystemException}, nack.Encode)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reply.Status != ReplySystemException {
		t.Fatalf("status = %v", m.Reply.Status)
	}
	got, err := DecodeSystemException(m.BodyDecoder())
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsNACK() || got.Minor != 3 || got.Completed != CompletedNo {
		t.Fatalf("exception = %+v", got)
	}
	if got.Name() != "NO_RESOURCES" {
		t.Fatalf("name = %q", got.Name())
	}
}

func TestLocateRoundTrip(t *testing.T) {
	frame, err := MarshalLocateRequest(V1_0, cdr.BigEndian, 5, []byte("key"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if m.LocateRequest == nil || m.LocateRequest.RequestID != 5 || string(m.LocateRequest.ObjectKey) != "key" {
		t.Fatalf("locate request = %+v", m.LocateRequest)
	}

	frame, err = MarshalLocateReply(V1_0, cdr.BigEndian, 5, LocateObjectHere, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err = Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if m.LocateReply == nil || m.LocateReply.Status != LocateObjectHere {
		t.Fatalf("locate reply = %+v", m.LocateReply)
	}
}

func TestBodylessMessages(t *testing.T) {
	for _, tt := range []struct {
		name string
		fn   func(Version, bool) ([]byte, error)
		typ  MsgType
	}{
		{"close", MarshalCloseConnection, MsgCloseConnection},
		{"error", MarshalMessageError, MsgMessageError},
	} {
		t.Run(tt.name, func(t *testing.T) {
			frame, err := tt.fn(V1_0, cdr.BigEndian)
			if err != nil {
				t.Fatal(err)
			}
			if len(frame) != HeaderSize {
				t.Fatalf("len = %d", len(frame))
			}
			m, err := Unmarshal(frame)
			if err != nil {
				t.Fatal(err)
			}
			if m.Header.Type != tt.typ || m.Header.Size != 0 {
				t.Fatalf("header = %+v", m.Header)
			}
		})
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	good, _ := MarshalCloseConnection(V1_0, cdr.BigEndian)

	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeHeader(good[:4]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[0] = 'X'
		if _, err := DecodeHeader(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[4], bad[5] = 3, 1
		if _, err := DecodeHeader(bad); !errors.Is(err, ErrUnsupportedVersion) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[7] = 200
		if _, err := DecodeHeader(bad); !errors.Is(err, ErrBadMessageType) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("huge size", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[8], bad[9], bad[10], bad[11] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, err := DecodeHeader(bad); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("size mismatch", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[11] = 4 // claims 4 body octets that are not there
		if _, err := Unmarshal(bad); !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestReadFrameStream(t *testing.T) {
	var buf bytes.Buffer
	f1, _ := MarshalCancelRequest(V1_0, cdr.BigEndian, 1)
	f2, _ := MarshalCancelRequest(VQoS, cdr.LittleEndian, 2)
	buf.Write(f1)
	buf.Write(f2)

	got1, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, f1) || !bytes.Equal(got2, f2) {
		t.Fatal("frames not split correctly")
	}
	m2, err := Unmarshal(got2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.CancelRequest.RequestID != 2 {
		t.Fatalf("request id = %d", m2.CancelRequest.RequestID)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	f, _ := MarshalLocateRequest(V1_0, cdr.BigEndian, 1, []byte("key"))
	if _, err := ReadFrame(bytes.NewReader(f[:len(f)-2])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestUserException(t *testing.T) {
	e := &UserException{ID: "IDL:demo/NotReady:1.0", Data: []byte{1, 2}}
	if e.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestSystemExceptionHelpers(t *testing.T) {
	tests := []struct {
		exc  *SystemException
		name string
		nack bool
	}{
		{NoResources(1), "NO_RESOURCES", true},
		{BadOperation(), "BAD_OPERATION", false},
		{ObjectNotExist(), "OBJECT_NOT_EXIST", false},
		{CommFailure(0), "COMM_FAILURE", false},
		{MarshalException(), "MARSHAL", false},
		{Transient(2), "TRANSIENT", false},
		{UnknownException(), "UNKNOWN", false},
	}
	for _, tt := range tests {
		if tt.exc.Name() != tt.name {
			t.Errorf("Name() = %q, want %q", tt.exc.Name(), tt.name)
		}
		if tt.exc.IsNACK() != tt.nack {
			t.Errorf("%s IsNACK = %v", tt.name, tt.exc.IsNACK())
		}
		if tt.exc.Error() == "" {
			t.Errorf("%s empty Error()", tt.name)
		}
	}
}

// Property: any request header round-trips through VQoS marshalling.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(id uint32, resp bool, key []byte, op string, principal []byte,
		qosRaw []struct {
			T   uint8
			Req uint32
		}, little bool) bool {
		op = sanitizeString(op)
		var set qos.Set
		for _, q := range qosRaw {
			set = append(set, qos.Parameter{
				Type: qos.ParamType(q.T), Request: q.Req, Max: qos.NoLimit,
			})
		}
		hdr := &RequestHeader{
			RequestID:        id,
			ResponseExpected: resp,
			ObjectKey:        key,
			Operation:        op,
			QoS:              set,
			Principal:        principal,
		}
		frame, err := MarshalRequest(VQoS, little, hdr, nil)
		if err != nil {
			return false
		}
		m, err := Unmarshal(frame)
		if err != nil {
			return false
		}
		r := m.Request
		return r.RequestID == id && r.ResponseExpected == resp &&
			bytes.Equal(r.ObjectKey, key) && r.Operation == op &&
			bytes.Equal(r.Principal, principal) && len(r.QoS) == len(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Unmarshal never panics on arbitrary input.
func TestQuickUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
	// Also fuzz bodies behind a valid header.
	g := func(body []byte, typ uint8, little bool) bool {
		enc := cdr.NewEncoder(little)
		enc.WriteOctets([]byte("GIOP"))
		enc.WriteOctet(9)
		enc.WriteOctet(9)
		enc.WriteBoolean(little)
		enc.WriteOctet(typ % 7)
		enc.WriteULong(uint32(len(body)))
		enc.WriteOctets(body)
		Unmarshal(enc.Bytes())
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func sanitizeString(s string) string {
	b := make([]byte, 0, len(s))
	for _, c := range []byte(s) {
		if c != 0 {
			b = append(b, c)
		}
	}
	return string(b)
}

func BenchmarkMarshalRequestGIOP10(b *testing.B) {
	hdr := requestHeader(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalRequest(V1_0, cdr.BigEndian, hdr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalRequestQoS(b *testing.B) {
	hdr := requestHeader(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MarshalRequest(VQoS, cdr.BigEndian, hdr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalRequestQoS(b *testing.B) {
	frame, err := MarshalRequest(VQoS, cdr.BigEndian, requestHeader(true), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForgedQoSCountRejected(t *testing.T) {
	// A hostile peer can claim an arbitrarily large qos_params count in a
	// VQoS Request header; the decoder must refuse it before sizing any
	// allocation off it. QoSFrag splices pre-encoded bytes verbatim, so it
	// doubles as a forgery vector: four 0xFF octets claim 2^32-1 entries
	// with none present.
	hdr := requestHeader(false)
	hdr.QoSFrag = []byte{0xFF, 0xFF, 0xFF, 0xFF}
	frame, err := MarshalRequest(VQoS, cdr.BigEndian, hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseFrame(frame)
	if _, err := Unmarshal(frame); err == nil || !strings.Contains(err.Error(), "set count") {
		t.Fatalf("forged qos_params count not rejected: %v", err)
	}
}

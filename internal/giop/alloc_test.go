package giop

import (
	"testing"

	"cool/internal/bufpool"
	"cool/internal/cdr"
	"cool/internal/qos"
)

// allocHdr builds the Request header used by the allocation budgets; the
// payload mirrors BenchmarkRequestMarshal so budgets and benchmarks track
// the same wire shape.
func allocHdr(nqos int) *RequestHeader {
	var s qos.Set
	for i := 0; i < nqos; i++ {
		s = append(s, qos.Parameter{Type: qos.Throughput, Request: uint32(i + 1), Max: qos.NoLimit})
	}
	return &RequestHeader{
		RequestID:        7,
		ResponseExpected: true,
		ObjectKey:        []byte("object-key-0001"),
		Operation:        "getFrame",
		QoS:              s,
	}
}

// TestRequestRoundTripAllocBudget pins the steady-state allocation count of
// the pooled marshal/unmarshal path: with the encoder arena, frame pool,
// pooled messages, operation interning, and scratch QoS/service-context
// decoding, a full Request round trip must not allocate at all.
func TestRequestRoundTripAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget measured without -race")
	}
	if bufpool.DebugEnabled {
		t.Skip("pooldebug bookkeeping allocates; budget measured without -tags pooldebug")
	}
	variants := []struct {
		name    string
		version Version
		nqos    int
	}{
		{"GIOP1.0", V1_0, 0},
		{"GIOP9.9-0params", VQoS, 0},
		{"GIOP9.9-2params", VQoS, 2},
		{"GIOP9.9-4params", VQoS, 4},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			hdr := allocHdr(v.nqos)
			roundTrip := func() {
				frame, err := MarshalRequest(v.version, cdr.BigEndian, hdr, nil)
				if err != nil {
					t.Fatal(err)
				}
				m, err := UnmarshalPooled(frame)
				if err != nil {
					t.Fatal(err)
				}
				if m.Request.Operation != "getFrame" || len(m.Request.QoS) != v.nqos {
					t.Fatalf("bad decode: %+v", m.Request)
				}
				ReleaseMessage(m)
			}
			// Warm the pools and the operation intern table.
			for i := 0; i < 32; i++ {
				roundTrip()
			}
			if allocs := testing.AllocsPerRun(200, roundTrip); allocs > 0 {
				t.Errorf("round trip allocated %.2f objects/op, budget is 0", allocs)
			}
		})
	}
}

// TestReplyRoundTripAllocBudget is the server-direction counterpart.
func TestReplyRoundTripAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget measured without -race")
	}
	if bufpool.DebugEnabled {
		t.Skip("pooldebug bookkeeping allocates; budget measured without -tags pooldebug")
	}
	hdr := &ReplyHeader{RequestID: 7, Status: ReplyNoException}
	body := func(enc *cdr.Encoder) { enc.WriteULong(42) }
	roundTrip := func() {
		frame, err := MarshalReply(V1_0, cdr.BigEndian, hdr, body)
		if err != nil {
			t.Fatal(err)
		}
		m, err := UnmarshalPooled(frame)
		if err != nil {
			t.Fatal(err)
		}
		if m.Reply.RequestID != 7 {
			t.Fatalf("bad decode: %+v", m.Reply)
		}
		ReleaseMessage(m)
	}
	for i := 0; i < 32; i++ {
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(200, roundTrip); allocs > 0 {
		t.Errorf("reply round trip allocated %.2f objects/op, budget is 0", allocs)
	}
}

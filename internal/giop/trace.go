package giop

import "encoding/binary"

// TraceContextID is the service-context ID used to carry observability
// trace context on Request messages. The value is from the vendor range
// (no OMG-assigned meaning); it spells "MULT" in ASCII.
const TraceContextID uint32 = 0x4D554C54

// traceContextLen is the payload size: two big-endian 64-bit IDs
// (trace, span).
const traceContextLen = 16

// TraceContext builds the service-context entry carrying the client's
// trace ID and the client-side span ID, so the server can start a child
// span that joins the caller's trace.
func TraceContext(trace, span uint64) ServiceContext {
	data := make([]byte, traceContextLen)
	binary.BigEndian.PutUint64(data[0:8], trace)
	binary.BigEndian.PutUint64(data[8:16], span)
	return ServiceContext{ID: TraceContextID, Data: data}
}

// TraceSC is TraceContext encoded into the header's own scratch storage:
// pooled request headers attach trace context without allocating (the
// entry's Data is consumed by MarshalRequest, which copies it into the
// frame, before the header returns to its pool).
func (h *RequestHeader) TraceSC(trace, span uint64) ServiceContext {
	binary.BigEndian.PutUint64(h.traceBuf[0:8], trace)
	binary.BigEndian.PutUint64(h.traceBuf[8:16], span)
	return ServiceContext{ID: TraceContextID, Data: h.traceBuf[:]}
}

// DecodeTraceContext scans a service-context list for the trace entry and
// returns the carried trace and span IDs. ok is false when the entry is
// absent or malformed.
func DecodeTraceContext(scs []ServiceContext) (trace, span uint64, ok bool) {
	for _, sc := range scs {
		if sc.ID != TraceContextID {
			continue
		}
		if len(sc.Data) != traceContextLen {
			return 0, 0, false
		}
		return binary.BigEndian.Uint64(sc.Data[0:8]), binary.BigEndian.Uint64(sc.Data[8:16]), true
	}
	return 0, 0, false
}

package giop

import "testing"

func TestTraceContextRoundTrip(t *testing.T) {
	sc := TraceContext(0xDEADBEEF12345678, 0x42)
	if sc.ID != TraceContextID {
		t.Fatalf("ID = %#x, want %#x", sc.ID, TraceContextID)
	}
	trace, span, ok := DecodeTraceContext([]ServiceContext{
		{ID: 7, Data: []byte("other")},
		sc,
	})
	if !ok {
		t.Fatal("DecodeTraceContext failed")
	}
	if trace != 0xDEADBEEF12345678 || span != 0x42 {
		t.Errorf("got trace=%#x span=%#x", trace, span)
	}
}

func TestTraceContextAbsentOrMalformed(t *testing.T) {
	if _, _, ok := DecodeTraceContext(nil); ok {
		t.Error("decode of empty list should fail")
	}
	if _, _, ok := DecodeTraceContext([]ServiceContext{{ID: 7}}); ok {
		t.Error("decode without trace entry should fail")
	}
	if _, _, ok := DecodeTraceContext([]ServiceContext{{ID: TraceContextID, Data: []byte{1, 2}}}); ok {
		t.Error("decode of short payload should fail")
	}
}

// TestTraceContextThroughRequest proves the trace entry survives a full
// GIOP marshal/unmarshal cycle on both wire versions.
func TestTraceContextThroughRequest(t *testing.T) {
	for _, v := range []Version{V1_0, VQoS} {
		hdr := &RequestHeader{
			ServiceContext:   []ServiceContext{TraceContext(11, 22)},
			RequestID:        1,
			ResponseExpected: true,
			ObjectKey:        []byte("key"),
			Operation:        "echo",
		}
		frame, err := MarshalRequest(v, false, hdr, nil)
		if err != nil {
			t.Fatalf("%v: marshal: %v", v, err)
		}
		m, err := Unmarshal(frame)
		if err != nil {
			t.Fatalf("%v: unmarshal: %v", v, err)
		}
		trace, span, ok := DecodeTraceContext(m.Request.ServiceContext)
		if !ok || trace != 11 || span != 22 {
			t.Errorf("%v: got trace=%d span=%d ok=%v", v, trace, span, ok)
		}
	}
}

package giop

import "sync"

// Operation names form a small, stable vocabulary per deployment (they are
// IDL method names), so decoded Request headers intern them: the hot path
// does a read-locked map lookup keyed by the raw bytes — which Go performs
// without converting to a string — and allocates only the first time a
// name is seen. The table is bounded so a hostile peer streaming random
// operation names cannot grow it without limit; past the cap, lookups fall
// back to a per-message allocation.
const maxInternedOps = 4096

var (
	opMu  sync.RWMutex
	opTab = make(map[string]string, 64)
)

func internOp(raw []byte) string {
	opMu.RLock()
	s, ok := opTab[string(raw)]
	opMu.RUnlock()
	if ok {
		return s
	}
	s = string(raw)
	opMu.Lock()
	if len(opTab) < maxInternedOps {
		opTab[s] = s
	}
	opMu.Unlock()
	return s
}

//go:build pooldebug

package giop

import (
	"fmt"
	"runtime"
	"sync"
)

// The pooldebug verifier shadows the message pool: every pooled message is
// tracked from acquisition to release, a second release of the same
// message panics with both stacks, and DebugLeaks reports messages still
// outstanding at a quiescent point.

type msgDebugEntry struct {
	stack string
}

var (
	msgDebugMu sync.Mutex
	// liveMsgs: acquired and not yet released.
	liveMsgs = map[*Message]msgDebugEntry{}
	// releasedMsgs: released and not yet re-acquired. Map keys hold the
	// shells strongly, matching the msgPool reference.
	releasedMsgs = map[*Message]msgDebugEntry{}
)

func msgDebugStack() string {
	var sb [16384]byte
	n := runtime.Stack(sb[:], false)
	return string(sb[:n])
}

// trackMsgAcquire registers a message leaving the pool.
func trackMsgAcquire(m *Message) {
	msgDebugMu.Lock()
	delete(releasedMsgs, m)
	liveMsgs[m] = msgDebugEntry{stack: msgDebugStack()}
	msgDebugMu.Unlock()
}

// trackMsgRelease runs at the top of ReleaseMessage, before the pooled
// flag is cleared: a non-pooled message that sits in the released set was
// already handed back once — the double release ReleaseMessage itself
// cannot see.
func trackMsgRelease(m *Message) {
	msgDebugMu.Lock()
	if !m.pooled {
		if prev, ok := releasedMsgs[m]; ok {
			msgDebugMu.Unlock()
			panic(fmt.Sprintf("giop: double ReleaseMessage\n--- first release:\n%s\n--- second release:\n%s", prev.stack, msgDebugStack()))
		}
		msgDebugMu.Unlock()
		return // plain Unmarshal message: release is a documented no-op
	}
	delete(liveMsgs, m)
	releasedMsgs[m] = msgDebugEntry{stack: msgDebugStack()}
	msgDebugMu.Unlock()
}

// DebugLeaks formats every pooled message still outstanding with its
// acquisition stack.
func DebugLeaks() []string {
	msgDebugMu.Lock()
	defer msgDebugMu.Unlock()
	var out []string
	for _, e := range liveMsgs {
		out = append(out, "giop: leaked pooled message acquired at:\n"+e.stack)
	}
	return out
}

// DebugReset forgets all tracking state (test isolation).
func DebugReset() {
	msgDebugMu.Lock()
	liveMsgs = map[*Message]msgDebugEntry{}
	releasedMsgs = map[*Message]msgDebugEntry{}
	msgDebugMu.Unlock()
}

//go:build pooldebug

package giop

import (
	"strings"
	"testing"
)

// TestLeakedMessageIsReported deliberately keeps a pooled message and
// asserts the verifier's leak report points at the acquisition.
func TestLeakedMessageIsReported(t *testing.T) {
	DebugReset()
	m := AcquireMessage()
	leaks := DebugLeaks()
	if len(leaks) != 1 {
		t.Fatalf("DebugLeaks() = %d entries, want 1", len(leaks))
	}
	if !strings.Contains(leaks[0], "leaked pooled message") || !strings.Contains(leaks[0], "AcquireMessage") {
		t.Fatalf("leak report does not point at AcquireMessage:\n%s", leaks[0])
	}
	m.frame = nil
	ReleaseMessage(m)
	if rest := DebugLeaks(); len(rest) != 0 {
		t.Fatalf("leaks remain after ReleaseMessage:\n%s", strings.Join(rest, "\n"))
	}
}

// TestDoubleReleaseMessagePanics pins the double-release detection that
// the production pooled flag silently forgives.
func TestDoubleReleaseMessagePanics(t *testing.T) {
	DebugReset()
	m := AcquireMessage()
	ReleaseMessage(m)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second ReleaseMessage did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "double ReleaseMessage") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	ReleaseMessage(m)
}

// TestPooledRoundTripStaysBalanced decodes and releases through the
// pooled path and asserts the verifier sees a balanced ledger.
func TestPooledRoundTripStaysBalanced(t *testing.T) {
	DebugReset()
	frame, err := MarshalCancelRequest(V1_0, false, 77)
	if err != nil {
		t.Fatal(err)
	}
	m, err := UnmarshalPooled(frame)
	if err != nil {
		t.Fatal(err)
	}
	ReleaseMessage(m)
	if leaks := DebugLeaks(); len(leaks) != 0 {
		t.Fatalf("pooled round trip leaked:\n%s", strings.Join(leaks, "\n"))
	}
}

package qos

import (
	"fmt"

	"cool/internal/cdr"
)

// EncodeSet writes a Set in its wire form: ulong count followed by one
// QoSParameter struct per entry (param_type, request_value, max_value,
// min_value), exactly the layout of the paper's extended Request header.
// The same encoding is shared by GIOP qos_params and Da CaPo connection
// signalling.
func EncodeSet(enc *cdr.Encoder, s Set) {
	enc.WriteULong(uint32(len(s)))
	for _, p := range s {
		enc.WriteULong(uint32(p.Type))
		enc.WriteULong(p.Request)
		enc.WriteLong(p.Max)
		enc.WriteLong(p.Min)
	}
}

// DecodeSet reads a Set written by EncodeSet.
func DecodeSet(dec *cdr.Decoder) (Set, error) {
	return DecodeSetAppend(dec, nil)
}

// DecodeSetAppend reads a Set written by EncodeSet, appending to s (which
// may be a truncated scratch slice) so a caller-managed buffer is reused
// across decodes instead of allocating per message.
func DecodeSetAppend(dec *cdr.Decoder, s Set) (Set, error) {
	n, err := dec.ReadULong()
	if err != nil {
		return nil, fmt.Errorf("qos: set count: %w", err)
	}
	if int64(n)*16 > int64(dec.Remaining()) {
		return nil, fmt.Errorf("qos: set count %d exceeds remaining buffer", n)
	}
	for i := uint32(0); i < n; i++ {
		var p Parameter
		var v uint32
		if v, err = dec.ReadULong(); err != nil {
			return nil, fmt.Errorf("qos: param type: %w", err)
		}
		p.Type = ParamType(v)
		if p.Request, err = dec.ReadULong(); err != nil {
			return nil, fmt.Errorf("qos: request value: %w", err)
		}
		if p.Max, err = dec.ReadLong(); err != nil {
			return nil, fmt.Errorf("qos: max value: %w", err)
		}
		if p.Min, err = dec.ReadLong(); err != nil {
			return nil, fmt.Errorf("qos: min value: %w", err)
		}
		s = append(s, p) //coollint:allocok amortized into the caller's pooled scratch (qosStore[:0])
	}
	return s, nil
}

// Package qos implements the Quality-of-Service model of the MULTE/COOL
// prototype: typed QoS parameters attached to method invocations, the
// satisfiability rules used for bilateral negotiation between client and
// object implementation, and the capability descriptions transports and
// servers advertise.
//
// The wire representation follows the paper's extended GIOP Request header
// (Figure 2-ii):
//
//	struct QoSParameter {
//	    unsigned long param_type;
//	    unsigned long request_value;
//	    long          max_value;
//	    long          min_value;
//	};
//
// A client states a requested value together with the acceptable range
// [min, max]; a provider grants a value inside that range or refuses (the
// NACK of Figure 3-i). Calling conventions mirror the paper: setting QoS
// once at the start of a binding yields per-binding QoS, setting it before
// every invocation yields per-method QoS (§4.1).
package qos

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ParamType identifies a QoS dimension. Values are carried on the wire as
// unsigned long, so the set is open for extension; the constants below are
// the dimensions the MULTE project targets (low latency, high throughput,
// controlled delay jitter, §1) plus the protocol-function dimensions Da CaPo
// configures (reliability, ordering, confidentiality).
type ParamType uint32

const (
	// Throughput is the requested data rate in kilobits per second.
	// Higher is better.
	Throughput ParamType = iota + 1
	// Latency is the one-way delay bound in microseconds. Lower is better.
	Latency
	// Jitter is the delay-variation bound in microseconds. Lower is better.
	Jitter
	// Reliability is the residual packet-loss tolerance expressed as
	// acceptable loss per million packets. Lower is better; 0 requests a
	// fully reliable (acknowledged, retransmitting) protocol configuration.
	Reliability
	// Ordering requests in-order delivery: 1 = ordered, 0 = unordered.
	// Higher is better.
	Ordering
	// Confidentiality requests payload encryption: 1 = encrypted,
	// 0 = plaintext. Higher is better.
	Confidentiality
	// Priority is the relative scheduling priority of the binding (0..255).
	// Higher is better.
	Priority

	maxParamType = Priority
)

var paramNames = map[ParamType]string{
	Throughput:      "throughput",
	Latency:         "latency",
	Jitter:          "jitter",
	Reliability:     "reliability",
	Ordering:        "ordering",
	Confidentiality: "confidentiality",
	Priority:        "priority",
}

// String returns the lower-case dimension name, or a numeric form for
// unknown extension types.
func (t ParamType) String() string {
	if s, ok := paramNames[t]; ok {
		return s
	}
	return fmt.Sprintf("param(%d)", uint32(t))
}

var paramUnits = map[ParamType]string{
	Throughput:  "kbit/s",
	Latency:     "µs",
	Jitter:      "µs",
	Reliability: "loss/M",
}

// Unit returns the unit of measure of the dimension ("kbit/s", "µs",
// "loss/M"), or "" for dimensionless and unknown types (ordering,
// confidentiality and priority carry plain levels, not quantities).
func (t ParamType) Unit() string { return paramUnits[t] }

// Label returns the dimension name with its unit appended in parentheses,
// e.g. "latency(µs)" — the form used in metrics labels and trace logs.
func (t ParamType) Label() string {
	if u := t.Unit(); u != "" {
		return t.String() + "(" + u + ")"
	}
	return t.String()
}

// Known reports whether t is one of the predefined dimensions.
func (t ParamType) Known() bool { return t >= Throughput && t <= maxParamType }

// LowerIsBetter reports whether smaller values of this dimension denote
// stricter (better) service. Latency, jitter and loss bounds shrink as the
// service improves; throughput, ordering, confidentiality and priority grow.
func (t ParamType) LowerIsBetter() bool {
	switch t {
	case Latency, Jitter, Reliability:
		return true
	default:
		return false
	}
}

// Parameter is one QoS requirement, the Go form of the paper's QoSParameter
// struct. Request is what the client wants; Min and Max bound what it will
// accept. For LowerIsBetter dimensions Max is the loosest acceptable bound;
// for the others Min is the least acceptable value. A Max of NoLimit leaves
// the range open upward.
type Parameter struct {
	Type    ParamType
	Request uint32
	Max     int32
	Min     int32
}

// NoLimit in Max means "no upper bound stated".
const NoLimit int32 = -1

// Validate checks internal consistency of the parameter.
func (p Parameter) Validate() error {
	if p.Type == 0 {
		return errors.New("qos: parameter type 0 is reserved")
	}
	if p.Min < 0 {
		return fmt.Errorf("qos: %s: negative min %d", p.Type, p.Min)
	}
	if p.Max != NoLimit {
		if p.Max < p.Min {
			return fmt.Errorf("qos: %s: max %d < min %d", p.Type, p.Max, p.Min)
		}
		if int64(p.Request) > int64(p.Max) {
			return fmt.Errorf("qos: %s: request %d > max %d", p.Type, p.Request, p.Max)
		}
	}
	if int64(p.Request) < int64(p.Min) {
		return fmt.Errorf("qos: %s: request %d < min %d", p.Type, p.Request, p.Min)
	}
	return nil
}

// Accepts reports whether a granted value lies within this parameter's
// acceptable range.
func (p Parameter) Accepts(granted uint32) bool {
	if int64(granted) < int64(p.Min) {
		return false
	}
	if p.Max != NoLimit && int64(granted) > int64(p.Max) {
		return false
	}
	return true
}

//coollint:coldpath diagnostic formatting (slow-call log, ops endpoint)
func (p Parameter) String() string {
	max := "∞"
	if p.Max != NoLimit {
		max = fmt.Sprint(p.Max)
	}
	return fmt.Sprintf("%s=%d%s[%d..%s]", p.Type, p.Request, p.Type.Unit(), p.Min, max)
}

// Set is an ordered collection of parameters, at most one per dimension —
// the payload of setQoSParameter and of the qos_params Request field.
type Set []Parameter

// NewSet builds a Set from parameters, validating each and rejecting
// duplicate dimensions.
func NewSet(params ...Parameter) (Set, error) {
	seen := make(map[ParamType]bool, len(params))
	s := make(Set, 0, len(params))
	for _, p := range params {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if seen[p.Type] {
			return nil, fmt.Errorf("qos: duplicate parameter %s", p.Type)
		}
		seen[p.Type] = true
		s = append(s, p)
	}
	return s, nil
}

// Get returns the parameter for dimension t.
func (s Set) Get(t ParamType) (Parameter, bool) {
	for _, p := range s {
		if p.Type == t {
			return p, true
		}
	}
	return Parameter{}, false
}

// Value returns the requested value for dimension t, or def when absent.
func (s Set) Value(t ParamType, def uint32) uint32 {
	if p, ok := s.Get(t); ok {
		return p.Request
	}
	return def
}

// With returns a copy of s with p added or replaced.
func (s Set) With(p Parameter) Set {
	out := make(Set, 0, len(s)+1)
	replaced := false
	for _, q := range s {
		if q.Type == p.Type {
			out = append(out, p)
			replaced = true
		} else {
			out = append(out, q)
		}
	}
	if !replaced {
		out = append(out, p)
	}
	return out
}

// Clone returns a deep copy of s.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	out := make(Set, len(s)) //coollint:allocok deep copy by contract; callers cache the clone per binding
	copy(out, s)
	return out
}

// Validate checks every parameter and rejects duplicate dimensions. Sets
// hold at most one entry per QoS dimension (a handful), so duplicate
// detection is a quadratic scan, not a map: Validate runs inside
// Negotiate on the server dispatch path and must not allocate.
func (s Set) Validate() error {
	for i, p := range s {
		if err := p.Validate(); err != nil {
			return err
		}
		for _, q := range s[:i] {
			if q.Type == p.Type {
				return fmt.Errorf("qos: duplicate parameter %s", p.Type)
			}
		}
	}
	return nil
}

// Equal reports whether two sets contain the same parameters, ignoring
// order.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for _, p := range s {
		q, ok := o.Get(p.Type)
		if !ok || q != p {
			return false
		}
	}
	return true
}

// Key returns a canonical string for the set, usable as a map key when
// caching connections per (endpoint, QoS) pair.
//
//coollint:coldpath connection-cache key, computed once per binding
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	parts := make([]string, 0, len(s))
	for _, p := range s {
		parts = append(parts, fmt.Sprintf("%d:%d:%d:%d", p.Type, p.Request, p.Max, p.Min))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

//coollint:coldpath diagnostic formatting (slow-call log, ops endpoint)
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, p := range s {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Capability describes what a provider (a transport, a Da CaPo endpoint, or
// an object implementation) can deliver per dimension. Dimensions absent
// from the map are unconstrained for LowerIsBetter dimensions (any bound can
// be met only if ceil == 0 semantics are not wanted) — see Grant for the
// exact rules.
type Capability map[ParamType]Limit

// Limit bounds one dimension of a Capability. For higher-is-better
// dimensions Best is the largest value the provider can grant; for
// lower-is-better dimensions Best is the smallest bound it can honour.
type Limit struct {
	Best uint32
	// Supported marks the dimension as understood by the provider.
	// A provider granting QoS refuses requests for dimensions it does not
	// support when the request's Min demands more than the zero value.
	Supported bool
}

// Grant computes the value a provider with limit l can offer against
// request p, and whether the offer is acceptable to the requester.
func (l Limit) grant(p Parameter) (uint32, bool) {
	if !l.Supported {
		// An unsupported dimension delivers the zero (no-service) value:
		// 0 throughput, unbounded latency, plaintext, ... Acceptable only
		// when the requester's range includes "no service".
		if p.Type.LowerIsBetter() {
			// "No bound" is representable only as an unlimited max.
			return p.Request, p.Max == NoLimit
		}
		return 0, p.Accepts(0)
	}
	if p.Type.LowerIsBetter() {
		// Provider can honour any bound >= l.Best.
		if int64(p.Request) >= int64(l.Best) {
			return p.Request, true
		}
		// Relax toward the loosest bound the requester accepts.
		return l.Best, p.Accepts(l.Best)
	}
	// Higher is better: provider can grant up to l.Best.
	if int64(p.Request) <= int64(l.Best) {
		return p.Request, true
	}
	return l.Best, p.Accepts(l.Best)
}

// NegotiationError reports a failed QoS negotiation; it carries each
// dimension that could not be satisfied. It is mapped to the CORBA
// NO_RESOURCES system exception at the GIOP layer (the paper's NACK).
type NegotiationError struct {
	// Failed lists the dimensions that could not be granted within the
	// requester's acceptable range, with the provider's best offer.
	Failed []FailedParam
}

// FailedParam is one unsatisfiable dimension in a NegotiationError.
type FailedParam struct {
	Param Parameter
	Offer uint32
}

func (e *NegotiationError) Error() string {
	parts := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		parts[i] = fmt.Sprintf("%s (requested %v, best offer %d)", f.Param.Type, f.Param, f.Offer)
	}
	return "qos: negotiation failed: " + strings.Join(parts, "; ")
}

// Negotiate performs the provider side of the paper's bilateral negotiation:
// given a requested Set and the provider's Capability it returns the granted
// Set (one granted value per requested dimension) or a *NegotiationError
// when any dimension cannot be granted inside the requester's range.
//
// Negotiation is all-or-nothing, matching Figure 3: the server either
// processes the request at an acceptable QoS or NACKs.
func Negotiate(request Set, cap Capability) (Set, error) {
	if err := request.Validate(); err != nil {
		return nil, err
	}
	granted := make(Set, 0, len(request)) //coollint:allocok granted set escapes into the invocation; sized once below
	var failed []FailedParam
	for _, p := range request {
		offer, ok := cap[p.Type].grant(p)
		if !ok {
			failed = append(failed, FailedParam{Param: p, Offer: offer}) //coollint:allocok NACK collection, failure path
			continue
		}
		granted = append(granted, Parameter{Type: p.Type, Request: offer, Max: p.Max, Min: p.Min}) //coollint:allocok capacity reserved at entry; never grows
	}
	if len(failed) > 0 {
		return nil, &NegotiationError{Failed: failed} //coollint:allocok NACK failure path
	}
	return granted, nil
}

// Merge returns the weaker of two capabilities per dimension — the
// capability of a path through both providers (e.g. transport and server).
// Dimensions must be supported by both to remain supported.
func Merge(a, b Capability) Capability {
	out := make(Capability, len(a))
	for t, la := range a {
		lb, ok := b[t]
		if !ok || !la.Supported || !lb.Supported {
			continue
		}
		best := la.Best
		if t.LowerIsBetter() {
			if lb.Best > best {
				best = lb.Best
			}
		} else if lb.Best < best {
			best = lb.Best
		}
		out[t] = Limit{Best: best, Supported: true}
	}
	return out
}

// Unconstrained returns a capability that supports every known dimension at
// its ideal value (unbounded throughput, zero latency, ...). Useful for
// in-process transports and tests.
func Unconstrained() Capability {
	c := make(Capability, int(maxParamType))
	for t := Throughput; t <= maxParamType; t++ {
		best := uint32(0)
		if !t.LowerIsBetter() {
			best = ^uint32(0)
		}
		c[t] = Limit{Best: best, Supported: true}
	}
	return c
}

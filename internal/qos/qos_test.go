package qos

import (
	"errors"
	"testing"
	"testing/quick"
)

func mustSet(t *testing.T, params ...Parameter) Set {
	t.Helper()
	s, err := NewSet(params...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamTypeString(t *testing.T) {
	if Throughput.String() != "throughput" {
		t.Errorf("Throughput = %q", Throughput.String())
	}
	if ParamType(999).String() != "param(999)" {
		t.Errorf("unknown = %q", ParamType(999).String())
	}
	if ParamType(999).Known() {
		t.Error("999 should not be Known")
	}
	if !Jitter.Known() {
		t.Error("Jitter should be Known")
	}
}

func TestParamTypeUnits(t *testing.T) {
	if Throughput.Unit() != "kbit/s" || Latency.Unit() != "µs" || Reliability.Unit() != "loss/M" {
		t.Errorf("units wrong: %q %q %q", Throughput.Unit(), Latency.Unit(), Reliability.Unit())
	}
	if Ordering.Unit() != "" || ParamType(999).Unit() != "" {
		t.Error("dimensionless/unknown types should have empty unit")
	}
	if Latency.Label() != "latency(µs)" {
		t.Errorf("Label = %q", Latency.Label())
	}
	if Priority.Label() != "priority" {
		t.Errorf("Label = %q", Priority.Label())
	}
	p := Parameter{Type: Throughput, Request: 512, Min: 128, Max: NoLimit}
	if got := p.String(); got != "throughput=512kbit/s[128..∞]" {
		t.Errorf("Parameter.String() = %q", got)
	}
	p = Parameter{Type: Ordering, Request: 1, Min: 0, Max: 1}
	if got := p.String(); got != "ordering=1[0..1]" {
		t.Errorf("Parameter.String() = %q", got)
	}
}

func TestLowerIsBetter(t *testing.T) {
	lower := map[ParamType]bool{
		Throughput: false, Latency: true, Jitter: true,
		Reliability: true, Ordering: false, Confidentiality: false, Priority: false,
	}
	for tp, want := range lower {
		if got := tp.LowerIsBetter(); got != want {
			t.Errorf("%s.LowerIsBetter() = %v, want %v", tp, got, want)
		}
	}
}

func TestParameterValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Parameter
		wantErr bool
	}{
		{"valid", Parameter{Type: Throughput, Request: 100, Max: 200, Min: 50}, false},
		{"valid no limit", Parameter{Type: Throughput, Request: 100, Max: NoLimit, Min: 0}, false},
		{"zero type", Parameter{Request: 1, Max: NoLimit}, true},
		{"max below min", Parameter{Type: Latency, Request: 5, Max: 3, Min: 4}, true},
		{"request above max", Parameter{Type: Latency, Request: 10, Max: 5, Min: 0}, true},
		{"request below min", Parameter{Type: Latency, Request: 1, Max: 10, Min: 5}, true},
		{"negative min", Parameter{Type: Latency, Request: 1, Max: 10, Min: -3}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestParameterAccepts(t *testing.T) {
	p := Parameter{Type: Throughput, Request: 100, Max: 200, Min: 50}
	for v, want := range map[uint32]bool{49: false, 50: true, 100: true, 200: true, 201: false} {
		if got := p.Accepts(v); got != want {
			t.Errorf("Accepts(%d) = %v, want %v", v, got, want)
		}
	}
	open := Parameter{Type: Throughput, Request: 100, Max: NoLimit, Min: 50}
	if !open.Accepts(1 << 30) {
		t.Error("open range should accept huge values")
	}
}

func TestNewSetRejectsDuplicates(t *testing.T) {
	_, err := NewSet(
		Parameter{Type: Throughput, Request: 1, Max: NoLimit},
		Parameter{Type: Throughput, Request: 2, Max: NoLimit},
	)
	if err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestSetGetValueWith(t *testing.T) {
	s := mustSet(t,
		Parameter{Type: Throughput, Request: 100, Max: NoLimit},
		Parameter{Type: Latency, Request: 500, Max: 1000},
	)
	if p, ok := s.Get(Latency); !ok || p.Request != 500 {
		t.Errorf("Get(Latency) = %v, %v", p, ok)
	}
	if _, ok := s.Get(Jitter); ok {
		t.Error("Get(Jitter) should be absent")
	}
	if v := s.Value(Throughput, 7); v != 100 {
		t.Errorf("Value(Throughput) = %d", v)
	}
	if v := s.Value(Jitter, 7); v != 7 {
		t.Errorf("Value(Jitter) default = %d", v)
	}

	s2 := s.With(Parameter{Type: Latency, Request: 250, Max: 1000})
	if v := s2.Value(Latency, 0); v != 250 {
		t.Errorf("With replace: latency = %d", v)
	}
	if v := s.Value(Latency, 0); v != 500 {
		t.Errorf("With must not mutate original: latency = %d", v)
	}
	s3 := s.With(Parameter{Type: Jitter, Request: 10, Max: NoLimit})
	if len(s3) != 3 {
		t.Errorf("With add: len = %d", len(s3))
	}
}

func TestSetEqualAndKey(t *testing.T) {
	a := mustSet(t,
		Parameter{Type: Throughput, Request: 100, Max: NoLimit},
		Parameter{Type: Latency, Request: 500, Max: 1000},
	)
	b := mustSet(t,
		Parameter{Type: Latency, Request: 500, Max: 1000},
		Parameter{Type: Throughput, Request: 100, Max: NoLimit},
	)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("order-independent Equal failed")
	}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := a.With(Parameter{Type: Latency, Request: 499, Max: 1000})
	if a.Equal(c) {
		t.Error("Equal should detect value change")
	}
	if a.Key() == c.Key() {
		t.Error("Key should detect value change")
	}
	var empty Set
	if empty.Key() != "" {
		t.Errorf("empty key = %q", empty.Key())
	}
}

func TestSetClone(t *testing.T) {
	a := mustSet(t, Parameter{Type: Throughput, Request: 100, Max: NoLimit})
	b := a.Clone()
	b[0].Request = 7
	if a[0].Request != 100 {
		t.Error("Clone must copy")
	}
	if (Set)(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestNegotiateGrantsRequested(t *testing.T) {
	req := mustSet(t,
		Parameter{Type: Throughput, Request: 1000, Max: NoLimit, Min: 500},
		Parameter{Type: Latency, Request: 2000, Max: 5000, Min: 0},
	)
	cap := Capability{
		Throughput: {Best: 10000, Supported: true},
		Latency:    {Best: 100, Supported: true},
	}
	granted, err := Negotiate(req, cap)
	if err != nil {
		t.Fatal(err)
	}
	if v := granted.Value(Throughput, 0); v != 1000 {
		t.Errorf("throughput granted = %d, want 1000 (exactly as requested)", v)
	}
	if v := granted.Value(Latency, 0); v != 2000 {
		t.Errorf("latency granted = %d, want 2000", v)
	}
}

func TestNegotiateDegradesWithinRange(t *testing.T) {
	req := mustSet(t, Parameter{Type: Throughput, Request: 8000, Max: NoLimit, Min: 1000})
	cap := Capability{Throughput: {Best: 2000, Supported: true}}
	granted, err := Negotiate(req, cap)
	if err != nil {
		t.Fatal(err)
	}
	if v := granted.Value(Throughput, 0); v != 2000 {
		t.Errorf("granted = %d, want provider best 2000", v)
	}
}

func TestNegotiateNACKBelowMin(t *testing.T) {
	req := mustSet(t, Parameter{Type: Throughput, Request: 8000, Max: NoLimit, Min: 4000})
	cap := Capability{Throughput: {Best: 2000, Supported: true}}
	_, err := Negotiate(req, cap)
	var ne *NegotiationError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want NegotiationError", err)
	}
	if len(ne.Failed) != 1 || ne.Failed[0].Param.Type != Throughput || ne.Failed[0].Offer != 2000 {
		t.Errorf("Failed = %+v", ne.Failed)
	}
	if ne.Error() == "" {
		t.Error("empty error text")
	}
}

func TestNegotiateLowerIsBetterRelaxation(t *testing.T) {
	// Client asks for 1ms latency but accepts up to 10ms; provider can do 4ms.
	req := mustSet(t, Parameter{Type: Latency, Request: 1000, Max: 10000, Min: 0})
	cap := Capability{Latency: {Best: 4000, Supported: true}}
	granted, err := Negotiate(req, cap)
	if err != nil {
		t.Fatal(err)
	}
	if v := granted.Value(Latency, 0); v != 4000 {
		t.Errorf("granted latency = %d, want 4000", v)
	}

	// Provider can only do 20ms: outside the client's max -> NACK.
	_, err = Negotiate(req, Capability{Latency: {Best: 20000, Supported: true}})
	var ne *NegotiationError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want NegotiationError", err)
	}
}

func TestNegotiateUnsupportedDimension(t *testing.T) {
	// Confidentiality with Min 1 ("must encrypt") against a provider that
	// does not understand encryption -> NACK.
	req := mustSet(t, Parameter{Type: Confidentiality, Request: 1, Max: 1, Min: 1})
	_, err := Negotiate(req, Capability{})
	var ne *NegotiationError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want NegotiationError", err)
	}

	// Min 0 ("nice to have") is granted at 0.
	req = mustSet(t, Parameter{Type: Confidentiality, Request: 1, Max: 1, Min: 0})
	granted, err := Negotiate(req, Capability{})
	if err != nil {
		t.Fatal(err)
	}
	if v := granted.Value(Confidentiality, 99); v != 0 {
		t.Errorf("granted confidentiality = %d, want 0", v)
	}
}

func TestNegotiateUnsupportedLowerIsBetter(t *testing.T) {
	// A latency bound against a provider with no latency support is
	// acceptable only when the client's range is open (Max == NoLimit).
	open := mustSet(t, Parameter{Type: Latency, Request: 1000, Max: NoLimit, Min: 0})
	if _, err := Negotiate(open, Capability{}); err != nil {
		t.Fatalf("open range: %v", err)
	}
	closed := mustSet(t, Parameter{Type: Latency, Request: 1000, Max: 2000, Min: 0})
	if _, err := Negotiate(closed, Capability{}); err == nil {
		t.Fatal("closed range should NACK")
	}
}

func TestNegotiateInvalidRequest(t *testing.T) {
	bad := Set{{Type: Latency, Request: 10, Max: 5, Min: 0}}
	if _, err := Negotiate(bad, Unconstrained()); err == nil {
		t.Fatal("invalid request should fail")
	}
}

func TestNegotiateAllOrNothing(t *testing.T) {
	req := mustSet(t,
		Parameter{Type: Throughput, Request: 100, Max: NoLimit, Min: 0},
		Parameter{Type: Confidentiality, Request: 1, Max: 1, Min: 1},
	)
	cap := Capability{Throughput: {Best: 1000, Supported: true}}
	if _, err := Negotiate(req, cap); err == nil {
		t.Fatal("one failing dimension must NACK the whole request")
	}
}

func TestMerge(t *testing.T) {
	a := Capability{
		Throughput: {Best: 1000, Supported: true},
		Latency:    {Best: 100, Supported: true},
		Ordering:   {Best: 1, Supported: true},
	}
	b := Capability{
		Throughput: {Best: 500, Supported: true},
		Latency:    {Best: 400, Supported: true},
	}
	m := Merge(a, b)
	if l := m[Throughput]; l.Best != 500 || !l.Supported {
		t.Errorf("throughput = %+v", l)
	}
	if l := m[Latency]; l.Best != 400 { // lower is better: weaker = larger bound
		t.Errorf("latency = %+v", l)
	}
	if _, ok := m[Ordering]; ok {
		t.Error("ordering supported by only one side must drop out")
	}
}

func TestUnconstrainedGrantsEverything(t *testing.T) {
	req := mustSet(t,
		Parameter{Type: Throughput, Request: 1 << 30, Max: NoLimit, Min: 1 << 30},
		Parameter{Type: Latency, Request: 1, Max: 1, Min: 0},
		Parameter{Type: Jitter, Request: 0, Max: 0, Min: 0},
		Parameter{Type: Reliability, Request: 0, Max: 0, Min: 0},
		Parameter{Type: Confidentiality, Request: 1, Max: 1, Min: 1},
	)
	granted, err := Negotiate(req, Unconstrained())
	if err != nil {
		t.Fatal(err)
	}
	if !granted.Equal(req) {
		t.Errorf("granted %v != requested %v", granted, req)
	}
}

// Property: a successful negotiation always grants values inside the
// requester's acceptable range, and grants exactly the requested dimensions.
func TestQuickNegotiateInvariant(t *testing.T) {
	f := func(reqVal, best uint32, min16, span16 uint16, lowerDim, supported bool) bool {
		tp := Throughput
		if lowerDim {
			tp = Latency
		}
		min := int32(min16)
		max := min + int32(span16)
		// Clamp request into [min,max] so the request itself is valid.
		req := reqVal
		if int64(req) < int64(min) {
			req = uint32(min)
		}
		if int64(req) > int64(max) {
			req = uint32(max)
		}
		p := Parameter{Type: tp, Request: req, Max: max, Min: min}
		if p.Validate() != nil {
			return true // not a valid request; out of scope
		}
		granted, err := Negotiate(Set{p}, Capability{tp: {Best: best, Supported: supported}})
		if err != nil {
			var ne *NegotiationError
			return errors.As(err, &ne)
		}
		g, ok := granted.Get(tp)
		return ok && p.Accepts(g.Request) && len(granted) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Merge is commutative and never stronger than either input.
func TestQuickMergeWeaker(t *testing.T) {
	f := func(aBest, bBest uint32, lowerDim bool) bool {
		tp := Throughput
		if lowerDim {
			tp = Jitter
		}
		a := Capability{tp: {Best: aBest, Supported: true}}
		b := Capability{tp: {Best: bBest, Supported: true}}
		m1 := Merge(a, b)
		m2 := Merge(b, a)
		if m1[tp] != m2[tp] {
			return false
		}
		got := m1[tp].Best
		if tp.LowerIsBetter() {
			return got >= aBest && got >= bBest
		}
		return got <= aBest && got <= bBest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

package qos

import (
	"testing"
	"testing/quick"

	"cool/internal/cdr"
)

func TestWireRoundTrip(t *testing.T) {
	s := Set{
		{Type: Throughput, Request: 1000, Max: NoLimit, Min: 100},
		{Type: Latency, Request: 5000, Max: 20000, Min: 0},
		{Type: Confidentiality, Request: 1, Max: 1, Min: 1},
	}
	enc := cdr.NewEncoder(cdr.BigEndian)
	EncodeSet(enc, s)
	got, err := DecodeSet(cdr.NewDecoder(enc.Bytes(), cdr.BigEndian))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("got %v, want %v", got, s)
	}
}

func TestWireEmptySet(t *testing.T) {
	enc := cdr.NewEncoder(cdr.LittleEndian)
	EncodeSet(enc, nil)
	if enc.Len() != 4 {
		t.Fatalf("empty set = %d octets, want 4", enc.Len())
	}
	got, err := DecodeSet(cdr.NewDecoder(enc.Bytes(), cdr.LittleEndian))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestWireSixteenOctetsPerParameter(t *testing.T) {
	// The paper's QoSParameter struct is 4 unsigned-long-sized fields.
	enc := cdr.NewEncoder(cdr.BigEndian)
	EncodeSet(enc, Set{{Type: Throughput, Request: 1, Max: 2, Min: 0}})
	if enc.Len() != 4+16 {
		t.Fatalf("one parameter = %d octets, want 20", enc.Len())
	}
}

func TestWireHostileCount(t *testing.T) {
	dec := cdr.NewDecoder([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}, cdr.BigEndian)
	if _, err := DecodeSet(dec); err == nil {
		t.Fatal("hostile count accepted")
	}
}

// Property: any parameter list survives the wire encoding in both byte
// orders.
func TestQuickWireRoundTrip(t *testing.T) {
	f := func(raw []struct {
		T        uint8
		Req      uint32
		Max, Min int32
	}, little bool) bool {
		var s Set
		for _, r := range raw {
			s = append(s, Parameter{Type: ParamType(r.T), Request: r.Req, Max: r.Max, Min: r.Min})
		}
		enc := cdr.NewEncoder(little)
		EncodeSet(enc, s)
		got, err := DecodeSet(cdr.NewDecoder(enc.Bytes(), little))
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"cool/internal/bufpool"
	"cool/internal/qos"
)

// maxTCPMessage bounds inbound frames so a hostile length prefix cannot
// drive an arbitrary allocation.
const maxTCPMessage = 64 << 20

// TCPManager implements the "tcp" transport: COOL's TCP/IP channel with
// explicit buffer management (_TcpComChannel + _TcpBuffer in Figure 8).
// Messages are framed with a 4-octet big-endian length prefix; TCP has no
// QoS support.
type TCPManager struct{}

var _ Manager = TCPManager{}

// NewTCPManager returns the TCP transport manager.
func NewTCPManager() TCPManager { return TCPManager{} }

// Scheme returns "tcp".
func (TCPManager) Scheme() string { return "tcp" }

// Capability returns nil: TCP advertises no QoS dimensions.
func (TCPManager) Capability() qos.Capability { return nil }

// Dial connects to a TCP listener at host:port.
func (TCPManager) Dial(addr string) (Channel, error) {
	return TCPManager{}.DialContext(context.Background(), addr)
}

// DialContext implements ContextDialer: the connection attempt is bounded
// by the context's deadline and aborted on cancellation.
func (TCPManager) DialContext(ctx context.Context, addr string) (Channel, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tcp %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newTCPChannel(conn), nil
}

// Listen binds a TCP listener; an empty addr binds an ephemeral port on
// the loopback interface.
func (TCPManager) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Channel, error) {
	conn, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newTCPChannel(conn), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }
func (t *tcpListener) Close() error { return t.l.Close() }

// tcpChannel frames messages over a net.Conn. The write buffer is reused
// across messages — the _TcpBuffer role.
type tcpChannel struct {
	conn net.Conn

	writeMu sync.Mutex
	wbuf    []byte
	// pbuf holds the 4-octet length prefixes and iov the gather list for
	// WriteMessages; both are reused across batches (and cleared after each
	// write so recycled frames are not pinned by the backing array).
	pbuf []byte
	iov  net.Buffers

	readMu sync.Mutex
	// rbuf is the inbound staging buffer (lazily allocated); rpos..rlen is
	// the unconsumed window. Batching the length prefix and payload into
	// one kernel read halves the syscalls per frame on the hot path.
	rbuf       []byte
	rpos, rlen int
}

// tcpReadBuf sizes the staging buffer: large enough that a typical
// invocation frame (header + small payload) arrives in one read.
const tcpReadBuf = 64 << 10

func newTCPChannel(conn net.Conn) *tcpChannel {
	return &tcpChannel{conn: conn}
}

func (c *tcpChannel) WriteMessage(p []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	// One writev-style Write keeps the frame atomic on the wire and avoids
	// a small-packet round before the payload.
	need := 4 + len(p)
	if cap(c.wbuf) < need {
		c.wbuf = make([]byte, need)
	}
	buf := c.wbuf[:need]
	binary.BigEndian.PutUint32(buf, uint32(len(p)))
	copy(buf[4:], p)
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("transport: tcp write: %w", err)
	}
	return nil
}

// WriteMessages implements BatchChannel: all frames leave in one vectored
// write (writev via net.Buffers), alternating reused length prefixes with
// the callers' payloads, so a flush of N coalesced messages costs one
// syscall instead of N.
func (c *tcpChannel) WriteMessages(frames [][]byte) error {
	if len(frames) == 0 {
		return nil
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if cap(c.pbuf) < 4*len(frames) {
		c.pbuf = make([]byte, 4*len(frames))
	}
	pbuf := c.pbuf[:4*len(frames)]
	iov := c.iov[:0]
	for i, p := range frames {
		pfx := pbuf[4*i : 4*i+4]
		binary.BigEndian.PutUint32(pfx, uint32(len(p)))
		iov = append(iov, pfx)
		if len(p) > 0 {
			iov = append(iov, p)
		}
	}
	// WriteTo advances iov as it drains; keep the full slice so the backing
	// array can be cleared afterwards — frames are recycled by the caller
	// and must not stay reachable from the channel.
	c.iov = iov
	_, err := (&iov).WriteTo(c.conn)
	clear(c.iov[:cap(c.iov)])
	c.iov = c.iov[:0]
	if err != nil {
		return fmt.Errorf("transport: tcp writev: %w", err)
	}
	return nil
}

// fill reads more inbound bytes into the staging buffer. Callers hold
// readMu. A read that returns data with an error defers the error to the
// next call, like bufio.
func (c *tcpChannel) fill() error {
	if c.rbuf == nil {
		c.rbuf = make([]byte, tcpReadBuf)
	}
	if c.rpos == c.rlen {
		c.rpos, c.rlen = 0, 0
	} else if c.rlen == len(c.rbuf) {
		c.rlen = copy(c.rbuf, c.rbuf[c.rpos:c.rlen])
		c.rpos = 0
	}
	n, err := c.conn.Read(c.rbuf[c.rlen:])
	c.rlen += n
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

// consume copies the next len(p) buffered-or-wire bytes into p.
func (c *tcpChannel) consume(p []byte) error {
	got := copy(p, c.rbuf[c.rpos:c.rlen])
	c.rpos += got
	if got == len(p) {
		return nil
	}
	// Frame larger than the staging buffer: read the tail directly.
	_, err := io.ReadFull(c.conn, p[got:])
	return err
}

func (c *tcpChannel) ReadMessage() ([]byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	for c.rlen-c.rpos < 4 {
		if err := c.fill(); err != nil {
			return nil, err
		}
	}
	n := binary.BigEndian.Uint32(c.rbuf[c.rpos:])
	c.rpos += 4
	if n > maxTCPMessage {
		return nil, fmt.Errorf("transport: tcp frame of %d octets exceeds limit", n)
	}
	// Pooled read buffer: ownership transfers to the caller, which recycles
	// it via PutBuffer once the decoded message is dropped.
	p := bufpool.Get(int(n))[:n]
	if err := c.consume(p); err != nil {
		bufpool.Put(p)
		return nil, fmt.Errorf("transport: tcp short frame: %w", err)
	}
	return p, nil
}

func (c *tcpChannel) SetQoSParameter(params qos.Set) (qos.Set, error) {
	return NoQoS(params)
}

func (c *tcpChannel) Close() error       { return c.conn.Close() }
func (c *tcpChannel) LocalAddr() string  { return c.conn.LocalAddr().String() }
func (c *tcpChannel) RemoteAddr() string { return c.conn.RemoteAddr().String() }

package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"cool/internal/qos"
)

// maxTCPMessage bounds inbound frames so a hostile length prefix cannot
// drive an arbitrary allocation.
const maxTCPMessage = 64 << 20

// TCPManager implements the "tcp" transport: COOL's TCP/IP channel with
// explicit buffer management (_TcpComChannel + _TcpBuffer in Figure 8).
// Messages are framed with a 4-octet big-endian length prefix; TCP has no
// QoS support.
type TCPManager struct{}

var _ Manager = TCPManager{}

// NewTCPManager returns the TCP transport manager.
func NewTCPManager() TCPManager { return TCPManager{} }

// Scheme returns "tcp".
func (TCPManager) Scheme() string { return "tcp" }

// Capability returns nil: TCP advertises no QoS dimensions.
func (TCPManager) Capability() qos.Capability { return nil }

// Dial connects to a TCP listener at host:port.
func (TCPManager) Dial(addr string) (Channel, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tcp %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newTCPChannel(conn), nil
}

// Listen binds a TCP listener; an empty addr binds an ephemeral port on
// the loopback interface.
func (TCPManager) Listen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Channel, error) {
	conn, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return newTCPChannel(conn), nil
}

func (t *tcpListener) Addr() string { return t.l.Addr().String() }
func (t *tcpListener) Close() error { return t.l.Close() }

// tcpChannel frames messages over a net.Conn. The write buffer is reused
// across messages — the _TcpBuffer role.
type tcpChannel struct {
	conn net.Conn

	writeMu sync.Mutex
	wbuf    []byte

	readMu sync.Mutex
	lenBuf [4]byte
}

func newTCPChannel(conn net.Conn) *tcpChannel {
	return &tcpChannel{conn: conn}
}

func (c *tcpChannel) WriteMessage(p []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	// One writev-style Write keeps the frame atomic on the wire and avoids
	// a small-packet round before the payload.
	need := 4 + len(p)
	if cap(c.wbuf) < need {
		c.wbuf = make([]byte, need)
	}
	buf := c.wbuf[:need]
	binary.BigEndian.PutUint32(buf, uint32(len(p)))
	copy(buf[4:], p)
	if _, err := c.conn.Write(buf); err != nil {
		return fmt.Errorf("transport: tcp write: %w", err)
	}
	return nil
}

func (c *tcpChannel) ReadMessage() ([]byte, error) {
	c.readMu.Lock()
	defer c.readMu.Unlock()
	if _, err := io.ReadFull(c.conn, c.lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(c.lenBuf[:])
	if n > maxTCPMessage {
		return nil, fmt.Errorf("transport: tcp frame of %d octets exceeds limit", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(c.conn, p); err != nil {
		return nil, fmt.Errorf("transport: tcp short frame: %w", err)
	}
	return p, nil
}

func (c *tcpChannel) SetQoSParameter(params qos.Set) (qos.Set, error) {
	return NoQoS(params)
}

func (c *tcpChannel) Close() error       { return c.conn.Close() }
func (c *tcpChannel) LocalAddr() string  { return c.conn.LocalAddr().String() }
func (c *tcpChannel) RemoteAddr() string { return c.conn.RemoteAddr().String() }

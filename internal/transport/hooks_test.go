package transport

import (
	"sync/atomic"
	"testing"
)

func TestRegistryHooks(t *testing.T) {
	var opened, closed, failed atomic.Int64
	r := NewRegistry(NewInprocManager())
	r.SetHooks(&Hooks{
		Opened: func(scheme string) {
			if scheme != "inproc" {
				t.Errorf("opened scheme = %q", scheme)
			}
			opened.Add(1)
		},
		Closed: func(string) { closed.Add(1) },
		Failed: func(string) { failed.Add(1) },
	})

	m, err := r.Get("inproc")
	if err != nil {
		t.Fatal(err)
	}
	l, err := m.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Channel, 1)
	go func() {
		ch, err := l.Accept()
		if err != nil {
			t.Error(err)
		}
		accepted <- ch
	}()
	dialed, err := m.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	// Dial + accept = two channels opened.
	if got := opened.Load(); got != 2 {
		t.Errorf("opened = %d, want 2", got)
	}

	// Close both sides; double-closing one must not double-count.
	dialed.Close()
	dialed.Close()
	srv.Close()
	if got := closed.Load(); got != 2 {
		t.Errorf("closed = %d, want 2", got)
	}

	// Failed dial counts once.
	if _, err := m.Dial("no-such-endpoint"); err == nil {
		t.Fatal("dial to bogus endpoint should fail")
	}
	if got := failed.Load(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}

	// Listener shutdown must not count as an accept failure.
	l.Close()
	if _, err := l.Accept(); err == nil {
		t.Fatal("accept on closed listener should fail")
	}
	if got := failed.Load(); got != 1 {
		t.Errorf("failed after listener close = %d, want 1", got)
	}

	// Removing hooks restores pass-through managers.
	r.SetHooks(nil)
	m2, _ := r.Get("inproc")
	if _, wrapped := m2.(hookManager); wrapped {
		t.Error("manager still wrapped after SetHooks(nil)")
	}
}

package transport

import (
	"fmt"
	"io"
	"sync"

	"cool/internal/bufpool"
	"cool/internal/qos"
)

// InprocManager implements the "inproc" transport, the stand-in for COOL's
// Chorus IPC channel: host-local message passing with no QoS support.
// Addresses are plain names in a namespace owned by the manager; both ends
// must use the same manager instance (one per process, typically owned by
// the ORB), mirroring Chorus IPC's node-local scope.
type InprocManager struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
	nextAuto  int
}

var _ Manager = (*InprocManager)(nil)

// NewInprocManager returns an empty in-process transport namespace.
func NewInprocManager() *InprocManager {
	return &InprocManager{listeners: make(map[string]*inprocListener)}
}

// Scheme returns "inproc".
func (m *InprocManager) Scheme() string { return "inproc" }

// Capability returns nil: like Chorus IPC in the paper, inproc advertises
// no QoS dimensions.
func (m *InprocManager) Capability() qos.Capability { return nil }

// Listen binds a named endpoint; an empty addr allocates a fresh name.
func (m *InprocManager) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		m.nextAuto++
		addr = fmt.Sprintf("auto-%d", m.nextAuto)
	}
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: inproc address %q already bound", addr)
	}
	l := &inprocListener{
		mgr:     m,
		addr:    addr,
		backlog: make(chan *inprocChannel, 16),
		done:    make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial connects to a named endpoint bound in this manager.
func (m *InprocManager) Dial(addr string) (Channel, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: inproc address %q not bound", addr)
	}
	client, server := newInprocPair(addr)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: inproc address %q: %w", addr, ErrClosed)
	}
}

func (m *InprocManager) unbind(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.listeners, addr)
}

type inprocListener struct {
	mgr     *InprocManager
	addr    string
	backlog chan *inprocChannel
	done    chan struct{}
	once    sync.Once
}

func (l *inprocListener) Accept() (Channel, error) {
	select {
	case ch := <-l.backlog:
		return ch, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Addr() string { return l.addr }

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.mgr.unbind(l.addr)
	})
	return nil
}

// inprocChannel is one direction pair of buffered message queues.
type inprocChannel struct {
	addr  string
	local string
	send  chan []byte
	recv  chan []byte
	// closed is shared between both ends; closing either end tears the
	// connection down for both.
	closed chan struct{}
	once   *sync.Once
}

func newInprocPair(addr string) (client, server *inprocChannel) {
	a2b := make(chan []byte, 16)
	b2a := make(chan []byte, 16)
	closed := make(chan struct{})
	once := &sync.Once{}
	client = &inprocChannel{addr: addr, local: "client", send: a2b, recv: b2a, closed: closed, once: once}
	server = &inprocChannel{addr: addr, local: "server", send: b2a, recv: a2b, closed: closed, once: once}
	return client, server
}

func (c *inprocChannel) WriteMessage(p []byte) error {
	// Copy into a pooled buffer: the caller may reuse its buffer, and
	// inproc must behave like a real transport that serialises onto the
	// wire. The receiver takes ownership and recycles via PutBuffer.
	msg := append(bufpool.Get(len(p)), p...)
	select {
	case c.send <- msg:
		return nil
	case <-c.closed:
		bufpool.Put(msg)
		return ErrClosed
	}
}

func (c *inprocChannel) ReadMessage() ([]byte, error) {
	select {
	case msg := <-c.recv:
		return msg, nil
	case <-c.closed:
		// Drain messages queued before close so in-flight replies are not
		// lost on graceful shutdown.
		select {
		case msg := <-c.recv:
			return msg, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *inprocChannel) SetQoSParameter(params qos.Set) (qos.Set, error) {
	return NoQoS(params)
}

func (c *inprocChannel) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func (c *inprocChannel) LocalAddr() string  { return "inproc:" + c.addr + "/" + c.local }
func (c *inprocChannel) RemoteAddr() string { return "inproc:" + c.addr }

// Package transport implements COOL's generic transport protocol layer.
//
// The original COOL runtime wraps each transport protocol in a class derived
// from _COOL_ComChannel and manages connections through _ComManager
// subclasses (paper Figure 8). This package mirrors that structure with Go
// interfaces:
//
//   - Channel is one established, message-oriented connection (the
//     _COOL_ComChannel analogue). The paper's QoS extension adds a
//     setQoSParameter method to the abstract transport class; Channel
//     carries the same method. Transports without QoS support (TCP, inproc)
//     return ErrQoSNotSupported, exactly as "TCP does not implement the
//     setQoSParameter method" (§4.3).
//   - Manager creates and accepts channels for one transport scheme (the
//     _ComManager analogue).
//   - Registry maps scheme names to managers, which is how COOL "enables
//     support for multiple protocols and eases integration of new
//     protocols" (§2). The Da CaPo transport registers here as the third
//     alternative (§5).
//
// Channels transport opaque, framed messages: the message layer (GIOP)
// formats them, the transport only moves them — COOL's alternative (i)
// integration (Figure 7).
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cool/internal/bufpool"
	"cool/internal/qos"
)

// GetBuffer returns a zero-length buffer with capacity at least n from the
// shared frame arena; PutBuffer recycles one. They are thin aliases of the
// bufpool arena so transport users can honour the Channel ownership
// contract without importing the pool package directly.
func GetBuffer(n int) []byte { return bufpool.Get(n) }

// PutBuffer returns a frame received from Channel.ReadMessage (or any
// other buffer) to the shared arena. The caller must not retain any alias
// of p afterwards.
func PutBuffer(p []byte) { bufpool.Put(p) }

// Errors shared by transport implementations.
var (
	// ErrQoSNotSupported is returned by SetQoSParameter on transports
	// without QoS support when a non-empty requirement set is given.
	ErrQoSNotSupported = errors.New("transport: QoS not supported by this transport")
	// ErrClosed is returned by operations on a closed channel or listener.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownScheme is returned by the registry for unregistered
	// transport schemes.
	ErrUnknownScheme = errors.New("transport: unknown scheme")
)

// Channel is one established transport connection carrying whole messages.
// Implementations must allow one concurrent reader and one concurrent
// writer; Close may be called from any goroutine.
//
// Buffer ownership contract: WriteMessage treats p as borrowed for the
// duration of the call only — the transport copies or transmits it before
// returning, so the caller may immediately reuse or recycle p (the ORB
// returns marshalled frames to the shared arena right after a write).
// ReadMessage hands the returned buffer to the caller with exclusive
// ownership: the transport never touches it again, so the caller may alias
// it from decoded messages and, once the message is dropped, recycle it
// via PutBuffer. Transports draw read buffers from the same arena, making
// the steady-state receive path allocation-free.
type Channel interface {
	// WriteMessage sends one message. p is borrowed only for the call.
	WriteMessage(p []byte) error
	// ReadMessage receives the next message. It returns io.EOF after the
	// peer closed the connection. The returned buffer is owned by the
	// caller; recycle with PutBuffer when done.
	ReadMessage() ([]byte, error)
	// SetQoSParameter performs the unilateral QoS negotiation between the
	// message layer and the transport (§4.3): the transport maps the
	// parameters onto its configuration and resources and returns the
	// granted set, or an error when the requirements cannot be met
	// (*qos.NegotiationError) or QoS is not supported at all
	// (ErrQoSNotSupported).
	SetQoSParameter(params qos.Set) (qos.Set, error)
	// Close releases the connection.
	Close() error
	// LocalAddr and RemoteAddr identify the endpoints (transport-specific
	// syntax, for diagnostics).
	LocalAddr() string
	RemoteAddr() string
}

// BatchChannel is an optional Channel extension for transports that can
// transmit several messages in one carrier operation (TCP uses a single
// vectored write via net.Buffers). Like WriteMessage, every frame is
// borrowed for the duration of the call only: when WriteMessages returns
// the transport holds no alias of any frame and the caller may recycle
// them all. Frames are framed exactly as if written one by one, so peers
// cannot tell coalesced writes from individual ones.
type BatchChannel interface {
	// WriteMessages sends the frames back to back. On error, frames may
	// have been partially transmitted; the connection should be considered
	// broken (same as a failed WriteMessage).
	WriteMessages(frames [][]byte) error
}

// ChannelUnwrapper is implemented by channel decorators (instrumentation
// wrappers) so capability probes can reach the underlying transport.
type ChannelUnwrapper interface {
	Unwrap() Channel
}

// AsBatchChannel probes ch — unwrapping decorators — for the BatchChannel
// capability. It returns (nil, false) when the underlying transport writes
// one message at a time.
func AsBatchChannel(ch Channel) (BatchChannel, bool) {
	for ch != nil {
		if b, ok := ch.(BatchChannel); ok {
			return b, true
		}
		u, ok := ch.(ChannelUnwrapper)
		if !ok {
			return nil, false
		}
		ch = u.Unwrap()
	}
	return nil, false
}

// Listener accepts inbound channels.
type Listener interface {
	Accept() (Channel, error)
	// Addr returns the bound address in the transport's syntax, suitable
	// for a Ref profile.
	Addr() string
	Close() error
}

// Manager creates channels for one transport scheme.
type Manager interface {
	// Scheme is the registry key ("tcp", "inproc", "dacapo").
	Scheme() string
	// Dial connects to a peer listener.
	Dial(addr string) (Channel, error)
	// Listen binds a listener. An empty addr asks the transport to pick
	// (e.g. an ephemeral TCP port).
	Listen(addr string) (Listener, error)
	// Capability advertises the QoS the transport can support, used in
	// exported object references.
	Capability() qos.Capability
}

// ContextDialer is an optional Manager extension for transports whose
// connection setup can honour cancellation and deadlines. The ORB probes
// for it when it holds a context and falls back to plain Dial otherwise.
type ContextDialer interface {
	// DialContext connects like Dial but aborts when ctx is done.
	DialContext(ctx context.Context, addr string) (Channel, error)
}

// DialContext dials addr through m, using the ContextDialer extension when
// the manager provides it. Without the extension the dial itself cannot be
// interrupted, but an already-expired context still fails fast.
func DialContext(ctx context.Context, m Manager, addr string) (Channel, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cd, ok := m.(ContextDialer); ok {
		return cd.DialContext(ctx, addr)
	}
	return m.Dial(addr)
}

// Registry maps transport schemes to managers. The zero value is empty;
// NewRegistry returns one preloaded with the standard transports.
type Registry struct {
	mu       sync.RWMutex
	managers map[string]Manager
	hooks    *Hooks
}

// NewRegistry returns a registry containing the given managers.
func NewRegistry(managers ...Manager) *Registry {
	r := &Registry{managers: make(map[string]Manager, len(managers))}
	for _, m := range managers {
		r.managers[m.Scheme()] = m
	}
	return r
}

// Register adds or replaces the manager for its scheme.
func (r *Registry) Register(m Manager) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.managers == nil {
		r.managers = make(map[string]Manager)
	}
	r.managers[m.Scheme()] = m
}

// Get returns the manager for a scheme.
func (r *Registry) Get(scheme string) (Manager, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.managers[scheme]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownScheme, scheme)
	}
	if r.hooks != nil {
		return hookManager{Manager: m, hooks: r.hooks}, nil
	}
	return m, nil
}

// Schemes lists the registered scheme names (unordered).
func (r *Registry) Schemes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.managers))
	for s := range r.managers {
		out = append(out, s)
	}
	return out
}

// NoQoS is a helper for transports without QoS support: it grants the empty
// set and refuses anything else.
func NoQoS(params qos.Set) (qos.Set, error) {
	if len(params) == 0 {
		return nil, nil
	}
	return nil, ErrQoSNotSupported
}

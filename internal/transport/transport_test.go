package transport

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"cool/internal/qos"
)

// managerUnderTest builds a fresh manager per scheme for the shared
// conformance suite.
func managersUnderTest() map[string]func() Manager {
	return map[string]func() Manager{
		"tcp":    func() Manager { return NewTCPManager() },
		"inproc": func() Manager { return NewInprocManager() },
	}
}

func TestChannelConformance(t *testing.T) {
	for scheme, mk := range managersUnderTest() {
		t.Run(scheme, func(t *testing.T) {
			m := mk()
			if m.Scheme() != scheme {
				t.Fatalf("Scheme() = %q", m.Scheme())
			}
			l, err := m.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			type acceptResult struct {
				ch  Channel
				err error
			}
			acceptCh := make(chan acceptResult, 1)
			go func() {
				ch, err := l.Accept()
				acceptCh <- acceptResult{ch, err}
			}()

			client, err := m.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			ar := <-acceptCh
			if ar.err != nil {
				t.Fatal(ar.err)
			}
			server := ar.ch
			defer server.Close()

			t.Run("round trip", func(t *testing.T) {
				msgs := [][]byte{
					[]byte("hello"),
					{},
					bytes.Repeat([]byte{0xAB}, 100_000),
				}
				for _, msg := range msgs {
					if err := client.WriteMessage(msg); err != nil {
						t.Fatal(err)
					}
					got, err := server.ReadMessage()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, msg) {
						t.Fatalf("len %d -> len %d", len(msg), len(got))
					}
					// And the reverse direction.
					if err := server.WriteMessage(msg); err != nil {
						t.Fatal(err)
					}
					if got, err = client.ReadMessage(); err != nil || !bytes.Equal(got, msg) {
						t.Fatalf("reverse: %v, len %d", err, len(got))
					}
				}
			})

			t.Run("write buffer reuse safe", func(t *testing.T) {
				buf := []byte("first")
				if err := client.WriteMessage(buf); err != nil {
					t.Fatal(err)
				}
				copy(buf, "XXXXX") // caller reuses its buffer immediately
				got, err := server.ReadMessage()
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != "first" {
					t.Fatalf("message corrupted by buffer reuse: %q", got)
				}
			})

			t.Run("no QoS support", func(t *testing.T) {
				if granted, err := client.SetQoSParameter(nil); err != nil || granted != nil {
					t.Fatalf("empty set: %v, %v", granted, err)
				}
				set := qos.Set{{Type: qos.Throughput, Request: 1, Max: qos.NoLimit}}
				if _, err := client.SetQoSParameter(set); !errors.Is(err, ErrQoSNotSupported) {
					t.Fatalf("err = %v, want ErrQoSNotSupported", err)
				}
			})

			t.Run("addrs non-empty", func(t *testing.T) {
				if client.LocalAddr() == "" || client.RemoteAddr() == "" {
					t.Fatal("empty addresses")
				}
			})

			t.Run("EOF after close", func(t *testing.T) {
				if err := client.Close(); err != nil {
					t.Fatal(err)
				}
				deadline := time.After(2 * time.Second)
				done := make(chan error, 1)
				go func() {
					for {
						if _, err := server.ReadMessage(); err != nil {
							done <- err
							return
						}
					}
				}()
				select {
				case err := <-done:
					if err == nil {
						t.Fatal("expected error after peer close")
					}
				case <-deadline:
					t.Fatal("ReadMessage did not observe peer close")
				}
			})
		})
	}
}

func TestConcurrentWriters(t *testing.T) {
	for scheme, mk := range managersUnderTest() {
		t.Run(scheme, func(t *testing.T) {
			m := mk()
			l, err := m.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go func() {
				server, err := l.Accept()
				if err != nil {
					return
				}
				for {
					msg, err := server.ReadMessage()
					if err != nil {
						return
					}
					if err := server.WriteMessage(msg); err != nil {
						return
					}
				}
			}()
			client, err := m.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()

			const writers, perWriter = 8, 50
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					msg := bytes.Repeat([]byte{byte(w)}, 64)
					for i := 0; i < perWriter; i++ {
						if err := client.WriteMessage(msg); err != nil {
							t.Errorf("write: %v", err)
							return
						}
					}
				}(w)
			}
			// One reader drains all echoes and checks frame integrity.
			for i := 0; i < writers*perWriter; i++ {
				msg, err := client.ReadMessage()
				if err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if len(msg) != 64 {
					t.Fatalf("frame %d corrupted: len %d", i, len(msg))
				}
				for _, b := range msg {
					if b != msg[0] {
						t.Fatalf("interleaved frame: % x", msg[:8])
					}
				}
			}
			wg.Wait()
		})
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(NewTCPManager(), NewInprocManager())
	if _, err := r.Get("tcp"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("inproc"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("bogus"); !errors.Is(err, ErrUnknownScheme) {
		t.Fatalf("err = %v", err)
	}
	if n := len(r.Schemes()); n != 2 {
		t.Fatalf("schemes = %d", n)
	}
	var zero Registry
	zero.Register(NewTCPManager())
	if _, err := zero.Get("tcp"); err != nil {
		t.Fatal("Register on zero value failed")
	}
}

func TestInprocDialUnbound(t *testing.T) {
	m := NewInprocManager()
	if _, err := m.Dial("nowhere"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestInprocDuplicateBind(t *testing.T) {
	m := NewInprocManager()
	l, err := m.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Listen("svc"); err == nil {
		t.Fatal("duplicate bind should fail")
	}
	l.Close()
	// After close the name is free again.
	if _, err := m.Listen("svc"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestInprocListenerClose(t *testing.T) {
	m := NewInprocManager()
	l, err := m.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not return after Close")
	}
	if _, err := m.Dial("svc"); err == nil {
		t.Fatal("dial after close should fail")
	}
}

func TestInprocGracefulDrain(t *testing.T) {
	m := NewInprocManager()
	l, _ := m.Listen("svc")
	defer l.Close()
	go func() {
		server, err := l.Accept()
		if err != nil {
			return
		}
		server.WriteMessage([]byte("reply"))
		server.Close()
	}()
	client, err := m.Dial("svc")
	if err != nil {
		t.Fatal(err)
	}
	// Give the server goroutine time to write and close.
	time.Sleep(50 * time.Millisecond)
	got, err := client.ReadMessage()
	if err != nil {
		t.Fatalf("queued message lost on close: %v", err)
	}
	if string(got) != "reply" {
		t.Fatalf("got %q", got)
	}
	if _, err := client.ReadMessage(); !errors.Is(err, io.EOF) {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestTCPRejectsHugeFrame(t *testing.T) {
	m := NewTCPManager()
	l, err := m.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		server, err := l.Accept()
		if err != nil {
			return
		}
		// Forge a frame header claiming 1 GiB.
		server.(*tcpChannel).conn.Write([]byte{0x40, 0, 0, 0})
	}()
	client, err := m.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.ReadMessage(); err == nil {
		t.Fatal("expected frame-size error")
	}
}

func BenchmarkChannelRoundTrip(b *testing.B) {
	for scheme, mk := range managersUnderTest() {
		b.Run(scheme, func(b *testing.B) {
			m := mk()
			l, err := m.Listen("")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			go func() {
				server, err := l.Accept()
				if err != nil {
					return
				}
				for {
					msg, err := server.ReadMessage()
					if err != nil {
						return
					}
					if server.WriteMessage(msg) != nil {
						return
					}
				}
			}()
			client, err := m.Dial(l.Addr())
			if err != nil {
				b.Fatal(err)
			}
			defer client.Close()
			msg := bytes.Repeat([]byte{1}, 1024)
			b.SetBytes(int64(len(msg)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := client.WriteMessage(msg); err != nil {
					b.Fatal(err)
				}
				if _, err := client.ReadMessage(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

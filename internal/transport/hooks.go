package transport

import (
	"context"
	"errors"
	"sync"
)

// Hooks observes connection lifecycle events across all managers of a
// Registry. Each callback receives the transport scheme; any field may be
// nil. Hooks are installed once (before traffic) via Registry.SetHooks and
// applied by wrapping the managers handed out by Get, so transport
// implementations stay oblivious to instrumentation.
type Hooks struct {
	// Opened fires when a channel is established (dial or accept).
	Opened func(scheme string)
	// Closed fires when an established channel is closed (at most once per
	// channel, whichever side closes first).
	Closed func(scheme string)
	// Failed fires when a dial or accept attempt fails. Accept failures
	// caused by listener shutdown (ErrClosed) are not counted.
	Failed func(scheme string)
}

func (h *Hooks) opened(scheme string) {
	if h != nil && h.Opened != nil {
		h.Opened(scheme)
	}
}

func (h *Hooks) closed(scheme string) {
	if h != nil && h.Closed != nil {
		h.Closed(scheme)
	}
}

func (h *Hooks) failed(scheme string) {
	if h != nil && h.Failed != nil {
		h.Failed(scheme)
	}
}

// SetHooks installs lifecycle hooks on the registry. Managers returned by
// Get afterwards are wrapped to report to the hooks. Passing nil removes
// them.
func (r *Registry) SetHooks(h *Hooks) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = h
}

// hookManager wraps a Manager to report lifecycle events.
type hookManager struct {
	Manager
	hooks *Hooks
}

func (m hookManager) Dial(addr string) (Channel, error) {
	ch, err := m.Manager.Dial(addr)
	if err != nil {
		m.hooks.failed(m.Scheme())
		return nil, err
	}
	m.hooks.opened(m.Scheme())
	return &hookChannel{Channel: ch, scheme: m.Scheme(), hooks: m.hooks}, nil
}

// DialContext forwards to the wrapped manager's ContextDialer extension
// (or plain Dial), so hook instrumentation is transparent to ctx dialing.
func (m hookManager) DialContext(ctx context.Context, addr string) (Channel, error) {
	ch, err := DialContext(ctx, m.Manager, addr)
	if err != nil {
		m.hooks.failed(m.Scheme())
		return nil, err
	}
	m.hooks.opened(m.Scheme())
	return &hookChannel{Channel: ch, scheme: m.Scheme(), hooks: m.hooks}, nil
}

func (m hookManager) Listen(addr string) (Listener, error) {
	l, err := m.Manager.Listen(addr)
	if err != nil {
		return nil, err
	}
	return hookListener{Listener: l, scheme: m.Scheme(), hooks: m.hooks}, nil
}

type hookListener struct {
	Listener
	scheme string
	hooks  *Hooks
}

func (l hookListener) Accept() (Channel, error) {
	ch, err := l.Listener.Accept()
	if err != nil {
		if !errors.Is(err, ErrClosed) {
			l.hooks.failed(l.scheme)
		}
		return nil, err
	}
	l.hooks.opened(l.scheme)
	return &hookChannel{Channel: ch, scheme: l.scheme, hooks: l.hooks}, nil
}

type hookChannel struct {
	Channel
	scheme string
	hooks  *Hooks
	once   sync.Once
}

func (c *hookChannel) Close() error {
	err := c.Channel.Close()
	c.once.Do(func() { c.hooks.closed(c.scheme) })
	return err
}

// Unwrap exposes the decorated channel so capability probes (AsBatchChannel)
// can reach transport extensions the wrapper does not re-implement.
func (c *hookChannel) Unwrap() Channel { return c.Channel }

package naming_test

import (
	"errors"
	"testing"

	"cool/internal/ior"
	"cool/internal/naming"
	"cool/internal/orb"
	"cool/internal/transport"
)

// newService starts a naming service on a fresh in-process network and
// returns a client connected from a second ORB.
func newService(t *testing.T) *naming.Client {
	t.Helper()
	inner := transport.NewInprocManager()
	server := orb.New(orb.WithName("ns"), orb.WithTransport(inner))
	client := orb.New(orb.WithName("app"), orb.WithTransport(inner))
	t.Cleanup(func() { client.Shutdown(); server.Shutdown() })
	if _, err := server.ListenOn("inproc", "naming"); err != nil {
		t.Fatal(err)
	}
	ref, err := server.RegisterServant(naming.NewServant())
	if err != nil {
		t.Fatal(err)
	}
	return naming.NewClient(client.Resolve(ref))
}

func sampleRef(name string) ior.Ref {
	return ior.Ref{
		TypeID: "IDL:test/Thing:1.0",
		Profiles: []ior.Profile{
			{Transport: "tcp", Address: "10.0.0.1:4000", ObjectKey: []byte(name)},
		},
	}
}

func TestBindResolveRoundTrip(t *testing.T) {
	ns := newService(t)
	want := sampleRef("alpha")
	if err := ns.Bind("services/alpha", want); err != nil {
		t.Fatal(err)
	}
	got, err := ns.Resolve("services/alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got.TypeID != want.TypeID || len(got.Profiles) != 1 ||
		got.Profiles[0].Address != want.Profiles[0].Address {
		t.Fatalf("got %+v", got)
	}
}

func TestResolveUnknownIsNotFound(t *testing.T) {
	ns := newService(t)
	_, err := ns.Resolve("no/such/name")
	if err == nil {
		t.Fatal("expected error")
	}
	if !naming.IsNotFound(err) {
		t.Fatalf("err = %v, want NotFound", err)
	}
}

func TestRebindReplaces(t *testing.T) {
	ns := newService(t)
	if err := ns.Bind("x", sampleRef("one")); err != nil {
		t.Fatal(err)
	}
	if err := ns.Bind("x", sampleRef("two")); err != nil {
		t.Fatal(err)
	}
	got, err := ns.Resolve("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Profiles[0].ObjectKey) != "two" {
		t.Fatalf("got %q", got.Profiles[0].ObjectKey)
	}
}

func TestUnbind(t *testing.T) {
	ns := newService(t)
	if err := ns.Bind("x", sampleRef("one")); err != nil {
		t.Fatal(err)
	}
	if err := ns.Unbind("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Resolve("x"); !naming.IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
	if err := ns.Unbind("x"); !naming.IsNotFound(err) {
		t.Fatalf("double unbind err = %v", err)
	}
}

func TestListSorted(t *testing.T) {
	ns := newService(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := ns.Bind(n, sampleRef(n)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := ns.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != 3 || names[0] != want[0] || names[1] != want[1] || names[2] != want[2] {
		t.Fatalf("names = %v", names)
	}
}

func TestIsNotFoundOnOtherErrors(t *testing.T) {
	if naming.IsNotFound(errors.New("plain")) {
		t.Fatal("plain error misclassified")
	}
	if naming.IsNotFound(nil) {
		t.Fatal("nil misclassified")
	}
}

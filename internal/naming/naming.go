// Package naming provides a minimal naming service for the COOL
// reproduction: a name-to-object-reference registry implemented as an
// ordinary COOL servant, plus a typed client. It plays the role CORBA's
// Naming Service plays for the examples and experiments: bootstrapping
// object references without pasting stringified IORs around.
//
// Operations (interface "IDL:cool/Naming:1.0"):
//
//	bind(name string, ref string)        — register/replace
//	resolve(name string) -> string       — look up (NotFound user exception)
//	unbind(name string)                  — remove
//	list() -> sequence<string>           — sorted names
package naming

import (
	"errors"
	"sort"
	"sync"

	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/ior"
	"cool/internal/orb"
)

// RepoID is the naming service interface repository id.
const RepoID = "IDL:cool/Naming:1.0"

// NotFoundID is the user exception raised by resolve/unbind on unknown
// names.
const NotFoundID = "IDL:cool/Naming/NotFound:1.0"

// Servant is the naming service implementation.
type Servant struct {
	mu       sync.RWMutex
	bindings map[string]string
}

var _ orb.Servant = (*Servant)(nil)

// NewServant returns an empty naming context.
func NewServant() *Servant {
	return &Servant{bindings: make(map[string]string)}
}

// RepoID implements orb.Servant.
func (s *Servant) RepoID() string { return RepoID }

// Invoke implements orb.Servant: the hand-written skeleton.
func (s *Servant) Invoke(inv *orb.Invocation) (orb.ReplyWriter, error) {
	switch inv.Operation {
	case "bind":
		name, err := inv.Args.ReadString()
		if err != nil {
			return nil, giop.MarshalException()
		}
		refStr, err := inv.Args.ReadString()
		if err != nil {
			return nil, giop.MarshalException()
		}
		s.mu.Lock()
		s.bindings[name] = refStr
		s.mu.Unlock()
		return nil, nil
	case "resolve":
		name, err := inv.Args.ReadString()
		if err != nil {
			return nil, giop.MarshalException()
		}
		s.mu.RLock()
		refStr, ok := s.bindings[name]
		s.mu.RUnlock()
		if !ok {
			return nil, notFound(name)
		}
		return func(enc *cdr.Encoder) { enc.WriteString(refStr) }, nil
	case "unbind":
		name, err := inv.Args.ReadString()
		if err != nil {
			return nil, giop.MarshalException()
		}
		s.mu.Lock()
		_, ok := s.bindings[name]
		delete(s.bindings, name)
		s.mu.Unlock()
		if !ok {
			return nil, notFound(name)
		}
		return nil, nil
	case "list":
		s.mu.RLock()
		names := make([]string, 0, len(s.bindings))
		for n := range s.bindings {
			names = append(names, n)
		}
		s.mu.RUnlock()
		sort.Strings(names)
		return func(enc *cdr.Encoder) { enc.WriteStringSeq(names) }, nil
	default:
		return nil, giop.BadOperation()
	}
}

func notFound(name string) *orb.UserError {
	return &orb.UserError{
		ID:   NotFoundID,
		Body: func(enc *cdr.Encoder) { enc.WriteString(name) },
	}
}

// Client is a typed stub for the naming service.
type Client struct {
	obj *orb.Object
}

// NewClient wraps a resolved naming service object.
func NewClient(obj *orb.Object) *Client { return &Client{obj: obj} }

// Bind registers (or replaces) name -> ref.
func (c *Client) Bind(name string, ref ior.Ref) error {
	refStr := ior.Marshal(ref)
	return c.obj.Invoke("bind", func(enc *cdr.Encoder) {
		enc.WriteString(name)
		enc.WriteString(refStr)
	}, nil)
}

// Resolve looks a name up.
func (c *Client) Resolve(name string) (ior.Ref, error) {
	var refStr string
	err := c.obj.Invoke("resolve",
		func(enc *cdr.Encoder) { enc.WriteString(name) },
		func(dec *cdr.Decoder) error {
			var err error
			refStr, err = dec.ReadString()
			return err
		})
	if err != nil {
		return ior.Ref{}, err
	}
	return ior.Unmarshal(refStr)
}

// Unbind removes a binding.
func (c *Client) Unbind(name string) error {
	return c.obj.Invoke("unbind", func(enc *cdr.Encoder) { enc.WriteString(name) }, nil)
}

// List returns the bound names, sorted.
func (c *Client) List() ([]string, error) {
	var names []string
	err := c.obj.Invoke("list", nil, func(dec *cdr.Decoder) error {
		var err error
		names, err = dec.ReadStringSeq()
		return err
	})
	return names, err
}

// IsNotFound reports whether err is the naming service's NotFound user
// exception.
func IsNotFound(err error) bool {
	var ue *giop.UserException
	return errors.As(err, &ue) && ue.ID == NotFoundID
}

package analysis

import (
	"go/types"
	"sort"
)

// AtomicField flags mixed atomic/plain access to struct fields. The
// interprocedural layer indexes every field reached through sync/atomic —
// raw calls like atomic.AddUint64(&c.hits, 1) and typed-wrapper method
// calls like c.inflight.Load() — together with the mutex classes provably
// held at each site. A plain read or write of the same field is a data
// race unless it is dominated by a mutex that also guards the atomic
// sites; when the atomic sites run lockless (the common case), no mutex
// can make a plain access safe and every one is flagged. This is exactly
// the bug shape of the combiner writer's load-hint counters: one
// forgotten atomic.Load turns a lock-free fast path into a torn read.
//
// Lock context is interprocedural: a plain access inside a *Locked helper
// counts as guarded when every module call site of the helper holds the
// guarding mutex.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic have no unguarded plain reads or writes",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	prog := pass.Prog
	if prog == nil || len(prog.atomicFields) == 0 {
		return
	}

	fields := make([]types.Object, 0, len(prog.atomicFields))
	for obj := range prog.atomicFields {
		fields = append(fields, obj)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })

	for _, obj := range fields {
		facts := prog.atomicFields[obj]
		if len(facts.atomics) == 0 || len(facts.plains) == 0 {
			continue
		}
		sort.Slice(facts.atomics, func(i, j int) bool { return facts.atomics[i].pos < facts.atomics[j].pos })
		sort.Slice(facts.plains, func(i, j int) bool { return facts.plains[i].pos < facts.plains[j].pos })

		// The guard set: mutex classes held at EVERY atomic site. Empty
		// when any atomic site runs lockless.
		var guard lockKeySet
		for _, site := range facts.atomics {
			eff := prog.effectiveHeld(site)
			if guard == nil {
				guard = eff
			} else {
				guard.intersect(eff)
			}
		}

		sample := facts.atomics[0]
		for _, site := range facts.plains {
			pf := prog.funcOf(site.fn)
			if pf == nil || pf.pkg.Types != pass.Pkg {
				continue
			}
			if len(guard) > 0 && prog.effectiveHeld(site).intersects(guard) {
				continue
			}
			access := "read of"
			if site.write {
				access = "write to"
			}
			if len(guard) > 0 {
				pass.Reportf(site.pos, "plain %s %s races with atomic access at %s: the atomic sites are guarded by %s, which is not held here — use sync/atomic or hold the same mutex",
					access, site.text, shortPos(pass.Fset, sample.pos), guardNames(guard))
				continue
			}
			pass.Reportf(site.pos, "plain %s %s races with lockless atomic access at %s — use sync/atomic for every access to %s",
				access, site.text, shortPos(pass.Fset, sample.pos), obj.Name())
		}
	}
}

// guardNames renders the guard set for diagnostics.
func guardNames(s lockKeySet) string {
	names := make([]string, 0, len(s))
	for _, d := range s {
		names = append(names, d)
	}
	sort.Strings(names)
	out := ""
	for i, n := range dedupSorted(names) {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

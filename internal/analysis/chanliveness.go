package analysis

import (
	"go/token"
	"go/types"
	"sort"
)

// ChanLiveness checks module-internal channels — struct fields and
// package-level variables whose every endpoint the interprocedural layer
// can see — for three liveness bugs:
//
//  1. A send with no receive or range anywhere in the module: the sender
//     parks forever (or, buffered, until the buffer fills and then
//     forever).
//  2. A send performed while a mutex is held, where every module receive
//     of the same channel is gated behind that mutex too — including
//     receives inside *Locked helpers, via the called-under-lock
//     fixpoint. The receiver can never run to drain the send: deadlock.
//  3. Double close: two unguarded close() sites of the same channel where
//     one is reachable from the other in the same function, or a
//     function that closes a channel directly and also calls a helper
//     whose summary closes it. close of a closed channel panics.
//
// Channels assigned from anything but a direct make(), or whose value is
// copied, returned, or passed along, are skipped — their endpoints may
// live behind aliases. Sends in a select with a default clause never
// block and are skipped. Intended exceptions use //coollint:allow
// chanliveness (guarded close-and-nil sites are recognized without any
// annotation).
var ChanLiveness = &Analyzer{
	Name: "chanliveness",
	Doc:  "module-internal channel sends have live receivers; no double close",
	Run:  runChanLiveness,
}

func runChanLiveness(pass *Pass) {
	prog := pass.Prog
	if prog == nil || len(prog.chans) == 0 {
		return
	}

	objs := make([]types.Object, 0, len(prog.chans))
	for obj := range prog.chans {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })

	for _, obj := range objs {
		f := prog.chans[obj]
		sort.Slice(f.sends, func(i, j int) bool { return f.sends[i].pos < f.sends[j].pos })
		sort.Slice(f.recvs, func(i, j int) bool { return f.recvs[i].pos < f.recvs[j].pos })
		sort.Slice(f.closes, func(i, j int) bool { return f.closes[i].pos < f.closes[j].pos })

		if f.made && !f.aliased {
			checkSendLiveness(pass, obj, f)
		}
		checkDoubleClose(pass, obj, f)
	}
}

// checkSendLiveness applies rules 1 and 2 to the send sites in this
// package.
func checkSendLiveness(pass *Pass, obj types.Object, f *chanFacts) {
	prog := pass.Prog
	for _, s := range f.sends {
		pf := prog.funcOf(s.fn)
		if pf == nil || pf.pkg.Types != pass.Pkg || s.polled {
			continue
		}
		if len(f.recvs) == 0 {
			pass.Reportf(s.pos, "send on %s can block forever: no receive or range of %s anywhere in the module", s.text, obj.Name())
			continue
		}
		if f.buffered {
			continue
		}
		held := prog.effectiveHeld(s)
		if len(held) == 0 {
			continue
		}
		allGated := true
		common := held.clone()
		for _, r := range f.recvs {
			eff := prog.effectiveHeld(r)
			if !eff.intersects(held) {
				allGated = false
				break
			}
			common.intersect(eff)
		}
		if !allGated {
			continue
		}
		lockName := "the send-side locks"
		if len(common) > 0 {
			lockName = guardNames(common)
		}
		pass.Reportf(s.pos, "send on %s deadlocks: it runs while %s and every module receive of %s is gated behind %s too",
			s.text, held.displays(), obj.Name(), lockName)
	}
}

// checkDoubleClose applies rule 3.
func checkDoubleClose(pass *Pass, obj types.Object, f *chanFacts) {
	prog := pass.Prog

	// Intra-function: two unguarded closes of the same expression where
	// the second is reachable from the first.
	for i, a := range f.closes {
		if a.guarded {
			continue
		}
		for j, b := range f.closes {
			if i == j || b.guarded || a.fn != b.fn || a.text != b.text || a.pos >= b.pos {
				continue
			}
			pf := prog.funcOf(b.fn)
			if pf == nil || pf.pkg.Types != pass.Pkg {
				continue
			}
			if closeReaches(pf, a.pos, b.pos) {
				pass.Reportf(b.pos, "channel %s may already be closed: also closed at %s on a path reaching here — close of a closed channel panics",
					b.text, shortPos(pass.Fset, a.pos))
			}
		}
	}

	// Interprocedural: a direct unguarded close in a function that also
	// calls a helper whose summary closes the same channel.
	for _, a := range f.closes {
		if a.guarded {
			continue
		}
		pf := prog.funcOf(a.fn)
		if pf == nil || pf.pkg.Types != pass.Pkg {
			continue
		}
		for _, callee := range pf.callees {
			sum := prog.sums[callee]
			if sum == nil || !sum.closes[obj] {
				continue
			}
			pass.Reportf(a.pos, "channel %s is closed here and by the call to %s — close of a closed channel panics",
				a.text, callee.Name())
			break
		}
	}
}

// closeReaches reports whether the atom containing pos2 is reachable from
// the atom containing pos1 in pf's CFG (strictly later in the same block,
// or through successor edges).
func closeReaches(pf *progFunc, pos1, pos2 token.Pos) bool {
	g, ok := buildCFG(pf.decl.Body)
	if !ok {
		return true // unmodelled flow: assume reachable
	}
	var blk1, blk2 *cfgBlock
	idx1, idx2 := -1, -1
	for _, b := range g.blocks {
		for i, at := range b.atoms {
			n := atomNode(at)
			if n == nil {
				continue
			}
			if n.Pos() <= pos1 && pos1 < n.End() {
				blk1, idx1 = b, i
			}
			if n.Pos() <= pos2 && pos2 < n.End() {
				blk2, idx2 = b, i
			}
		}
	}
	if blk1 == nil || blk2 == nil {
		return true
	}
	if blk1 == blk2 {
		return idx1 < idx2
	}
	seen := map[*cfgBlock]bool{}
	queue := []*cfgBlock{}
	for _, e := range blk1.succs {
		queue = append(queue, e.to)
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if seen[b] {
			continue
		}
		seen[b] = true
		if b == blk2 {
			return true
		}
		for _, e := range b.succs {
			queue = append(queue, e.to)
		}
	}
	return false
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the absolute directory holding the sources.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Src maps absolute file names to raw content (for annotation parsing).
	Src   map[string][]byte
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of the enclosing module without
// shelling out to the go command: module-internal imports are resolved
// against the module root and type-checked recursively; everything else
// (the standard library) goes through importer.Default's export data.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's import path ("cool").
	ModulePath string
	// IncludeTests adds _test.go files of the package itself (not external
	// test packages) to the loaded syntax.
	IncludeTests bool

	fset   *token.FileSet
	std    types.Importer
	loaded map[string]*loadResult
}

type loadResult struct {
	pkg *Package
	err error
}

// NewLoader locates the module containing dir (walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		std:        importer.Default(),
		loaded:     make(map[string]*loadResult),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", file)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves patterns to packages. Supported patterns: "./..." (every
// package under the module root), a module-relative directory ("./internal/orb"
// or "internal/orb"), or a directory pattern ending in "/..." for a subtree.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		switch {
		case pat == "..." || pat == "":
			if err := l.walkPackageDirs(l.ModuleRoot, addDir); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			sub := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := l.walkPackageDirs(sub, addDir); err != nil {
				return nil, err
			}
		default:
			addDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(pat)))
		}
	}
	sort.Strings(dirs)
	var pkgs []*Package
	var errs []string
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(errs) > 0 {
		return pkgs, fmt.Errorf("analysis: load failed:\n%s", strings.Join(errs, "\n"))
	}
	return pkgs, nil
}

// walkPackageDirs visits every directory under root that contains .go
// files, skipping testdata, hidden directories, and nested modules.
func (l *Loader) walkPackageDirs(root string, visit func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				visit(path)
				break
			}
		}
		return nil
	})
}

// LoadDir loads and type-checks the package in one directory. It returns
// (nil, nil) for directories whose .go files are all excluded by build
// constraints.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.loadDir(abs)
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	if res, ok := l.loaded[dir]; ok {
		return res.pkg, res.err
	}
	// Reserve the slot to fail fast on import cycles.
	l.loaded[dir] = &loadResult{err: fmt.Errorf("analysis: import cycle through %s", dir)}
	pkg, err := l.typeCheckDir(dir)
	l.loaded[dir] = &loadResult{pkg: pkg, err: err}
	return pkg, err
}

// typeCheckDir does the real work of loadDir.
func (l *Loader) typeCheckDir(dir string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)

	pkg := &Package{
		Path: l.importPathFor(dir),
		Dir:  dir,
		Fset: l.fset,
		Src:  make(map[string][]byte),
	}
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", full, err)
		}
		pkg.Src[full] = src
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}

	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &moduleImporter{l: l},
		Error:    func(error) {}, // collect through the returned error only
	}
	tpkg, err := conf.Check(pkg.Path, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// importPathFor maps an absolute directory to its module import path; for
// directories outside the module tree it falls back to the directory name.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// moduleImporter resolves module-internal imports by recursive loading and
// defers everything else to the standard importer.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := m.l
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no buildable sources for %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

package analysis

import (
	"go/ast"
	"go/token"
)

// The analyzers that need path sensitivity (poolpair, lockhold) run a
// forward dataflow over a statement-level control-flow graph. Blocks hold
// "atoms": simple statements and the condition expressions of control
// statements. Control structure lives purely in the edges.

// atomKind classifies what a CFG atom represents.
type atomKind uint8

const (
	atomStmt   atomKind = iota // a simple statement, Stmt is set
	atomExpr                   // a control-statement condition, Expr is set
	atomSelect                 // a select statement header, Sel is set
	atomReturn                 // a return statement, Stmt is *ast.ReturnStmt
)

// atom is one CFG node payload.
type atom struct {
	kind atomKind
	stmt ast.Stmt
	expr ast.Expr
	sel  *ast.SelectStmt
	// comm marks statements that are the communication clause of a select
	// (their channel operation blocks as part of the select, not on its
	// own).
	comm bool
}

// cfgEdge is one control-flow edge. Edges leaving an if-condition carry
// the condition and which branch they represent, so dataflow analyses can
// correlate `v, err := acquire(...)` with `if err != nil` guards.
type cfgEdge struct {
	to *cfgBlock
	// cond, when set, is the if-condition this edge leaves; branch is true
	// for the then-edge and false for the else-edge.
	cond   ast.Expr
	branch bool
}

// cfgBlock is a basic block.
type cfgBlock struct {
	atoms []atom
	succs []cfgEdge
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry *cfgBlock
	// exit is the virtual function-exit block. Return statements and the
	// fall-off end of the body both lead here.
	exit   *cfgBlock
	blocks []*cfgBlock
	// ok is false when the body uses constructs the builder does not
	// model (goto); analyses should then skip the function.
	ok bool
}

// cfgBuilder carries loop/label context during construction.
type cfgBuilder struct {
	g *cfg
	// breakTargets / continueTargets are stacks of the innermost
	// break/continue destinations, with optional labels.
	breaks    []branchTarget
	continues []branchTarget
	failed    bool
}

type branchTarget struct {
	label string
	block *cfgBlock
}

// buildCFG constructs the CFG of a function body. The second result is
// false when the body contains constructs the builder cannot model.
func buildCFG(body *ast.BlockStmt) (*cfg, bool) {
	g := &cfg{ok: true}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	last := b.stmts(g.entry, body.List, "")
	if last != nil {
		b.link(last, g.exit)
	}
	if b.failed {
		return nil, false
	}
	return g, true
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, cfgEdge{to: to})
}

// linkCond links a labeled branch edge out of an if-condition.
func (b *cfgBuilder) linkCond(from, to *cfgBlock, cond ast.Expr, branch bool) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, cfgEdge{to: to, cond: cond, branch: branch})
}

// stmts lays out a statement list starting in cur. It returns the block
// holding the fall-through end, or nil when control cannot fall off the
// end (return/branch on every path). label names the enclosing labeled
// statement for the first statement, if any.
func (b *cfgBuilder) stmts(cur *cfgBlock, list []ast.Stmt, label string) *cfgBlock {
	for i, s := range list {
		lbl := ""
		if i == 0 {
			lbl = label
		}
		cur = b.stmt(cur, s, lbl)
		if cur == nil {
			// Unreachable code after return/branch: keep laying it out in a
			// fresh, unlinked block so its atoms still exist for scanning.
			if i+1 < len(list) {
				cur = b.newBlock()
			} else {
				return nil
			}
		}
	}
	return cur
}

// stmt lays out one statement. Returns the fall-through block (nil when
// control transfers away).
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt, label string) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, s.List, "")

	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.atoms = append(cur.atoms, atom{kind: atomStmt, stmt: s.Init})
		}
		cur.atoms = append(cur.atoms, atom{kind: atomExpr, expr: s.Cond})
		thenBlk := b.newBlock()
		b.linkCond(cur, thenBlk, s.Cond, true)
		thenEnd := b.stmts(thenBlk, s.Body.List, "")
		after := b.newBlock()
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.linkCond(cur, elseBlk, s.Cond, false)
			elseEnd := b.stmt(elseBlk, s.Else, "")
			b.link(elseEnd, after)
		} else {
			b.linkCond(cur, after, s.Cond, false)
		}
		b.link(thenEnd, after)
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.atoms = append(cur.atoms, atom{kind: atomStmt, stmt: s.Init})
		}
		head := b.newBlock()
		b.link(cur, head)
		if s.Cond != nil {
			head.atoms = append(head.atoms, atom{kind: atomExpr, expr: s.Cond})
		}
		after := b.newBlock()
		body := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, after)
		}
		post := b.newBlock()
		if s.Post != nil {
			post.atoms = append(post.atoms, atom{kind: atomStmt, stmt: s.Post})
		}
		b.pushLoop(label, after, post)
		bodyEnd := b.stmts(body, s.Body.List, "")
		b.popLoop()
		b.link(bodyEnd, post)
		b.link(post, head)
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.link(cur, head)
		// Model the per-iteration bindings as an atom so analyzers see the
		// key/value assignment.
		head.atoms = append(head.atoms, atom{kind: atomStmt, stmt: s})
		after := b.newBlock()
		body := b.newBlock()
		b.link(head, body)
		b.link(head, after)
		b.pushLoop(label, after, head)
		bodyEnd := b.stmts(body, s.Body.List, "")
		b.popLoop()
		b.link(bodyEnd, head)
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.atoms = append(cur.atoms, atom{kind: atomStmt, stmt: s.Init})
		}
		if s.Tag != nil {
			cur.atoms = append(cur.atoms, atom{kind: atomExpr, expr: s.Tag})
		}
		return b.switchBody(cur, s.Body, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.atoms = append(cur.atoms, atom{kind: atomStmt, stmt: s.Init})
		}
		cur.atoms = append(cur.atoms, atom{kind: atomStmt, stmt: s.Assign})
		return b.switchBody(cur, s.Body, label, nil)

	case *ast.SelectStmt:
		cur.atoms = append(cur.atoms, atom{kind: atomSelect, sel: s})
		after := b.newBlock()
		any := false
		b.pushLoop(label, after, nil) // select supports (labeled) break
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			clause := b.newBlock()
			b.link(cur, clause)
			if cc.Comm != nil {
				clause.atoms = append(clause.atoms, atom{kind: atomStmt, stmt: cc.Comm, comm: true})
			}
			end := b.stmts(clause, cc.Body, "")
			b.link(end, after)
			any = true
		}
		b.popLoop()
		if !any {
			b.link(cur, after) // empty select: does not fall through, but keep graph sane
		}
		return after

	case *ast.ReturnStmt:
		cur.atoms = append(cur.atoms, atom{kind: atomReturn, stmt: s})
		b.link(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(b.breaks, s.Label); t != nil {
				b.link(cur, t)
				return nil
			}
			b.failed = true
			return nil
		case token.CONTINUE:
			if t := b.findTarget(b.continues, s.Label); t != nil {
				b.link(cur, t)
				return nil
			}
			b.failed = true
			return nil
		case token.FALLTHROUGH:
			// Handled in switchBody via clause chaining.
			return cur
		default: // goto
			b.failed = true
			return nil
		}

	case *ast.ExprStmt:
		cur.atoms = append(cur.atoms, atom{kind: atomStmt, stmt: s})
		if isTerminalCall(s.X) {
			// Dying paths (panic, os.Exit, t.Fatal) terminate without
			// reaching the exit block: ownership checks do not apply there.
			return nil
		}
		return cur

	default:
		// Simple statements: assignments, declarations, sends, inc/dec,
		// defer, go, empty.
		cur.atoms = append(cur.atoms, atom{kind: atomStmt, stmt: s})
		return cur
	}
}

// switchBody lays out the case clauses of a switch or type switch.
func (b *cfgBuilder) switchBody(cur *cfgBlock, body *ast.BlockStmt, label string, _ any) *cfgBlock {
	after := b.newBlock()
	hasDefault := false
	b.pushLoop(label, after, nil)
	type clauseLayout struct {
		start *cfgBlock
		cc    *ast.CaseClause
	}
	var layouts []clauseLayout
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clause := b.newBlock()
		b.link(cur, clause)
		for _, e := range cc.List {
			clause.atoms = append(clause.atoms, atom{kind: atomExpr, expr: e})
		}
		layouts = append(layouts, clauseLayout{start: clause, cc: cc})
	}
	for i, lay := range layouts {
		bodyBlk := b.newBlock()
		b.link(lay.start, bodyBlk)
		end := b.stmts(bodyBlk, lay.cc.Body, "")
		if fallsThrough(lay.cc.Body) && i+1 < len(layouts) {
			// fallthrough transfers into the next clause's body; chaining to
			// its start block (which only holds case expressions) is an
			// acceptable approximation.
			b.link(end, layouts[i+1].start)
		} else {
			b.link(end, after)
		}
	}
	b.popLoop()
	if !hasDefault {
		b.link(cur, after)
	}
	return after
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	if cont != nil {
		b.continues = append(b.continues, branchTarget{label: label, block: cont})
	} else {
		b.continues = append(b.continues, branchTarget{label: label, block: nil})
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// findTarget resolves a break/continue destination, honouring labels.
func (b *cfgBuilder) findTarget(stack []branchTarget, label *ast.Ident) *cfgBlock {
	for i := len(stack) - 1; i >= 0; i-- {
		t := stack[i]
		if t.block == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t.block
		}
	}
	return nil
}

// isTerminalCall reports calls that never return (panic, os.Exit,
// runtime.Goexit, testing's Fatal family via t.Fatal/t.Fatalf/t.Skip...).
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Exit", "Goexit", "Fatal", "Fatalf", "Skip", "Skipf", "SkipNow", "FailNow":
			return true
		}
	}
	return false
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireTaint enforces the hostile-peer allocation discipline: any integer
// derived from wire data — cdr.Decoder reads, encoding/binary byte-order
// reads, or results of module functions that return such values — is
// untrusted and must pass a bounds guard before it reaches an allocation
// size (make), a loop bound, or a helper that allocates from it.
//
// Guards are comparisons that bound the tainted value against something
// the process controls:
//
//   - a relational comparison (< <= > >=) against a constant expression
//     (MaxMessageSize, maxFragCount, literals) or against an expression
//     containing len/cap or a Remaining/Len/Cap method call
//   - an equality comparison (== !=) only when the other side contains
//     len/cap or a Remaining-style call (length reconciliation like
//     len(frame) != HeaderSize+int(h.Size)); equality against a bare
//     constant (count == 0) does not bound the value
//   - a call to a function whose summary says it bounds that parameter
//     (d.need(n), dec.ReadOctets(n))
//
// Comparisons against plain variables (loop induction `i < n`) never
// guard. The analysis is position-ordered within a function — the guard
// must precede the sink — and interprocedural through function summaries:
// helper results carry taint, helper parameters that reach sinks
// unguarded make the call site a sink, and helper-internal guards
// sanitize at the call site.
var WireTaint = &Analyzer{
	Name: "wiretaint",
	Doc:  "wire-derived sizes must be bounds-checked before allocation or loop use",
	Run:  runWireTaint,
}

// Taint bit assignments: bit 0 is wire-derived data, bit i+1 is
// "flows from parameter i" (receiver-first indexing).
const wireBit uint64 = 1

func paramBit(i int) uint64 {
	if i >= 62 {
		return 0
	}
	return 1 << uint(i+1)
}

// taintKey names one tracked lvalue: a variable, or a field path rooted
// at a variable (h.Size -> {obj(h), "Size"}).
type taintKey struct {
	obj  types.Object
	path string
}

// taintEnv is the per-function taint state.
type taintEnv struct {
	prog   *Program
	info   *types.Info
	params []*types.Var
	// env maps tracked lvalues to their taint bits (unguarded view).
	env map[taintKey]uint64
	// guards maps lvalues to the position of their earliest bounds guard.
	guards map[taintKey]token.Pos
}

func runWireTaint(pass *Pass) {
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var params []*types.Var
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				params = receiverFirstParams(obj)
			}
			te := newTaintEnv(pass.Prog, pass.Info, params)
			te.analyze(fn.Body)
			te.reportSinks(fn.Body, pass)
		}
	}
}

func newTaintEnv(prog *Program, info *types.Info, params []*types.Var) *taintEnv {
	te := &taintEnv{
		prog:   prog,
		info:   info,
		params: params,
		env:    make(map[taintKey]uint64),
		guards: make(map[taintKey]token.Pos),
	}
	for i, p := range params {
		te.env[taintKey{obj: p}] = paramBit(i)
	}
	return te
}

// analyze runs the three phases over one body: an unguarded propagation
// fixpoint, guard collection, then a guard-aware re-propagation so values
// copied from an already-guarded variable come out clean.
func (te *taintEnv) analyze(body *ast.BlockStmt) {
	te.propagate(body, false)
	te.collectGuards(body)
	// Reset locals (keep parameter seeds) and re-propagate with guards.
	te.env = make(map[taintKey]uint64)
	for i, p := range te.params {
		te.env[taintKey{obj: p}] = paramBit(i)
	}
	te.propagate(body, true)
}

// propagate runs the assignment fixpoint. When guarded is set, reads of a
// variable after its guard position yield no taint.
func (te *taintEnv) propagate(body *ast.BlockStmt, guarded bool) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				changed = te.transferAssign(s, guarded) || changed
			case *ast.DeclStmt:
				if gd, ok := s.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							changed = te.transferValueSpec(vs, guarded) || changed
						}
					}
				}
			}
			return true
		})
	}
}

// lookupAt reads a key's taint, masking everything once the value was
// guarded before the use position.
func (te *taintEnv) lookupAt(k taintKey, at token.Pos, guarded bool) uint64 {
	bits := te.env[k]
	if bits == 0 {
		return 0
	}
	if guarded {
		if gp, ok := te.guards[k]; ok && gp < at {
			return 0
		}
	}
	return bits
}

// set merges bits into a key, reporting growth.
func (te *taintEnv) set(k taintKey, bits uint64) bool {
	if bits == 0 || k.obj == nil {
		return false
	}
	old := te.env[k]
	if old|bits == old {
		return false
	}
	te.env[k] = old | bits
	return true
}

// lvalKey resolves an assignable expression to a tracked key: plain
// identifiers and field paths rooted at an identifier.
func (te *taintEnv) lvalKey(e ast.Expr) (taintKey, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := objOf(te.info, x); obj != nil {
			return taintKey{obj: obj}, true
		}
	case *ast.SelectorExpr:
		if k, ok := te.lvalKey(x.X); ok {
			if k.path != "" {
				k.path += "."
			}
			k.path += x.Sel.Name
			return k, true
		}
	case *ast.StarExpr:
		return te.lvalKey(x.X)
	}
	return taintKey{}, false
}

func (te *taintEnv) transferAssign(s *ast.AssignStmt, guarded bool) bool {
	changed := false
	if len(s.Lhs) == len(s.Rhs) {
		for i, l := range s.Lhs {
			bits := te.taintOf(s.Rhs[i], s.Pos(), guarded)
			if k, ok := te.lvalKey(l); ok {
				changed = te.set(k, bits) || changed
			}
		}
		return changed
	}
	// Multi-value form: per-result bits for calls, nothing for comma-ok.
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			results := te.callResultBits(call, s.Pos(), guarded)
			for i, l := range s.Lhs {
				if i >= len(results) {
					break
				}
				if k, ok := te.lvalKey(l); ok {
					changed = te.set(k, results[i]) || changed
				}
			}
		}
	}
	return changed
}

func (te *taintEnv) transferValueSpec(vs *ast.ValueSpec, guarded bool) bool {
	changed := false
	if len(vs.Values) == len(vs.Names) {
		for i, name := range vs.Names {
			bits := te.taintOf(vs.Values[i], vs.Pos(), guarded)
			if obj := objOf(te.info, name); obj != nil {
				changed = te.set(taintKey{obj: obj}, bits) || changed
			}
		}
	} else if len(vs.Values) == 1 {
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			results := te.callResultBits(call, vs.Pos(), guarded)
			for i, name := range vs.Names {
				if i >= len(results) {
					break
				}
				if obj := objOf(te.info, name); obj != nil {
					changed = te.set(taintKey{obj: obj}, results[i]) || changed
				}
			}
		}
	}
	return changed
}

// taintOf computes the taint bits of an expression at a use position.
func (te *taintEnv) taintOf(e ast.Expr, at token.Pos, guarded bool) uint64 {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := objOf(te.info, x); obj != nil {
			return te.lookupAt(taintKey{obj: obj}, at, guarded)
		}
	case *ast.SelectorExpr:
		var bits uint64
		if k, ok := te.lvalKey(x); ok {
			bits = te.lookupAt(k, at, guarded)
		}
		return bits | te.taintOf(x.X, at, guarded)
	case *ast.CallExpr:
		results := te.callResultBits(x, at, guarded)
		if len(results) > 0 {
			return results[0]
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return 0 // booleans carry no size taint
		case token.REM, token.AND:
			// n % const and n & const are bounded by the constant.
			if isConstExpr(te.info, x.Y) {
				return 0
			}
		}
		return te.taintOf(x.X, at, guarded) | te.taintOf(x.Y, at, guarded)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return 0 // channel payloads are not tracked
		}
		return te.taintOf(x.X, at, guarded)
	case *ast.StarExpr:
		return te.taintOf(x.X, at, guarded)
	case *ast.IndexExpr:
		return te.taintOf(x.X, at, guarded)
	case *ast.SliceExpr:
		return te.taintOf(x.X, at, guarded)
	case *ast.TypeAssertExpr:
		return te.taintOf(x.X, at, guarded)
	}
	return 0
}

// callResultBits computes per-result taint for a call: conversions pass
// taint through, intrinsic wire reads produce it, module summaries
// instantiate it, and everything else is clean.
func (te *taintEnv) callResultBits(call *ast.CallExpr, at token.Pos, guarded bool) []uint64 {
	// Conversions keep the operand's taint: int(n) is as hostile as n.
	if tv, ok := te.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return []uint64{te.taintOf(call.Args[0], at, guarded)}
	}

	// Builtins: len/cap of anything are process-controlled; min is
	// bounded when any argument is clean; max keeps every taint.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := objOf(te.info, id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "min":
				var bits uint64
				for _, a := range call.Args {
					ab := te.taintOf(a, at, guarded)
					if ab == 0 {
						return []uint64{0}
					}
					bits |= ab
				}
				return []uint64{bits}
			case "max":
				var bits uint64
				for _, a := range call.Args {
					bits |= te.taintOf(a, at, guarded)
				}
				return []uint64{bits}
			}
			return []uint64{0}
		}
	}

	callee := calleeOf(te.info, call)
	if callee == nil {
		return []uint64{0}
	}
	if isWireSource(callee) {
		return []uint64{wireBit}
	}

	sum := te.prog.summaryOf(callee)
	if sum == nil {
		return []uint64{0}
	}
	argBits := te.callArgBits(call, callee, sum, at, guarded)
	out := make([]uint64, len(sum.resultBits))
	for j, rb := range sum.resultBits {
		var bits uint64
		if rb&wireBit != 0 {
			bits |= wireBit
		}
		for i := 0; i < sum.nParams; i++ {
			if rb&paramBit(i) != 0 && i < len(argBits) {
				bits |= argBits[i]
			}
		}
		out[j] = bits
	}
	return out
}

// callArgBits maps call-site argument taint onto the callee's
// receiver-first parameter indexes.
func (te *taintEnv) callArgBits(call *ast.CallExpr, callee types.Object, sum *Summary, at token.Pos, guarded bool) []uint64 {
	bits := make([]uint64, sum.nParams)
	idx := 0
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if len(bits) > 0 {
				bits[0] = te.taintOf(sel.X, at, guarded)
			}
		}
		idx = 1
	}
	for _, a := range call.Args {
		if idx >= len(bits) {
			// Variadic overflow: fold into the last parameter.
			if len(bits) > 0 {
				bits[len(bits)-1] |= te.taintOf(a, at, guarded)
			}
			continue
		}
		bits[idx] = te.taintOf(a, at, guarded)
		idx++
	}
	return bits
}

// isWireSource classifies the intrinsic taint sources: integer reads on
// cdr.Decoder and encoding/binary byte-order reads. (Module helpers that
// wrap these are covered by summaries; the intrinsics keep single-package
// runs like the test fixtures sound.)
func isWireSource(callee types.Object) bool {
	switch {
	case isMethod(callee, "cool/internal/cdr", "ReadOctet"),
		isMethod(callee, "cool/internal/cdr", "ReadChar"),
		isMethod(callee, "cool/internal/cdr", "ReadShort"),
		isMethod(callee, "cool/internal/cdr", "ReadUShort"),
		isMethod(callee, "cool/internal/cdr", "ReadLong"),
		isMethod(callee, "cool/internal/cdr", "ReadULong"),
		isMethod(callee, "cool/internal/cdr", "ReadLongLong"),
		isMethod(callee, "cool/internal/cdr", "ReadULongLong"):
		return true
	case isMethod(callee, "encoding/binary", "Uint16"),
		isMethod(callee, "encoding/binary", "Uint32"),
		isMethod(callee, "encoding/binary", "Uint64"):
		return true
	}
	return false
}

// collectGuards scans for bounds guards: bounding comparisons and calls
// into summarized guard helpers. For-loop conditions are excluded — a
// loop bound is a sink, not a guard.
func (te *taintEnv) collectGuards(body *ast.BlockStmt) {
	var forConds = make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok && fs.Cond != nil {
			forConds[fs.Cond] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if forConds[x] {
				return true
			}
			te.guardFromCompare(x)
		case *ast.CallExpr:
			te.guardFromCall(x)
		}
		return true
	})
}

// guardFromCompare records a guard when a comparison bounds a tainted
// side against a bounding expression.
func (te *taintEnv) guardFromCompare(be *ast.BinaryExpr) {
	relational := false
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		relational = true
	case token.EQL, token.NEQ:
	default:
		return
	}
	try := func(tainted, other ast.Expr) {
		if te.taintOf(tainted, be.Pos(), false) == 0 {
			return
		}
		bounding := containsLenOrRemaining(te.info, other)
		if relational && !bounding {
			// Constants bound outright. An untainted struct field
			// (ack >= m.next) is process-maintained state and bounds too;
			// a bare local (loop induction `i < n`) never does.
			bounding = isConstExpr(te.info, other) ||
				(te.taintOf(other, be.Pos(), false)&wireBit == 0 && mentionsFieldVar(te.info, other))
		}
		if !bounding {
			return
		}
		for _, k := range te.keysIn(tainted) {
			if old, ok := te.guards[k]; !ok || be.Pos() < old {
				te.guards[k] = be.Pos()
			}
		}
	}
	try(be.X, be.Y)
	try(be.Y, be.X)
}

// guardFromCall records guards for arguments handed to functions that
// bounds-check them internally (summary guardsParam).
func (te *taintEnv) guardFromCall(call *ast.CallExpr) {
	callee := calleeOf(te.info, call)
	if callee == nil {
		return
	}
	sum := te.prog.summaryOf(callee)
	if sum == nil || sum.guardsParam == 0 {
		return
	}
	recvOffset := 0
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		recvOffset = 1
	}
	for i, a := range call.Args {
		if sum.guardsParam&paramBit(i+recvOffset) == 0 {
			continue
		}
		for _, k := range te.keysIn(a) {
			if old, ok := te.guards[k]; !ok || call.Pos() < old {
				te.guards[k] = call.Pos()
			}
		}
	}
}

// keysIn lists the tracked keys mentioned by an expression that currently
// carry taint.
func (te *taintEnv) keysIn(e ast.Expr) []taintKey {
	var out []taintKey
	ast.Inspect(e, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if k, ok := te.lvalKey(expr); ok {
			if te.env[k] != 0 {
				out = append(out, k)
			}
			return false // the root covers nested selectors
		}
		return true
	})
	return out
}

// containsLenOrRemaining reports whether e mentions builtin len/cap or a
// Remaining/Len/Cap method call — the expressions that tie a bound to
// what was actually received.
func containsLenOrRemaining(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, isBuiltin := objOf(info, fun).(*types.Builtin); isBuiltin {
				if fun.Name == "len" || fun.Name == "cap" {
					found = true
				}
			}
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Remaining", "Len", "Cap":
				found = true
			}
		}
		return !found
	})
	return found
}

// isConstExpr reports whether e is a compile-time constant expression.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// mentionsFieldVar reports whether e contains a struct-field selector.
func mentionsFieldVar(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			found = true
		}
		return !found
	})
	return found
}

// --- sinks ------------------------------------------------------------

// reportSinks walks the body for allocation and loop-bound sinks fed by
// unguarded wire taint.
func (te *taintEnv) reportSinks(body *ast.BlockStmt, pass *Pass) {
	te.forEachSink(body, func(pos token.Pos, msg string) {
		pass.Reportf(pos, "%s", msg)
	}, nil)
}

// forEachSink invokes report for wire-tainted unguarded sinks and, when
// sinkParams is non-nil, accumulates parameter bits that reach sinks.
func (te *taintEnv) forEachSink(body *ast.BlockStmt, report func(pos token.Pos, what string), sinkParams *uint64) {
	const guardHint = "guard it against Remaining()/len or a constant limit first"
	handle := func(e ast.Expr, at token.Pos, msg string) {
		bits := te.taintOf(e, at, true)
		if bits == 0 {
			return
		}
		if bits&wireBit != 0 && report != nil {
			report(e.Pos(), msg)
		}
		if sinkParams != nil {
			*sinkParams |= bits &^ wireBit
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// make(T, n) / make(T, n, c)
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := objOf(te.info, id).(*types.Builtin); isBuiltin {
					for _, a := range x.Args[1:] {
						handle(a, x.Pos(), "wire-derived allocation size is not bounds-checked ("+guardHint+")")
					}
					return true
				}
			}
			// Arguments handed to helpers that sink them.
			callee := calleeOf(te.info, x)
			if callee == nil {
				return true
			}
			sum := te.prog.summaryOf(callee)
			if sum == nil || sum.sinkParam == 0 {
				return true
			}
			recvOffset := 0
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				recvOffset = 1
			}
			for i, a := range x.Args {
				if sum.sinkParam&paramBit(i+recvOffset) != 0 {
					handle(a, x.Pos(), "wire-derived size handed to "+callee.Name()+", which uses it as an unchecked allocation or loop bound")
				}
			}
		case *ast.ForStmt:
			if x.Cond == nil {
				return true
			}
			ast.Inspect(x.Cond, func(cn ast.Node) bool {
				be, ok := cn.(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
					handle(be.X, x.Pos(), "wire-derived loop bound is not bounds-checked ("+guardHint+")")
					handle(be.Y, x.Pos(), "wire-derived loop bound is not bounds-checked ("+guardHint+")")
				}
				return true
			})
		}
		return true
	})
}

// --- summary computation (called from interproc.go) --------------------

// taintSummarize fills the taint-related summary fields for one function.
func taintSummarize(prog *Program, pf *progFunc, s *Summary) {
	te := newTaintEnv(prog, pf.pkg.Info, pf.params)
	te.analyze(pf.decl.Body)

	// guardsParam: the function bounds-checks the parameter somewhere.
	for i, p := range pf.params {
		if _, ok := te.guards[taintKey{obj: p}]; ok {
			s.guardsParam |= paramBit(i)
		}
	}

	// sinkParam: parameter taint reaching local sinks unguarded.
	te.forEachSink(pf.decl.Body, nil, &s.sinkParam)
	// Normalize: summary sinkParam uses receiver-first bits directly.

	// resultBits from the function's own returns, guard-filtered.
	sig := pf.obj.Type().(*types.Signature)
	named := namedResults(pf.pkg.Info, pf.decl)
	forEachOwnReturn(pf.decl.Body, func(ret *ast.ReturnStmt) {
		results := ret.Results
		if len(results) == 0 && len(named) > 0 {
			for j, obj := range named {
				if j < len(s.resultBits) && obj != nil {
					s.resultBits[j] |= te.lookupAt(taintKey{obj: obj}, ret.Pos(), true) | te.fieldUnion(obj, ret.Pos())
				}
			}
			return
		}
		if len(results) == 1 && sig.Results().Len() > 1 {
			// return f() passing through another call's results.
			if call, ok := ast.Unparen(results[0]).(*ast.CallExpr); ok {
				rb := te.callResultBits(call, ret.Pos(), true)
				for j := range s.resultBits {
					if j < len(rb) {
						s.resultBits[j] |= rb[j]
					}
				}
			}
			return
		}
		for j, r := range results {
			if j >= len(s.resultBits) {
				break
			}
			bits := te.taintOf(r, ret.Pos(), true)
			if id, ok := ast.Unparen(r).(*ast.Ident); ok {
				if obj := objOf(te.info, id); obj != nil {
					bits |= te.fieldUnion(obj, ret.Pos())
				}
			}
			s.resultBits[j] |= bits
		}
	})
}

// fieldUnion folds the guard-filtered taint of every tracked field of a
// variable: returning a struct whose field carries unguarded wire data
// taints the whole result.
func (te *taintEnv) fieldUnion(obj types.Object, at token.Pos) uint64 {
	var bits uint64
	for k := range te.env {
		if k.obj == obj && k.path != "" {
			bits |= te.lookupAt(k, at, true)
		}
	}
	return bits
}

// namedResults returns the objects of named result parameters, aligned
// with result indexes (nil entries for unnamed).
func namedResults(info *types.Info, decl *ast.FuncDecl) []types.Object {
	if decl.Type.Results == nil {
		return nil
	}
	var out []types.Object
	for _, f := range decl.Type.Results.List {
		if len(f.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, name := range f.Names {
			out = append(out, info.Defs[name])
		}
	}
	return out
}

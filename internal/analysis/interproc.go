package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural layer of the framework: a module-wide
// function index and call graph, condensed into strongly connected
// components and walked bottom-up to compute one Summary per function.
// Summaries carry the cross-function facts the analyzers need — wire-taint
// propagation and guard facts (wiretaint), acquire/release effects
// (poolpair), alias-returning results (framealias), and join/loop facts
// (goroleak) — so each analyzer stays a per-function pass that consults
// callee summaries instead of re-deriving the whole program.
//
// The computation is a fixpoint per SCC: summaries inside a cycle are
// recomputed until stable (monotone bit growth, so termination is by
// lattice height). Functions are identified by their *types.Func object;
// function literals are not separate nodes — their bodies are analyzed as
// part of the enclosing function or, for `go` payloads, directly by
// goroleak.

// Program is the module-wide analysis view shared by every Pass of one
// RunAnalyzers invocation.
type Program struct {
	fset  *token.FileSet
	funcs map[*types.Func]*progFunc
	sums  map[*types.Func]*Summary
	// closedChans records every variable (including struct fields, via
	// their *types.Var object) that is the argument of a builtin close()
	// call anywhere in the analyzed packages. goroleak treats a receive
	// from such a channel as a stop edge.
	closedChans map[types.Object]bool

	// Concurrency facts (lockfacts.go), filled in by a post-summary pass:
	// the module-wide lock-ordering edges, the lock context of every
	// module-internal call site, the send/recv/close sites of every
	// tracked channel object, the atomic/plain access sites of every
	// field touched through sync/atomic, and the locks provably held at
	// every call site of a function (the *Locked-helper fixpoint).
	lockEdges    []lockEdge
	callSites    map[*types.Func][]callSiteRec
	chans        map[types.Object]*chanFacts
	atomicFields map[types.Object]*atomicFacts
	guardedBy    map[*types.Func]lockKeySet
	// annots caches the per-file //coollint:allow index for allowedAt.
	annots map[*token.File]map[int]map[string]bool

	// Allocation facts (allocfacts.go): per-function classified warm
	// allocation sites and synchronous call edges for hotalloc, plus the
	// per-file //coollint:allocok line index.
	allocFacts map[*types.Func]*allocFuncFacts
	allocOK    map[*token.File]map[int]string
}

// progFunc is one function declaration in the module.
type progFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
	// params is the receiver-first parameter list (summaries index
	// parameters in this order).
	params []*types.Var
	// callees are the module-internal functions called directly from the
	// body (including inside function literals).
	callees []*types.Func
}

// Summary is the interprocedural abstract of one function. Parameter
// indexes are receiver-first: a method's receiver is parameter 0 and its
// declared parameters follow. Taint sets are bitmasks: bit 0 is
// wire-derived taint, bit i+1 is "flows from parameter i".
type Summary struct {
	nParams  int
	nResults int

	// resultBits[j] is the taint of result j: the wire bit when the
	// result carries unguarded wire-derived data, plus parameter bits for
	// unsanitized parameter-to-result flow.
	resultBits []uint64
	// guardsParam has bit i set when the function bounds-checks parameter
	// i against a constant or a len/cap/Remaining-style limit before use:
	// calling f(x) then counts as a guard of x at the call site.
	guardsParam uint64
	// sinkParam has bit i set when parameter i reaches an allocation or
	// loop-bound sink inside the function without a guard.
	sinkParam uint64

	// joins reports a statically identifiable stop edge reachable from
	// the function body: a sync.WaitGroup.Done call, observing a
	// context.Context (Done/Err), or receiving from a channel that is
	// close()d somewhere in the module — directly or via a callee.
	joins bool
	// loopsForever reports an unconditional for-loop (or a range over a
	// channel with no recorded close) in the function or its callees.
	loopsForever bool

	// acquires names the pool-object kind the function returns ownership
	// of ("" when it is not an acquire helper).
	acquires string
	// releasesParam[i] names the pool-object kind the function releases
	// when handed one as parameter i ("" when it does not).
	releasesParam []string

	// aliasResults has bit j set when result j aliases memory reachable
	// from the receiver or a parameter (frame-aliasing helpers).
	aliasResults uint64

	// locks is the set of mutex classes the function (or a callee) may
	// acquire — released-before-return acquisitions included, since they
	// still order against locks the caller holds across the call.
	locks lockKeySet
	// freshLocks is the subset of locks with at least one acquisition NOT
	// dominated by a release of the same class. A class in locks but not
	// here is only ever re-acquired after the function itself released it
	// (the combiner "entered locked" protocol) — safe for callers already
	// holding that class, so no self-edge is generated for it.
	freshLocks lockKeySet
	// blocks reports a potentially unbounded blocking operation reachable
	// from the body on the calling goroutine: channel send/receive,
	// select without default, sync Wait, range over a channel.
	// blockDesc names the operation and its origin function for
	// diagnostics ("channel receive in waitAdmission").
	blocks    bool
	blockDesc string
	// closes records the tracked channel objects the function (or a
	// callee) unconditionally closes — the input to double-close checks.
	closes map[types.Object]bool

	// warmAllocs reports a warm, unsanctioned allocation site in the
	// function or any synchronous callee (allocfacts.go) — hotalloc's
	// bottom-up pruning bit.
	warmAllocs bool
}

// summaryOf returns the summary for a callee, or nil for functions outside
// the analyzed packages (stdlib, unexported synthetics).
func (p *Program) summaryOf(obj types.Object) *Summary {
	if p == nil {
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return p.sums[fn]
}

// funcOf returns the module declaration of a function object, or nil.
func (p *Program) funcOf(obj types.Object) *progFunc {
	if p == nil {
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return p.funcs[fn]
}

// chanClosed reports whether the variable object has a module-wide
// close() call.
func (p *Program) chanClosed(obj types.Object) bool {
	return p != nil && obj != nil && p.closedChans[obj]
}

// BuildProgram indexes every function declaration in pkgs, records the
// module-wide closed-channel set, and computes per-function summaries
// bottom-up over the call-graph SCCs.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		funcs:        make(map[*types.Func]*progFunc),
		sums:         make(map[*types.Func]*Summary),
		closedChans:  make(map[types.Object]bool),
		callSites:    make(map[*types.Func][]callSiteRec),
		chans:        make(map[types.Object]*chanFacts),
		atomicFields: make(map[types.Object]*atomicFacts),
		guardedBy:    make(map[*types.Func]lockKeySet),
		allocFacts:   make(map[*types.Func]*allocFuncFacts),
	}
	if len(pkgs) == 0 {
		return prog
	}
	prog.fset = pkgs[0].Fset

	// Pass 1: index declarations and closed channels.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				prog.funcs[fn] = &progFunc{
					obj:    fn,
					decl:   fd,
					pkg:    pkg,
					params: receiverFirstParams(fn),
				}
			}
			collectClosedChans(pkg.Info, file, prog.closedChans)
		}
	}

	// Pass 2: direct call edges (module-internal only).
	for _, pf := range prog.funcs {
		seen := make(map[*types.Func]bool)
		ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := calleeOf(pf.pkg.Info, call).(*types.Func); ok {
				if _, inModule := prog.funcs[fn]; inModule && !seen[fn] {
					seen[fn] = true
					pf.callees = append(pf.callees, fn)
				}
			}
			return true
		})
	}

	// Pass 3: bottom-up fixpoint over SCCs.
	for _, scc := range prog.sccs() {
		for _, fn := range scc {
			prog.sums[fn] = newSummary(prog.funcs[fn])
		}
		for changed, rounds := true, 0; changed && rounds < 16; rounds++ {
			changed = false
			for _, fn := range scc {
				next := summarize(prog, prog.funcs[fn])
				if !next.equal(prog.sums[fn]) {
					prog.sums[fn] = next
					changed = true
				}
			}
		}
	}

	// Pass 4: concurrency facts — consumes the finished summaries, so it
	// runs after the fixpoint.
	collectConcurrencyFacts(prog)
	return prog
}

// receiverFirstParams flattens a signature into the receiver-first
// parameter list used for summary indexing.
func receiverFirstParams(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var params []*types.Var
	if r := sig.Recv(); r != nil {
		params = append(params, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		params = append(params, sig.Params().At(i))
	}
	return params
}

// collectClosedChans records the object of every close(x) argument:
// identifiers resolve through Uses/Defs, field selectors through
// Selections, so close(o.dispatchQ) in one function matches a receive on
// o.dispatchQ in another.
func collectClosedChans(info *types.Info, file *ast.File, out map[types.Object]bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" {
			return true
		}
		if _, isBuiltin := objOf(info, id).(*types.Builtin); !isBuiltin {
			return true
		}
		if obj := chanKeyOf(info, call.Args[0]); obj != nil {
			out[obj] = true
		}
		return true
	})
}

// chanKeyOf resolves the identity of a channel expression: the field
// object for selector chains (c.done, o.dispatchQ), the variable object
// for plain identifiers, nil otherwise.
func chanKeyOf(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(info, x)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			return sel.Obj()
		}
		return objOf(info, x.Sel)
	}
	return nil
}

// newSummary returns the bottom element for a function.
func newSummary(pf *progFunc) *Summary {
	sig := pf.obj.Type().(*types.Signature)
	return &Summary{
		nParams:       len(pf.params),
		nResults:      sig.Results().Len(),
		resultBits:    make([]uint64, sig.Results().Len()),
		releasesParam: make([]string, len(pf.params)),
		locks:         lockKeySet{},
		freshLocks:    lockKeySet{},
		closes:        make(map[types.Object]bool),
	}
}

func (s *Summary) equal(o *Summary) bool {
	if o == nil || s.guardsParam != o.guardsParam || s.sinkParam != o.sinkParam ||
		s.joins != o.joins || s.loopsForever != o.loopsForever ||
		s.acquires != o.acquires || s.aliasResults != o.aliasResults ||
		s.blocks != o.blocks || s.blockDesc != o.blockDesc ||
		s.warmAllocs != o.warmAllocs ||
		!s.locks.equal(o.locks) || !s.freshLocks.equal(o.freshLocks) ||
		len(s.closes) != len(o.closes) {
		return false
	}
	for obj := range s.closes {
		if !o.closes[obj] {
			return false
		}
	}
	for i := range s.resultBits {
		if s.resultBits[i] != o.resultBits[i] {
			return false
		}
	}
	for i := range s.releasesParam {
		if s.releasesParam[i] != o.releasesParam[i] {
			return false
		}
	}
	return true
}

// sccs condenses the call graph with Tarjan's algorithm and returns the
// components in bottom-up (callees before callers) order.
func (p *Program) sccs() [][]*types.Func {
	type nodeState struct {
		index, lowlink int
		onStack        bool
	}
	var (
		states = make(map[*types.Func]*nodeState)
		stack  []*types.Func
		next   int
		out    [][]*types.Func
	)

	// Iterative Tarjan: an explicit frame stack avoids deep recursion on
	// long call chains.
	type frame struct {
		fn   *types.Func
		ci   int // next callee index to visit
		prev *types.Func
	}
	var visit func(root *types.Func)
	visit = func(root *types.Func) {
		frames := []frame{{fn: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			st := states[f.fn]
			if st == nil {
				st = &nodeState{index: next, lowlink: next, onStack: true}
				next++
				states[f.fn] = st
				stack = append(stack, f.fn)
			}
			advanced := false
			callees := p.funcs[f.fn].callees
			for f.ci < len(callees) {
				c := callees[f.ci]
				f.ci++
				cs := states[c]
				if cs == nil {
					frames = append(frames, frame{fn: c, prev: f.fn})
					advanced = true
					break
				}
				if cs.onStack && cs.index < st.lowlink {
					st.lowlink = cs.index
				}
			}
			if advanced {
				continue
			}
			// Close the frame: pop an SCC when this is a root.
			if st.lowlink == st.index {
				var scc []*types.Func
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					states[top].onStack = false
					scc = append(scc, top)
					if top == f.fn {
						break
					}
				}
				out = append(out, scc)
			}
			if f.prev != nil {
				ps := states[f.prev]
				if st.lowlink < ps.lowlink {
					ps.lowlink = st.lowlink
				}
			}
			frames = frames[:len(frames)-1]
		}
	}

	// Deterministic iteration: order roots by source position.
	roots := make([]*progFunc, 0, len(p.funcs))
	for _, pf := range p.funcs {
		roots = append(roots, pf)
	}
	sortProgFuncs(roots)
	for _, pf := range roots {
		if states[pf.obj] == nil {
			visit(pf.obj)
		}
	}
	return out
}

func sortProgFuncs(pfs []*progFunc) {
	// Insertion sort by declaration position keeps this dependency-free
	// and stable; module function counts are small (hundreds).
	for i := 1; i < len(pfs); i++ {
		for j := i; j > 0 && pfs[j].decl.Pos() < pfs[j-1].decl.Pos(); j-- {
			pfs[j], pfs[j-1] = pfs[j-1], pfs[j]
		}
	}
}

// summarize recomputes one function's summary against the current state
// of its callees' summaries.
func summarize(prog *Program, pf *progFunc) *Summary {
	s := newSummary(pf)
	taintSummarize(prog, pf, s)
	leakSummarize(prog, pf, s)
	poolSummarize(prog, pf, s)
	aliasSummarize(prog, pf, s)
	lockSummarize(prog, pf, s)
	allocSummarize(prog, pf, s)
	return s
}

// --- goroleak facts ---------------------------------------------------

// leakSummarize computes the join/loop facts: does the body reach a stop
// edge, and can it loop forever.
func leakSummarize(prog *Program, pf *progFunc, s *Summary) {
	joins, loops := scanJoins(prog, pf.pkg.Info, pf.decl.Body)
	s.joins = joins
	s.loopsForever = loops
	for _, c := range pf.callees {
		if cs := prog.sums[c]; cs != nil {
			s.joins = s.joins || cs.joins
			s.loopsForever = s.loopsForever || cs.loopsForever
		}
	}
}

// scanJoins inspects one body (including nested literals, excluding `go`
// payloads, which are independent goroutines) for local stop edges and
// unconditional loops.
func scanJoins(prog *Program, info *types.Info, body ast.Node) (joins, loops bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			// The spawned payload runs on another goroutine; its loops and
			// joins are its own.
			return false
		case *ast.ForStmt:
			if x.Cond == nil {
				loops = true
			}
		case *ast.RangeStmt:
			if isChanType(info, x.X) {
				if prog.chanClosed(chanKeyOf(info, x.X)) {
					joins = true
				} else {
					loops = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && prog.chanClosed(chanKeyOf(info, x.X)) {
				joins = true
			}
		case *ast.CallExpr:
			callee := calleeOf(info, x)
			if callee == nil {
				return true
			}
			// sync.WaitGroup.Done is the canonical join edge.
			if isMethod(callee, "sync", "Done") {
				joins = true
			}
			// Observing a context: ctx.Done() or ctx.Err().
			if isMethod(callee, "context", "Done") || isMethod(callee, "context", "Err") {
				joins = true
			}
			if fn, ok := callee.(*types.Func); ok && fn.Name() == "Done" || ok && fn.Name() == "Err" {
				if sel, okSel := ast.Unparen(x.Fun).(*ast.SelectorExpr); okSel {
					if isNamedType(typeOf(info, sel.X), "context", "Context") || isContextInterface(typeOf(info, sel.X)) {
						joins = true
					}
				}
			}
		}
		return true
	})
	return joins, loops
}

// typeOf returns the static type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isChanType reports whether e has channel type.
func isChanType(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isContextInterface reports whether t is the context.Context interface.
func isContextInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// --- poolpair effects -------------------------------------------------

// poolSummarize computes acquire/release effects so poolpair can follow
// ownership through un-annotated helpers in any analyzed package.
func poolSummarize(prog *Program, pf *progFunc, s *Summary) {
	info := pf.pkg.Info

	// An //coollint:acquires annotation is authoritative; otherwise a
	// function that returns the result of an acquire call (directly or
	// through a single local) is itself an acquire helper.
	if v, ok := funcAnnotation(pf.decl, "acquires"); ok {
		switch v {
		case kindEncoder, kindMessage, kindBuffer:
			s.acquires = v
		}
	} else {
		s.acquires = acquiredReturnKind(prog, pf)
	}

	// releasesParam: the body hands parameter i to a known release
	// entry point (intrinsic table, annotation, or a callee summary) —
	// or element-appends it into escaping storage (queue handoff), in
	// which case the queue's drainer owns the release and the call
	// counts as one for the caller.
	for i, param := range pf.params {
		if kind := releasedParamKind(prog, pf, info, param); kind != "" {
			s.releasesParam[i] = kind
		} else if kind := queuedParamKind(info, pf, param); kind != "" {
			s.releasesParam[i] = kind
		}
	}
	if _, ok := funcAnnotation(pf.decl, "releases"); ok {
		// Annotated releasers free whatever tracked object they are handed.
		for i := range s.releasesParam {
			if s.releasesParam[i] == "" {
				s.releasesParam[i] = "any"
			}
		}
	}
}

// intrinsicAcquireKind classifies the hardwired pool acquire entry
// points.
func intrinsicAcquireKind(callee types.Object) string {
	switch {
	case isFunc(callee, "cool/internal/cdr", "AcquireEncoder"):
		return kindEncoder
	case isFunc(callee, "cool/internal/giop", "AcquireMessage"),
		isFunc(callee, "cool/internal/giop", "UnmarshalPooled"),
		isMethod(callee, "", "UnmarshalPooled"):
		return kindMessage
	case isFunc(callee, "cool/internal/bufpool", "Get"):
		return kindBuffer
	}
	return ""
}

// intrinsicReleaseKind classifies the hardwired release entry points by
// the kind they free.
func intrinsicReleaseKind(callee types.Object) string {
	switch {
	case isFunc(callee, "cool/internal/cdr", "ReleaseEncoder"),
		isMethod(callee, "cool/internal/cdr", "Detach"):
		return kindEncoder
	case isFunc(callee, "cool/internal/giop", "ReleaseMessage"),
		isMethod(callee, "", "ReleaseMessage"):
		return kindMessage
	case isFunc(callee, "cool/internal/bufpool", "Put"),
		isFunc(callee, "cool/internal/transport", "PutBuffer"),
		isFunc(callee, "cool/internal/giop", "ReleaseFrame"):
		return kindBuffer
	}
	return ""
}

// acquireKindOf resolves a call to the pool kind it acquires, consulting
// intrinsics first and callee summaries second.
func acquireKindOf(prog *Program, info *types.Info, call *ast.CallExpr) string {
	callee := calleeOf(info, call)
	if callee == nil {
		return ""
	}
	if k := intrinsicAcquireKind(callee); k != "" {
		return k
	}
	if sum := prog.summaryOf(callee); sum != nil {
		return sum.acquires
	}
	return ""
}

// acquiredReturnKind reports the kind when pf returns ownership of an
// object it acquired: `return bufpool.Get(n)` or `b := bufpool.Get(n);
// ...; return b`.
func acquiredReturnKind(prog *Program, pf *progFunc) string {
	info := pf.pkg.Info
	// Map single-assignment locals to the kind they bind.
	localKind := make(map[types.Object]string)
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		kind := acquireKindOf(prog, info, call)
		if kind == "" {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				localKind[obj] = kind
			}
		}
		return true
	})

	kind := ""
	forEachOwnReturn(pf.decl.Body, func(ret *ast.ReturnStmt) {
		if len(ret.Results) == 0 {
			return
		}
		r := ast.Unparen(ret.Results[0])
		if call, ok := r.(*ast.CallExpr); ok {
			if k := acquireKindOf(prog, info, call); k != "" {
				kind = k
			}
			return
		}
		if id, ok := r.(*ast.Ident); ok {
			if k := localKind[objOf(info, id)]; k != "" {
				kind = k
			}
		}
	})
	return kind
}

// releasedParamKind reports the kind a function releases for one of its
// parameters, following intrinsic release calls and callee summaries.
func releasedParamKind(prog *Program, pf *progFunc, info *types.Info, param *types.Var) string {
	kind := ""
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil {
			return true
		}
		argIdx := -1
		for i, a := range call.Args {
			if id := rootIdent(a); id != nil && objOf(info, id) == param {
				argIdx = i
			}
		}
		recvIsParam := false
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id := rootIdent(sel.X); id != nil && objOf(info, id) == param {
				recvIsParam = true
			}
		}
		if argIdx < 0 && !recvIsParam {
			return true
		}
		if k := intrinsicReleaseKind(callee); k != "" {
			kind = k
			return false
		}
		if sum := prog.summaryOf(callee); sum != nil {
			// Map the call-site argument to the callee's receiver-first index.
			idx := argIdx
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
				if recvIsParam {
					idx = 0
				} else {
					idx = argIdx + 1
				}
			}
			if idx >= 0 && idx < len(sum.releasesParam) && sum.releasesParam[idx] != "" {
				kind = sum.releasesParam[idx]
				return false
			}
		}
		return true
	})
	return kind
}

// queuedParamKind reports the pool kind when the body stores parameter
// `param` itself into escaping storage by element-append — `w.q =
// append(w.q, p)`, the write-queue handoff idiom. Ownership moves to
// whoever drains the queue, so callers may treat the call as a release
// of the argument (poolpair's isReleaseOf consults this via the
// summary).
func queuedParamKind(info *types.Info, pf *progFunc, param *types.Var) string {
	kind := poolKindOfType(param.Type())
	if kind == "" {
		return ""
	}
	found := false
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, r := range as.Rhs {
			if appendClassOf(info, r, param) != appendElement {
				continue
			}
			// Only stores into fields, elements, or dereferences move
			// the object out of the function; a local queue keeps it
			// in-function and is not a handoff.
			switch ast.Unparen(as.Lhs[i]).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				found = true
			}
		}
		return !found
	})
	if !found {
		return ""
	}
	return kind
}

// poolKindOfType maps a static type to the pool kind its values carry:
// []byte buffers and *giop.Message messages. Encoders are excluded —
// they are lent on calls, never queued.
func poolKindOfType(t types.Type) string {
	if t == nil {
		return ""
	}
	if n := namedOf(t); n != nil {
		if o := n.Obj(); o != nil && o.Pkg() != nil &&
			o.Pkg().Path() == "cool/internal/giop" && o.Name() == "Message" {
			return kindMessage
		}
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
			return kindBuffer
		}
	}
	return ""
}

// --- framealias facts -------------------------------------------------

// aliasSummarize marks results that alias receiver/parameter memory:
// helpers that wrap BodyDecoder or return sub-slices of a pooled frame.
func aliasSummarize(prog *Program, pf *progFunc, s *Summary) {
	info := pf.pkg.Info
	paramObjs := make(map[types.Object]bool, len(pf.params))
	for _, p := range pf.params {
		paramObjs[p] = true
	}

	var aliasExpr func(e ast.Expr) bool
	aliasExpr = func(e ast.Expr) bool {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.Ident:
			return paramObjs[objOf(info, x)]
		case *ast.SliceExpr:
			return aliasExpr(x.X)
		case *ast.SelectorExpr:
			return aliasExpr(x.X)
		case *ast.UnaryExpr:
			return aliasExpr(x.X)
		case *ast.CallExpr:
			callee := calleeOf(info, x)
			if callee == nil {
				return false
			}
			// Known aliasing accessors on a parameter-rooted receiver.
			if isMethod(callee, "cool/internal/giop", "BodyDecoder") ||
				isMethod(callee, "cool/internal/giop", "Body") ||
				isMethod(callee, "cool/internal/giop", "Frame") ||
				isMethod(callee, "cool/internal/cdr", "ReadOctetSeq") ||
				isMethod(callee, "cool/internal/cdr", "ReadOctets") ||
				isMethod(callee, "cool/internal/cdr", "ReadStringBytes") {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					return aliasExpr(sel.X)
				}
			}
			if sum := prog.summaryOf(callee); sum != nil && sum.aliasResults != 0 {
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && aliasExpr(sel.X) {
					return true
				}
				for _, a := range x.Args {
					if aliasExpr(a) {
						return true
					}
				}
			}
			return false
		}
		return false
	}

	forEachOwnReturn(pf.decl.Body, func(ret *ast.ReturnStmt) {
		for j, r := range ret.Results {
			if j < 64 && aliasExpr(r) {
				s.aliasResults |= 1 << uint(j)
			}
		}
	})
}

// forEachOwnReturn visits the return statements of body that belong to
// the function itself, skipping returns inside nested function literals.
func forEachOwnReturn(body *ast.BlockStmt, fn func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			fn(x)
		}
		return true
	})
}

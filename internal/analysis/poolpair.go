package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces the acquire/release contracts of the pooling layer:
// every pooled object obtained in a function is released on every
// control-flow path, released at most once, and not used after release.
//
// Tracked acquisitions (kind in parentheses):
//
//	cdr.AcquireEncoder            (encoder)
//	giop.AcquireMessage           (message)
//	giop.UnmarshalPooled          (message; nil on error)
//	method UnmarshalPooled        (message; the pooledCodec contract)
//	bufpool.Get                   (buffer)
//	same-package functions annotated //coollint:acquires <kind>
//
// Matching releases:
//
//	encoder: cdr.ReleaseEncoder(e), e.Detach()
//	message: giop.ReleaseMessage(m), method ReleaseMessage(m)
//	buffer:  bufpool.Put(b), transport.PutBuffer(b), giop.ReleaseFrame(b)
//	any:     same-package functions annotated //coollint:releases
//
// Ownership may leave the function without a release: returning the
// object, sending it on a channel, or (for messages and buffers, whose
// contract passes ownership with the value) handing it to another
// function all transfer responsibility to the receiver. Encoders are
// only lent on calls and stay owned. Element-appending the object into a
// slice — `w.q = append(w.q, frame)`, the flush-queue idiom — stores the
// object itself and is recognized as a handoff like a channel send: the
// queue's drainer inherits the release obligation. Spread-appending
// (`dst = append(dst, b...)`) only copies the bytes and leaves the
// object owned. Any other store of a tracked object into a struct field
// or package variable requires a //coollint:owner annotation on the
// acquisition line.
//
// Two-value acquisitions (`m, err := UnmarshalPooled(frame)`) are
// correlated with `if err != nil` guards: on the error branch the callee
// has already reclaimed the object, so no release is due.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "pooled objects are released exactly once on every path",
	Run:  runPoolPair,
}

// Pool object kinds.
const (
	kindEncoder = "encoder"
	kindMessage = "message"
	kindBuffer  = "buffer"
)

// releaseName names the canonical release entry point per kind, for
// diagnostics.
var releaseName = map[string]string{
	kindEncoder: "cdr.ReleaseEncoder or Detach",
	kindMessage: "ReleaseMessage",
	kindBuffer:  "bufpool.Put",
}

// Possible ownership states of one acquisition along a path (bitmask:
// several may be possible at a join point).
const (
	stOwned    uint8 = 1 << iota // resource held, release still due
	stReleased                   // released; further use is a bug
	stEscaped                    // ownership transferred out
	stAbsent                     // never obtained (error branch)
	stDeferred                   // release deferred to function exit
)

// acquisition is one tracked acquire site.
type acquisition struct {
	kind string
	// obj is the variable binding the acquired object.
	obj types.Object
	// errObj, when non-nil, is the error result correlated with obj.
	errObj types.Object
	pos    token.Pos
	// what names the acquire call for diagnostics.
	what string
	// block/atomIdx locate the acquiring atom in the CFG.
	block   *cfgBlock
	atomIdx int
}

func runPoolPair(pass *Pass) {
	pp := &poolPairChecker{
		pass:     pass,
		decls:    funcDeclsOf(pass),
		reported: make(map[reportKey]bool),
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					pp.checkBody(file, fn.Body)
				}
			case *ast.FuncLit:
				pp.checkBody(file, fn.Body)
			}
			return true
		})
	}
}

type poolPairChecker struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
	// reported dedups diagnostics across worklist revisits.
	reported map[reportKey]bool
}

type reportKey struct {
	pos token.Pos
	msg string
}

func (pp *poolPairChecker) reportOnce(pos token.Pos, format string, args ...any) {
	key := reportKey{pos: pos, msg: format}
	if pp.reported[key] {
		return
	}
	pp.reported[key] = true
	pp.pass.Reportf(pos, format, args...)
}

// checkBody analyzes one function body as an independent unit. Nested
// function literals are skipped here (each gets its own checkBody call).
func (pp *poolPairChecker) checkBody(file *ast.File, body *ast.BlockStmt) {
	g, ok := buildCFG(body)
	if !ok {
		return // unmodeled control flow (goto): skip, do not guess
	}
	acqs := pp.findAcquisitions(file, body, g)
	for _, acq := range acqs {
		pp.flow(g, acq)
	}
}

// findAcquisitions scans the CFG atoms of body for tracked acquire calls.
func (pp *poolPairChecker) findAcquisitions(file *ast.File, body *ast.BlockStmt, g *cfg) []*acquisition {
	var acqs []*acquisition
	for _, blk := range g.blocks {
		for i, at := range blk.atoms {
			node := atomNode(at)
			if node == nil {
				continue
			}
			calls := pp.acquireCalls(body, node)
			for _, ac := range calls {
				acq := pp.bindAcquisition(file, at, ac, blk, i)
				if acq != nil {
					acqs = append(acqs, acq)
				}
			}
		}
	}
	return acqs
}

// atomNode returns the syntax a CFG atom covers.
func atomNode(at atom) ast.Node {
	switch {
	case at.stmt != nil:
		return at.stmt
	case at.expr != nil:
		return at.expr
	case at.sel != nil:
		// Only the communication clauses (separate atoms) matter.
		return nil
	}
	return nil
}

type acquireCall struct {
	call *ast.CallExpr
	kind string
	what string
}

// acquireCalls finds tracked acquire calls in node, excluding nested
// function literals (analyzed separately) but including the body argument
// of the enclosing body's defer/go statements.
func (pp *poolPairChecker) acquireCalls(body *ast.BlockStmt, node ast.Node) []acquireCall {
	var out []acquireCall
	ast.Inspect(node, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, what, ok := pp.isAcquire(call); ok {
			out = append(out, acquireCall{call: call, kind: kind, what: what})
		}
		return true
	})
	return out
}

// isAcquire classifies a call as a pool acquisition.
func (pp *poolPairChecker) isAcquire(call *ast.CallExpr) (kind, what string, ok bool) {
	obj := calleeOf(pp.pass.Info, call)
	if obj == nil {
		return "", "", false
	}
	switch {
	case isFunc(obj, "cool/internal/cdr", "AcquireEncoder"):
		return kindEncoder, "cdr.AcquireEncoder", true
	case isFunc(obj, "cool/internal/giop", "AcquireMessage"):
		return kindMessage, "giop.AcquireMessage", true
	case isFunc(obj, "cool/internal/giop", "UnmarshalPooled"):
		return kindMessage, "giop.UnmarshalPooled", true
	case isFunc(obj, "cool/internal/bufpool", "Get"):
		return kindBuffer, "bufpool.Get", true
	case isMethod(obj, "", "UnmarshalPooled"):
		return kindMessage, "UnmarshalPooled", true
	}
	// Same-package helpers annotated //coollint:acquires <kind>.
	if decl, okd := pp.decls[obj]; okd {
		if v, oka := funcAnnotation(decl, "acquires"); oka {
			switch v {
			case kindEncoder, kindMessage, kindBuffer:
				return v, obj.Name(), true
			}
		}
	}
	// Any analyzed function whose interprocedural summary says it returns
	// ownership of a pool object — annotated or not, same package or not.
	if sum := pp.pass.Prog.summaryOf(obj); sum != nil && sum.acquires != "" {
		return sum.acquires, obj.Name(), true
	}
	return "", "", false
}

// bindAcquisition resolves which variable an acquire call's result binds
// to, reporting immediately-diagnosable shapes (discarded result).
func (pp *poolPairChecker) bindAcquisition(file *ast.File, at atom, ac acquireCall, blk *cfgBlock, atomIdx int) *acquisition {
	if ownerAnnotated(pp.pass.Fset, file, ac.call.Pos()) {
		return nil // declared intentional escape
	}
	info := pp.pass.Info

	var lhs []ast.Expr
	var rhs []ast.Expr
	switch s := at.stmt.(type) {
	case *ast.AssignStmt:
		lhs, rhs = s.Lhs, s.Rhs
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				contains := false
				for _, v := range vs.Values {
					if containsNode(v, ac.call) {
						contains = true
					}
				}
				if contains {
					for _, n := range vs.Names {
						lhs = append(lhs, n)
					}
					rhs = vs.Values
				}
			}
		}
	case *ast.ExprStmt:
		if ast.Unparen(s.X) == ac.call {
			pp.reportOnce(ac.call.Pos(), "result of %s is discarded; the pooled %s leaks", ac.what, ac.kind)
			return nil
		}
	}
	if lhs == nil {
		// The acquire call feeds another expression directly (argument,
		// composite literal, return value): ownership passes with the value
		// for messages and buffers; an encoder handed away like this cannot
		// be released here either, so treat all kinds as transferred.
		return nil
	}
	// Locate the value position of the call among the RHS to pick the LHS.
	idx := 0
	if len(rhs) == len(lhs) {
		for i, v := range rhs {
			if containsNode(v, ac.call) {
				idx = i
			}
		}
	}
	if idx >= len(lhs) {
		return nil
	}
	id, ok := lhs[idx].(*ast.Ident)
	if !ok {
		// Acquired straight into a field or element: escaping storage needs
		// an owner annotation.
		pp.reportOnce(ac.call.Pos(), "result of %s is stored into %s without //coollint:owner", ac.what, exprText(lhs[idx]))
		return nil
	}
	if id.Name == "_" {
		pp.reportOnce(ac.call.Pos(), "result of %s is discarded; the pooled %s leaks", ac.what, ac.kind)
		return nil
	}
	obj := objOf(info, id)
	if obj == nil {
		return nil
	}
	acq := &acquisition{
		kind:    ac.kind,
		obj:     obj,
		pos:     ac.call.Pos(),
		what:    ac.what,
		block:   blk,
		atomIdx: atomIdx,
	}
	// A two-value form with a trailing error result correlates the error
	// with presence of the resource.
	if len(lhs) == 2 && len(rhs) == 1 {
		if errID, ok := lhs[1].(*ast.Ident); ok && errID.Name != "_" {
			if eobj := objOf(info, errID); eobj != nil && isErrorType(eobj.Type()) {
				acq.errObj = eobj
			}
		}
	}
	return acq
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// containsNode reports whether target occurs within root.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	}
	return "expression"
}

// flow runs the per-acquisition forward dataflow and reports leaks,
// double releases, and uses after release.
func (pp *poolPairChecker) flow(g *cfg, acq *acquisition) {
	initial := stOwned
	if acq.errObj != nil {
		initial |= stAbsent
	}
	entry := make(map[*cfgBlock]uint8)

	type workItem struct {
		blk     *cfgBlock
		fromIdx int
		state   uint8
	}
	work := []workItem{{blk: acq.block, fromIdx: acq.atomIdx + 1, state: initial}}

	propagate := func(blk *cfgBlock, state uint8, w *[]workItem) {
		old := entry[blk]
		merged := old | state
		if merged == old {
			return
		}
		entry[blk] = merged
		*w = append(*w, workItem{blk: blk, fromIdx: 0, state: merged})
	}

	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		state := item.state
		blk := item.blk
		for i := item.fromIdx; i < len(blk.atoms); i++ {
			if blk == acq.block && i == acq.atomIdx {
				state = initial // loop re-entry re-acquires
				continue
			}
			state = pp.transfer(blk.atoms[i], state, acq)
			if state == 0 {
				break // no feasible continuation
			}
		}
		if state == 0 {
			continue
		}
		if blk == g.exit {
			if state&stOwned != 0 {
				pp.reportOnce(acq.pos, "result of %s is not released on every path (missing %s)", acq.what, releaseName[acq.kind])
			}
			continue
		}
		if len(blk.succs) == 0 && blk != g.exit {
			continue // dying path (panic / Fatal): ownership checks lapse
		}
		for _, e := range blk.succs {
			s := pp.filterEdge(e, state, acq)
			if s == 0 {
				continue
			}
			if e.to == g.exit {
				if s&stOwned != 0 {
					pp.reportOnce(acq.pos, "result of %s is not released on every path (missing %s)", acq.what, releaseName[acq.kind])
				}
				continue
			}
			propagate(e.to, s, &work)
		}
	}
}

// filterEdge refines the state across a labeled if-edge by correlating
// nil checks of the error result (error present => resource absent) or of
// the resource itself.
func (pp *poolPairChecker) filterEdge(e cfgEdge, state uint8, acq *acquisition) uint8 {
	if e.cond == nil {
		return state
	}
	obj, isNeq, ok := nilCheckOf(pp.pass.Info, e.cond)
	if !ok {
		return state
	}
	// nonNil: does this edge assert obj != nil?
	nonNil := e.branch == isNeq
	switch obj {
	case acq.errObj:
		if nonNil {
			// Error: the callee reclaimed the object; no release due.
			return state &^ stOwned
		}
		return state &^ stAbsent
	case acq.obj:
		if nonNil {
			return state &^ stAbsent
		}
		return state &^ stOwned
	}
	return state
}

// transfer applies one atom to the tracked state.
func (pp *poolPairChecker) transfer(at atom, state uint8, acq *acquisition) uint8 {
	node := atomNode(at)
	if node == nil {
		return state
	}
	if !usesObject(pp.pass.Info, node, acq.obj) {
		return state
	}

	deferred := false
	if ds, ok := at.stmt.(*ast.DeferStmt); ok {
		deferred = true
		// A deferred closure that releases the object counts as a deferred
		// release of the whole function.
		if lit, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			if pp.bodyReleases(lit.Body, acq) {
				return (state &^ (stOwned | stAbsent)) | stDeferred
			}
		}
	}

	if relPos, ok := pp.releaseIn(node, acq); ok {
		if state&(stReleased|stDeferred) != 0 {
			pp.reportOnce(relPos, "%s released again; the pooled %s was already released on some path", acq.obj.Name(), acq.kind)
		}
		if deferred {
			return (state &^ (stOwned | stAbsent)) | stDeferred
		}
		return (state &^ (stOwned | stAbsent)) | stReleased
	}

	// Any other mention of a fully-released object is a use after release.
	if state == stReleased {
		pp.reportOnce(node.Pos(), "%s used after the pooled %s was released", acq.obj.Name(), acq.kind)
		return stEscaped // report once, then stop tracking the path
	}

	return pp.escape(at, node, state, acq)
}

// escape classifies non-release mentions: ownership transfers (return,
// send, call argument for value-owning kinds) clear the release
// obligation; stores into escaping storage require an owner annotation.
func (pp *poolPairChecker) escape(at atom, node ast.Node, state uint8, acq *acquisition) uint8 {
	info := pp.pass.Info
	toEscaped := func() uint8 { return (state &^ (stOwned | stAbsent)) | stEscaped }

	switch s := at.stmt.(type) {
	case *ast.ReturnStmt:
		return toEscaped()
	case *ast.SendStmt:
		if usesObject(info, s.Value, acq.obj) {
			return toEscaped()
		}
		return state
	case *ast.AssignStmt:
		// Does the RHS carry the object into an escaping lvalue?
		for i, r := range s.Rhs {
			if !usesObject(info, r, acq.obj) {
				continue
			}
			switch appendClassOf(info, r, acq.obj) {
			case appendContent:
				continue // append copies the bytes; the object stays put
			case appendElement:
				// x = append(x, obj) stores the object itself — the
				// queue-handoff idiom (flush queues, reply batches). Like a
				// channel send, the drain side inherits the release
				// obligation; no //coollint:owner is needed.
				return toEscaped()
			}
			var l ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				l = s.Lhs[i]
			} else if len(s.Lhs) > 0 {
				l = s.Lhs[0]
			}
			if l == nil {
				continue
			}
			if rootsAt(info, l, acq.obj) != nil {
				continue // store into a field of the object itself
			}
			if pp.escapingLValue(l) {
				pp.reportOnce(s.Pos(), "pooled %s %s is stored into %s without //coollint:owner", acq.kind, acq.obj.Name(), exprText(l))
				return toEscaped()
			}
			// Local alias: hand tracking over to avoid false reports.
			return toEscaped()
		}
		return state
	}

	if at.kind == atomReturn {
		return toEscaped()
	}

	// Closure capture transfers the object out of this analysis scope.
	captured := false
	ast.Inspect(node, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if usesObject(info, lit, acq.obj) {
				captured = true
			}
			return false
		}
		return true
	})
	if captured {
		return toEscaped()
	}

	// Calls: messages and buffers pass ownership with the value; encoders
	// are only lent and stay owned.
	if acq.kind != kindEncoder {
		passed := false
		ast.Inspect(node, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, a := range call.Args {
				if usesObject(info, a, acq.obj) {
					passed = true
				}
			}
			return true
		})
		if passed {
			return toEscaped()
		}
	}
	return state
}

// escapingLValue reports whether storing into l escapes the function:
// fields, map/slice elements, dereferences, and package-level variables.
func (pp *poolPairChecker) escapingLValue(l ast.Expr) bool {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		obj := objOf(pp.pass.Info, x)
		if v, ok := obj.(*types.Var); ok {
			// Package-level variables escape; locals (including results) don't.
			return v.Parent() == pp.pass.Pkg.Scope()
		}
		return false
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// Append classification for a tracked object mentioned in an append call.
const (
	appendNone    = iota // not an append of the object (or obj is the destination)
	appendContent        // the object's bytes are copied out; obj stays put
	appendElement        // the object itself is stored in the container (handoff)
)

// appendClassOf classifies how an append call treats the tracked object:
// `append(dst, obj...)` (and appends of scalar elements read from obj)
// copy content, while `append(q, obj)` of a slice/pointer-typed object
// stores the object itself — the write-queue handoff shape.
func appendClassOf(info *types.Info, e ast.Expr, obj types.Object) int {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return appendNone
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return appendNone
	}
	if _, isBuiltin := objOf(info, id).(*types.Builtin); !isBuiltin {
		return appendNone
	}
	if usesObject(info, call.Args[0], obj) {
		return appendNone // obj is (part of) the destination
	}
	for i := 1; i < len(call.Args); i++ {
		a := call.Args[i]
		if !usesObject(info, a, obj) {
			continue
		}
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			return appendContent // append(dst, obj...) copies the elements out
		}
		if aliasKinded(typeOf(info, a)) {
			return appendElement
		}
		return appendContent // scalar element (obj[i], len(obj), ...): a copy
	}
	return appendNone
}

// aliasKinded reports whether a value of type t carries the pooled object
// itself (slice headers, pointers, interfaces) rather than a copied
// scalar.
func aliasKinded(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Interface:
		return true
	}
	return false
}

// rootsAt returns l's root identifier's object when it matches obj.
func rootsAt(info *types.Info, l ast.Expr, obj types.Object) types.Object {
	if id := rootIdent(l); id != nil && objOf(info, id) == obj {
		return obj
	}
	return nil
}

// releaseIn looks for a call in node (outside nested function literals)
// that releases the tracked object, returning the call position.
func (pp *poolPairChecker) releaseIn(node ast.Node, acq *acquisition) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pp.isReleaseOf(call, acq) {
			pos = call.Pos()
			found = true
			return false
		}
		return true
	})
	return pos, found
}

// bodyReleases reports whether a (deferred closure) body releases the
// tracked object on its fall-through spine. Approximation: any release
// call anywhere in the body counts.
func (pp *poolPairChecker) bodyReleases(body *ast.BlockStmt, acq *acquisition) bool {
	_, ok := pp.releaseIn(body, acq)
	return ok
}

// isReleaseOf reports whether call releases the acquisition's object.
func (pp *poolPairChecker) isReleaseOf(call *ast.CallExpr, acq *acquisition) bool {
	info := pp.pass.Info
	callee := calleeOf(info, call)
	if callee == nil {
		return false
	}

	argIsObj := func() bool {
		for _, a := range call.Args {
			if rootsAt(info, a, acq.obj) != nil {
				return true
			}
		}
		return false
	}

	switch acq.kind {
	case kindEncoder:
		if isFunc(callee, "cool/internal/cdr", "ReleaseEncoder") && argIsObj() {
			return true
		}
		// e.Detach() recycles the encoder shell; ownership of the bytes
		// moves to the caller of Detach.
		if isMethod(callee, "cool/internal/cdr", "Detach") {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if rootsAt(info, sel.X, acq.obj) != nil {
					return true
				}
			}
		}
	case kindMessage:
		if isFunc(callee, "cool/internal/giop", "ReleaseMessage") && argIsObj() {
			return true
		}
		if isMethod(callee, "", "ReleaseMessage") && argIsObj() {
			return true
		}
	case kindBuffer:
		if (isFunc(callee, "cool/internal/bufpool", "Put") ||
			isFunc(callee, "cool/internal/transport", "PutBuffer") ||
			isFunc(callee, "cool/internal/giop", "ReleaseFrame")) && argIsObj() {
			return true
		}
	}

	// Same-package helpers annotated //coollint:releases free whatever
	// tracked object they are handed — as an argument or as the receiver.
	if decl, ok := pp.decls[callee]; ok {
		if _, ok := funcAnnotation(decl, "releases"); ok {
			if argIsObj() {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && rootsAt(info, sel.X, acq.obj) != nil {
				return true
			}
		}
	}

	// Release through an un-annotated helper (any analyzed package): the
	// interprocedural summary records which parameter it frees and of what
	// kind. The call-site argument index is mapped to the callee's
	// receiver-first parameter index.
	if sum := pp.pass.Prog.summaryOf(callee); sum != nil {
		recvOffset := 0
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			recvOffset = 1
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && rootsAt(info, sel.X, acq.obj) != nil {
				if len(sum.releasesParam) > 0 && releaseKindMatches(sum.releasesParam[0], acq.kind) {
					return true
				}
			}
		}
		for i, a := range call.Args {
			if rootsAt(info, a, acq.obj) == nil {
				continue
			}
			idx := i + recvOffset
			if idx < len(sum.releasesParam) && releaseKindMatches(sum.releasesParam[idx], acq.kind) {
				return true
			}
		}
	}
	return false
}

// releaseKindMatches reports whether a summary's released kind frees an
// acquisition of kind acq ("any" comes from //coollint:releases).
func releaseKindMatches(released, acq string) bool {
	return released == acq || released == "any"
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHold flags potentially blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives, selects
// without a default clause, sync.WaitGroup.Wait / sync.Cond.Wait, and —
// through the interprocedural summaries — calls to module-internal
// helpers that themselves block. A goroutine parked on a channel while
// holding an ORB-internal lock stalls every other invocation that needs
// the lock — the deadlock class the zero-allocation hot path is most
// exposed to.
//
// The analysis runs a lock-set dataflow over each function body: Lock and
// RLock calls add the receiver to the held set, Unlock and RUnlock remove
// it (deferred unlocks keep the lock held until return, which is the
// point: blocking before the return still happens under the lock).
// Selects where every communication is paired with a default never block
// and are not reported. Diagnostics name every held mutex expression.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking channel operation, Wait, or blocking call while a mutex is held",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) {
	lh := &lockHoldChecker{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lh.checkBody(fn.Body)
				}
			case *ast.FuncLit:
				lh.checkBody(fn.Body)
			}
			return true
		})
	}
}

type lockHoldChecker struct {
	pass     *Pass
	reported map[reportKey]bool
}

func (lh *lockHoldChecker) checkBody(body *ast.BlockStmt) {
	g, ok := buildCFG(body)
	if !ok {
		return
	}
	lh.reported = make(map[reportKey]bool)

	entry := make(map[*cfgBlock]lockKeySet)
	type workItem struct {
		blk   *cfgBlock
		state lockKeySet
	}
	work := []workItem{{blk: g.entry, state: lockKeySet{}}}

	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		state := item.state.clone()
		for _, at := range item.blk.atoms {
			state = lh.transfer(at, state)
		}
		for _, e := range item.blk.succs {
			old, ok := entry[e.to]
			if !ok {
				entry[e.to] = state.clone()
				work = append(work, workItem{blk: e.to, state: state.clone()})
				continue
			}
			if old.union(state) {
				work = append(work, workItem{blk: e.to, state: old.clone()})
			}
		}
	}
}

// transfer applies one atom: update the lock set for Lock/Unlock calls and
// report blocking operations while the set is non-empty.
func (lh *lockHoldChecker) transfer(at atom, state lockKeySet) lockKeySet {
	// Select headers carry no stmt/expr payload; check them directly.
	if at.kind == atomSelect {
		if len(state) > 0 {
			lh.checkBlocking(at, at.sel, state)
		}
		return state
	}
	node := atomNode(at)
	if node == nil {
		return state
	}

	// Blocking checks first: a blocking operation in an atom that also
	// unlocks reports against the lock set on entry.
	if len(state) > 0 {
		lh.checkBlocking(at, node, state)
	}

	// Lock-set updates (skip nested function literals: separate analysis).
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv, ok := mutexMethodOf(lh.pass.Info, call)
		if !ok {
			return true
		}
		key, disp := lh.recvKey(recv)
		switch name {
		case "Lock", "RLock":
			// A deferred Lock would be nonsense; only count direct calls.
			if !inDefer(at.stmt, call) {
				state[key] = disp
			}
		case "Unlock", "RUnlock":
			// Deferred unlocks run at return: the lock stays held for the
			// rest of the function, so leave the set alone.
			if !inDefer(at.stmt, call) {
				delete(state, key)
			}
		}
		return true
	})
	return state
}

// inDefer reports whether stmt is a defer statement wrapping call (either
// directly or via a closure).
func inDefer(stmt ast.Stmt, call *ast.CallExpr) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	if ds.Call == call {
		return true
	}
	return containsNode(ds.Call, call)
}

// recvKey renders a stable identity and a display form for a mutex
// receiver expression: the key is package-qualified for cross-file
// stability, the display is the source expression ("c.mu").
func (lh *lockHoldChecker) recvKey(e ast.Expr) (key, disp string) {
	disp = exprText(e)
	if id := rootIdent(e); id != nil {
		if obj := objOf(lh.pass.Info, id); obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + disp, disp
		}
	}
	return disp, disp
}

// checkBlocking reports blocking operations in an atom while locks are
// held.
func (lh *lockHoldChecker) checkBlocking(at atom, node ast.Node, state lockKeySet) {
	held := state.displays()

	// Select headers: blocking only without a default clause.
	if at.kind == atomSelect {
		hasDefault := false
		for _, c := range at.sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lh.reportOnce(at.sel.Pos(), "select without default may block while %s", held)
		}
		return
	}
	// Communication clauses of a select block as part of the select header,
	// already handled above.
	if at.comm {
		return
	}

	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			lh.reportOnce(x.Pos(), "channel send may block while %s", held)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				lh.reportOnce(x.Pos(), "channel receive may block while %s", held)
			}
			return true
		case *ast.CallExpr:
			callee := calleeOf(lh.pass.Info, x)
			if callee == nil {
				return true
			}
			if fn, ok := callee.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
				lh.reportOnce(x.Pos(), "sync %s.Wait may block while %s", recvTypeName(fn), held)
				return true
			}
			// Interprocedural: a module-internal callee whose summary shows
			// a blocking operation blocks this goroutine just the same.
			if sum := lh.pass.Prog.summaryOf(callee); sum != nil && sum.blocks {
				lh.reportOnce(x.Pos(), "call to %s may block (%s) while %s", callee.Name(), sum.blockDesc, held)
			}
			return true
		}
		return true
	})
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "WaitGroup"
	}
	if n := namedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return "WaitGroup"
}

func (lh *lockHoldChecker) reportOnce(pos token.Pos, format string, args ...any) {
	key := reportKey{pos: pos, msg: format}
	if lh.reported[key] {
		return
	}
	lh.reported[key] = true
	lh.pass.Reportf(pos, format, args...)
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHold flags potentially blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives, selects
// without a default clause, and sync.WaitGroup.Wait / sync.Cond.Wait. A
// goroutine parked on a channel while holding an ORB-internal lock stalls
// every other invocation that needs the lock — the deadlock class the
// zero-allocation hot path is most exposed to.
//
// The analysis runs a lock-set dataflow over each function body: Lock and
// RLock calls add the receiver to the held set, Unlock and RUnlock remove
// it (deferred unlocks keep the lock held until return, which is the
// point: blocking before the return still happens under the lock).
// Selects where every communication is paired with a default never block
// and are not reported.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "no blocking channel operation or Wait while a mutex is held",
	Run:  runLockHold,
}

func runLockHold(pass *Pass) {
	lh := &lockHoldChecker{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lh.checkBody(fn.Body)
				}
			case *ast.FuncLit:
				lh.checkBody(fn.Body)
			}
			return true
		})
	}
}

type lockHoldChecker struct {
	pass     *Pass
	reported map[reportKey]bool
}

// lockSet is the set of mutex objects possibly held, keyed by a stable
// description of the receiver (object for identifiers, rendered path for
// selector chains like c.mu).
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockSet) union(o lockSet) (lockSet, bool) {
	grew := false
	for k := range o {
		if !s[k] {
			s[k] = true
			grew = true
		}
	}
	return s, grew
}

func (lh *lockHoldChecker) checkBody(body *ast.BlockStmt) {
	g, ok := buildCFG(body)
	if !ok {
		return
	}
	lh.reported = make(map[reportKey]bool)

	entry := make(map[*cfgBlock]lockSet)
	type workItem struct {
		blk   *cfgBlock
		state lockSet
	}
	work := []workItem{{blk: g.entry, state: lockSet{}}}
	visited := map[*cfgBlock]bool{g.entry: true}

	for len(work) > 0 {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		state := item.state.clone()
		for _, at := range item.blk.atoms {
			state = lh.transfer(at, state)
		}
		for _, e := range item.blk.succs {
			old, ok := entry[e.to]
			if !ok {
				entry[e.to] = state.clone()
				if !visited[e.to] {
					visited[e.to] = true
				}
				work = append(work, workItem{blk: e.to, state: state.clone()})
				continue
			}
			merged, grew := old.union(state)
			if grew {
				entry[e.to] = merged
				work = append(work, workItem{blk: e.to, state: merged.clone()})
			}
		}
	}
}

// transfer applies one atom: update the lock set for Lock/Unlock calls and
// report blocking operations while the set is non-empty.
func (lh *lockHoldChecker) transfer(at atom, state lockSet) lockSet {
	// Select headers carry no stmt/expr payload; check them directly.
	if at.kind == atomSelect {
		if len(state) > 0 {
			lh.checkBlocking(at, at.sel, state)
		}
		return state
	}
	node := atomNode(at)
	if node == nil {
		return state
	}

	// Blocking checks first: a blocking operation in an atom that also
	// unlocks reports against the lock set on entry.
	if len(state) > 0 {
		lh.checkBlocking(at, node, state)
	}

	// Lock-set updates (skip nested function literals: separate analysis).
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv, ok := lh.mutexOp(call)
		if !ok {
			return true
		}
		switch name {
		case "Lock", "RLock":
			// A deferred Lock would be nonsense; only count direct calls.
			if !inDefer(at.stmt, call) {
				state[recv] = true
			}
		case "Unlock", "RUnlock":
			// Deferred unlocks run at return: the lock stays held for the
			// rest of the function, so leave the set alone.
			if !inDefer(at.stmt, call) {
				delete(state, recv)
			}
		}
		return true
	})
	return state
}

// inDefer reports whether stmt is a defer statement wrapping call (either
// directly or via a closure).
func inDefer(stmt ast.Stmt, call *ast.CallExpr) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	if ds.Call == call {
		return true
	}
	return containsNode(ds.Call, call)
}

// mutexOp decodes a call of the form x.Lock()/x.Unlock()/x.RLock()/
// x.RUnlock() where the method is declared in package sync, returning the
// method name and a stable key for the receiver.
func (lh *lockHoldChecker) mutexOp(call *ast.CallExpr) (name, recv string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	callee := calleeOf(lh.pass.Info, call)
	fn, okFn := callee.(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return sel.Sel.Name, lh.recvKey(sel.X), true
}

// recvKey renders a stable identity for a mutex receiver expression.
func (lh *lockHoldChecker) recvKey(e ast.Expr) string {
	if id := rootIdent(e); id != nil {
		if obj := objOf(lh.pass.Info, id); obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + exprText(e)
		}
	}
	return exprText(e)
}

// checkBlocking reports blocking operations in an atom while locks are
// held.
func (lh *lockHoldChecker) checkBlocking(at atom, node ast.Node, state lockSet) {
	held := lh.heldNames(state)

	// Select headers: blocking only without a default clause.
	if at.kind == atomSelect {
		hasDefault := false
		for _, c := range at.sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			lh.reportOnce(at.sel.Pos(), "select without default may block while %s is held", held)
		}
		return
	}
	// Communication clauses of a select block as part of the select header,
	// already handled above.
	if at.comm {
		return
	}

	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			lh.reportOnce(x.Pos(), "channel send may block while %s is held", held)
			return true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				lh.reportOnce(x.Pos(), "channel receive may block while %s is held", held)
			}
			return true
		case *ast.CallExpr:
			if callee := calleeOf(lh.pass.Info, x); callee != nil {
				if fn, ok := callee.(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Wait" {
					lh.reportOnce(x.Pos(), "sync %s.Wait may block while %s is held", recvTypeName(fn), held)
				}
			}
			return true
		}
		return true
	})
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "WaitGroup"
	}
	if n := namedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return "WaitGroup"
}

// heldNames renders one representative held lock for diagnostics (the
// lexically smallest key, for determinism), with the package-path prefix
// stripped: "cool/internal/orb.c.mu" -> "c.mu".
func (lh *lockHoldChecker) heldNames(state lockSet) string {
	best := ""
	for k := range state {
		if best == "" || k < best {
			best = k
		}
	}
	slash := strings.LastIndexByte(best, '/')
	if dot := strings.IndexByte(best[slash+1:], '.'); dot >= 0 {
		return best[slash+1+dot+1:]
	}
	return best
}

func (lh *lockHoldChecker) reportOnce(pos token.Pos, format string, args ...any) {
	key := reportKey{pos: pos, msg: format}
	if lh.reported[key] {
		return
	}
	lh.reported[key] = true
	lh.pass.Reportf(pos, format, args...)
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the allocation-effect layer of the interprocedural engine
// (coollint v4): every function body is classified into heap-allocation
// sites — make/new, growing appends, interface boxing, closure and
// goroutine creation, string conversions, formatting calls, map writes —
// with a cold-path analysis that exempts failure branches, and the results
// are propagated bottom-up through synchronous callees as a Summary bit so
// hotalloc can prune its reachability walk. Arena and pool allocators
// (bufpool, pooled CDR encoders, pooled GIOP messages, interned operation
// names, //coollint:allocator functions) are sanctioned: calls to them are
// ownership transfers, not allocations, and their internals are audited
// from their own //coollint:hotpath roots rather than through callers.

// Allocation-site kinds, as rendered in diagnostics.
const (
	allocMake    = "make"
	allocNew     = "new"
	allocAppend  = "growing append"
	allocBox     = "interface boxing"
	allocClosure = "closure creation"
	allocGo      = "goroutine creation"
	allocConv    = "string conversion"
	allocFmt     = "formatting call"
	allocMapW    = "map write"
)

// allocSite is one classified warm allocation site.
type allocSite struct {
	pos  token.Pos
	kind string
	// what is a short rendering of the allocating expression for the
	// diagnostic ("fmt.Errorf", "append into local tmp").
	what string
}

// allocCall is one warm, synchronous, module-internal call edge with its
// source position — the links hotalloc chains into root→site paths.
type allocCall struct {
	callee *types.Func
	pos    token.Pos
}

// allocFuncFacts is the allocation view of one function: its directive
// role plus the warm sites and warm synchronous call edges of its body.
// Sites and edges in cold regions (error branches, panic exits,
// sync.Once payloads) or on //coollint:allocok lines are excluded.
type allocFuncFacts struct {
	// hotRoot marks a //coollint:hotpath reachability root.
	hotRoot bool
	// coldFunc marks a //coollint:coldpath function: never descended
	// into, its own sites exempt (once-per-connection setup and the
	// like).
	coldFunc bool
	// allocator marks a //coollint:allocator function: part of the
	// arena/pool machinery, its own sites are sanctioned and calls to it
	// are ownership transfers.
	allocator bool

	warmSites []allocSite
	warmCalls []allocCall
}

// allocFactsOf returns the (cached) allocation facts for a function. The
// local facts depend only on the AST and on callee *sanction* status —
// computed bottom-up, lower-SCC callees are final when a caller is
// scanned (acquire helpers are never recursive in practice).
func (p *Program) allocFactsOf(pf *progFunc) *allocFuncFacts {
	if f := p.allocFacts[pf.obj]; f != nil {
		return f
	}
	f := collectAllocFacts(p, pf)
	p.allocFacts[pf.obj] = f
	return f
}

// allocSummarize folds the allocation facts into the Summary: warmAllocs
// is set when the function or any warm synchronous callee carries at
// least one warm unsanctioned allocation site. The bit is monotone, so
// the SCC fixpoint converges.
func allocSummarize(prog *Program, pf *progFunc, s *Summary) {
	facts := prog.allocFactsOf(pf)
	if len(facts.warmSites) > 0 {
		s.warmAllocs = true
		return
	}
	for _, call := range facts.warmCalls {
		if cs := prog.sums[call.callee]; cs != nil && cs.warmAllocs {
			s.warmAllocs = true
			return
		}
	}
}

// collectAllocFacts walks one function body and classifies its warm
// allocation sites and call edges.
func collectAllocFacts(prog *Program, pf *progFunc) *allocFuncFacts {
	facts := &allocFuncFacts{}
	if _, ok := funcAnnotation(pf.decl, "hotpath"); ok {
		facts.hotRoot = true
	}
	if _, ok := funcAnnotation(pf.decl, "coldpath"); ok {
		facts.coldFunc = true
	}
	if _, ok := funcAnnotation(pf.decl, "allocator"); ok {
		facts.allocator = true
	}
	if facts.coldFunc || facts.allocator {
		// Exempt bodies: cold functions run off the latency path,
		// allocator internals are the sanctioned pool machinery.
		return facts
	}
	c := &allocCollector{
		prog:   prog,
		pf:     pf,
		info:   pf.pkg.Info,
		facts:  facts,
		exempt: make(map[ast.Node]bool),
		sig:    pf.obj.Type().(*types.Signature),
	}
	for _, s := range pf.decl.Body.List {
		c.walk(s, false)
	}
	return facts
}

// allocCollector carries the walk state for one function body.
type allocCollector struct {
	prog  *Program
	pf    *progFunc
	info  *types.Info
	facts *allocFuncFacts
	sig   *types.Signature
	// exempt marks append calls proven amortized (self-append into a
	// persistent destination) and FuncLits that run at most once
	// (sync.Once payloads).
	exempt map[ast.Node]bool
}

// site records one allocation site unless it is cold or its line carries
// a //coollint:allocok <reason> annotation.
func (c *allocCollector) site(pos token.Pos, kind, what string, cold bool) {
	if cold || c.prog.allocOKAt(c.pf.pkg, pos) {
		return
	}
	c.facts.warmSites = append(c.facts.warmSites, allocSite{pos: pos, kind: kind, what: what})
}

// walk visits n, threading the cold-region flag.
func (c *allocCollector) walk(n ast.Node, cold bool) {
	switch x := n.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		bcold := cold || stmtsCold(c.info, x.List)
		for _, s := range x.List {
			c.walk(s, bcold)
		}
		return
	case *ast.CaseClause:
		for _, e := range x.List {
			c.walk(e, cold)
		}
		bcold := cold || stmtsCold(c.info, x.Body)
		for _, s := range x.Body {
			c.walk(s, bcold)
		}
		return
	case *ast.CommClause:
		if x.Comm != nil {
			c.walk(x.Comm, cold)
		}
		bcold := cold || stmtsCold(c.info, x.Body)
		for _, s := range x.Body {
			c.walk(s, bcold)
		}
		return
	case *ast.IfStmt:
		if x.Init != nil {
			c.walk(x.Init, cold)
		}
		c.walk(x.Cond, cold)
		thenCold, elseCold := errBranchCold(c.info, x.Cond)
		c.walk(x.Body, cold || thenCold)
		if x.Else != nil {
			c.walk(x.Else, cold || elseCold)
		}
		return
	case *ast.GoStmt:
		// The spawn itself is the warm cost; the payload runs on another
		// goroutine (its arguments are still evaluated here).
		c.site(x.Pos(), allocGo, "go statement", cold)
		for _, a := range x.Call.Args {
			c.walk(a, cold)
		}
		return
	case *ast.DeferStmt:
		// A deferred call runs before return on this goroutine: treat it
		// as synchronous.
		c.walk(x.Call, cold)
		return
	case *ast.FuncLit:
		if !c.exempt[x] && closureCaptures(c.info, x) {
			c.site(x.Pos(), allocClosure, "func literal captures variables", cold)
		}
		// The body executes at an unknown time; direct callers audit it
		// when they invoke it.
		return
	case *ast.ReturnStmt:
		if res := c.sig.Results(); len(x.Results) == res.Len() {
			for i, r := range x.Results {
				c.boxed(res.At(i).Type(), r, cold, "return")
			}
		}
		for _, r := range x.Results {
			c.walk(r, cold)
		}
		return
	case *ast.AssignStmt:
		c.assign(x, cold)
		return
	case *ast.ValueSpec:
		if x.Type != nil {
			if t := typeOf(c.info, x.Type); t != nil {
				for _, v := range x.Values {
					c.boxed(t, v, cold, "declaration")
				}
			}
		}
		for _, v := range x.Values {
			c.walk(v, cold)
		}
		return
	case *ast.CallExpr:
		c.call(x, cold)
		return
	case *ast.IndexExpr:
		// The compiler recognizes m[string(b)] lookups and elides the key
		// copy; the conversion allocates only when the key is stored
		// (map writes are handled in assign, which bypasses this case).
		if t := typeOf(c.info, x.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if call, ok := ast.Unparen(x.Index).(*ast.CallExpr); ok {
					if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() {
						c.exempt[call] = true
					}
				}
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				c.site(x.Pos(), allocNew, "&"+types.ExprString(cl.Type)+"{...}", cold)
				for _, e := range cl.Elts {
					c.walk(e, cold)
				}
				return
			}
		}
	case *ast.CompositeLit:
		if t := typeOf(c.info, x); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				c.site(x.Pos(), allocMake, types.ExprString(x.Type)+" literal", cold)
			}
		}
	}
	children(n, func(ch ast.Node) { c.walk(ch, cold) })
}

// assign handles map writes, amortized-append exemptions, and boxing at
// assignment boundaries.
func (c *allocCollector) assign(as *ast.AssignStmt, cold bool) {
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Rhs {
			if call := appendCallIn(c.info, as.Rhs[i]); call != nil && amortizedAppend(as.Lhs[i], call) {
				c.exempt[call] = true
			}
		}
	}
	for _, l := range as.Lhs {
		if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			if t := typeOf(c.info, ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					c.site(l.Pos(), allocMapW, "store into "+types.ExprString(ix.X), cold)
				}
			}
		}
	}
	if as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) {
		for i := range as.Rhs {
			c.boxed(typeOf(c.info, as.Lhs[i]), as.Rhs[i], cold, "assignment")
		}
	}
	for _, l := range as.Lhs {
		// Walk map-write targets piecewise so the key conversion is not
		// mistaken for a lookup (written keys are copied into the map).
		if ix, ok := ast.Unparen(l).(*ast.IndexExpr); ok {
			c.walk(ix.X, cold)
			c.walk(ix.Index, cold)
			continue
		}
		c.walk(l, cold)
	}
	for _, r := range as.Rhs {
		c.walk(r, cold)
	}
}

// call classifies one call expression: builtin allocators, string
// conversions, formatting helpers, sanctioned pool entry points, module
// call edges, and boxing at the argument boundary.
func (c *allocCollector) call(call *ast.CallExpr, cold bool) {
	info := c.info

	// Type conversions: string↔[]byte/[]rune copy; conversion to an
	// interface type boxes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := typeOf(info, call.Args[0])
		if isStringByteConv(dst, src) {
			if !c.exempt[call] {
				c.site(call.Pos(), allocConv, types.ExprString(call.Fun)+"(...)", cold)
			}
		} else {
			c.boxed(dst, call.Args[0], cold, "conversion")
		}
		c.walk(call.Args[0], cold)
		return
	}

	// Builtins resolve through Uses, not calleeOf (which only yields
	// *types.Func).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				c.site(call.Pos(), allocMake, types.ExprString(call), cold)
			case "new":
				c.site(call.Pos(), allocNew, types.ExprString(call), cold)
			case "append":
				if !c.exempt[call] {
					c.site(call.Pos(), allocAppend, "append not proven amortized", cold)
				}
			}
			for _, a := range call.Args {
				c.walk(a, cold)
			}
			return
		}
	}

	callee := calleeOf(info, call)

	if callee != nil {
		// sync.Once payloads run once: exempt the literal and its body.
		if isMethod(callee, "sync", "Do") {
			for _, a := range call.Args {
				if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
					c.exempt[fl] = true
				}
			}
			cold = true
		}
		if isFormatCall(callee) {
			// One site for the whole formatting call; boxing its
			// variadic arguments is folded in.
			c.site(call.Pos(), allocFmt, calleeDisplay(callee), cold)
			for _, a := range call.Args {
				c.walk(a, cold)
			}
			return
		}
		if allocSanctioned(c.prog, callee) {
			// Pool/arena entry points: ownership transfer, not an
			// allocation; internals are audited from their own roots.
			for _, a := range call.Args {
				c.walk(a, cold)
			}
			return
		}
		if fn, isFn := callee.(*types.Func); isFn {
			if target := c.prog.funcs[fn]; target != nil {
				if !cold && !allocColdDecl(target.decl) && !c.prog.allocOKAt(c.pf.pkg, call.Pos()) {
					c.facts.warmCalls = append(c.facts.warmCalls, allocCall{callee: fn, pos: call.Pos()})
				}
			}
		}
	}

	if sig, ok := typeUnderlying(typeOf(info, call.Fun)).(*types.Signature); ok {
		c.callBoxes(sig, call, cold)
	}
	c.walk(call.Fun, cold)
	for _, a := range call.Args {
		c.walk(a, cold)
	}
}

// callBoxes reports arguments boxed into interface parameters.
func (c *allocCollector) callBoxes(sig *types.Signature, call *ast.CallExpr, cold bool) {
	params := sig.Params()
	for i, a := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through whole
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.boxed(pt, a, cold, "argument")
	}
}

// boxed records an interface-boxing site: a concrete, non-pointer-shaped
// value converted to an interface type allocates its data word.
func (c *allocCollector) boxed(dst types.Type, e ast.Expr, cold bool, ctx string) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	t := typeOf(c.info, e)
	if t == nil || isNilIdent(c.info, e) {
		return
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		return
	}
	if isPointerShaped(t) || isZeroSized(t) {
		return
	}
	c.site(e.Pos(), allocBox, types.TypeString(t, nil)+" into interface at "+ctx, cold)
}

// isZeroSized reports whether t occupies no storage (empty structs,
// zero-length arrays): boxing such a value uses the runtime's shared
// zero base and does not allocate (e.g. binary.BigEndian into
// binary.ByteOrder).
func isZeroSized(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !isZeroSized(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return u.Len() == 0 || isZeroSized(u.Elem())
	}
	return false
}

// --- cold-path classification -----------------------------------------

// errBranchCold classifies an if condition: the branch dominated by a
// non-nil error check is a failure path and exempt.
func errBranchCold(info *types.Info, cond ast.Expr) (thenCold, elseCold bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false, false
	}
	if be.Op != token.NEQ && be.Op != token.EQL {
		return false, false
	}
	operand := ast.Unparen(be.X)
	if isNilIdent(info, operand) {
		operand = ast.Unparen(be.Y)
	} else if !isNilIdent(info, be.Y) {
		return false, false
	}
	if !implementsError(typeOf(info, operand)) {
		return false, false
	}
	if be.Op == token.NEQ {
		return true, false
	}
	return false, true
}

// stmtsCold reports whether a statement list is a failure exit: its
// terminal statement panics or returns a definitely-non-nil error (a
// formatting-constructor call or a non-nil error variable/field).
func stmtsCold(info *types.Info, list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range last.Results {
			r = ast.Unparen(r)
			if call, ok := r.(*ast.CallExpr); ok {
				if isFormatCall(calleeOf(info, call)) {
					return true
				}
				continue
			}
			// A named error value (sentinel var, err field) in the result
			// list marks a propagated failure; nil and non-error results
			// do not.
			switch r.(type) {
			case *ast.Ident, *ast.SelectorExpr:
				if !isNilIdent(info, r) && implementsError(typeOf(info, r)) {
					return true
				}
			}
		}
	}
	return false
}

// --- helpers ----------------------------------------------------------

// appendCallIn returns e as a builtin append call, or nil.
func appendCallIn(info *types.Info, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, isBuiltin := objOf(info, id).(*types.Builtin); !isBuiltin || b.Name() != "append" {
		return nil
	}
	return call
}

// amortizedAppend recognizes the pooled-growth idiom `x = append(x, ...)`
// / `x = append(x[:0], ...)` where x is a persistent destination (field,
// element, or deref): capacity sticks across calls, so steady-state warm
// cost is zero. Fresh locals do not qualify.
func amortizedAppend(lhs ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lhs = ast.Unparen(lhs)
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	base := ast.Unparen(call.Args[0])
	if se, ok := base.(*ast.SliceExpr); ok {
		base = ast.Unparen(se.X)
	}
	return types.ExprString(lhs) == types.ExprString(base)
}

// closureCaptures reports whether a function literal captures enclosing
// variables (capture-free literals compile to static functions and do
// not allocate).
func closureCaptures(info *types.Info, fl *ast.FuncLit) bool {
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := objOf(info, id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true // declared inside the literal
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level, not a capture
		}
		captures = true
		return false
	})
	return captures
}

// isFormatCall recognizes eager formatting helpers: everything in fmt,
// errors.New, and the strconv formatters.
func isFormatCall(callee types.Object) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "fmt":
		return true
	case "errors":
		return callee.Name() == "New"
	case "strconv":
		n := callee.Name()
		return strings.HasPrefix(n, "Format") || strings.HasPrefix(n, "Append") ||
			n == "Itoa" || n == "Quote"
	}
	return false
}

// allocSanctioned reports whether a call target is part of the sanctioned
// arena/pool machinery: the poolpair intrinsics, interned operation
// names, sync.Pool itself, //coollint:allocator functions, and helpers
// whose summaries show them returning pooled objects.
func allocSanctioned(prog *Program, callee types.Object) bool {
	if intrinsicAcquireKind(callee) != "" || intrinsicReleaseKind(callee) != "" {
		return true
	}
	if isFunc(callee, "cool/internal/giop", "internOp") {
		return true
	}
	if isMethod(callee, "sync", "Get") || isMethod(callee, "sync", "Put") {
		return true
	}
	fn, ok := callee.(*types.Func)
	if !ok {
		return false
	}
	if pf := prog.funcs[fn]; pf != nil {
		if _, ok := funcAnnotation(pf.decl, "allocator"); ok {
			return true
		}
		if sum := prog.sums[fn]; sum != nil && sum.acquires != "" {
			return true
		}
	}
	return false
}

// allocColdDecl reports a //coollint:coldpath function declaration.
func allocColdDecl(decl *ast.FuncDecl) bool {
	_, ok := funcAnnotation(decl, "coldpath")
	return ok
}

// isPointerShaped reports whether values of t fit an interface data word
// without allocation (pointers, channels, maps, funcs, unsafe.Pointer).
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isStringByteConv reports a string↔[]byte/[]rune conversion (copies the
// contents).
func isStringByteConv(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// implementsError reports whether t implements the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) ||
		types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// typeUnderlying is Underlying with a nil guard.
func typeUnderlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// calleeDisplay renders a callee for diagnostics ("fmt.Errorf").
func calleeDisplay(callee types.Object) string {
	if callee == nil {
		return "call"
	}
	if callee.Pkg() != nil {
		return callee.Pkg().Name() + "." + callee.Name()
	}
	return callee.Name()
}

// funcDisplay renders a module function for path diagnostics
// ("orb.clientConn.readLoop").
func funcDisplay(fn *types.Func) string {
	prefix := ""
	if fn.Pkg() != nil {
		prefix = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n := namedOf(t); n != nil && n.Obj() != nil {
			return prefix + n.Obj().Name() + "." + fn.Name()
		}
	}
	return prefix + fn.Name()
}

// allocOKAt reports whether pos sits on a line annotated
// //coollint:allocok <reason> (a whole-line comment annotates the next
// line, a trailing comment its own). A reason is required: a bare
// annotation is ignored.
func (p *Program) allocOKAt(pkg *Package, pos token.Pos) bool {
	tf := pkg.Fset.File(pos)
	if tf == nil {
		return false
	}
	if p.allocOK == nil {
		p.allocOK = make(map[*token.File]map[int]string)
	}
	lines, ok := p.allocOK[tf]
	if !ok {
		lines = make(map[int]string)
		for _, f := range pkg.Files {
			if pkg.Fset.File(f.Pos()) != tf {
				continue
			}
			src := pkg.Src[tf.Name()]
			const prefix = "//coollint:allocok"
			for _, cg := range f.Comments {
				for _, cmt := range cg.List {
					if !strings.HasPrefix(cmt.Text, prefix) {
						continue
					}
					reason := strings.TrimSpace(cmt.Text[len(prefix):])
					if reason == "" {
						continue
					}
					line := pkg.Fset.Position(cmt.Slash).Line
					if isLineStart(pkg.Fset, cmt.Slash, src) {
						lines[line+1] = reason
					} else {
						lines[line] = reason
					}
				}
			}
		}
		p.allocOK[tf] = lines
	}
	_, annotated := lines[tf.Line(pos)]
	return annotated
}

// Package analysis is the static-analysis layer of the COOL reproduction:
// a small, stdlib-only analyzer framework plus the suite of analyzers that
// mechanically enforce the pooling and ownership contracts introduced with
// the zero-allocation invocation hot path (see DESIGN.md, "Static analysis
// & ownership contracts").
//
// The framework mirrors the spirit of golang.org/x/tools/go/analysis but is
// deliberately self-contained (go/ast + go/types + go/importer only): the
// module carries zero dependencies and the analyzers need nothing beyond
// type-resolved syntax.
//
// Analysis is interprocedural: before any analyzer runs, a Program is
// built over every loaded package — a module-wide call graph plus one
// Summary per function (wire-taint flow from parameters to results,
// alloc/loop sinks, bounds-guard facts, pool acquire/release effects,
// frame-aliasing results, and join/loop-forever facts for goroutines),
// computed bottom-up over the condensation of strongly connected
// components. Analyzers consult summaries at call sites, so contracts
// hold through un-annotated helpers.
//
// Analyzers:
//
//   - poolpair:   every acquired pool object (cdr.AcquireEncoder,
//     giop.UnmarshalPooled/AcquireMessage, bufpool.Get, functions
//     annotated //coollint:acquires, and helpers whose summaries show
//     them acquiring or releasing) is released on all control-flow
//     paths, never released twice, and never used after release.
//   - lockhold:   no blocking channel operation, select without default,
//     or sync Wait while a sync.Mutex/RWMutex is held.
//   - framealias: no storing of slices or decoders derived from a pooled
//     message body into struct fields or package variables, including
//     aliases obtained through wrapper functions.
//   - obsconst:   metric and span names handed to internal/obs are built
//     from compile-time constants (no calls in the name expression).
//   - wiretaint:  integers decoded from the wire (cdr.Decoder reads,
//     binary.ByteOrder loads) must be bounds-checked before they size an
//     allocation or bound a loop, directly or through helper calls.
//   - bindstate:  explicit-binding lifecycle typestate — no invocations
//     or SetQoSParameter through proxies of a shut-down ORB, no
//     discarded SetQoSParameter errors, every deferred-invocation
//     Pending consumed by Wait/Poll/Cancel.
//   - goroleak:   every spawned goroutine that can loop forever has a
//     join or stop edge (WaitGroup, context, closable channel) or an
//     explicit //coollint:detached declaration.
//   - ctxflow:    context threading — code holding a context.Context must
//     invoke through the ...Ctx variants so deadlines reach the wire, and
//     exported blocking proxy/pending methods must offer a ...Ctx sibling.
//   - lockorder:  the module-wide lock-ordering graph (lock B acquired
//     while lock A is held, through helpers too) has no cycles and no
//     re-entrant self-edges — the ABBA deadlock class.
//   - atomicfield: struct fields accessed via sync/atomic (raw calls or
//     typed wrappers) have no plain reads/writes that are not guarded by
//     the same mutex that guards the atomic sites.
//   - chanliveness: sends on module-internal channels have a live receive
//     path (not gated behind the sender's own lock), and no channel is
//     closed twice.
//   - hotalloc:   no unsanctioned heap allocation (make/new, growing
//     append, interface boxing, closures, goroutine spawns, string
//     conversions, formatting calls, map writes) is reachable through
//     synchronous calls from a //coollint:hotpath root; failure branches
//     and the pooled arena allocators are exempt.
//
// Intended exceptions are declared in the source with line annotations:
//
//	//coollint:owner            this acquisition intentionally escapes
//	//coollint:allow <analyzer> suppress one analyzer on this line
//	//coollint:detached         this goroutine intentionally has no join
//	//coollint:allocok <reason> this allocation is acceptable on the hot
//	                            path for the stated reason
//
// and on function declarations:
//
//	//coollint:acquires <kind>  calls return an owned pool object
//	                            (kind: encoder, message, or buffer)
//	//coollint:releases         passing a tracked object releases it
//	//coollint:hotpath          allocation-audit root: the warm spine
//	//coollint:coldpath         off the latency path (setup, teardown)
//	//coollint:allocator        sanctioned arena/pool machinery
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one invariant checker. Run inspects a type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //coollint:allow annotations.
	Name string
	// Doc is a one-line description shown by `coollint -list`.
	Doc string
	// Run performs the check.
	Run func(*Pass)
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{PoolPair, LockHold, FrameAlias, ObsConst, WireTaint, BindState, GoroLeak, CtxFlow, LockOrder, AtomicField, ChanLiveness, HotAlloc}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the module-wide interprocedural view (call graph and
	// per-function summaries) shared by every pass of one run.
	Prog *Program

	// suppress maps file -> line -> analyzer names allowed there.
	suppress map[*token.File]map[int]map[string]bool
	diags    *[]Diagnostic
	// suppressed collects findings silenced by //coollint:allow, for the
	// suppression-stats summary.
	suppressed *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding unless the line carries a matching
// //coollint:allow annotation.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowed(pos) {
		if p.suppressed != nil {
			*p.suppressed = append(*p.suppressed, Diagnostic{
				Pos:      position,
				Analyzer: p.Analyzer.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowed reports whether pos sits on (or directly under) a line annotated
// //coollint:allow for this analyzer.
func (p *Pass) allowed(pos token.Pos) bool {
	tf := p.Fset.File(pos)
	if tf == nil {
		return false
	}
	lines := p.suppress[tf]
	if lines == nil {
		return false
	}
	line := tf.Line(pos)
	// An annotation suppresses findings on its own line and, when it is a
	// whole-line comment, on the line below it.
	return lines[line][p.Analyzer.Name] || lines[line]["*"]
}

// annotationsFor builds the suppression index for a file. A comment
// "//coollint:allow name1 name2" marks its own line; a comment that is the
// only thing on its line marks the following line instead. src is the
// file's raw content, used to tell trailing comments from whole-line ones.
func annotationsFor(fset *token.FileSet, file *ast.File, src []byte) map[int]map[string]bool {
	lines := make(map[int]map[string]bool)
	mark := func(line int, names []string) {
		m := lines[line]
		if m == nil {
			m = make(map[string]bool)
			lines[line] = m
		}
		for _, n := range names {
			m[n] = true
		}
	}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			names, ok := allowNames(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Slash)
			// Whole-line comments annotate the next line; trailing comments
			// annotate their own.
			if isLineStart(fset, c.Slash, src) {
				mark(pos.Line+1, names)
			} else {
				mark(pos.Line, names)
			}
		}
	}
	return lines
}

// allowNames parses "//coollint:allow a b" comment text. Everything after
// a "--" separator is explanatory prose.
func allowNames(text string) ([]string, bool) {
	const prefix = "//coollint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(text[len(prefix):])
	if reason, _, ok := strings.Cut(rest, "--"); ok {
		rest = strings.TrimSpace(reason)
	}
	if rest == "" {
		return []string{"*"}, true
	}
	return strings.Fields(rest), true
}

// isLineStart reports whether only whitespace precedes pos on its line.
func isLineStart(fset *token.FileSet, pos token.Pos, src []byte) bool {
	tf := fset.File(pos)
	if tf == nil || src == nil {
		return false
	}
	off := tf.Offset(pos)
	start := tf.Offset(tf.LineStart(tf.Line(pos)))
	if start < 0 || off > len(src) {
		return false
	}
	for _, b := range src[start:off] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

// funcAnnotation returns the directive value for a function declaration:
// the text after "//coollint:<key>" in its doc comment or any comment
// directly above it, e.g. key "acquires" over
// "//coollint:acquires encoder" yields "encoder".
func funcAnnotation(decl *ast.FuncDecl, key string) (string, bool) {
	if decl.Doc == nil {
		return "", false
	}
	prefix := "//coollint:" + key
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, prefix) {
			return strings.TrimSpace(c.Text[len(prefix):]), true
		}
	}
	return "", false
}

// ownerAnnotated reports whether the line of pos (or the line above it)
// carries a //coollint:owner annotation in file.
func ownerAnnotated(fset *token.FileSet, file *ast.File, pos token.Pos) bool {
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//coollint:owner") {
				continue
			}
			cl := fset.Position(c.Slash).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined findings sorted by position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersDetail(pkgs, analyzers)
	return diags
}

// RunAnalyzersDetail is RunAnalyzers plus the findings silenced by
// //coollint:allow annotations (for suppression statistics). The
// interprocedural Program is built once over all packages and shared by
// every pass.
func RunAnalyzersDetail(pkgs []*Package, analyzers []*Analyzer) (diags, suppressed []Diagnostic) {
	diags, suppressed, _ = RunAnalyzersTimed(pkgs, analyzers)
	return diags, suppressed
}

// AnalyzerTiming is the cumulative wall time one analyzer spent across
// every package of a run.
type AnalyzerTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunAnalyzersTimed is RunAnalyzersDetail plus per-analyzer wall time,
// returned in the analyzers' run order. The shared Program build is not
// attributed to any analyzer.
func RunAnalyzersTimed(pkgs []*Package, analyzers []*Analyzer) (diags, suppressed []Diagnostic, timings []AnalyzerTiming) {
	prog := BuildProgram(pkgs)
	elapsed := make([]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		suppress := make(map[*token.File]map[int]map[string]bool)
		for _, f := range pkg.Files {
			if tf := pkg.Fset.File(f.Pos()); tf != nil {
				suppress[tf] = annotationsFor(pkg.Fset, f, pkg.Src[tf.Name()])
			}
		}
		for i, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Prog:       prog,
				suppress:   suppress,
				diags:      &diags,
				suppressed: &suppressed,
			}
			start := time.Now()
			a.Run(pass)
			elapsed[i] += time.Since(start)
		}
	}
	for i, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[i]})
	}
	sortDiagnostics(suppressed)
	sortDiagnostics(diags)
	return diags, suppressed, timings
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

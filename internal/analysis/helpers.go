package analysis

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves the called function or method object of a call
// expression, or nil for calls through function values and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun]; ok {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj() // method (value or pointer receiver)
		}
		if obj, ok := info.Uses[fun.Sel]; ok {
			if _, isFunc := obj.(*types.Func); isFunc {
				return obj // package-qualified function
			}
		}
	}
	return nil
}

// isFunc reports whether obj is the function pkgPath.name (a package-level
// function, not a method).
func isFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isMethod reports whether obj is a method with the given name; pkgPath
// may be empty to match any package.
func isMethod(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return pkgPath == "" || (fn.Pkg() != nil && fn.Pkg().Path() == pkgPath)
}

// rootIdent peels selectors, indexing, slicing, stars, and parens down to
// the base identifier of an expression chain (w.buf[2:] -> w), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// usesObject reports whether expr mentions obj anywhere (including inside
// nested function literals).
func usesObject(info *types.Info, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// objOf resolves an identifier's object through either Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj, ok := info.Uses[id]; ok {
		return obj
	}
	return info.Defs[id]
}

// typeString returns the fully-qualified string of an expression's type,
// or "".
func typeString(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return tv.Type.String()
}

// namedOf unwraps pointers and aliases to the *types.Named beneath a type,
// or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		case *types.Alias:
			t = types.Unalias(x)
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind pointers) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// funcDeclsOf indexes the package's function declarations by their object,
// so analyzers can consult annotations on same-package helpers.
func funcDeclsOf(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// nilCheckOf decodes a condition of the form `x != nil` or `x == nil`
// where x is a plain identifier, returning x's object and the operator
// sense (true for !=).
func nilCheckOf(info *types.Info, cond ast.Expr) (types.Object, bool, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, false, false
	}
	if be.Op.String() != "!=" && be.Op.String() != "==" {
		return nil, false, false
	}
	var idExpr, nilExpr ast.Expr = be.X, be.Y
	if isNilIdent(info, idExpr) {
		idExpr, nilExpr = be.Y, be.X
	}
	if !isNilIdent(info, nilExpr) {
		return nil, false, false
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	obj := objOf(info, id)
	if obj == nil {
		return nil, false, false
	}
	return obj, be.Op.String() == "!=", true
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := objOf(info, id)
	_, isNil := obj.(*types.Nil)
	return isNil
}

package analysis

import (
	"go/ast"
	"go/types"
)

// FrameAlias flags stores that let frame-aliasing data outlive a pooled
// message: slices (and decoders) derived from a giop.Message body alias
// the transport frame, which is recycled when the message is released.
// Stashing such a slice in a struct field or package variable is a
// use-after-free waiting for the next frame reuse.
//
// Taint sources (intraprocedural):
//
//   - calling BodyDecoder / Body / Frame on a *giop.Message
//   - cdr.Decoder methods returning aliasing slices: ReadOctetSeq,
//     ReadOctets, ReadStringBytes
//
// Violations: assigning a tainted value to a struct field, map/slice
// element, dereference, or package-level variable. Sanitizers break the
// taint: string(x), append([]byte(nil), x...), copy into a fresh buffer,
// and cdr's Read* value decoders (which copy by construction).
//
// Known-good aliasing sites (the server dispatch path hands the decoder
// to the invocation for the duration of the request) carry
// //coollint:allow framealias annotations.
var FrameAlias = &Analyzer{
	Name: "framealias",
	Doc:  "no storing frame-aliasing slices beyond the pooled message lifetime",
	Run:  runFrameAlias,
}

func runFrameAlias(pass *Pass) {
	fa := &frameAliasChecker{pass: pass}
	// Each declared function is one analysis scope; closures inside it are
	// walked as part of the enclosing body so captured taint is visible.
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				fa.checkBody(fn.Body)
			}
		}
	}
}

type frameAliasChecker struct {
	pass *Pass
	// tainted holds local variables carrying frame-aliasing data in the
	// body under analysis.
	tainted map[types.Object]bool
}

func (fa *frameAliasChecker) checkBody(body *ast.BlockStmt) {
	fa.tainted = make(map[types.Object]bool)

	// Two passes: first propagate taint through local assignments (a
	// simple fixed point over the body, flow-insensitive), then report
	// escaping stores.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, l := range as.Lhs {
				var r ast.Expr
				switch {
				case len(as.Lhs) == len(as.Rhs):
					r = as.Rhs[i]
				case len(as.Rhs) == 1:
					// Multi-value form (v, err := call): every result of a
					// tainted call is tainted.
					r = as.Rhs[0]
				}
				if r == nil || !fa.taintedExpr(r) {
					continue
				}
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok {
					continue // escaping store: handled in the report pass
				}
				obj := objOf(fa.pass.Info, id)
				if obj == nil || fa.tainted[obj] {
					continue
				}
				if v, ok := obj.(*types.Var); ok && v.Parent() == fa.pass.Pkg.Scope() {
					continue // package-level: handled in the report pass
				}
				fa.tainted[obj] = true
				changed = true
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		rhsFor := func(i int) ast.Expr {
			if len(as.Lhs) == len(as.Rhs) {
				return as.Rhs[i]
			}
			if len(as.Rhs) == 1 {
				return as.Rhs[0]
			}
			return nil
		}
		for i, l := range as.Lhs {
			r := rhsFor(i)
			if r == nil || !fa.taintedExpr(r) {
				continue
			}
			if fa.escapingStore(l) {
				fa.pass.Reportf(as.Pos(),
					"frame-aliasing data stored into %s outlives the pooled message; copy it or annotate the site", exprText(l))
			}
		}
		return true
	})
}

// escapingStore reports whether assigning to l persists the value beyond
// the local frame: fields, elements, dereferences, package variables.
func (fa *frameAliasChecker) escapingStore(l ast.Expr) bool {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		obj := objOf(fa.pass.Info, x)
		if v, ok := obj.(*types.Var); ok {
			return v.Parent() == fa.pass.Pkg.Scope()
		}
		return false
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// taintedExpr reports whether e carries frame-aliasing data.
func (fa *frameAliasChecker) taintedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := objOf(fa.pass.Info, x)
		return obj != nil && fa.tainted[obj]
	case *ast.SliceExpr:
		return fa.taintedExpr(x.X)
	case *ast.IndexExpr:
		// Indexing a slice of slices (a flush queue) yields a stored
		// element, which keeps its taint; indexing a byte slice yields a
		// copied byte and is clean.
		if isSliceOfSlices(typeOf(fa.pass.Info, x.X)) {
			return fa.taintedExpr(x.X)
		}
		return false
	case *ast.UnaryExpr:
		return fa.taintedExpr(x.X)
	case *ast.CallExpr:
		return fa.taintedCall(x)
	case *ast.SelectorExpr:
		// Fields of a tainted decoder/message value alias the frame.
		return fa.taintedExpr(x.X)
	}
	return false
}

// taintedCall classifies call results: message body accessors and
// aliasing decoder reads produce taint; conversions and copying helpers
// sanitize it.
func (fa *frameAliasChecker) taintedCall(call *ast.CallExpr) bool {
	info := fa.pass.Info

	// string(x), []byte(string) and friends copy: conversions sanitize.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false
	}

	// Builtins: append copies scalar content into the destination slice,
	// which is only tainted if the destination was — but element-appending
	// a tainted slice into a slice of slices (the flush-queue shape)
	// stores the aliasing header itself, so the container inherits the
	// taint. copy returns an int.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := objOf(info, id); obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				if id.Name == "append" && len(call.Args) > 0 {
					if fa.taintedExpr(call.Args[0]) {
						return true
					}
					for i := 1; i < len(call.Args); i++ {
						a := call.Args[i]
						if !fa.taintedExpr(a) {
							continue
						}
						t := typeOf(info, a)
						if t == nil {
							continue
						}
						if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
							// Spreading copies the elements; those
							// elements only alias when they are
							// themselves slice headers ([][]byte...).
							sl, ok := t.Underlying().(*types.Slice)
							if !ok {
								continue
							}
							t = sl.Elem()
						}
						if aliasKinded(t) {
							return true
						}
					}
					return false
				}
				return false
			}
		}
	}

	callee := calleeOf(info, call)
	if callee == nil {
		return false
	}

	recvTainted := func() bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return ok && fa.taintedExpr(sel.X)
	}

	// The message body accessors: the source of all frame aliasing.
	if isMethod(callee, "cool/internal/giop", "BodyDecoder") ||
		isMethod(callee, "cool/internal/giop", "Body") ||
		isMethod(callee, "cool/internal/giop", "Frame") {
		return true
	}

	// Aliasing decoder reads: tainted when the decoder is (BodyDecoder
	// results are always tainted; standalone decoders over copied bytes
	// are not).
	switch {
	case isMethod(callee, "cool/internal/cdr", "ReadOctetSeq"),
		isMethod(callee, "cool/internal/cdr", "ReadOctets"),
		isMethod(callee, "cool/internal/cdr", "ReadStringBytes"):
		return recvTainted()
	}

	// Helpers whose interprocedural summary says a result aliases
	// receiver/parameter memory: the result carries frame taint when the
	// operand it aliases is tainted — or is a pooled giop.Message, whose
	// innards alias the transport frame by construction.
	if sum := fa.pass.Prog.summaryOf(callee); sum != nil && sum.aliasResults != 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fa.taintedExpr(sel.X) || isGIOPMessage(sel.X, info) {
				return true
			}
		}
		for _, a := range call.Args {
			if fa.taintedExpr(a) || isGIOPMessage(a, info) {
				return true
			}
		}
	}
	return false
}

// isSliceOfSlices reports whether t is a slice whose elements are
// themselves slices ([][]byte and friends).
func isSliceOfSlices(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, ok = sl.Elem().Underlying().(*types.Slice)
	return ok
}

// isGIOPMessage reports whether e is a (pointer to) giop.Message value.
func isGIOPMessage(e ast.Expr, info *types.Info) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Message" && obj.Pkg() != nil && obj.Pkg().Path() == "cool/internal/giop"
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak requires every `go` statement to have a statically
// identifiable join or stop edge — the static complement to the runtime
// goroutine accounting in internal/leakcheck. A spawned body is accepted
// when, directly or through callee summaries, it:
//
//   - calls Done on a sync.WaitGroup (the spawner can Wait for it),
//   - observes a context.Context (Done or Err),
//   - receives from / ranges over / selects on a channel that is
//     close()d somewhere in the analyzed packages, or
//   - cannot loop forever (no unconditional for, no range over a
//     never-closed channel): a bounded body terminates by itself.
//
// Intentionally unsupervised goroutines carry a //coollint:detached
// annotation on the `go` line (or the line above), with prose after
// "--" saying what stops them.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement needs a join/stop edge or a //coollint:detached declaration",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, file := range pass.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lineDirective(pass.Fset, f, gs.Pos(), "detached") {
				return true
			}
			joins, loops, known := spawnedFacts(pass, gs.Call)
			if !known {
				return true // function value / external callee: cannot judge
			}
			if joins || !loops {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine can loop forever with no join or stop edge (WaitGroup.Done, context, or closed channel); join it or annotate //coollint:detached with the stop reason")
			return true
		})
	}
}

// spawnedFacts resolves the payload of a go statement to its join/loop
// facts. known is false when the payload cannot be analyzed (a function
// value, or a callee outside the analyzed packages).
func spawnedFacts(pass *Pass, call *ast.CallExpr) (joins, loops, known bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		joins, loops = bodyFacts(pass.Prog, pass.Info, lit.Body)
		return joins, loops, true
	}
	callee := calleeOf(pass.Info, call)
	if callee == nil {
		return false, false, false
	}
	if sum := pass.Prog.summaryOf(callee); sum != nil {
		return sum.joins, sum.loopsForever, true
	}
	return false, false, false
}

// bodyFacts combines the local stop-edge scan with the summaries of the
// body's direct callees.
func bodyFacts(prog *Program, info *types.Info, body ast.Node) (joins, loops bool) {
	joins, loops = scanJoins(prog, info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // nested goroutines are their own problem
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sum := prog.summaryOf(calleeOf(info, call)); sum != nil {
			joins = joins || sum.joins
			loops = loops || sum.loopsForever
		}
		return true
	})
	return joins, loops
}

// lineDirective reports whether the line of pos (or the line above it)
// carries a //coollint:<key> annotation in file. Text after "--" is
// explanatory prose.
func lineDirective(fset *token.FileSet, file *ast.File, pos token.Pos, key string) bool {
	prefix := "//coollint:" + key
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			cl := fset.Position(c.Slash).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

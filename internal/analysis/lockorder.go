package analysis

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// LockOrder detects potential deadlocks from inconsistent lock-acquisition
// order. The interprocedural layer records one edge per "lock B acquired
// while lock A is held" observation — direct Lock calls and acquisitions
// buried inside un-annotated helpers alike, with locks identified by
// module-wide class (owning type + field for mutex fields, package + name
// for package-level mutexes). A cycle in the resulting graph means two
// goroutines can each hold one lock of the cycle while waiting for the
// next: the classic ABBA deadlock. Self-edges mean a lock class can be
// re-acquired while already held, which deadlocks immediately on a
// non-reentrant sync.Mutex.
//
// Diagnostics show both acquisition paths: the edge being reported and
// the counter-path that closes the cycle, with its source position.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order is consistent module-wide (no deadlock cycles)",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	prog := pass.Prog
	if prog == nil || len(prog.lockEdges) == 0 {
		return
	}

	// Only report edges whose witness position lies in this package, so a
	// module-wide cycle is diagnosed once per participating file rather
	// than once per pass.
	inPkg := passFileSet(pass)

	// Dedupe observations to one edge per (from, to) pair, keeping the
	// earliest witness, but remember every observation for counter-path
	// rendering.
	type edgeKey struct{ from, to string }
	best := make(map[edgeKey]lockEdge)
	order := []edgeKey{}
	for _, e := range prog.lockEdges {
		k := edgeKey{e.from, e.to}
		if old, seen := best[k]; !seen || e.pos < old.pos {
			if !seen {
				order = append(order, k)
			}
			best[k] = e
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := best[order[i]], best[order[j]]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.from+a.to < b.from+b.to
	})

	succs := make(map[string][]string)
	for _, k := range order {
		succs[k.from] = append(succs[k.from], k.to)
	}
	scc := lockSCCs(succs)

	for _, k := range order {
		e := best[k]
		if !inPkg[posFile(pass.Fset, e.pos)] {
			continue
		}
		via := ""
		if e.via != "" {
			via = " via call to " + e.via
		}
		if e.from == e.to {
			pass.Reportf(e.pos, "lock %s may be acquired%s while %s is already held — self-deadlock on a non-reentrant mutex",
				e.toDisp, via, e.fromDisp)
			continue
		}
		if scc[e.from] == 0 || scc[e.from] != scc[e.to] {
			continue
		}
		// Find the counter-path: the shortest edge chain from e.to back to
		// e.from, and show its first hop as the conflicting acquisition.
		back := shortestLockPath(succs, e.to, e.from)
		if len(back) < 2 {
			continue
		}
		counter := best[edgeKey{back[0], back[1]}]
		pass.Reportf(e.pos, "lock-order cycle: %s acquired while %s is held%s, but %s is acquired while %s is held at %s — concurrent callers can deadlock",
			e.toDisp, e.fromDisp, via, counter.toDisp, counter.fromDisp, shortPos(pass.Fset, counter.pos))
	}
}

// passFileSet indexes the *token.Files of the pass's own source files.
func passFileSet(pass *Pass) map[*token.File]bool {
	out := make(map[*token.File]bool, len(pass.Files))
	for _, f := range pass.Files {
		if tf := pass.Fset.File(f.Pos()); tf != nil {
			out[tf] = true
		}
	}
	return out
}

func posFile(fset *token.FileSet, pos token.Pos) *token.File {
	return fset.File(pos)
}

// shortPos renders "file.go:42" for a position.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// lockSCCs labels every node with a strongly-connected-component id;
// nodes in single-node components without a self-edge get id 0 (not part
// of any cycle). Iterative Tarjan over the string node set.
func lockSCCs(succs map[string][]string) map[string]int {
	nodes := make([]string, 0, len(succs))
	seenNode := map[string]bool{}
	addNode := func(n string) {
		if !seenNode[n] {
			seenNode[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range succs {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	lowlink := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, compID := 1, 0

	type frame struct {
		node string
		ci   int
	}
	for _, root := range nodes {
		if index[root] != 0 {
			continue
		}
		frames := []frame{{node: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			n := f.node
			if index[n] == 0 {
				index[n] = next
				lowlink[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			out := succs[n]
			for f.ci < len(out) {
				m := out[f.ci]
				f.ci++
				if index[m] == 0 {
					frames = append(frames, frame{node: m})
					advanced = true
					break
				}
				if onStack[m] && index[m] < lowlink[n] {
					lowlink[n] = index[m]
				}
			}
			if advanced {
				continue
			}
			if lowlink[n] == index[n] {
				var members []string
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					members = append(members, top)
					if top == n {
						break
					}
				}
				if len(members) > 1 {
					compID++
					for _, m := range members {
						comp[m] = compID
					}
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].node
				if lowlink[n] < lowlink[p] {
					lowlink[p] = lowlink[n]
				}
			}
		}
	}
	return comp
}

// shortestLockPath returns the node sequence of the shortest edge path
// from src to dst (BFS), or nil when unreachable.
func shortestLockPath(succs map[string][]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out := append([]string(nil), succs[n]...)
		sort.Strings(out)
		for _, m := range out {
			if _, seen := prev[m]; seen {
				continue
			}
			prev[m] = n
			if m == dst {
				var path []string
				for at := dst; at != src; at = prev[at] {
					path = append(path, at)
				}
				path = append(path, src)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, m)
		}
	}
	return nil
}

// Package lockorder is a coollint test fixture: inconsistent lock
// acquisition orders (ABBA cycles, re-entrant self-deadlock) the
// lockorder analyzer must flag, plus consistent shapes it must accept.
package lockorder

import "sync"

// --- violations: a direct ABBA cycle ---

type pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want "lock-order cycle: pair.b acquired while pair.a is held"
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock() // want "lock-order cycle: pair.a acquired while pair.b is held"
	p.n--
	p.a.Unlock()
	p.b.Unlock()
}

// --- violations: one leg of the cycle hides inside a helper ---

type station struct {
	c sync.Mutex
	d sync.Mutex
	n int
}

func lockD(s *station) {
	s.d.Lock()
	s.n++
	s.d.Unlock()
}

func cThenHelperD(s *station) {
	s.c.Lock()
	lockD(s) // want "lock-order cycle: station.d acquired while station.c is held via call to lockD"
	s.c.Unlock()
}

func dThenC(s *station) {
	s.d.Lock()
	s.c.Lock() // want "lock-order cycle: station.c acquired while station.d is held"
	s.c.Unlock()
	s.d.Unlock()
}

// --- violations: re-entrant acquisition through a helper ---

type recur struct {
	m sync.Mutex
	n int
}

func bump(r *recur) {
	r.m.Lock()
	r.n++
	r.m.Unlock()
}

func bumpTwice(r *recur) {
	r.m.Lock()
	bump(r) // want "lock recur.m may be acquired via call to bump while recur.m is already held"
	r.m.Unlock()
}

// --- clean shapes ---

// ordered: both callers take x before y; one direction only is not a
// cycle.
type ordered struct {
	x sync.Mutex
	y sync.Mutex
	n int
}

func xyInc(o *ordered) {
	o.x.Lock()
	o.y.Lock()
	o.n++
	o.y.Unlock()
	o.x.Unlock()
}

func xyDec(o *ordered) {
	o.x.Lock()
	o.y.Lock()
	o.n--
	o.y.Unlock()
	o.x.Unlock()
}

// combineLocked is entered holding o.x and re-acquires it only after
// releasing — the combiner-writer protocol, not a self-deadlock.
func combineLocked(o *ordered) {
	o.x.Unlock()
	o.n++
	o.x.Lock()
}

func callsCombine(o *ordered) {
	o.x.Lock()
	combineLocked(o)
	o.x.Unlock()
}

// Package bindstate is a coollint test fixture for the explicit-binding
// lifecycle typestate: the types below mimic the structural shapes of
// Chic-generated stubs (proxy, ORB, Pending) without importing the orb
// package, proving the analyzer matches method sets, not named types.
package bindstate

// ORB matches the classORB shape: Shutdown plus a Resolve method.
type ORB struct{}

func (o *ORB) Shutdown()                  {}
func (o *ORB) Resolve(ref string) *Proxy  { return &Proxy{} }
func (o *ORB) ResolveString(s string) any { return nil }

// Proxy matches the classProxy shape: SetQoSParameter(x) error.
type Proxy struct{}

func (p *Proxy) SetQoSParameter(v int) error { return nil }
func (p *Proxy) Invoke(op string) error      { return nil }
func (p *Proxy) InvokeDeferred(op string) (*Pending, error) {
	return &Pending{}, nil
}

// Pending matches the classPending shape: Wait, Poll, Cancel.
type Pending struct{}

func (p *Pending) Wait() error { return nil }
func (p *Pending) Poll() bool  { return false }
func (p *Pending) Cancel()     {}

// --- violations ---

func useAfterShutdown() {
	o := &ORB{}
	p := o.Resolve("svc")
	o.Shutdown()
	_ = p.Invoke("echo") // want "invocation through a proxy of an ORB that was shut down"
}

func setQoSAfterShutdown() {
	o := &ORB{}
	p := o.Resolve("svc")
	o.Shutdown()
	if err := p.SetQoSParameter(3); err != nil { // want "SetQoSParameter on a proxy of an ORB that was shut down"
		return
	}
}

func discardedQoSError(p *Proxy) {
	p.SetQoSParameter(1) // want "SetQoSParameter error discarded"
}

func blankQoSError(p *Proxy) {
	_ = p.SetQoSParameter(2) // want "SetQoSParameter error discarded"
}

func abandonedPending(p *Proxy) {
	stale, _ := p.InvokeDeferred("op") // want "pending stale is never consumed"
	_ = stale                          // silences the compiler, consumes nothing
}

func discardedPending(p *Proxy) {
	_, _ = p.InvokeDeferred("op") // want "deferred invocation discarded"
}

// --- clean shapes ---

func useBeforeShutdown() {
	o := &ORB{}
	p := o.Resolve("svc")
	_ = p.Invoke("echo")
	o.Shutdown()
}

func shutdownDeferred() {
	o := &ORB{}
	p := o.Resolve("svc")
	defer o.Shutdown()
	_ = p.Invoke("echo")
}

func shutdownInBranchDoesNotDominate(cond bool) {
	o := &ORB{}
	p := o.Resolve("svc")
	if cond {
		o.Shutdown()
	}
	_ = p.Invoke("echo")
}

func checkedQoSError(p *Proxy) error {
	return p.SetQoSParameter(4)
}

func consumedPending(p *Proxy) error {
	pend, err := p.InvokeDeferred("op")
	if err != nil {
		return err
	}
	return pend.Wait()
}

func canceledPending(p *Proxy) {
	pend, _ := p.InvokeDeferred("op")
	pend.Cancel()
}

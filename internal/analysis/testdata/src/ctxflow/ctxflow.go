// Package ctxflow is a coollint test fixture for the context-threading
// discipline: the types below mimic the structural shapes of
// Chic-generated stubs (proxy, Pending) with both context-free and ...Ctx
// invocation entry points, proving the analyzer matches method sets, not
// named types.
package ctxflow

import "context"

// Proxy matches the classProxy shape: SetQoSParameter(x) error.
type Proxy struct{}

func (p *Proxy) SetQoSParameter(v int) error { return nil }

func (p *Proxy) Invoke(op string) error                         { return nil }
func (p *Proxy) InvokeCtx(ctx context.Context, op string) error { return nil }
func (p *Proxy) InvokeOneway(op string) error                   { return nil }
func (p *Proxy) InvokeOnewayCtx(ctx context.Context, op string) error {
	return nil
}
func (p *Proxy) InvokeDeferred(op string) (*Pending, error) { return &Pending{}, nil }
func (p *Proxy) InvokeDeferredCtx(ctx context.Context, op string) (*Pending, error) {
	return &Pending{}, nil
}

// Pending matches the classPending shape: Wait, Poll, Cancel.
type Pending struct{}

func (p *Pending) Wait() error                       { return nil }
func (p *Pending) WaitCtx(ctx context.Context) error { return nil }
func (p *Pending) Poll() bool                        { return false }
func (p *Pending) Cancel()                           {}

// Bare matches the proxy shape but has no ...Ctx variants, so its
// context-free calls have nothing better to suggest.
type Bare struct{}

func (b *Bare) SetQoSParameter(v int) error { return nil }
func (b *Bare) Invoke(op string) error      { return nil }

// Stub wraps a proxy the way generated code does.
type Stub struct{ obj *Proxy }

func (s *Stub) SetQoSParameter(v int) error { return s.obj.SetQoSParameter(v) }

// --- violations ---

func fetchWithContext(ctx context.Context, p *Proxy) error {
	return p.Invoke("get") // want "holds a context but calls the context-free Invoke"
}

func notifyWithContext(ctx context.Context, p *Proxy) error {
	return p.InvokeOneway("poke") // want "holds a context but calls the context-free InvokeOneway"
}

func waitWithContext(ctx context.Context, pend *Pending) error {
	return pend.Wait() // want "holds a context but calls the context-free Wait"
}

// Fetch blocks through Invoke but offers no FetchCtx sibling.
func (s *Stub) Fetch() error { // want "exported method Fetch blocks in Invoke without taking a context"
	return s.obj.Invoke("fetch")
}

// --- clean shapes ---

// A function without a context may use the context-free entry points.
func fetchNoContext(p *Proxy) error { return p.Invoke("get") }

// The ...Ctx variants are always fine.
func fetchBounded(ctx context.Context, p *Proxy) error {
	return p.InvokeCtx(ctx, "get")
}

// A function literal runs outside the caller's synchronous path
// (InvokeAsync-style completion), so its waits are exempt.
func asyncWithContext(ctx context.Context, pend *Pending) {
	done := make(chan error, 1)
	go func() { done <- pend.Wait() }()
	<-done
}

// A receiver without ...Ctx variants has nothing better to call.
func bareWithContext(ctx context.Context, b *Bare) error {
	return b.Invoke("get")
}

// Poke is exported and blocking but delegates to its ...Ctx sibling.
func (s *Stub) Poke() error { return s.PokeCtx(context.Background()) }

func (s *Stub) PokeCtx(ctx context.Context) error {
	return s.obj.InvokeCtx(ctx, "poke")
}

// An unexported method may keep the short form.
func (s *Stub) refresh() error { return s.obj.Invoke("refresh") }

// Package framealias is a coollint test fixture: stores of frame-aliasing
// data the framealias analyzer must flag or accept.
package framealias

import (
	"cool/internal/cdr"
	"cool/internal/giop"
)

type session struct {
	lastKey  []byte
	lastBody *cdr.Decoder
}

var lastPrincipal []byte

// --- violations ---

func storeDecoderInField(s *session, m *giop.Message) {
	s.lastBody = m.BodyDecoder() // want "outlives the pooled message"
}

func storeDerivedSliceInField(s *session, m *giop.Message) {
	dec := m.BodyDecoder()
	key, _ := dec.ReadOctetSeq()
	s.lastKey = key // want "outlives the pooled message"
}

func storeInPackageVar(m *giop.Message) {
	dec := m.BodyDecoder()
	p, _ := dec.ReadOctetSeq()
	lastPrincipal = p // want "outlives the pooled message"
}

func storeSubsliceInMap(index map[string][]byte, m *giop.Message) {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	index["k"] = b[:4] // want "outlives the pooled message"
}

// --- clean shapes ---

func localUseOnly(m *giop.Message) int {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	n := 0
	for _, c := range b {
		n += int(c)
	}
	return n
}

func copiedBeforeStore(s *session, m *giop.Message) {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	s.lastKey = append([]byte(nil), b...) // fresh backing array
}

func stringConversionCopies(m *giop.Message) string {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	s := string(b)
	return s
}

func standaloneDecoderIsClean(s *session, frame []byte) {
	own := append([]byte(nil), frame...)
	dec := cdr.NewDecoder(own, false)
	b, _ := dec.ReadOctetSeq()
	s.lastKey = b // decoder over an owned copy, not a pooled frame
}

func allowedAliasingSite(s *session, m *giop.Message) {
	s.lastBody = m.BodyDecoder() //coollint:allow framealias -- consumed before release
}

// --- flush-queue ([][]byte) taint ---

type flushWriter struct {
	frames [][]byte
}

// Element-appending a frame-aliasing slice into a queue taints the
// queue: storing it in a field keeps the alias alive past the message.
func queueCarriesTaint(w *flushWriter, m *giop.Message) {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	var q [][]byte
	q = append(q, b)
	w.frames = q // want "outlives the pooled message"
}

// Indexing a tainted queue yields the stored aliasing slice back.
func indexedElementStaysTainted(s *session, m *giop.Message) {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	var q [][]byte
	q = append(q, b)
	s.lastKey = q[0] // want "outlives the pooled message"
}

// Spreading a tainted queue copies slice headers, not bytes: the
// destination queue still aliases the frame.
func spreadOfQueueStaysTainted(w *flushWriter, m *giop.Message) {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	var q [][]byte
	q = append(q, b)
	w.frames = append(w.frames, q...) // want "outlives the pooled message"
}

// A queue of copied frames is clean: the elements own their bytes.
func queueOfCopiesIsClean(w *flushWriter, m *giop.Message) {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	w.frames = append(w.frames, append([]byte(nil), b...))
}

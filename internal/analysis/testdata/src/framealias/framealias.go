// Package framealias is a coollint test fixture: stores of frame-aliasing
// data the framealias analyzer must flag or accept.
package framealias

import (
	"cool/internal/cdr"
	"cool/internal/giop"
)

type session struct {
	lastKey  []byte
	lastBody *cdr.Decoder
}

var lastPrincipal []byte

// --- violations ---

func storeDecoderInField(s *session, m *giop.Message) {
	s.lastBody = m.BodyDecoder() // want "outlives the pooled message"
}

func storeDerivedSliceInField(s *session, m *giop.Message) {
	dec := m.BodyDecoder()
	key, _ := dec.ReadOctetSeq()
	s.lastKey = key // want "outlives the pooled message"
}

func storeInPackageVar(m *giop.Message) {
	dec := m.BodyDecoder()
	p, _ := dec.ReadOctetSeq()
	lastPrincipal = p // want "outlives the pooled message"
}

func storeSubsliceInMap(index map[string][]byte, m *giop.Message) {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	index["k"] = b[:4] // want "outlives the pooled message"
}

// --- clean shapes ---

func localUseOnly(m *giop.Message) int {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	n := 0
	for _, c := range b {
		n += int(c)
	}
	return n
}

func copiedBeforeStore(s *session, m *giop.Message) {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	s.lastKey = append([]byte(nil), b...) // fresh backing array
}

func stringConversionCopies(m *giop.Message) string {
	dec := m.BodyDecoder()
	b, _ := dec.ReadOctetSeq()
	s := string(b)
	return s
}

func standaloneDecoderIsClean(s *session, frame []byte) {
	own := append([]byte(nil), frame...)
	dec := cdr.NewDecoder(own, false)
	b, _ := dec.ReadOctetSeq()
	s.lastKey = b // decoder over an owned copy, not a pooled frame
}

func allowedAliasingSite(s *session, m *giop.Message) {
	s.lastBody = m.BodyDecoder() //coollint:allow framealias -- consumed before release
}

// Package atomicfield is a coollint test fixture: mixed atomic and plain
// access to the same field, flagged unless one mutex guards both sides.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

// --- violations: lockless atomic counters with stray plain access ---

type counters struct {
	hits uint64
	n    atomic.Int64
}

func (c *counters) inc() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) racyRead() uint64 {
	return c.hits // want "plain read of c.hits races with lockless atomic access"
}

func (c *counters) racyWrite() {
	c.hits = 0 // want "plain write to c.hits races with lockless atomic access"
}

func (c *counters) bump() {
	c.n.Add(1)
}

func (c *counters) copyTyped() int64 {
	v := c.n // want "plain read of c.n races with lockless atomic access"
	return v.Load()
}

// --- interprocedural: a *Locked helper is only as guarded as its call
// sites ---

type seq struct {
	mu sync.Mutex
	n  uint64
}

func (s *seq) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return atomic.AddUint64(&s.n, 1)
}

// bumpLocked assumes s.mu, but bumpRacily calls it without: the plain
// write loses its guard.
func (s *seq) bumpLocked() {
	s.n++ // want "plain write to s.n races with atomic access"
}

func (s *seq) bumpSafely() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
}

func (s *seq) bumpRacily() {
	s.bumpLocked()
}

// --- clean shapes ---

// gauge: every atomic site and every plain access holds gauge.mu.
type gauge struct {
	mu  sync.Mutex
	val uint64
}

func (g *gauge) set(v uint64) {
	g.mu.Lock()
	atomic.StoreUint64(&g.val, v)
	g.mu.Unlock()
}

func (g *gauge) reset() {
	g.mu.Lock()
	g.val = 0
	g.mu.Unlock()
}

// safeSeq: the *Locked helper is guarded at every call site.
type safeSeq struct {
	mu sync.Mutex
	n  uint64
}

func (s *safeSeq) next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return atomic.AddUint64(&s.n, 1)
}

func (s *safeSeq) bumpLocked() {
	s.n++
}

func (s *safeSeq) bump() {
	s.mu.Lock()
	s.bumpLocked()
	s.mu.Unlock()
}

func (s *safeSeq) bumpAgain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked()
}

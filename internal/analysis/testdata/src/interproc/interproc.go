// Package interproc is a coollint test fixture for the interprocedural
// summaries: acquire, release and aliasing effects must flow through
// un-annotated helpers so poolpair and framealias see across call
// boundaries.
package interproc

import (
	"cool/internal/cdr"
	"cool/internal/giop"
)

// fresh is an acquire helper with no //coollint:acquires annotation: the
// summary must infer that it returns an owned encoder.
func fresh() *cdr.Encoder {
	return cdr.AcquireEncoder(false)
}

// finish is a release helper with no //coollint:releases annotation: the
// summary must infer that it frees its encoder parameter.
func finish(e *cdr.Encoder) {
	cdr.ReleaseEncoder(e)
}

// --- poolpair through helpers ---

func leakFromHelper(bad bool) *cdr.Encoder {
	e := fresh() // want "result of fresh is not released on every path"
	e.WriteULong(1)
	if bad {
		return nil
	}
	return e
}

func releaseViaHelper() {
	e := fresh()
	e.WriteULong(2)
	finish(e)
}

func doubleReleaseViaHelper() {
	e := fresh()
	finish(e)
	cdr.ReleaseEncoder(e) // want "released again"
}

// --- framealias through helpers ---

type holder struct {
	dec *cdr.Decoder
}

// decOf wraps the message body accessor: its summary must mark the result
// as aliasing the (pooled) message parameter.
func decOf(m *giop.Message) *cdr.Decoder {
	return m.BodyDecoder()
}

func stashDecoder(h *holder, m *giop.Message) {
	h.dec = decOf(m) // want "frame-aliasing data stored into h.dec"
}

func copyIsClean(m *giop.Message) []byte {
	b, _ := decOf(m).ReadOctetSeq()
	return append([]byte(nil), b...)
}

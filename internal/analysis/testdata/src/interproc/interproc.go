// Package interproc is a coollint test fixture for the interprocedural
// summaries: acquire, release and aliasing effects must flow through
// un-annotated helpers so poolpair and framealias see across call
// boundaries.
package interproc

import (
	"cool/internal/bufpool"
	"cool/internal/cdr"
	"cool/internal/giop"
)

// fresh is an acquire helper with no //coollint:acquires annotation: the
// summary must infer that it returns an owned encoder.
func fresh() *cdr.Encoder {
	return cdr.AcquireEncoder(false)
}

// finish is a release helper with no //coollint:releases annotation: the
// summary must infer that it frees its encoder parameter.
func finish(e *cdr.Encoder) {
	cdr.ReleaseEncoder(e)
}

// --- poolpair through helpers ---

func leakFromHelper(bad bool) *cdr.Encoder {
	e := fresh() // want "result of fresh is not released on every path"
	e.WriteULong(1)
	if bad {
		return nil
	}
	return e
}

func releaseViaHelper() {
	e := fresh()
	e.WriteULong(2)
	finish(e)
}

func doubleReleaseViaHelper() {
	e := fresh()
	finish(e)
	cdr.ReleaseEncoder(e) // want "released again"
}

// --- framealias through helpers ---

type holder struct {
	dec *cdr.Decoder
}

// decOf wraps the message body accessor: its summary must mark the result
// as aliasing the (pooled) message parameter.
func decOf(m *giop.Message) *cdr.Decoder {
	return m.BodyDecoder()
}

func stashDecoder(h *holder, m *giop.Message) {
	h.dec = decOf(m) // want "frame-aliasing data stored into h.dec"
}

func copyIsClean(m *giop.Message) []byte {
	b, _ := decOf(m).ReadOctetSeq()
	return append([]byte(nil), b...)
}

// --- queue handoff through helpers ---

type sendQueue struct {
	q [][]byte
}

// enqueue element-appends its parameter into a field queue and has no
// release call anywhere in its body: the summary must still infer that
// it takes ownership of the buffer (queue handoff), so callers count
// the call as the release.
func (s *sendQueue) enqueue(b []byte) {
	s.q = append(s.q, b)
}

func handoffViaHelper(s *sendQueue) {
	b := bufpool.Get(32)
	b = append(b, 9)
	s.enqueue(b) // ownership moved to the queue: no release due
}

func releaseAfterHandoff(s *sendQueue) {
	b := bufpool.Get(32)
	s.enqueue(b)
	bufpool.Put(b) // want "released again"
}

func useAfterHandoff(s *sendQueue) byte {
	b := bufpool.Get(32)
	s.enqueue(b)
	return b[0] // want "used after"
}

// Package lockhold is a coollint test fixture: blocking operations under
// held mutexes the lockhold analyzer must flag or accept.
package lockhold

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
	v  int
}

// --- violations ---

func sendWhileLocked(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want "channel send may block while b.mu is held"
	b.mu.Unlock()
}

func receiveWhileRLocked(b *box) int {
	b.rw.RLock()
	v := <-b.ch // want "channel receive may block"
	b.rw.RUnlock()
	return v
}

func selectWhileLocked(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want "select without default may block"
	case v := <-b.ch:
		b.v = v
	case b.ch <- 2:
	}
}

func waitWhileLocked(b *box) {
	b.mu.Lock()
	b.wg.Wait() // want "Wait may block"
	b.mu.Unlock()
}

func blockAfterDeferredUnlock(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 3 // want "channel send may block"
}

// blockingHelper is not annotated: the caller learns it can block from
// its interprocedural summary.
func blockingHelper(b *box) int {
	return <-b.ch
}

func callsBlockingHelperUnderLock(b *box) int {
	b.mu.Lock()
	v := blockingHelper(b) // want "call to blockingHelper may block .* while b.mu is held"
	b.mu.Unlock()
	return v
}

// --- clean shapes ---

func sendAfterUnlock(b *box) {
	b.mu.Lock()
	b.v++
	b.mu.Unlock()
	b.ch <- 1
}

func pollWhileLocked(b *box) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case v := <-b.ch:
		return v, true
	default:
		return 0, false
	}
}

func sendWithoutLock(b *box) {
	b.ch <- 1
}

func lockInBranchUnlockedBeforeSend(b *box, cond bool) {
	if cond {
		b.mu.Lock()
		b.v++
		b.mu.Unlock()
	}
	b.ch <- 1
}

func closureHasOwnScope(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// The goroutine body runs outside the lock scope of this function.
	go func() {
		b.ch <- 9
	}()
}

// Package poolpair is a coollint test fixture: acquire/release shapes the
// poolpair analyzer must flag or accept. Diagnostics are asserted with
// want-comments on the offending line.
package poolpair

import (
	"cool/internal/bufpool"
	"cool/internal/cdr"
	"cool/internal/giop"
)

type holder struct {
	raw []byte
	enc *cdr.Encoder
}

var sink []byte

// --- violations ---

func leakOnErrorPath(bad bool) []byte {
	e := cdr.AcquireEncoder(false) // want "not released on every path"
	e.WriteULong(7)
	if bad {
		return nil // leaks e
	}
	return e.Detach()
}

func doubleRelease() {
	b := bufpool.Get(64)
	bufpool.Put(b)
	bufpool.Put(b) // want "released again"
}

func useAfterRelease() byte {
	b := bufpool.Get(64)
	b = b[:1]
	bufpool.Put(b)
	return b[0] // want "used after"
}

func discardedResult() {
	bufpool.Get(128) // want "discarded"
}

func fieldStoreWithoutOwner(h *holder) {
	h.enc = cdr.AcquireEncoder(true) // want "without //coollint:owner"
}

func storeTrackedIntoField(h *holder) {
	b := bufpool.Get(32) // acquired here...
	h.raw = b            // want "stored into h.raw without //coollint:owner"
}

//coollint:acquires buffer
func makeScratch() []byte { return bufpool.Get(256) }

func annotatedAcquireLeak(bad bool) {
	s := makeScratch() // want "not released on every path"
	if bad {
		return
	}
	bufpool.Put(s)
}

func messageLeakDespiteGuard(frame []byte) error {
	m, err := giop.UnmarshalPooled(frame) // want "not released on every path"
	if err != nil {
		return err
	}
	if m.Header.Type == giop.MsgCloseConnection {
		return nil // leaks m
	}
	giop.ReleaseMessage(m)
	return nil
}

// --- clean shapes ---

func releaseOnAllPaths(bad bool) []byte {
	e := cdr.AcquireEncoder(false)
	e.WriteULong(7)
	if bad {
		cdr.ReleaseEncoder(e)
		return nil
	}
	return e.Detach()
}

func deferredRelease() {
	b := bufpool.Get(64)
	defer bufpool.Put(b)
	b = append(b, 1)
}

func deferredClosureRelease() {
	e := cdr.AcquireEncoder(true)
	defer func() { cdr.ReleaseEncoder(e) }()
	e.WriteULong(1)
}

func errorCorrelated(frame []byte) error {
	m, err := giop.UnmarshalPooled(frame)
	if err != nil {
		return err // callee reclaimed m: nothing to release
	}
	giop.ReleaseMessage(m)
	return nil
}

func ownershipReturned() []byte {
	b := bufpool.Get(512)
	return b // caller owns it now
}

func ownerAnnotatedStore(h *holder) {
	h.raw = bufpool.Get(64) //coollint:owner the holder adopts the buffer
}

func ownershipPassedOn(frame []byte) {
	b := bufpool.Get(len(frame))
	copy(b, frame)
	consume(b) // buffers pass ownership with the value
}

func consume(b []byte) { sink = b }

//coollint:releases
func recycleScratch(b []byte) { bufpool.Put(b) }

func annotatedReleaseHelper() {
	s := makeScratch()
	recycleScratch(s)
}

func loopAcquireRelease(n int) {
	for i := 0; i < n; i++ {
		b := bufpool.Get(64)
		b = append(b, byte(i))
		bufpool.Put(b)
	}
}

// --- queue handoff (the flush-writer idiom) ---

type flushQueue struct {
	frames [][]byte
}

type replyBatch struct {
	msgs []*giop.Message
}

// Element-append into a field queue stores the buffer itself: a
// recognized ownership transfer to the queue's drainer, like a channel
// send — no //coollint:owner needed on the acquisition.
func enqueueHandoff(w *flushQueue, n int) {
	b := bufpool.Get(n)
	b = append(b, 1)
	w.frames = append(w.frames, b)
}

// Messages queue the same way: the batch drainer releases them.
func enqueueMessage(rb *replyBatch, frame []byte) error {
	m, err := giop.UnmarshalPooled(frame)
	if err != nil {
		return err
	}
	rb.msgs = append(rb.msgs, m)
	return nil
}

// Spread-append only copies the bytes out: the source buffer stays
// owned and the missing release is still a leak.
func contentAppendStillOwned(dst []byte) []byte {
	b := bufpool.Get(16) // want "not released on every path"
	b = append(b, 2)
	dst = append(dst, b...)
	return dst
}

func contentAppendReleased(dst []byte) []byte {
	b := bufpool.Get(16)
	b = append(b, 3)
	dst = append(dst, b...)
	bufpool.Put(b)
	return dst
}

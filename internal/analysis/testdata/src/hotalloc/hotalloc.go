// Package hotalloc exercises the hot-path allocation analyzer: warm
// sites of every kind, through-helper propagation with root→site paths,
// sanctioned pool allocators, cold-path exemption, and the allocok and
// coldpath directives.
package hotalloc

import (
	"errors"
	"fmt"

	"cool/internal/bufpool"
)

type sink struct {
	buf   []byte
	cache map[string]int
	quit  chan struct{}
}

var published any

// process is the fixture's warm invocation spine.
//
//coollint:hotpath warm echo path of the fixture
func (s *sink) process(n int, name string, err error) error {
	if err != nil {
		// Cold: the error branch is a failure exit, eager formatting
		// here is off the latency path.
		return fmt.Errorf("process %q: %w", name, err)
	}
	b := make([]byte, n)               // want "make"
	s.buf = append(s.buf, b...)        // amortized self-append into a field: exempt
	grown := append(b, 0x5a)           // want "growing append"
	published = n                      // want "interface boxing"
	s.cache[name] = len(grown)         // want "map write"
	raw := []byte(name)                //coollint:allocok interning copies each op name at most once
	pooled := bufpool.Get(64)          // sanctioned arena allocator: exempt
	bufpool.Put(append(pooled, raw...)) // want "growing append"
	s.fill(scratch(), name)
	s.setup()
	return nil
}

// fill is only reached from the root through a call edge: its sites must
// be reported with the full process -> fill path.
func (s *sink) fill(dst []byte, name string) {
	s.buf = append(s.buf[:0], dst...) // reset-reuse self-append: exempt
	_ = fmt.Sprintf("op=%s", name)    // want "formatting call"
	_ = errors.New("eager")           // want "formatting call"
	go s.drain()                      // want "goroutine creation"
	f := func() { s.cache[name]++ }   // want "closure creation"
	f()
}

// drain is a goroutine payload: never reached synchronously, so its
// allocations are not on the warm path.
func (s *sink) drain() {
	huge := make([]byte, 1<<20)
	_ = huge
	<-s.quit
}

// scratch is part of the fixture's arena machinery: its internal make is
// sanctioned and callers do not count the call as an allocation.
//
//coollint:allocator recycled fixture scratch
func scratch() []byte {
	return make([]byte, 0, 64)
}

// setup runs once per connection: exempted wholesale.
//
//coollint:coldpath once-per-connection setup
func (s *sink) setup() {
	if s.cache == nil {
		s.cache = make(map[string]int)
	}
	s.quit = make(chan struct{})
}

// Package goroleak is a coollint test fixture: go statements with and
// without statically identifiable join/stop edges. Diagnostics are
// asserted with want-comments.
package goroleak

import (
	"context"
	"sync"
)

var (
	events = make(chan int)
	stop   = make(chan struct{})
	// orphaned is never closed anywhere in this package: ranging over it
	// can block forever.
	orphaned = make(chan int)
)

// shutdownFixture closes stop, making it a module-wide stop edge.
func shutdownFixture() { close(stop) }

// spin loops forever with no stop edge of any kind.
func spin() {
	for {
		_ = len(events)
	}
}

// spinIndirect reaches the forever-loop through a helper, so the loop
// fact must flow through the callee summary.
func spinIndirect() { spin() }

// --- violations ---

func spawnNamedForever() {
	go spin() // want "goroutine can loop forever with no join or stop edge"
}

func spawnIndirectForever() {
	go spinIndirect() // want "goroutine can loop forever with no join or stop edge"
}

func spawnLitForever() {
	go func() { // want "goroutine can loop forever with no join or stop edge"
		for {
			_ = len(events)
		}
	}()
}

func spawnRangeNeverClosed() {
	go func() { // want "goroutine can loop forever with no join or stop edge"
		for v := range orphaned {
			_ = v
		}
	}()
}

// --- accepted shapes ---

func spawnWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			_ = len(events)
		}
	}()
}

func spawnContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-events:
				_ = v
			}
		}
	}()
}

func spawnClosedChannel() {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-events:
				_ = v
			}
		}
	}()
}

func spawnBounded() {
	go func() {
		for i := 0; i < 10; i++ {
			_ = i
		}
	}()
}

func spawnDeclaredDetached() {
	//coollint:detached -- stopped by process exit; fixture documentation case
	go spin()
}

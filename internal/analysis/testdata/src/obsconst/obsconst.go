// Package obsconst is a coollint test fixture: metric/span name shapes the
// obsconst analyzer must flag or accept.
package obsconst

import (
	"fmt"

	"cool/internal/obs"
)

const prefix = "orb_"

func sprintfMetricName(r *obs.Registry, peer string) {
	r.Counter(fmt.Sprintf("orb_requests_%s", peer)).Inc() // want "built with a call"
}

func callInSpanName(t *obs.Tracer, op func() string) {
	s := t.StartSpan(prefix + op()) // want "built with a call"
	s.End("ok", "")
}

func callInChildName(t *obs.Tracer, parent obs.Span, op func() string) {
	s := t.StartChild(parent.Trace, parent.ID, op()) // want "built with a call"
	s.End("ok", "")
}

func sprintfHistogramName(r *obs.Registry, n int) {
	r.Histogram(fmt.Sprintf("lat_%d", n), nil).Observe(1) // want "built with a call"
}

// --- clean shapes ---

func constantName(r *obs.Registry) {
	r.Counter("orb_requests_total").Inc()
}

func constantConcat(r *obs.Registry, suffix string) {
	// Concatenating string values allocates at worst; only calls are
	// flagged.
	r.Gauge(prefix + suffix).Set(1)
}

func constantSpan(t *obs.Tracer) {
	s := t.StartSpan(prefix + "invoke")
	s.End("ok", "")
}

func callOutsideName(t *obs.Tracer, parent obs.Span) {
	// Calls in non-name arguments are fine.
	s := t.StartChild(parent.Trace, parent.ID, "child_op")
	s.End("ok", "")
}

// --- snapshot read path: the same names, the same discipline ---

func sprintfSnapshotLookup(s obs.Snapshot, op string) {
	_ = s.Counter(fmt.Sprintf("orb_requests_%s", op)) // want "built with a call"
}

func sprintfRateLookup(s obs.Snapshot, n int) {
	_ = s.Rate(fmt.Sprintf("orb_requests_%d", n)) // want "built with a call"
}

func callInHistogramLookup(s obs.Snapshot, op func() string) {
	_, _ = s.Histogram(prefix + op()) // want "built with a call"
}

func constantSnapshotLookup(s obs.Snapshot, suffix string) {
	_ = s.Counter(prefix + suffix)
	_ = s.Rate("orb_requests_total")
	_, _ = s.Histogram(prefix + "latency_us")
}

// --- exemplar and slow-call plumbing: name-free APIs stay unflagged ---

func exemplarObserve(h *obs.Histogram, tr obs.TraceID, now func() uint64) {
	// ObserveTrace takes no name; calls in its value arguments are fine.
	h.ObserveTrace(now(), tr)
}

const droppedName = "obs_tracelog_dropped"

func wireDroppedCounter(l *obs.TraceLog, r *obs.Registry) {
	l.SetDroppedCounter(r.Counter(droppedName))
}

func wireDroppedCounterBad(l *obs.TraceLog, r *obs.Registry, id int) {
	l.SetDroppedCounter(r.Counter(fmt.Sprintf("dropped_%d", id))) // want "built with a call"
}

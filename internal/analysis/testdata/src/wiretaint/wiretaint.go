// Package wiretaint is a coollint test fixture: wire-derived sizes that
// must (or need not) be bounds-checked before they size an allocation or
// bound a loop. Diagnostics are asserted with want-comments.
package wiretaint

import (
	"encoding/binary"

	"cool/internal/cdr"
)

const maxItems = 1024

// --- violations ---

func allocUnchecked(d *cdr.Decoder) []byte {
	n, _ := d.ReadULong()
	return make([]byte, n) // want "wire-derived allocation size is not bounds-checked"
}

func loopUnchecked(d *cdr.Decoder) int {
	n, _ := d.ReadUShort()
	total := 0
	for i := 0; i < int(n); i++ { // want "wire-derived loop bound is not bounds-checked"
		total += i
	}
	return total
}

func binaryOrderUnchecked(frame []byte) []uint32 {
	count := binary.BigEndian.Uint32(frame[:4])
	return make([]uint32, count) // want "wire-derived allocation size is not bounds-checked"
}

// allocate is a sink helper: it sizes an allocation from its argument
// without any bound, so callers must guard before handing a wire value in.
func allocate(n uint32) []byte {
	return make([]byte, n)
}

func sinkThroughHelper(d *cdr.Decoder) []byte {
	n, _ := d.ReadULong()
	return allocate(n) // want "wire-derived size handed to allocate"
}

// readLen is a source helper: it returns a decoded length unguarded, so
// the taint must flow to the caller through the summary.
func readLen(d *cdr.Decoder) uint32 {
	v, _ := d.ReadULong()
	return v
}

func sourceThroughHelper(d *cdr.Decoder) []byte {
	return make([]byte, readLen(d)) // want "wire-derived allocation size is not bounds-checked"
}

// --- clean shapes ---

func guardedByConst(d *cdr.Decoder) []byte {
	n, _ := d.ReadULong()
	if n > maxItems {
		return nil
	}
	return make([]byte, n)
}

func guardedByRemaining(d *cdr.Decoder) []byte {
	n, _ := d.ReadULong()
	if int(n) > d.Remaining() {
		return nil
	}
	return make([]byte, n)
}

func sanitizedByMod(d *cdr.Decoder) []byte {
	n, _ := d.ReadULong()
	return make([]byte, n%64)
}

func sanitizedByMask(d *cdr.Decoder) []byte {
	n, _ := d.ReadULong()
	return make([]byte, n&0xFF)
}

// readLenChecked guards before returning, so its result is clean in
// callers: the summary records the guarded return.
func readLenChecked(d *cdr.Decoder) uint32 {
	v, _ := d.ReadULong()
	if v > maxItems {
		return 0
	}
	return v
}

func cleanSourceHelper(d *cdr.Decoder) []byte {
	return make([]byte, readLenChecked(d))
}

func guardedLoop(d *cdr.Decoder) int {
	n, _ := d.ReadUShort()
	if n > maxItems {
		return 0
	}
	total := 0
	for i := 0; i < int(n); i++ {
		total += i
	}
	return total
}

// Package chanliveness is a coollint test fixture: channel-liveness bugs
// (dead sends, lock-gated receivers, double close) the chanliveness
// analyzer must flag, plus shapes it must accept.
package chanliveness

import "sync"

type worker struct {
	mu   sync.Mutex
	jobs chan int
	acks chan int
	done chan struct{}
	out  chan int
	res  chan int
	idle chan struct{}
	n    int
}

func newWorker() *worker {
	return &worker{
		jobs: make(chan int),
		acks: make(chan int),
		done: make(chan struct{}),
		out:  make(chan int),
		res:  make(chan int),
		idle: make(chan struct{}),
	}
}

// --- violations ---

// post sends on a channel nothing in the module ever receives from.
func (w *worker) post(v int) {
	w.acks <- v // want "send on w.acks can block forever: no receive"
}

// enqueue sends while holding w.mu; the only receive lives in
// drainLocked, which itself runs only under w.mu (through drain): the
// receiver can never run to drain the send.
func (w *worker) enqueue(v int) {
	w.mu.Lock()
	w.jobs <- v // want "send on w.jobs deadlocks"
	w.mu.Unlock()
}

func (w *worker) drainLocked() int {
	return <-w.jobs
}

func (w *worker) drain() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.drainLocked()
}

// stopTwice closes done on two sequential points of the same path.
func (w *worker) stopTwice() {
	close(w.done)
	w.n++
	close(w.done) // want "channel w.done may already be closed"
}

// shutdown closes out directly and again through finish.
func (w *worker) finish() {
	close(w.out)
}

func (w *worker) shutdown() {
	w.finish()
	close(w.out) // want "channel w.out is closed here and by the call to finish"
}

// --- clean shapes ---

// produce/consume: the receive is lock-free, so even the locked send in
// produceLocked has a live receiver.
func (w *worker) produce(v int) {
	w.res <- v
}

func (w *worker) produceLocked(v int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.res <- v
}

func (w *worker) consume() int {
	return <-w.res
}

// tryPost polls: a send with a default clause never blocks.
func (w *worker) tryPost(v int) bool {
	select {
	case w.acks <- v:
		return true
	default:
		return false
	}
}

// goIdle uses the guarded close-and-nil idiom; two such sites are not a
// double close.
func (w *worker) goIdle() {
	w.mu.Lock()
	if w.idle != nil {
		close(w.idle)
		w.idle = nil
	}
	w.mu.Unlock()
}

func (w *worker) goIdleAgain() {
	w.mu.Lock()
	if w.idle != nil {
		close(w.idle)
		w.idle = nil
	}
	w.mu.Unlock()
}

// relay's channel arrives from outside: endpoints unknown, skipped.
type relay struct {
	feed chan int
}

func newRelay(feed chan int) *relay {
	return &relay{feed: feed}
}

func (r *relay) send(v int) {
	r.feed <- v
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BindState is the typestate analyzer for the explicit-binding lifecycle
// (paper §4): proxies carry QoS requirements set through SetQoSParameter,
// are bound to an ORB, and die with it. The checks are driven by the
// declarative tables below so Chic-generated stubs — any named type whose
// method set matches the proxy shape — are covered without per-type
// code:
//
//   - no invocation (or QoS change) through a proxy whose origin ORB was
//     shut down earlier in the same function,
//   - the error results of the QoS declaration path (SetQoSParameter,
//     cool.TryQoS, qos.NewSet, Set.Validate) must not be discarded —
//     negotiation failure is the paper's central failure mode,
//   - a Pending from a deferred invocation must be consumed (Wait, Poll,
//     Cancel, or escape): an abandoned Pending strands the pooled reply
//     buffer.
var BindState = &Analyzer{
	Name: "bindstate",
	Doc:  "explicit-binding lifecycle: no use after ORB shutdown, QoS errors checked, Pendings consumed",
	Run:  runBindState,
}

// --- declarative model ------------------------------------------------

// bindClass is the lifecycle role of a value, detected structurally from
// its method set (so generated stubs match).
type bindClass int

const (
	classNone bindClass = iota
	// classProxy: named type with SetQoSParameter(qos.Set) error.
	classProxy
	// classORB: named type with Shutdown() and a Resolve method.
	classORB
	// classPending: named type with Wait, Poll, and Cancel methods.
	classPending
)

// bindEvent is an abstract lifecycle event.
type bindEvent int

const (
	evUse bindEvent = iota // any proxy method call
	evSetQoS
	evShutdown
)

// bindEventRules classifies method calls into events: the first rule
// whose class matches the receiver and whose method matches the call
// wins ("*" matches any method).
var bindEventRules = []struct {
	class  bindClass
	method string
	event  bindEvent
}{
	{classORB, "Shutdown", evShutdown},
	{classProxy, "SetQoSParameter", evSetQoS},
	{classProxy, "*", evUse},
}

// bindStateID is a typestate of an ORB (proxies take their state from
// their origin ORB).
type bindStateID int

const (
	stLive bindStateID = iota
	stDown
)

// bindTransitions is the state machine: an event either moves the state
// or reports a diagnostic.
var bindTransitions = []struct {
	from  bindStateID
	event bindEvent
	to    bindStateID
	diag  string
}{
	{stLive, evShutdown, stDown, ""},
	{stDown, evUse, stDown, "invocation through a proxy of an ORB that was shut down"},
	{stDown, evSetQoS, stDown, "SetQoSParameter on a proxy of an ORB that was shut down"},
}

// errorMustCheck lists the QoS-path calls whose error result must not be
// discarded. Methods are matched structurally (class + name) so stub
// wrappers count too.
var errorMustCheck = []struct {
	class  bindClass // classNone: package-level function
	pkg    string    // for package-level functions
	name   string
	reason string
}{
	{classProxy, "", "SetQoSParameter", "negotiation failure surfaces here"},
	{classNone, "cool", "TryQoS", "invalid QoS parameters surface here"},
	{classNone, "cool/internal/qos", "NewSet", "invalid QoS parameters surface here"},
	{classNone, "cool/internal/qos", "TryQoS", "invalid QoS parameters surface here"},
}

// --- implementation ---------------------------------------------------

func runBindState(pass *Pass) {
	bs := &bindStateChecker{pass: pass, classes: make(map[types.Type]bindClass)}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				bs.checkBody(fn.Body)
			}
		}
	}
}

type bindStateChecker struct {
	pass    *Pass
	classes map[types.Type]bindClass // memoized structural classification
}

// classOf classifies a type by its method shape.
func (bs *bindStateChecker) classOf(t types.Type) bindClass {
	return bindClassOf(t, bs.classes)
}

// bindClassOf is the structural classification shared by the lifecycle
// analyzers (bindstate, ctxflow), memoized in the caller's map.
func bindClassOf(t types.Type, memo map[types.Type]bindClass) bindClass {
	if t == nil {
		return classNone
	}
	if c, ok := memo[t]; ok {
		return c
	}
	c := classNone
	switch {
	case hasMethodSig(t, "SetQoSParameter", 1, 1, isErrorResult):
		c = classProxy
	case hasMethodSig(t, "Shutdown", 0, 0, nil) && (hasMethod(t, "Resolve") || hasMethod(t, "ResolveString")):
		c = classORB
	case hasMethod(t, "Wait") && hasMethod(t, "Poll") && hasMethod(t, "Cancel"):
		c = classPending
	}
	memo[t] = c
	return c
}

// hasMethod reports whether t (or *t) has a method with the given name.
func hasMethod(t types.Type, name string) bool {
	return lookupMethod(t, name) != nil
}

// hasMethodSig additionally checks arity and an optional result
// predicate.
func hasMethodSig(t types.Type, name string, params, results int, resCheck func(*types.Signature) bool) bool {
	fn := lookupMethod(t, name)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != params || sig.Results().Len() != results {
		return false
	}
	return resCheck == nil || resCheck(sig)
}

func isErrorResult(sig *types.Signature) bool {
	return sig.Results().Len() == 1 && sig.Results().At(0).Type().String() == "error"
}

// lookupMethod finds a method on t, trying the pointer type as well.
func lookupMethod(t types.Type, name string) *types.Func {
	n := namedOf(t)
	if n == nil {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, n.Obj().Pkg(), name)
	if fn, ok := obj.(*types.Func); ok {
		return fn
	}
	return nil
}

// methodEvent classifies one call against the event table.
func (bs *bindStateChecker) methodEvent(call *ast.CallExpr) (recv ast.Expr, class bindClass, event bindEvent, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return nil, classNone, 0, false
	}
	if _, isMethod := bs.pass.Info.Selections[sel]; !isMethod {
		return nil, classNone, 0, false
	}
	c := bs.classOf(typeOf(bs.pass.Info, sel.X))
	if c == classNone {
		return nil, classNone, 0, false
	}
	for _, rule := range bindEventRules {
		if rule.class != c {
			continue
		}
		if rule.method == "*" || rule.method == sel.Sel.Name {
			return sel.X, c, rule.event, true
		}
	}
	return nil, classNone, 0, false
}

// checkBody runs the three checks over one function body.
func (bs *bindStateChecker) checkBody(body *ast.BlockStmt) {
	bs.checkShutdownOrder(body)
	bs.checkDiscardedErrors(body)
	bs.checkAbandonedPendings(body)
}

// --- use after Shutdown ------------------------------------------------

// bindEventSite is one classified call in source order.
type bindEventSite struct {
	pos   token.Pos
	event bindEvent
	// origin is the ORB object the event applies to (the receiver for
	// evShutdown, the derived origin for proxy events; nil when unknown).
	origin types.Object
	// scope is the enclosing block of a Shutdown call: the shutdown only
	// dominates uses inside that block after it.
	scope *ast.BlockStmt
}

func (bs *bindStateChecker) checkShutdownOrder(body *ast.BlockStmt) {
	info := bs.pass.Info

	// Derivation: proxy variable -> origin ORB object. A proxy assigned
	// from a method call on an ORB (Resolve, ResolveString) or built from
	// another derived proxy (stub constructors) inherits the origin.
	origin := make(map[types.Object]types.Object)
	originOf := func(e ast.Expr) types.Object {
		if id := rootIdent(e); id != nil {
			obj := objOf(info, id)
			if obj == nil {
				return nil
			}
			if bs.classOf(obj.Type()) == classORB {
				return obj
			}
			if o, ok := origin[obj]; ok {
				return o
			}
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) == 0 {
				return true
			}
			// Find an origin anywhere on the RHS (receiver or argument).
			var found types.Object
			for _, r := range as.Rhs {
				ast.Inspect(r, func(m ast.Node) bool {
					if found != nil {
						return false
					}
					if e, ok := m.(ast.Expr); ok {
						if o := originOf(e); o != nil {
							found = o
							return false
						}
					}
					return true
				})
			}
			if found == nil {
				return true
			}
			for _, l := range as.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(info, id)
				if obj == nil || bs.classOf(obj.Type()) != classProxy {
					continue
				}
				if origin[obj] != found {
					origin[obj] = found
					changed = true
				}
			}
			return true
		})
	}

	// Collect classified events in source order. Shutdown calls inside
	// defer statements run at exit and impose no ordering.
	var sites []bindEventSite
	blockOf := enclosingBlocks(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			_ = ds
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, class, event, ok := bs.methodEvent(call)
		if !ok {
			return true
		}
		site := bindEventSite{pos: call.Pos(), event: event}
		switch class {
		case classORB:
			if id := rootIdent(recv); id != nil {
				site.origin = objOf(info, id)
			}
			site.scope = blockOf[call.Pos()]
		case classProxy:
			site.origin = originOf(recv)
		}
		if site.origin != nil {
			sites = append(sites, site)
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })

	// Drive the state machine per ORB object.
	type orbState struct {
		id    bindStateID
		scope *ast.BlockStmt
		pos   token.Pos
	}
	states := make(map[types.Object]*orbState)
	for _, site := range sites {
		st := states[site.origin]
		if st == nil {
			st = &orbState{id: stLive}
			states[site.origin] = st
		}
		for _, tr := range bindTransitions {
			if tr.from != st.id || tr.event != site.event {
				continue
			}
			if tr.diag != "" {
				// Only report when the shutdown lexically dominates the use:
				// same enclosing block, use after the shutdown.
				if st.scope != nil && st.scope.Pos() <= site.pos && site.pos <= st.scope.End() && site.pos > st.pos {
					bs.pass.Reportf(site.pos, "%s", tr.diag)
				}
				break
			}
			st.id = tr.to
			if site.event == evShutdown {
				st.scope = site.scope
				st.pos = site.pos
			}
			break
		}
	}
}

// enclosingBlocks maps every position to its innermost enclosing block.
func enclosingBlocks(body *ast.BlockStmt) map[token.Pos]*ast.BlockStmt {
	out := make(map[token.Pos]*ast.BlockStmt)
	var walk func(n ast.Node, blk *ast.BlockStmt)
	walk = func(n ast.Node, blk *ast.BlockStmt) {
		ast.Inspect(n, func(m ast.Node) bool {
			if b, ok := m.(*ast.BlockStmt); ok && b != n {
				walk(b, b)
				return false
			}
			if m != nil {
				out[m.Pos()] = blk
			}
			return true
		})
	}
	walk(body, body)
	return out
}

// --- discarded QoS errors ----------------------------------------------

func (bs *bindStateChecker) checkDiscardedErrors(body *ast.BlockStmt) {
	info := bs.pass.Info

	match := func(call *ast.CallExpr) (string, bool) {
		// Package-level functions.
		if callee := calleeOf(info, call); callee != nil {
			for _, rule := range errorMustCheck {
				if rule.class == classNone && isFunc(callee, rule.pkg, rule.name) {
					return rule.name + " error discarded (" + rule.reason + ")", true
				}
			}
		}
		// Class methods.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			c := bs.classOf(typeOf(info, sel.X))
			for _, rule := range errorMustCheck {
				if rule.class != classNone && rule.class == c && rule.name == sel.Sel.Name {
					return rule.name + " error discarded (" + rule.reason + ")", true
				}
			}
		}
		return "", false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				if msg, ok := match(call); ok {
					bs.pass.Reportf(call.Pos(), "%s", msg)
				}
			}
		case *ast.AssignStmt:
			// The error result assigned to the blank identifier.
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			msg, ok := match(call)
			if !ok {
				return true
			}
			// The error is the last result; report if its lvalue is blank.
			if last, okL := s.Lhs[len(s.Lhs)-1].(*ast.Ident); okL && last.Name == "_" {
				bs.pass.Reportf(call.Pos(), "%s", msg)
			}
		}
		return true
	})
}

// --- abandoned Pendings ------------------------------------------------

func (bs *bindStateChecker) checkAbandonedPendings(body *ast.BlockStmt) {
	info := bs.pass.Info
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		// Only deferred-invocation shapes: a method call returning a
		// Pending-class first result.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if _, isMethodCall := info.Selections[sel]; !isMethodCall {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			if bs.classOfResult(call) == classPending {
				bs.pass.Reportf(call.Pos(),
					"deferred invocation discarded; Wait, Poll, or Cancel must run to recycle the pooled reply")
			}
			return true
		}
		obj := objOf(info, id)
		if obj == nil || bs.classOf(obj.Type()) != classPending {
			return true
		}
		if !bs.usedAgain(body, id, obj) {
			bs.pass.Reportf(call.Pos(),
				"pending %s is never consumed; Wait, Poll, or Cancel must run to recycle the pooled reply", id.Name)
		}
		return true
	})
}

// classOfResult classifies the first result type of a call.
func (bs *bindStateChecker) classOfResult(call *ast.CallExpr) bindClass {
	t := typeOf(bs.pass.Info, call)
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return classNone
		}
		t = tup.At(0).Type()
	}
	return bs.classOf(t)
}

// usedAgain reports whether obj is mentioned anywhere besides its
// defining identifier. A pure discard (`_ = p`) keeps the compiler quiet
// about an unused variable but does not consume the pending, so it does
// not count.
func (bs *bindStateChecker) usedAgain(body *ast.BlockStmt, def *ast.Ident, obj types.Object) bool {
	discarded := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if l, ok := as.Lhs[0].(*ast.Ident); !ok || l.Name != "_" {
			return true
		}
		if r, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident); ok {
			discarded[r] = true
		}
		return true
	})
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == def || discarded[id] {
			return true
		}
		if objOf(bs.pass.Info, id) == obj {
			used = true
		}
		return true
	})
	return used
}

package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the context-threaded invocation discipline introduced
// with the connection-manager layer: once a function holds a
// context.Context, deadlines and cancellation must reach the wire, so the
// context-free blocking entry points (Invoke, InvokeOneway,
// InvokeDeferred, Pending.Wait) are off limits wherever a ...Ctx variant
// exists. Types are matched structurally (the bindstate shapes), so
// Chic-generated stubs and hand-written wrappers are covered alike:
//
//   - a function or method that takes a context.Context must not call a
//     context-free blocking method on a proxy or pending value when the
//     receiver offers the ...Ctx variant — the held context would be
//     silently dropped on the invocation path,
//   - an exported method on a proxy- or pending-shaped type that blocks
//     through one of those entry points without taking a context must
//     offer a ...Ctx sibling, so callers can bound the call.
//
// Calls inside function literals are exempt from both rules: a literal
// typically runs on its own goroutine (InvokeAsync's completion callback),
// where the enclosing context deliberately does not bound the wait.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context threading: ctx holders use ...Ctx invocation variants, exported blocking APIs offer one",
	Run:  runCtxFlow,
}

// ctxBlocking lists the context-free blocking entry points per structural
// class. A call only counts when the receiver type also has the
// corresponding <name>Ctx method — without one there is nothing better to
// call.
var ctxBlocking = []struct {
	class  bindClass
	method string
}{
	{classProxy, "Invoke"},
	{classProxy, "InvokeOneway"},
	{classProxy, "InvokeDeferred"},
	{classPending, "Wait"},
}

func runCtxFlow(pass *Pass) {
	c := &ctxFlowChecker{pass: pass, classes: make(map[types.Type]bindClass)}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if hasCtxParam(pass.Info, fn) {
				c.checkCtxHolder(fn)
			} else {
				c.checkExportedBlocking(fn)
			}
		}
	}
}

type ctxFlowChecker struct {
	pass    *Pass
	classes map[types.Type]bindClass
}

// hasCtxParam reports whether fn declares a context.Context parameter.
func hasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, f := range fn.Type.Params.List {
		if t := typeOf(info, f.Type); t != nil && isNamedType(t, "context", "Context") {
			return true
		}
	}
	return false
}

// blockingCall classifies call as a context-free blocking invocation whose
// receiver offers a ...Ctx variant, returning the method name.
func (c *ctxFlowChecker) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, isMethod := c.pass.Info.Selections[sel]; !isMethod {
		return "", false
	}
	t := typeOf(c.pass.Info, sel.X)
	cls := bindClassOf(t, c.classes)
	if cls == classNone {
		return "", false
	}
	for _, rule := range ctxBlocking {
		if rule.class == cls && rule.method == sel.Sel.Name && hasMethod(t, sel.Sel.Name+"Ctx") {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// checkCtxHolder reports context-free blocking calls made directly by a
// function that holds a context. Function literals are skipped: they run
// outside the caller's synchronous path.
func (c *ctxFlowChecker) checkCtxHolder(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := c.blockingCall(call); ok {
			c.pass.Reportf(call.Pos(),
				"%s holds a context but calls the context-free %s; use %sCtx so the deadline reaches the invocation",
				fn.Name.Name, name, name)
		}
		return true
	})
}

// checkExportedBlocking reports exported proxy/pending methods that block
// through a context-free entry point without offering a ...Ctx sibling.
func (c *ctxFlowChecker) checkExportedBlocking(fn *ast.FuncDecl) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || !fn.Name.IsExported() {
		return
	}
	recvType := typeOf(c.pass.Info, fn.Recv.List[0].Type)
	cls := bindClassOf(recvType, c.classes)
	if cls != classProxy && cls != classPending {
		return
	}
	if lookupMethod(recvType, fn.Name.Name+"Ctx") != nil {
		return // callers already have a bounded variant
	}
	reported := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := c.blockingCall(call); ok {
			c.pass.Reportf(fn.Name.Pos(),
				"exported method %s blocks in %s without taking a context; add a %sCtx variant",
				fn.Name.Name, name, fn.Name.Name)
			reported = true
			return false
		}
		return true
	})
}

package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantClauseRe extracts each quoted regexp from a `// want "re" "re"`
// expectation comment.
var (
	wantLineRe   = regexp.MustCompile(`// want ("[^"]+"(?: "[^"]+")*)`)
	wantClauseRe = regexp.MustCompile(`"([^"]+)"`)
)

// expectation is one golden diagnostic: an exact file:line position plus a
// regexp the message must match. hit marks it consumed so each expected
// diagnostic must appear exactly once.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// loadFixture type-checks one testdata package and collects its `want`
// expectations. A line may carry several clauses: `// want "re1" "re2"`
// expects two diagnostics on that line.
func loadFixture(t *testing.T, dir string) (*Package, []*expectation) {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("LoadDir(%s): no buildable package", dir)
	}
	var wants []*expectation
	for file, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantLineRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, clause := range wantClauseRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(clause[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, clause[1], err)
				}
				wants = append(wants, &expectation{file: file, line: i + 1, re: re})
			}
		}
	}
	return pkg, wants
}

// runFixture applies analyzers to a fixture package and matches the
// diagnostics against its expectations: every diagnostic must match an
// unconsumed want at its exact file:line, and every want must be hit.
func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("missing fixture: %v", err)
	}
	pkg, wants := loadFixture(t, dir)
	if len(wants) < 2 {
		t.Fatalf("fixture %s declares %d expectations; need at least 2 positive cases", fixture, len(wants))
	}
	diags := RunAnalyzers([]*Package{pkg}, analyzers)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d (want %q)", w.file, w.line, w.re)
		}
	}
}

func TestPoolPairFixture(t *testing.T)   { runFixture(t, "poolpair", PoolPair) }
func TestLockHoldFixture(t *testing.T)   { runFixture(t, "lockhold", LockHold) }
func TestFrameAliasFixture(t *testing.T) { runFixture(t, "framealias", FrameAlias) }
func TestObsConstFixture(t *testing.T)   { runFixture(t, "obsconst", ObsConst) }
func TestWireTaintFixture(t *testing.T)  { runFixture(t, "wiretaint", WireTaint) }
func TestBindStateFixture(t *testing.T)  { runFixture(t, "bindstate", BindState) }
func TestGoroLeakFixture(t *testing.T)   { runFixture(t, "goroleak", GoroLeak) }
func TestCtxFlowFixture(t *testing.T)    { runFixture(t, "ctxflow", CtxFlow) }

// The concurrency suite: each fixture exercises at least one
// interprocedural (through-helper) finding.
func TestLockOrderFixture(t *testing.T)    { runFixture(t, "lockorder", LockOrder) }
func TestAtomicFieldFixture(t *testing.T)  { runFixture(t, "atomicfield", AtomicField) }
func TestChanLivenessFixture(t *testing.T) { runFixture(t, "chanliveness", ChanLiveness) }

// TestHotAllocFixture drives the allocation analyzer: every warm site
// kind, through-helper propagation (fill's sites carry the process ->
// fill path), sanctioned allocators, cold branches, and the allocok /
// coldpath / allocator directives.
func TestHotAllocFixture(t *testing.T) { runFixture(t, "hotalloc", HotAlloc) }

// TestInterprocFixture drives poolpair and framealias through helper
// boundaries: acquires, releases and aliasing facts must flow via the
// interprocedural summaries, not annotations.
func TestInterprocFixture(t *testing.T) {
	runFixture(t, "interproc", PoolPair, FrameAlias)
}

// TestLoaderModuleWide exercises the "./..." pattern against the real
// module: every package must load and type-check through the stdlib-only
// loader.
func TestLoaderModuleWide(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide load is slow")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load ./... found only %d packages", len(pkgs))
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{"cool/internal/orb", "cool/internal/bufpool", "cool/internal/giop"} {
		if !seen[want] {
			t.Errorf("Load ./... missing %s", want)
		}
	}
}

// TestSuppressionScopes pins the //coollint:allow comment semantics: a
// whole-line comment suppresses the next line, a trailing comment its own,
// and names must match the reporting analyzer.
func TestSuppressionScopes(t *testing.T) {
	pkg, _ := loadFixture(t, mustAbs(t, filepath.Join("testdata", "src", "framealias")))
	// Every line carrying a trailing //coollint:allow framealias comment
	// must produce no diagnostic.
	allowed := make(map[string]map[int]bool)
	for file, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, "//coollint:allow framealias") {
				if allowed[file] == nil {
					allowed[file] = make(map[int]bool)
				}
				allowed[file][i+1] = true
			}
		}
	}
	if len(allowed) == 0 {
		t.Fatal("fixture has no //coollint:allow framealias site to exercise")
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{FrameAlias})
	for _, d := range diags {
		if allowed[d.Pos.Filename][d.Pos.Line] {
			t.Errorf("suppressed site still reported: %s", d)
		}
	}
}

func mustAbs(t *testing.T, p string) string {
	t.Helper()
	abs, err := filepath.Abs(p)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches `// want "substring"` expectation comments in fixtures.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	file string
	line int
	sub  string
	hit  bool
}

// loadFixture type-checks one testdata package and collects its `want`
// expectations.
func loadFixture(t *testing.T, dir string) (*Package, []*expectation) {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("LoadDir(%s): no buildable package", dir)
	}
	var wants []*expectation
	for file, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			wants = append(wants, &expectation{file: file, line: i + 1, sub: m[1]})
		}
	}
	return pkg, wants
}

// runFixture applies one analyzer to a fixture package and matches the
// diagnostics against its expectations, reporting both misses and
// unexpected findings.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("missing fixture: %v", err)
	}
	pkg, wants := loadFixture(t, dir)
	if len(wants) < 2 {
		t.Fatalf("fixture %s declares %d expectations; need at least 2 positive cases", fixture, len(wants))
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.sub) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d (want %q)", w.file, w.line, w.sub)
		}
	}
}

func TestPoolPairFixture(t *testing.T)   { runFixture(t, PoolPair, "poolpair") }
func TestLockHoldFixture(t *testing.T)   { runFixture(t, LockHold, "lockhold") }
func TestFrameAliasFixture(t *testing.T) { runFixture(t, FrameAlias, "framealias") }
func TestObsConstFixture(t *testing.T)   { runFixture(t, ObsConst, "obsconst") }

// TestLoaderModuleWide exercises the "./..." pattern against the real
// module: every package must load and type-check through the stdlib-only
// loader.
func TestLoaderModuleWide(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide load is slow")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("Load ./... found only %d packages", len(pkgs))
	}
	seen := make(map[string]bool)
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{"cool/internal/orb", "cool/internal/bufpool", "cool/internal/giop"} {
		if !seen[want] {
			t.Errorf("Load ./... missing %s", want)
		}
	}
}

// TestSuppressionScopes pins the //coollint:allow comment semantics: a
// whole-line comment suppresses the next line, a trailing comment its own,
// and names must match the reporting analyzer.
func TestSuppressionScopes(t *testing.T) {
	pkg, _ := loadFixture(t, mustAbs(t, filepath.Join("testdata", "src", "framealias")))
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{FrameAlias})
	for _, d := range diags {
		if strings.Contains(d.Pos.Filename, "framealias.go") {
			// allowedAliasingSite must not appear.
			if d.Pos.Line > 70 {
				t.Errorf("suppressed site still reported: %s", d)
			}
		}
	}
}

func mustAbs(t *testing.T, p string) string {
	t.Helper()
	abs, err := filepath.Abs(p)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

package analysis

import (
	"go/types"
	"strings"
)

// HotAlloc enforces the hot-path allocation discipline: from every
// function annotated //coollint:hotpath (the warm invocation spine —
// client invoke path, combiner drain, read loop, server dispatch, pooled
// marshal/unmarshal), the analyzer walks synchronous module-internal
// calls and reports every reachable warm allocation site with its full
// root→site call path, the way lockorder prints acquisition paths.
//
// Cold regions are exempt (error/failure branches, panic exits,
// sync.Once payloads, //coollint:coldpath functions), as are the
// sanctioned arena/pool allocators (bufpool, AcquireEncoder,
// UnmarshalPooled, interned operations, //coollint:allocator functions).
// Reasoned per-site suppressions use //coollint:allocok <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no unsanctioned heap allocation is reachable from a //coollint:hotpath root",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	prog := pass.Prog
	if prog == nil || len(prog.allocFacts) == 0 {
		return
	}

	// BFS over warm synchronous call edges from every hotpath root,
	// keeping the shortest root→function path. sortedFuncs keeps both the
	// root order and the resulting paths deterministic.
	paths := make(map[*types.Func][]string)
	var queue []*types.Func
	for _, pf := range prog.sortedFuncs() {
		if facts := prog.allocFacts[pf.obj]; facts != nil && facts.hotRoot && !facts.coldFunc {
			paths[pf.obj] = []string{funcDisplay(pf.obj)}
			queue = append(queue, pf.obj)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		facts := prog.allocFacts[fn]
		if facts == nil {
			continue
		}
		for _, call := range facts.warmCalls {
			if _, seen := paths[call.callee]; seen {
				continue
			}
			// Prune: the summary bit says nothing warm is reachable
			// through this callee, so there is nothing to report below.
			if sum := prog.sums[call.callee]; sum == nil || !sum.warmAllocs {
				continue
			}
			paths[call.callee] = append(append([]string(nil), paths[fn]...), funcDisplay(call.callee))
			queue = append(queue, call.callee)
		}
	}

	// Report only sites in this pass's own files, so a module-wide path
	// is diagnosed once.
	inPkg := passFileSet(pass)
	for _, pf := range prog.sortedFuncs() {
		path, hot := paths[pf.obj]
		if !hot {
			continue
		}
		facts := prog.allocFacts[pf.obj]
		for _, s := range facts.warmSites {
			if !inPkg[posFile(pass.Fset, s.pos)] {
				continue
			}
			pass.Reportf(s.pos, "%s on hot path %s (%s) — restructure, use a pooled allocator, or annotate //coollint:allocok <reason>",
				s.kind, strings.Join(path, " -> "), s.what)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the concurrency-facts layer of the interprocedural engine:
// the module-wide inputs shared by the lockorder, atomicfield and
// chanliveness analyzers and by the interprocedural upgrade of lockhold.
//
// During BuildProgram every function body is walked twice. A cheap AST
// pass indexes the raw material — struct fields touched through
// sync/atomic, close() guards, select clauses backed by a default — and a
// CFG dataflow pass tracks the set of mutex *classes* held at every
// interesting site (lock acquisitions, module-internal calls, channel
// operations, plain accesses of atomic-tracked fields). Two lock sets are
// maintained: MAY-hold (union over paths, drives deadlock edges) and
// MUST-hold (intersection over paths, drives "is this access guarded"
// questions).
//
// A mutex class is a stable module-wide identity: "pkg.Type.field" for a
// mutex struct field (every instance of the type shares the class, which
// is exactly the granularity a lock-ordering discipline is written at) or
// "pkg.var" for a package-level mutex. Local mutexes have no cross-
// function identity and do not participate.

// lockKeySet maps a lock class key to its display form ("clientConn.mu").
type lockKeySet map[string]string

func (s lockKeySet) clone() lockKeySet {
	c := make(lockKeySet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockKeySet) equal(o lockKeySet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// union adds o's entries, reporting growth.
func (s lockKeySet) union(o lockKeySet) bool {
	grew := false
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
			grew = true
		}
	}
	return grew
}

// intersect removes entries absent from o, reporting shrinkage.
func (s lockKeySet) intersect(o lockKeySet) bool {
	shrunk := false
	for k := range s {
		if _, ok := o[k]; !ok {
			delete(s, k)
			shrunk = true
		}
	}
	return shrunk
}

// intersects reports whether the sets share a class.
func (s lockKeySet) intersects(o lockKeySet) bool {
	for k := range s {
		if _, ok := o[k]; ok {
			return true
		}
	}
	return false
}

// displays renders the held set for diagnostics: sorted display names
// plus the grammatical verb ("c.mu is held", "c.mu, w.mu are held").
func (s lockKeySet) displays() string {
	names := make([]string, 0, len(s))
	for _, d := range s {
		names = append(names, d)
	}
	sort.Strings(names)
	names = dedupSorted(names)
	verb := " is held"
	if len(names) > 1 {
		verb = " are held"
	}
	return strings.Join(names, ", ") + verb
}

func dedupSorted(names []string) []string {
	out := names[:0]
	for i, n := range names {
		if i == 0 || n != names[i-1] {
			out = append(out, n)
		}
	}
	return out
}

// lockClassOf resolves a mutex receiver expression to its module-wide
// class: struct fields by owning type, package-level vars by package.
func lockClassOf(info *types.Info, e ast.Expr) (key, disp string, ok bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, found := info.Selections[x]; found {
			obj := sel.Obj()
			if n := namedOf(sel.Recv()); n != nil && obj != nil && obj.Pkg() != nil {
				tname := n.Obj().Name()
				return obj.Pkg().Path() + "." + tname + "." + obj.Name(), tname + "." + obj.Name(), true
			}
			return "", "", false
		}
		if obj := objOf(info, x.Sel); obj != nil {
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), v.Name(), true
			}
		}
	case *ast.Ident:
		if obj := objOf(info, x); obj != nil {
			if v, isVar := obj.(*types.Var); isVar && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), v.Name(), true
			}
		}
	}
	return "", "", false
}

// mutexMethodOf decodes x.Lock()/x.Unlock()/x.RLock()/x.RUnlock() calls on
// sync mutexes, returning the method name and the receiver expression.
func mutexMethodOf(info *types.Info, call *ast.CallExpr) (name string, recv ast.Expr, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", nil, false
	}
	fn, okFn := calleeOf(info, call).(*types.Func)
	if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, false
	}
	return sel.Sel.Name, sel.X, true
}

// --- module-wide site records ------------------------------------------

// lockEdge is one "to acquired while from is held" observation, the raw
// material of the lock-ordering graph.
type lockEdge struct {
	from, fromDisp string
	to, toDisp     string
	pos            token.Pos
	fn             *types.Func
	// via names the module-internal callee whose summary contributed the
	// acquisition ("" for a direct Lock call).
	via string
}

// callSiteRec is one module-internal call with the caller's MUST-hold set.
type callSiteRec struct {
	caller *types.Func
	must   lockKeySet
}

// accessSite is one recorded program point with its lock context.
type accessSite struct {
	pos  token.Pos
	fn   *types.Func
	must lockKeySet
	may  lockKeySet
	text string
	// write marks stores (assignments, ++/--) for atomic-field sites.
	write bool
	// polled marks channel sends that sit in a select with a default
	// clause (they can never block forever).
	polled bool
	// guarded marks close() calls protected by an enclosing condition
	// that mentions the channel (the close-and-nil idiom).
	guarded bool
}

// chanFacts aggregates every module-wide site of one channel object
// (struct field or package-level var).
type chanFacts struct {
	sends, recvs, closes []accessSite
	// aliased: the channel value was assigned from something other than a
	// direct make(), or was read into a variable / passed along — its
	// endpoints may live behind aliases we cannot see.
	aliased bool
	// buffered: some make() for this object has a non-zero capacity.
	buffered bool
	made     bool
}

// atomicFacts aggregates the sync/atomic and plain accesses of one field.
type atomicFacts struct {
	atomics []accessSite
	plains  []accessSite
}

// --- per-function fact collection --------------------------------------

// funcFactsCollector walks one function with the lock dataflow, feeding
// the Program-level indexes.
type funcFactsCollector struct {
	prog *Program
	pf   *progFunc
	info *types.Info

	// excluded are selector nodes consumed by an atomic access (the &x.f
	// of atomic.AddUint64, the receiver of a typed-wrapper method call).
	excluded map[ast.Node]bool
	// polledSends are send statements that are select comm clauses with a
	// default sibling.
	polledSends map[ast.Node]bool
	// guardedCloses are close calls under a condition naming the channel.
	guardedCloses map[ast.Node]bool

	// sites dedupes records across CFG revisits: must intersects, may
	// unions.
	sites map[token.Pos]*siteState

	edges map[string]bool // lockEdge dedup: from|to|pos
}

type siteState struct {
	site accessSite
	kind siteKind
	obj  types.Object // channel / field object, nil for call records
	via  string
}

type siteKind uint8

const (
	siteChanSend siteKind = iota
	siteChanRecv
	siteChanClose
	siteAtomicPlain
	siteAtomicAtomic
)

// collectConcurrencyFacts runs the post-summary pass over every function:
// lock-order edges, call-site lock contexts, channel sites and atomic
// field sites land in the Program indexes.
func collectConcurrencyFacts(prog *Program) {
	// Pass A: index atomic accesses, select-with-default sends, guarded
	// closes, and channel aliasing — plain AST facts with no lock context.
	for _, pf := range prog.sortedFuncs() {
		indexAtomicAccesses(prog, pf)
		indexChanShape(prog, pf)
	}
	// Pass B: the lock dataflow, which attaches lock context to every
	// interesting site and derives lock-order edges.
	for _, pf := range prog.sortedFuncs() {
		c := &funcFactsCollector{
			prog:          prog,
			pf:            pf,
			info:          pf.pkg.Info,
			excluded:      markAtomicNodes(pf.pkg.Info, pf.decl.Body),
			polledSends:   markPolledSends(pf.decl.Body),
			guardedCloses: markGuardedCloses(pf.pkg.Info, pf.decl.Body),
			sites:         make(map[token.Pos]*siteState),
			edges:         make(map[string]bool),
		}
		c.run()
		c.flush()
	}
	computeGuardedFuncs(prog)
}

// sortedFuncs returns the module functions in declaration order for
// deterministic index construction.
func (p *Program) sortedFuncs() []*progFunc {
	pfs := make([]*progFunc, 0, len(p.funcs))
	for _, pf := range p.funcs {
		pfs = append(pfs, pf)
	}
	sortProgFuncs(pfs)
	return pfs
}

// --- pass A: AST shape indexes -----------------------------------------

// atomicCallFuncs are the sync/atomic package functions whose first
// argument addresses the accessed word.
func isAtomicPkgFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isAtomicWrapperMethod reports a method call on one of the typed
// wrappers (atomic.Int32, atomic.Uint64, atomic.Bool, ...).
func isAtomicWrapperMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOf(sig.Recv().Type())
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// fieldObjOf resolves a selector to the struct field it reads, or nil.
func fieldObjOf(info *types.Info, e ast.Expr) types.Object {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}

// indexAtomicAccesses records every struct field reached through
// sync/atomic — raw atomic.LoadUint32(&s.f) calls and typed-wrapper
// method calls alike — into prog.atomicFields, with lock context filled
// in later by the dataflow pass.
func indexAtomicAccesses(prog *Program, pf *progFunc) {
	info := pf.pkg.Info
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil {
			return true
		}
		if isAtomicPkgFunc(callee) && len(call.Args) > 0 {
			if ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if f := fieldObjOf(info, ue.X); f != nil {
					prog.atomicField(f) // existence marks the field tracked
				}
			}
		}
		if isAtomicWrapperMethod(callee) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if f := fieldObjOf(info, sel.X); f != nil {
					prog.atomicField(f)
				}
			}
		}
		return true
	})
}

// markAtomicNodes returns the selector nodes that ARE atomic accesses in
// a body, so the dataflow pass can tell them from plain accesses.
func markAtomicNodes(info *types.Info, body ast.Node) map[ast.Node]bool {
	marked := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil {
			return true
		}
		if isAtomicPkgFunc(callee) && len(call.Args) > 0 {
			if ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
					marked[sel] = true
				}
			}
		}
		if isAtomicWrapperMethod(callee) {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					marked[recv] = true
				}
			}
		}
		return true
	})
	return marked
}

// markPolledSends returns the send statements that are select comm
// clauses with a default sibling: they never block.
func markPolledSends(body ast.Node) map[ast.Node]bool {
	marked := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				marked[cc.Comm] = true
			}
		}
		return true
	})
	return marked
}

// markGuardedCloses returns close calls protected by an enclosing if
// whose condition mentions the closed object — the close-and-nil idiom
// (`if w.idle != nil { close(w.idle); w.idle = nil }`).
func markGuardedCloses(info *types.Info, body ast.Node) map[ast.Node]bool {
	marked := make(map[ast.Node]bool)
	var walk func(n ast.Node, guards []types.Object)
	walk = func(n ast.Node, guards []types.Object) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			var conds []types.Object
			ast.Inspect(x.Cond, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						conds = append(conds, obj)
					}
				}
				if sel, ok := c.(*ast.SelectorExpr); ok {
					if obj := chanKeyOf(info, sel); obj != nil {
						conds = append(conds, obj)
					}
				}
				return true
			})
			walk(x.Body, append(append([]types.Object(nil), guards...), conds...))
			if x.Else != nil {
				walk(x.Else, guards)
			}
			if x.Init != nil {
				walk(x.Init, guards)
			}
			return
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if obj := chanKeyOf(info, x.Args[0]); obj != nil {
					for _, g := range guards {
						if g == obj {
							marked[x] = true
						}
					}
				}
			}
		}
		// Generic recursion over children, preserving the guard stack.
		children(n, func(c ast.Node) { walk(c, guards) })
	}
	walk(body, nil)
	return marked
}

// children invokes f for each direct child node of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		f(c)
		return false
	})
}

// indexChanShape records make-sites and aliasing for channel-typed struct
// fields and package vars: a channel assigned from anything but a direct
// make(), or read into another variable, has endpoints the index cannot
// see, and the liveness rules skip it.
func indexChanShape(prog *Program, pf *progFunc) {
	info := pf.pkg.Info
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				// Multi-value assignment from one call: any channel LHS is
				// aliased.
				for _, lhs := range x.Lhs {
					if obj := trackedChanObj(prog, info, lhs); obj != nil {
						prog.chanFact(obj).aliased = true
					}
				}
				return true
			}
			for i, lhs := range x.Lhs {
				obj := trackedChanObj(prog, info, lhs)
				if obj == nil {
					continue
				}
				recordChanSource(prog, info, obj, x.Rhs[i])
			}
		case *ast.CompositeLit:
			// Struct literals: {field: make(...)} or {field: v}.
			for _, elt := range x.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				obj := objOf(info, key)
				if obj == nil || !isChanObj(obj) || !isTrackedChanScope(obj) {
					continue
				}
				recordChanSource(prog, info, obj, kv.Value)
			}
		case *ast.UnaryExpr, *ast.SendStmt, *ast.RangeStmt:
			return true
		}
		return true
	})

	// Aliasing reads: the channel value used outside send/recv/close/
	// range/comparison position (returned, passed as an argument, copied
	// into a local).
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			markChanValueUses(prog, info, x.Value) // sent elsewhere = alias
			return true
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
				return true // close(ch) is a tracked endpoint, not an alias
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
					return true // len/cap of a channel are harmless
				}
			}
			for _, a := range x.Args {
				markChanValueUses(prog, info, a)
			}
			return true
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				markChanValueUses(prog, info, r)
			}
			return true
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				// A tracked channel read into another variable escapes;
				// make() and receives were handled above.
				if _, isRecv := isRecvExpr(r); isRecv {
					continue
				}
				markChanValueUses(prog, info, r)
			}
			return true
		case *ast.ValueSpec:
			for _, v := range x.Values {
				markChanValueUses(prog, info, v)
			}
			return true
		}
		return true
	})
}

// isRecvExpr reports whether e is a channel receive, returning the
// channel expression.
func isRecvExpr(e ast.Expr) (ast.Expr, bool) {
	ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return nil, false
	}
	return ue.X, true
}

// markChanValueUses marks tracked channel objects appearing as values in
// e (bare identifiers / selectors, not receive operations) as aliased.
// Composite-literal keys name fields, not values, and are skipped.
func markChanValueUses(prog *Program, info *types.Info, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if kv, ok := n.(*ast.KeyValueExpr); ok {
			markChanValueUses(prog, info, kv.Value)
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		// A receive produces an element, not the channel: <-w.ch inside a
		// larger expression is a use of the channel as an endpoint, not an
		// alias of its value.
		if u, isRecv := ast.Unparen(expr).(*ast.UnaryExpr); isRecv && u.Op == token.ARROW {
			return false
		}
		switch ast.Unparen(expr).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if obj := trackedChanObj(prog, info, expr); obj != nil {
				prog.chanFact(obj).aliased = true
			}
			return false
		}
		return true
	})
}

// recordChanSource classifies the RHS a tracked channel is assigned from.
func recordChanSource(prog *Program, info *types.Info, obj types.Object, rhs ast.Expr) {
	f := prog.chanFact(obj)
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if ok {
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "make" {
			if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
				f.made = true
				if len(call.Args) >= 2 {
					// Unknown constant capacity counts as buffered; only a
					// literal 0 keeps the channel provably unbuffered.
					if bl, isLit := ast.Unparen(call.Args[1]).(*ast.BasicLit); !isLit || bl.Value != "0" {
						f.buffered = true
					}
				}
				return
			}
		}
	}
	if isNilIdent(info, rhs) {
		return
	}
	f.aliased = true
}

// isChanObj reports whether obj has channel type.
func isChanObj(obj types.Object) bool {
	if obj == nil {
		return false
	}
	_, ok := obj.Type().Underlying().(*types.Chan)
	return ok
}

// isTrackedChanScope limits the channel index to objects with module-wide
// identity: struct fields and package-level variables.
func isTrackedChanScope(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// trackedChanObj resolves e to a tracked channel object, or nil.
func trackedChanObj(prog *Program, info *types.Info, e ast.Expr) types.Object {
	obj := chanKeyOf(info, e)
	if obj == nil || !isChanObj(obj) || !isTrackedChanScope(obj) {
		return nil
	}
	return obj
}

// --- pass B: the lock dataflow -----------------------------------------

// lockState pairs the MAY-hold and MUST-hold sets.
type lockState struct {
	may, must lockKeySet
}

func (s lockState) clone() lockState {
	return lockState{may: s.may.clone(), must: s.must.clone()}
}

func (c *funcFactsCollector) run() {
	g, ok := buildCFG(c.pf.decl.Body)
	if !ok {
		// Unmodelled control flow (goto): collect sites with empty lock
		// context so the channel/atomic indexes stay complete.
		c.scanAtoms(c.pf.decl.Body, lockState{may: lockKeySet{}, must: lockKeySet{}}, nil)
		return
	}
	entry := make(map[*cfgBlock]lockState)
	type workItem struct {
		blk   *cfgBlock
		state lockState
	}
	work := []workItem{{blk: g.entry, state: lockState{may: lockKeySet{}, must: lockKeySet{}}}}
	rounds := 0
	for len(work) > 0 && rounds < 4096 {
		rounds++
		item := work[len(work)-1]
		work = work[:len(work)-1]
		state := item.state.clone()
		for _, at := range item.blk.atoms {
			state = c.transfer(at, state)
		}
		for _, e := range item.blk.succs {
			old, seen := entry[e.to]
			if !seen {
				entry[e.to] = state.clone()
				work = append(work, workItem{blk: e.to, state: state.clone()})
				continue
			}
			grew := old.may.union(state.may)
			shrunk := old.must.intersect(state.must)
			if grew || shrunk {
				entry[e.to] = old
				work = append(work, workItem{blk: e.to, state: old.clone()})
			}
		}
	}
}

// transfer processes one atom: record sites against the incoming state,
// then apply lock updates.
func (c *funcFactsCollector) transfer(at atom, state lockState) lockState {
	node := atomNode(at)
	if node == nil {
		return state
	}
	// Select headers: the comm statements are separate atoms in the clause
	// blocks; nothing to record at the header itself.
	if at.kind == atomSelect {
		return state
	}
	// Range atoms embed their whole body, which the CFG lays out
	// separately: look only at the range expression itself.
	if rs, ok := node.(*ast.RangeStmt); ok {
		c.recordRange(rs, state)
		return state
	}
	c.scanAtoms(node, state, at.stmt)
	return c.applyLockOps(node, at.stmt, state)
}

// recordRange records a range-over-channel as a receive site.
func (c *funcFactsCollector) recordRange(rs *ast.RangeStmt, state lockState) {
	if !isChanType(c.info, rs.X) {
		return
	}
	if obj := trackedChanObj(c.prog, c.info, rs.X); obj != nil {
		c.record(rs.X.Pos(), siteChanRecv, obj, accessSite{
			pos: rs.X.Pos(), fn: c.pf.obj, must: state.must.clone(), may: state.may.clone(),
			text: exprText(rs.X),
		}, "")
	}
}

// scanAtoms records the channel/atomic/call sites inside one atom node.
// Nested function literals are collected with an empty lock context (they
// run elsewhere); `go` payloads likewise.
func (c *funcFactsCollector) scanAtoms(node ast.Node, state lockState, stmt ast.Stmt) {
	detached := lockState{may: lockKeySet{}, must: lockKeySet{}}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.scanAtoms(x.Body, detached, nil)
			return false
		case *ast.GoStmt:
			// The payload runs on its own goroutine with no locks held.
			c.scanAtoms(x.Call, detached, nil)
			return false
		case *ast.RangeStmt:
			if x != node {
				// Nested range inside a detached body: record its receive
				// and keep walking its children (we are not in CFG land).
				c.recordRange(x, state)
			}
			return true
		case *ast.SendStmt:
			if obj := trackedChanObj(c.prog, c.info, x.Chan); obj != nil {
				c.record(x.Pos(), siteChanSend, obj, accessSite{
					pos: x.Pos(), fn: c.pf.obj, must: state.must.clone(), may: state.may.clone(),
					text: exprText(x.Chan), polled: c.polledSends[x] || c.polledSends[stmt],
				}, "")
			}
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if obj := trackedChanObj(c.prog, c.info, x.X); obj != nil {
					c.record(x.Pos(), siteChanRecv, obj, accessSite{
						pos: x.Pos(), fn: c.pf.obj, must: state.must.clone(), may: state.may.clone(),
						text: exprText(x.X),
					}, "")
				}
			}
			return true
		case *ast.CallExpr:
			c.recordCall(x, stmt, state)
			return true
		case *ast.SelectorExpr:
			c.recordPlainAccess(x, node, state)
			// Keep walking: the receiver chain may hold further accesses.
			return true
		}
		return true
	})
}

// recordCall handles close(), mutex ops (edges only; state change happens
// in applyLockOps) and module-internal callees (call-site records plus
// summary-propagated lock edges).
func (c *funcFactsCollector) recordCall(call *ast.CallExpr, stmt ast.Stmt, state lockState) {
	// close(ch)
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := objOf(c.info, id).(*types.Builtin); isBuiltin {
			if obj := trackedChanObj(c.prog, c.info, call.Args[0]); obj != nil {
				c.record(call.Pos(), siteChanClose, obj, accessSite{
					pos: call.Pos(), fn: c.pf.obj, must: state.must.clone(), may: state.may.clone(),
					text: exprText(call.Args[0]), guarded: c.guardedCloses[call],
				}, "")
			}
			return
		}
	}
	if name, recv, ok := mutexMethodOf(c.info, call); ok {
		if name == "Lock" || name == "RLock" {
			if key, disp, classed := lockClassOf(c.info, recv); classed && !inDeferStmt(stmt, call) {
				for from, fromDisp := range state.may {
					c.edge(lockEdge{from: from, fromDisp: fromDisp, to: key, toDisp: disp, pos: call.Pos(), fn: c.pf.obj})
				}
			}
		}
		return
	}
	callee := calleeOf(c.info, call)
	if callee == nil {
		return
	}
	fn, ok := callee.(*types.Func)
	if !ok {
		return
	}
	if _, inModule := c.prog.funcs[fn]; !inModule {
		return
	}
	c.prog.callSites[fn] = append(c.prog.callSites[fn], callSiteRec{caller: c.pf.obj, must: state.must.clone()})
	if sum := c.prog.sums[fn]; sum != nil && len(sum.locks) > 0 {
		for from, fromDisp := range state.may {
			for to, toDisp := range sum.locks {
				if to == from {
					// Only a fresh acquisition self-deadlocks; the callee
					// re-acquiring a class it provably released first is
					// the entered-locked protocol.
					if _, fresh := sum.freshLocks[to]; !fresh {
						continue
					}
				}
				c.edge(lockEdge{from: from, fromDisp: fromDisp, to: to, toDisp: toDisp, pos: call.Pos(), fn: c.pf.obj, via: fn.Name()})
			}
		}
	}
}

// recordPlainAccess records selector reads/writes of atomic-tracked
// fields that are not themselves atomic operations.
func (c *funcFactsCollector) recordPlainAccess(sel *ast.SelectorExpr, container ast.Node, state lockState) {
	if c.excluded[sel] {
		return
	}
	f := fieldObjOf(c.info, sel)
	if f == nil {
		return
	}
	if _, tracked := c.prog.atomicFields[f]; !tracked {
		return
	}
	write := isWriteTarget(container, sel)
	c.record(sel.Pos(), siteAtomicPlain, f, accessSite{
		pos: sel.Pos(), fn: c.pf.obj, must: state.must.clone(), may: state.may.clone(),
		text: exprText(sel), write: write,
	}, "")
}

// isWriteTarget reports whether sel is assigned to (or ++/--) within
// container.
func isWriteTarget(container ast.Node, sel *ast.SelectorExpr) bool {
	found := false
	ast.Inspect(container, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if ast.Unparen(lhs) == sel {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if ast.Unparen(x.X) == sel {
				found = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && ast.Unparen(x.X) == sel {
				found = true // address taken: treat as a write-capable alias
			}
		}
		return !found
	})
	return found
}

// applyLockOps updates the lock state for mutex calls in the atom.
func (c *funcFactsCollector) applyLockOps(node ast.Node, stmt ast.Stmt, state lockState) lockState {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv, ok := mutexMethodOf(c.info, call)
		if !ok {
			return true
		}
		key, disp, classed := lockClassOf(c.info, recv)
		if !classed {
			return true
		}
		switch name {
		case "Lock", "RLock":
			if !inDeferStmt(stmt, call) {
				state.may[key] = disp
				state.must[key] = disp
			}
		case "Unlock", "RUnlock":
			if !inDeferStmt(stmt, call) {
				delete(state.may, key)
				delete(state.must, key)
			}
		}
		return true
	})
	return state
}

// inDeferStmt reports whether call sits inside a defer statement.
func inDeferStmt(stmt ast.Stmt, call *ast.CallExpr) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	return ds.Call == call || containsNode(ds.Call, call)
}

// record registers one site, merging lock context across CFG revisits.
func (c *funcFactsCollector) record(pos token.Pos, kind siteKind, obj types.Object, site accessSite, via string) {
	if st, ok := c.sites[pos]; ok {
		st.site.may.union(site.may)
		st.site.must.intersect(site.must)
		return
	}
	c.sites[pos] = &siteState{site: site, kind: kind, obj: obj, via: via}
}

func (c *funcFactsCollector) edge(e lockEdge) {
	key := e.from + "|" + e.to + "|" + c.prog.fset.Position(e.pos).String()
	if c.edges[key] {
		return
	}
	c.edges[key] = true
	c.prog.lockEdges = append(c.prog.lockEdges, e)
}

// flush moves the deduped sites into the Program indexes in positional
// order.
func (c *funcFactsCollector) flush() {
	poss := make([]token.Pos, 0, len(c.sites))
	for p := range c.sites {
		poss = append(poss, p)
	}
	sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
	for _, p := range poss {
		st := c.sites[p]
		switch st.kind {
		case siteChanSend:
			f := c.prog.chanFact(st.obj)
			f.sends = append(f.sends, st.site)
		case siteChanRecv:
			f := c.prog.chanFact(st.obj)
			f.recvs = append(f.recvs, st.site)
		case siteChanClose:
			f := c.prog.chanFact(st.obj)
			f.closes = append(f.closes, st.site)
		case siteAtomicPlain:
			af := c.prog.atomicField(st.obj)
			af.plains = append(af.plains, st.site)
		}
	}

	// Atomic sites get their lock context from the same dataflow: rescan
	// the marked nodes. (They were excluded from plain recording.)
	c.flushAtomicSites()
}

// flushAtomicSites records the atomic access sites themselves with their
// lock context, using a second, cheaper dataflow query: the MUST set at
// the enclosing statement was already captured for call records; for
// simplicity the atomic sites reuse the plain-walk with empty-context
// fallback only when the CFG failed.
func (c *funcFactsCollector) flushAtomicSites() {
	g, ok := buildCFG(c.pf.decl.Body)
	var entryState func(pos token.Pos) (lockState, bool)
	if ok {
		states := c.atomStates(g)
		entryState = func(pos token.Pos) (lockState, bool) {
			best, found := lockState{}, false
			var bestPos token.Pos = -1
			for p, s := range states {
				if p <= pos && p > bestPos {
					best, bestPos, found = s, p, true
				}
			}
			return best, found
		}
	} else {
		entryState = func(token.Pos) (lockState, bool) { return lockState{}, false }
	}
	info := c.info
	ast.Inspect(c.pf.decl.Body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel || !c.excluded[sel] {
			return true
		}
		f := fieldObjOf(info, sel)
		if f == nil {
			return true
		}
		site := accessSite{pos: sel.Pos(), fn: c.pf.obj, must: lockKeySet{}, may: lockKeySet{}, text: exprText(sel)}
		if st, found := entryState(sel.Pos()); found {
			site.must = st.must.clone()
			site.may = st.may.clone()
		}
		af := c.prog.atomicField(f)
		af.atomics = append(af.atomics, site)
		return true
	})
}

// atomStates recomputes the per-atom entry lock state keyed by atom
// position — the same fixpoint as run(), kept separate so run() stays a
// single forward pass.
func (c *funcFactsCollector) atomStates(g *cfg) map[token.Pos]lockState {
	out := make(map[token.Pos]lockState)
	entry := make(map[*cfgBlock]lockState)
	type workItem struct {
		blk   *cfgBlock
		state lockState
	}
	work := []workItem{{blk: g.entry, state: lockState{may: lockKeySet{}, must: lockKeySet{}}}}
	rounds := 0
	for len(work) > 0 && rounds < 4096 {
		rounds++
		item := work[len(work)-1]
		work = work[:len(work)-1]
		state := item.state.clone()
		for _, at := range item.blk.atoms {
			if node := atomNode(at); node != nil {
				if st, seen := out[node.Pos()]; seen {
					st.may.union(state.may)
					st.must.intersect(state.must)
				} else {
					out[node.Pos()] = state.clone()
				}
				if _, isRange := node.(*ast.RangeStmt); !isRange {
					state = c.applyLockOps(node, at.stmt, state)
				}
			}
		}
		for _, e := range item.blk.succs {
			old, seen := entry[e.to]
			if !seen {
				entry[e.to] = state.clone()
				work = append(work, workItem{blk: e.to, state: state.clone()})
				continue
			}
			grew := old.may.union(state.may)
			shrunk := old.must.intersect(state.must)
			if grew || shrunk {
				entry[e.to] = old
				work = append(work, workItem{blk: e.to, state: old.clone()})
			}
		}
	}
	return out
}

// --- called-under-lock fixpoint ----------------------------------------

// computeGuardedFuncs derives, for every module function, the set of lock
// classes held at EVERY call site (transitively): the *Locked-helper
// convention made checkable. Functions with no recorded call sites
// (exported entry points, goroutine payloads) hold nothing.
func computeGuardedFuncs(prog *Program) {
	prog.guardedBy = make(map[*types.Func]lockKeySet)
	// Iterate to a fixpoint: guarded(f) = ∩ over call sites (site.must ∪
	// guarded(caller)). Monotone increasing from the empty set.
	for round := 0; round < 8; round++ {
		changed := false
		for _, pf := range prog.sortedFuncs() {
			fn := pf.obj
			sites := prog.callSites[fn]
			if len(sites) == 0 {
				continue
			}
			var inter lockKeySet
			for _, cs := range sites {
				eff := cs.must.clone()
				eff.union(prog.guardedBy[cs.caller])
				if inter == nil {
					inter = eff
				} else {
					inter.intersect(eff)
				}
			}
			if inter == nil {
				inter = lockKeySet{}
			}
			if !inter.equal(prog.guardedBy[fn]) {
				prog.guardedBy[fn] = inter
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// effectiveHeld returns the locks held at a site including the guarantees
// of the enclosing function's call sites.
func (p *Program) effectiveHeld(site accessSite) lockKeySet {
	eff := site.must.clone()
	eff.union(p.guardedBy[site.fn])
	return eff
}

// --- Program accessors --------------------------------------------------

func (p *Program) chanFact(obj types.Object) *chanFacts {
	f, ok := p.chans[obj]
	if !ok {
		f = &chanFacts{}
		p.chans[obj] = f
	}
	return f
}

func (p *Program) atomicField(obj types.Object) *atomicFacts {
	f, ok := p.atomicFields[obj]
	if !ok {
		f = &atomicFacts{}
		p.atomicFields[obj] = f
	}
	return f
}

// --- summary computation ------------------------------------------------

// lockSummarize computes the lock/blocking/close effects of one function:
// the mutex classes it may acquire, whether it can block unboundedly on
// the calling goroutine, and the tracked channels it closes — each
// propagated from callee summaries. Sites annotated //coollint:allow for
// the consuming analyzer are excluded, so a send documented as
// never-blocking does not poison every caller.
func lockSummarize(prog *Program, pf *progFunc, s *Summary) {
	info := pf.pkg.Info
	guardedCloses := markGuardedCloses(info, pf.decl.Body)

	// Comm statements of selects: the select header is the blocking unit,
	// not the individual operations.
	comm := make(map[ast.Node]bool)
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cl := range sel.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
					comm[cc.Comm] = true
				}
			}
		}
		return true
	})

	setBlock := func(pos token.Pos, desc string) {
		if s.blocks || prog.allowedAt(pf.pkg, pos, "lockhold") {
			return
		}
		s.blocks = true
		s.blockDesc = desc + " in " + pf.obj.Name()
	}

	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		if n != nil && comm[n] {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			// Spawned payloads block on their own goroutine.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				setBlock(x.Pos(), "select")
			}
		case *ast.SendStmt:
			setBlock(x.Pos(), "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				setBlock(x.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if isChanType(info, x.X) {
				setBlock(x.Pos(), "range over channel")
			}
		case *ast.CallExpr:
			if name, recv, ok := mutexMethodOf(info, x); ok {
				if name == "Lock" || name == "RLock" {
					if key, disp, classed := lockClassOf(info, recv); classed {
						s.locks[key] = disp
					}
				}
				return true
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if _, isB := objOf(info, id).(*types.Builtin); isB {
					if !guardedCloses[x] && !prog.allowedAt(pf.pkg, x.Pos(), "chanliveness") {
						if obj := trackedChanObj(prog, info, x.Args[0]); obj != nil {
							s.closes[obj] = true
						}
					}
					return true
				}
			}
			if callee := calleeOf(info, x); callee != nil && isMethod(callee, "sync", "Wait") {
				setBlock(x.Pos(), "sync Wait")
			}
		}
		return true
	})

	// Propagate from synchronously invoked callees only: a call inside a
	// `go` payload blocks (and locks, and closes) on its own goroutine.
	for _, c := range syncCallees(prog, pf) {
		cs := prog.sums[c]
		if cs == nil {
			continue
		}
		s.locks.union(cs.locks)
		if cs.blocks && !s.blocks {
			s.blocks = true
			s.blockDesc = cs.blockDesc
		}
		for obj := range cs.closes {
			s.closes[obj] = true
		}
	}

	lockFreshness(prog, pf, s)
}

// lockFreshness computes s.freshLocks: the lock classes with an
// acquisition not dominated by a same-class release. A must-released set
// flows forward through the CFG (intersection at merges); a Lock on a
// class outside the set is fresh, a Lock inside it is the unlock-then-
// relock pattern of functions entered holding the lock.
func lockFreshness(prog *Program, pf *progFunc, s *Summary) {
	s.freshLocks = lockKeySet{}
	g, ok := buildCFG(pf.decl.Body)
	if !ok {
		s.freshLocks.union(s.locks)
		return
	}
	info := pf.pkg.Info
	process := func(node ast.Node, stmt ast.Stmt, released lockKeySet) {
		ast.Inspect(node, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if name, recv, isMu := mutexMethodOf(info, x); isMu {
					key, disp, classed := lockClassOf(info, recv)
					if !classed || inDeferStmt(stmt, x) {
						return true
					}
					switch name {
					case "Lock", "RLock":
						if _, rel := released[key]; !rel {
							s.freshLocks[key] = disp
						}
						delete(released, key)
					case "Unlock", "RUnlock":
						released[key] = disp
					}
					return true
				}
				if fn, okF := calleeOf(info, x).(*types.Func); okF {
					if cs := prog.sums[fn]; cs != nil {
						for l, d := range cs.locks {
							if _, rel := released[l]; rel {
								continue
							}
							if _, fresh := cs.freshLocks[l]; fresh {
								s.freshLocks[l] = d
							}
						}
					}
				}
			}
			return true
		})
	}

	entry := make(map[*cfgBlock]lockKeySet)
	type workItem struct {
		blk   *cfgBlock
		state lockKeySet
	}
	work := []workItem{{blk: g.entry, state: lockKeySet{}}}
	for rounds := 0; len(work) > 0 && rounds < 4096; rounds++ {
		item := work[len(work)-1]
		work = work[:len(work)-1]
		state := item.state.clone()
		for _, at := range item.blk.atoms {
			if at.kind == atomSelect {
				continue
			}
			if node := atomNode(at); node != nil {
				if _, isRange := node.(*ast.RangeStmt); isRange {
					continue
				}
				process(node, at.stmt, state)
			}
		}
		for _, e := range item.blk.succs {
			old, seen := entry[e.to]
			if !seen {
				entry[e.to] = state.clone()
				work = append(work, workItem{blk: e.to, state: state.clone()})
				continue
			}
			if old.intersect(state) {
				work = append(work, workItem{blk: e.to, state: old.clone()})
			}
		}
	}
}

// syncCallees returns the module-internal functions called from pf's body
// outside `go` statements, in source order.
func syncCallees(prog *Program, pf *progFunc) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(pf.decl.Body, func(n ast.Node) bool {
		if _, isGo := n.(*ast.GoStmt); isGo {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := calleeOf(pf.pkg.Info, call).(*types.Func); ok {
			if _, inModule := prog.funcs[fn]; inModule && !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
		}
		return true
	})
	return out
}

// allowedAt reports whether pos carries a //coollint:allow annotation for
// the named analyzer, using a lazily built per-file index. Summaries use
// this so annotated sites do not propagate their effects to callers.
func (p *Program) allowedAt(pkg *Package, pos token.Pos, name string) bool {
	tf := pkg.Fset.File(pos)
	if tf == nil {
		return false
	}
	if p.annots == nil {
		p.annots = make(map[*token.File]map[int]map[string]bool)
	}
	lines, ok := p.annots[tf]
	if !ok {
		for _, f := range pkg.Files {
			if pkg.Fset.File(f.Pos()) == tf {
				lines = annotationsFor(pkg.Fset, f, pkg.Src[tf.Name()])
				break
			}
		}
		if lines == nil {
			lines = map[int]map[string]bool{}
		}
		p.annots[tf] = lines
	}
	line := tf.Line(pos)
	return lines[line][name] || lines[line]["*"]
}


package analysis

import (
	"go/ast"
	"go/types"
)

// ObsConst requires metric and span names handed to internal/obs to be
// built without function calls: names assembled with fmt.Sprintf (or any
// call) in a hot path allocate per invocation and defeat the registry's
// interning. Constant expressions and constant concatenation
// ("prefix" + suffixConst, or concatenating string variables) pass; any
// call inside the name argument is reported.
//
// Checked sinks (first string argument):
//
//	(*obs.Registry).Counter / Gauge / Histogram
//	(*obs.Tracer).StartSpan / StartChild
//	obs.Snapshot.Counter / Gauge / Histogram / Rate
//
// The Snapshot lookups are matched by the same method names; holding the
// read side to the same discipline keeps metric names greppable constants
// on both ends.
var ObsConst = &Analyzer{
	Name: "obsconst",
	Doc:  "metric and span names must not be built with function calls",
	Run:  runObsConst,
}

// obsSinks maps method names of internal/obs types to the index of their
// name argument.
var obsSinks = map[string]int{
	"Counter":    0,
	"Gauge":      0,
	"Histogram":  0,
	"StartSpan":  0,
	"StartChild": 2,
	"Rate":       0,
}

func runObsConst(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			argIdx, ok := obsSinkOf(pass.Info, call)
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			name := call.Args[argIdx]
			if bad := firstCallIn(pass.Info, name); bad != nil {
				pass.Reportf(bad.Pos(),
					"metric/span name built with a call; use a constant (names are interned once, calls run per invocation)")
			}
			return true
		})
	}
}

// obsSinkOf reports whether call targets an internal/obs name sink and
// which argument carries the name.
func obsSinkOf(info *types.Info, call *ast.CallExpr) (int, bool) {
	callee := calleeOf(info, call)
	fn, ok := callee.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "cool/internal/obs" {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	idx, ok := obsSinks[fn.Name()]
	return idx, ok
}

// firstCallIn returns the first call expression inside e that is not a
// type conversion, or nil when e is call-free.
func firstCallIn(info *types.Info, e ast.Expr) *ast.CallExpr {
	var bad *ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Conversions like qos.Level(x).String()? A conversion itself is
		// fine; a method call is not. Only conversions are exempt.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		bad = call
		return false
	})
	return bad
}

package orb_test

import (
	"testing"
	"time"

	"cool/internal/cdr"
	"cool/internal/qos"
)

func TestPendingPollOnewayImmediatelyDone(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "inproc")
	p, err := obj.InvokeDeferred("notify", nil)
	if err != nil {
		t.Fatal(err)
	}
	// A deferred two-way on "notify" completes; Poll converges quickly.
	deadline := time.After(2 * time.Second)
	for !p.Poll() {
		select {
		case <-deadline:
			t.Fatal("Poll never true")
		case <-time.After(time.Millisecond):
		}
	}
	if err := p.Wait(nil); err != nil {
		t.Fatal(err)
	}
	// Wait after completion is idempotent.
	if err := p.Wait(nil); err != nil {
		t.Fatal(err)
	}
	// Cancel after completion is a no-op.
	if err := p.Cancel(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelColocatedIsNoop(t *testing.T) {
	serverORB, _, _, _ := newEnv(t, nil, "inproc")
	obj := serverORB.Resolve(serverORB.RefFor("IDL:test/Echo:1.0", []byte("obj-1")))
	p, err := obj.InvokeDeferred("slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cancel(); err != nil {
		t.Fatal(err)
	}
	// The colocated dispatch still completes; Wait returns its result.
	if err := p.Wait(nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeAsyncErrorDelivery(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "inproc")
	done := make(chan error, 1)
	err := obj.InvokeAsync("no-such-op", nil, func(out *cdr.Decoder, err error) {
		done <- err
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("async callback should receive the exception")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("callback never invoked")
	}
}

func TestSetQoSParameterValidation(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "inproc")
	bad := qos.Set{{Type: qos.Latency, Request: 10, Max: 5, Min: 0}}
	if err := obj.SetQoSParameter(bad); err == nil {
		t.Fatal("invalid set accepted")
	}
	dup := qos.Set{
		{Type: qos.Throughput, Request: 1, Max: qos.NoLimit},
		{Type: qos.Throughput, Request: 2, Max: qos.NoLimit},
	}
	if err := obj.SetQoSParameter(dup); err == nil {
		t.Fatal("duplicate dimension accepted")
	}
}

func TestInvokeAfterServerRestartRebinds(t *testing.T) {
	// Connection loss must surface an error, and a later invocation on the
	// same proxy must rebind once the endpoint is back.
	serverORB, clientORB, _, obj := newEnv(t, nil, "tcp")
	if got := invokeEcho(t, obj, "before"); got != "before" {
		t.Fatalf("echo = %q", got)
	}
	serverORB.Shutdown()
	err := obj.Invoke("echo", func(enc *cdr.Encoder) { enc.WriteString("x") }, nil)
	if err == nil {
		t.Fatal("invocation against dead server should fail")
	}
	_ = clientORB
}

package orb

import (
	"runtime"
	"sync"
	"time"

	"cool/internal/obs"
	"cool/internal/transport"
)

// frameWriter coalesces one connection's outbound frames into vectored
// writes using a combiner scheme: there is no dedicated flusher goroutine.
// The first sender to find the writer idle becomes the flusher and keeps
// draining the queue — including frames other senders enqueued while it
// held the transport — until the queue is empty. A lone caller therefore
// pays exactly one write per frame (no batching delay is ever added),
// while N concurrent callers collapse their frames into a few writev
// calls (transport.BatchChannel); transports without the capability fall
// back to a WriteMessage loop and still benefit from the single combiner
// taking the channel's write lock once per drain.
//
// Ownership: send takes ownership of the frame unconditionally (enqueueing
// is the handoff — see DESIGN §9). Frames are recycled to the shared arena
// after the transport write, or on whatever error path drops them, so a
// caller must not touch a frame after handing it to send.
type frameWriter struct {
	ch    transport.Channel
	batch transport.BatchChannel // nil when the transport lacks vectored writes
	sizeH *obs.Histogram         // flush batch sizes; may be nil
	onErr func(error)            // fired once, after the first flush failure
	load  func() int             // callers-in-flight hint; nil disables the gather yield

	mu      sync.Mutex
	q       [][]byte // frames awaiting the next flush
	spare   [][]byte // second queue array, swapped in while a batch drains
	writing bool     // a combiner currently owns the transport
	err     error    // sticky: set by the failing flush or by fail()
	fired   bool     // onErr already delivered
	idle    chan struct{} // non-nil while waitIdle is parked; closed on idle
}

func newFrameWriter(ch transport.Channel, sizeH *obs.Histogram, load func() int, onErr func(error)) *frameWriter {
	w := &frameWriter{ch: ch, sizeH: sizeH, load: load, onErr: onErr}
	w.batch, _ = transport.AsBatchChannel(ch)
	return w
}

// send enqueues one frame for transmission, taking ownership of it. When no
// flush is in progress the calling goroutine becomes the combiner and
// drains the queue before returning; otherwise the frame rides along with
// the active combiner's next batch and send returns immediately (a later
// write failure then surfaces through onErr, not through this return).
func (w *frameWriter) send(frame []byte) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		transport.PutBuffer(frame)
		return err
	}
	w.q = append(w.q, frame)
	if w.writing {
		w.mu.Unlock()
		return nil
	}
	w.writing = true
	if w.load != nil && w.load() > 1 {
		// Gather point. Writev only coalesces frames that are queued when
		// the combiner drains, and a fast non-blocking write never yields
		// the processor — on few cores every batch would be size one. With
		// peers in flight (the hint counts this caller too, so a lone
		// caller skips this and keeps its zero-delay write), step off the
		// processor once: runnable peers enqueue into this batch and their
		// frames share one vectored write.
		w.mu.Unlock()
		runtime.Gosched()
		w.mu.Lock()
	}
	return w.flush()
}

// flush is the combiner loop: repeatedly swap out the queued batch, write
// it, recycle the frames, and go idle once the queue stays empty. Entered
// holding w.mu with w.writing set; returns unlocked.
//
//coollint:hotpath combiner drain; every outbound frame crosses it
func (w *frameWriter) flush() error {
	for {
		if w.err != nil {
			// fail() poisoned the writer while a batch was in flight; the
			// combiner owns the drop of anything queued since.
			err := w.err
			drop := w.q
			w.q = nil
			w.goIdleLocked()
			w.mu.Unlock()
			releaseFrames(drop)
			return err
		}
		if len(w.q) == 0 {
			w.goIdleLocked()
			w.mu.Unlock()
			return nil
		}
		batch := w.q
		if w.spare != nil {
			w.q = w.spare[:0]
			w.spare = nil
		} else {
			w.q = nil
		}
		w.mu.Unlock()

		if w.sizeH != nil {
			w.sizeH.Observe(uint64(len(batch)))
		}
		err := w.writeBatch(batch)

		w.mu.Lock()
		w.spare = batch[:0]
		if err != nil {
			if w.err == nil {
				w.err = err
			}
			drop := w.q
			w.q = nil
			w.goIdleLocked()
			fire := !w.fired
			w.fired = true
			w.mu.Unlock()
			releaseFrames(drop)
			if fire && w.onErr != nil {
				w.onErr(err)
			}
			return err
		}
	}
}

// writeBatch transmits every frame of batch and recycles them, clearing
// the entries so the retained backing array cannot pin recycled buffers.
func (w *frameWriter) writeBatch(batch [][]byte) error {
	if w.batch != nil {
		err := w.batch.WriteMessages(batch)
		releaseFrames(batch)
		return err
	}
	var err error
	for i, f := range batch {
		if err == nil {
			err = w.ch.WriteMessage(f)
		}
		transport.PutBuffer(f)
		batch[i] = nil
	}
	return err
}

// fail poisons the writer: subsequent sends return err with their frame
// recycled, and queued frames are dropped. When a combiner is mid-flush it
// observes the poison on its next loop and performs the drop itself (the
// in-flight batch is never touched — the transport is still using it).
// Idempotent; the first error sticks. fail never invokes onErr (its
// callers are the teardown paths onErr would call into).
func (w *frameWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	if w.writing {
		w.mu.Unlock()
		return
	}
	drop := w.q
	w.q = nil
	w.goIdleLocked()
	w.mu.Unlock()
	releaseFrames(drop)
}

// goIdleLocked marks the writer idle and wakes waitIdle. Caller holds w.mu.
func (w *frameWriter) goIdleLocked() {
	w.writing = false
	if w.idle != nil {
		close(w.idle)
		w.idle = nil
	}
}

// waitIdle blocks until no flush is in progress and the queue is empty (or
// the writer failed), bounded by timeout. Shutdown uses it so "request
// completed" (reply enqueued) extends to "reply bytes handed to the
// transport" before the connection is closed.
func (w *frameWriter) waitIdle(timeout time.Duration) bool {
	w.mu.Lock()
	if !w.writing && len(w.q) == 0 {
		w.mu.Unlock()
		return true
	}
	if w.idle == nil {
		w.idle = make(chan struct{})
	}
	ch := w.idle
	w.mu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
		return false
	}
}

// releaseFrames recycles every non-nil frame and clears the entries.
func releaseFrames(frames [][]byte) {
	for i, f := range frames {
		if f != nil {
			transport.PutBuffer(f)
		}
		frames[i] = nil
	}
}

package orb

import (
	"context"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/obs"
	"cool/internal/qos"
	"cool/internal/transport"
)

// acceptLoop serves one listener until shutdown.
func (o *ORB) acceptLoop(l transport.Listener, codec Codec) {
	defer o.wg.Done()
	for {
		ch, err := l.Accept()
		if err != nil {
			if o.isShutdown() {
				return
			}
			// A failed handshake (e.g. a rejected Da CaPo configuration)
			// must not stop the endpoint.
			continue
		}
		o.wg.Add(1)
		go o.serveConn(ch, codec)
	}
}

func (o *ORB) isShutdown() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.shutdown
}

// serverConnState tracks per-connection request cancellation and the
// number of requests currently dispatched off the read loop (the flush
// writer's gather hint: replies only coalesce while several are due).
type serverConnState struct {
	active   atomic.Int32
	mu       sync.Mutex
	canceled map[uint32]bool
}

func (s *serverConnState) cancel(id uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.canceled == nil {
		s.canceled = make(map[uint32]bool)
	}
	s.canceled[id] = true
}

// takeCanceled reports and clears the cancel mark for a request id.
func (s *serverConnState) takeCanceled(id uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.canceled[id] {
		delete(s.canceled, id)
		return true
	}
	return false
}

// serverTask is one request handed to the dispatch worker pool. A plain
// value (not a closure) so queueing a task does not allocate.
type serverTask struct {
	o     *ORB
	ctx   context.Context
	codec Codec
	w     *frameWriter
	m     *giop.Message
	state *serverConnState
	wg    *sync.WaitGroup
}

func (t serverTask) run() {
	defer t.wg.Done()
	t.o.completeRequest(t.ctx, t.codec, t.w, t.m, t.state)
	t.state.active.Add(-1)
	t.o.endRequest()
}

// dispatchWorkers sizes the shared worker pool for non-inline request
// dispatch.
func dispatchWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// startDispatchers lazily starts the bounded dispatch worker pool. Workers
// exit when the queue is closed (after Shutdown has drained all server
// loops). They are deliberately not wg-tracked: Shutdown closes the queue
// only after wg.Wait, so tracking them would deadlock.
func (o *ORB) startDispatchers() {
	o.dispatchQ = make(chan serverTask, dispatchWorkers())
	for i := 0; i < dispatchWorkers(); i++ {
		go func() {
			for t := range o.dispatchQ {
				t.run()
			}
		}()
	}
}

// serveConn runs the GIOP server loop for one transport channel. Requests
// for inline-dispatch servants are handled on this goroutine (no hop, no
// allocation); everything else goes to the bounded worker pool, spilling
// into a fresh goroutine when the pool is saturated so a slow servant can
// never stall the read loop (cancellation depends on it staying live).
func (o *ORB) serveConn(ch transport.Channel, codec Codec) {
	defer o.wg.Done()
	defer ch.Close()
	// One context per connection, cancelled by Shutdown (after the drain
	// deadline expires) or when this serve loop exits; servants observe it
	// via Invocation.Ctx.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// All replies leave through one flush-coalescing writer, so concurrent
	// dispatch workers batch their reply frames into vectored writes. A
	// write failure closes the channel, which stops this read loop.
	state := &serverConnState{}
	w := newFrameWriter(ch, o.ins.serverFlushBatch, func() int { return int(state.active.Load()) }, func(error) { ch.Close() })
	if !o.trackAccepted(ch, codec, cancel, w) {
		return
	}
	defer o.untrackAccepted(ch)
	var dispatch sync.WaitGroup
	defer dispatch.Wait()
	for {
		frame, err := ch.ReadMessage()
		if err != nil {
			return // EOF or transport failure: drop the connection
		}
		m, err := codecUnmarshal(codec, frame)
		if err != nil {
			// Malformed frame: answer MessageError and close (§2 GIOP
			// error handling; the COOL protocol mirrors it). The frame was
			// not adopted by a message, so recycle it here.
			transport.PutBuffer(frame)
			if mef, merr := codec.MarshalMessageError(); merr == nil {
				mlen := len(mef)
				if w.send(mef) == nil {
					o.ins.msgOut(giop.MsgMessageError, mlen)
				}
			}
			return
		}
		o.ins.msgIn(m.Header.Type, len(frame))
		switch m.Header.Type {
		case giop.MsgRequest:
			if !o.beginRequest() {
				// Draining: refuse so the peer can fail over or retry.
				o.rejectRequest(codec, w, m, giop.Transient(minorDraining))
				continue
			}
			if e, ok := o.adapter.lookup(m.Request.ObjectKey); ok && e.inline {
				o.completeRequest(ctx, codec, w, m, state)
				o.endRequest()
				continue
			}
			dispatch.Add(1)
			state.active.Add(1)
			t := serverTask{o: o, ctx: ctx, codec: codec, w: w, m: m, state: state, wg: &dispatch}
			select {
			case o.dispatchQ <- t:
			default:
				go t.run()
			}
		case giop.MsgCancelRequest:
			state.cancel(m.CancelRequest.RequestID)
			codecRelease(codec, m)
		case giop.MsgLocateRequest:
			reply := o.handleLocate(codec, m)
			codecRelease(codec, m)
			if reply != nil {
				flen := len(reply)
				if w.send(reply) == nil {
					o.ins.msgOut(giop.MsgLocateReply, flen)
				}
			}
		case giop.MsgCloseConnection:
			codecRelease(codec, m)
			return
		case giop.MsgMessageError:
			codecRelease(codec, m)
			return
		default:
			// Replies and LocateReplies are client-bound; a server
			// receiving one indicates a confused peer.
			codecRelease(codec, m)
			return
		}
	}
}

// completeRequest dispatches one request and hands the reply (if any) to
// the connection's flush-coalescing writer, which owns the frame from then
// on. It owns m.
func (o *ORB) completeRequest(ctx context.Context, codec Codec, w *frameWriter, m *giop.Message, state *serverConnState) {
	reply := o.handleRequest(ctx, codec, m, state)
	codecRelease(codec, m)
	if reply == nil {
		return
	}
	flen := len(reply)
	if w.send(reply) == nil {
		o.ins.msgOut(giop.MsgReply, flen)
	}
}

// minorDraining is the TRANSIENT minor code for requests refused because
// the ORB is draining for Shutdown.
const minorDraining = 1

// rejectRequest answers a request with a system exception without
// dispatching it (used during drain). It owns m.
func (o *ORB) rejectRequest(codec Codec, w *frameWriter, m *giop.Message, exc *giop.SystemException) {
	if m.Request.ResponseExpected {
		o.ins.exception(exc.Name())
		if frame, err := marshalReply(codec, m, m.Request.RequestID, giop.ReplySystemException, exc.Encode); err == nil {
			flen := len(frame)
			if w.send(frame) == nil {
				o.ins.msgOut(giop.MsgReply, flen)
			}
		}
	}
	codecRelease(codec, m)
}

// replyHdrPool recycles Reply headers: the header escapes through the
// Codec interface and would otherwise be heap-allocated per reply.
var replyHdrPool = sync.Pool{New: func() any { return new(giop.ReplyHeader) }}

// marshalReply encodes a reply with a pooled header.
func marshalReply(codec Codec, m *giop.Message, id uint32, status giop.ReplyStatus, body func(*cdr.Encoder)) ([]byte, error) {
	hdr := replyHdrPool.Get().(*giop.ReplyHeader)
	*hdr = giop.ReplyHeader{RequestID: id, Status: status}
	frame, err := codec.MarshalReply(m, hdr, body)
	replyHdrPool.Put(hdr)
	return frame, err
}

// invPool recycles Invocation records handed to servants; see the
// Invocation lifetime note on Servant.Invoke.
var invPool = sync.Pool{New: func() any { return new(Invocation) }}

// failReply records a system exception outcome and marshals the exception
// reply (nil for oneway requests).
func (o *ORB) failReply(codec Codec, m *giop.Message, span obs.Span, exc *giop.SystemException) []byte {
	o.ins.exception(exc.Name())
	outcome := "error"
	if exc.IsNACK() {
		outcome = "nack"
	}
	span.End(outcome, exc.Name())
	if !m.Request.ResponseExpected {
		return nil
	}
	frame, err := marshalReply(codec, m, m.Request.RequestID, giop.ReplySystemException, exc.Encode)
	if err != nil {
		return nil
	}
	return frame
}

// handleRequest performs the server side of Figure 4: unmarshal QoS and
// method, negotiate, dispatch, marshal results. It returns the reply frame,
// or nil when no reply is due (oneway or canceled requests). The returned
// frame is pooled; the caller recycles it after writing. ctx reaches the
// servant as Invocation.Ctx.
//
//coollint:hotpath server dispatch spine
func (o *ORB) handleRequest(ctx context.Context, codec Codec, m *giop.Message, state *serverConnState) []byte {
	req := m.Request
	ins := o.ins
	stats := ins.server(req.Operation)
	stats.requests.Inc()
	// Join the client's trace when the Request carries a trace service
	// context; otherwise the server span starts a trace of its own.
	var span obs.Span
	if trace, parent, ok := giop.DecodeTraceContext(req.ServiceContext); ok {
		span = ins.tracer.StartChild(obs.TraceID(trace), obs.TraceID(parent), stats.spanName)
	} else {
		span = ins.tracer.StartSpan(stats.spanName)
	}

	e, ok := o.adapter.lookup(req.ObjectKey)
	if !ok {
		if target, fwd := o.adapter.lookupForward(req.ObjectKey); fwd {
			frame, err := marshalReply(codec, m, req.RequestID, giop.ReplyLocationForward, target.Encode)
			if err != nil {
				return o.failReply(codec, m, span, giop.MarshalException())
			}
			span.End("forward", "")
			return frame
		}
		return o.failReply(codec, m, span, giop.ObjectNotExist())
	}

	// Bilateral QoS negotiation: the object implementation either supports
	// the requested QoS or NACKs (Figure 3).
	granted := qos.Set(nil)
	if len(req.QoS) > 0 {
		var err error
		granted, err = qos.Negotiate(req.QoS, e.capability)
		if err != nil {
			ins.qosOutcome(mServerQoS, "nack")
			var ne *qos.NegotiationError
			if errors.As(err, &ne) {
				return o.failReply(codec, m, span, giop.NoResources(uint32(len(ne.Failed))))
			}
			return o.failReply(codec, m, span, giop.NoResources(0))
		}
		if granted.Equal(req.QoS) {
			ins.qosOutcome(mServerQoS, "ack")
		} else {
			ins.qosOutcome(mServerQoS, "downgrade")
		}
	}

	inv := invPool.Get().(*Invocation)
	inv.Operation = req.Operation
	inv.QoS = granted
	// The invocation only lives until Invoke returns below, well inside the
	// message's lifetime, and is scrubbed before re-pooling.
	inv.Args = m.BodyDecoder() //coollint:allow framealias
	inv.Principal = req.Principal
	inv.Ctx = ctx
	dispatchStart := time.Now()
	body, err := e.servant.Invoke(inv)
	dispatchDur := time.Since(dispatchStart)
	stats.dispatch.ObserveDurationTrace(dispatchDur, span.Trace)
	*inv = Invocation{}
	invPool.Put(inv)
	if bound := ins.serverSlowBound(req.QoS); bound > 0 && dispatchDur > bound {
		c := obs.SlowCall{
			Side: "server", Op: stats.op,
			Peer:  string(req.Principal), //coollint:allocok post-bound-blown slow-call record
			Bound: bound, Dur: dispatchDur, Trace: span.Trace,
		}
		if len(req.QoS) > 0 {
			c.QoS = req.QoS.String()
		}
		ins.slowCall(c)
	}

	if state != nil && state.takeCanceled(req.RequestID) {
		span.End("canceled", "")
		return nil // client abandoned the request
	}
	if !req.ResponseExpected {
		if err == nil {
			span.End("ok", "")
		} else {
			span.End("error", err.Error())
		}
		return nil
	}

	switch {
	case err == nil:
		var writer func(*cdr.Encoder)
		if body != nil {
			writer = (func(*cdr.Encoder))(body)
		}
		frame, merr := marshalReply(codec, m, req.RequestID, giop.ReplyNoException, writer)
		if merr != nil {
			return o.failReply(codec, m, span, giop.MarshalException())
		}
		span.End("ok", "")
		return frame
	default:
		var sysExc *giop.SystemException
		if errors.As(err, &sysExc) {
			return o.failReply(codec, m, span, sysExc)
		}
		var userErr *UserError
		if errors.As(err, &userErr) {
			frame, merr := marshalReply(codec, m, req.RequestID, giop.ReplyUserException, func(enc *cdr.Encoder) { //coollint:allocok user-exception reply, failure outcome
				enc.WriteString(userErr.ID)
				var data []byte
				if userErr.Body != nil {
					data = cdr.EncodeEncapsulation(cdr.BigEndian, userErr.Body)
				} else {
					data = cdr.EncodeEncapsulation(cdr.BigEndian, func(*cdr.Encoder) {})
				}
				enc.WriteEncapsulation(data)
			})
			if merr != nil {
				return o.failReply(codec, m, span, giop.MarshalException())
			}
			ins.exception(userErr.ID)
			span.End("user_exception", userErr.ID)
			return frame
		}
		return o.failReply(codec, m, span, giop.UnknownException())
	}
}

// handleLocate answers a LocateRequest. The returned frame is pooled; the
// caller recycles it after writing.
func (o *ORB) handleLocate(codec Codec, m *giop.Message) []byte {
	status := giop.LocateUnknownObject
	var body func(*cdr.Encoder)
	if _, ok := o.adapter.lookup(m.LocateRequest.ObjectKey); ok {
		status = giop.LocateObjectHere
	} else if target, fwd := o.adapter.lookupForward(m.LocateRequest.ObjectKey); fwd {
		status = giop.LocateObjectForward
		body = target.Encode
	}
	frame, err := codec.MarshalLocateReply(m, m.LocateRequest.RequestID, status, body)
	if err != nil {
		return nil
	}
	return frame
}

// dispatchColocated runs a marshalled request through the local object
// adapter without touching a transport: COOL's colocation optimisation.
// The request is still fully CDR-marshalled, so semantics (and marshalling
// bugs) match the remote path exactly. It consumes frame; the returned
// reply frame is pooled and owned by the caller. The caller's context
// reaches the servant as Invocation.Ctx.
func (o *ORB) dispatchColocated(ctx context.Context, codec Codec, frame []byte) ([]byte, error) {
	m, err := codecUnmarshal(codec, frame)
	if err != nil {
		transport.PutBuffer(frame)
		return nil, err
	}
	if m.Header.Type != giop.MsgRequest {
		codecRelease(codec, m)
		return nil, errors.New("orb: colocated dispatch expects a Request")
	}
	reply := o.handleRequest(ctx, codec, m, nil)
	responseExpected := m.Request.ResponseExpected
	codecRelease(codec, m)
	if reply == nil {
		if !responseExpected {
			return nil, nil
		}
		return nil, io.ErrUnexpectedEOF
	}
	return reply, nil
}

package orb

import (
	"errors"
	"io"
	"sync"
	"time"

	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/obs"
	"cool/internal/qos"
	"cool/internal/transport"
)

// acceptLoop serves one listener until shutdown.
func (o *ORB) acceptLoop(l transport.Listener, codec Codec) {
	defer o.wg.Done()
	for {
		ch, err := l.Accept()
		if err != nil {
			if o.isShutdown() {
				return
			}
			// A failed handshake (e.g. a rejected Da CaPo configuration)
			// must not stop the endpoint.
			continue
		}
		o.wg.Add(1)
		go o.serveConn(ch, codec)
	}
}

func (o *ORB) isShutdown() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.shutdown
}

// serverConnState tracks per-connection request cancellation.
type serverConnState struct {
	mu       sync.Mutex
	canceled map[uint32]bool
}

func (s *serverConnState) cancel(id uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.canceled == nil {
		s.canceled = make(map[uint32]bool)
	}
	s.canceled[id] = true
}

// takeCanceled reports and clears the cancel mark for a request id.
func (s *serverConnState) takeCanceled(id uint32) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.canceled[id] {
		delete(s.canceled, id)
		return true
	}
	return false
}

// serveConn runs the GIOP server loop for one transport channel.
func (o *ORB) serveConn(ch transport.Channel, codec Codec) {
	defer o.wg.Done()
	defer ch.Close()
	if !o.trackAccepted(ch) {
		return
	}
	defer o.untrackAccepted(ch)
	state := &serverConnState{}
	var dispatch sync.WaitGroup
	defer dispatch.Wait()
	for {
		frame, err := ch.ReadMessage()
		if err != nil {
			return // EOF or transport failure: drop the connection
		}
		m, err := codec.Unmarshal(frame)
		if err != nil {
			// Malformed frame: answer MessageError and close (§2 GIOP
			// error handling; the COOL protocol mirrors it).
			if mef, merr := codec.MarshalMessageError(); merr == nil {
				if ch.WriteMessage(mef) == nil {
					o.ins.msgOut(giop.MsgMessageError, len(mef))
				}
			}
			return
		}
		o.ins.msgIn(m.Header.Type, len(frame))
		switch m.Header.Type {
		case giop.MsgRequest:
			dispatch.Add(1)
			go func(m *giop.Message) {
				defer dispatch.Done()
				reply := o.handleRequest(codec, m, state)
				if reply != nil {
					if ch.WriteMessage(reply) == nil {
						o.ins.msgOut(giop.MsgReply, len(reply))
					}
				}
			}(m)
		case giop.MsgCancelRequest:
			state.cancel(m.CancelRequest.RequestID)
		case giop.MsgLocateRequest:
			if reply := o.handleLocate(codec, m); reply != nil {
				if ch.WriteMessage(reply) == nil {
					o.ins.msgOut(giop.MsgLocateReply, len(reply))
				}
			}
		case giop.MsgCloseConnection:
			return
		case giop.MsgMessageError:
			return
		default:
			// Replies and LocateReplies are client-bound; a server
			// receiving one indicates a confused peer.
			return
		}
	}
}

// handleRequest performs the server side of Figure 4: unmarshal QoS and
// method, negotiate, dispatch, marshal results. It returns the reply frame,
// or nil when no reply is due (oneway or canceled requests).
func (o *ORB) handleRequest(codec Codec, m *giop.Message, state *serverConnState) []byte {
	req := m.Request
	ins := o.ins
	stats := ins.server(req.Operation)
	stats.requests.Inc()
	// Join the client's trace when the Request carries a trace service
	// context; otherwise the server span starts a trace of its own.
	var span obs.Span
	if trace, parent, ok := giop.DecodeTraceContext(req.ServiceContext); ok {
		span = ins.tracer.StartChild(obs.TraceID(trace), obs.TraceID(parent), "server:"+req.Operation)
	} else {
		span = ins.tracer.StartSpan("server:" + req.Operation)
	}

	fail := func(exc *giop.SystemException) []byte {
		ins.exception(exc.Name())
		outcome := "error"
		if exc.IsNACK() {
			outcome = "nack"
		}
		span.End(outcome, exc.Name())
		if !req.ResponseExpected {
			return nil
		}
		frame, err := codec.MarshalReply(m, &giop.ReplyHeader{
			RequestID: req.RequestID,
			Status:    giop.ReplySystemException,
		}, exc.Encode)
		if err != nil {
			return nil
		}
		return frame
	}

	e, ok := o.adapter.lookup(req.ObjectKey)
	if !ok {
		if target, fwd := o.adapter.lookupForward(req.ObjectKey); fwd {
			frame, err := codec.MarshalReply(m, &giop.ReplyHeader{
				RequestID: req.RequestID,
				Status:    giop.ReplyLocationForward,
			}, target.Encode)
			if err != nil {
				return fail(giop.MarshalException())
			}
			span.End("forward", "")
			return frame
		}
		return fail(giop.ObjectNotExist())
	}

	// Bilateral QoS negotiation: the object implementation either supports
	// the requested QoS or NACKs (Figure 3).
	granted := qos.Set(nil)
	if len(req.QoS) > 0 {
		var err error
		granted, err = qos.Negotiate(req.QoS, e.capability)
		if err != nil {
			ins.qosOutcome(mServerQoS, "nack")
			var ne *qos.NegotiationError
			if errors.As(err, &ne) {
				return fail(giop.NoResources(uint32(len(ne.Failed))))
			}
			return fail(giop.NoResources(0))
		}
		if granted.Equal(req.QoS) {
			ins.qosOutcome(mServerQoS, "ack")
		} else {
			ins.qosOutcome(mServerQoS, "downgrade")
		}
	}

	inv := &Invocation{
		Operation: req.Operation,
		QoS:       granted,
		Args:      m.BodyDecoder(),
		Principal: req.Principal,
	}
	dispatchStart := time.Now()
	body, err := e.servant.Invoke(inv)
	stats.dispatch.ObserveDuration(time.Since(dispatchStart))

	if state != nil && state.takeCanceled(req.RequestID) {
		span.End("canceled", "")
		return nil // client abandoned the request
	}
	if !req.ResponseExpected {
		if err == nil {
			span.End("ok", "")
		} else {
			span.End("error", err.Error())
		}
		return nil
	}

	switch {
	case err == nil:
		var writer func(*cdr.Encoder)
		if body != nil {
			writer = func(enc *cdr.Encoder) { body(enc) }
		}
		frame, merr := codec.MarshalReply(m, &giop.ReplyHeader{
			RequestID: req.RequestID,
			Status:    giop.ReplyNoException,
		}, writer)
		if merr != nil {
			return fail(giop.MarshalException())
		}
		span.End("ok", "")
		return frame
	default:
		var sysExc *giop.SystemException
		if errors.As(err, &sysExc) {
			return fail(sysExc)
		}
		var userErr *UserError
		if errors.As(err, &userErr) {
			frame, merr := codec.MarshalReply(m, &giop.ReplyHeader{
				RequestID: req.RequestID,
				Status:    giop.ReplyUserException,
			}, func(enc *cdr.Encoder) {
				enc.WriteString(userErr.ID)
				var data []byte
				if userErr.Body != nil {
					data = cdr.EncodeEncapsulation(cdr.BigEndian, userErr.Body)
				} else {
					data = cdr.EncodeEncapsulation(cdr.BigEndian, func(*cdr.Encoder) {})
				}
				enc.WriteEncapsulation(data)
			})
			if merr != nil {
				return fail(giop.MarshalException())
			}
			ins.exception(userErr.ID)
			span.End("user_exception", userErr.ID)
			return frame
		}
		return fail(giop.UnknownException())
	}
}

// handleLocate answers a LocateRequest.
func (o *ORB) handleLocate(codec Codec, m *giop.Message) []byte {
	status := giop.LocateUnknownObject
	var body func(*cdr.Encoder)
	if _, ok := o.adapter.lookup(m.LocateRequest.ObjectKey); ok {
		status = giop.LocateObjectHere
	} else if target, fwd := o.adapter.lookupForward(m.LocateRequest.ObjectKey); fwd {
		status = giop.LocateObjectForward
		body = target.Encode
	}
	frame, err := codec.MarshalLocateReply(m, m.LocateRequest.RequestID, status, body)
	if err != nil {
		return nil
	}
	return frame
}

// dispatchColocated runs a marshalled request through the local object
// adapter without touching a transport: COOL's colocation optimisation.
// The request is still fully CDR-marshalled, so semantics (and marshalling
// bugs) match the remote path exactly.
func (o *ORB) dispatchColocated(codec Codec, frame []byte) ([]byte, error) {
	m, err := codec.Unmarshal(frame)
	if err != nil {
		return nil, err
	}
	if m.Header.Type != giop.MsgRequest {
		return nil, errors.New("orb: colocated dispatch expects a Request")
	}
	reply := o.handleRequest(codec, m, nil)
	if reply == nil {
		if !m.Request.ResponseExpected {
			return nil, nil
		}
		return nil, io.ErrUnexpectedEOF
	}
	return reply, nil
}

package orb

import (
	"cool/internal/cdr"
	"cool/internal/giop"
)

// Codec is the generic message protocol layer of COOL (Figure 1): the ORB
// core speaks to it through this interface so message protocols are
// exchangeable — GIOP (the default, mandated by CORBA interoperability)
// and the proprietary, more compact COOL protocol both implement it.
//
// Decoded messages share the giop.Message representation regardless of
// wire protocol; codecs whose bodies are standalone CDR streams leave the
// message's body offset at zero.
type Codec interface {
	// Name is the protocol identifier carried in IOR profiles
	// ("giop", "cool").
	Name() string
	// MarshalRequest encodes a request. Codecs choose their own QoS
	// signalling (GIOP: version 9.9 header field) based on hdr.QoS.
	MarshalRequest(hdr *giop.RequestHeader, body func(*cdr.Encoder)) ([]byte, error)
	// MarshalReply encodes a reply to a request decoded as m (codecs may
	// need the request's version or flags).
	MarshalReply(req *giop.Message, hdr *giop.ReplyHeader, body func(*cdr.Encoder)) ([]byte, error)
	// MarshalCancelRequest encodes a cancellation.
	MarshalCancelRequest(requestID uint32) ([]byte, error)
	// MarshalLocateRequest encodes a locate query.
	MarshalLocateRequest(requestID uint32, objectKey []byte) ([]byte, error)
	// MarshalLocateReply encodes a locate answer.
	MarshalLocateReply(req *giop.Message, requestID uint32, status giop.LocateStatus, body func(*cdr.Encoder)) ([]byte, error)
	// MarshalMessageError encodes the protocol-error message.
	MarshalMessageError() ([]byte, error)
	// Unmarshal decodes one frame.
	Unmarshal(frame []byte) (*giop.Message, error)
}

// GIOPCodec is the standard message protocol: GIOP 1.0, upgraded to the
// QoS-extended 9.9 whenever a request carries QoS parameters (§4.2).
type GIOPCodec struct{}

var _ Codec = GIOPCodec{}

// Name returns "giop".
func (GIOPCodec) Name() string { return "giop" }

// MarshalRequest implements Codec.
func (GIOPCodec) MarshalRequest(hdr *giop.RequestHeader, body func(*cdr.Encoder)) ([]byte, error) {
	version := giop.V1_0
	if len(hdr.QoS) > 0 {
		version = giop.VQoS
	}
	return giop.MarshalRequest(version, cdr.BigEndian, hdr, body)
}

// MarshalReply implements Codec, echoing the request's GIOP version.
func (GIOPCodec) MarshalReply(req *giop.Message, hdr *giop.ReplyHeader, body func(*cdr.Encoder)) ([]byte, error) {
	version := giop.V1_0
	if req != nil && req.Header.Version.Supported() {
		version = req.Header.Version
	}
	return giop.MarshalReply(version, cdr.BigEndian, hdr, body)
}

// MarshalCancelRequest implements Codec.
func (GIOPCodec) MarshalCancelRequest(requestID uint32) ([]byte, error) {
	return giop.MarshalCancelRequest(giop.V1_0, cdr.BigEndian, requestID)
}

// MarshalLocateRequest implements Codec.
func (GIOPCodec) MarshalLocateRequest(requestID uint32, objectKey []byte) ([]byte, error) {
	return giop.MarshalLocateRequest(giop.V1_0, cdr.BigEndian, requestID, objectKey)
}

// MarshalLocateReply implements Codec.
func (GIOPCodec) MarshalLocateReply(req *giop.Message, requestID uint32, status giop.LocateStatus, body func(*cdr.Encoder)) ([]byte, error) {
	version := giop.V1_0
	if req != nil && req.Header.Version.Supported() {
		version = req.Header.Version
	}
	return giop.MarshalLocateReply(version, cdr.BigEndian, requestID, status, body)
}

// MarshalMessageError implements Codec.
func (GIOPCodec) MarshalMessageError() ([]byte, error) {
	return giop.MarshalMessageError(giop.V1_0, cdr.BigEndian)
}

// Unmarshal implements Codec.
func (GIOPCodec) Unmarshal(frame []byte) (*giop.Message, error) {
	return giop.Unmarshal(frame)
}

package orb

import (
	"cool/internal/cdr"
	"cool/internal/giop"
)

// Codec is the generic message protocol layer of COOL (Figure 1): the ORB
// core speaks to it through this interface so message protocols are
// exchangeable — GIOP (the default, mandated by CORBA interoperability)
// and the proprietary, more compact COOL protocol both implement it.
//
// Decoded messages share the giop.Message representation regardless of
// wire protocol; codecs whose bodies are standalone CDR streams leave the
// message's body offset at zero.
type Codec interface {
	// Name is the protocol identifier carried in IOR profiles
	// ("giop", "cool").
	Name() string
	// MarshalRequest encodes a request. Codecs choose their own QoS
	// signalling (GIOP: version 9.9 header field) based on hdr.QoS.
	MarshalRequest(hdr *giop.RequestHeader, body func(*cdr.Encoder)) ([]byte, error)
	// MarshalReply encodes a reply to a request decoded as m (codecs may
	// need the request's version or flags).
	MarshalReply(req *giop.Message, hdr *giop.ReplyHeader, body func(*cdr.Encoder)) ([]byte, error)
	// MarshalCancelRequest encodes a cancellation.
	MarshalCancelRequest(requestID uint32) ([]byte, error)
	// MarshalLocateRequest encodes a locate query.
	MarshalLocateRequest(requestID uint32, objectKey []byte) ([]byte, error)
	// MarshalLocateReply encodes a locate answer.
	MarshalLocateReply(req *giop.Message, requestID uint32, status giop.LocateStatus, body func(*cdr.Encoder)) ([]byte, error)
	// MarshalMessageError encodes the protocol-error message.
	MarshalMessageError() ([]byte, error)
	// MarshalCloseConnection encodes the orderly-shutdown notification the
	// server sends before closing a connection (GIOP CloseConnection).
	MarshalCloseConnection() ([]byte, error)
	// Unmarshal decodes one frame.
	Unmarshal(frame []byte) (*giop.Message, error)
}

// pooledCodec is an optional extension of Codec for protocols whose
// decoded messages and frame buffers can be recycled. The ORB hot paths
// probe for it with a type assertion: when present, frames read from a
// transport are decoded into pooled messages and handed back (message and
// frame together) via ReleaseMessage once the ORB is done with them,
// honouring the transport.Channel buffer-ownership contract without
// changing the Codec interface.
type pooledCodec interface {
	// UnmarshalPooled decodes one frame into a pooled message that takes
	// ownership of the frame on success (on error the caller keeps it).
	UnmarshalPooled(frame []byte) (*giop.Message, error)
	// ReleaseMessage recycles a message from UnmarshalPooled and its frame.
	ReleaseMessage(m *giop.Message)
}

// codecUnmarshal decodes via the pooled path when the codec supports it.
//
//coollint:acquires message
func codecUnmarshal(c Codec, frame []byte) (*giop.Message, error) {
	if pc, ok := c.(pooledCodec); ok {
		return pc.UnmarshalPooled(frame)
	}
	return c.Unmarshal(frame)
}

// codecRelease recycles m (and its frame) if the codec pools messages.
// Safe to call with any message, including nil.
//
//coollint:releases
func codecRelease(c Codec, m *giop.Message) {
	if pc, ok := c.(pooledCodec); ok {
		pc.ReleaseMessage(m)
	}
}

// GIOPCodec is the standard message protocol: GIOP 1.0, upgraded to the
// QoS-extended 9.9 whenever a request carries QoS parameters (§4.2).
type GIOPCodec struct{}

var (
	_ Codec       = GIOPCodec{}
	_ pooledCodec = GIOPCodec{}
)

// UnmarshalPooled implements pooledCodec.
func (GIOPCodec) UnmarshalPooled(frame []byte) (*giop.Message, error) {
	return giop.UnmarshalPooled(frame)
}

// ReleaseMessage implements pooledCodec.
func (GIOPCodec) ReleaseMessage(m *giop.Message) {
	giop.ReleaseMessage(m)
}

// Name returns "giop".
func (GIOPCodec) Name() string { return "giop" }

// MarshalRequest implements Codec.
func (GIOPCodec) MarshalRequest(hdr *giop.RequestHeader, body func(*cdr.Encoder)) ([]byte, error) {
	return giop.MarshalRequest(giopRequestVersion(hdr), cdr.BigEndian, hdr, body)
}

// MarshalReply implements Codec, echoing the request's GIOP version.
func (GIOPCodec) MarshalReply(req *giop.Message, hdr *giop.ReplyHeader, body func(*cdr.Encoder)) ([]byte, error) {
	version := giop.V1_0
	if req != nil && req.Header.Version.Supported() {
		version = req.Header.Version
	}
	return giop.MarshalReply(version, cdr.BigEndian, hdr, body)
}

// MarshalCancelRequest implements Codec.
func (GIOPCodec) MarshalCancelRequest(requestID uint32) ([]byte, error) {
	return giop.MarshalCancelRequest(giop.V1_0, cdr.BigEndian, requestID)
}

// MarshalLocateRequest implements Codec.
func (GIOPCodec) MarshalLocateRequest(requestID uint32, objectKey []byte) ([]byte, error) {
	return giop.MarshalLocateRequest(giop.V1_0, cdr.BigEndian, requestID, objectKey)
}

// MarshalLocateReply implements Codec.
func (GIOPCodec) MarshalLocateReply(req *giop.Message, requestID uint32, status giop.LocateStatus, body func(*cdr.Encoder)) ([]byte, error) {
	version := giop.V1_0
	if req != nil && req.Header.Version.Supported() {
		version = req.Header.Version
	}
	return giop.MarshalLocateReply(version, cdr.BigEndian, requestID, status, body)
}

// MarshalMessageError implements Codec.
func (GIOPCodec) MarshalMessageError() ([]byte, error) {
	return giop.MarshalMessageError(giop.V1_0, cdr.BigEndian)
}

// MarshalCloseConnection implements Codec.
func (GIOPCodec) MarshalCloseConnection() ([]byte, error) {
	return giop.MarshalCloseConnection(giop.V1_0, cdr.BigEndian)
}

// Unmarshal implements Codec.
func (GIOPCodec) Unmarshal(frame []byte) (*giop.Message, error) {
	return giop.Unmarshal(frame)
}

// MarshalRequest selects the QoS-extended version when the header carries
// either a decoded QoS set or a pre-encoded qos_params fragment.
func giopRequestVersion(hdr *giop.RequestHeader) giop.Version {
	if len(hdr.QoS) > 0 || len(hdr.QoSFrag) > 0 {
		return giop.VQoS
	}
	return giop.V1_0
}

package orb

import (
	"strings"
	"testing"
	"time"

	"cool/internal/giop"
	"cool/internal/transport"
)

// TestUnexpectedMessageTearsDownWithType is the regression test for the
// readLoop use-after-release: the teardown error must name the offending
// message type, captured before the pooled message is recycled.
func TestUnexpectedMessageTearsDownWithType(t *testing.T) {
	mgr := transport.NewInprocManager()
	ln, err := mgr.Listen("conn-test")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	accepted := make(chan transport.Channel, 1)
	go func() {
		ch, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- ch
	}()

	clientCh, err := mgr.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	conn := newClientConn(clientCh, GIOPCodec{}, nil, nil, 0)
	defer conn.close()

	serverCh := <-accepted
	defer serverCh.Close()

	// A Request flowing server->client is a protocol violation; the read
	// loop must tear the connection down and name the message type.
	frame, err := giop.MarshalRequest(giop.V1_0, false, &giop.RequestHeader{
		RequestID: 1,
		Operation: "bogus",
		ObjectKey: []byte("k"),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := serverCh.WriteMessage(frame); err != nil {
		t.Fatal(err)
	}
	giop.ReleaseFrame(frame)

	select {
	case <-conn.done:
	case <-time.After(5 * time.Second):
		t.Fatal("connection did not tear down on unexpected message")
	}
	got := conn.errNow()
	if got == nil || !strings.Contains(got.Error(), "unexpected") || !strings.Contains(got.Error(), "Request") {
		t.Fatalf("teardown error = %v, want unexpected-Request protocol error", got)
	}
}

package orb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/ior"
	"cool/internal/obs"
	"cool/internal/qos"
)

// ErrNoUsableProfile reports that no profile of the reference can satisfy
// the requested QoS (the binding-time counterpart of the NACK).
var ErrNoUsableProfile = errors.New("orb: no profile satisfies the requested QoS")

// Object is a client proxy for a remote (or colocated) object: the
// hand-rolled equivalent of what generated stubs wrap. Generated stubs
// (cmd/chic) delegate to Invoke/InvokeOneway and re-export
// SetQoSParameter, matching the paper's extended Chic templates (§4.1).
type Object struct {
	orb *ORB

	mu       sync.Mutex
	ref      ior.Ref
	req      qos.Set
	binding  *binding
	explicit bool

	colocatedID atomic.Uint32
}

// binding is an established path to the object implementation.
type binding struct {
	colocated bool
	conn      *clientConn
	codec     Codec
	profile   ior.Profile
	granted   qos.Set
	// reqKey identifies the connection-cache slot this binding uses.
	reqKey string
}

// Ref returns the object reference the proxy currently uses.
func (o *Object) Ref() ior.Ref {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ref
}

// SetQoSParameter states the client's QoS requirements for subsequent
// invocations, turning the implicit binding into an explicit one (§4.1).
// Calling it once yields per-binding QoS; calling it before every
// invocation yields per-method QoS. A nil set returns to standard GIOP.
//
// The binding itself is (re-)established lazily at the next invocation, as
// in COOL, so an unsatisfiable requirement surfaces as an exception there.
func (o *Object) SetQoSParameter(params qos.Set) error {
	if err := params.Validate(); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.req.Equal(params) && o.binding != nil {
		return nil // unchanged: keep the binding
	}
	o.req = params.Clone()
	o.explicit = true
	o.binding = nil // force re-negotiation on next use
	return nil
}

// QoS returns the currently requested QoS set.
func (o *Object) QoS() qos.Set {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.req.Clone()
}

// GrantedQoS returns the QoS granted by the transport for the current
// binding (nil when unbound or plain GIOP).
func (o *Object) GrantedQoS() qos.Set {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.binding == nil {
		return nil
	}
	return o.binding.granted.Clone()
}

// Colocated reports whether the current binding short-circuits through the
// local object adapter. It binds if necessary.
func (o *Object) Colocated() (bool, error) {
	b, err := o.bind()
	if err != nil {
		return false, err
	}
	return b.colocated, nil
}

// bind establishes (or reuses) the binding for the current QoS
// requirements: profile selection, colocation check, connection setup with
// unilateral transport negotiation.
func (o *Object) bind() (*binding, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if b := o.binding; b != nil && (b.colocated || !b.conn.isClosed()) {
		return b, nil
	}
	profile, ok := o.ref.Select(o.req)
	if !ok {
		return nil, fmt.Errorf("%w: %v for %v", ErrNoUsableProfile, o.req, o.ref)
	}
	codec, err := o.orb.codec(profile.Protocol)
	if err != nil {
		return nil, err
	}
	if o.orb.isLocal(profile) {
		b := &binding{colocated: true, codec: codec, profile: profile, granted: o.req.Clone()}
		o.binding = b
		return b, nil
	}
	conn, granted, err := o.orb.getConn(profile, o.req)
	if err != nil {
		o.recordNegotiation(profile, "bind_failure", err.Error())
		return nil, err
	}
	b := &binding{conn: conn, codec: codec, profile: profile, granted: granted, reqKey: o.req.Key()}
	o.binding = b
	result := "ack"
	if !granted.Equal(o.req) {
		result = "downgrade"
	}
	detail := ""
	if o.orb.ins.tracer.Enabled() {
		detail = o.req.String() + " -> " + granted.String()
	}
	o.recordNegotiation(profile, result, detail)
	return b, nil
}

// recordNegotiation counts and emits the outcome of the unilateral
// (client↔transport) QoS negotiation performed at binding time. Bindings
// without QoS requirements are plain GIOP and not negotiation outcomes.
func (o *Object) recordNegotiation(profile ior.Profile, result, detail string) {
	if len(o.req) == 0 {
		return
	}
	o.orb.ins.qosOutcome(mClientQoS, result)
	o.orb.ins.tracer.Emit(obs.Event{
		Kind:    "qos.negotiation",
		Name:    profile.Transport + "://" + profile.Address,
		Outcome: result,
		Detail:  detail,
	})
}

// abortBinding tears the binding down after a QoS NACK: the negotiated
// transport connection is useless for this QoS, so it is closed and its
// resources released ("the operation will be aborted if the requested QoS
// cannot be supported", Figure 4).
func (o *Object) abortBinding(b *binding) {
	o.invalidate()
	if b == nil || b.colocated {
		return
	}
	o.orb.dropConn(b.profile, b.reqKey, b.conn)
}

// invalidate drops the cached binding (after connection loss or forward).
func (o *Object) invalidate() {
	o.mu.Lock()
	o.binding = nil
	o.mu.Unlock()
}

// buildRequest marshals a Request frame for the bound profile. The codec
// carries qos_params whenever requirements are set (GIOP switches to 9.9,
// the COOL protocol to its QoS-extended framing).
func (o *Object) buildRequest(b *binding, id uint32, op string, expectReply bool, span obs.Span, args func(*cdr.Encoder)) ([]byte, error) {
	hdr := &giop.RequestHeader{
		RequestID:        id,
		ResponseExpected: expectReply,
		ObjectKey:        b.profile.ObjectKey,
		Operation:        op,
		QoS:              o.QoS(),
		Principal:        o.orb.principal,
	}
	if !span.Trace.IsZero() {
		// Carry the trace context so the server-side span joins this trace.
		// Codecs without service-context support (coolproto) drop it.
		hdr.ServiceContext = []giop.ServiceContext{
			giop.TraceContext(uint64(span.Trace), uint64(span.ID)),
		}
	}
	return b.codec.MarshalRequest(hdr, args)
}

// result carries a deferred reply.
type result struct {
	m   *giop.Message
	err error
}

// start issues a request and returns a future for its reply.
func (o *Object) start(op string, args func(*cdr.Encoder), expectReply bool) (*Pending, error) {
	b, err := o.bind()
	if err != nil {
		return nil, err
	}
	ins := o.orb.ins
	stats := ins.client(op)
	stats.calls.Inc()
	span := ins.tracer.StartSpan("client:" + op)
	if b.colocated {
		id := o.colocatedID.Add(1)
		frame, err := o.buildRequest(b, id, op, expectReply, span, args)
		if err != nil {
			span.End("error", "marshal failed")
			return nil, err
		}
		fut := make(chan result, 1)
		go func() {
			reply, err := o.orb.dispatchColocated(b.codec, frame)
			if err != nil {
				fut <- result{err: err}
				return
			}
			if reply == nil {
				fut <- result{}
				return
			}
			m, err := b.codec.Unmarshal(reply)
			fut <- result{m: m, err: err}
		}()
		return &Pending{o: o, fut: fut, oneway: !expectReply, span: span, stats: stats}, nil
	}

	if !expectReply {
		id := b.conn.nextID.Add(1)
		frame, err := o.buildRequest(b, id, op, false, span, args)
		if err != nil {
			span.End("error", "marshal failed")
			return nil, err
		}
		if err := b.conn.send(frame); err != nil {
			o.invalidate()
			span.End("error", "send failed")
			return nil, err
		}
		ins.msgOut(giop.MsgRequest, len(frame))
		fut := make(chan result, 1)
		fut <- result{}
		return &Pending{o: o, fut: fut, oneway: true, span: span, stats: stats}, nil
	}

	id, replyCh, err := b.conn.register()
	if err != nil {
		o.invalidate()
		span.End("error", "connection closed")
		return nil, err
	}
	frame, err := o.buildRequest(b, id, op, true, span, args)
	if err != nil {
		b.conn.unregister(id)
		span.End("error", "marshal failed")
		return nil, err
	}
	if err := b.conn.send(frame); err != nil {
		o.invalidate()
		span.End("error", "send failed")
		return nil, err
	}
	ins.msgOut(giop.MsgRequest, len(frame))
	fut := make(chan result, 1)
	go func() {
		m, err := b.conn.await(replyCh)
		fut <- result{m: m, err: err}
	}()
	return &Pending{o: o, b: b, id: id, fut: fut, span: span, stats: stats}, nil
}

// decodeReply maps a Reply message onto the caller's decoder or an error.
func decodeReply(m *giop.Message, out func(*cdr.Decoder) error) error {
	switch m.Reply.Status {
	case giop.ReplyNoException:
		if out == nil {
			return nil
		}
		return out(m.BodyDecoder())
	case giop.ReplySystemException:
		exc, err := giop.DecodeSystemException(m.BodyDecoder())
		if err != nil {
			return fmt.Errorf("orb: undecodable system exception: %w", err)
		}
		return exc
	case giop.ReplyUserException:
		dec := m.BodyDecoder()
		id, err := dec.ReadString()
		if err != nil {
			return fmt.Errorf("orb: undecodable user exception: %w", err)
		}
		data, err := dec.ReadOctetSeq()
		if err != nil {
			return fmt.Errorf("orb: undecodable user exception body: %w", err)
		}
		return &giop.UserException{ID: id, Data: append([]byte(nil), data...)}
	case giop.ReplyLocationForward:
		ref, err := ior.Decode(m.BodyDecoder())
		if err != nil {
			return fmt.Errorf("orb: undecodable forward reference: %w", err)
		}
		return &forwardError{ref: ref}
	default:
		return fmt.Errorf("orb: unknown reply status %v", m.Reply.Status)
	}
}

// forwardError carries a LOCATION_FORWARD target internally.
type forwardError struct{ ref ior.Ref }

func (e *forwardError) Error() string { return "orb: location forward" }

// Invoke performs a synchronous two-way invocation (the `call` mode of
// §5.2): marshal, send, wait for the Reply, unmarshal. out may be nil for
// void results; QoS NACKs surface as *giop.SystemException with
// IsNACK() == true.
func (o *Object) Invoke(op string, args func(*cdr.Encoder), out func(*cdr.Decoder) error) error {
	const maxForwards = 3
	for attempt := 0; ; attempt++ {
		p, err := o.start(op, args, true)
		if err != nil {
			return err
		}
		err = p.Wait(out)
		var fwd *forwardError
		if errors.As(err, &fwd) && attempt < maxForwards {
			o.mu.Lock()
			o.ref = fwd.ref
			o.binding = nil
			o.mu.Unlock()
			continue
		}
		return err
	}
}

// InvokeOneway performs a one-way invocation (the `send` mode): the request
// is sent without waiting for any reply.
func (o *Object) InvokeOneway(op string, args func(*cdr.Encoder)) error {
	_, err := o.start(op, args, false)
	return err
}

// InvokeDeferred starts a deferred-synchronous invocation (the `defer`
// mode): the returned Pending is acted upon later via Poll/Wait/Cancel.
func (o *Object) InvokeDeferred(op string, args func(*cdr.Encoder)) (*Pending, error) {
	return o.start(op, args, true)
}

// InvokeAsync starts an asynchronous invocation and calls notify with the
// outcome on a separate goroutine (the `notify` mode).
func (o *Object) InvokeAsync(op string, args func(*cdr.Encoder), notify func(out *cdr.Decoder, err error)) error {
	p, err := o.start(op, args, true)
	if err != nil {
		return err
	}
	go func() {
		err := p.Wait(nil)
		if err != nil {
			notify(nil, err)
			return
		}
		notify(p.bodyDecoder(), nil)
	}()
	return nil
}

// Locate asks the server whether it serves this object (GIOP
// LocateRequest/LocateReply). Colocated bindings answer from the local
// object adapter.
func (o *Object) Locate() (bool, error) {
	b, err := o.bind()
	if err != nil {
		return false, err
	}
	if b.colocated {
		_, ok := o.orb.adapter.lookup(b.profile.ObjectKey)
		return ok, nil
	}
	id, replyCh, err := b.conn.register()
	if err != nil {
		o.invalidate()
		return false, err
	}
	frame, err := b.codec.MarshalLocateRequest(id, b.profile.ObjectKey)
	if err != nil {
		b.conn.unregister(id)
		return false, err
	}
	if err := b.conn.send(frame); err != nil {
		o.invalidate()
		return false, err
	}
	o.orb.ins.msgOut(giop.MsgLocateRequest, len(frame))
	m, err := b.conn.await(replyCh)
	if err != nil {
		o.invalidate()
		return false, err
	}
	if m.LocateReply == nil {
		return false, fmt.Errorf("orb: expected LocateReply, got %v", m.Header.Type)
	}
	return m.LocateReply.Status == giop.LocateObjectHere, nil
}

// Pending is an in-flight deferred invocation.
type Pending struct {
	o      *Object
	b      *binding
	id     uint32
	fut    chan result
	oneway bool
	span   obs.Span
	stats  *clientOp

	mu       sync.Mutex
	res      *result
	dead     bool
	recorded bool
}

// record finishes the invocation's observability exactly once: end-to-end
// latency into the per-operation histogram and the client span's outcome.
func (p *Pending) record(outcome, detail string) {
	p.mu.Lock()
	already := p.recorded
	p.recorded = true
	p.mu.Unlock()
	if already {
		return
	}
	if p.stats != nil {
		p.stats.latency.ObserveDuration(time.Since(p.span.Start))
	}
	p.span.End(outcome, detail)
}

// Poll reports whether the reply has arrived (always true for oneway).
func (p *Pending) Poll() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.res != nil {
		return true
	}
	select {
	case r := <-p.fut:
		p.res = &r
		return true
	default:
		return false
	}
}

// Wait blocks for the reply and decodes it like Invoke.
func (p *Pending) Wait(out func(*cdr.Decoder) error) error {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return errors.New("orb: request was canceled")
	}
	if p.res == nil {
		r := <-p.fut
		p.res = &r
	}
	r := *p.res
	p.mu.Unlock()
	if r.err != nil {
		p.o.invalidate()
		p.record("error", r.err.Error())
		return r.err
	}
	if r.m == nil {
		p.record("ok", "") // oneway completion
		return nil
	}
	err := decodeReply(r.m, out)
	var se *giop.SystemException
	if errors.As(err, &se) && se.IsNACK() {
		p.o.orb.ins.qosOutcome(mClientQoS, "nack")
		p.record("nack", se.Name())
		p.o.abortBinding(p.b)
		return err
	}
	switch {
	case err == nil:
		p.record("ok", "")
	case se != nil:
		p.record("error", se.Name())
	default:
		var ue *giop.UserException
		var fwd *forwardError
		switch {
		case errors.As(err, &ue):
			p.record("user_exception", ue.ID)
		case errors.As(err, &fwd):
			p.record("forward", "")
		default:
			p.record("error", err.Error())
		}
	}
	return err
}

// bodyDecoder exposes the reply body after a successful Wait(nil).
func (p *Pending) bodyDecoder() *cdr.Decoder {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.res == nil || p.res.m == nil {
		return cdr.NewDecoder(nil, cdr.BigEndian)
	}
	return p.res.m.BodyDecoder()
}

// Cancel abandons the invocation (the `cancel` mode): a CancelRequest is
// sent so the server suppresses the reply; the local slot is released.
// Canceling a completed or colocated request is a no-op returning nil.
func (p *Pending) Cancel() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.res != nil || p.dead || p.oneway || p.b == nil || p.b.colocated {
		return nil
	}
	p.dead = true
	p.b.conn.unregister(p.id)
	frame, err := p.b.codec.MarshalCancelRequest(p.id)
	if err != nil {
		return err
	}
	if err := p.b.conn.send(frame); err != nil {
		return err
	}
	p.o.orb.ins.msgOut(giop.MsgCancelRequest, len(frame))
	return nil
}

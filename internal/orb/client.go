package orb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cool/internal/cdr"
	"cool/internal/giop"
	"cool/internal/ior"
	"cool/internal/obs"
	"cool/internal/qos"
	"cool/internal/transport"
)

// ErrNoUsableProfile reports that no profile of the reference can satisfy
// the requested QoS (the binding-time counterpart of the NACK).
var ErrNoUsableProfile = errors.New("orb: no profile satisfies the requested QoS")

// ErrCanceled reports Wait on a cancelled deferred invocation.
var ErrCanceled = errors.New("orb: request was canceled")

// Backoff schedule for retry-safe failures (see retryableError): capped
// exponential with ±25% jitter.
const (
	maxRetries = 6
	retryBase  = 20 * time.Millisecond
	retryCap   = 500 * time.Millisecond
)

// retryDelay returns the backoff before retry attempt (zero-based).
func retryDelay(attempt int) time.Duration {
	d := retryBase << attempt
	if d > retryCap {
		d = retryCap
	}
	return d - d/4 + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleepCtx sleeps for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// timeoutError surfaces a deadline expiry both as the CORBA TIMEOUT
// system exception (errors.As) and as context.DeadlineExceeded
// (errors.Is), so callers on either idiom recognise it.
type timeoutError struct{ exc *giop.SystemException }

func (e *timeoutError) Error() string { return e.exc.Error() }
func (e *timeoutError) Unwrap() []error {
	return []error{error(e.exc), context.DeadlineExceeded}
}

// deadlineFor merges the context deadline with the binding's QoS delay
// bound: a Latency parameter is a one-way bound in microseconds, so a
// two-way invocation is granted twice that before it times out. The zero
// time means unbounded.
func deadlineFor(ctx context.Context, b *binding) time.Time {
	var dl time.Time
	if lat := b.reqQoS.Value(qos.Latency, 0); lat > 0 {
		dl = time.Now().Add(2 * time.Duration(lat) * time.Microsecond)
	}
	if cdl, ok := ctx.Deadline(); ok && (dl.IsZero() || cdl.Before(dl)) {
		dl = cdl
	}
	return dl
}

// Object is a client proxy for a remote (or colocated) object: the
// hand-rolled equivalent of what generated stubs wrap. Generated stubs
// (cmd/chic) delegate to Invoke/InvokeOneway and re-export
// SetQoSParameter, matching the paper's extended Chic templates (§4.1).
type Object struct {
	orb *ORB

	mu       sync.Mutex
	ref      ior.Ref
	req      qos.Set
	binding  *binding
	explicit bool

	colocatedID atomic.Uint32
}

// binding is an established path to the object implementation. Its QoS
// snapshot (reqQoS, qosFrag) is immutable for the binding's lifetime:
// SetQoSParameter drops the whole binding, so per-invocation requests
// reuse the snapshot without cloning or re-encoding.
type binding struct {
	colocated bool
	conn      *clientConn
	codec     Codec
	profile   ior.Profile
	granted   qos.Set
	// reqKey identifies the connection-cache slot this binding uses.
	reqKey string
	// reqQoS is the QoS requirement snapshot taken at bind time. It must
	// not be mutated: request headers alias it on the invocation hot path.
	reqQoS qos.Set
	// qosFrag is reqQoS pre-encoded by qos.EncodeSet from a 4-aligned
	// origin, spliced into GIOP 9.9 Request headers instead of re-encoding
	// the set on every call. nil for empty QoS or non-GIOP codecs.
	qosFrag []byte
}

// Ref returns the object reference the proxy currently uses.
func (o *Object) Ref() ior.Ref {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.ref
}

// SetQoSParameter states the client's QoS requirements for subsequent
// invocations, turning the implicit binding into an explicit one (§4.1).
// Calling it once yields per-binding QoS; calling it before every
// invocation yields per-method QoS. A nil set returns to standard GIOP.
//
// The binding itself is (re-)established lazily at the next invocation, as
// in COOL, so an unsatisfiable requirement surfaces as an exception there.
// Dropping the binding also invalidates its cached qos_params encoding.
func (o *Object) SetQoSParameter(params qos.Set) error {
	if err := params.Validate(); err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.req.Equal(params) && o.binding != nil {
		return nil // unchanged: keep the binding
	}
	o.req = params.Clone()
	o.explicit = true
	o.binding = nil // force re-negotiation on next use
	return nil
}

// QoS returns the currently requested QoS set.
func (o *Object) QoS() qos.Set {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.req.Clone()
}

// GrantedQoS returns the QoS granted by the transport for the current
// binding (nil when unbound or plain GIOP).
func (o *Object) GrantedQoS() qos.Set {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.binding == nil {
		return nil
	}
	return o.binding.granted.Clone()
}

// Colocated reports whether the current binding short-circuits through the
// local object adapter. It binds if necessary.
func (o *Object) Colocated() (bool, error) {
	b, err := o.bind(context.Background())
	if err != nil {
		return false, err
	}
	return b.colocated, nil
}

// encodeQoSFrag renders s in its GIOP wire form starting from a 4-aligned
// origin (the encoding holds only 4-byte values, so it is valid at any
// 4-aligned splice point).
//
//coollint:coldpath encoded once per binding, cached as QoSFrag
func encodeQoSFrag(s qos.Set) []byte {
	enc := cdr.AcquireEncoder(cdr.BigEndian)
	qos.EncodeSet(enc, s)
	frag := append([]byte(nil), enc.Bytes()...)
	cdr.ReleaseEncoder(enc)
	return frag
}

// bind establishes (or reuses) the binding for the current QoS
// requirements: profile selection, colocation check, connection setup
// (through the connection manager) with unilateral transport negotiation.
// The context bounds the dial.
func (o *Object) bind(ctx context.Context) (*binding, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if b := o.binding; b != nil && (b.colocated || !b.conn.isClosed()) {
		return b, nil
	}
	profile, ok := o.ref.Select(o.req)
	if !ok {
		return nil, fmt.Errorf("%w: %v for %v", ErrNoUsableProfile, o.req, o.ref)
	}
	codec, err := o.orb.codec(profile.Protocol)
	if err != nil {
		return nil, err
	}
	reqQoS := o.req.Clone()
	var frag []byte
	if len(reqQoS) > 0 && codec.Name() == "giop" {
		frag = encodeQoSFrag(reqQoS)
	}
	if o.orb.isLocal(profile) {
		b := &binding{colocated: true, codec: codec, profile: profile, //coollint:allocok one binding per (re)bind, cached on the proxy
			granted: o.req.Clone(), reqQoS: reqQoS, qosFrag: frag}
		o.binding = b
		return b, nil
	}
	conn, granted, err := o.orb.cm.get(ctx, profile, o.req) //coollint:allow lockhold -- o.mu serializes binding per proxy by design; the dial is ctx-bounded and cm.get takes no lock that can reach o.mu
	if err != nil {
		o.recordNegotiation(profile, "bind_failure", err.Error())
		return nil, err
	}
	b := &binding{conn: conn, codec: codec, profile: profile, granted: granted, //coollint:allocok one binding per (re)bind, cached on the proxy
		reqKey: o.req.Key(), reqQoS: reqQoS, qosFrag: frag}
	o.binding = b
	result := "ack"
	if !granted.Equal(o.req) {
		result = "downgrade"
	}
	detail := ""
	if o.orb.ins.tracer.Enabled() {
		detail = o.req.String() + " -> " + granted.String()
	}
	o.recordNegotiation(profile, result, detail)
	return b, nil
}

// recordNegotiation counts and emits the outcome of the unilateral
// (client↔transport) QoS negotiation performed at binding time. Bindings
// without QoS requirements are plain GIOP and not negotiation outcomes.
func (o *Object) recordNegotiation(profile ior.Profile, result, detail string) {
	if len(o.req) == 0 {
		return
	}
	o.orb.ins.qosOutcome(mClientQoS, result)
	o.orb.ins.tracer.Emit(obs.Event{
		Kind:    "qos.negotiation",
		Name:    profile.Transport + "://" + profile.Address,
		Outcome: result,
		Detail:  detail,
	})
}

// abortBinding tears the binding down after a QoS NACK: the negotiated
// transport connection is useless for this QoS, so it is closed and its
// resources released ("the operation will be aborted if the requested QoS
// cannot be supported", Figure 4).
func (o *Object) abortBinding(b *binding) {
	o.invalidate()
	if b == nil || b.colocated {
		return
	}
	o.orb.cm.drop(b.profile, b.reqKey, b.conn)
}

// invalidate drops the cached binding (after connection loss or forward).
func (o *Object) invalidate() {
	o.mu.Lock()
	o.binding = nil
	o.mu.Unlock()
}

// reqHdrPool recycles Request headers so the steady-state invocation path
// does not allocate one per call (the header escapes through the Codec
// interface and would otherwise be heap-allocated).
var reqHdrPool = sync.Pool{New: func() any { return new(giop.RequestHeader) }}

// buildRequest marshals a Request frame for the bound profile. The codec
// carries qos_params whenever requirements are set (GIOP splices the
// binding's pre-encoded fragment and switches to 9.9, the COOL protocol to
// its QoS-extended framing). The returned frame is pooled: conn.send (or
// dispatchColocated) recycles it.
func (o *Object) buildRequest(b *binding, id uint32, op string, expectReply bool, span obs.Span, args func(*cdr.Encoder)) ([]byte, error) {
	hdr := reqHdrPool.Get().(*giop.RequestHeader)
	hdr.RequestID = id
	hdr.ResponseExpected = expectReply
	hdr.ObjectKey = b.profile.ObjectKey
	hdr.Operation = op
	hdr.QoS = b.reqQoS
	hdr.QoSFrag = b.qosFrag
	hdr.Principal = o.orb.principal
	if o.orb.ins.tracer.Enabled() && !span.Trace.IsZero() {
		// Carry the trace context so the server-side span joins this trace.
		// Codecs without service-context support (coolproto) drop it. Only
		// attached when an observer is installed: otherwise nothing reads
		// it and the encoding would be pure overhead.
		hdr.ServiceContext = append(hdr.ServiceContext[:0],
			hdr.TraceSC(uint64(span.Trace), uint64(span.ID)))
	} else {
		hdr.ServiceContext = hdr.ServiceContext[:0]
	}
	frame, err := b.codec.MarshalRequest(hdr, args)
	hdr.ObjectKey, hdr.QoS, hdr.QoSFrag, hdr.Principal = nil, nil, nil, nil
	reqHdrPool.Put(hdr)
	return frame, err
}

// result carries a deferred reply.
type result struct {
	m   *giop.Message
	err error
}

// recordCall finishes a synchronous invocation's observability: end-to-end
// latency (with the span's trace ID as the bucket exemplar) into the
// per-operation histogram, the client span's outcome, and — when the call
// exceeded its slow bound — a structured slow-call record. The b == nil /
// within-bound path adds no allocations over the plain histogram update.
func (o *Object) recordCall(b *binding, stats *clientOp, span obs.Span, outcome, detail string) {
	elapsed := time.Since(span.Start)
	stats.latency.ObserveDurationTrace(elapsed, span.Trace)
	span.End(outcome, detail)
	ins := o.orb.ins
	if bound := ins.clientSlowBound(b); bound > 0 && elapsed > bound {
		c := obs.SlowCall{
			Side: "client", Op: stats.op,
			Bound: bound, Dur: elapsed, Trace: span.Trace,
		}
		if b != nil {
			if !b.colocated {
				c.Peer = b.profile.Transport + "://" + b.profile.Address
			} else {
				c.Peer = "colocated"
			}
			if len(b.reqQoS) > 0 {
				c.QoS = b.reqQoS.String()
			}
		}
		ins.slowCall(c)
	}
}

// classifyOutcome maps a decoded reply error onto the span outcome
// vocabulary and flags QoS NACKs.
func classifyOutcome(err error) (outcome, detail string, nack bool) {
	if err == nil {
		return "ok", "", false
	}
	var se *giop.SystemException
	if errors.As(err, &se) {
		if se.IsNACK() {
			return "nack", se.Name(), true
		}
		return "error", se.Name(), false
	}
	var ue *giop.UserException
	if errors.As(err, &ue) {
		return "user_exception", ue.ID, false
	}
	var fwd *forwardError
	if errors.As(err, &fwd) {
		return "forward", "", false
	}
	return "error", err.Error(), false
}

// invokeOnce performs one synchronous two-way attempt: marshal into a
// pooled frame, send, block directly on the pooled reply slot, decode, and
// recycle message and buffers. The steady-state path allocates nothing and
// crosses no extra goroutines beyond the connection's reader. The context
// (and the QoS delay bound, see deadlineFor) bounds the dial and the wait
// for the reply.
//
//coollint:hotpath client invocation spine
func (o *Object) invokeOnce(ctx context.Context, op string, args func(*cdr.Encoder), out func(*cdr.Decoder) error) error {
	b, err := o.bind(ctx)
	if err != nil {
		return err
	}
	ins := o.orb.ins
	stats := ins.client(op)
	stats.calls.Inc()
	span := ins.tracer.StartSpan(stats.spanName)

	if b.colocated {
		id := o.colocatedID.Add(1)
		frame, err := o.buildRequest(b, id, op, true, span, args)
		if err != nil {
			o.recordCall(b, stats, span, "error", "marshal failed")
			return err
		}
		reply, err := o.orb.dispatchColocated(ctx, b.codec, frame)
		if err != nil {
			o.recordCall(b, stats, span, "error", err.Error())
			return err
		}
		if reply == nil {
			o.recordCall(b, stats, span, "ok", "")
			return nil
		}
		m, err := codecUnmarshal(b.codec, reply)
		if err != nil {
			transport.PutBuffer(reply)
			o.recordCall(b, stats, span, "error", err.Error())
			return err
		}
		return o.finishInvoke(b, stats, span, m, out)
	}

	dl := deadlineFor(ctx, b)
	id, slot, err := b.conn.register(ctx, dl)
	if err != nil {
		// Flow control (WithMaxInFlight) can exhaust the deadline or see the
		// cancellation before the request is sent; the connection is healthy.
		if errors.Is(err, context.DeadlineExceeded) {
			ins.deadlineExceeded.Inc()
			o.recordCall(b, stats, span, "deadline_exceeded", "")
			return &timeoutError{exc: giop.TimeoutException()}
		}
		if errors.Is(err, context.Canceled) {
			o.recordCall(b, stats, span, "error", "canceled")
			return err
		}
		// The connection died between bind and register; nothing was
		// sent, so the attempt is safe to retry on a fresh connection.
		o.invalidate()
		o.recordCall(b, stats, span, "error", "connection closed")
		return &retryableError{err: err}
	}
	frame, err := o.buildRequest(b, id, op, true, span, args)
	if err != nil {
		b.conn.unregister(id)
		b.conn.releaseSlot(slot)
		o.recordCall(b, stats, span, "error", "marshal failed")
		return err
	}
	flen := len(frame)
	if err := b.conn.send(frame); err != nil {
		b.conn.unregister(id)
		b.conn.releaseSlot(slot)
		o.invalidate()
		o.recordCall(b, stats, span, "error", "send failed")
		return err
	}
	ins.msgOut(giop.MsgRequest, flen)
	m, err := b.conn.awaitCtx(ctx, dl, slot)
	if err != nil {
		b.conn.unregister(id)
		b.conn.releaseSlot(slot)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The connection is healthy — only this invocation is
			// abandoned. Tell the server to suppress the reply; a late
			// one is counted as an orphan by route.
			o.sendCancel(b, id)
			if errors.Is(err, context.DeadlineExceeded) {
				ins.deadlineExceeded.Inc()
				o.recordCall(b, stats, span, "deadline_exceeded", "")
				return &timeoutError{exc: giop.TimeoutException()}
			}
			o.recordCall(b, stats, span, "canceled", "")
			return err
		}
		o.invalidate()
		o.recordCall(b, stats, span, "error", err.Error())
		return err
	}
	b.conn.releaseSlot(slot)
	return o.finishInvoke(b, stats, span, m, out)
}

// sendCancel tells the server to suppress the reply of an abandoned
// request. Best effort: a broken connection needs no cancel.
func (o *Object) sendCancel(b *binding, id uint32) {
	frame, err := b.codec.MarshalCancelRequest(id)
	if err != nil {
		return
	}
	flen := len(frame)
	if b.conn.send(frame) == nil {
		o.orb.ins.msgOut(giop.MsgCancelRequest, flen)
	}
}

// finishInvoke decodes a two-way reply, recycles the message, and records
// the outcome. It owns m.
func (o *Object) finishInvoke(b *binding, stats *clientOp, span obs.Span, m *giop.Message, out func(*cdr.Decoder) error) error {
	var err error
	if m.Reply == nil {
		err = fmt.Errorf("orb: expected Reply, got %v", m.Header.Type) //coollint:allocok protocol violation; the connection is about to fail
	} else {
		err = decodeReply(m, out)
	}
	codecRelease(b.codec, m)
	outcome, detail, nack := classifyOutcome(err)
	if nack {
		o.orb.ins.qosOutcome(mClientQoS, "nack")
		o.recordCall(b, stats, span, "nack", detail)
		o.abortBinding(b)
		return err
	}
	o.recordCall(b, stats, span, outcome, detail)
	return err
}

// start issues a request and returns a future for its reply. Two-way
// futures are goroutine-free: the Pending's Wait/Poll select directly on
// the registered reply slot. Colocated requests dispatch inline, so their
// Pending is born resolved. The context bounds the dial and the colocated
// dispatch; waiting for the reply is bounded by the context handed to
// WaitCtx.
func (o *Object) start(ctx context.Context, op string, args func(*cdr.Encoder), expectReply bool) (*Pending, error) {
	b, err := o.bind(ctx)
	if err != nil {
		return nil, err
	}
	ins := o.orb.ins
	stats := ins.client(op)
	stats.calls.Inc()
	span := ins.tracer.StartSpan(stats.spanName)
	if b.colocated {
		id := o.colocatedID.Add(1)
		frame, err := o.buildRequest(b, id, op, expectReply, span, args)
		if err != nil {
			span.End("error", "marshal failed")
			return nil, err
		}
		p := &Pending{o: o, oneway: !expectReply, span: span, stats: stats}
		reply, err := o.orb.dispatchColocated(ctx, b.codec, frame)
		switch {
		case err != nil:
			p.res = &result{err: err}
		case reply == nil:
			p.res = &result{}
		default:
			// Unmarshal unpooled: the Pending may retain the reply
			// indefinitely (bodyDecoder after Wait).
			m, merr := b.codec.Unmarshal(reply)
			p.res = &result{m: m, err: merr}
		}
		return p, nil
	}

	if !expectReply {
		id := b.conn.nextID.Add(1)
		frame, err := o.buildRequest(b, id, op, false, span, args)
		if err != nil {
			span.End("error", "marshal failed")
			return nil, err
		}
		flen := len(frame)
		if err := b.conn.send(frame); err != nil {
			o.invalidate()
			span.End("error", "send failed")
			return nil, err
		}
		ins.msgOut(giop.MsgRequest, flen)
		return &Pending{o: o, oneway: true, span: span, stats: stats, res: &result{}}, nil
	}

	id, slot, err := b.conn.register(ctx, deadlineFor(ctx, b))
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			o.invalidate()
		}
		span.End("error", "connection closed")
		return nil, err
	}
	frame, err := o.buildRequest(b, id, op, true, span, args)
	if err != nil {
		b.conn.unregister(id)
		b.conn.releaseSlot(slot)
		span.End("error", "marshal failed")
		return nil, err
	}
	flen := len(frame)
	if err := b.conn.send(frame); err != nil {
		o.invalidate()
		span.End("error", "send failed")
		return nil, err
	}
	ins.msgOut(giop.MsgRequest, flen)
	return &Pending{
		o: o, b: b, id: id, slot: slot,
		span: span, stats: stats,
		resolved: make(chan struct{}),
	}, nil
}

// decodeReply maps a Reply message onto the caller's decoder or an error.
// Everything returned to the caller is copied out of the message, so the
// message (and its frame) may be recycled as soon as decodeReply returns.
func decodeReply(m *giop.Message, out func(*cdr.Decoder) error) error {
	switch m.Reply.Status {
	case giop.ReplyNoException:
		if out == nil {
			return nil
		}
		return out(m.BodyDecoder())
	case giop.ReplySystemException:
		exc, err := giop.DecodeSystemException(m.BodyDecoder())
		if err != nil {
			return fmt.Errorf("orb: undecodable system exception: %w", err)
		}
		return exc
	case giop.ReplyUserException:
		return decodeUserException(m.BodyDecoder())
	case giop.ReplyLocationForward:
		return decodeForward(m.BodyDecoder())
	default:
		return fmt.Errorf("orb: unknown reply status %v", m.Reply.Status)
	}
}

// decodeUserException copies a USER_EXCEPTION reply body out of the
// pooled frame. A user exception is a failure outcome; its deep copies
// are off the steady-state reply path.
//
//coollint:coldpath user-exception replies are failure outcomes
func decodeUserException(dec *cdr.Decoder) error {
	id, err := dec.ReadString()
	if err != nil {
		return fmt.Errorf("orb: undecodable user exception: %w", err)
	}
	data, err := dec.ReadOctetSeq()
	if err != nil {
		return fmt.Errorf("orb: undecodable user exception body: %w", err)
	}
	return &giop.UserException{ID: id, Data: append([]byte(nil), data...)}
}

// decodeForward copies a LOCATION_FORWARD target out of the pooled frame.
// A forward triggers a rebind, so its copies amortize over the new
// binding's calls.
//
//coollint:coldpath forwards trigger a rebind, not a per-call event
func decodeForward(dec *cdr.Decoder) error {
	ref, err := ior.Decode(dec)
	if err != nil {
		return fmt.Errorf("orb: undecodable forward reference: %w", err)
	}
	// Deep-copy the object keys: they alias the reply frame, which is
	// recycled once this reply is released.
	for i := range ref.Profiles {
		ref.Profiles[i].ObjectKey = append([]byte(nil), ref.Profiles[i].ObjectKey...)
	}
	return &forwardError{ref: ref}
}

// forwardError carries a LOCATION_FORWARD target internally.
type forwardError struct{ ref ior.Ref }

func (e *forwardError) Error() string { return "orb: location forward" }

// Invoke performs a synchronous two-way invocation (the `call` mode of
// §5.2): marshal, send, wait for the Reply, unmarshal. out may be nil for
// void results; QoS NACKs surface as *giop.SystemException with
// IsNACK() == true. It is InvokeCtx with no context: only a QoS Latency
// requirement bounds it.
func (o *Object) Invoke(op string, args func(*cdr.Encoder), out func(*cdr.Decoder) error) error {
	return o.InvokeCtx(context.Background(), op, args, out)
}

// InvokeCtx is Invoke governed by a context. The earlier of the context
// deadline and the binding's QoS delay bound (2× the one-way Latency
// parameter, covering the round trip) bounds the invocation; expiry
// surfaces as a CORBA TIMEOUT system exception that also matches
// errors.Is(err, context.DeadlineExceeded). Retry-safe failures — dial
// errors and requests that raced a connection teardown before being
// sent — are retried with capped exponential backoff and jitter,
// transparently re-dialling a broken connection without a new proxy or
// explicit rebind; anything that may have reached the servant is
// at-most-once and never retried.
func (o *Object) InvokeCtx(ctx context.Context, op string, args func(*cdr.Encoder), out func(*cdr.Decoder) error) error {
	const maxForwards = 3
	forwards, retries := 0, 0
	for {
		err := o.invokeOnce(ctx, op, args, out)
		if err == nil {
			return nil
		}
		// The errors.As targets below escape; keeping them behind the nil
		// check keeps the happy path allocation-free (see perf_test.go).
		var fwd *forwardError
		if errors.As(err, &fwd) && forwards < maxForwards {
			forwards++
			o.mu.Lock()
			o.ref = fwd.ref
			o.binding = nil
			o.mu.Unlock()
			continue
		}
		var re *retryableError
		if errors.As(err, &re) {
			if retries < maxRetries && sleepCtx(ctx, retryDelay(retries)) == nil {
				retries++
				o.orb.ins.retries.Inc()
				continue
			}
			return re.err
		}
		return err
	}
}

// InvokeOneway performs a one-way invocation (the `send` mode): the request
// is sent without waiting for any reply.
func (o *Object) InvokeOneway(op string, args func(*cdr.Encoder)) error {
	return o.InvokeOnewayCtx(context.Background(), op, args)
}

// InvokeOnewayCtx is InvokeOneway with the dial bounded by the context.
func (o *Object) InvokeOnewayCtx(ctx context.Context, op string, args func(*cdr.Encoder)) error {
	p, err := o.start(ctx, op, args, false)
	if err != nil {
		return err
	}
	// A oneway Pending is born resolved; consuming it here closes its span
	// and records the send latency, which discarding it would skip.
	return p.WaitCtx(ctx, nil)
}

// InvokeDeferred starts a deferred-synchronous invocation (the `defer`
// mode): the returned Pending is acted upon later via Poll/Wait/Cancel.
func (o *Object) InvokeDeferred(op string, args func(*cdr.Encoder)) (*Pending, error) {
	return o.start(context.Background(), op, args, true)
}

// InvokeDeferredCtx is InvokeDeferred with the dial bounded by the
// context; the reply wait is bounded by the context handed to WaitCtx.
func (o *Object) InvokeDeferredCtx(ctx context.Context, op string, args func(*cdr.Encoder)) (*Pending, error) {
	return o.start(ctx, op, args, true)
}

// InvokeAsync starts an asynchronous invocation and calls notify with the
// outcome on a separate goroutine (the `notify` mode).
func (o *Object) InvokeAsync(op string, args func(*cdr.Encoder), notify func(out *cdr.Decoder, err error)) error {
	p, err := o.start(context.Background(), op, args, true)
	if err != nil {
		return err
	}
	go func() {
		err := p.Wait(nil)
		if err != nil {
			notify(nil, err)
			return
		}
		notify(p.bodyDecoder(), nil)
	}()
	return nil
}

// Locate asks the server whether it serves this object (GIOP
// LocateRequest/LocateReply). Colocated bindings answer from the local
// object adapter.
func (o *Object) Locate() (bool, error) {
	b, err := o.bind(context.Background())
	if err != nil {
		return false, err
	}
	if b.colocated {
		_, ok := o.orb.adapter.lookup(b.profile.ObjectKey)
		return ok, nil
	}
	id, slot, err := b.conn.register(context.Background(), time.Time{})
	if err != nil {
		o.invalidate()
		return false, err
	}
	frame, err := b.codec.MarshalLocateRequest(id, b.profile.ObjectKey)
	if err != nil {
		b.conn.unregister(id)
		b.conn.releaseSlot(slot)
		return false, err
	}
	flen := len(frame)
	if err := b.conn.send(frame); err != nil {
		o.invalidate()
		return false, err
	}
	o.orb.ins.msgOut(giop.MsgLocateRequest, flen)
	m, err := b.conn.await(slot)
	if err != nil {
		o.invalidate()
		return false, err
	}
	b.conn.releaseSlot(slot)
	if m.LocateReply == nil {
		t := m.Header.Type
		codecRelease(b.codec, m)
		return false, fmt.Errorf("orb: expected LocateReply, got %v", t)
	}
	here := m.LocateReply.Status == giop.LocateObjectHere
	codecRelease(b.codec, m)
	return here, nil
}

// Pending is an in-flight deferred invocation. Unlike the pre-pooling
// design there is no per-call await goroutine: Wait and Poll select
// directly on the registered reply slot. The slot is intentionally not
// returned to the connection's freelist — concurrent Wait/Poll/Cancel
// callers may still be selecting on it, and recycling under them could
// deliver another request's reply.
type Pending struct {
	o      *Object
	b      *binding
	id     uint32
	slot   *replySlot
	oneway bool
	span   obs.Span
	stats  *clientOp

	// resolved wakes blocked Wait callers when Poll or Cancel settles the
	// invocation first. Closed at most once, under mu.
	resolved chan struct{}

	mu       sync.Mutex
	res      *result
	dead     bool
	recorded bool
	signaled bool
}

// signalLocked closes resolved once. Callers hold p.mu.
func (p *Pending) signalLocked() {
	if !p.signaled && p.resolved != nil {
		p.signaled = true
		close(p.resolved)
	}
}

// record finishes the invocation's observability exactly once: end-to-end
// latency into the per-operation histogram and the client span's outcome.
func (p *Pending) record(outcome, detail string) {
	p.mu.Lock()
	already := p.recorded
	p.recorded = true
	p.mu.Unlock()
	if already {
		return
	}
	if p.stats != nil && p.o != nil {
		p.o.recordCall(p.b, p.stats, p.span, outcome, detail)
		return
	}
	if p.stats != nil {
		p.stats.latency.ObserveDuration(time.Since(p.span.Start))
	}
	p.span.End(outcome, detail)
}

// Poll reports whether the reply has arrived (always true for oneway,
// colocated, and cancelled requests). It never blocks.
func (p *Pending) Poll() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.res != nil || p.dead || p.slot == nil {
		return true
	}
	select {
	case m := <-p.slot.ch:
		p.res = &result{m: m}
		p.signalLocked()
		return true
	default:
	}
	select {
	case <-p.b.conn.done:
		// Prefer a reply that was routed before teardown.
		select {
		case m := <-p.slot.ch:
			p.res = &result{m: m}
		default:
			p.res = &result{err: p.b.conn.errNow()}
		}
		p.signalLocked()
		return true
	default:
	}
	return false
}

// Wait blocks for the reply and decodes it like Invoke; it is WaitCtx
// with no context (only a QoS Latency requirement bounds it).
func (p *Pending) Wait(out func(*cdr.Decoder) error) error {
	return p.WaitCtx(context.Background(), out)
}

// deadline merges the context deadline with the binding's QoS delay
// bound, measured from the request's send time (2× the one-way Latency,
// covering the round trip). The zero time means unbounded.
func (p *Pending) deadline(ctx context.Context) time.Time {
	var dl time.Time
	if p.b != nil {
		if lat := p.b.reqQoS.Value(qos.Latency, 0); lat > 0 {
			dl = p.span.Start.Add(2 * time.Duration(lat) * time.Microsecond)
		}
	}
	if cdl, ok := ctx.Deadline(); ok && (dl.IsZero() || cdl.Before(dl)) {
		dl = cdl
	}
	return dl
}

// expired reports a WaitCtx deadline expiry. The invocation itself stays
// pending, so the span is not closed here.
func (p *Pending) expired() error {
	if p.o != nil {
		p.o.orb.ins.deadlineExceeded.Inc()
	}
	return &timeoutError{exc: giop.TimeoutException()}
}

// WaitCtx blocks for the reply and decodes it like Invoke, bounded by the
// context and by the binding's QoS delay bound (see deadline). On expiry
// it returns a TIMEOUT system exception (matching errors.Is
// context.DeadlineExceeded) and leaves the invocation pending: the caller
// may WaitCtx again or Cancel. It does not hold the Pending's lock while
// blocked, so concurrent Poll and Cancel stay responsive; a Cancel that
// wins the race wakes Wait via the resolved channel.
func (p *Pending) WaitCtx(ctx context.Context, out func(*cdr.Decoder) error) error {
	p.mu.Lock()
	if p.res == nil && !p.dead && p.slot != nil {
		slot, conn, resolved := p.slot, p.b.conn, p.resolved
		p.mu.Unlock()
		var timeout <-chan time.Time
		if dl := p.deadline(ctx); !dl.IsZero() {
			d := time.Until(dl)
			if d <= 0 {
				return p.expired()
			}
			timer := time.NewTimer(d)
			defer timer.Stop()
			timeout = timer.C
		}
		select {
		case m := <-slot.ch:
			p.mu.Lock()
			if p.res == nil && !p.dead {
				p.res = &result{m: m}
				p.signalLocked()
			} else {
				// Cancel won after the reply was already routed: drop it.
				codecRelease(p.b.codec, m)
			}
		case <-conn.done:
			var r result
			select {
			case m := <-slot.ch:
				r = result{m: m}
			default:
				r = result{err: conn.errNow()}
			}
			p.mu.Lock()
			if p.res == nil && !p.dead {
				rr := r
				p.res = &rr
				p.signalLocked()
			} else if r.m != nil {
				codecRelease(p.b.codec, r.m)
			}
		case <-resolved:
			p.mu.Lock()
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return p.expired()
			}
			return ctx.Err()
		case <-timeout:
			return p.expired()
		}
	}
	if p.dead {
		p.mu.Unlock()
		p.record("canceled", "")
		return ErrCanceled
	}
	r := *p.res
	p.mu.Unlock()
	if r.err != nil {
		p.o.invalidate()
		p.record("error", r.err.Error())
		return r.err
	}
	if r.m == nil {
		p.record("ok", "") // oneway completion
		return nil
	}
	err := decodeReply(r.m, out)
	outcome, detail, nack := classifyOutcome(err)
	if nack {
		p.o.orb.ins.qosOutcome(mClientQoS, "nack")
		p.record("nack", detail)
		p.o.abortBinding(p.b)
		return err
	}
	p.record(outcome, detail)
	return err
}

// bodyDecoder exposes the reply body after a successful Wait(nil).
func (p *Pending) bodyDecoder() *cdr.Decoder {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.res == nil || p.res.m == nil {
		return cdr.NewDecoder(nil, cdr.BigEndian)
	}
	return p.res.m.BodyDecoder()
}

// Cancel abandons the invocation (the `cancel` mode): the request id is
// unregistered (making any late reply an orphan, counted by the
// orb.client.orphan_replies metric) and a CancelRequest is sent so the
// server suppresses the reply. Canceling a completed or colocated request
// is a no-op returning nil.
func (p *Pending) Cancel() error {
	p.mu.Lock()
	if p.res != nil || p.dead || p.oneway || p.b == nil || p.slot == nil {
		p.mu.Unlock()
		return nil
	}
	p.dead = true
	p.signalLocked()
	slot, conn := p.slot, p.b.conn
	p.mu.Unlock()
	conn.unregister(p.id)
	// A reply routed before unregister may sit in the slot; drop it. (A
	// concurrent Wait may race us to it and drops it the same way.)
	select {
	case m := <-slot.ch:
		codecRelease(p.b.codec, m)
	default:
	}
	frame, err := p.b.codec.MarshalCancelRequest(p.id)
	if err != nil {
		return err
	}
	flen := len(frame)
	if err := conn.send(frame); err != nil {
		return err
	}
	p.o.orb.ins.msgOut(giop.MsgCancelRequest, flen)
	return nil
}

package orb

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"cool/internal/ior"
	"cool/internal/transport"
)

// gateManager wraps a transport manager so tests can stall dials at a
// chosen point and count them.
type gateManager struct {
	transport.Manager
	mu    sync.Mutex
	dials int
	gate  chan struct{} // when non-nil, Dial blocks until it is closed
}

func (g *gateManager) Dial(addr string) (transport.Channel, error) {
	g.mu.Lock()
	g.dials++
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return g.Manager.Dial(addr)
}

func (g *gateManager) dialCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dials
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConnManagerShutdownRace is the regression test for the getConn /
// Shutdown race: a dial that is in flight when the manager closes must not
// publish its connection into the swept cache — the caller gets
// errShutdown and the freshly dialed channel is closed, not leaked.
func TestConnManagerShutdownRace(t *testing.T) {
	inner := transport.NewInprocManager()
	lis, err := inner.Listen("cm-race")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	serverCh := make(chan transport.Channel, 1)
	go func() {
		if ch, err := lis.Accept(); err == nil {
			serverCh <- ch
		}
	}()

	g := &gateManager{Manager: inner, gate: make(chan struct{})}
	cm := newConnManager(transport.NewRegistry(g), newInstruments(), func(string) (Codec, error) { return GIOPCodec{}, nil }, 1, 0)
	profile := ior.Profile{Transport: "inproc", Address: "cm-race"}

	res := make(chan error, 1)
	go func() {
		_, _, err := cm.get(context.Background(), profile, nil)
		res <- err
	}()
	waitUntil(t, "dial to start", func() bool { return g.dialCount() == 1 })
	cm.close()    // Shutdown sweeps the cache while the dial is blocked
	close(g.gate) // now let the dial complete

	if err := <-res; !errors.Is(err, errShutdown) {
		t.Fatalf("get during shutdown returned %v, want errShutdown", err)
	}

	// The freshly dialed connection must have been closed, not cached past
	// the shutdown sweep: the server side of the channel observes EOF.
	var ch transport.Channel
	select {
	case ch = <-serverCh:
	case <-time.After(2 * time.Second):
		t.Fatal("server never accepted the racing dial")
	}
	eof := make(chan error, 1)
	go func() {
		_, err := ch.ReadMessage()
		eof <- err
	}()
	select {
	case err := <-eof:
		if err == nil {
			t.Fatal("server read a message, want EOF from the closed dial")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dialed connection leaked past Shutdown: peer never saw a close")
	}
	ch.Close()
}

// TestConnManagerSingleFlightDial: concurrent invocations against a cold
// endpoint coalesce into one transport dial; every caller shares the
// resulting connection.
func TestConnManagerSingleFlightDial(t *testing.T) {
	inner := transport.NewInprocManager()
	lis, err := inner.Listen("cm-flight")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			if _, err := lis.Accept(); err != nil {
				return
			}
		}
	}()

	g := &gateManager{Manager: inner, gate: make(chan struct{})}
	cm := newConnManager(transport.NewRegistry(g), newInstruments(), func(string) (Codec, error) { return GIOPCodec{}, nil }, 1, 0)
	defer cm.close()
	profile := ior.Profile{Transport: "inproc", Address: "cm-flight"}

	const callers = 8
	conns := make(chan *clientConn, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _, err := cm.get(context.Background(), profile, nil)
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			conns <- c
		}()
	}
	waitUntil(t, "first dial", func() bool { return g.dialCount() >= 1 })
	// Give the other callers time to queue on the in-flight dial, then let
	// it complete.
	time.Sleep(10 * time.Millisecond)
	close(g.gate)
	wg.Wait()
	close(conns)

	var shared *clientConn
	n := 0
	for c := range conns {
		if shared == nil {
			shared = c
		} else if c != shared {
			t.Fatal("callers got distinct connections")
		}
		n++
	}
	if n != callers {
		t.Fatalf("%d callers succeeded, want %d", n, callers)
	}
	if d := g.dialCount(); d != 1 {
		t.Fatalf("dials = %d, want 1 (single-flight)", d)
	}
}

// TestConnManagerDialCancel: a context cancelled while waiting on another
// caller's dial returns promptly with the context error.
func TestConnManagerDialCancel(t *testing.T) {
	inner := transport.NewInprocManager()
	lis, err := inner.Listen("cm-cancel")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			if _, err := lis.Accept(); err != nil {
				return
			}
		}
	}()

	g := &gateManager{Manager: inner, gate: make(chan struct{})}
	cm := newConnManager(transport.NewRegistry(g), newInstruments(), func(string) (Codec, error) { return GIOPCodec{}, nil }, 1, 0)
	profile := ior.Profile{Transport: "inproc", Address: "cm-cancel"}

	owner := make(chan error, 1)
	go func() {
		_, _, err := cm.get(context.Background(), profile, nil)
		owner <- err
	}()
	waitUntil(t, "dial to start", func() bool { return g.dialCount() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() {
		_, _, err := cm.get(ctx, profile, nil)
		waiter <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter join the dial
	cancel()
	select {
	case err := <-waiter:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter stuck on a foreign dial")
	}

	close(g.gate)
	if err := <-owner; err != nil {
		t.Fatalf("dial owner: %v", err)
	}
	cm.close()
}

package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cool/internal/ior"
	"cool/internal/qos"
	"cool/internal/transport"
)

// errShutdown reports an operation on an ORB whose Shutdown has begun.
var errShutdown = errors.New("orb: shut down")

// retryableError marks a failure that happened before the request could
// have reached a servant (dial errors, registrations that raced a
// connection teardown). InvokeCtx retries such failures with backoff;
// everything after the request frame is on the wire is at-most-once and
// never wrapped.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// makeConnKey builds the connection-cache key for a profile and QoS
// requirement — one connection per (endpoint, protocol, QoS), so a QoS
// change maps to a transport reconfiguration exactly as in §4.1.
func makeConnKey(p ior.Profile, qosKey string) connKey {
	return connKey{scheme: p.Transport, protocol: p.Protocol, addr: p.Address, qosKey: qosKey}
}

// dialCall is one in-flight dial shared by every caller that needs the
// same connection: single-flight, so a burst of invocations against a
// cold (or freshly broken) endpoint produces one transport handshake.
type dialCall struct {
	done    chan struct{}
	conn    *clientConn
	granted qos.Set
	err     error
}

// connManager owns the client side of the connection lifecycle: dialing
// (with context), the unilateral QoS negotiation against the transport,
// the (endpoint, protocol, QoS) connection cache, single-flight dial
// coalescing, and teardown on Shutdown. It is the extracted
// "connection management" slice of the ORB core; the ORB delegates to it
// and the invocation layer never touches transport managers directly.
type connManager struct {
	registry *transport.Registry
	ins      *instruments // may be nil in unit tests
	resolve  func(protocol string) (Codec, error)

	mu      sync.Mutex
	conns   map[connKey]*clientConn
	dialing map[connKey]*dialCall
	closed  bool
}

func newConnManager(registry *transport.Registry, ins *instruments, resolve func(string) (Codec, error)) *connManager {
	return &connManager{
		registry: registry,
		ins:      ins,
		resolve:  resolve,
		conns:    make(map[connKey]*clientConn),
		dialing:  make(map[connKey]*dialCall),
	}
}

// get returns (creating if needed) the cached client connection for a
// profile and QoS requirement. A cached connection that has broken is
// replaced by a fresh dial (counted by orb.client.redials); concurrent
// callers share one dial per key.
func (cm *connManager) get(ctx context.Context, p ior.Profile, req qos.Set) (*clientConn, qos.Set, error) {
	codec, err := cm.resolve(p.Protocol)
	if err != nil {
		return nil, nil, err
	}
	key := makeConnKey(p, req.Key())
	for {
		cm.mu.Lock()
		if cm.closed {
			cm.mu.Unlock()
			return nil, nil, errShutdown
		}
		if c, ok := cm.conns[key]; ok {
			if !c.isClosed() {
				granted := c.granted
				cm.mu.Unlock()
				return c, granted, nil
			}
			// The cached connection broke; the dial below replaces it
			// (counted even when that dial needs backoff retries to land).
			delete(cm.conns, key)
			if cm.ins != nil {
				cm.ins.redials.Inc()
				cm.ins.connsCached.Set(int64(len(cm.conns)))
			}
		}
		if call, ok := cm.dialing[key]; ok {
			cm.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if call.err != nil {
				return nil, nil, call.err
			}
			if !call.conn.isClosed() {
				return call.conn, call.granted, nil
			}
			continue // the shared connection already broke: dial again
		}
		call := &dialCall{done: make(chan struct{})}
		cm.dialing[key] = call
		cm.mu.Unlock()

		conn, granted, err := cm.dial(ctx, codec, p, req)

		cm.mu.Lock()
		delete(cm.dialing, key)
		var stale *clientConn
		if err == nil {
			if cm.closed {
				// Shutdown swept the cache while this dial was in flight;
				// caching now would leak the connection past Shutdown.
				stale = conn
				conn, granted, err = nil, nil, errShutdown
			} else {
				cm.conns[key] = conn
				if cm.ins != nil {
					cm.ins.connsCached.Set(int64(len(cm.conns)))
				}
			}
		}
		call.conn, call.granted, call.err = conn, granted, err
		cm.mu.Unlock()
		close(call.done)
		if stale != nil {
			stale.close()
		}
		return conn, granted, err
	}
}

// dial establishes one connection: transport dial under ctx, then the
// unilateral QoS negotiation between message layer and transport.
func (cm *connManager) dial(ctx context.Context, codec Codec, p ior.Profile, req qos.Set) (*clientConn, qos.Set, error) {
	mgr, err := cm.registry.Get(p.Transport)
	if err != nil {
		return nil, nil, err
	}
	ch, err := transport.DialContext(ctx, mgr, p.Address)
	if err != nil {
		err = fmt.Errorf("orb: dial %s://%s: %w", p.Transport, p.Address, err)
		if ctx.Err() == nil {
			// Nothing reached the peer: safe to retry with backoff.
			err = &retryableError{err: err}
		}
		return nil, nil, err
	}
	// Unilateral QoS negotiation between message layer and transport.
	granted, err := ch.SetQoSParameter(req)
	if err != nil {
		if errors.Is(err, transport.ErrQoSNotSupported) {
			// The transport has no QoS machinery. The binding is only
			// viable when the requirements tolerate zero service.
			granted, err = qos.Negotiate(req, p.Capability)
		}
		if err != nil {
			ch.Close()
			return nil, nil, err
		}
	}
	return newClientConn(ch, codec, granted, cm.ins), granted, nil
}

// drop removes and closes a cached client connection (used after a QoS
// NACK aborts the binding it served).
func (cm *connManager) drop(p ior.Profile, qosKey string, c *clientConn) {
	key := makeConnKey(p, qosKey)
	cm.mu.Lock()
	if cur, ok := cm.conns[key]; ok && cur == c {
		delete(cm.conns, key)
		if cm.ins != nil {
			cm.ins.connsCached.Set(int64(len(cm.conns)))
		}
	}
	cm.mu.Unlock()
	c.close()
}

// close tears down every cached connection and refuses further dials.
// Dials already in flight observe the closed flag before publishing and
// close their fresh connection instead of caching it.
func (cm *connManager) close() {
	cm.mu.Lock()
	if cm.closed {
		cm.mu.Unlock()
		return
	}
	cm.closed = true
	conns := cm.conns
	cm.conns = nil
	if cm.ins != nil {
		cm.ins.connsCached.Set(0)
	}
	cm.mu.Unlock()
	for _, c := range conns {
		c.close()
	}
}

package orb

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cool/internal/ior"
	"cool/internal/qos"
	"cool/internal/transport"
)

// errShutdown reports an operation on an ORB whose Shutdown has begun.
var errShutdown = errors.New("orb: shut down")

// retryableError marks a failure that happened before the request could
// have reached a servant (dial errors, registrations that raced a
// connection teardown). InvokeCtx retries such failures with backoff;
// everything after the request frame is on the wire is at-most-once and
// never wrapped.
type retryableError struct{ err error }

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// makeConnKey builds the connection-cache key for a profile and QoS
// requirement — one connection per (endpoint, protocol, QoS), so a QoS
// change maps to a transport reconfiguration exactly as in §4.1.
func makeConnKey(p ior.Profile, qosKey string) connKey {
	return connKey{scheme: p.Transport, protocol: p.Protocol, addr: p.Address, qosKey: qosKey}
}

// dialCall is one in-flight dial shared by every caller that needs the
// same connection: single-flight per (key, stripe slot), so a burst of
// invocations against a cold (or freshly broken) endpoint produces one
// transport handshake per stripe at most.
type dialCall struct {
	done    chan struct{}
	conn    *clientConn
	granted qos.Set
	err     error
}

// stripeKey addresses one stripe slot of a connection-cache entry.
type stripeKey struct {
	key connKey
	idx int
}

// stripeSet is the cache entry for one (endpoint, protocol, QoS) key: up
// to `stripes` parallel connections. Slots are nil until first use; broken
// connections are pruned in place. With the default of one stripe this
// degenerates to the previous one-conn-per-key cache.
type stripeSet struct {
	conns []*clientConn
}

// connManager owns the client side of the connection lifecycle: dialing
// (with context), the unilateral QoS negotiation against the transport,
// the (endpoint, protocol, QoS) connection cache with optional striping,
// single-flight dial coalescing per stripe, and teardown on Shutdown. It
// is the extracted "connection management" slice of the ORB core; the ORB
// delegates to it and the invocation layer never touches transport
// managers directly.
type connManager struct {
	registry    *transport.Registry
	ins         *instruments // may be nil in unit tests
	resolve     func(protocol string) (Codec, error)
	stripes     int // connections per key (>= 1)
	maxInFlight int // per-connection in-flight limit handed to newClientConn

	mu      sync.Mutex
	conns   map[connKey]*stripeSet
	dialing map[stripeKey]*dialCall
	nconns  int // open connections across all stripes (the conns_cached gauge)
	closed  bool
}

func newConnManager(registry *transport.Registry, ins *instruments, resolve func(string) (Codec, error), stripes, maxInFlight int) *connManager {
	if stripes < 1 {
		stripes = 1
	}
	return &connManager{
		registry:    registry,
		ins:         ins,
		resolve:     resolve,
		stripes:     stripes,
		maxInFlight: maxInFlight,
		conns:       make(map[connKey]*stripeSet),
		dialing:     make(map[stripeKey]*dialCall),
	}
}

// get returns a client connection for a profile and QoS requirement,
// picking the least-loaded stripe. An idle open connection is always
// preferred; when every open stripe has requests outstanding and an empty
// slot remains, a new stripe is dialed (so load spreads across up to
// `stripes` transport streams per key). Broken connections are replaced by
// fresh dials (counted by orb.client.redials); concurrent callers share
// one dial per stripe slot.
func (cm *connManager) get(ctx context.Context, p ior.Profile, req qos.Set) (*clientConn, qos.Set, error) {
	codec, err := cm.resolve(p.Protocol)
	if err != nil {
		return nil, nil, err
	}
	key := makeConnKey(p, req.Key())
	for {
		cm.mu.Lock()
		if cm.closed {
			cm.mu.Unlock()
			return nil, nil, errShutdown
		}
		ss := cm.conns[key]
		if ss == nil {
			ss = &stripeSet{conns: make([]*clientConn, cm.stripes)}
			cm.conns[key] = ss
		}
		// Prune broken stripes and find the least-outstanding open one.
		best, empty := -1, -1
		var bestOut int32
		for i, c := range ss.conns {
			if c == nil {
				if empty < 0 {
					empty = i
				}
				continue
			}
			if c.isClosed() {
				// The cached connection broke; a dial below replaces it
				// (counted even when that dial needs backoff retries to land).
				ss.conns[i] = nil
				cm.nconns--
				if cm.ins != nil {
					cm.ins.redials.Inc()
					cm.ins.connsCached.Set(int64(cm.nconns))
				}
				if empty < 0 {
					empty = i
				}
				continue
			}
			if out := c.outstanding.Load(); best < 0 || out < bestOut {
				best, bestOut = i, out
			}
		}
		if best >= 0 && (empty < 0 || bestOut == 0) {
			c := ss.conns[best]
			granted := c.granted
			cm.mu.Unlock()
			return c, granted, nil
		}
		// Dial a fresh stripe: the first empty slot with no dial in flight.
		idx := -1
		for i := empty; i >= 0 && i < len(ss.conns); i++ {
			if ss.conns[i] == nil && cm.dialing[stripeKey{key, i}] == nil {
				idx = i
				break
			}
		}
		if idx < 0 {
			// Every empty slot already has a dial in flight. Piggyback on
			// the earliest one rather than queueing a redundant handshake —
			// unless an open (busy) stripe exists, which beats waiting.
			if best >= 0 {
				c := ss.conns[best]
				granted := c.granted
				cm.mu.Unlock()
				return c, granted, nil
			}
			call := cm.dialing[stripeKey{key, empty}]
			cm.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if call.err != nil {
				return nil, nil, call.err
			}
			if !call.conn.isClosed() {
				return call.conn, call.granted, nil
			}
			continue // the shared connection already broke: dial again
		}
		skey := stripeKey{key, idx}
		call := &dialCall{done: make(chan struct{})}
		cm.dialing[skey] = call
		cm.mu.Unlock()

		conn, granted, err := cm.dial(ctx, codec, p, req)

		cm.mu.Lock()
		delete(cm.dialing, skey)
		var stale *clientConn
		if err == nil {
			if cm.closed {
				// Shutdown swept the cache while this dial was in flight;
				// caching now would leak the connection past Shutdown.
				stale = conn
				conn, granted, err = nil, nil, errShutdown
			} else {
				if cur := cm.conns[key]; cur != nil {
					cur.conns[idx] = conn
				}
				cm.nconns++
				if cm.ins != nil {
					cm.ins.connsCached.Set(int64(cm.nconns))
				}
			}
		}
		call.conn, call.granted, call.err = conn, granted, err
		cm.mu.Unlock()
		close(call.done)
		if stale != nil {
			stale.close()
		}
		return conn, granted, err
	}
}

// dial establishes one connection: transport dial under ctx, then the
// unilateral QoS negotiation between message layer and transport.
func (cm *connManager) dial(ctx context.Context, codec Codec, p ior.Profile, req qos.Set) (*clientConn, qos.Set, error) {
	mgr, err := cm.registry.Get(p.Transport)
	if err != nil {
		return nil, nil, err
	}
	ch, err := transport.DialContext(ctx, mgr, p.Address)
	if err != nil {
		err = fmt.Errorf("orb: dial %s://%s: %w", p.Transport, p.Address, err)
		if ctx.Err() == nil {
			// Nothing reached the peer: safe to retry with backoff.
			err = &retryableError{err: err}
		}
		return nil, nil, err
	}
	// Unilateral QoS negotiation between message layer and transport.
	granted, err := ch.SetQoSParameter(req)
	if err != nil {
		if errors.Is(err, transport.ErrQoSNotSupported) {
			// The transport has no QoS machinery. The binding is only
			// viable when the requirements tolerate zero service.
			granted, err = qos.Negotiate(req, p.Capability)
		}
		if err != nil {
			ch.Close()
			return nil, nil, err
		}
	}
	return newClientConn(ch, codec, granted, cm.ins, cm.maxInFlight), granted, nil
}

// drop removes and closes a cached client connection (used after a QoS
// NACK aborts the binding it served).
func (cm *connManager) drop(p ior.Profile, qosKey string, c *clientConn) {
	key := makeConnKey(p, qosKey)
	cm.mu.Lock()
	if ss, ok := cm.conns[key]; ok {
		for i, cur := range ss.conns {
			if cur == c {
				ss.conns[i] = nil
				cm.nconns--
				if cm.ins != nil {
					cm.ins.connsCached.Set(int64(cm.nconns))
				}
				break
			}
		}
	}
	cm.mu.Unlock()
	c.close()
}

// close tears down every cached connection and refuses further dials.
// Dials already in flight observe the closed flag before publishing and
// close their fresh connection instead of caching it.
func (cm *connManager) close() {
	cm.mu.Lock()
	if cm.closed {
		cm.mu.Unlock()
		return
	}
	cm.closed = true
	conns := cm.conns
	cm.conns = nil
	cm.nconns = 0
	if cm.ins != nil {
		cm.ins.connsCached.Set(0)
	}
	cm.mu.Unlock()
	for _, ss := range conns {
		for _, c := range ss.conns {
			if c != nil {
				c.close()
			}
		}
	}
}

package orb_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cool/internal/cdr"
	"cool/internal/dacapo"
	"cool/internal/dacapo/modules"
	"cool/internal/giop"
	"cool/internal/leakcheck"
	"cool/internal/netsim"
	"cool/internal/orb"
	"cool/internal/qos"
	"cool/internal/transport"
)

// echoServant implements a small test interface by hand, the way generated
// skeletons do.
type echoServant struct {
	mu    sync.Mutex
	calls []string
	// lastQoS records the granted QoS of the last invocation.
	lastQoS qos.Set
}

func (s *echoServant) RepoID() string { return "IDL:test/Echo:1.0" }

func (s *echoServant) Invoke(inv *orb.Invocation) (orb.ReplyWriter, error) {
	s.mu.Lock()
	s.calls = append(s.calls, inv.Operation)
	s.lastQoS = inv.QoS.Clone()
	s.mu.Unlock()
	switch inv.Operation {
	case "echo":
		msg, err := inv.Args.ReadString()
		if err != nil {
			return nil, giop.MarshalException()
		}
		return func(enc *cdr.Encoder) { enc.WriteString(msg) }, nil
	case "add":
		a, err := inv.Args.ReadLong()
		if err != nil {
			return nil, giop.MarshalException()
		}
		b, err := inv.Args.ReadLong()
		if err != nil {
			return nil, giop.MarshalException()
		}
		return func(enc *cdr.Encoder) { enc.WriteLong(a + b) }, nil
	case "slow":
		time.Sleep(30 * time.Millisecond)
		return nil, nil
	case "notify":
		return nil, nil // oneway target
	case "reject":
		return nil, &orb.UserError{
			ID:   "IDL:test/Rejected:1.0",
			Body: func(enc *cdr.Encoder) { enc.WriteString("not today") },
		}
	case "boom":
		return nil, errors.New("internal chaos")
	default:
		return nil, giop.BadOperation()
	}
}

func (s *echoServant) callCount(op string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.calls {
		if c == op {
			n++
		}
	}
	return n
}

// env is a two-ORB test environment sharing one in-process network.
type env struct {
	server, client *orb.ORB
	servant        *echoServant
	ref            func() (refLike, error)
}

type refLike = *orb.Object

// newEnv builds a server ORB listening on the given schemes and a separate
// client ORB wired to the same in-process network and Da CaPo link.
func newEnv(t *testing.T, servantCap qos.Capability, schemes ...string) (*orb.ORB, *orb.ORB, *echoServant, *orb.Object) {
	t.Helper()
	// Registered before the Shutdown cleanup below, so the leak assertion
	// runs after both ORBs have shut down.
	leakcheck.Check(t)
	inner := transport.NewInprocManager()
	lib := modules.NewLibrary()
	link := netsim.LAN().Capability()

	serverORB := orb.New(
		orb.WithName("server"),
		orb.WithTransport(inner),
		orb.WithTransport(dacapo.NewManager(inner, lib, dacapo.NewResourceManager(0, 0), link)),
	)
	clientORB := orb.New(
		orb.WithName("client"),
		orb.WithTransport(inner),
		orb.WithTransport(dacapo.NewManager(inner, lib, dacapo.NewResourceManager(0, 0), link)),
		orb.WithPrincipal([]byte("test-client")),
	)
	t.Cleanup(func() {
		clientORB.Shutdown()
		serverORB.Shutdown()
	})

	for _, scheme := range schemes {
		if _, err := serverORB.ListenOn(scheme, ""); err != nil {
			t.Fatal(err)
		}
	}
	servant := &echoServant{}
	opts := []orb.ServantOption{}
	if servantCap != nil {
		opts = append(opts, orb.WithCapability(servantCap))
	}
	ref, err := serverORB.RegisterServant(servant, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return serverORB, clientORB, servant, clientORB.Resolve(ref)
}

func invokeEcho(t *testing.T, obj *orb.Object, msg string) string {
	t.Helper()
	var got string
	err := obj.Invoke("echo",
		func(enc *cdr.Encoder) { enc.WriteString(msg) },
		func(dec *cdr.Decoder) error {
			var err error
			got, err = dec.ReadString()
			return err
		})
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	return got
}

func TestRemoteInvocationPerTransport(t *testing.T) {
	for _, scheme := range []string{"tcp", "inproc", "dacapo"} {
		t.Run(scheme, func(t *testing.T) {
			_, _, servant, obj := newEnv(t, nil, scheme)
			if got := invokeEcho(t, obj, "hello "+scheme); got != "hello "+scheme {
				t.Fatalf("echo = %q", got)
			}
			if servant.callCount("echo") != 1 {
				t.Fatalf("servant calls = %v", servant.calls)
			}
			colocated, err := obj.Colocated()
			if err != nil {
				t.Fatal(err)
			}
			if colocated {
				t.Fatal("cross-ORB invocation must not be colocated")
			}
		})
	}
}

func TestInvocationWithArithmetic(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "tcp")
	var sum int32
	err := obj.Invoke("add",
		func(enc *cdr.Encoder) { enc.WriteLong(20); enc.WriteLong(22) },
		func(dec *cdr.Decoder) error {
			var err error
			sum, err = dec.ReadLong()
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestColocatedInvocation(t *testing.T) {
	serverORB, _, servant, _ := newEnv(t, nil, "inproc")
	// A proxy resolved in the *server* ORB itself must short-circuit.
	ref := serverORB.RefFor(servant.RepoID(), mustKey(t, serverORB, servant))
	obj := serverORB.Resolve(ref)
	colocated, err := obj.Colocated()
	if err != nil {
		t.Fatal(err)
	}
	if !colocated {
		t.Fatal("same-ORB binding should be colocated")
	}
	if got := invokeEcho(t, obj, "local"); got != "local" {
		t.Fatalf("echo = %q", got)
	}
}

// mustKey digs out the object key by re-registering a reference lookup: the
// test servant was registered once; RefFor needs its key. We reconstruct it
// from the ref returned at registration time instead.
func mustKey(t *testing.T, o *orb.ORB, s orb.Servant) []byte {
	t.Helper()
	// The first registered object gets key "obj-1" by construction.
	return []byte("obj-1")
}

func TestColocatedOnlyORB(t *testing.T) {
	// No listeners at all: the reference falls back to a local profile.
	local := orb.New(orb.WithName("solo"))
	defer local.Shutdown()
	servant := &echoServant{}
	ref, err := local.RegisterServant(servant)
	if err != nil {
		t.Fatal(err)
	}
	obj := local.Resolve(ref)
	if got := invokeEcho(t, obj, "solo"); got != "solo" {
		t.Fatalf("echo = %q", got)
	}
}

func TestOnewayInvocation(t *testing.T) {
	_, client, servant, obj := newEnv(t, nil, "tcp")
	if err := obj.InvokeOneway("notify", nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for servant.callCount("notify") == 0 {
		select {
		case <-deadline:
			t.Fatal("oneway never dispatched")
		case <-time.After(time.Millisecond):
		}
	}
	// The oneway send must consume its Pending so that send latency is
	// observed (and the client span ended) even with no reply to wait for.
	h, ok := client.Metrics().Snapshot().Histogram("orb.client.latency_us{op=notify}")
	if !ok || h.Count == 0 {
		t.Fatalf("oneway send latency not recorded (found=%v count=%d)", ok, h.Count)
	}
}

func TestDeferredInvocation(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "tcp")
	p, err := obj.InvokeDeferred("echo", func(enc *cdr.Encoder) { enc.WriteString("later") })
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for !p.Poll() {
		select {
		case <-deadline:
			t.Fatal("deferred reply never arrived")
		case <-time.After(time.Millisecond):
		}
	}
	var got string
	if err := p.Wait(func(dec *cdr.Decoder) error {
		var err error
		got, err = dec.ReadString()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != "later" {
		t.Fatalf("got %q", got)
	}
}

func TestAsyncNotify(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "tcp")
	done := make(chan string, 1)
	err := obj.InvokeAsync("echo",
		func(enc *cdr.Encoder) { enc.WriteString("ping") },
		func(out *cdr.Decoder, err error) {
			if err != nil {
				done <- "error: " + err.Error()
				return
			}
			s, _ := out.ReadString()
			done <- s
		})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != "ping" {
			t.Fatalf("notify got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notify never called")
	}
}

func TestCancelSuppressesReply(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "tcp")
	p, err := obj.InvokeDeferred("slow", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cancel(); err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(nil); err == nil {
		t.Fatal("Wait after Cancel should fail")
	}
	// The connection must remain usable for later calls.
	if got := invokeEcho(t, obj, "after cancel"); got != "after cancel" {
		t.Fatalf("echo = %q", got)
	}
}

func TestUserException(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "tcp")
	err := obj.Invoke("reject", nil, nil)
	var ue *giop.UserException
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UserException", err)
	}
	if ue.ID != "IDL:test/Rejected:1.0" {
		t.Fatalf("id = %q", ue.ID)
	}
	dec, err := cdr.DecodeEncapsulation(ue.Data)
	if err != nil {
		t.Fatal(err)
	}
	if msg, _ := dec.ReadString(); msg != "not today" {
		t.Fatalf("member = %q", msg)
	}
}

func TestSystemExceptions(t *testing.T) {
	_, _, _, obj := newEnv(t, nil, "tcp")

	t.Run("bad operation", func(t *testing.T) {
		err := obj.Invoke("no-such-op", nil, nil)
		var se *giop.SystemException
		if !errors.As(err, &se) || se.Name() != "BAD_OPERATION" {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("servant panic-equivalent maps to UNKNOWN", func(t *testing.T) {
		err := obj.Invoke("boom", nil, nil)
		var se *giop.SystemException
		if !errors.As(err, &se) || se.Name() != "UNKNOWN" {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestObjectNotExist(t *testing.T) {
	serverORB, clientORB, _, _ := newEnv(t, nil, "tcp")
	ref := serverORB.RefFor("IDL:test/Ghost:1.0", []byte("no-such-key"))
	obj := clientORB.Resolve(ref)
	err := obj.Invoke("echo", func(enc *cdr.Encoder) { enc.WriteString("x") }, nil)
	var se *giop.SystemException
	if !errors.As(err, &se) || se.Name() != "OBJECT_NOT_EXIST" {
		t.Fatalf("err = %v", err)
	}
}

func TestLocate(t *testing.T) {
	serverORB, clientORB, servant, obj := newEnv(t, nil, "tcp")
	here, err := obj.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if !here {
		t.Fatal("servant should be located")
	}
	ghost := clientORB.Resolve(serverORB.RefFor(servant.RepoID(), []byte("ghost")))
	here, err = ghost.Locate()
	if err != nil {
		t.Fatal(err)
	}
	if here {
		t.Fatal("ghost key should not be located")
	}
}

func TestConcurrentInvocationsShareConnection(t *testing.T) {
	_, _, servant, obj := newEnv(t, nil, "tcp")
	const workers, calls = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				msg := fmt.Sprintf("w%d-%d", w, i)
				var got string
				err := obj.Invoke("echo",
					func(enc *cdr.Encoder) { enc.WriteString(msg) },
					func(dec *cdr.Decoder) error {
						var err error
						got, err = dec.ReadString()
						return err
					})
				if err != nil {
					t.Errorf("%s: %v", msg, err)
					return
				}
				if got != msg {
					t.Errorf("got %q, want %q (reply routed to wrong caller)", got, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := servant.callCount("echo"); n != workers*calls {
		t.Fatalf("servant saw %d echo calls, want %d", n, workers*calls)
	}
}

func TestQoSInvocationOverDacapo(t *testing.T) {
	servantCap := qos.Capability{
		qos.Throughput: {Best: 50_000, Supported: true},
		qos.Latency:    {Best: 1000, Supported: true},
		qos.Reliability: {
			Best: 0, Supported: true,
		},
	}
	_, _, servant, obj := newEnv(t, servantCap, "dacapo")
	req := qos.Set{
		{Type: qos.Throughput, Request: 10_000, Max: qos.NoLimit, Min: 1000},
		{Type: qos.Reliability, Request: 0, Max: 0, Min: 0},
	}
	if err := obj.SetQoSParameter(req); err != nil {
		t.Fatal(err)
	}
	if got := invokeEcho(t, obj, "with qos"); got != "with qos" {
		t.Fatalf("echo = %q", got)
	}
	servant.mu.Lock()
	lastQoS := servant.lastQoS
	servant.mu.Unlock()
	if lastQoS.Value(qos.Throughput, 0) != 10_000 {
		t.Fatalf("servant saw QoS %v", lastQoS)
	}
	if granted := obj.GrantedQoS(); granted.Value(qos.Throughput, 0) != 10_000 {
		t.Fatalf("transport granted %v", granted)
	}
}

func TestBilateralNACK(t *testing.T) {
	// The object implementation can only do 1 Mbit/s; the client demands
	// at least 5 Mbit/s: the server must NACK with NO_RESOURCES.
	servantCap := qos.Capability{qos.Throughput: {Best: 1000, Supported: true}}
	_, _, _, obj := newEnv(t, servantCap, "dacapo")
	req := qos.Set{{Type: qos.Throughput, Request: 10_000, Max: qos.NoLimit, Min: 5000}}
	if err := obj.SetQoSParameter(req); err != nil {
		t.Fatal(err)
	}
	err := obj.Invoke("echo", func(enc *cdr.Encoder) { enc.WriteString("x") }, nil)
	var se *giop.SystemException
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SystemException", err)
	}
	if !se.IsNACK() {
		t.Fatalf("exception = %v, want NO_RESOURCES NACK", se)
	}
}

func TestUnilateralTransportNACK(t *testing.T) {
	// Demand beyond the 155 Mbit/s link: the transport-level negotiation
	// fails at binding time, before any request is sent.
	_, _, servant, obj := newEnv(t, qos.Unconstrained(), "dacapo")
	req := qos.Set{{Type: qos.Throughput, Request: 1 << 30, Max: qos.NoLimit, Min: 1 << 29}}
	if err := obj.SetQoSParameter(req); err != nil {
		t.Fatal(err)
	}
	err := obj.Invoke("echo", func(enc *cdr.Encoder) { enc.WriteString("x") }, nil)
	if err == nil {
		t.Fatal("expected binding failure")
	}
	if servant.callCount("echo") != 0 {
		t.Fatal("request must not reach the servant")
	}
}

func TestQoSRequiresCapableProfile(t *testing.T) {
	// Server listens on tcp only: no profile supports QoS, so a QoS
	// binding must fail with ErrNoUsableProfile.
	_, _, _, obj := newEnv(t, qos.Unconstrained(), "tcp")
	req := qos.Set{{Type: qos.Throughput, Request: 1000, Max: qos.NoLimit, Min: 500}}
	if err := obj.SetQoSParameter(req); err != nil {
		t.Fatal(err)
	}
	err := obj.Invoke("echo", func(enc *cdr.Encoder) { enc.WriteString("x") }, nil)
	if !errors.Is(err, orb.ErrNoUsableProfile) {
		t.Fatalf("err = %v, want ErrNoUsableProfile", err)
	}
}

func TestPerBindingVersusPerMethodQoS(t *testing.T) {
	_, _, _, obj := newEnv(t, qos.Unconstrained(), "dacapo")

	// Never calling setQoSParameter keeps standard GIOP (empty QoS at the
	// servant, 1.0 on the wire — verified indirectly by requested set).
	if got := obj.QoS(); len(got) != 0 {
		t.Fatalf("initial qos = %v", got)
	}

	// Per-binding: one setQoSParameter, many invocations.
	req1 := qos.Set{{Type: qos.Throughput, Request: 1000, Max: qos.NoLimit, Min: 100}}
	if err := obj.SetQoSParameter(req1); err != nil {
		t.Fatal(err)
	}
	invokeEcho(t, obj, "a")
	invokeEcho(t, obj, "b")

	// Per-method: change QoS before the next invocation; the binding is
	// renegotiated.
	req2 := qos.Set{{Type: qos.Throughput, Request: 2000, Max: qos.NoLimit, Min: 100}}
	if err := obj.SetQoSParameter(req2); err != nil {
		t.Fatal(err)
	}
	invokeEcho(t, obj, "c")
	if granted := obj.GrantedQoS(); granted.Value(qos.Throughput, 0) != 2000 {
		t.Fatalf("granted after renegotiation = %v", granted)
	}

	// Returning to best effort (nil) works too.
	if err := obj.SetQoSParameter(nil); err != nil {
		t.Fatal(err)
	}
	invokeEcho(t, obj, "d")
}

func TestShutdownIdempotent(t *testing.T) {
	serverORB, clientORB, _, obj := newEnv(t, nil, "tcp")
	invokeEcho(t, obj, "warm")
	clientORB.Shutdown()
	clientORB.Shutdown()
	serverORB.Shutdown()
	if err := obj.Invoke("echo", func(enc *cdr.Encoder) { enc.WriteString("x") }, nil); err == nil {
		t.Fatal("invocation after shutdown should fail")
	}
}

func TestAdapterDeactivate(t *testing.T) {
	serverORB, clientORB, servant, obj := newEnv(t, nil, "tcp")
	invokeEcho(t, obj, "alive")
	serverORB.Adapter().Deactivate([]byte("obj-1"))
	err := obj.Invoke("echo", func(enc *cdr.Encoder) { enc.WriteString("x") }, nil)
	var se *giop.SystemException
	if !errors.As(err, &se) || se.Name() != "OBJECT_NOT_EXIST" {
		t.Fatalf("err = %v", err)
	}
	_ = clientORB
	_ = servant
}

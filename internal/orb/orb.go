package orb

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cool/internal/giop"
	"cool/internal/ior"
	"cool/internal/obs"
	"cool/internal/qos"
	"cool/internal/transport"
)

// defaultDrainTimeout bounds how long Shutdown waits for in-flight
// requests to complete before cancelling their contexts.
const defaultDrainTimeout = 5 * time.Second

// defaultMaxInFlight is the per-connection outstanding-request limit when
// WithMaxInFlight is not given: generous enough that ordinary fan-out never
// blocks, low enough that a stalled server cannot make the pending map (and
// the retransmission state behind it) grow without bound.
const defaultMaxInFlight = 4096

// maxConnStripes caps WithConnStripes: past a handful of parallel streams
// per endpoint the syscall batching already saturates, and each stripe
// costs a file descriptor and a reader goroutine on both peers.
const maxConnStripes = 16

// ORB is one COOL runtime instance: object adapter, server endpoints, and
// client-side connection management over the generic transport layer.
type ORB struct {
	name         string
	registry     *transport.Registry
	adapter      *Adapter
	principal    []byte
	codecs       map[string]Codec
	ins          *instruments
	cm           *connManager
	drainTimeout time.Duration
	maxInFlight  int
	connStripes  int

	mu        sync.Mutex
	endpoints []endpoint
	listeners []transport.Listener
	accepted  map[transport.Channel]acceptedConn
	activated bool
	shutdown  bool
	wg        sync.WaitGroup

	// drainMu guards the server-side in-flight request accounting that
	// Shutdown's graceful drain waits on.
	drainMu   sync.Mutex
	draining  bool
	inflight  int
	drainDone chan struct{}

	// dispatchQ feeds the bounded server dispatch worker pool, started
	// lazily with the first listener and closed by Shutdown after all
	// server loops have drained.
	dispatchQ   chan serverTask
	workerStart sync.Once
	workerStop  sync.Once
}

// acceptedConn is the shutdown bookkeeping for one inbound connection:
// the codec (to announce CloseConnection), the cancel function of the
// per-connection request context, and the connection's reply writer (so
// Shutdown can wait for queued replies to reach the transport before
// closing).
type acceptedConn struct {
	codec  Codec
	cancel context.CancelFunc
	w      *frameWriter
}

// endpoint is one served transport address.
type endpoint struct {
	scheme     string
	protocol   string
	addr       string
	capability qos.Capability
}

type connKey struct {
	scheme   string
	protocol string
	addr     string
	qosKey   string
}

// Option configures New.
type Option interface{ apply(*ORB) }

type optFunc func(*ORB)

func (f optFunc) apply(o *ORB) { f(o) }

// WithName labels the ORB (diagnostics only).
func WithName(name string) Option {
	return optFunc(func(o *ORB) { o.name = name })
}

// WithTransport registers an additional transport manager (e.g. the Da CaPo
// manager). tcp and inproc are always available.
func WithTransport(m transport.Manager) Option {
	return optFunc(func(o *ORB) { o.registry.Register(m) })
}

// WithPrincipal sets the requesting_principal blob sent in requests.
func WithPrincipal(p []byte) Option {
	return optFunc(func(o *ORB) { o.principal = p })
}

// WithMessageProtocol registers an additional message protocol codec for
// the generic message protocol layer; "giop" is always available.
func WithMessageProtocol(c Codec) Option {
	return optFunc(func(o *ORB) { o.codecs[c.Name()] = c })
}

// WithObserver installs an observability event observer (spans, QoS
// negotiation outcomes) at construction time.
func WithObserver(ob obs.Observer) Option {
	return optFunc(func(o *ORB) { o.ins.tracer.SetObserver(ob) })
}

// WithDrainTimeout bounds the graceful-drain phase of Shutdown: how long
// the ORB waits for in-flight requests to complete before cancelling
// their contexts and closing the connections anyway. Zero or negative
// keeps the default (5s).
func WithDrainTimeout(d time.Duration) Option {
	return optFunc(func(o *ORB) { o.drainTimeout = d })
}

// WithSlowCallThreshold sets a latency floor above which any invocation —
// client round-trip or server dispatch — is recorded in the slow-call log
// even without a QoS Latency bound. Calls bound by a QoS Latency parameter
// use the tighter of the two. Zero (the default) logs only QoS-bound
// violations.
func WithSlowCallThreshold(d time.Duration) Option {
	return optFunc(func(o *ORB) { o.ins.slowThreshold = d })
}

// WithMaxInFlight bounds the requests outstanding (sent, reply pending) on
// each client connection. Registrations beyond the limit block in FIFO
// order — context- and deadline-aware — until a reply retires one, giving
// the client natural backpressure instead of an unbounded pending map.
// n <= 0 removes the limit; the default is 4096.
func WithMaxInFlight(n int) Option {
	return optFunc(func(o *ORB) { o.maxInFlight = n })
}

// WithConnStripes dials up to n parallel connections per (endpoint,
// protocol, QoS) key, picking the least-loaded stripe per binding, so one
// transport stream's head-of-line blocking stops being the throughput
// ceiling at high concurrency. n is clamped to [1, 16]; the default is 1
// (the paper's one-connection-per-QoS-binding model, §4.1).
func WithConnStripes(n int) Option {
	return optFunc(func(o *ORB) {
		if n < 1 {
			n = 1
		}
		if n > maxConnStripes {
			n = maxConnStripes
		}
		o.connStripes = n
	})
}

// New creates an ORB with the standard tcp and inproc transports
// registered.
func New(opts ...Option) *ORB {
	o := &ORB{
		name:        "cool",
		registry:    transport.NewRegistry(transport.NewTCPManager(), transport.NewInprocManager()),
		adapter:     NewAdapter(),
		accepted:    make(map[transport.Channel]acceptedConn),
		codecs:      map[string]Codec{"giop": GIOPCodec{}},
		ins:         newInstruments(),
		maxInFlight: defaultMaxInFlight,
		connStripes: 1,
	}
	o.registry.SetHooks(&transport.Hooks{
		Opened: func(scheme string) {
			o.ins.reg.Counter("transport.conns.opened{scheme=" + scheme + "}").Inc()
			o.ins.reg.Gauge("transport.conns.active{scheme=" + scheme + "}").Inc()
		},
		Closed: func(scheme string) {
			o.ins.reg.Counter("transport.conns.closed{scheme=" + scheme + "}").Inc()
			o.ins.reg.Gauge("transport.conns.active{scheme=" + scheme + "}").Dec()
		},
		Failed: func(scheme string) {
			o.ins.reg.Counter("transport.conns.failed{scheme=" + scheme + "}").Inc()
		},
	})
	for _, opt := range opts {
		opt.apply(o)
	}
	o.cm = newConnManager(o.registry, o.ins, o.codec, o.connStripes, o.maxInFlight)
	return o
}

// Metrics exposes the ORB's metric registry.
func (o *ORB) Metrics() *obs.Registry { return o.ins.reg }

// Tracer exposes the ORB's span tracer. Components integrated with the ORB
// (e.g. the Da CaPo manager) emit their structured events through it.
func (o *ORB) Tracer() *obs.Tracer { return o.ins.tracer }

// SetObserver installs (or replaces, or with nil removes) the observer
// receiving spans and structured events from this ORB.
func (o *ORB) SetObserver(ob obs.Observer) { o.ins.tracer.SetObserver(ob) }

// SlowCalls exposes the ORB's slow-call log: the bounded ring of
// invocations that exceeded their QoS Latency bound or the configured
// WithSlowCallThreshold.
func (o *ORB) SlowCalls() *obs.SlowLog { return o.ins.slowLog }

// Adapter exposes the object adapter.
func (o *ORB) Adapter() *Adapter { return o.adapter }

// Transports exposes the transport registry (to register custom managers
// after construction).
func (o *ORB) Transports() *transport.Registry { return o.registry }

// ListenOn binds a server endpoint speaking GIOP on the given transport
// scheme and starts serving it. addr may be empty to auto-select. It
// returns the bound address.
func (o *ORB) ListenOn(scheme, addr string) (string, error) {
	return o.ListenOnProtocol(scheme, addr, "giop")
}

// ListenOnProtocol is ListenOn with an explicit message protocol ("giop",
// or any codec registered via WithMessageProtocol — e.g. "cool").
func (o *ORB) ListenOnProtocol(scheme, addr, protocol string) (string, error) {
	codec, err := o.codec(protocol)
	if err != nil {
		return "", err
	}
	mgr, err := o.registry.Get(scheme)
	if err != nil {
		return "", err
	}
	l, err := mgr.Listen(addr)
	if err != nil {
		return "", err
	}
	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		l.Close()
		return "", errShutdown
	}
	o.listeners = append(o.listeners, l)
	o.endpoints = append(o.endpoints, endpoint{scheme: scheme, protocol: protocol, addr: l.Addr(), capability: mgr.Capability()})
	o.activated = true
	o.mu.Unlock()

	o.workerStart.Do(o.startDispatchers)
	o.wg.Add(1)
	go o.acceptLoop(l, codec)
	return l.Addr(), nil
}

// codec resolves a message protocol name ("" defaults to GIOP).
func (o *ORB) codec(name string) (Codec, error) {
	if name == "" {
		name = "giop"
	}
	c, ok := o.codecs[name]
	if !ok {
		return nil, fmt.Errorf("orb: unknown message protocol %q", name)
	}
	return c, nil
}

// RegisterServant activates a servant and returns an object reference with
// one profile per served endpoint. At least one endpoint must be listening
// unless the servant is only used colocated (then the reference carries an
// inproc-style local profile).
func (o *ORB) RegisterServant(s Servant, opts ...ServantOption) (ior.Ref, error) {
	key, err := o.adapter.Activate(s, opts...)
	if err != nil {
		return ior.Ref{}, err
	}
	return o.RefFor(s.RepoID(), key), nil
}

// RefFor builds an object reference for an activated object key.
func (o *ORB) RefFor(typeID string, key []byte) ior.Ref {
	o.mu.Lock()
	defer o.mu.Unlock()
	ref := ior.Ref{TypeID: typeID}
	for _, ep := range o.endpoints {
		proto := ep.protocol
		if proto == "giop" {
			proto = "" // default on the wire
		}
		ref.Profiles = append(ref.Profiles, ior.Profile{
			Transport:  ep.scheme,
			Protocol:   proto,
			Address:    ep.addr,
			ObjectKey:  key,
			Capability: ep.capability,
		})
	}
	if len(ref.Profiles) == 0 {
		// Colocated-only object: a pseudo profile resolvable in-process.
		ref.Profiles = append(ref.Profiles, ior.Profile{
			Transport:  "local",
			Address:    o.name,
			ObjectKey:  key,
			Capability: qos.Unconstrained(),
		})
	}
	return ref
}

// Resolve returns a client proxy for a reference.
func (o *ORB) Resolve(ref ior.Ref) *Object {
	return &Object{orb: o, ref: ref}
}

// ResolveString parses a stringified IOR and returns a proxy.
func (o *ORB) ResolveString(s string) (*Object, error) {
	ref, err := ior.Unmarshal(s)
	if err != nil {
		return nil, err
	}
	return o.Resolve(ref), nil
}

// isLocal reports whether a profile addresses this ORB instance, enabling
// the object adapter's colocation shortcut.
func (o *ORB) isLocal(p ior.Profile) bool {
	if p.Transport == "local" {
		_, ok := o.adapter.lookup(p.ObjectKey)
		return ok
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, ep := range o.endpoints {
		if ep.scheme == p.Transport && ep.addr == p.Address {
			_, ok := o.adapter.lookup(p.ObjectKey)
			return ok
		}
	}
	return false
}

// Shutdown gracefully stops the ORB. It stops accepting new connections,
// refuses new requests (TRANSIENT), closes the client-side connections,
// waits up to the drain timeout (WithDrainTimeout) for in-flight requests
// to complete — their replies are still delivered — then announces
// CloseConnection to the remaining peers, cancels their request contexts,
// and tears the rest down.
func (o *ORB) Shutdown() {
	o.mu.Lock()
	if o.shutdown {
		o.mu.Unlock()
		o.wg.Wait()
		return
	}
	o.shutdown = true
	listeners := o.listeners
	o.listeners = nil
	o.mu.Unlock()

	for _, l := range listeners {
		l.Close()
	}
	o.cm.close()

	start := time.Now()
	o.drain()
	o.ins.drainDuration.Set(time.Since(start).Microseconds())

	o.mu.Lock()
	accepted := o.accepted
	o.accepted = make(map[transport.Channel]acceptedConn)
	o.mu.Unlock()
	for ch, ac := range accepted {
		// Drained requests count as complete once their reply is queued on
		// the writer; let the queue reach the transport before closing.
		if ac.w != nil {
			ac.w.waitIdle(time.Second)
		}
		// Orderly GIOP shutdown: tell the peer before closing so it can
		// distinguish a drain from a failure.
		if frame, err := ac.codec.MarshalCloseConnection(); err == nil {
			if ch.WriteMessage(frame) == nil {
				o.ins.msgOut(giop.MsgCloseConnection, len(frame))
			}
			transport.PutBuffer(frame)
		}
		ac.cancel()
		ch.Close()
	}
	o.wg.Wait()
	// All server loops have exited, so no task can be queued anymore:
	// release the dispatch workers.
	o.workerStop.Do(func() {
		if o.dispatchQ != nil {
			close(o.dispatchQ)
		}
	})
}

// drain flips the ORB into draining mode (beginRequest refuses new work)
// and waits for the in-flight requests to finish, bounded by the drain
// timeout. It reports whether the drain completed.
func (o *ORB) drain() bool {
	timeout := o.drainTimeout
	if timeout <= 0 {
		timeout = defaultDrainTimeout
	}
	o.drainMu.Lock()
	o.draining = true
	if o.inflight == 0 {
		o.drainMu.Unlock()
		return true
	}
	done := make(chan struct{})
	o.drainDone = done
	o.drainMu.Unlock()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
		return true
	case <-timer.C:
		o.drainMu.Lock()
		aborted := o.inflight
		o.drainDone = nil
		o.drainMu.Unlock()
		if aborted > 0 {
			o.ins.drainAborted.Add(uint64(aborted))
		}
		return false
	}
}

// beginRequest admits one server-side request; it refuses (false) once
// the ORB is draining.
func (o *ORB) beginRequest() bool {
	o.drainMu.Lock()
	defer o.drainMu.Unlock()
	if o.draining {
		return false
	}
	o.inflight++
	return true
}

// endRequest retires one admitted request (its reply, if any, has been
// written), waking the drain when the last one finishes.
func (o *ORB) endRequest() {
	o.drainMu.Lock()
	o.inflight--
	if o.draining {
		o.ins.drainCompleted.Inc()
		if o.inflight == 0 && o.drainDone != nil {
			close(o.drainDone)
			o.drainDone = nil
		}
	}
	o.drainMu.Unlock()
}

// trackAccepted registers an inbound connection for shutdown; it reports
// false when the ORB is already shutting down.
func (o *ORB) trackAccepted(ch transport.Channel, codec Codec, cancel context.CancelFunc, w *frameWriter) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.shutdown {
		return false
	}
	o.accepted[ch] = acceptedConn{codec: codec, cancel: cancel, w: w}
	return true
}

func (o *ORB) untrackAccepted(ch transport.Channel) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.accepted, ch)
}
